package stats

import (
	"math"
	"testing"

	"anycastcdn/internal/xrand"
)

// randBuilder fills a builder with n samples drawn from an xrand
// substream: mixed magnitudes, duplicates, and occasional zero weights —
// the shapes the experiment aggregators actually produce.
func randBuilder(rs *xrand.Stream, n int) *ECDFBuilder[float64] {
	var b ECDFBuilder[float64]
	for i := 0; i < n; i++ {
		x := math.Exp(10 * (rs.Float64() - 0.5))
		if rs.Float64() < 0.2 {
			x = float64(rs.Intn(8)) // force duplicate sample values
		}
		b.AddWeighted(x, rs.Float64()*3)
	}
	return &b
}

func buildersEqual(t *testing.T, a, b *ECDFBuilder[float64]) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.xs {
		if math.Float64bits(float64(a.xs[i])) != math.Float64bits(float64(b.xs[i])) ||
			math.Float64bits(a.ws[i]) != math.Float64bits(b.ws[i]) {
			t.Fatalf("sample %d differs: (%v, %v) vs (%v, %v)", i, a.xs[i], a.ws[i], b.xs[i], b.ws[i])
		}
	}
}

// TestECDFBuilderEncodeRoundTrip pins bit-exact decode(encode(b)) == b,
// including the empty builder, and that Decode consumes exactly the
// encoded bytes (so encodings concatenate into frames).
func TestECDFBuilderEncodeRoundTrip(t *testing.T) {
	rs := xrand.New(101)
	for _, n := range []int{0, 1, 7, 1000} {
		b := randBuilder(rs, n)
		enc := b.Encode(nil)
		enc = append(enc, 0xFF, 0xFE) // trailing bytes must survive untouched
		var got ECDFBuilder[float64]
		rest, err := got.Decode(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(rest) != 2 || rest[0] != 0xFF {
			t.Fatalf("n=%d: Decode consumed the wrong byte count (rest %d)", n, len(rest))
		}
		buildersEqual(t, b, &got)
	}
}

// TestECDFBuilderMergeEncodedMatchesMerge pins the wire merge against the
// in-process one: folding encoded partials in a fixed order must leave
// the builder byte-identical to Merge in the same order, and the
// finalized ECDF quantiles must agree bitwise.
func TestECDFBuilderMergeEncodedMatchesMerge(t *testing.T) {
	rs := xrand.New(202)
	parts := []*ECDFBuilder[float64]{
		randBuilder(rs, 100), randBuilder(rs, 0), randBuilder(rs, 333), randBuilder(rs, 50),
	}
	var direct, wired ECDFBuilder[float64]
	for _, p := range parts {
		direct.Merge(p)
		rest, err := wired.MergeEncoded(p.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d bytes left over", len(rest))
		}
	}
	buildersEqual(t, &direct, &wired)
	de, err := direct.ECDF()
	if err != nil {
		t.Fatal(err)
	}
	we, err := wired.ECDF()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if math.Float64bits(de.Quantile(q)) != math.Float64bits(we.Quantile(q)) {
			t.Fatalf("quantile %v differs: %v vs %v", q, de.Quantile(q), we.Quantile(q))
		}
	}
}

// TestECDFBuilderMergeAssociative is the property the shard-order merge
// depends on: (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) leave identical builders —
// Merge is concatenation, so association cannot matter as long as the
// left-to-right order of the parts is fixed.
func TestECDFBuilderMergeAssociative(t *testing.T) {
	rs := xrand.New(303)
	for trial := 0; trial < 20; trial++ {
		a1 := randBuilder(rs, rs.Intn(200))
		b1 := randBuilder(rs, rs.Intn(200))
		c1 := randBuilder(rs, rs.Intn(200))
		a2 := &ECDFBuilder[float64]{}
		a2.Merge(a1)
		b2 := &ECDFBuilder[float64]{}
		b2.Merge(b1)

		// left: ((a+b)+c) into a fresh accumulator.
		var left ECDFBuilder[float64]
		left.Merge(a1)
		left.Merge(b1)
		left.Merge(c1)
		// right: a + (b+c).
		var bc ECDFBuilder[float64]
		bc.Merge(b2)
		bc.Merge(c1)
		var right ECDFBuilder[float64]
		right.Merge(a2)
		right.Merge(&bc)
		buildersEqual(t, &left, &right)
	}
}

// TestECDFBuilderDecodeErrors covers the malformed-input paths: bad
// magic, truncated header, truncated payload.
func TestECDFBuilderDecodeErrors(t *testing.T) {
	var b ECDFBuilder[float64]
	cases := map[string][]byte{
		"empty":             {},
		"bad magic":         {0x00, 1, 2, 3},
		"truncated header":  {ecdfMagic, 1, 2},
		"truncated payload": append((&ECDFBuilder[float64]{xs: []float64{1}, ws: []float64{1}}).Encode(nil)[:12], 0),
	}
	for name, data := range cases {
		if _, err := b.Decode(data); err == nil {
			t.Errorf("%s: Decode accepted malformed input", name)
		}
	}
}

func randSketch(t *testing.T, rs *xrand.Stream, n int) *QuantileSketch[float64] {
	t.Helper()
	s, err := NewLogQuantileSketch[float64](0.5, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.AddWeighted(math.Exp(12*(rs.Float64()-0.4)), rs.Float64()*2)
	}
	return s
}

func sketchesEqual(t *testing.T, a, b *QuantileSketch[float64]) {
	t.Helper()
	if a.n != b.n || math.Float64bits(a.total) != math.Float64bits(b.total) {
		t.Fatalf("counts differ: (n=%d total=%v) vs (n=%d total=%v)", a.n, a.total, b.n, b.total)
	}
	for i := range a.bins {
		if math.Float64bits(a.bins[i]) != math.Float64bits(b.bins[i]) {
			t.Fatalf("bin %d differs: %v vs %v", i, a.bins[i], b.bins[i])
		}
	}
}

// TestSketchEncodeRoundTrip pins bit-exact decode(encode(s)) == s and
// exact byte consumption.
func TestSketchEncodeRoundTrip(t *testing.T) {
	rs := xrand.New(404)
	for _, n := range []int{0, 1, 5000} {
		s := randSketch(t, rs, n)
		enc := s.Encode(nil)
		got, err := NewLogQuantileSketch[float64](0.5, 4096, 64)
		if err != nil {
			t.Fatal(err)
		}
		rest, err := got.Decode(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(rest) != 0 {
			t.Fatalf("n=%d: %d bytes left over", n, len(rest))
		}
		sketchesEqual(t, s, got)
	}
}

// TestSketchMergeCommutativeAssociative: unweighted sketches carry
// integer-valued bins, so the encoded merge must be exactly commutative
// AND associative — any fold order over the same partials yields
// bit-identical bins. This is what lets the coordinator fold per-day
// sketch deltas without caring which worker's frame it read first.
func TestSketchMergeCommutativeAssociative(t *testing.T) {
	rs := xrand.New(505)
	mk := func(n int) *QuantileSketch[float64] {
		s, err := NewLogQuantileSketch[float64](0.5, 4096, 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			s.Add(math.Exp(12 * (rs.Float64() - 0.4))) // weight 1: integer bins
		}
		return s
	}
	parts := []*QuantileSketch[float64]{mk(100), mk(1), mk(777), mk(0), mk(42)}
	fold := func(order []int) *QuantileSketch[float64] {
		out, _ := NewLogQuantileSketch[float64](0.5, 4096, 64)
		for _, i := range order {
			if _, err := out.MergeEncoded(parts[i].Encode(nil)); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	ref := fold([]int{0, 1, 2, 3, 4})
	for trial := 0; trial < 10; trial++ {
		order := []int{0, 1, 2, 3, 4}
		for i := len(order) - 1; i > 0; i-- { // xrand-seeded shuffle
			j := rs.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		sketchesEqual(t, ref, fold(order))
	}
	// Associativity with pre-merged groups: (0+1) + (2+3+4).
	g1, _ := NewLogQuantileSketch[float64](0.5, 4096, 64)
	g1.MergeEncoded(parts[0].Encode(nil))
	g1.MergeEncoded(parts[1].Encode(nil))
	g2, _ := NewLogQuantileSketch[float64](0.5, 4096, 64)
	g2.MergeEncoded(parts[2].Encode(nil))
	g2.MergeEncoded(parts[3].Encode(nil))
	g2.MergeEncoded(parts[4].Encode(nil))
	grouped, _ := NewLogQuantileSketch[float64](0.5, 4096, 64)
	grouped.MergeEncoded(g1.Encode(nil))
	grouped.MergeEncoded(g2.Encode(nil))
	sketchesEqual(t, ref, grouped)
}

// TestSketchEncodedLayoutMismatch covers the mismatched-bin error paths:
// different bin count, different range, linear-vs-log — for Decode,
// MergeEncoded, and the in-process Merge they mirror.
func TestSketchEncodedLayoutMismatch(t *testing.T) {
	base, _ := NewLogQuantileSketch[float64](0.5, 4096, 64)
	base.Add(3)
	others := []*QuantileSketch[float64]{}
	if s, err := NewLogQuantileSketch[float64](0.5, 4096, 32); err == nil {
		others = append(others, s) // different bin count
	}
	if s, err := NewLogQuantileSketch[float64](1, 4096, 64); err == nil {
		others = append(others, s) // different lo
	}
	if s, err := NewLinearQuantileSketch[float64](0.5, 4096, 64); err == nil {
		others = append(others, s) // linear vs log
	}
	if len(others) != 3 {
		t.Fatal("failed to build mismatched sketches")
	}
	enc := base.Encode(nil)
	for i, o := range others {
		if _, err := o.Decode(enc); err == nil {
			t.Errorf("case %d: Decode accepted a mismatched layout", i)
		}
		if _, err := o.MergeEncoded(enc); err == nil {
			t.Errorf("case %d: MergeEncoded accepted a mismatched layout", i)
		}
		if err := o.Merge(base); err == nil {
			t.Errorf("case %d: Merge accepted a mismatched layout", i)
		}
	}
	// Truncation and magic errors.
	if _, err := base.Decode(enc[:10]); err == nil {
		t.Error("Decode accepted a truncated sketch")
	}
	bad := append([]byte{}, enc...)
	bad[0] = 0x00
	if _, err := base.Decode(bad); err == nil {
		t.Error("Decode accepted a bad magic byte")
	}
}

// TestSketchMergeEncodedSteadyStateAllocs pins the coordinator merge-loop
// contract: folding an encoded sketch into an existing one allocates
// nothing.
func TestSketchMergeEncodedSteadyStateAllocs(t *testing.T) {
	rs := xrand.New(606)
	part := randSketch(t, rs, 500)
	enc := part.Encode(nil)
	acc, _ := NewLogQuantileSketch[float64](0.5, 4096, 64)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := acc.MergeEncoded(enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MergeEncoded allocates %v per op, want 0", allocs)
	}
}
