// Package stats implements the statistical machinery the paper's analysis
// uses: empirical CDFs and CCDFs (weighted and unweighted), quantiles, the
// coefficient of variation the paper used to choose its prediction metric,
// and fixed-grid series sampling for rendering figures as tables.
//
// Everything is generic over ~float64 so the dimension-typed quantities in
// internal/units (Millis, Kilometers) flow through quantiles and CDFs
// without unwrapping: the quantile of a []units.Millis is a units.Millis.
// All arithmetic happens on the underlying float64 in the same operation
// order as the pre-generic implementation, so same-seed replays are
// byte-identical.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations over empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// less mirrors sort.Float64s ordering: ascending, NaNs first.
func less[T ~float64](a, b T) bool {
	return a < b || (math.IsNaN(float64(a)) && !math.IsNaN(float64(b)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
// xs need not be sorted. It returns an error for empty input or q outside
// [0, 1].
func Quantile[T ~float64](xs []T, q float64) (T, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range")
	}
	s := append([]T(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
	return quantileSorted(s, q), nil
}

func quantileSorted[T ~float64](s []T, q float64) T {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return T(float64(s[lo])*(1-frac) + float64(s[hi])*frac)
}

// Median is Quantile(xs, 0.5).
func Median[T ~float64](xs []T) (T, error) { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean.
func Mean[T ~float64](xs []T) (T, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return T(sum / float64(len(xs))), nil
}

// StdDev returns the population standard deviation.
func StdDev[T ~float64](xs []T) (T, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := float64(x) - float64(m)
		ss += d * d
	}
	return T(math.Sqrt(ss / float64(len(xs)))), nil
}

// CoefficientOfVariation returns stddev/mean, a dimensionless float64
// whatever the unit of xs. The paper uses the CoV of per-front-end latency
// distributions to argue that the 25th percentile and median are stabler
// prediction metrics than high percentiles.
func CoefficientOfVariation[T ~float64](xs []T) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, errors.New("stats: zero mean")
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	return float64(sd) / float64(m), nil
}

// ECDF is an empirical cumulative distribution, optionally weighted.
// Construct with NewECDF or NewWeightedECDF. The sample axis keeps the
// unit type of its input; probabilities are bare float64.
type ECDF[T ~float64] struct {
	xs []T       // sorted
	cw []float64 // cumulative weight, same length; cw[len-1] == total
}

// NewECDF builds an unweighted ECDF from samples.
func NewECDF[T ~float64](samples []T) (*ECDF[T], error) {
	ws := make([]float64, len(samples))
	for i := range ws {
		ws[i] = 1
	}
	return NewWeightedECDF(samples, ws)
}

// NewWeightedECDF builds an ECDF where samples[i] carries weights[i]. The
// paper weights /24s by query volume for several figures. Weights must be
// non-negative with a positive sum.
func NewWeightedECDF[T ~float64](samples []T, weights []float64) (*ECDF[T], error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	if len(samples) != len(weights) {
		return nil, errors.New("stats: samples and weights length mismatch")
	}
	type pair struct {
		x T
		w float64
	}
	ps := make([]pair, len(samples))
	var total float64
	for i := range samples {
		if weights[i] < 0 || math.IsNaN(weights[i]) || math.IsNaN(float64(samples[i])) {
			return nil, errors.New("stats: negative or NaN weight/sample")
		}
		ps[i] = pair{samples[i], weights[i]}
		total += weights[i]
	}
	if total <= 0 {
		return nil, errors.New("stats: zero total weight")
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	e := &ECDF[T]{xs: make([]T, len(ps)), cw: make([]float64, len(ps))}
	var acc float64
	for i, p := range ps {
		acc += p.w
		e.xs[i] = p.x
		e.cw[i] = acc
	}
	return e, nil
}

// P returns P[X <= x].
func (e *ECDF[T]) P(x T) float64 {
	// Index of the first sample >= x (what sort.SearchFloat64s computes).
	i := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] >= x })
	// Walk forward over equal values to include them.
	for i < len(e.xs) && e.xs[i] == x {
		i++
	}
	if i == 0 {
		return 0
	}
	return e.cw[i-1] / e.cw[len(e.cw)-1]
}

// CCDF returns P[X > x].
func (e *ECDF[T]) CCDF(x T) float64 { return 1 - e.P(x) }

// Quantile returns the smallest sample x with P[X <= x] >= q.
func (e *ECDF[T]) Quantile(q float64) T {
	if q <= 0 {
		return e.xs[0]
	}
	if q >= 1 {
		return e.xs[len(e.xs)-1]
	}
	target := q * e.cw[len(e.cw)-1]
	i := sort.SearchFloat64s(e.cw, target)
	if i >= len(e.xs) {
		i = len(e.xs) - 1
	}
	return e.xs[i]
}

// N returns the number of samples.
func (e *ECDF[T]) N() int { return len(e.xs) }

// Min and Max return the sample extremes.
func (e *ECDF[T]) Min() T { return e.xs[0] }

// Max returns the largest sample.
func (e *ECDF[T]) Max() T { return e.xs[len(e.xs)-1] }

// SeriesPoint is one (x, y) pair of a rendered figure series.
type SeriesPoint struct {
	X float64
	Y float64
}

// Series is a named sequence of points, i.e. one line of a figure. Render
// output is deliberately unit-erased: by the time a value reaches a table
// cell it is just a number under a labeled axis.
type Series struct {
	Name   string
	Points []SeriesPoint
}

// SampleCDF evaluates the ECDF at each x in grid, producing a figure line.
func (e *ECDF[T]) SampleCDF(name string, grid []T) Series {
	s := Series{Name: name, Points: make([]SeriesPoint, len(grid))}
	for i, x := range grid {
		s.Points[i] = SeriesPoint{X: float64(x), Y: e.P(x)}
	}
	return s
}

// SampleCCDF evaluates the CCDF at each x in grid.
func (e *ECDF[T]) SampleCCDF(name string, grid []T) Series {
	s := Series{Name: name, Points: make([]SeriesPoint, len(grid))}
	for i, x := range grid {
		s.Points[i] = SeriesPoint{X: float64(x), Y: e.CCDF(x)}
	}
	return s
}

// LinearGrid returns n+1 evenly spaced values covering [lo, hi]. Call
// sites with untyped-constant bounds must instantiate explicitly, e.g.
// LinearGrid[units.Millis](0, 200, 20).
func LinearGrid[T ~float64](lo, hi T, n int) []T {
	if n < 1 {
		n = 1
	}
	out := make([]T, n+1)
	step := float64(hi-lo) / float64(n)
	for i := range out {
		out[i] = T(float64(lo) + float64(i)*step)
	}
	return out
}

// LogGrid returns n+1 logarithmically spaced values covering [lo, hi],
// lo > 0. Figures 2, 4 and 8 of the paper use log-scale distance axes.
func LogGrid[T ~float64](lo, hi T, n int) []T {
	if n < 1 {
		n = 1
	}
	out := make([]T, n+1)
	llo, lhi := math.Log(float64(lo)), math.Log(float64(hi))
	step := (lhi - llo) / float64(n)
	for i := range out {
		out[i] = T(math.Exp(llo + float64(i)*step))
	}
	return out
}
