// Package stats implements the statistical machinery the paper's analysis
// uses: empirical CDFs and CCDFs (weighted and unweighted), quantiles, the
// coefficient of variation the paper used to choose its prediction metric,
// and fixed-grid series sampling for rendering figures as tables.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations over empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
// xs need not be sorted. It returns an error for empty input or q outside
// [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// CoefficientOfVariation returns stddev/mean. The paper uses the CoV of
// per-front-end latency distributions to argue that the 25th percentile and
// median are stabler prediction metrics than high percentiles.
func CoefficientOfVariation(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, errors.New("stats: zero mean")
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	return sd / m, nil
}

// ECDF is an empirical cumulative distribution, optionally weighted.
// Construct with NewECDF or NewWeightedECDF.
type ECDF struct {
	xs []float64 // sorted
	cw []float64 // cumulative weight, same length; cw[len-1] == total
}

// NewECDF builds an unweighted ECDF from samples.
func NewECDF(samples []float64) (*ECDF, error) {
	ws := make([]float64, len(samples))
	for i := range ws {
		ws[i] = 1
	}
	return NewWeightedECDF(samples, ws)
}

// NewWeightedECDF builds an ECDF where samples[i] carries weights[i]. The
// paper weights /24s by query volume for several figures. Weights must be
// non-negative with a positive sum.
func NewWeightedECDF(samples, weights []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	if len(samples) != len(weights) {
		return nil, errors.New("stats: samples and weights length mismatch")
	}
	type pair struct{ x, w float64 }
	ps := make([]pair, len(samples))
	var total float64
	for i := range samples {
		if weights[i] < 0 || math.IsNaN(weights[i]) || math.IsNaN(samples[i]) {
			return nil, errors.New("stats: negative or NaN weight/sample")
		}
		ps[i] = pair{samples[i], weights[i]}
		total += weights[i]
	}
	if total <= 0 {
		return nil, errors.New("stats: zero total weight")
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	e := &ECDF{xs: make([]float64, len(ps)), cw: make([]float64, len(ps))}
	var acc float64
	for i, p := range ps {
		acc += p.w
		e.xs[i] = p.x
		e.cw[i] = acc
	}
	return e, nil
}

// P returns P[X <= x].
func (e *ECDF) P(x float64) float64 {
	// Index of the last sample <= x.
	i := sort.SearchFloat64s(e.xs, x)
	// SearchFloat64s returns first index with xs[i] >= x; walk forward over
	// equal values to include them.
	for i < len(e.xs) && e.xs[i] == x {
		i++
	}
	if i == 0 {
		return 0
	}
	return e.cw[i-1] / e.cw[len(e.cw)-1]
}

// CCDF returns P[X > x].
func (e *ECDF) CCDF(x float64) float64 { return 1 - e.P(x) }

// Quantile returns the smallest sample x with P[X <= x] >= q.
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.xs[0]
	}
	if q >= 1 {
		return e.xs[len(e.xs)-1]
	}
	target := q * e.cw[len(e.cw)-1]
	i := sort.SearchFloat64s(e.cw, target)
	if i >= len(e.xs) {
		i = len(e.xs) - 1
	}
	return e.xs[i]
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.xs) }

// Min and Max return the sample extremes.
func (e *ECDF) Min() float64 { return e.xs[0] }

// Max returns the largest sample.
func (e *ECDF) Max() float64 { return e.xs[len(e.xs)-1] }

// SeriesPoint is one (x, y) pair of a rendered figure series.
type SeriesPoint struct {
	X float64
	Y float64
}

// Series is a named sequence of points, i.e. one line of a figure.
type Series struct {
	Name   string
	Points []SeriesPoint
}

// SampleCDF evaluates the ECDF at each x in grid, producing a figure line.
func (e *ECDF) SampleCDF(name string, grid []float64) Series {
	s := Series{Name: name, Points: make([]SeriesPoint, len(grid))}
	for i, x := range grid {
		s.Points[i] = SeriesPoint{X: x, Y: e.P(x)}
	}
	return s
}

// SampleCCDF evaluates the CCDF at each x in grid.
func (e *ECDF) SampleCCDF(name string, grid []float64) Series {
	s := Series{Name: name, Points: make([]SeriesPoint, len(grid))}
	for i, x := range grid {
		s.Points[i] = SeriesPoint{X: x, Y: e.CCDF(x)}
	}
	return s
}

// LinearGrid returns n+1 evenly spaced values covering [lo, hi].
func LinearGrid(lo, hi float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n+1)
	step := (hi - lo) / float64(n)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// LogGrid returns n+1 logarithmically spaced values covering [lo, hi],
// lo > 0. Figures 2, 4 and 8 of the paper use log-scale distance axes.
func LogGrid(lo, hi float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n+1)
	llo, lhi := math.Log(lo), math.Log(hi)
	step := (lhi - llo) / float64(n)
	for i := range out {
		out[i] = math.Exp(llo + float64(i)*step)
	}
	return out
}
