package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuantileBasics(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	got, _ := Quantile(xs, 0.25)
	if math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("Quantile(0.25) = %v, want 2.5", got)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile[float64](nil, 0.5); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("q<0 should error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q>1 should error")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("NaN q should error")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDevCov(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, _ := Mean(xs)
	if m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	sd, _ := StdDev(xs)
	if math.Abs(sd-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", sd)
	}
	cov, _ := CoefficientOfVariation(xs)
	if math.Abs(cov-0.4) > 1e-9 {
		t.Fatalf("CoV = %v, want 0.4", cov)
	}
}

func TestCovErrors(t *testing.T) {
	if _, err := CoefficientOfVariation[float64](nil); err == nil {
		t.Error("empty CoV should error")
	}
	if _, err := CoefficientOfVariation([]float64{0, 0}); err == nil {
		t.Error("zero-mean CoV should error")
	}
}

func TestECDFUnweighted(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.P(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := e.CCDF(2); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("CCDF(2) = %v, want 0.25", got)
	}
}

func TestECDFWeighted(t *testing.T) {
	e, err := NewWeightedECDF([]float64{1, 2, 3}, []float64{1, 1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.P(2); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("weighted P(2) = %v, want 0.2", got)
	}
	if got := e.Quantile(0.5); got != 3 {
		t.Fatalf("weighted median = %v, want 3", got)
	}
}

func TestECDFErrors(t *testing.T) {
	if _, err := NewECDF[float64](nil); err == nil {
		t.Error("empty ECDF should error")
	}
	if _, err := NewWeightedECDF([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewWeightedECDF([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := NewWeightedECDF([]float64{1}, []float64{0}); err == nil {
		t.Error("zero total weight should error")
	}
	if _, err := NewWeightedECDF([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("NaN sample should error")
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 10}
	e, _ := NewECDF(xs)
	if got := e.Quantile(0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %v, want 5", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", got)
	}
	if got := e.Quantile(1); got != 10 {
		t.Fatalf("Quantile(1) = %v, want 10", got)
	}
}

func TestECDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		// P is 0 below min, 1 at max, monotone along sorted xs.
		below := math.Nextafter(e.Min(), math.Inf(-1))
		if e.P(below) != 0 || e.P(e.Max()) != 1 {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			p := e.P(x)
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSeries(t *testing.T) {
	e, _ := NewECDF([]float64{1, 2, 3, 4})
	grid := []float64{0, 2, 5}
	s := e.SampleCDF("line", grid)
	if s.Name != "line" || len(s.Points) != 3 {
		t.Fatalf("bad series %+v", s)
	}
	if s.Points[0].Y != 0 || s.Points[1].Y != 0.5 || s.Points[2].Y != 1 {
		t.Fatalf("bad CDF values %+v", s.Points)
	}
	c := e.SampleCCDF("cline", grid)
	for i := range grid {
		if math.Abs(c.Points[i].Y-(1-s.Points[i].Y)) > 1e-12 {
			t.Fatal("CCDF != 1-CDF")
		}
	}
}

func TestGrids(t *testing.T) {
	lin := LinearGrid[float64](0, 10, 5)
	if len(lin) != 6 || lin[0] != 0 || lin[5] != 10 || lin[1] != 2 {
		t.Fatalf("LinearGrid = %v", lin)
	}
	lg := LogGrid[float64](1, 100, 2)
	if len(lg) != 3 || math.Abs(lg[0]-1) > 1e-9 || math.Abs(lg[1]-10) > 1e-9 || math.Abs(lg[2]-100) > 1e-9 {
		t.Fatalf("LogGrid = %v", lg)
	}
	if got := LinearGrid[float64](0, 1, 0); len(got) != 2 {
		t.Fatalf("LinearGrid n<1 = %v", got)
	}
}

func TestFigureRender(t *testing.T) {
	e, _ := NewECDF([]float64{1, 2, 3})
	f := Figure{
		Title:  "Test figure",
		XLabel: "x",
		YLabel: "cdf",
		Series: []Series{e.SampleCDF("a", []float64{1, 2, 3})},
		Notes:  []string{"hello"},
	}
	out := f.Render()
	for _, want := range []string{"Test figure", "a", "note: hello", "0.3333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	empty := Figure{Title: "empty"}
	if !strings.Contains(empty.Render(), "(no series)") {
		t.Error("empty figure render missing placeholder")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "CDNs",
		Columns: []string{"name", "locations"},
		Rows:    [][]string{{"level3", "62"}, {"cdnify", "17"}},
		Notes:   []string{"public data"},
	}
	out := tb.Render()
	for _, want := range []string{"CDNs", "level3", "62", "note: public data"} {
		if !strings.Contains(out, want) {
			t.Errorf("table render missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkECDFBuild(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64((i * 7919) % 10007)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewECDF(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECDFLookup(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64((i * 7919) % 10007)
	}
	e, _ := NewECDF(xs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.P(float64(i % 10007))
	}
}
