package stats

import (
	"errors"
	"math"
)

// This file holds the streaming accumulators the online experiment
// pipeline aggregates with: an exact mergeable ECDF builder and a
// fixed-bin quantile sketch. Both are deterministic under the rules
// documented on each type, so a day-at-a-time streaming run and a
// whole-log batch scan produce byte-identical figures.

// ECDFBuilder accumulates weighted samples incrementally and finalizes
// them into an exact ECDF. It is the streaming front door to
// NewWeightedECDF: consumers that used to materialize a whole dataset and
// hand it over in one call instead Add samples as the simulation streams
// days past them.
//
// Determinism: the finalized ECDF sorts its samples, so two builders fed
// the same multiset of (sample, weight) pairs agree on every query —
// byte-identically when weights are equal-valued (cumulative sums of a
// constant are exact), and otherwise whenever the insertion order of
// equal-valued samples matches. Merge appends the other builder's samples
// in their insertion order; merging partial builders in a fixed order
// (e.g. day order) therefore reproduces the order a sequential pass would
// have produced.
type ECDFBuilder[T ~float64] struct {
	xs []T
	ws []float64
}

// Add records a sample with weight 1.
func (b *ECDFBuilder[T]) Add(x T) { b.AddWeighted(x, 1) }

// AddWeighted records a sample with an arbitrary non-negative weight.
func (b *ECDFBuilder[T]) AddWeighted(x T, w float64) {
	b.xs = append(b.xs, x)
	b.ws = append(b.ws, w)
}

// Grow reserves capacity for n additional samples.
func (b *ECDFBuilder[T]) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(b.xs) - len(b.xs); free < n {
		b.xs = append(make([]T, 0, len(b.xs)+n), b.xs...)
		b.ws = append(make([]float64, 0, len(b.ws)+n), b.ws...)
	}
}

// Merge appends all of o's samples, in o's insertion order. o is
// unchanged.
func (b *ECDFBuilder[T]) Merge(o *ECDFBuilder[T]) {
	b.Grow(len(o.xs))
	b.xs = append(b.xs, o.xs...)
	b.ws = append(b.ws, o.ws...)
}

// Len returns the number of accumulated samples.
func (b *ECDFBuilder[T]) Len() int { return len(b.xs) }

// ECDF finalizes the accumulated samples. The builder remains usable;
// later Adds are reflected in later ECDF calls.
func (b *ECDFBuilder[T]) ECDF() (*ECDF[T], error) {
	return NewWeightedECDF(b.xs, b.ws)
}

// QuantileSketch is a fixed-bin streaming distribution sketch: constant
// memory however many samples it sees, at the cost of quantile resolution
// equal to the bin width. Bins may be linearly or logarithmically spaced;
// samples below the range land in an underflow bin (reported as lo) and
// samples at or above hi land in an overflow bin (reported as hi).
//
// Determinism: a sample's bin is a pure function of its value, and
// unweighted Adds accumulate integer-valued bin counts, whose float64
// sums are exact in any accumulation order — so two sketches fed the same
// multiset of samples are identical regardless of order, and Merge is
// exactly commutative. With fractional weights, merge partial sketches in
// a fixed order to keep runs reproducible.
type QuantileSketch[T ~float64] struct {
	lo, hi float64
	log    bool
	scale  float64   // bins per unit of (transformed) x
	bins   []float64 // [underflow, bin 0 .. bin n-1, overflow]
	total  float64
	n      uint64
}

// ErrRange reports an invalid sketch range.
var ErrRange = errors.New("stats: invalid sketch range")

// NewLogQuantileSketch builds a sketch with nbins log-spaced bins
// covering [lo, hi), lo > 0 — the layout for long-tailed quantities like
// the paper's switch distances (Figure 8's axis is log-scale kilometers).
func NewLogQuantileSketch[T ~float64](lo, hi T, nbins int) (*QuantileSketch[T], error) {
	if !(float64(lo) > 0) || !(float64(hi) > float64(lo)) || nbins < 1 {
		return nil, ErrRange
	}
	return &QuantileSketch[T]{
		lo:    float64(lo),
		hi:    float64(hi),
		log:   true,
		scale: float64(nbins) / (math.Log(float64(hi)) - math.Log(float64(lo))),
		bins:  make([]float64, nbins+2),
	}, nil
}

// NewLinearQuantileSketch builds a sketch with nbins evenly spaced bins
// covering [lo, hi).
func NewLinearQuantileSketch[T ~float64](lo, hi T, nbins int) (*QuantileSketch[T], error) {
	if !(float64(hi) > float64(lo)) || nbins < 1 {
		return nil, ErrRange
	}
	return &QuantileSketch[T]{
		lo:    float64(lo),
		hi:    float64(hi),
		scale: float64(nbins) / (float64(hi) - float64(lo)),
		bins:  make([]float64, nbins+2),
	}, nil
}

// binOf maps a sample to its bin index within bins (0 = underflow,
// len(bins)-1 = overflow).
func (s *QuantileSketch[T]) binOf(x T) int {
	v := float64(x)
	if math.IsNaN(v) || v < s.lo {
		return 0
	}
	if v >= s.hi {
		return len(s.bins) - 1
	}
	var pos float64
	if s.log {
		pos = (math.Log(v) - math.Log(s.lo)) * s.scale
	} else {
		pos = (v - s.lo) * s.scale
	}
	i := int(pos) + 1
	if i > len(s.bins)-2 { // float edge: Log(v) rounding at the top bound
		i = len(s.bins) - 2
	}
	return i
}

// Add records a sample with weight 1.
func (s *QuantileSketch[T]) Add(x T) { s.AddWeighted(x, 1) }

// AddWeighted records a sample with an arbitrary non-negative weight.
func (s *QuantileSketch[T]) AddWeighted(x T, w float64) {
	s.bins[s.binOf(x)] += w
	s.total += w
	s.n++
}

// Merge adds o's bins into s. The two sketches must have identical
// layouts (same constructor arguments).
func (s *QuantileSketch[T]) Merge(o *QuantileSketch[T]) error {
	if len(s.bins) != len(o.bins) || s.lo != o.lo || s.hi != o.hi || s.log != o.log {
		return errors.New("stats: merging sketches with different layouts")
	}
	for i, w := range o.bins {
		s.bins[i] += w
	}
	s.total += o.total
	s.n += o.n
	return nil
}

// N returns the number of samples recorded.
func (s *QuantileSketch[T]) N() uint64 { return s.n }

// upperEdge returns the inclusive upper value of bin i: lo for the
// underflow bin, hi for the overflow bin.
func (s *QuantileSketch[T]) upperEdge(i int) T {
	switch {
	case i <= 0:
		return T(s.lo)
	case i >= len(s.bins)-1:
		return T(s.hi)
	}
	nbins := len(s.bins) - 2
	if s.log {
		llo, lhi := math.Log(s.lo), math.Log(s.hi)
		return T(math.Exp(llo + float64(i)*(lhi-llo)/float64(nbins)))
	}
	return T(s.lo + float64(i)*(s.hi-s.lo)/float64(nbins))
}

// Quantile returns the upper edge of the bin holding the q-quantile: the
// smallest bin boundary x with P[X <= x] >= q, i.e. the true quantile
// rounded up to bin resolution. It returns lo on an empty sketch.
func (s *QuantileSketch[T]) Quantile(q float64) T {
	if s.total <= 0 {
		return T(s.lo)
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * s.total
	var acc float64
	for i, w := range s.bins {
		acc += w
		if acc >= target && w > 0 {
			return s.upperEdge(i)
		}
	}
	return T(s.hi)
}

// P returns the fraction of recorded weight in bins whose upper edge is
// <= x — the CDF at bin resolution, exact at bin boundaries. An empty
// sketch reports 0.
func (s *QuantileSketch[T]) P(x T) float64 {
	if s.total <= 0 {
		return 0
	}
	var acc float64
	for i, w := range s.bins {
		if float64(s.upperEdge(i)) > float64(x) && i > 0 {
			break
		}
		acc += w
	}
	return acc / s.total
}

// SampleCDF evaluates the sketch CDF at each x in grid, producing a
// figure line like ECDF.SampleCDF.
func (s *QuantileSketch[T]) SampleCDF(name string, grid []T) Series {
	out := Series{Name: name, Points: make([]SeriesPoint, len(grid))}
	for i, x := range grid {
		out.Points[i] = SeriesPoint{X: float64(x), Y: s.P(x)}
	}
	return out
}
