package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file is the wire layer of the streaming accumulators: the
// distributed simulation serializes per-shard partial aggregates
// (ECDFBuilder sample runs, QuantileSketch bin vectors) into length-free
// append-style buffers, ships them over a socket, and folds them into the
// coordinator's accumulators. The encoding is little-endian, versioned by
// a per-type magic byte, and deliberately raw: float64 bits are copied
// verbatim, so a decode(encode(x)) round trip is bit-identical and a
// merge of encoded partials reproduces the exact float operations an
// in-process Merge would have performed.

// Encoding magic bytes, doubling as a one-byte format version. Bump on
// any layout change so a coordinator never silently misreads a frame
// from a mismatched worker binary.
const (
	ecdfMagic   = 0xE1
	sketchMagic = 0xA5
)

// ErrEncoding reports a malformed or truncated accumulator encoding.
var ErrEncoding = errors.New("stats: malformed accumulator encoding")

// ErrLayout reports a decode or encoded-merge against an accumulator
// whose layout (bin count, range, spacing) differs from the encoder's.
var ErrLayout = errors.New("stats: encoded sketch layout mismatch")

func putU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func getU64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, ErrEncoding
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}

func putF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func getF64(data []byte) (float64, []byte, error) {
	u, rest, err := getU64(data)
	return math.Float64frombits(u), rest, err
}

// Encode appends the builder's samples to dst and returns the extended
// slice. The samples travel in insertion order, so a receiver that
// decodes (or MergeEncoded-s) partial builders in a fixed order
// reproduces exactly the insertion order a sequential pass would have
// produced — the property the distributed merge's byte-identity rests on.
func (b *ECDFBuilder[T]) Encode(dst []byte) []byte {
	dst = append(dst, ecdfMagic)
	dst = putU64(dst, uint64(len(b.xs)))
	for i := range b.xs {
		dst = putF64(dst, float64(b.xs[i]))
		dst = putF64(dst, b.ws[i])
	}
	return dst
}

// Decode replaces the builder's contents with one encoded builder read
// from the front of data, reusing existing capacity, and returns the
// unread remainder.
func (b *ECDFBuilder[T]) Decode(data []byte) ([]byte, error) {
	b.xs = b.xs[:0]
	b.ws = b.ws[:0]
	return b.MergeEncoded(data)
}

// MergeEncoded appends one encoded builder's samples from the front of
// data — the wire form of Merge — and returns the unread remainder.
func (b *ECDFBuilder[T]) MergeEncoded(data []byte) ([]byte, error) {
	if len(data) < 1 || data[0] != ecdfMagic {
		return nil, fmt.Errorf("%w: bad ECDF builder magic", ErrEncoding)
	}
	n, data, err := getU64(data[1:])
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) < 16*n {
		return nil, fmt.Errorf("%w: truncated ECDF builder payload", ErrEncoding)
	}
	b.Grow(int(n))
	for i := uint64(0); i < n; i++ {
		x := math.Float64frombits(binary.LittleEndian.Uint64(data))
		w := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
		data = data[16:]
		b.xs = append(b.xs, T(x))
		b.ws = append(b.ws, w)
	}
	return data, nil
}

// Encode appends the sketch — layout header plus bin vector — to dst and
// returns the extended slice. The encoded size is constant for a given
// layout (34 bytes of header plus 8 per bin), so per-day delta frames
// stay fixed-width.
func (s *QuantileSketch[T]) Encode(dst []byte) []byte {
	dst = append(dst, sketchMagic)
	if s.log {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = putF64(dst, s.lo)
	dst = putF64(dst, s.hi)
	dst = putU64(dst, uint64(len(s.bins)))
	dst = putU64(dst, s.n)
	dst = putF64(dst, s.total)
	for _, w := range s.bins {
		dst = putF64(dst, w)
	}
	return dst
}

// Decode replaces the sketch's contents with one encoded sketch read from
// the front of data and returns the unread remainder. The encoded layout
// must match s's exactly (same constructor arguments); ErrLayout
// otherwise — the same rule Merge enforces, surfaced before any state is
// modified.
func (s *QuantileSketch[T]) Decode(data []byte) ([]byte, error) {
	for i := range s.bins {
		s.bins[i] = 0
	}
	s.total = 0
	s.n = 0
	return s.MergeEncoded(data)
}

// MergeEncoded adds one encoded sketch's bins from the front of data —
// the wire form of Merge, allocation-free in steady state — and returns
// the unread remainder. ErrLayout if the encoded layout differs from s's.
func (s *QuantileSketch[T]) MergeEncoded(data []byte) ([]byte, error) {
	if len(data) < 1 || data[0] != sketchMagic {
		return nil, fmt.Errorf("%w: bad sketch magic", ErrEncoding)
	}
	if len(data) < 2+8+8+8+8+8 {
		return nil, fmt.Errorf("%w: truncated sketch header", ErrEncoding)
	}
	log := data[1] == 1
	data = data[2:]
	lo, data, _ := getF64(data)
	hi, data, _ := getF64(data)
	nbins, data, _ := getU64(data)
	n, data, _ := getU64(data)
	total, data, _ := getF64(data)
	if log != s.log || lo != s.lo || hi != s.hi || int(nbins) != len(s.bins) {
		return nil, fmt.Errorf("%w: got %d bins over [%v, %v), have %d over [%v, %v)",
			ErrLayout, nbins, lo, hi, len(s.bins), s.lo, s.hi)
	}
	if uint64(len(data)) < 8*nbins {
		return nil, fmt.Errorf("%w: truncated sketch bins", ErrEncoding)
	}
	for i := range s.bins {
		s.bins[i] += math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
	}
	s.n += n
	s.total += total
	return data, nil
}

// Reset zeroes the sketch's contents in place, keeping its layout — how
// the distributed workers reuse one sketch as a per-day delta buffer.
func (s *QuantileSketch[T]) Reset() {
	for i := range s.bins {
		s.bins[i] = 0
	}
	s.total = 0
	s.n = 0
}

// Reset drops the builder's samples, keeping capacity for reuse.
func (b *ECDFBuilder[T]) Reset() {
	b.xs = b.xs[:0]
	b.ws = b.ws[:0]
}
