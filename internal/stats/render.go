package stats

import (
	"fmt"
	"strings"
)

// Figure is a set of series plus axis labels, renderable as a text table.
// cmd/repro prints one Figure per paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render formats the figure as an aligned text table: one row per grid x,
// one column per series. All series are assumed to share the same grid (as
// produced by SampleCDF/SampleCCDF over a common grid).
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	if len(f.Series) == 0 {
		b.WriteString("(no series)\n")
		return b.String()
	}
	// Header.
	fmt.Fprintf(&b, "%14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %18s", trunc(s.Name, 18))
	}
	b.WriteByte('\n')
	rows := len(f.Series[0].Points)
	for r := 0; r < rows; r++ {
		fmt.Fprintf(&b, "%14.4g", f.Series[0].Points[r].X)
		for _, s := range f.Series {
			if r < len(s.Points) {
				fmt.Fprintf(&b, "  %18.4f", s.Points[r].Y)
			} else {
				fmt.Fprintf(&b, "  %18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Table is a simple labelled table for non-series results (the §4 CDN size
// comparison).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
