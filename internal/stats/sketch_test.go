package stats

import (
	"math"
	"testing"
)

// sketchSamples is a fixed, shuffled-looking sample set spanning the
// [64, 8192) range plus out-of-range values.
func sketchSamples() []float64 {
	xs := make([]float64, 0, 500)
	v := 1.0
	for i := 0; i < 500; i++ {
		// Deterministic low-discrepancy walk over [1, 20000).
		v = math.Mod(v*1.6180339887498949+137.5, 20000)
		xs = append(xs, v+1)
	}
	return xs
}

func TestECDFBuilderMatchesDirect(t *testing.T) {
	xs := sketchSamples()
	var b ECDFBuilder[float64]
	for _, x := range xs {
		b.Add(x)
	}
	if b.Len() != len(xs) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(xs))
	}
	got, err := b.ECDF()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if got.Quantile(q) != want.Quantile(q) {
			t.Fatalf("quantile %v: builder %v != direct %v", q, got.Quantile(q), want.Quantile(q))
		}
	}
	for _, x := range []float64{1, 100, 5000, 25000} {
		if got.P(x) != want.P(x) {
			t.Fatalf("P(%v): builder %v != direct %v", x, got.P(x), want.P(x))
		}
	}
}

func TestECDFBuilderWeightedMergePreservesOrder(t *testing.T) {
	xs := sketchSamples()
	ws := make([]float64, len(xs))
	for i := range ws {
		ws[i] = 0.5 + float64(i%7)/3
	}
	var whole ECDFBuilder[float64]
	var partA, partB ECDFBuilder[float64]
	for i, x := range xs {
		whole.AddWeighted(x, ws[i])
		if i < len(xs)/2 {
			partA.AddWeighted(x, ws[i])
		} else {
			partB.AddWeighted(x, ws[i])
		}
	}
	partA.Merge(&partB)
	got, err := partA.ECDF()
	if err != nil {
		t.Fatal(err)
	}
	want, err := whole.ECDF()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewWeightedECDF(xs, ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{10, 500, 2000, 10000} {
		if got.P(x) != want.P(x) || want.P(x) != direct.P(x) {
			t.Fatalf("P(%v): merged %v, whole %v, direct %v — all must match exactly",
				x, got.P(x), want.P(x), direct.P(x))
		}
	}
}

func TestQuantileSketchQuantileWithinOneBin(t *testing.T) {
	xs := sketchSamples()
	sk, err := NewLogQuantileSketch(1.0, 32768.0, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		sk.Add(x)
	}
	if sk.N() != uint64(len(xs)) {
		t.Fatalf("N = %d, want %d", sk.N(), len(xs))
	}
	exact, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	ratio := math.Pow(32768, 1.0/256) // one bin's width
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got, want := sk.Quantile(q), exact.Quantile(q)
		if got < want/ratio || got > want*ratio*ratio {
			t.Fatalf("quantile %v: sketch %v not within one bin of exact %v", q, got, want)
		}
	}
}

func TestQuantileSketchOrderAndMergeInvariance(t *testing.T) {
	xs := sketchSamples()
	build := func(order []float64) *QuantileSketch[float64] {
		sk, err := NewLogQuantileSketch(1.0, 32768.0, 128)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range order {
			sk.Add(x)
		}
		return sk
	}
	fwd := build(xs)
	rev := make([]float64, len(xs))
	for i, x := range xs {
		rev[len(xs)-1-i] = x
	}
	bwd := build(rev)
	// Merge two halves in both orders.
	a1, a2 := build(xs[:100]), build(xs[100:])
	if err := a1.Merge(a2); err != nil {
		t.Fatal(err)
	}
	b2, b1 := build(xs[100:]), build(xs[:100])
	if err := b2.Merge(b1); err != nil {
		t.Fatal(err)
	}
	grid := LogGrid[float64](1, 32768, 30)
	for _, x := range grid {
		p := fwd.P(x)
		for name, sk := range map[string]*QuantileSketch[float64]{"reversed": bwd, "mergeAB": a1, "mergeBA": b2} {
			if sk.P(x) != p {
				t.Fatalf("%s: P(%v) = %v, want %v (must be bit-identical)", name, x, sk.P(x), p)
			}
		}
	}
}

func TestQuantileSketchBoundsAndErrors(t *testing.T) {
	if _, err := NewLogQuantileSketch(0.0, 10.0, 4); err == nil {
		t.Fatal("log sketch with lo=0 should fail")
	}
	if _, err := NewLogQuantileSketch(10.0, 10.0, 4); err == nil {
		t.Fatal("empty range should fail")
	}
	if _, err := NewLinearQuantileSketch(0.0, 10.0, 0); err == nil {
		t.Fatal("zero bins should fail")
	}
	a, err := NewLogQuantileSketch(1.0, 100.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLogQuantileSketch(1.0, 100.0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different layouts should fail")
	}

	// Out-of-range samples land in the clamping bins.
	sk, err := NewLinearQuantileSketch(0.0, 100.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sk.P(50) != 0 {
		t.Fatal("empty sketch should report P = 0")
	}
	sk.Add(-5)
	sk.Add(500)
	if got := sk.Quantile(0.25); got != 0 {
		t.Fatalf("underflow quantile = %v, want lo (0)", got)
	}
	if got := sk.Quantile(1); got != 100 {
		t.Fatalf("overflow quantile = %v, want hi (100)", got)
	}
	if got := sk.P(100); got != 1 {
		t.Fatalf("P(hi) = %v, want 1", got)
	}
	s := sk.SampleCDF("line", []float64{0, 50, 100})
	if len(s.Points) != 3 || s.Points[0].Y != 0.5 || s.Points[2].Y != 1 {
		t.Fatalf("SampleCDF = %+v", s.Points)
	}
}
