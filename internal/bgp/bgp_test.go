package bgp

import (
	"math"
	"testing"
	"time"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
)

func buildWorld(t *testing.T) (*topology.Backbone, *topology.ISPModel) {
	t.Helper()
	specs := []topology.SiteSpec{
		{Metro: "new-york", FrontEnd: true, Peering: true},
		{Metro: "chicago", FrontEnd: true, Peering: true},
		{Metro: "dallas", FrontEnd: true, Peering: true},
		{Metro: "los-angeles", FrontEnd: true, Peering: true},
		{Metro: "seattle", FrontEnd: true, Peering: true},
		{Metro: "phoenix", FrontEnd: true, Peering: true},
		{Metro: "denver", FrontEnd: false, Peering: true},
		{Metro: "london", FrontEnd: true, Peering: true},
		{Metro: "frankfurt", FrontEnd: true, Peering: true},
		{Metro: "stockholm", FrontEnd: true, Peering: true},
		{Metro: "paris", FrontEnd: true, Peering: true},
	}
	b, err := topology.Build(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	isps := topology.BuildISPs(b, geo.World(), topology.DefaultISPModelConfig(1))
	return b, isps
}

func findISPWithPolicy(t *testing.T, isps *topology.ISPModel, country string, p topology.EgressPolicy) (topology.ISPID, bool) {
	t.Helper()
	for _, id := range isps.ForCountry(country) {
		if isps.ISP(id).Policy == p {
			return id, true
		}
	}
	return 0, false
}

func anyISP(t *testing.T, isps *topology.ISPModel, country string, p topology.EgressPolicy) topology.ISPID {
	t.Helper()
	// Search all countries if the requested one lacks the policy.
	if id, ok := findISPWithPolicy(t, isps, country, p); ok {
		return id
	}
	for _, isp := range isps.ISPs {
		if isp.Policy == p {
			return isp.ID
		}
	}
	t.Fatalf("no ISP with policy %v", p)
	return 0
}

func TestHotPotatoPicksNearest(t *testing.T) {
	b, isps := buildWorld(t)
	r := NewRouter(b, isps, 42, DefaultConfig())
	ispID := anyISP(t, isps, "US", topology.HotPotato)
	boston, _ := geo.FindMetro("boston")
	// Most prefixes should ingress at the nearest peering site (new-york);
	// a small minority at the second nearest due to HotPotatoMissRate.
	nearest, second, other := 0, 0, 0
	for p := uint64(0); p < 2000; p++ {
		c := Client{PrefixID: p, Point: boston.Point, ISP: ispID}
		ing := r.BaseIngress(c)
		switch b.Site(ing).Metro.Name {
		case "new-york":
			nearest++
		case "chicago":
			second++
		default:
			other++
		}
	}
	if frac := float64(nearest) / 2000; frac < 0.85 || frac > 0.97 {
		t.Fatalf("nearest-ingress fraction %.2f, want ~0.92", frac)
	}
	if second == 0 {
		t.Fatal("no hot-potato misses at all")
	}
	if other != 0 {
		t.Fatalf("%d clients ingressed somewhere unexpected", other)
	}
}

func TestCentralizedUsesHub(t *testing.T) {
	b, isps := buildWorld(t)
	r := NewRouter(b, isps, 42, DefaultConfig())
	ispID := anyISP(t, isps, "RU", topology.Centralized)
	isp := isps.ISP(ispID)
	moscow, _ := geo.FindMetro("moscow")
	c := Client{PrefixID: 1, Point: moscow.Point, ISP: ispID}
	ing := r.BaseIngress(c)
	found := false
	for _, h := range isp.Hubs {
		if ing == h {
			found = true
		}
	}
	if !found {
		t.Fatalf("centralized ISP ingressed at %v, not a hub %v", ing, isp.Hubs)
	}
}

func TestTieBreakStableAndWithinTopK(t *testing.T) {
	b, isps := buildWorld(t)
	cfg := DefaultConfig()
	r := NewRouter(b, isps, 42, cfg)
	ispID := anyISP(t, isps, "US", topology.TieBreak)
	denverMetro, _ := geo.FindMetro("denver")
	counts := map[string]int{}
	for p := uint64(0); p < 3000; p++ {
		c := Client{PrefixID: p, Point: denverMetro.Point, ISP: ispID}
		ing := r.BaseIngress(c)
		if ing != r.BaseIngress(c) {
			t.Fatal("tie-break not stable")
		}
		counts[b.Site(ing).Metro.Name]++
	}
	if len(counts) < 2 || len(counts) > cfg.TieBreakTopK {
		t.Fatalf("tie-break spread over %d sites, want 2..%d: %v", len(counts), cfg.TieBreakTopK, counts)
	}
	// All chosen sites must be among the K nearest peering sites.
	ranked := b.RankPeeringByAir(denverMetro.Point)
	allowed := map[string]bool{}
	for i := 0; i < cfg.TieBreakTopK; i++ {
		allowed[b.Site(ranked[i]).Metro.Name] = true
	}
	for name := range counts {
		if !allowed[name] {
			t.Fatalf("tie-break chose %s outside top-%d", name, cfg.TieBreakTopK)
		}
	}
}

func TestAssignHotPotatoFrontEnd(t *testing.T) {
	b, isps := buildWorld(t)
	r := NewRouter(b, isps, 42, DefaultConfig())
	// Denver is peering-only: ingress there must be served by a nearby
	// front-end over the backbone at positive distance (the paper's
	// "router A has a longer intradomain route" case).
	var denver topology.SiteID = topology.InvalidSite
	for _, s := range b.Sites {
		if s.Metro.Name == "denver" {
			denver = s.ID
		}
	}
	c := Client{PrefixID: 5, Point: b.Site(denver).Metro.Point}
	a := r.Assign(c, denver)
	if a.FrontEnd == denver {
		t.Fatal("peering-only site cannot be a front-end")
	}
	if a.BackboneKm <= 0 {
		t.Fatal("backbone distance should be positive from peering-only ingress")
	}
	if !b.Site(a.FrontEnd).FrontEnd {
		t.Fatal("assignment target is not a front-end")
	}
}

func TestUnicastAssignment(t *testing.T) {
	b, isps := buildWorld(t)
	r := NewRouter(b, isps, 42, DefaultConfig())
	boston, _ := geo.FindMetro("boston")
	c := Client{PrefixID: 1, Point: boston.Point}
	fe := b.FrontEnds()[0]
	a := r.UnicastAssignment(c, fe)
	if a.FrontEnd != fe || a.Ingress != fe {
		t.Fatal("unicast must ingress at the front-end")
	}
	if a.BackboneKm != 0 {
		t.Fatal("unicast path has no backbone leg")
	}
	want := geo.DistanceKm(boston.Point, b.Site(fe).Metro.Point)
	if math.Abs(a.AirKm.Float()-want.Float()) > 1e-9 {
		t.Fatalf("unicast air distance %v, want %v", a.AirKm, want)
	}
}

func TestWeekdayCalendar(t *testing.T) {
	b, isps := buildWorld(t)
	r := NewRouter(b, isps, 42, DefaultConfig())
	if r.Weekday(0) != time.Wednesday {
		t.Fatalf("day 0 = %v, want Wednesday", r.Weekday(0))
	}
	if r.Weekday(3) != time.Saturday || !r.IsWeekend(3) {
		t.Fatalf("day 3 = %v, want Saturday/weekend", r.Weekday(3))
	}
	if r.IsWeekend(5) {
		t.Fatal("day 5 (Monday) should not be weekend")
	}
	if r.Weekday(7) != time.Wednesday {
		t.Fatal("weekday should wrap weekly")
	}
}

func TestChurnWeekendQuiet(t *testing.T) {
	b, isps := buildWorld(t)
	r := NewRouter(b, isps, 42, DefaultConfig())
	boston, _ := geo.FindMetro("boston")
	weekdaySwitches, weekendSwitches := 0, 0
	const n = 30000
	for p := uint64(0); p < n; p++ {
		c := Client{PrefixID: p, Point: boston.Point}
		if r.SwitchedOnDay(c, 0) { // Wednesday
			weekdaySwitches++
		}
		if r.SwitchedOnDay(c, 3) { // Saturday
			weekendSwitches++
		}
	}
	wd := float64(weekdaySwitches) / n
	we := float64(weekendSwitches) / n
	if wd < 0.03 || wd > 0.12 {
		t.Fatalf("weekday switch rate %.3f outside plausible range", wd)
	}
	if we > wd*0.25 {
		t.Fatalf("weekend switch rate %.3f not much lower than weekday %.3f", we, wd)
	}
}

func TestIngressScheduleConsistency(t *testing.T) {
	b, isps := buildWorld(t)
	r := NewRouter(b, isps, 42, DefaultConfig())
	boston, _ := geo.FindMetro("boston")
	c := Client{PrefixID: 77, Point: boston.Point, ISP: 0}
	s1 := r.IngressSchedule(c, 30)
	s2 := r.IngressSchedule(c, 30)
	for d := range s1 {
		if s1[d] != s2[d] {
			t.Fatal("ingress schedule not deterministic")
		}
	}
	// The schedule only changes on switch days.
	for d := 1; d < 30; d++ {
		if s1[d] != s1[d-1] && !r.SwitchedOnDay(c, d) {
			t.Fatalf("ingress changed on day %d without a switch event", d)
		}
	}
}

func TestSwitchChangesIngress(t *testing.T) {
	b, isps := buildWorld(t)
	r := NewRouter(b, isps, 42, DefaultConfig())
	boston, _ := geo.FindMetro("boston")
	// Find clients with a switch event after day 0 and verify the ingress
	// actually changes that day.
	checked := 0
	for p := uint64(0); p < 5000 && checked < 50; p++ {
		c := Client{PrefixID: p, Point: boston.Point, ISP: 0}
		sched := r.IngressSchedule(c, 14)
		for d := 1; d < 14; d++ {
			if r.SwitchedOnDay(c, d) {
				if sched[d] == sched[d-1] {
					t.Fatalf("prefix %d day %d: switch event but same ingress", p, d)
				}
				checked++
				break
			}
		}
	}
	if checked == 0 {
		t.Fatal("no switch events found to check")
	}
}

func TestSwitchTargetsMostlyNearby(t *testing.T) {
	b, isps := buildWorld(t)
	r := NewRouter(b, isps, 42, DefaultConfig())
	boston, _ := geo.FindMetro("boston")
	var dists []float64
	for p := uint64(0); p < 20000; p++ {
		c := Client{PrefixID: p, Point: boston.Point, ISP: 0}
		sched := r.AssignmentSchedule(c, 14)
		for d := 1; d < 14; d++ {
			if sched[d].FrontEnd != sched[d-1].FrontEnd {
				a := b.Site(sched[d-1].FrontEnd).Metro.Point
				bb := b.Site(sched[d].FrontEnd).Metro.Point
				dists = append(dists, geo.DistanceKm(a, bb).Float())
			}
		}
	}
	if len(dists) < 100 {
		t.Fatalf("only %d front-end switches observed", len(dists))
	}
	med := medianOf(dists)
	// Front-end switches should be to relatively nearby alternatives
	// (paper: median 483 km) — certainly not trans-oceanic.
	if med > 2500 {
		t.Fatalf("median switch distance %.0f km; switches should be nearby", med)
	}
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func BenchmarkAssignmentSchedule(b *testing.B) {
	specs := []topology.SiteSpec{
		{Metro: "new-york", FrontEnd: true, Peering: true},
		{Metro: "chicago", FrontEnd: true, Peering: true},
		{Metro: "dallas", FrontEnd: true, Peering: true},
		{Metro: "london", FrontEnd: true, Peering: true},
	}
	bb, err := topology.Build(specs, 2)
	if err != nil {
		b.Fatal(err)
	}
	isps := topology.BuildISPs(bb, geo.World(), topology.DefaultISPModelConfig(1))
	r := NewRouter(bb, isps, 42, DefaultConfig())
	boston, _ := geo.FindMetro("boston")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := Client{PrefixID: uint64(i), Point: boston.Point, ISP: 0}
		_ = r.AssignmentSchedule(c, 30)
	}
}
