package bgp

import (
	"testing"
	"testing/quick"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
)

// propWorld builds one backbone/ISP fixture shared across property tests.
func propWorld(t *testing.T) (*Router, *topology.Backbone) {
	t.Helper()
	b, isps := buildWorld(t)
	return NewRouter(b, isps, 99, DefaultConfig()), b
}

// clientAt places a synthetic client at a clamped lat/lon with a random
// ISP of the model.
func clientAt(r *Router, prefix uint64, lat, lon float64) Client {
	clampLat := func(v float64) float64 {
		if v < -60 {
			return -60
		}
		if v > 70 {
			return 70
		}
		return v
	}
	clampLon := func(v float64) float64 {
		if v < -180 {
			return -180
		}
		if v > 180 {
			return 180
		}
		return v
	}
	isp := topology.ISPID(prefix % uint64(r.ISPs().Len()))
	return Client{
		PrefixID: prefix,
		Point:    geo.Point{Lat: clampLat(lat), Lon: clampLon(lon)},
		ISP:      isp,
	}
}

func TestAssignmentInvariantsProperty(t *testing.T) {
	r, b := propWorld(t)
	f := func(prefix uint64, lat, lon float64) bool {
		c := clientAt(r, prefix, lat, lon)
		if !c.Point.Valid() {
			return true
		}
		ing := r.BaseIngress(c)
		// Ingress must be a peering site.
		if !b.Site(ing).Peering {
			return false
		}
		a := r.Assign(c, ing)
		// The serving site must be a front-end, the backbone distance
		// must equal the IGP metric from ingress, and the air distance
		// must be the great-circle to the ingress.
		if !b.Site(a.FrontEnd).FrontEnd {
			return false
		}
		if a.BackboneKm != b.IGPDistanceKm(ing, a.FrontEnd) {
			return false
		}
		want := geo.DistanceKm(c.Point, b.Site(ing).Metro.Point)
		return abs(a.AirKm.Float()-want.Float()) < 1e-9 && !a.Unicast
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnicastInvariantsProperty(t *testing.T) {
	r, b := propWorld(t)
	fes := b.FrontEnds()
	f := func(prefix uint64, lat, lon float64, feIdx uint8) bool {
		c := clientAt(r, prefix, lat, lon)
		if !c.Point.Valid() {
			return true
		}
		fe := fes[int(feIdx)%len(fes)]
		a := r.UnicastAssignment(c, fe)
		if a.FrontEnd != fe || a.Ingress != fe || !a.Unicast || a.BackboneKm != 0 {
			return false
		}
		// The unicast air distance can never be shorter than the direct
		// great-circle (single-interconnect detours only add distance).
		direct := geo.DistanceKm(c.Point, b.Site(fe).Metro.Point)
		return a.AirKm >= direct-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleSitesValidProperty(t *testing.T) {
	r, b := propWorld(t)
	f := func(prefix uint64, lat, lon float64) bool {
		c := clientAt(r, prefix, lat, lon)
		if !c.Point.Valid() {
			return true
		}
		for _, a := range r.AssignmentSchedule(c, 10) {
			if !b.Site(a.Ingress).Peering || !b.Site(a.FrontEnd).FrontEnd {
				return false
			}
			if a.AirKm < 0 || a.BackboneKm < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
