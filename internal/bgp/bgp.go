// Package bgp models interdomain route selection toward the CDN's anycast
// prefix, and the route dynamics (churn) that drive front-end affinity.
//
// Anycast selection happens in two halves, mirroring the paper's
// description:
//
//  1. The client's ISP picks an egress peering point toward the CDN AS
//     according to its policy (topology.EgressPolicy): hot-potato to the
//     nearest peering site, centralized through a national hub, or a
//     geography-blind tie-break among nearby peering sites.
//  2. The CDN AS routes hot-potato from that ingress to the front-end
//     nearest by IGP metric (topology.Backbone.HotPotatoFrontEnd).
//
// Unicast selection is trivial by construction: each front-end's unicast
// /24 is announced only at the peering point closest to that front-end
// (§3.1), so unicast traffic ingresses at the front-end itself.
//
// Churn: per client prefix, route-change events arrive day by day with a
// heterogeneous per-client rate (most clients are stable, a small class is
// flappy) modulated by a weekday/weekend factor — network operators push
// fewer changes on weekends (§5, Figure 7).
package bgp

import (
	"time"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// Client is the view of a client prefix that routing needs.
type Client struct {
	PrefixID uint64
	Point    geo.Point
	ISP      topology.ISPID
}

// Assignment is the outcome of anycast routing for one client on one day.
type Assignment struct {
	// Ingress is the peering site where the client's traffic enters the
	// CDN AS.
	Ingress topology.SiteID
	// FrontEnd is the front-end that serves the traffic (hot-potato from
	// Ingress).
	FrontEnd topology.SiteID
	// AirKm is the great-circle distance from the client to the ingress.
	AirKm units.Kilometers
	// BackboneKm is the IGP distance from ingress to front-end.
	BackboneKm units.Kilometers
	// Unicast marks a beacon unicast path (ingresses at the front-end's
	// own peering point; see latency.Path.Unicast).
	Unicast bool
}

// Config parameterizes routing and churn.
type Config struct {
	// TieBreakTopK is how many nearest peering sites a TieBreak ISP
	// chooses among.
	TieBreakTopK int
	// HotPotatoMissRate is the probability that a hot-potato ISP lacks
	// peering at the site nearest a given client and uses the next one.
	HotPotatoMissRate float64
	// Churn class mix: fraction of clients that are stable / moderate /
	// flappy, with the per-weekday switch probability of each class.
	StableFrac, ModerateFrac float64 // flappy = 1 - stable - moderate
	StableRate, ModerateRate float64
	FlappyRate               float64
	// WeekendFactor multiplies switch rates on Saturday and Sunday.
	WeekendFactor float64
	// StartWeekday is the day of week of simulation day 0. The paper's
	// passive dataset starts Wednesday, April 1, 2015.
	StartWeekday time.Weekday
}

// DefaultConfig returns the calibration used by the experiments.
func DefaultConfig() Config {
	return Config{
		TieBreakTopK:      4,
		HotPotatoMissRate: 0.10,
		StableFrac:        0.72,
		ModerateFrac:      0.20,
		StableRate:        0.007,
		ModerateRate:      0.13,
		FlappyRate:        0.55,
		WeekendFactor:     0.10,
		StartWeekday:      time.Wednesday,
	}
}

// Per-router substream labels, hashed once. SwitchedOnDay and churnClass
// run once per client-day; the schedule builders run once per client. All
// use value-type streams reseeded from these labels so the routing layer
// contributes no steady-state allocations to a simulated month.
var (
	labelTieBreak    = xrand.NewLabel("tiebreak")
	labelHPMiss      = xrand.NewLabel("hp-miss")
	labelChurnClass  = xrand.NewLabel("churn-class")
	labelChurnEvent  = xrand.NewLabel("churn-event")
	labelChurnTarget = xrand.NewLabel("churn-target")
)

// Router computes anycast assignments.
type Router struct {
	backbone *topology.Backbone
	isps     *topology.ISPModel
	cfg      Config
	seed     uint64
}

// NewRouter builds a router over the given backbone and ISP model.
func NewRouter(b *topology.Backbone, isps *topology.ISPModel, seed uint64, cfg Config) *Router {
	if cfg.TieBreakTopK < 1 {
		cfg.TieBreakTopK = 1
	}
	return &Router{backbone: b, isps: isps, cfg: cfg, seed: seed}
}

// Weekday returns the day of week of a simulation day.
func (r *Router) Weekday(day int) time.Weekday {
	return time.Weekday((int(r.cfg.StartWeekday) + day%7 + 7) % 7)
}

// IsWeekend reports whether the simulation day falls on a weekend.
func (r *Router) IsWeekend(day int) bool {
	wd := r.Weekday(day)
	return wd == time.Saturday || wd == time.Sunday
}

// rankBufSites sizes the stack buffers the routing paths hand to
// RankPeeringByAirInto; larger peering sets fall back to the heap.
const rankBufSites = 128

// BaseIngress returns the steady-state ingress peering site for a client,
// applying its ISP's egress policy.
func (r *Router) BaseIngress(c Client) topology.SiteID {
	isp := r.isps.ISP(c.ISP)
	if isp.Policy == topology.Centralized {
		// Nearest hub to the client among the ISP's hub set. With one hub
		// this is the paper's Moscow→Stockholm pathology whenever the hub
		// is far from the client.
		return r.nearestHub(c, isp)
	}
	var rbuf [rankBufSites]topology.SiteID
	return r.baseIngressRanked(c, isp, r.backbone.RankPeeringByAirInto(c.Point, rbuf[:0]))
}

// baseIngressRanked resolves the TieBreak and HotPotato policies given the
// client's precomputed peering ranking. The schedule builder ranks once per
// client and shares the result with every switch day.
func (r *Router) baseIngressRanked(c Client, isp topology.ISP, ranked []topology.SiteID) topology.SiteID {
	if isp.Policy == topology.TieBreak {
		k := r.cfg.TieBreakTopK
		if k > len(ranked) {
			k = len(ranked)
		}
		// A stable, geography-blind choice among the k nearest: the BGP
		// decision depends on AS-path artifacts, not distance, so it is a
		// hash of (ISP salt, prefix) — consistent for the client, but
		// uncorrelated with which candidate is closest.
		var rs xrand.Stream
		rs.Reseed(xrand.DeriveSeedL2(r.seed, labelTieBreak, isp.TieBreakSalt, c.PrefixID))
		return ranked[rs.Intn(k)]
	}
	// HotPotato
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL2(r.seed, labelHPMiss, uint64(isp.ID), c.PrefixID))
	if len(ranked) > 1 && rs.Bool(r.cfg.HotPotatoMissRate) {
		return ranked[1]
	}
	return ranked[0]
}

// churnClass returns the per-weekday switch rate for a client.
func (r *Router) churnClass(prefixID uint64) float64 {
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL1(r.seed, labelChurnClass, prefixID))
	u := rs.Float64()
	switch {
	case u < r.cfg.StableFrac:
		return r.cfg.StableRate
	case u < r.cfg.StableFrac+r.cfg.ModerateFrac:
		return r.cfg.ModerateRate
	default:
		return r.cfg.FlappyRate
	}
}

// SwitchedOnDay reports whether the client's route changed during the
// given day (a BGP path change event).
func (r *Router) SwitchedOnDay(c Client, day int) bool {
	rate := r.churnClass(c.PrefixID)
	if r.IsWeekend(day) {
		rate *= r.cfg.WeekendFactor
	}
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL2(r.seed, labelChurnEvent, c.PrefixID, uint64(day)))
	return rs.Bool(rate)
}

// alternativeIngress picks the ingress a route change lands on: usually a
// nearby alternative (rank 2–4 by distance), occasionally back to rank 1.
// ranked is the client's peering ranking from RankPeeringByAir.
func (r *Router) alternativeIngress(ranked []topology.SiteID, c Client, day int, current topology.SiteID) topology.SiteID {
	if len(ranked) == 1 {
		return ranked[0]
	}
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL2(r.seed, labelChurnTarget, c.PrefixID, uint64(day)))
	// Geometric preference over ranks: nearby alternatives dominate, with
	// a long tail, matching Figure 8's switch-distance distribution. The
	// peering set is deployment-sized, so the weights fit a stack buffer.
	var wbuf [128]float64
	var weights []float64
	if len(ranked) <= len(wbuf) {
		weights = wbuf[:len(ranked)]
	} else {
		weights = make([]float64, len(ranked))
	}
	w := 1.0
	for i := range ranked {
		if ranked[i] == current {
			weights[i] = 0 // a switch must change the ingress
			continue
		}
		weights[i] = w
		w *= 0.30
	}
	idx := rs.WeightedChoice(weights)
	if idx < 0 {
		return current
	}
	return ranked[idx]
}

// IngressSchedule returns the client's ingress for each of days [0, days).
// Day d's ingress reflects any switch events up to and including day d.
func (r *Router) IngressSchedule(c Client, days int) []topology.SiteID {
	out := make([]topology.SiteID, days)
	r.IngressScheduleInto(c, out)
	return out
}

// IngressScheduleInto fills out[d] with the client's ingress on day d, for
// d in [0, len(out)) — IngressSchedule without the allocation, for callers
// (the streaming simulation) that pack all clients' schedules into one
// flat array instead of holding a slice per client. The peering ranking is
// computed once here and reused for the base choice and every switch day,
// so extra simulated days cost no extra ranking work (and no allocations).
func (r *Router) IngressScheduleInto(c Client, out []topology.SiteID) {
	isp := r.isps.ISP(c.ISP)
	var rbuf [rankBufSites]topology.SiteID
	ranked := r.backbone.RankPeeringByAirInto(c.Point, rbuf[:0])
	var cur topology.SiteID
	if isp.Policy == topology.Centralized {
		cur = r.nearestHub(c, isp)
	} else {
		cur = r.baseIngressRanked(c, isp, ranked)
	}
	for d := range out {
		if r.SwitchedOnDay(c, d) {
			cur = r.alternativeIngress(ranked, c, d, cur)
		}
		out[d] = cur
	}
}

// Assign resolves a full assignment from an ingress.
func (r *Router) Assign(c Client, ingress topology.SiteID) Assignment {
	fe, backboneKm := r.backbone.HotPotatoFrontEnd(ingress)
	return Assignment{
		Ingress:    ingress,
		FrontEnd:   fe,
		AirKm:      geo.DistanceKm(c.Point, r.site(ingress)),
		BackboneKm: backboneKm,
	}
}

// AssignExcluding resolves an assignment from an ingress while skipping
// front-ends for which excludedFE reports true — the CDN-side view of a
// front-end drain (internal/faults). If every front-end is excluded the
// plain hot-potato assignment is returned: a deployment cannot drain its
// last front-end, it can only overload it.
func (r *Router) AssignExcluding(c Client, ingress topology.SiteID, excludedFE func(topology.SiteID) bool) Assignment {
	fe, backboneKm := r.backbone.HotPotatoFrontEndExcluding(ingress, excludedFE)
	if fe == topology.InvalidSite {
		return r.Assign(c, ingress)
	}
	return Assignment{
		Ingress:    ingress,
		FrontEnd:   fe,
		AirKm:      geo.DistanceKm(c.Point, r.site(ingress)),
		BackboneKm: backboneKm,
	}
}

// AssignmentSchedule returns the per-day assignment over [0, days).
func (r *Router) AssignmentSchedule(c Client, days int) []Assignment {
	ingress := r.IngressSchedule(c, days)
	out := make([]Assignment, days)
	for d, ing := range ingress {
		out[d] = r.Assign(c, ing)
	}
	return out
}

// UnicastAssignment returns the path for a direct unicast fetch from the
// client to the given front-end. The unicast /24 is announced only at the
// front-end's own peering point (§3.1), so for most clients the whole path
// rides the public Internet straight to the front-end. Clients of a
// single-interconnect centralized ISP are the exception: their ISP hauls
// ALL CDN-bound traffic through its hub, so the unicast path detours
// through the hub too and shares anycast's fate.
func (r *Router) UnicastAssignment(c Client, fe topology.SiteID) Assignment {
	airKm := geo.DistanceKm(c.Point, r.site(fe))
	if int(c.ISP) < r.isps.Len() {
		isp := r.isps.ISP(c.ISP)
		if isp.Policy == topology.Centralized && isp.SingleInterconnect {
			hub := r.nearestHub(c, isp)
			airKm = geo.DistanceKm(c.Point, r.site(hub)) +
				geo.DistanceKm(r.site(hub), r.site(fe))
		}
	}
	return Assignment{
		Ingress:    fe,
		FrontEnd:   fe,
		AirKm:      airKm,
		BackboneKm: 0,
		Unicast:    true,
	}
}

// nearestHub returns the ISP hub nearest to the client.
func (r *Router) nearestHub(c Client, isp topology.ISP) topology.SiteID {
	best, bestD := isp.Hubs[0], geo.DistanceKm(c.Point, r.site(isp.Hubs[0]))
	for _, h := range isp.Hubs[1:] {
		if d := geo.DistanceKm(c.Point, r.site(h)); d < bestD {
			best, bestD = h, d
		}
	}
	return best
}

func (r *Router) site(id topology.SiteID) geo.Point {
	return r.backbone.Site(id).Metro.Point
}

// Backbone exposes the underlying backbone (read-only use).
func (r *Router) Backbone() *topology.Backbone { return r.backbone }

// ISPs exposes the ISP model (read-only use).
func (r *Router) ISPs() *topology.ISPModel { return r.isps }
