package core

import (
	"testing"
	"testing/quick"

	"anycastcdn/internal/dns"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// genObservations builds a random but well-formed observation set from a
// seed: a handful of clients and targets with latencies in a plausible
// range.
func genObservations(seed uint64, n int) []Observation {
	rs := xrand.New(seed)
	obs := make([]Observation, n)
	for i := range obs {
		client := uint64(rs.Intn(6))
		target := AnycastTarget
		if rs.Bool(0.7) {
			target = Target{Site: topology.SiteID(rs.Intn(4))}
		}
		obs[i] = Observation{
			ClientID: client,
			LDNS:     dns.LDNSID(client % 3),
			Target:   target,
			RTTms:    units.Millis(10 + rs.Float64()*90),
			Slot:     uint8(rs.Intn(4)),
		}
	}
	return obs
}

func TestTrainPermutationInvariantProperty(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 5})
	f := func(seed uint64) bool {
		obs := genObservations(seed, 300)
		pred1 := p.Train(obs, ByPrefix)
		// Shuffle and retrain: the prediction must not depend on input
		// order.
		shuffled := append([]Observation(nil), obs...)
		rs := xrand.New(seed ^ 0xabcdef)
		rs.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		pred2 := p.Train(shuffled, ByPrefix)
		if pred1.Len() != pred2.Len() {
			return false
		}
		for c := uint64(0); c < 6; c++ {
			if pred1.For(c, dns.LDNSID(c%3)) != pred2.For(c, dns.LDNSID(c%3)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainChoosesQualifyingMinimumProperty(t *testing.T) {
	// Whatever the predictor picks for a group must have the lowest
	// metric among qualifying targets (ties broken toward anycast).
	cfg := Config{Metric: MetricP25, MinMeasurements: 5}
	p := NewPredictor(cfg)
	f := func(seed uint64) bool {
		obs := genObservations(seed, 400)
		pred := p.Train(obs, ByPrefix)
		// Recompute by brute force.
		byGroupTarget := map[uint64]map[Target][]units.Millis{}
		for _, o := range obs {
			if byGroupTarget[o.ClientID] == nil {
				byGroupTarget[o.ClientID] = map[Target][]units.Millis{}
			}
			byGroupTarget[o.ClientID][o.Target] = append(byGroupTarget[o.ClientID][o.Target], o.RTTms)
		}
		for client, targets := range byGroupTarget {
			chosen := pred.For(client, 0)
			chosenSamples, ok := targets[chosen]
			if !ok {
				// Fallback to anycast is allowed when nothing qualified.
				if !chosen.Anycast {
					return false
				}
				continue
			}
			if chosen.Anycast && len(chosenSamples) < cfg.MinMeasurements {
				// Anycast fallback without qualification is fine.
				continue
			}
			chosenScore := quantileOf(chosenSamples, float64(cfg.Metric))
			for target, ss := range targets {
				if len(ss) < cfg.MinMeasurements || target == chosen {
					continue
				}
				score := quantileOf(ss, float64(cfg.Metric))
				if score < chosenScore-1e-9 {
					return false // a strictly better qualifying target existed
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func quantileOf(xs []units.Millis, q float64) units.Millis {
	s := append([]units.Millis(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return units.Millis(s[lo].Float()*(1-frac) + s[lo+1].Float()*frac)
}

func TestEvaluateWeightsProperty(t *testing.T) {
	// Every evaluation must carry the volume weight when provided, 1
	// otherwise, and anycast predictions always evaluate to exactly 0.
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 5})
	f := func(seed uint64) bool {
		train := genObservations(seed, 300)
		next := genObservations(seed^1, 300)
		pred := p.Train(train, ByPrefix)
		vols := map[uint64]float64{0: 2.5, 1: 7}
		evals := Evaluator{Percentile: 0.5, MinSamples: 2}.Evaluate(pred, next, vols)
		for _, e := range evals {
			want := 1.0
			if v, ok := vols[e.ClientID]; ok {
				want = v
			}
			if e.Weight != want {
				return false
			}
			if e.Predicted.Anycast && e.ImprovementMs != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridNeverRedirectsMoreProperty(t *testing.T) {
	// A hybrid margin can only reduce the set of redirected groups.
	plain := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 5})
	hybrid := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 5, HybridMarginMs: 8})
	f := func(seed uint64) bool {
		obs := genObservations(seed, 400)
		pp := plain.Train(obs, ByPrefix)
		hp := hybrid.Train(obs, ByPrefix)
		for c := uint64(0); c < 6; c++ {
			pt := pp.For(c, 0)
			ht := hp.For(c, 0)
			if pt.Anycast && !ht.Anycast {
				return false // hybrid redirected where plain did not
			}
			if !ht.Anycast && ht != pt {
				return false // hybrid may only keep plain's choice or fall back
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
