package core

import (
	"math"
	"sort"
	"testing"

	"anycastcdn/internal/beacon"
	"anycastcdn/internal/dns"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// mkObs builds n observations for one (client, ldns, target) with the
// given latencies cycling.
func mkObs(client uint64, ldns dns.LDNSID, t Target, rtts ...float64) []Observation {
	out := make([]Observation, len(rtts))
	for i, r := range rtts {
		out[i] = Observation{ClientID: client, LDNS: ldns, Target: t, RTTms: units.Millis(r)}
	}
	return out
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestTrainPicksFastestTarget(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 3})
	fe1 := Target{Site: 1}
	fe2 := Target{Site: 2}
	var obs []Observation
	obs = append(obs, mkObs(10, 5, AnycastTarget, repeat(50, 5)...)...)
	obs = append(obs, mkObs(10, 5, fe1, repeat(30, 5)...)...)
	obs = append(obs, mkObs(10, 5, fe2, repeat(40, 5)...)...)
	pred := p.Train(obs, ByPrefix)
	if got := pred.For(10, 5); got != fe1 {
		t.Fatalf("predicted %v, want front-end(1)", got)
	}
	if pred.Len() != 1 {
		t.Fatalf("predictions for %d groups, want 1", pred.Len())
	}
}

func TestTrainPrefersAnycastWhenBest(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 3})
	fe1 := Target{Site: 1}
	var obs []Observation
	obs = append(obs, mkObs(10, 5, AnycastTarget, repeat(20, 5)...)...)
	obs = append(obs, mkObs(10, 5, fe1, repeat(30, 5)...)...)
	pred := p.Train(obs, ByPrefix)
	if got := pred.For(10, 5); !got.Anycast {
		t.Fatalf("predicted %v, want anycast", got)
	}
}

func TestTrainTiePrefersAnycast(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricMedian, MinMeasurements: 3})
	fe1 := Target{Site: 1}
	var obs []Observation
	obs = append(obs, mkObs(10, 5, AnycastTarget, repeat(25, 5)...)...)
	obs = append(obs, mkObs(10, 5, fe1, repeat(25, 5)...)...)
	pred := p.Train(obs, ByPrefix)
	if got := pred.For(10, 5); !got.Anycast {
		t.Fatalf("tie should keep anycast, got %v", got)
	}
}

func TestTrainMinMeasurementFloor(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 20})
	fe1 := Target{Site: 1}
	var obs []Observation
	obs = append(obs, mkObs(10, 5, AnycastTarget, repeat(50, 25)...)...)
	obs = append(obs, mkObs(10, 5, fe1, repeat(10, 19)...)...) // below floor
	pred := p.Train(obs, ByPrefix)
	if got := pred.For(10, 5); !got.Anycast {
		t.Fatalf("under-measured target must not be chosen, got %v", got)
	}
	// With one more measurement it qualifies.
	obs = append(obs, mkObs(10, 5, fe1, 10)...)
	pred = p.Train(obs, ByPrefix)
	if got := pred.For(10, 5); got != fe1 {
		t.Fatalf("qualifying target should be chosen, got %v", got)
	}
}

func TestTrainNoQualifyingTargets(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 20})
	obs := mkObs(10, 5, Target{Site: 1}, repeat(10, 3)...)
	pred := p.Train(obs, ByPrefix)
	if pred.Len() != 0 {
		t.Fatalf("no group should qualify, got %d", pred.Len())
	}
	if got := pred.For(10, 5); !got.Anycast {
		t.Fatal("unknown groups must fall back to anycast")
	}
}

func TestTrainLDNSGroupingMixesClients(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricMedian, MinMeasurements: 4})
	fe1 := Target{Site: 1}
	var obs []Observation
	// Two clients share LDNS 7. Client A is fast to fe1, client B slow.
	obs = append(obs, mkObs(1, 7, fe1, repeat(10, 4)...)...)
	obs = append(obs, mkObs(2, 7, fe1, repeat(90, 4)...)...)
	obs = append(obs, mkObs(1, 7, AnycastTarget, repeat(40, 4)...)...)
	obs = append(obs, mkObs(2, 7, AnycastTarget, repeat(40, 4)...)...)
	predLDNS := p.Train(obs, ByLDNS)
	predECS := p.Train(obs, ByPrefix)
	// Under LDNS grouping both clients get the same target.
	if predLDNS.For(1, 7) != predLDNS.For(2, 7) {
		t.Fatal("LDNS grouping must give one answer per resolver")
	}
	// Under ECS grouping the clients can differ.
	if predECS.For(1, 7) != fe1 {
		t.Fatalf("client 1 should get fe1 under ECS, got %v", predECS.For(1, 7))
	}
	if predECS.For(2, 7) == fe1 {
		t.Fatal("client 2 should not get fe1 under ECS")
	}
}

func TestHybridMargin(t *testing.T) {
	fe1 := Target{Site: 1}
	var obs []Observation
	obs = append(obs, mkObs(10, 5, AnycastTarget, repeat(50, 5)...)...)
	obs = append(obs, mkObs(10, 5, fe1, repeat(45, 5)...)...) // gain = 5ms
	plain := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 3})
	if got := plain.Train(obs, ByPrefix).For(10, 5); got != fe1 {
		t.Fatalf("plain scheme should redirect, got %v", got)
	}
	hybrid := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 3, HybridMarginMs: 10})
	if got := hybrid.Train(obs, ByPrefix).For(10, 5); !got.Anycast {
		t.Fatalf("hybrid with 10ms margin should keep anycast for a 5ms gain, got %v", got)
	}
	hybrid2 := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 3, HybridMarginMs: 3})
	if got := hybrid2.Train(obs, ByPrefix).For(10, 5); got != fe1 {
		t.Fatalf("hybrid with 3ms margin should redirect for a 5ms gain, got %v", got)
	}
}

func TestRedirectedFraction(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 2})
	fe1 := Target{Site: 1}
	var obs []Observation
	obs = append(obs, mkObs(1, 0, AnycastTarget, repeat(50, 3)...)...)
	obs = append(obs, mkObs(1, 0, fe1, repeat(10, 3)...)...)
	obs = append(obs, mkObs(2, 0, AnycastTarget, repeat(10, 3)...)...)
	obs = append(obs, mkObs(2, 0, fe1, repeat(50, 3)...)...)
	pred := p.Train(obs, ByPrefix)
	if got := pred.RedirectedFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("redirected fraction = %v, want 0.5", got)
	}
	empty := p.Train(nil, ByPrefix)
	if empty.RedirectedFraction() != 0 {
		t.Fatal("empty predictions should have zero redirected fraction")
	}
}

func TestNewPredictorClampsConfig(t *testing.T) {
	p := NewPredictor(Config{Metric: -1, MinMeasurements: 0, HybridMarginMs: -5})
	cfg := p.Config()
	if cfg.Metric != MetricP25 || cfg.MinMeasurements != 20 || cfg.HybridMarginMs != 0 {
		t.Fatalf("config not clamped: %+v", cfg)
	}
}

func TestFromMeasurement(t *testing.T) {
	m := beacon.Measurement{
		QueryID:  1,
		ClientID: 42,
		LDNS:     7,
		Anycast:  beacon.TargetSample{Site: 3, RTTms: 33},
		Unicast: [3]beacon.TargetSample{
			{Site: 1, RTTms: 11}, {Site: 2, RTTms: 22}, {Site: 4, RTTms: 44},
		},
	}
	obs := FromMeasurement(m)
	if len(obs) != 4 {
		t.Fatalf("got %d observations, want 4", len(obs))
	}
	if !obs[0].Target.Anycast || obs[0].RTTms != 33 {
		t.Fatalf("first observation should be anycast: %+v", obs[0])
	}
	for i, o := range obs {
		if o.ClientID != 42 || o.LDNS != 7 {
			t.Fatalf("observation %d lost identity: %+v", i, o)
		}
	}
	if obs[1].Target != (Target{Site: topology.SiteID(1)}) || obs[1].RTTms != 11 {
		t.Fatalf("unicast observation wrong: %+v", obs[1])
	}
}

func TestTargetString(t *testing.T) {
	if AnycastTarget.String() != "anycast" {
		t.Fatal("anycast target name")
	}
	if (Target{Site: 3}).String() != "front-end(3)" {
		t.Fatalf("front-end target name: %s", Target{Site: 3})
	}
	if ByPrefix.String() != "ecs-prefix" || ByLDNS.String() != "ldns" {
		t.Fatal("grouping names")
	}
}

func TestEvaluateImprovement(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 3})
	fe1 := Target{Site: 1}
	var train []Observation
	train = append(train, mkObs(10, 5, AnycastTarget, repeat(50, 5)...)...)
	train = append(train, mkObs(10, 5, fe1, repeat(30, 5)...)...)
	pred := p.Train(train, ByPrefix)

	var next []Observation
	next = append(next, mkObs(10, 5, AnycastTarget, repeat(52, 4)...)...)
	next = append(next, mkObs(10, 5, fe1, repeat(31, 4)...)...)
	ev := Evaluator{Percentile: 0.5, MinSamples: 2}
	evals := ev.Evaluate(pred, next, map[uint64]float64{10: 3})
	if len(evals) != 1 {
		t.Fatalf("got %d evaluations, want 1", len(evals))
	}
	e := evals[0]
	if e.ClientID != 10 || e.Weight != 3 || e.Predicted != fe1 {
		t.Fatalf("bad evaluation %+v", e)
	}
	if math.Abs(e.ImprovementMs.Float()-21) > 1e-9 {
		t.Fatalf("improvement %v, want 21", e.ImprovementMs)
	}
}

func TestEvaluatePenalty(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 3})
	fe1 := Target{Site: 1}
	var train []Observation
	train = append(train, mkObs(10, 5, AnycastTarget, repeat(50, 5)...)...)
	train = append(train, mkObs(10, 5, fe1, repeat(30, 5)...)...)
	pred := p.Train(train, ByPrefix)
	// Next day the predicted front-end got worse: negative improvement.
	var next []Observation
	next = append(next, mkObs(10, 5, AnycastTarget, repeat(40, 4)...)...)
	next = append(next, mkObs(10, 5, fe1, repeat(70, 4)...)...)
	evals := Evaluator{Percentile: 0.5, MinSamples: 2}.Evaluate(pred, next, nil)
	if len(evals) != 1 || evals[0].ImprovementMs >= 0 {
		t.Fatalf("expected a penalty, got %+v", evals)
	}
}

func TestEvaluateAnycastPredictionIsZero(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 3})
	var train []Observation
	train = append(train, mkObs(10, 5, AnycastTarget, repeat(20, 5)...)...)
	train = append(train, mkObs(10, 5, Target{Site: 1}, repeat(30, 5)...)...)
	pred := p.Train(train, ByPrefix)
	next := mkObs(10, 5, AnycastTarget, repeat(25, 4)...)
	evals := Evaluator{Percentile: 0.5}.Evaluate(pred, next, nil)
	if len(evals) != 1 || evals[0].ImprovementMs != 0 || !evals[0].Predicted.Anycast {
		t.Fatalf("anycast prediction should evaluate to zero: %+v", evals)
	}
}

func TestEvaluateSkipsUnmeasurable(t *testing.T) {
	p := NewPredictor(Config{Metric: MetricP25, MinMeasurements: 3})
	fe1 := Target{Site: 1}
	var train []Observation
	train = append(train, mkObs(10, 5, AnycastTarget, repeat(50, 5)...)...)
	train = append(train, mkObs(10, 5, fe1, repeat(30, 5)...)...)
	pred := p.Train(train, ByPrefix)
	// Next day has no samples to the predicted front-end.
	next := mkObs(10, 5, AnycastTarget, repeat(40, 4)...)
	evals := Evaluator{Percentile: 0.5, MinSamples: 2}.Evaluate(pred, next, nil)
	if len(evals) != 0 {
		t.Fatalf("unmeasurable client should be skipped, got %+v", evals)
	}
}

func TestEvaluateDefaultsClamped(t *testing.T) {
	pred := NewPredictor(DefaultConfig()).Train(nil, ByPrefix)
	next := mkObs(10, 5, AnycastTarget, repeat(40, 4)...)
	evals := Evaluator{Percentile: 7, MinSamples: -1}.Evaluate(pred, next, nil)
	if len(evals) != 1 {
		t.Fatalf("clamped evaluator should still evaluate, got %+v", evals)
	}
}

// trainReference is the pre-optimization Train written the obvious O(G×K)
// way: for every group, rescan the whole samples map for its qualifying
// targets. The production Train indexes targets per group in one pass; the
// two must agree exactly on every prediction and score (same target sort,
// same tie-breaks), which TestTrainMatchesReference pins over a dense and
// a sparse workload.
func trainReference(p *Predictor, obs []Observation, g Grouping) *Predictions {
	type sampleKey struct {
		group  uint64
		target Target
	}
	cfg := p.Config()
	samples := map[sampleKey][]units.Millis{}
	groups := map[uint64]bool{}
	for _, o := range obs {
		k := sampleKey{groupKey(o, g), o.Target}
		samples[k] = append(samples[k], o.RTTms)
		groups[k.group] = true
	}
	pr := &Predictions{Grouping: g, byGroup: map[uint64]Target{}, scores: map[uint64]units.Millis{}}
	ids := make([]uint64, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		var targets []Target
		for k, ss := range samples {
			if k.group != id || len(ss) < cfg.MinMeasurements {
				continue
			}
			targets = append(targets, k.target)
		}
		if len(targets) == 0 {
			continue
		}
		sort.Slice(targets, func(i, j int) bool {
			if targets[i].Anycast != targets[j].Anycast {
				return targets[i].Anycast
			}
			return targets[i].Site < targets[j].Site
		})
		best, bestScore, anycastScore := Target{}, units.Millis(-1), units.Millis(1e18)
		for _, t := range targets {
			score, err := stats.Quantile(samples[sampleKey{id, t}], float64(cfg.Metric))
			if err != nil {
				continue
			}
			if t.Anycast {
				anycastScore = score
			}
			if bestScore < 0 || score < bestScore {
				best, bestScore = t, score
			}
		}
		if bestScore < 0 {
			continue
		}
		if !best.Anycast && anycastScore-bestScore <= cfg.HybridMarginMs && cfg.HybridMarginMs > 0 {
			best, bestScore = AnycastTarget, anycastScore
		}
		pr.byGroup[id] = best
		pr.scores[id] = bestScore
	}
	return pr
}

// synthObs builds a deterministic mixed workload: some groups dense enough
// to qualify several targets, some below the floor, ties included.
func synthObs(clients int, perTarget int) []Observation {
	var obs []Observation
	for c := uint64(0); c < uint64(clients); c++ {
		n := perTarget + int(c%9) - 4 // straddle the MinMeasurements floor
		for fe := 0; fe < 4; fe++ {
			t := Target{Site: topology.SiteID(fe)}
			if fe == 0 {
				t = AnycastTarget
			}
			for k := 0; k < n; k++ {
				obs = append(obs, Observation{
					ClientID: c,
					LDNS:     dns.LDNSID(c % 20),
					Target:   t,
					RTTms:    units.Millis(20 + (fe+k)%11),
					Slot:     uint8(fe),
				})
			}
		}
	}
	return obs
}

func TestTrainMatchesReference(t *testing.T) {
	for _, cfg := range []Config{
		DefaultConfig(),
		{Metric: MetricP25, MinMeasurements: 5},
		{Metric: MetricMedian, MinMeasurements: 20, HybridMarginMs: 10},
	} {
		p := NewPredictor(cfg)
		obs := synthObs(120, 22)
		for _, g := range []Grouping{ByPrefix, ByLDNS} {
			got := p.Train(obs, g)
			want := trainReference(p, obs, g)
			if len(got.byGroup) != len(want.byGroup) {
				t.Fatalf("cfg %+v grouping %v: %d predictions, reference has %d",
					cfg, g, len(got.byGroup), len(want.byGroup))
			}
			for id, wt := range want.byGroup {
				if got.byGroup[id] != wt {
					t.Fatalf("cfg %+v grouping %v group %d: predicted %v, reference %v",
						cfg, g, id, got.byGroup[id], wt)
				}
				if got.scores[id] != want.scores[id] {
					t.Fatalf("cfg %+v grouping %v group %d: score %v, reference %v",
						cfg, g, id, got.scores[id], want.scores[id])
				}
			}
		}
	}
}

func BenchmarkTrain(b *testing.B) {
	var obs []Observation
	for c := uint64(0); c < 200; c++ {
		for fe := 0; fe < 4; fe++ {
			t := Target{Site: topology.SiteID(fe)}
			if fe == 0 {
				t = AnycastTarget
			}
			for k := 0; k < 25; k++ {
				obs = append(obs, Observation{ClientID: c, LDNS: dns.LDNSID(c % 20), Target: t, RTTms: units.Millis(20 + fe*5 + k%7)})
			}
		}
	}
	p := NewPredictor(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Train(obs, ByPrefix)
	}
}
