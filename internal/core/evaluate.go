package core

import (
	"sort"

	"anycastcdn/internal/dns"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/units"
)

// Evaluation is the next-interval outcome for one client /24 (§6): the
// difference between anycast performance and predicted-target performance
// at an evaluation percentile. Positive improvement means the prediction
// beat anycast; negative means the prediction made things worse — both
// sides appear in Figure 9.
type Evaluation struct {
	ClientID uint64
	// Predicted is the target the scheme chose for the client's group.
	Predicted Target
	// ImprovementMs = anycast percentile − predicted-target percentile.
	// Zero when the scheme predicted anycast.
	ImprovementMs units.Millis
	// Weight is the client's query volume (Figure 9 weights by volume).
	Weight float64
}

// Evaluator scores predictions against the following interval's
// observations.
type Evaluator struct {
	// Percentile of the next-day per-target distribution to compare; the
	// paper reports the 50th and 75th ("the Bing team routinely uses 75th
	// percentile latency as an internal benchmark").
	Percentile float64
	// MinSamples is the per-(client, target) floor for an evaluation to
	// count; clients without enough anycast or predicted-target samples
	// the next day are skipped (unmeasurable, as in the paper's join).
	MinSamples int
}

// Evaluate computes per-client evaluations of pred over the next
// interval's observations. volumes maps client→query volume; clients
// missing from it get weight 1.
func (ev Evaluator) Evaluate(pred *Predictions, next []Observation, volumes map[uint64]float64) []Evaluation {
	if ev.Percentile <= 0 || ev.Percentile > 1 {
		ev.Percentile = 0.5
	}
	if ev.MinSamples < 1 {
		ev.MinSamples = 1
	}
	// Index next-interval samples by (client, target).
	type ckey struct {
		client uint64
		target Target
	}
	samples := map[ckey][]units.Millis{}
	ldnsOf := map[uint64]dns.LDNSID{}
	for _, o := range next {
		samples[ckey{o.ClientID, o.Target}] = append(samples[ckey{o.ClientID, o.Target}], o.RTTms)
		ldnsOf[o.ClientID] = o.LDNS
	}
	// Collect distinct clients in stable order.
	clientSet := map[uint64]bool{}
	for k := range samples {
		clientSet[k.client] = true
	}
	ids := make([]uint64, 0, len(clientSet))
	//replay:commutative keys only; sorted immediately below, so collection order is discarded
	for id := range clientSet {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Evaluation
	for _, client := range ids {
		target := pred.For(client, ldnsOf[client])
		weight := 1.0
		if v, ok := volumes[client]; ok {
			weight = v
		}
		e := Evaluation{ClientID: client, Predicted: target, Weight: weight}
		if target.Anycast {
			// The scheme kept the client on anycast: no change either way.
			out = append(out, e)
			continue
		}
		anySamples := samples[ckey{client, AnycastTarget}]
		predSamples := samples[ckey{client, target}]
		if len(anySamples) < ev.MinSamples || len(predSamples) < ev.MinSamples {
			continue // cannot evaluate this client
		}
		anyQ, err1 := stats.Quantile(anySamples, ev.Percentile)
		predQ, err2 := stats.Quantile(predSamples, ev.Percentile)
		if err1 != nil || err2 != nil {
			continue
		}
		e.ImprovementMs = anyQ - predQ
		out = append(out, e)
	}
	return out
}
