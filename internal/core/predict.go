// Package core implements the paper's primary contribution (§6): a simple
// history-based prediction scheme that drives DNS redirection for the
// clients anycast underserves.
//
// The scheme, as the paper evaluates it:
//
//   - Group clients either by ECS /24 prefix or by LDNS.
//   - Per group and per target (the anycast address or a unicast
//     front-end), keep the latency measurements from one prediction
//     interval (one day).
//   - Consider only targets with at least 20 measurements from the group.
//   - Score each target with a low quantile of its latency distribution —
//     the paper uses the 25th percentile (and finds the median equivalent)
//     because higher percentiles are too noisy to predict with.
//   - Map the group to the best-scoring target; ties and missing data fall
//     back to anycast.
//   - Evaluate on the next interval, comparing the group's 50th and 75th
//     percentile latency to the predicted target against anycast.
//
// The package also implements the hybrid policy the paper proposes at the
// end of §6: only redirect a group away from anycast when the predicted
// gain clears a margin, leaving everyone else on anycast.
package core

import (
	"fmt"
	"sort"

	"anycastcdn/internal/beacon"
	"anycastcdn/internal/dns"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// Target is a redirection choice: the anycast VIP or a unicast front-end.
type Target struct {
	Anycast bool
	Site    topology.SiteID
}

// AnycastTarget is the anycast redirection choice.
var AnycastTarget = Target{Anycast: true}

func (t Target) String() string {
	if t.Anycast {
		return "anycast"
	}
	return fmt.Sprintf("front-end(%d)", t.Site)
}

// Observation is one latency measurement attributed to a client group.
type Observation struct {
	ClientID uint64
	LDNS     dns.LDNSID
	Target   Target
	RTTms    units.Millis
	// Slot records which beacon measurement this was: 0 = anycast,
	// 1 = the front-end closest to the LDNS, 2-3 = the weighted-random
	// candidates (§3.3). Baselines like geo-DNS key off slot 1.
	Slot uint8
}

// FromMeasurement expands a beacon measurement into its four observations.
func FromMeasurement(m beacon.Measurement) []Observation {
	obs := make([]Observation, 0, 4)
	obs = append(obs, Observation{
		ClientID: m.ClientID,
		LDNS:     m.LDNS,
		Target:   AnycastTarget,
		RTTms:    m.Anycast.RTTms,
		Slot:     0,
	})
	for i, u := range m.Unicast {
		obs = append(obs, Observation{
			ClientID: m.ClientID,
			LDNS:     m.LDNS,
			Target:   Target{Site: u.Site},
			RTTms:    u.RTTms,
			Slot:     uint8(i + 1),
		})
	}
	return obs
}

// Grouping selects the client aggregation a DNS-based redirector can act
// on.
type Grouping int

// Groupings of §6.
const (
	// ByPrefix groups by ECS client /24 (the paper's "EDNS-0" lines).
	ByPrefix Grouping = iota
	// ByLDNS groups by resolver (traditional DNS redirection).
	ByLDNS
)

func (g Grouping) String() string {
	if g == ByPrefix {
		return "ecs-prefix"
	}
	return "ldns"
}

// Metric is the prediction metric: which quantile of a target's latency
// distribution scores it.
type Metric float64

// Metrics the paper discusses.
const (
	MetricP25    Metric = 0.25
	MetricMedian Metric = 0.50
	MetricP75    Metric = 0.75
	MetricP95    Metric = 0.95
)

// Config parameterizes the predictor.
type Config struct {
	// Metric scores targets; the paper uses MetricP25.
	Metric Metric
	// MinMeasurements is the per-(group, target) floor; the paper uses 20.
	MinMeasurements int
	// HybridMarginMs only redirects a group away from anycast when the
	// predicted gain exceeds this margin (0 reproduces the paper's plain
	// scheme; positive values give the hybrid policy).
	HybridMarginMs units.Millis
}

// DefaultConfig is the paper's configuration.
func DefaultConfig() Config {
	return Config{Metric: MetricP25, MinMeasurements: 20}
}

// Predictor builds per-group redirection decisions from one interval's
// observations.
type Predictor struct {
	cfg Config
}

// NewPredictor returns a predictor. Invalid config fields are clamped to
// the paper's defaults.
func NewPredictor(cfg Config) *Predictor {
	if cfg.Metric <= 0 || cfg.Metric > 1 {
		cfg.Metric = MetricP25
	}
	if cfg.MinMeasurements < 1 {
		cfg.MinMeasurements = 20
	}
	if cfg.HybridMarginMs < 0 {
		cfg.HybridMarginMs = 0
	}
	return &Predictor{cfg: cfg}
}

// Config returns the predictor's effective configuration.
func (p *Predictor) Config() Config { return p.cfg }

// groupKey maps an observation to its group under g.
func groupKey(o Observation, g Grouping) uint64 {
	if g == ByPrefix {
		return o.ClientID
	}
	return uint64(o.LDNS)
}

// Predictions is a trained mapping from client group to target.
type Predictions struct {
	Grouping Grouping
	byGroup  map[uint64]Target
	// Scores holds the winning metric value per group (for ablations).
	scores map[uint64]units.Millis
}

// targetSamples is one (target, latency samples) bucket inside a group.
type targetSamples struct {
	target Target
	rtts   []units.Millis
}

// trainGroup accumulates one group's per-target samples during training.
// A group sees a handful of targets (anycast plus the LDNS's candidate
// front-ends), so a linear scan of the bucket list beats hashing a
// composite (group, target) key per observation.
type trainGroup struct {
	id      uint64
	targets []targetSamples
}

// bucket returns the group's sample bucket for t, creating it on first
// sight. Creation order is irrelevant to the outcome: pickTarget sorts
// the buckets before scoring.
//
//perf:hotpath
func (tg *trainGroup) bucket(t Target) *targetSamples {
	for i := range tg.targets {
		if tg.targets[i].target == t {
			return &tg.targets[i]
		}
	}
	tg.targets = append(tg.targets, targetSamples{target: t})
	return &tg.targets[len(tg.targets)-1]
}

// Train builds predictions from one interval's observations.
//
// Observations are bucketed per group in a single pass, so scoring a
// group touches only its own handful of targets. (The original
// implementation rescanned a flat (group, target)→samples map for every
// group, which made training quadratic in the group count and dominated
// the ablation benchmarks' CPU profile.)
//
//perf:hotpath
func (p *Predictor) Train(obs []Observation, g Grouping) *Predictions {
	byGroup := make(map[uint64]int)
	// A beacon expands to four observations per client, so distinct
	// groups rarely exceed a quarter of the observation count.
	groups := make([]trainGroup, 0, len(obs)/4+1)
	// A beacon measurement expands to four consecutive observations of
	// one client, so the previous group's index is usually the next one's
	// too; memoizing it skips three of every four map lookups.
	lastIdx := -1
	for _, o := range obs {
		gid := groupKey(o, g)
		idx := lastIdx
		if idx < 0 || groups[idx].id != gid {
			i, ok := byGroup[gid]
			if !ok {
				i = len(groups)
				byGroup[gid] = i
				groups = append(groups, trainGroup{id: gid})
			}
			idx = i
			lastIdx = i
		}
		b := groups[idx].bucket(o.Target)
		b.rtts = append(b.rtts, o.RTTms)
	}
	pr := &Predictions{
		Grouping: g,
		byGroup:  make(map[uint64]Target, len(groups)),
		scores:   make(map[uint64]units.Millis, len(groups)),
	}
	// Deterministic iteration: sort groups by id.
	//lint:ignore hotpathalloc one-time sort after the per-observation loop; the closure is amortized over the whole interval
	sort.Slice(groups, func(i, j int) bool { return groups[i].id < groups[j].id })
	for i := range groups {
		best, bestScore, anycastScore, ok := p.pickTarget(groups[i].targets)
		if !ok {
			continue // no qualifying target: group stays on anycast implicitly
		}
		if !best.Anycast && anycastScore-bestScore <= p.cfg.HybridMarginMs {
			// Hybrid policy: the gain does not clear the margin (or
			// anycast itself is unmeasured); stay on anycast.
			if p.cfg.HybridMarginMs > 0 {
				best = AnycastTarget
				bestScore = anycastScore
			}
		}
		pr.byGroup[groups[i].id] = best
		pr.scores[groups[i].id] = bestScore
	}
	return pr
}

// pickTarget scores the group's qualifying sample buckets and returns the
// best target. anycastScore is the anycast target's score (inf if
// unmeasured).
func (p *Predictor) pickTarget(cand []targetSamples) (best Target, bestScore, anycastScore units.Millis, ok bool) {
	// Keep qualifying buckets and order them deterministically: anycast
	// first, then unicast by site id.
	targets := cand[:0:0]
	for _, ts := range cand {
		if len(ts.rtts) < p.cfg.MinMeasurements {
			continue
		}
		targets = append(targets, ts)
	}
	if len(targets) == 0 {
		return Target{}, 0, 0, false
	}
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].target.Anycast != targets[j].target.Anycast {
			return targets[i].target.Anycast
		}
		return targets[i].target.Site < targets[j].target.Site
	})
	bestScore = -1
	anycastScore = 1e18
	for _, ts := range targets {
		score, err := stats.Quantile(ts.rtts, float64(p.cfg.Metric))
		if err != nil {
			continue
		}
		if ts.target.Anycast {
			anycastScore = score
		}
		if bestScore < 0 || score < bestScore {
			best, bestScore = ts.target, score
		}
	}
	return best, bestScore, anycastScore, bestScore >= 0
}

// For returns the prediction for a client, defaulting to anycast when the
// group is unknown (a client group with too little history keeps anycast —
// exactly what a deployed hybrid system would do).
func (pr *Predictions) For(clientID uint64, ldns dns.LDNSID) Target {
	var k uint64
	if pr.Grouping == ByPrefix {
		k = clientID
	} else {
		k = uint64(ldns)
	}
	if t, ok := pr.byGroup[k]; ok {
		return t
	}
	return AnycastTarget
}

// Len returns how many groups have explicit predictions.
func (pr *Predictions) Len() int { return len(pr.byGroup) }

// RedirectedFraction returns the fraction of predicted groups steered away
// from anycast.
func (pr *Predictions) RedirectedFraction() float64 {
	if len(pr.byGroup) == 0 {
		return 0
	}
	n := 0
	for _, t := range pr.byGroup {
		if !t.Anycast {
			n++
		}
	}
	return float64(n) / float64(len(pr.byGroup))
}
