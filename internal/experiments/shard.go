package experiments

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// This file is the experiment layer's distribution seam. A worker runs
// sim.StreamShard over its client range and folds each day through a
// ShardObserver, which emits one compact encoded delta per day; the
// coordinator folds the deltas — in shard order within each day — into
// its own StreamSuite with MergeShardDay. The encoding is chosen so the
// merged suite is BYTE-IDENTICAL to one that observed the whole stream
// in a single process:
//
//   - order-sensitive float state (Figure 4's sample runs, the catchment
//     volume sums) travels as the raw per-record values in client order
//     and is replayed through the same accumulation code;
//   - integer-exact state (switch/total day counters, day-0 demand,
//     Figure 8's unweighted sketch bins) travels as partial sums or ID
//     lists, which reduce exactly in any association order.
//
// Everything here observes only day-local state, so a worker needs no
// cross-day buffers beyond the aggregate deltas themselves.

// shardDayMagic versions the per-day delta layout. Bump on any change so
// a coordinator never misreads a frame from a mismatched worker binary.
const shardDayMagic = 0xD7

// ShardObserver turns one shard's streamed days into encoded deltas.
type ShardObserver struct {
	cfg    sim.Config
	w      *sim.World
	lo, hi int

	// fig4 accumulates the shard's day-0 distance samples; its builders
	// are encoded into the day-0 delta and dropped afterwards.
	fig4 *figure4Agg
	// sketch is the per-day Figure 8 delta, reset every day.
	sketch *stats.QuantileSketch[units.Kilometers]
	// Reused per-day scratch.
	switched []uint64
	fig7sw   []uint64
	zeroQ    []uint64
	shed     map[topology.SiteID]float64
}

// NewShardObserver prepares a worker-side observer for clients [lo, hi).
// The world's population must cover the range (the observer resolves
// record client IDs against it) — a full build or a sim.BuildShardWorld
// for the same range both work; lo/hi also stamp the frame headers the
// coordinator validates.
func NewShardObserver(cfg sim.Config, w *sim.World, lo, hi int) (*ShardObserver, error) {
	base := int(w.Population.Base)
	if lo < base || hi < lo || hi > base+len(w.Population.Clients) {
		return nil, fmt.Errorf("experiments: shard range [%d, %d) outside population [%d, %d)",
			lo, hi, base, base+len(w.Population.Clients))
	}
	sk, err := stats.NewLogQuantileSketch(fig8SketchLo, fig8SketchHi, fig8SketchBins)
	if err != nil {
		return nil, err
	}
	return &ShardObserver{
		cfg:    cfg,
		w:      w,
		lo:     lo,
		hi:     hi,
		fig4:   newFigure4Agg(cfg, w),
		sketch: sk,
		shed:   map[topology.SiteID]float64{},
	}, nil
}

// AppendDay consumes one streamed day (the sim.StreamShard callback's
// DayResult, local indices, global client IDs) and appends its encoded
// delta to dst, returning the extended slice. Steady-state calls reuse
// the observer's scratch and dst's capacity; only day 0 allocates (its
// delta carries the per-record day-0 sections).
func (o *ShardObserver) AppendDay(d sim.DayResult, dst []byte) []byte {
	bb := o.w.Deployment.Backbone
	o.switched = o.switched[:0]
	o.fig7sw = o.fig7sw[:0]
	o.zeroQ = o.zeroQ[:0]
	o.sketch.Reset()

	dst = append(dst, shardDayMagic)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.Day))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(o.lo))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(o.hi))

	if d.Day == 0 {
		// Figure 4 sample runs: observe in client order, then ship the
		// four builders verbatim.
		for _, r := range d.Passive {
			o.fig4.observe(r)
		}
		dst = o.fig4.wToFE.Encode(dst)
		dst = o.fig4.uToFE.Encode(dst)
		dst = o.fig4.wPast.Encode(dst)
		dst = o.fig4.uPast.Encode(dst)
		o.fig4 = nil // day 0 is done; free the sample runs

		// Catchment tuples, one per served day-0 record, in client order.
		var count uint64
		lenPos := len(dst)
		dst = binary.LittleEndian.AppendUint64(dst, 0)
		for _, r := range d.Passive {
			if r.Queries == 0 {
				continue
			}
			c := o.w.Population.Client(r.ClientID)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(r.FrontEnd))
			dst = putFloat(dst, c.Volume)
			dst = putFloat(dst, float64(geo.DistanceKm(c.Point, bb.Site(r.FrontEnd).Metro.Point)))
			count++
		}
		binary.LittleEndian.PutUint64(dst[lenPos:], count)

		// Day-0 demand by ingress (integer-valued partial sums), sorted by
		// site so the frame bytes are deterministic.
		clear(o.shed)
		for i, r := range d.Passive {
			if r.Queries == 0 {
				continue
			}
			o.shed[d.Assignments[i].Ingress] += float64(r.Queries)
		}
		sites := make([]topology.SiteID, 0, len(o.shed))
		//replay:commutative keys only; sorted immediately below, so collection order is discarded
		for s := range o.shed {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		dst = binary.LittleEndian.AppendUint64(dst, uint64(len(sites)))
		for _, s := range sites {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(s))
			dst = putFloat(dst, o.shed[s])
		}
	}

	// Switch and activity ID lists (ascending client order by
	// construction) plus the day's sketch delta.
	for _, r := range d.Passive {
		if r.FrontEndChanged() {
			o.switched = append(o.switched, r.ClientID)
			if d.Day < figure7Week && r.Queries > 0 {
				o.fig7sw = append(o.fig7sw, r.ClientID)
			}
			if r.Queries > 0 {
				from := bb.Site(r.PrevFrontEnd).Metro.Point
				to := bb.Site(r.FrontEnd).Metro.Point
				o.sketch.Add(geo.DistanceKm(from, to))
			}
		}
		if d.Day < figure7Week && r.Queries == 0 {
			o.zeroQ = append(o.zeroQ, r.ClientID)
		}
	}
	dst = appendIDList(dst, o.switched)
	if d.Day < figure7Week {
		dst = appendIDList(dst, o.zeroQ)
		dst = appendIDList(dst, o.fig7sw)
	}
	return o.sketch.Encode(dst)
}

// MergeShardDay folds one shard's encoded day delta into the suite. The
// caller must merge each day's shards in ascending shard order, and days
// in ascending day order — the orders under which the replayed float
// operations coincide exactly with a single-process run. The frame must
// be consumed exactly; day, lo and hi must match the frame header.
func (s *StreamSuite) MergeShardDay(day, lo, hi int, data []byte) error {
	if len(data) < 1+3*8 || data[0] != shardDayMagic {
		return fmt.Errorf("experiments: bad shard-day frame header")
	}
	data = data[1:]
	gotDay := binary.LittleEndian.Uint64(data)
	gotLo := binary.LittleEndian.Uint64(data[8:])
	gotHi := binary.LittleEndian.Uint64(data[16:])
	data = data[24:]
	if int(gotDay) != day || int(gotLo) != lo || int(gotHi) != hi {
		return fmt.Errorf("experiments: shard-day frame is (day %d, [%d, %d)), want (day %d, [%d, %d))",
			gotDay, gotLo, gotHi, day, lo, hi)
	}
	if lo < 0 || hi < lo || hi > len(s.tcp.totalDays) {
		return fmt.Errorf("experiments: shard range [%d, %d) outside %d clients", lo, hi, len(s.tcp.totalDays))
	}

	var err error
	if day == 0 {
		for _, b := range []*stats.ECDFBuilder[units.Kilometers]{
			&s.fig4.wToFE, &s.fig4.uToFE, &s.fig4.wPast, &s.fig4.uPast,
		} {
			if data, err = b.MergeEncoded(data); err != nil {
				return err
			}
		}
		var count uint64
		if count, data, err = getU64(data); err != nil {
			return err
		}
		if uint64(len(data)) < 24*count {
			return fmt.Errorf("experiments: truncated catchment tuples")
		}
		for i := uint64(0); i < count; i++ {
			fe := topology.SiteID(binary.LittleEndian.Uint64(data))
			vol := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
			dist := math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
			data = data[24:]
			s.cat.apply(fe, vol, units.Kilometers(dist))
		}
		if count, data, err = getU64(data); err != nil {
			return err
		}
		if uint64(len(data)) < 16*count {
			return fmt.Errorf("experiments: truncated demand pairs")
		}
		for i := uint64(0); i < count; i++ {
			site := topology.SiteID(binary.LittleEndian.Uint64(data))
			s.shed.demand[site] += math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
			data = data[16:]
		}
	}

	switched, data, err := idList(data, lo, hi)
	if err != nil {
		return err
	}
	for ; len(switched) > 0; switched = switched[8:] {
		s.tcp.switchDays[binary.LittleEndian.Uint64(switched)]++
	}
	for i := lo; i < hi; i++ {
		s.tcp.totalDays[i]++
	}
	if day < s.fig7.days {
		zeroQ, rest, err := idList(data, lo, hi)
		if err != nil {
			return err
		}
		// Active = every client in range with traffic today; walk the
		// (ascending) zero-query list alongside the range so clients made
		// active by an earlier day are never cleared.
		for i := lo; i < hi; i++ {
			if len(zeroQ) > 0 && binary.LittleEndian.Uint64(zeroQ) == uint64(i) {
				zeroQ = zeroQ[8:]
				continue
			}
			s.fig7.active[i] = true
		}
		fig7sw, rest, err := idList(rest, lo, hi)
		if err != nil {
			return err
		}
		for ; len(fig7sw) > 0; fig7sw = fig7sw[8:] {
			id := binary.LittleEndian.Uint64(fig7sw)
			if d := s.fig7.firstChange[id]; d < 0 || int32(day) < d {
				s.fig7.firstChange[id] = int32(day)
			}
		}
		data = rest
	}
	if data, err = s.fig8.sketch.MergeEncoded(data); err != nil {
		return err
	}
	if len(data) != 0 {
		return fmt.Errorf("experiments: %d trailing bytes in shard-day frame", len(data))
	}
	return nil
}

func putFloat(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendIDList(dst []byte, ids []uint64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = binary.LittleEndian.AppendUint64(dst, id)
	}
	return dst
}

// idList slices one encoded ID list off the front of data without
// copying: it returns the raw 8-byte-per-ID payload (bounds-validated)
// and the remainder — the merge loop walks the payload in place, keeping
// steady-state merging allocation-free.
func idList(data []byte, lo, hi int) (payload, rest []byte, err error) {
	count, data, err := getU64(data)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(data)) < 8*count {
		return nil, nil, fmt.Errorf("experiments: truncated ID list")
	}
	payload, rest = data[:8*count], data[8*count:]
	for p := payload; len(p) > 0; p = p[8:] {
		if id := binary.LittleEndian.Uint64(p); id < uint64(lo) || id >= uint64(hi) {
			return nil, nil, fmt.Errorf("experiments: client ID %d outside shard [%d, %d)", id, lo, hi)
		}
	}
	return payload, rest, nil
}

func getU64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("experiments: truncated shard-day frame")
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}
