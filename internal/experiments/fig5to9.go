package experiments

import (
	"fmt"
	"time"

	"anycastcdn/internal/core"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// Figure5 reproduces the daily poor-path prevalence analysis (§5): for
// each day, the fraction of client /24s for which some unicast front-end's
// median latency beats the anycast median by more than each threshold.
// Paper averages: 19% see any improvement, 12% see >= 10 ms, 4% >= 50 ms.
func (s *Suite) Figure5() Report {
	thresholds := []units.Millis{0, 10, 25, 50, 100}
	daily := s.DailyComparisons()
	fig := &stats.Figure{
		Title:  "Figure 5: daily fraction of /24s improvable over anycast by threshold",
		XLabel: "day",
		YLabel: "fraction of client /24s",
	}
	series := make([]stats.Series, len(thresholds))
	for i, th := range thresholds {
		name := "all"
		if th > 0 {
			name = fmt.Sprintf("> %.0fms", th)
		}
		series[i] = stats.Series{Name: name}
	}
	avg := make([]float64, len(thresholds))
	daysCounted := 0
	for day, comps := range daily {
		if len(comps) == 0 {
			continue
		}
		daysCounted++
		for i, th := range thresholds {
			n := 0
			for _, c := range comps {
				if c.ImprovementMs > th {
					n++
				}
			}
			frac := float64(n) / float64(len(comps))
			series[i].Points = append(series[i].Points, stats.SeriesPoint{X: float64(day), Y: frac})
			avg[i] += frac
		}
	}
	if daysCounted > 0 {
		for i := range avg {
			avg[i] /= float64(daysCounted)
		}
	}
	fig.Series = series
	return Report{
		ID:     "fig5",
		Figure: fig,
		Lines: []Headline{
			{Name: "avg /24s with any unicast improvement", Paper: "19%", Measured: pct(avg[0])},
			{Name: "avg /24s with >= 10 ms improvement", Paper: "12%", Measured: pct(avg[1])},
			{Name: "avg /24s with >= 50 ms improvement", Paper: "4%", Measured: pct(avg[3])},
		},
	}
}

// Figure6 reproduces the poor-path duration analysis (§5): among /24s
// that ever had a poor anycast path (any unicast improvement), the CDF of
// how many days they were poor, and of their maximum consecutive poor-day
// streak. Paper: ~60% poor on only one day; ~10% poor on 5+ days; ~5%
// continuously poor for 5+ days.
func (s *Suite) Figure6() Report {
	daily := s.DailyComparisons()
	poorDays := map[uint64][]int{}
	for day, comps := range daily {
		for _, c := range comps {
			if c.ImprovementMs > 0 {
				poorDays[c.ClientID] = append(poorDays[c.ClientID], day)
			}
		}
	}
	var counts, streaks []float64
	//replay:commutative counts and streaks feed ECDFs, which sort their samples; the output is independent of collection order
	for _, days := range poorDays {
		counts = append(counts, float64(len(days)))
		// days are appended in ascending day order.
		maxStreak, cur := 1, 1
		for i := 1; i < len(days); i++ {
			if days[i] == days[i-1]+1 {
				cur++
			} else {
				cur = 1
			}
			if cur > maxStreak {
				maxStreak = cur
			}
		}
		streaks = append(streaks, float64(maxStreak))
	}
	fig := &stats.Figure{
		Title:  "Figure 6: duration of poor anycast performance across the month",
		XLabel: "number of days",
		YLabel: "CDF of client /24s with any poor day",
	}
	grid := stats.LinearGrid[float64](1, 15, 14)
	var oneDay, fivePlus, fiveConsec float64
	if e, err := stats.NewECDF(counts); err == nil {
		fig.Series = append(fig.Series, e.SampleCDF("# days", grid))
		oneDay = e.P(1)
		fivePlus = e.CCDF(4.5)
	}
	if e, err := stats.NewECDF(streaks); err == nil {
		fig.Series = append(fig.Series, e.SampleCDF("max # consecutive days", grid))
		fiveConsec = e.CCDF(4.5)
	}
	return Report{
		ID:     "fig6",
		Figure: fig,
		Lines: []Headline{
			{Name: "poor /24s poor on only one day", Paper: "~60%", Measured: pct(oneDay)},
			{Name: "poor /24s poor on 5+ days", Paper: "~10%", Measured: pct(fivePlus)},
			{Name: "poor /24s with 5+ consecutive poor days", Paper: "~5%", Measured: pct(fiveConsec)},
		},
	}
}

// figure7Week is Figure 7's window: one week starting Wednesday.
const figure7Week = 7

// Figure7 reproduces the front-end affinity analysis (§5): the cumulative
// fraction of clients that have changed front-ends at least once by each
// day of a week starting Wednesday. Paper: 7% after the first day, +2-4%
// per weekday, <0.5% on weekend days, 21% by week's end.
func (s *Suite) Figure7() Report {
	agg := newSwitchAgg(figure7Week, len(s.Res.World.Population.Clients))
	for c := s.Res.Passive.Cursor(); c.Next(); {
		agg.observe(c.Record())
	}
	return agg.report(s.Res.World.Router.Weekday)
}

// switchAgg accumulates Figure 7's cumulative-switch analysis one passive
// record at a time; Suite and StreamSuite share it. It mirrors
// logs.CumulativeSwitched exactly — integer counting in dense arrays
// indexed by client ID, so the result is independent of observation
// order: clients with no traffic on a day don't count as active (the
// paper can only observe clients that appear in logs), and a client's
// first visible front-end change marks every later day of the window.
// The dense layout is also the distributed merge's entry point: shard
// deltas arrive as per-day ID lists and bump these arrays directly.
type switchAgg struct {
	days int
	// firstChange[c] is the first in-window day client c visibly changed
	// front-ends, -1 if never.
	firstChange []int32
	active      []bool
}

func newSwitchAgg(days, n int) *switchAgg {
	fc := make([]int32, n)
	for i := range fc {
		fc[i] = -1
	}
	return &switchAgg{days: days, firstChange: fc, active: make([]bool, n)}
}

func (a *switchAgg) observe(r logs.DayRecord) {
	if r.Day < 0 || r.Day >= a.days || r.Queries == 0 {
		return
	}
	a.active[r.ClientID] = true
	if r.FrontEndChanged() {
		if d := a.firstChange[r.ClientID]; d < 0 || int32(r.Day) < d {
			a.firstChange[r.ClientID] = int32(r.Day)
		}
	}
}

// cumulative computes the per-day cumulative switched fraction — the same
// output as logs.CumulativeSwitched over the records observed.
func (a *switchAgg) cumulative() []float64 {
	out := make([]float64, a.days)
	nActive := 0
	for _, on := range a.active {
		if on {
			nActive++
		}
	}
	if nActive == 0 {
		return out
	}
	perDay := make([]int, a.days)
	for _, d := range a.firstChange {
		if d >= 0 {
			perDay[d]++
		}
	}
	cum := 0
	for d := 0; d < a.days; d++ {
		cum += perDay[d]
		out[d] = float64(cum) / float64(nActive)
	}
	return out
}

func (a *switchAgg) report(weekday func(day int) time.Weekday) Report {
	cum := a.cumulative()
	fig := &stats.Figure{
		Title:  "Figure 7: cumulative fraction of clients that changed front-end during a week",
		XLabel: "day of week (0 = Wednesday)",
		YLabel: "cumulative fraction of clients",
	}
	series := stats.Series{Name: "switched at least once"}
	for d, v := range cum {
		series.Points = append(series.Points, stats.SeriesPoint{X: float64(d), Y: v})
	}
	fig.Series = []stats.Series{series}
	var weekendDelta float64
	for d := 1; d < a.days; d++ {
		if weekday(d) == time.Saturday || weekday(d) == time.Sunday {
			weekendDelta += cum[d] - cum[d-1]
		}
	}
	return Report{
		ID:     "fig7",
		Figure: fig,
		Lines: []Headline{
			{Name: "clients on multiple front-ends within first day", Paper: "7%", Measured: pct(cum[0])},
			{Name: "clients switched within the week", Paper: "21%", Measured: pct(cum[a.days-1])},
			{Name: "weekend churn (sum of Sat+Sun additions)", Paper: "<1% (<0.5%/day)", Measured: pct(weekendDelta)},
		},
	}
}

// Figure 8's sketch layout: 128 log-spaced bins over [62.5, 16000) km,
// a factor of 2^(1/16) per bin (≈4.4% distance resolution), with 2000 km —
// the figure's headline threshold — landing exactly on a bin boundary.
const (
	fig8SketchLo   units.Kilometers = 62.5
	fig8SketchHi   units.Kilometers = 16000
	fig8SketchBins                  = 128
)

// Figure8 reproduces the switch-distance analysis (§5): the CDF of the
// change in client-to-front-end distance when the front-end changes.
// Paper: median 483 km, 83% within 2000 km.
func (s *Suite) Figure8() Report {
	agg := newFig8Agg(s.Res.World.Deployment.Backbone)
	for c := s.Res.Passive.Cursor(); c.Next(); {
		agg.observe(c.Record())
	}
	return agg.report()
}

// fig8Agg accumulates switch distances into a constant-memory quantile
// sketch; Suite and StreamSuite share it. Unweighted samples make the
// sketch bit-identical regardless of observation order. The observability
// filter matches logs.SwitchDistancesKm: a switch on a zero-query day has
// no log row in a real passive log, so it is invisible to the figure —
// the same rule Figure 7 applies.
type fig8Agg struct {
	bb     *topology.Backbone
	sketch *stats.QuantileSketch[units.Kilometers]
}

func newFig8Agg(bb *topology.Backbone) *fig8Agg {
	// The layout is constant and valid, so the error path is unreachable;
	// if it were ever hit, the nil sketch degrades to an empty figure.
	sk, _ := stats.NewLogQuantileSketch(fig8SketchLo, fig8SketchHi, fig8SketchBins)
	return &fig8Agg{bb: bb, sketch: sk}
}

func (a *fig8Agg) observe(r logs.DayRecord) {
	if a.sketch == nil || r.Queries == 0 || !r.FrontEndChanged() {
		return
	}
	from := a.bb.Site(r.PrevFrontEnd).Metro.Point
	to := a.bb.Site(r.FrontEnd).Metro.Point
	a.sketch.Add(geo.DistanceKm(from, to))
}

func (a *fig8Agg) report() Report {
	fig := &stats.Figure{
		Title:  "Figure 8: distance between old and new front-end on a switch",
		XLabel: "distance (km, log)",
		YLabel: "CDF of front-end changes",
	}
	var med units.Kilometers
	var within2000 float64
	if a.sketch != nil && a.sketch.N() > 0 {
		fig.Series = append(fig.Series, a.sketch.SampleCDF("front-end changes", stats.LogGrid[units.Kilometers](64, 8192, 14)))
		med = a.sketch.Quantile(0.5)
		within2000 = a.sketch.P(2000)
	}
	return Report{
		ID:     "fig8",
		Figure: fig,
		Lines: []Headline{
			{Name: "median switch distance", Paper: "483 km", Measured: km(med)},
			{Name: "switches within 2000 km", Paper: "83%", Measured: pct(within2000)},
		},
	}
}

// Figure9 reproduces the prediction evaluation (§6): train the §6 scheme
// on each day's beacon measurements and evaluate on the next day,
// reporting the CDF (weighted by query volume) of improvement over anycast
// for ECS-prefix grouping and LDNS grouping at the 50th and 75th
// evaluation percentiles. Paper: with ECS, ~30% of weighted prefixes
// improve and ~10% get worse; with LDNS, ~27% improve and ~17% get worse.
func (s *Suite) Figure9() Report {
	return s.figure9(core.DefaultConfig())
}

// Figure9WithConfig is Figure9 under a custom predictor configuration
// (used by the ablation benches).
func (s *Suite) Figure9WithConfig(cfg core.Config) Report { return s.figure9(cfg) }

func (s *Suite) figure9(cfg core.Config) Report {
	pred := core.NewPredictor(cfg)
	vols := s.Res.Volumes()
	// Convert each day's beacons to observations once.
	days := len(s.Res.Beacons)
	obs := make([][]core.Observation, days)
	for d := 0; d < days; d++ {
		obs[d] = make([]core.Observation, 0, 4*len(s.Res.Beacons[d]))
		for _, m := range s.Res.Beacons[d] {
			obs[d] = append(obs[d], core.FromMeasurement(m)...)
		}
	}
	type lineSpec struct {
		name     string
		grouping core.Grouping
		pctile   float64
	}
	specs := []lineSpec{
		{"EDNS-0 Median", core.ByPrefix, 0.50},
		{"EDNS-0 75th", core.ByPrefix, 0.75},
		{"LDNS Median", core.ByLDNS, 0.50},
		{"LDNS 75th", core.ByLDNS, 0.75},
	}
	fig := &stats.Figure{
		Title:  "Figure 9: improvement over anycast from prediction (25th-pct metric)",
		XLabel: "improvement (ms)",
		YLabel: "CDF of weighted /24s",
	}
	grid := stats.LinearGrid[units.Millis](-400, 400, 32)
	var lines []Headline
	for _, spec := range specs {
		var improvements []units.Millis
		var weights []float64
		for d := 0; d+1 < days; d++ {
			trained := pred.Train(obs[d], spec.grouping)
			evals := core.Evaluator{Percentile: spec.pctile, MinSamples: 2}.
				Evaluate(trained, obs[d+1], vols)
			for _, e := range evals {
				improvements = append(improvements, e.ImprovementMs)
				weights = append(weights, e.Weight)
			}
		}
		e, err := stats.NewWeightedECDF(improvements, weights)
		if err != nil {
			continue
		}
		fig.Series = append(fig.Series, e.SampleCDF(spec.name, grid))
		improved := e.CCDF(0.5) // at least 1 ms better (ms-rounded data)
		worse := e.P(-0.5)      // at least 1 ms worse
		if spec.pctile == 0.50 {
			paperImproved, paperWorse := "~30%", "~10%"
			if spec.grouping == core.ByLDNS {
				paperImproved, paperWorse = "~27%", "~17%"
			}
			lines = append(lines,
				Headline{Name: spec.name + ": weighted /24s improved", Paper: paperImproved, Measured: pct(improved)},
				Headline{Name: spec.name + ": weighted /24s worse", Paper: paperWorse, Measured: pct(worse)},
			)
		}
	}
	return Report{ID: "fig9", Figure: fig, Lines: lines}
}

// All runs every experiment in paper order.
func (s *Suite) All() []Report {
	return []Report{
		s.Figure1(),
		CDNSizeTable(),
		s.Figure2(),
		s.Figure3(),
		s.Figure4(),
		s.Figure5(),
		s.Figure6(),
		s.Figure7(),
		s.Figure8(),
		s.Figure9(),
	}
}
