package experiments

import (
	"strings"
	"testing"

	"anycastcdn/internal/core"
	"anycastcdn/internal/testutil"
)

// testSuite wraps the process-wide cached simulation fixture; the Suite
// itself is cheap, and sharing one keeps its derived caches warm.
var sharedSuite *Suite

func testSuite(t *testing.T) *Suite {
	t.Helper()
	res := testutil.SuiteResult(t)
	if sharedSuite == nil || sharedSuite.Res != res {
		sharedSuite = NewSuite(res)
	}
	return sharedSuite
}

func seriesByName(t *testing.T, r Report, name string) []float64 {
	t.Helper()
	for _, s := range r.Figure.Series {
		if s.Name == name {
			out := make([]float64, len(s.Points))
			for i, p := range s.Points {
				out[i] = p.Y
			}
			return out
		}
	}
	t.Fatalf("series %q missing from %s", name, r.ID)
	return nil
}

func assertMonotoneCDF(t *testing.T, ys []float64, name string) {
	t.Helper()
	prev := -1.0
	for _, y := range ys {
		if y < prev-1e-9 || y < 0 || y > 1 {
			t.Fatalf("series %s is not a CDF: %v", name, ys)
		}
		prev = y
	}
}

func TestFigure1DiminishingReturns(t *testing.T) {
	s := testSuite(t)
	r := s.Figure1()
	if len(r.Figure.Series) != 5 {
		t.Fatalf("fig1 has %d series, want 5", len(r.Figure.Series))
	}
	one := seriesByName(t, r, "1 front-ends")
	five := seriesByName(t, r, "5 front-ends")
	nine := seriesByName(t, r, "9 front-ends")
	assertMonotoneCDF(t, one, "1 front-ends")
	// More candidates can only lower the min latency: CDF dominates.
	for i := range one {
		if five[i] < one[i]-1e-9 {
			t.Fatal("5-front-end CDF must dominate 1-front-end CDF")
		}
		if nine[i] < five[i]-1e-9 {
			t.Fatal("9-front-end CDF must dominate 5-front-end CDF")
		}
	}
	// Diminishing returns: gap(1→5) should exceed gap(5→9).
	var gap15, gap59 float64
	for i := range one {
		gap15 += five[i] - one[i]
		gap59 += nine[i] - five[i]
	}
	if gap59 > gap15 {
		t.Fatalf("gap 5→9 (%v) exceeds gap 1→5 (%v); expected diminishing returns", gap59, gap15)
	}
}

func TestFigure2Ordering(t *testing.T) {
	s := testSuite(t)
	r := s.Figure2()
	first := seriesByName(t, r, "1st closest")
	fourth := seriesByName(t, r, "4th closest")
	assertMonotoneCDF(t, first, "1st closest")
	assertMonotoneCDF(t, fourth, "4th closest")
	for i := range first {
		if first[i] < fourth[i]-1e-9 {
			t.Fatal("distance to 1st closest must stochastically dominate 4th closest")
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	s := testSuite(t)
	r := s.Figure3()
	world := seriesByName(t, r, "World")
	// CCDF must be non-increasing.
	prev := 2.0
	for _, y := range world {
		if y > prev+1e-9 {
			t.Fatal("world CCDF not non-increasing")
		}
		prev = y
	}
	// Headline shape: a minority but non-trivial fraction of requests see
	// a >= 25ms penalty.
	at25 := world[5] // grid is 0..100 step 5
	if at25 < 0.05 || at25 > 0.40 {
		t.Fatalf("CCDF(25ms) = %v, outside the paper-like band", at25)
	}
}

func TestFigure4Shape(t *testing.T) {
	s := testSuite(t)
	r := s.Figure4()
	if len(r.Figure.Series) != 4 {
		t.Fatalf("fig4 has %d series, want 4", len(r.Figure.Series))
	}
	past := seriesByName(t, r, "clients past closest")
	toFE := seriesByName(t, r, "clients to front-end")
	assertMonotoneCDF(t, past, "past closest")
	assertMonotoneCDF(t, toFE, "to front-end")
	// Distance past closest is bounded by distance to front-end, so its
	// CDF dominates.
	for i := range past {
		if past[i] < toFE[i]-1e-9 {
			t.Fatal("past-closest CDF must dominate to-front-end CDF")
		}
	}
	// A majority — but not all — clients should be at their closest FE.
	if past[0] < 0.3 || past[0] > 0.9 {
		t.Fatalf("fraction at/near closest = %v, implausible", past[0])
	}
}

func TestFigure5Shape(t *testing.T) {
	s := testSuite(t)
	r := s.Figure5()
	if len(r.Figure.Series) != 5 {
		t.Fatalf("fig5 has %d series, want 5", len(r.Figure.Series))
	}
	all := seriesByName(t, r, "all")
	over50 := seriesByName(t, r, "> 50ms")
	if len(all) == 0 {
		t.Fatal("no daily points")
	}
	for i := range all {
		if over50[i] > all[i]+1e-9 {
			t.Fatal("threshold lines must be nested: >50ms cannot exceed all")
		}
		if all[i] < 0.02 || all[i] > 0.6 {
			t.Fatalf("daily any-improvement fraction %v implausible", all[i])
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	s := testSuite(t)
	r := s.Figure6()
	days := seriesByName(t, r, "# days")
	streaks := seriesByName(t, r, "max # consecutive days")
	assertMonotoneCDF(t, days, "# days")
	assertMonotoneCDF(t, streaks, "max consecutive")
	// Max consecutive streak <= total poor days, so its CDF dominates.
	for i := range days {
		if streaks[i] < days[i]-1e-9 {
			t.Fatal("consecutive-days CDF must dominate total-days CDF")
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	s := testSuite(t)
	r := s.Figure7()
	line := seriesByName(t, r, "switched at least once")
	if len(line) != 7 {
		t.Fatalf("fig7 has %d points, want 7", len(line))
	}
	prev := 0.0
	for _, v := range line {
		if v < prev-1e-12 {
			t.Fatal("cumulative switched fraction must be non-decreasing")
		}
		prev = v
	}
	if line[6] < 0.05 || line[6] > 0.5 {
		t.Fatalf("weekly switched fraction %v implausible (paper: 21%%)", line[6])
	}
	// Weekend days (indices 3, 4 = Sat, Sun) should contribute less than
	// the first weekday.
	weekend := (line[3] - line[2]) + (line[4] - line[3])
	if weekend > line[0] {
		t.Fatalf("weekend churn %v exceeds first-day churn %v", weekend, line[0])
	}
}

func TestFigure8Shape(t *testing.T) {
	s := testSuite(t)
	r := s.Figure8()
	line := seriesByName(t, r, "front-end changes")
	assertMonotoneCDF(t, line, "front-end changes")
	if line[len(line)-1] < 0.95 {
		t.Fatal("nearly all switches should be within the 8192 km grid")
	}
}

func TestFigure9Shape(t *testing.T) {
	s := testSuite(t)
	r := s.Figure9()
	if len(r.Figure.Series) != 4 {
		t.Fatalf("fig9 has %d series, want 4", len(r.Figure.Series))
	}
	for _, name := range []string{"EDNS-0 Median", "EDNS-0 75th", "LDNS Median", "LDNS 75th"} {
		line := seriesByName(t, r, name)
		assertMonotoneCDF(t, line, name)
	}
	// Most mass at zero improvement: the CDF at +1ms minus at -1ms is the
	// no-change bucket and should be the single biggest.
	ecsMed := seriesByName(t, r, "EDNS-0 Median")
	// grid -400..400 step 25: index of 0 is 16.
	zeroBand := ecsMed[17] - ecsMed[15]
	if zeroBand < 0.4 {
		t.Fatalf("no-change mass %v; most clients should see no difference", zeroBand)
	}
}

func TestCDNSizeTable(t *testing.T) {
	r := CDNSizeTable()
	if r.Table == nil {
		t.Fatal("no table")
	}
	if len(r.Table.Rows) != 22 {
		t.Fatalf("table has %d rows, want 22", len(r.Table.Rows))
	}
	out := r.Render()
	for _, want := range []string{"level3", "cloudflare", "bing", "paper vs measured"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := testSuite(t)
	reports := s.All()
	if len(reports) != 10 {
		t.Fatalf("All produced %d reports, want 10", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if seen[r.ID] {
			t.Fatalf("duplicate report id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Figure == nil && r.Table == nil {
			t.Fatalf("report %s has no content", r.ID)
		}
		if out := r.Render(); len(out) < 50 {
			t.Fatalf("report %s render too small", r.ID)
		}
	}
}

func TestFigure9Ablation(t *testing.T) {
	s := testSuite(t)
	// The predictor under a different metric must still produce the four
	// series; the hybrid margin must reduce (or keep equal) the worse
	// fraction relative to the plain scheme.
	plain := s.Figure9WithConfig(core.Config{Metric: core.MetricP25, MinMeasurements: 20})
	hybrid := s.Figure9WithConfig(core.Config{Metric: core.MetricP25, MinMeasurements: 20, HybridMarginMs: 15})
	pLine := seriesByName(t, plain, "EDNS-0 Median")
	hLine := seriesByName(t, hybrid, "EDNS-0 Median")
	// P(improvement < -1ms): hybrid should not be more harmful.
	// grid -400..400 step 25; index 15 is -25ms.
	if hLine[15] > pLine[15]+0.02 {
		t.Fatalf("hybrid worse-mass %v exceeds plain %v", hLine[15], pLine[15])
	}
}

func TestDailyComparisonsCache(t *testing.T) {
	s := testSuite(t)
	a := s.DailyComparisons()
	b := s.DailyComparisons()
	if &a[0] != &b[0] {
		t.Fatal("daily comparisons not cached")
	}
	for day, comps := range a {
		for _, c := range comps {
			if c.Day != day {
				t.Fatalf("comparison filed under wrong day: %+v", c)
			}
			if c.Volume <= 0 {
				t.Fatalf("comparison without volume: %+v", c)
			}
		}
	}
}
