package experiments

import (
	"fmt"
	"time"

	"anycastcdn/internal/logs"
	"anycastcdn/internal/stats"
)

// TCPDisruption quantifies §2's claim that anycast route changes — which
// break in-flight TCP connections — "do not appear to be an issue in
// practice" for the short flows that dominate the Web. From the passive
// log's switch events it estimates, for a range of flow durations, the
// probability that a flow alive at a uniformly random moment of the study
// experiences a route change before completing.
//
// A switch event lands at a uniformly random instant of its day, so a flow
// of duration d overlaps it with probability min(1, d/86400) on a
// switch day. The per-duration disruption probability is the client-day
// average of that overlap.
func (s *Suite) TCPDisruption() Report {
	agg := newTCPAgg(len(s.Res.World.Population.Clients))
	for c := s.Res.Passive.Cursor(); c.Next(); {
		agg.observe(c.Record())
	}
	return agg.report()
}

// tcpAgg accumulates per-client switch-day and total-day counts one
// passive record at a time; Suite and StreamSuite share it. Dense arrays
// indexed by client ID (IDs are population indices): integer counters
// make the report independent of observation order, and the fixed index
// order is what lets the distributed merge bump counters from per-shard
// ID lists without ever reconciling map key sets.
type tcpAgg struct {
	switchDays []int32
	totalDays  []int32
}

func newTCPAgg(n int) *tcpAgg {
	return &tcpAgg{switchDays: make([]int32, n), totalDays: make([]int32, n)}
}

func (a *tcpAgg) observe(r logs.DayRecord) {
	a.totalDays[r.ClientID]++
	if r.FrontEndChanged() {
		a.switchDays[r.ClientID]++
	}
}

func (a *tcpAgg) report() Report {
	durations := []time.Duration{
		time.Second, 10 * time.Second, time.Minute,
		10 * time.Minute, time.Hour, 12 * time.Hour, 24 * time.Hour,
	}
	const day = 24 * time.Hour

	tb := &stats.Table{
		Title:   "§2 claim check: probability a TCP flow is broken by an anycast route change",
		Columns: []string{"flow duration", "disruption probability", "flows broken per 10^6"},
	}
	probs := make([]float64, len(durations))
	for i, d := range durations {
		overlap := float64(d) / float64(day)
		if overlap > 1 {
			overlap = 1
		}
		var sum float64
		var n int
		// Ascending client order (the array index): float accumulation in
		// any other order would make the reported probabilities differ in
		// the last bits between runs.
		for client := range a.totalDays {
			total := a.totalDays[client]
			if total == 0 {
				continue
			}
			rate := float64(a.switchDays[client]) / float64(total)
			sum += rate * overlap
			n++
		}
		if n == 0 {
			continue
		}
		probs[i] = sum / float64(n)
		tb.Rows = append(tb.Rows, []string{
			d.String(),
			fmt.Sprintf("%.6f", probs[i]),
			fmt.Sprintf("%.0f", probs[i]*1e6),
		})
	}
	lines := []Headline{
		{
			Name:     "short web flows essentially never broken",
			Paper:    "\"does not appear to be an issue in practice\" (§2)",
			Measured: fmt.Sprintf("P(break | 10s flow) = %.6f", probs[1]),
		},
		{
			Name:     "long-lived connections do pay",
			Paper:    "anycast TCP concerns focus on long flows [31]",
			Measured: fmt.Sprintf("P(break | 24h flow) = %.4f", probs[len(probs)-1]),
		},
	}
	return Report{ID: "tcp-disruption", Table: tb, Lines: lines}
}
