package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"anycastcdn/internal/faults"
	"anycastcdn/internal/testutil"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares rendered report text against testdata/<name>.golden;
// run `go test ./internal/experiments -run Golden -update` after an
// intentional rendering or simulation change.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	if got == "" {
		t.Fatalf("%s rendered empty output", name)
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output drifted from %s (re-run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s",
			name, path, got, string(want))
	}
}

func TestReportRenderGolden(t *testing.T) {
	s := testSuite(t)
	checkGolden(t, "catchments", s.Catchments(10).Render())
	checkGolden(t, "figure7", s.Figure7().Render())
	checkGolden(t, "figure3", s.Figure3().Render())
}

// goldenScenario uses fixed targets from the default deployment so the
// golden file does not depend on which site happens to be busiest.
const goldenScenario = "drain paris day=2 for=2; flap denver day=3 for=2; inflate europe day=5 ms=30; ldns-outage asia day=6"

func TestResilienceReportGolden(t *testing.T) {
	sc, err := faults.ParseScenario(goldenScenario)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resilience(testutil.SmallConfig(1), sc)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "resilience", r.Render())
}
