package experiments

import (
	"anycastcdn/internal/sim"
	"anycastcdn/internal/stats"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestMetricStability(t *testing.T) {
	s := testSuite(t)
	r := s.MetricStability()
	if r.Table == nil || len(r.Table.Rows) < 4 {
		t.Fatalf("stability table too small: %+v", r.Table)
	}
	// The paper's claim: CoV grows with the percentile. Compare p25 vs
	// p95 CoV columns.
	covOf := func(pct string) float64 {
		for _, row := range r.Table.Rows {
			if row[0] == pct {
				v, err := strconv.ParseFloat(row[1], 64)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
		t.Fatalf("row %s missing", pct)
		return 0
	}
	p25, p95 := covOf("p25"), covOf("p95")
	if p25 >= p95 {
		t.Fatalf("p25 CoV %.4f should be below p95 CoV %.4f (the paper's stability claim)", p25, p95)
	}
}

func TestHybridDeployment(t *testing.T) {
	s := testSuite(t)
	r := s.HybridDeployment(10)
	if r.Table == nil || len(r.Table.Rows) != 4 {
		t.Fatalf("hybrid table rows = %d, want 4 policies", len(r.Table.Rows))
	}
	med := func(row int) float64 {
		v, err := strconv.ParseFloat(r.Table.Rows[row][1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	anycastOnly, geoDNS, plain, hybrid := med(0), med(1), med(2), med(3)
	// Redirection should not make the weighted median materially worse,
	// and typically improves it.
	if plain > anycastOnly*1.05 {
		t.Fatalf("plain prediction median %.1f much worse than anycast-only %.1f", plain, anycastOnly)
	}
	if hybrid > anycastOnly*1.05 {
		t.Fatalf("hybrid median %.1f much worse than anycast-only %.1f", hybrid, anycastOnly)
	}
	// The paper's conclusion: anycast is competitive with traditional
	// geo-DNS for the bulk of clients (the unicast haul penalty means
	// blanket geo-DNS should not dominate anycast).
	if geoDNS < anycastOnly*0.85 {
		t.Fatalf("geo-DNS median %.1f dominates anycast %.1f; anycast should be competitive", geoDNS, anycastOnly)
	}
	// The hybrid redirects fewer clients than the plain scheme.
	redir := func(row int) string { return r.Table.Rows[row][4] }
	if redir(0) != "0.0%" {
		t.Fatalf("anycast-only redirected share = %s", redir(0))
	}
	plainShare, _ := strconv.ParseFloat(strings.TrimSuffix(redir(2), "%"), 64)
	hybridShare, _ := strconv.ParseFloat(strings.TrimSuffix(redir(3), "%"), 64)
	if hybridShare > plainShare {
		t.Fatalf("hybrid redirects %.1f%% > plain %.1f%%", hybridShare, plainShare)
	}
}

func TestTCPDisruption(t *testing.T) {
	s := testSuite(t)
	r := s.TCPDisruption()
	if r.Table == nil || len(r.Table.Rows) < 5 {
		t.Fatal("tcp table too small")
	}
	// Disruption probability must grow with flow duration, and be tiny
	// for 10-second flows.
	var prev float64
	for i, row := range r.Table.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("disruption probability not monotone at row %d", i)
		}
		prev = v
	}
	tenSec, _ := strconv.ParseFloat(r.Table.Rows[1][1], 64)
	if tenSec > 0.0005 {
		t.Fatalf("10s flow disruption %.6f; short flows should be essentially safe", tenSec)
	}
	day, _ := strconv.ParseFloat(r.Table.Rows[len(r.Table.Rows)-1][1], 64)
	if day <= tenSec {
		t.Fatal("day-long flows should be at materially higher risk")
	}
}

func TestLoadShedding(t *testing.T) {
	s := testSuite(t)
	r := s.LoadShedding(4)
	if r.Table == nil {
		t.Fatal("no table")
	}
	rows := map[string]string{}
	for _, row := range r.Table.Rows {
		rows[row[0]] = row[1]
	}
	if _, bad := rows["error"]; bad {
		t.Fatalf("load shedding errored: %s", rows["error"])
	}
	before, _ := strconv.ParseFloat(rows["hot utilization before shedding"], 64)
	after, _ := strconv.ParseFloat(rows["max utilization after shedding"], 64)
	if before <= 1 {
		t.Fatalf("flash crowd did not overload the hot site (util %.2f)", before)
	}
	if after >= before {
		t.Fatalf("shedding did not reduce max utilization: %.2f -> %.2f", before, after)
	}
	shed, _ := strconv.ParseFloat(rows["hot site shed fraction"], 64)
	if shed <= 0 {
		t.Fatal("hot site should shed")
	}
}

func TestExportCSVAndGnuplot(t *testing.T) {
	s := testSuite(t)
	dir := t.TempDir()
	fig := s.Figure7()
	csvPath, err := ExportCSV(fig, dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 8 { // header + 7 days
		t.Fatalf("fig7 CSV has %d lines, want 8", len(lines))
	}
	if !strings.HasPrefix(lines[0], "x,") {
		t.Fatalf("bad CSV header %q", lines[0])
	}
	gpPath, err := ExportGnuplot(fig, dir)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := os.ReadFile(gpPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plot ", "fig7.csv", "set xlabel"} {
		if !strings.Contains(string(gp), want) {
			t.Fatalf("gnuplot script missing %q", want)
		}
	}
	// Tables export as CSV but not gnuplot.
	table := CDNSizeTable()
	if _, err := ExportCSV(table, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := ExportGnuplot(table, dir); err == nil {
		t.Fatal("gnuplot export of a table should fail")
	}
	if _, err := os.Stat(filepath.Join(dir, "cdn-table.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestExportCSVEscaping(t *testing.T) {
	r := Report{ID: "esc", Table: &tableWithComma}
	dir := t.TempDir()
	p, err := ExportCSV(r, dir)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(p)
	if !strings.Contains(string(data), `"a,b"`) {
		t.Fatalf("comma not escaped: %s", data)
	}
}

var tableWithComma = func() (t stats.Table) {
	t.Title = "esc"
	t.Columns = []string{"a,b", "c"}
	t.Rows = [][]string{{`say "hi"`, "x"}}
	return
}()

func TestDeploymentDensity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := sim.DefaultConfig(31)
	cfg.Prefixes = 800
	cfg.Days = 2
	r, err := DeploymentDensity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 3 {
		t.Fatalf("density rows = %d, want 3", len(r.Table.Rows))
	}
	// Median distance must grow as the deployment thins.
	var meds []float64
	for _, row := range r.Table.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		meds = append(meds, v)
	}
	if !(meds[0] < meds[1] && meds[1] < meds[2]) {
		t.Fatalf("median distances not increasing with sparsity: %v", meds)
	}
	// Front-end counts must decrease.
	var fes []int
	for _, row := range r.Table.Rows {
		v, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		fes = append(fes, v)
	}
	if !(fes[0] > fes[1] && fes[1] > fes[2]) {
		t.Fatalf("front-end counts not decreasing: %v", fes)
	}
}

func TestCatchments(t *testing.T) {
	s := testSuite(t)
	r := s.Catchments(10)
	if r.Table == nil || len(r.Table.Rows) == 0 {
		t.Fatal("no catchment rows")
	}
	if len(r.Table.Rows) > 10 {
		t.Fatalf("topN not respected: %d rows", len(r.Table.Rows))
	}
	// Volume shares must be sorted descending.
	var prev float64 = 101
	for _, row := range r.Table.Rows {
		var share float64
		if _, err := fmt.Sscanf(row[2], "%f%%", &share); err != nil {
			t.Fatalf("bad share cell %q", row[2])
		}
		if share > prev {
			t.Fatal("catchment rows not sorted by volume share")
		}
		prev = share
		// Median <= p90 distance.
		med, _ := strconv.ParseFloat(row[3], 64)
		p90, _ := strconv.ParseFloat(row[4], 64)
		if med > p90 {
			t.Fatalf("median %v above p90 %v for %s", med, p90, row[0])
		}
	}
	if len(r.Lines) == 0 {
		t.Fatal("no imbalance headline")
	}
}
