package experiments

import (
	"fmt"
	"sort"

	"anycastcdn/internal/load"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/topology"
)

// LoadShedding demonstrates the FastRoute-style load-aware anycast layer
// (the paper's reference [23], run by the measured CDN) on the simulated
// deployment: a flash crowd hits the busiest front-end, and the layered
// balancer sheds fractions of its query load to the next anycast ring
// while a naive route withdrawal cascades (§2's warning). crowdFactor
// scales the hot front-end's demand.
func (s *Suite) LoadShedding(crowdFactor float64) Report {
	agg := newLoadShedAgg()
	for c := s.Res.Passive.Cursor(); c.Next(); {
		r := c.Record()
		if r.Day != 0 {
			continue
		}
		agg.observe(r, s.Res.Assignments[r.ClientID][0].Ingress)
	}
	return agg.report(s.Res.World, crowdFactor)
}

// loadShedAgg accumulates day-0 per-ingress query demand one passive
// record at a time; Suite and StreamSuite share it. The caller supplies
// each record's effective day-0 ingress alongside the record (the log
// itself doesn't store ingresses).
type loadShedAgg struct {
	demand map[topology.SiteID]float64
}

func newLoadShedAgg() *loadShedAgg {
	return &loadShedAgg{demand: map[topology.SiteID]float64{}}
}

func (a *loadShedAgg) observe(r logs.DayRecord, ingress topology.SiteID) {
	if r.Day != 0 || r.Queries == 0 {
		return
	}
	a.demand[ingress] += float64(r.Queries)
}

func (a *loadShedAgg) report(w *sim.World, crowdFactor float64) Report {
	if crowdFactor <= 1 {
		crowdFactor = 4
	}
	bb := w.Deployment.Backbone
	demand := a.demand
	// Baseline per-front-end load under plain anycast.
	base := map[topology.SiteID]float64{}
	for ing, q := range demand {
		fe, _ := bb.HotPotatoFrontEnd(ing)
		base[fe] += q
	}
	// Hot front-end: the busiest one. Iterate the deterministic front-end
	// list, not the map, so load ties resolve identically on every run.
	var hot topology.SiteID = topology.InvalidSite
	for _, fe := range bb.FrontEnds() {
		if hot == topology.InvalidSite || base[fe] > base[hot] {
			hot = fe
		}
	}
	// Capacity: 1.4x each front-end's baseline (comfortable headroom),
	// with a floor so idle sites can absorb spillover.
	caps := map[topology.SiteID]float64{}
	var mean float64
	for _, fe := range bb.FrontEnds() {
		mean += base[fe]
	}
	mean /= float64(len(bb.FrontEnds()))
	for _, fe := range bb.FrontEnds() {
		c := 1.4 * base[fe]
		if c < mean {
			c = mean
		}
		caps[fe] = c
	}
	// Flash crowd: scale demand at every ingress whose hot-potato FE is
	// the hot site.
	crowd := map[topology.SiteID]float64{}
	for ing, q := range demand {
		fe, _ := bb.HotPotatoFrontEnd(ing)
		if fe == hot {
			q *= crowdFactor
		}
		crowd[ing] = q
	}

	// Layered balancer: ring 0 = every front-end; ring 1 = the highest
	// capacity front-end per region, excluding the flash-crowd site so
	// shed traffic must actually move. FastRoute's deeper rings are
	// backed by large data centers, so ring-1 members get DC-scale
	// capacity.
	ring1 := topCapacityPerRegion(w, caps, hot)
	// Sum in deterministic front-end order: float accumulation in map
	// order would shift the derived capacities' last bits between runs.
	var total float64
	for _, fe := range bb.FrontEnds() {
		total += caps[fe]
	}
	for _, fe := range ring1 {
		if dc := total / 2; caps[fe] < dc {
			caps[fe] = dc
		}
	}
	bal, err := load.NewBalancer(bb, []load.Layer{
		{Sites: bb.FrontEnds()},
		{Sites: ring1},
	}, caps)
	tb := &stats.Table{
		Title:   "FastRoute-style load shedding under a flash crowd ([23], §2)",
		Columns: []string{"quantity", "value"},
	}
	if err != nil {
		tb.Rows = append(tb.Rows, []string{"error", err.Error()})
		return Report{ID: "load-shedding", Table: tb}
	}
	hotUtilBefore := crowdLoad(bb, crowd, hot) / caps[hot]
	maxUtil, steps := bal.Converge(crowd, 300)
	tb.Rows = append(tb.Rows, []string{"hot front-end", bb.Site(hot).Metro.Name})
	tb.Rows = append(tb.Rows, []string{"crowd factor", fmt.Sprintf("%.1fx", crowdFactor)})
	tb.Rows = append(tb.Rows, []string{"hot utilization before shedding", fmt.Sprintf("%.2f", hotUtilBefore)})
	tb.Rows = append(tb.Rows, []string{"max utilization after shedding", fmt.Sprintf("%.2f", maxUtil)})
	tb.Rows = append(tb.Rows, []string{"controller steps to converge", fmt.Sprintf("%d", steps)})
	tb.Rows = append(tb.Rows, []string{"hot site shed fraction", fmt.Sprintf("%.2f", bal.ShedFraction(0, hot))})

	// Naive withdrawal cascade length under the same crowd.
	cascade := len(load.WithdrawnSet(bb, crowd, caps))
	tb.Rows = append(tb.Rows, []string{"route-withdrawal cascade length", fmt.Sprintf("%d front-ends", cascade)})

	lines := []Headline{
		{
			Name:     "gradual shedding avoids the overload",
			Paper:    "withdrawing a route 'can lead to cascading overloading' (§2)",
			Measured: fmt.Sprintf("shedding max util %.2f vs withdrawal cascade of %d sites", maxUtil, cascade),
		},
	}
	return Report{ID: "load-shedding", Table: tb, Lines: lines}
}

// crowdLoad is the plain-anycast load on one front-end under a demand map.
func crowdLoad(bb *topology.Backbone, demand map[topology.SiteID]float64, fe topology.SiteID) float64 {
	ings := make([]topology.SiteID, 0, len(demand))
	//replay:commutative keys only; sorted immediately below, so collection order is discarded
	for ing := range demand {
		ings = append(ings, ing)
	}
	sort.Slice(ings, func(i, j int) bool { return ings[i] < ings[j] })
	// Sorted ingress order keeps the float sum bit-stable across runs.
	var total float64
	for _, ing := range ings {
		if f, _ := bb.HotPotatoFrontEnd(ing); f == fe {
			total += demand[ing]
		}
	}
	return total
}

// topCapacityPerRegion picks the highest-capacity front-end of each region
// as the deeper anycast ring.
func topCapacityPerRegion(w *sim.World, caps map[topology.SiteID]float64, exclude topology.SiteID) []topology.SiteID {
	best := map[string]topology.SiteID{}
	for _, fe := range w.Deployment.Backbone.FrontEnds() {
		if fe == exclude {
			continue
		}
		region := string(w.Deployment.Backbone.Site(fe).Metro.Region)
		cur, ok := best[region]
		if !ok || caps[fe] > caps[cur] {
			best[region] = fe
		}
	}
	out := make([]topology.SiteID, 0, len(best))
	//replay:commutative values are sorted immediately below, so collection order is discarded
	for _, fe := range best {
		out = append(out, fe)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

