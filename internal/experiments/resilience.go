package experiments

import (
	"fmt"

	"anycastcdn/internal/faults"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/units"
)

// EventImpact quantifies one scenario event against the fault-free
// baseline run.
type EventImpact struct {
	Event faults.Event
	// PeakShiftFrac is the largest single-day fraction of clients whose
	// front-end differs from baseline inside the event window.
	PeakShiftFrac float64
	// MeanShiftFrac averages the per-day shift fraction over the window.
	MeanShiftFrac float64
	// BeaconDiffFrac is the fraction of beacon executions in the window
	// whose anycast sample differs from the baseline run's.
	BeaconDiffFrac float64
	// MeanAnycastDeltaMs is the mean anycast latency change over the
	// window's beacon executions (positive = the fault made things worse).
	MeanAnycastDeltaMs units.Millis
	// RecoveryDays is how many days after the event's window the world
	// took to match the baseline again, byte for byte: 0 means the first
	// post-event day was already clean. -1 means the run ended before the
	// world reconverged (e.g. another event was still active).
	RecoveryDays int
}

// ResilienceReport is the run-vs-baseline comparison for one fault
// scenario: the per-day catchment shift and latency deltas, plus a
// per-event impact breakdown. Because both runs share a seed and the
// injector consumes no randomness, every divergence is attributable to
// the scenario and reconvergence is exact.
type ResilienceReport struct {
	Scenario faults.Scenario
	Days     int
	// ShiftFrac[d] is the fraction of clients whose day-d front-end
	// differs from baseline.
	ShiftFrac []float64
	// BeaconDiffFrac[d] is the fraction of day-d beacon executions whose
	// anycast sample differs from baseline.
	BeaconDiffFrac []float64
	// MeanAnycastDeltaMs[d] is the day's mean anycast latency change.
	MeanAnycastDeltaMs []units.Millis
	// ActiveDeltasMs holds the anycast latency delta of every beacon
	// execution on fault-active days, for the delta CDF.
	ActiveDeltasMs []units.Millis
	Events         []EventImpact
}

// Resilience simulates cfg twice — once fault-free, once under sc — and
// reports how the scenario moved catchments and latency and how quickly
// the system returned to baseline. cfg.Scenario is overridden by sc for
// the faulted run and cleared for the baseline.
func Resilience(cfg sim.Config, sc faults.Scenario) (*ResilienceReport, error) {
	baseCfg := cfg
	baseCfg.Scenario = nil
	faultCfg := cfg
	faultCfg.Scenario = &sc

	base, err := sim.Run(baseCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: baseline run: %w", err)
	}
	faulted, err := sim.Run(faultCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: faulted run: %w", err)
	}
	return CompareRuns(base, faulted, sc)
}

// CompareRuns builds a ResilienceReport from an already-simulated
// baseline and faulted run. The two must come from the same Config (same
// seed, days and population); beacon executions then align one-to-one.
func CompareRuns(base, faulted *sim.Result, sc faults.Scenario) (*ResilienceReport, error) {
	days := base.Cfg.Days
	if faulted.Cfg.Days != days || len(base.Assignments) != len(faulted.Assignments) {
		return nil, fmt.Errorf("experiments: baseline and faulted runs have different shapes")
	}
	r := &ResilienceReport{
		Scenario:           sc,
		Days:               days,
		ShiftFrac:          make([]float64, days),
		BeaconDiffFrac:     make([]float64, days),
		MeanAnycastDeltaMs: make([]units.Millis, days),
	}

	n := len(base.Assignments)
	for d := 0; d < days; d++ {
		shifted := 0
		for i := 0; i < n; i++ {
			if faulted.Assignments[i][d].FrontEnd != base.Assignments[i][d].FrontEnd {
				shifted++
			}
		}
		if n > 0 {
			r.ShiftFrac[d] = float64(shifted) / float64(n)
		}

		bb, fb := base.Beacons[d], faulted.Beacons[d]
		if len(bb) != len(fb) {
			return nil, fmt.Errorf("experiments: day %d beacon counts diverge (%d vs %d); runs are not seed-aligned", d, len(bb), len(fb))
		}
		diff := 0
		var deltaSum units.Millis
		active := len(sc.ActiveOn(d)) > 0
		for j := range bb {
			delta := fb[j].Anycast.RTTms - bb[j].Anycast.RTTms
			if delta != 0 || fb[j].Anycast.Site != bb[j].Anycast.Site || fb[j].LDNS != bb[j].LDNS {
				diff++
			}
			deltaSum += delta
			if active {
				r.ActiveDeltasMs = append(r.ActiveDeltasMs, delta)
			}
		}
		if len(bb) > 0 {
			r.BeaconDiffFrac[d] = float64(diff) / float64(len(bb))
			r.MeanAnycastDeltaMs[d] = deltaSum / units.Millis(len(bb))
		}
	}

	for _, e := range sc.Events {
		r.Events = append(r.Events, r.eventImpact(e, base, faulted))
	}
	return r, nil
}

// eventImpact summarizes one event's window and recovery.
func (r *ResilienceReport) eventImpact(e faults.Event, base, faulted *sim.Result) EventImpact {
	imp := EventImpact{Event: e, RecoveryDays: -1}
	var shiftSum float64
	winDays := 0
	diffed, total := 0, 0
	var deltaSum units.Millis
	for d := e.Day; d < e.End() && d < r.Days; d++ {
		if r.ShiftFrac[d] > imp.PeakShiftFrac {
			imp.PeakShiftFrac = r.ShiftFrac[d]
		}
		shiftSum += r.ShiftFrac[d]
		winDays++
		bb, fb := base.Beacons[d], faulted.Beacons[d]
		for j := range bb {
			delta := fb[j].Anycast.RTTms - bb[j].Anycast.RTTms
			if delta != 0 || fb[j].Anycast.Site != bb[j].Anycast.Site || fb[j].LDNS != bb[j].LDNS {
				diffed++
			}
			deltaSum += delta
			total++
		}
	}
	if winDays > 0 {
		imp.MeanShiftFrac = shiftSum / float64(winDays)
	}
	if total > 0 {
		imp.BeaconDiffFrac = float64(diffed) / float64(total)
		imp.MeanAnycastDeltaMs = deltaSum / units.Millis(total)
	}
	for d := e.End(); d < r.Days; d++ {
		if r.ShiftFrac[d] == 0 && r.BeaconDiffFrac[d] == 0 {
			imp.RecoveryDays = d - e.End()
			break
		}
	}
	return imp
}

// Recovered reports whether the world matched the baseline again on some
// day after the scenario's last event ended.
func (r *ResilienceReport) Recovered() bool {
	last := r.Scenario.MaxDay()
	for d := last + 1; d < r.Days; d++ {
		if r.ShiftFrac[d] == 0 && r.BeaconDiffFrac[d] == 0 {
			return true
		}
	}
	return false
}

// deltaGrid is the fixed ms grid the latency-delta CDF is sampled on.
var deltaGrid = []units.Millis{-100, -50, -20, -10, -5, -2, -1, 0, 1, 2, 5, 10, 20, 50, 100, 200}

// Report converts the resilience comparison into the standard experiment
// report shape: a per-event impact table, a shift-by-day figure, the
// latency-delta CDF over fault-active days, and headline numbers.
func (r *ResilienceReport) Report() Report {
	rep := Report{ID: "resilience"}

	tbl := &stats.Table{
		Title:   "fault scenario impact: " + r.Scenario.Summary(),
		Columns: []string{"event", "window", "peak shift", "mean shift", "beacon diff", "mean Δ any", "recovery"},
	}
	for _, imp := range r.Events {
		recovery := "not in run"
		if imp.RecoveryDays >= 0 {
			recovery = fmt.Sprintf("+%dd", imp.RecoveryDays)
		}
		tbl.Rows = append(tbl.Rows, []string{
			imp.Event.Kind.String() + " " + imp.Event.Target,
			fmt.Sprintf("d%d+%d", imp.Event.Day, imp.Event.Days),
			pct(imp.PeakShiftFrac),
			pct(imp.MeanShiftFrac),
			pct(imp.BeaconDiffFrac),
			msStr(imp.MeanAnycastDeltaMs),
			recovery,
		})
	}
	rep.Table = tbl

	fig := &stats.Figure{
		Title:  "catchment shift and beacon divergence by day",
		XLabel: "day",
		YLabel: "fraction vs baseline",
	}
	shift := stats.Series{Name: "fe-shift"}
	bdiff := stats.Series{Name: "beacon-diff"}
	for d := 0; d < r.Days; d++ {
		shift.Points = append(shift.Points, stats.SeriesPoint{X: float64(d), Y: r.ShiftFrac[d]})
		bdiff.Points = append(bdiff.Points, stats.SeriesPoint{X: float64(d), Y: r.BeaconDiffFrac[d]})
	}
	fig.Series = []stats.Series{shift, bdiff}
	rep.Figure = fig

	rep.Lines = []Headline{
		{Name: "peak single-day catchment shift", Paper: "~20% ingress shift possible (§5)", Measured: pct(maxOf(r.ShiftFrac))},
		{Name: "peak single-day beacon divergence", Paper: "n/a (no faults in study window)", Measured: pct(maxOf(r.BeaconDiffFrac))},
		{Name: "recovered to baseline after last event", Paper: "expected (anycast reconverges)", Measured: fmt.Sprintf("%v", r.Recovered())},
	}
	return rep
}

// DeltaCDFFigure returns the latency-delta CDF over fault-active days,
// or nil when the scenario produced no active-day samples.
func (r *ResilienceReport) DeltaCDFFigure() *stats.Figure {
	ecdf, err := stats.NewECDF(r.ActiveDeltasMs)
	if err != nil {
		return nil
	}
	fig := &stats.Figure{
		Title:  "anycast latency delta vs baseline (fault-active days)",
		XLabel: "delta ms",
		YLabel: "CDF",
		Series: []stats.Series{ecdf.SampleCDF("P[Δ <= x]", deltaGrid)},
		Notes: []string{fmt.Sprintf("%d beacon pairs on fault-active days; median Δ %s",
			ecdf.N(), msStr(ecdf.Quantile(0.5)))},
	}
	return fig
}

// Render formats the resilience report for terminal output: the impact
// table, the per-day divergence figure, and the delta CDF.
func (r *ResilienceReport) Render() string {
	out := r.Report().Render()
	if fig := r.DeltaCDFFigure(); fig != nil {
		out += fig.Render()
	}
	return out
}

func maxOf(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
