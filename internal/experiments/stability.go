package experiments

import (
	"fmt"
	"sort"

	"anycastcdn/internal/core"
	"anycastcdn/internal/dns"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// dnsID converts a stored resolver id back to its typed form.
func dnsID(v int) dns.LDNSID { return dns.LDNSID(v) }

// MetricStability reproduces the result §6 of the paper describes but
// omits "due to lack of space": the claim that low percentiles of a
// (client group, front-end) latency distribution are stable across days —
// and therefore usable as prediction metrics — while high percentiles are
// too noisy. For each candidate percentile it reports two quantities over
// all (client, target) pairs with enough measurements on consecutive days:
//
//   - the median coefficient of variation of the percentile across days
//     (the paper's stability measure), and
//   - the median absolute day-over-day change in the percentile, in ms
//     (a direct measure of prediction difficulty).
func (s *Suite) MetricStability() Report {
	percentiles := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95}
	const minPerDay = 10

	// Collect per-(client, target) per-day percentile values.
	type pairKey struct {
		client uint64
		site   topology.SiteID
		any    bool
	}
	days := len(s.Res.Beacons)
	// series[p][pair] = per-day percentile values (NaN-free; missing days
	// skipped).
	perPair := make([]map[pairKey][]units.Millis, len(percentiles))
	for i := range perPair {
		perPair[i] = map[pairKey][]units.Millis{}
	}
	for day := 0; day < days; day++ {
		byPair := map[pairKey][]units.Millis{}
		for _, m := range s.Res.Beacons[day] {
			byPair[pairKey{m.ClientID, 0, true}] = append(byPair[pairKey{m.ClientID, 0, true}], m.Anycast.RTTms)
			for _, u := range m.Unicast {
				k := pairKey{m.ClientID, u.Site, false}
				byPair[k] = append(byPair[k], u.RTTms)
			}
		}
		for k, samples := range byPair {
			if len(samples) < minPerDay {
				continue
			}
			for i, p := range percentiles {
				v, err := stats.Quantile(samples, p)
				if err == nil {
					perPair[i][k] = append(perPair[i][k], v)
				}
			}
		}
	}

	tb := &stats.Table{
		Title:   "§6 (omitted result): stability of candidate prediction metrics",
		Columns: []string{"percentile", "median CoV across days", "median |day-over-day change| (ms)", "pairs"},
	}
	var covByPct []float64
	for i, p := range percentiles {
		var covs []float64
		var deltas []units.Millis
		//replay:commutative covs and deltas only feed Median, which sorts; the result is independent of collection order
		for _, series := range perPair[i] {
			if len(series) < 3 {
				continue
			}
			if cov, err := stats.CoefficientOfVariation(series); err == nil {
				covs = append(covs, cov)
			}
			for d := 1; d < len(series); d++ {
				diff := series[d] - series[d-1]
				if diff < 0 {
					diff = -diff
				}
				deltas = append(deltas, diff)
			}
		}
		if len(covs) == 0 {
			continue
		}
		medCov, _ := stats.Median(covs)
		medDelta, _ := stats.Median(deltas)
		covByPct = append(covByPct, medCov)
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprintf("p%02.0f", p*100),
			fmt.Sprintf("%.4f", medCov),
			fmt.Sprintf("%.1f", medDelta),
			fmt.Sprintf("%d", len(covs)),
		})
	}
	lines := []Headline{}
	if len(covByPct) >= 2 {
		lines = append(lines, Headline{
			Name:     "low percentiles stabler than high percentiles",
			Paper:    "25th/median have lower CoV; high percentiles 'very noisy'",
			Measured: fmt.Sprintf("CoV p25=%.4f vs p95=%.4f", covByPct[1], covByPct[len(covByPct)-1]),
		})
	}
	return Report{ID: "metric-stability", Table: tb, Lines: lines}
}

// HybridDeployment runs the deployment the paper proposes at the end of
// §6 over the whole simulated month: each day the predictor retrains on
// the previous day's beacons and steers the following day's traffic
// (anycast for most clients, DNS redirection for the predicted few). It
// reports the query-weighted median and 75th-percentile latency of three
// policies — anycast-only, full DNS prediction, and the hybrid with a
// safety margin — the comparison a CDN operator would actually use to
// decide.
func (s *Suite) HybridDeployment(marginMs units.Millis) Report {
	days := len(s.Res.Beacons)
	vols := s.Res.Volumes()
	obs := make([][]core.Observation, days)
	for d := 0; d < days; d++ {
		for _, m := range s.Res.Beacons[d] {
			obs[d] = append(obs[d], core.FromMeasurement(m)...)
		}
	}
	policies := []struct {
		name   string
		cfg    *core.Config // nil = anycast only / geo-DNS
		geoDNS bool
	}{
		{"anycast only", nil, false},
		{"geo-DNS (closest to LDNS)", nil, true},
		{"DNS prediction (plain §6)", &core.Config{Metric: core.MetricP25, MinMeasurements: 20}, false},
		{fmt.Sprintf("hybrid (%.0f ms margin)", marginMs.Float()),
			&core.Config{Metric: core.MetricP25, MinMeasurements: 20, HybridMarginMs: marginMs}, false},
	}
	tb := &stats.Table{
		Title:   "§6 extension: month-long deployment comparison (query-weighted)",
		Columns: []string{"policy", "median ms", "p75 ms", "p95 ms", "redirected share"},
	}
	var medians []units.Millis
	for _, pol := range policies {
		var lat []units.Millis
		var w []float64
		var redirW, totW float64
		var pred *core.Predictions
		var predictor *core.Predictor
		if pol.cfg != nil {
			predictor = core.NewPredictor(*pol.cfg)
		}
		for d := 1; d < days; d++ {
			if predictor != nil {
				pred = predictor.Train(obs[d-1], core.ByPrefix)
			}
			perDay := serveDay(obs[d], pred, pol.geoDNS, vols)
			for _, sv := range perDay {
				lat = append(lat, sv.latency)
				w = append(w, sv.weight)
				totW += sv.weight
				if sv.redirected {
					redirW += sv.weight
				}
			}
		}
		e, err := stats.NewWeightedECDF(lat, w)
		if err != nil {
			continue
		}
		med := e.Quantile(0.5)
		medians = append(medians, med)
		tb.Rows = append(tb.Rows, []string{
			pol.name,
			fmt.Sprintf("%.1f", med),
			fmt.Sprintf("%.1f", e.Quantile(0.75)),
			fmt.Sprintf("%.1f", e.Quantile(0.95)),
			pct(redirW / totW),
		})
	}
	lines := []Headline{}
	if len(medians) == 4 {
		lines = append(lines,
			Headline{
				Name:     "hybrid vs anycast-only median latency",
				Paper:    "hybrid 'may outperform' plain DNS redirection (§6, proposed)",
				Measured: fmt.Sprintf("anycast %.1f ms → hybrid %.1f ms", medians[0], medians[3]),
			},
			Headline{
				Name:     "anycast vs traditional geo-DNS",
				Paper:    "anycast delivers optimal performance for most clients (§8)",
				Measured: fmt.Sprintf("anycast %.1f ms vs geo-DNS %.1f ms median", medians[0], medians[1]),
			})
	}
	return Report{ID: "hybrid-deployment", Table: tb, Lines: lines}
}

// served is one client-day outcome under a policy.
type served struct {
	latency    units.Millis
	weight     float64
	redirected bool
}

// serveDay replays one day of beacon observations under a redirection
// policy: each client's experienced latency is the median of its samples
// to the target the policy picked (anycast when pred is nil or declines).
// geoDNS instead steers every client to the front-end closest to its LDNS
// — the traditional DNS redirection baseline of §2.
func serveDay(dayObs []core.Observation, pred *core.Predictions, geoDNS bool, vols map[uint64]float64) []served {
	type k struct {
		client uint64
		target core.Target
	}
	samples := map[k][]units.Millis{}
	closestOf := map[uint64]core.Target{}
	ldns := map[uint64]int{}
	for _, o := range dayObs {
		samples[k{o.ClientID, o.Target}] = append(samples[k{o.ClientID, o.Target}], o.RTTms)
		ldns[o.ClientID] = int(o.LDNS)
		if o.Slot == 1 {
			closestOf[o.ClientID] = o.Target
		}
	}
	clients := make([]uint64, 0, len(ldns))
	//replay:commutative keys only; sorted immediately below, so collection order is discarded
	for c := range ldns {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	var out []served
	for _, c := range clients {
		target := core.AnycastTarget
		switch {
		case geoDNS:
			if t, ok := closestOf[c]; ok {
				target = t
			}
		case pred != nil:
			target = pred.For(c, dnsID(ldns[c]))
		}
		redirected := !target.Anycast
		ss := samples[k{c, target}]
		if len(ss) == 0 {
			// The redirection target was not measured for this client
			// today; the client is still served (by that front-end), but
			// we can only estimate its latency from anycast samples —
			// skip rather than guess.
			ss = samples[k{c, core.AnycastTarget}]
			if len(ss) == 0 {
				continue
			}
			redirected = false
		}
		med, err := stats.Median(ss)
		if err != nil {
			continue
		}
		w := vols[c]
		if w <= 0 {
			w = 1
		}
		out = append(out, served{latency: med, weight: w, redirected: redirected})
	}
	return out
}
