package experiments

import (
	"testing"

	"anycastcdn/internal/logs"
	"anycastcdn/internal/testutil"
)

// TestStreamSuiteMatchesSuite pins the tentpole contract at the report
// level: the streaming suite, fed day by day from StreamWorld, renders
// byte-identical reports to the batch Suite computed over the full Result.
// Every passive-log experiment is covered.
func TestStreamSuiteMatchesSuite(t *testing.T) {
	res := testutil.SuiteResult(t)
	batch := testSuite(t)
	ss := NewStreamSuite(res.Cfg, res.World)
	if err := ss.Run(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name        string
		batch, strm Report
	}{
		{"figure4", batch.Figure4(), ss.Figure4()},
		{"catchments", batch.Catchments(10), ss.Catchments(10)},
		{"tcp-disruption", batch.TCPDisruption(), ss.TCPDisruption()},
		{"load-shedding", batch.LoadShedding(4), ss.LoadShedding(4)},
		{"figure7", batch.Figure7(), ss.Figure7()},
		{"figure8", batch.Figure8(), ss.Figure8()},
	} {
		b, s := tc.batch.Render(), tc.strm.Render()
		if b != s {
			t.Errorf("%s: stream report differs from batch report:\n--- batch ---\n%s\n--- stream ---\n%s", tc.name, b, s)
		}
	}
}

// TestZeroQuerySwitchExcludedFromSwitchFigures pins the observability rule
// at the aggregator level: a front-end change on a day the client sent no
// queries is invisible to the log, so neither the affinity figure (7) nor
// the switch-distance figure (8) may count it. The same rule already holds
// for the logs-level helpers (TestZeroQuerySwitchInvisibleToBothFigures in
// internal/logs); this test keeps the streaming aggregators honest too.
func TestZeroQuerySwitchExcludedFromSwitchFigures(t *testing.T) {
	res := testutil.SmallResult(t)
	bb := res.World.Deployment.Backbone
	fes := bb.FrontEnds()
	if len(fes) < 2 {
		t.Fatal("fixture world needs two front-ends")
	}
	visible := logs.DayRecord{
		ClientID: 1, Day: 1, FrontEnd: fes[1], PrevFrontEnd: fes[0],
		Switched: true, Queries: 5,
	}
	invisible := visible
	invisible.ClientID = 2
	invisible.Queries = 0

	fig7 := newSwitchAgg(figure7Week, 8)
	fig7.observe(visible)
	fig7.observe(invisible)
	cum := fig7.cumulative()
	// Only client 1 is active and switched; client 2's zero-query day puts
	// it outside the observable population entirely.
	if len(cum) != figure7Week || cum[1] != 1 {
		t.Fatalf("fig7 cumulative = %v; want exactly the one observable switch", cum)
	}

	fig8 := newFig8Agg(bb)
	fig8.observe(visible)
	fig8.observe(invisible)
	if n := fig8.sketch.N(); n != 1 {
		t.Fatalf("fig8 sketch holds %d switches, want 1 (zero-query switch must be excluded)", n)
	}
}
