package experiments

import (
	"testing"

	"anycastcdn/internal/faults"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

// loadScenario surges a small region whose deep rings live elsewhere: the
// excess must travel through the layer stack (or, under withdrawal,
// cascade into the neighbouring region) instead of being absorbed by a
// co-located mega-DC.
const loadScenario = "surge south-america day=2 for=5 qps=15"

func loadMgmtScenario(t testing.TB) faults.Scenario {
	t.Helper()
	sc, err := faults.ParseScenario(loadScenario)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestLoadManagementReportGolden(t *testing.T) {
	r, err := LoadManagement(testutil.SmallConfig(1), loadMgmtScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "loadmanagement", r.Render())
}

// TestLoadManagementBatchStreamIdentity pins the acceptance requirement
// that the batch and streaming paths render byte-identical reports: the
// batch path aggregates the materialized Result in the same day-major
// record order the stream delivers, so even float accumulation matches.
func TestLoadManagementBatchStreamIdentity(t *testing.T) {
	cfg := testutil.SmallConfig(1)
	sc := loadMgmtScenario(t)
	batch, err := LoadManagement(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := StreamLoadManagement(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if b, s := batch.Render(), stream.Render(); b != s {
		t.Errorf("batch and stream reports differ:\n--- batch ---\n%s\n--- stream ---\n%s", b, s)
	}
}

// TestLoadManagementAcceptance pins the paper-level outcome: under the
// same flash crowd, static anycast overloads, naive withdrawal makes it
// worse (cascading withdrawals, higher peak), and FastRoute spillover
// holds peak utilization at or under capacity by shedding to deeper
// rings at a bounded latency cost.
func TestLoadManagementAcceptance(t *testing.T) {
	r, err := LoadManagement(testutil.SmallConfig(1), loadMgmtScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Static.PeakUtil <= 2 {
		t.Errorf("static arm peak util = %.3f, want > 2 (the surge should overload the static fleet)", r.Static.PeakUtil)
	}
	if r.Withdraw.WithdrawnSiteDays == 0 {
		t.Error("withdraw arm withdrew no routes under the surge")
	}
	if r.Withdraw.PeakUtil <= 2 {
		t.Errorf("withdraw peak util = %.3f, want > 2 (withdrawal re-concentrates the overload)", r.Withdraw.PeakUtil)
	}
	// The cascade must roll: the withdrawn set grows well past the first
	// reaction instead of settling after one withdrawal.
	first, peakWd := 0, 0
	for _, wd := range r.Withdraw.PerDayWithdrawn {
		if wd > 0 && first == 0 {
			first = wd
		}
		if wd > peakWd {
			peakWd = wd
		}
	}
	if peakWd < 2*first || peakWd < 4 {
		t.Errorf("withdrawal cascade did not roll: per-day withdrawn %v", r.Withdraw.PerDayWithdrawn)
	}
	const eps = 1e-9
	if r.FastRoute.PeakUtil > 1+eps {
		t.Errorf("fastroute peak util = %.3f, want <= 1 (spillover should hold the fleet)", r.FastRoute.PeakUtil)
	}
	if r.FastRoute.PeakUtil >= r.Static.PeakUtil || r.FastRoute.PeakUtil >= r.Withdraw.PeakUtil {
		t.Errorf("fastroute peak %.3f should beat static %.3f and withdraw %.3f",
			r.FastRoute.PeakUtil, r.Static.PeakUtil, r.Withdraw.PeakUtil)
	}
	if r.FastRoute.OverloadSiteDays != 0 {
		t.Errorf("fastroute overload site-days = %d, want 0", r.FastRoute.OverloadSiteDays)
	}
	if r.FastRoute.ShedQueries == 0 {
		t.Error("fastroute shed no volume under the surge")
	}
	if got := r.FastRoute.ShedFrac(); got <= 0 || got >= 1 {
		t.Errorf("fastroute shed fraction = %v, want in (0, 1)", got)
	}
	if r.FastRoute.RedirectedClientDays == 0 {
		t.Error("fastroute redirected no client-days")
	}
	if r.FastRoute.DeltaECDF == nil {
		t.Fatal("fastroute delta ECDF missing")
	}
	if med := r.FastRoute.DeltaECDF.Quantile(0.5); med < 0 {
		t.Errorf("median redirection delta = %v ms, want >= 0 (deeper rings are farther)", med)
	}
	// Static and FastRoute see the same offered load; only serving
	// placement differs.
	if r.Static.TotalQueries != r.FastRoute.TotalQueries {
		t.Errorf("arms observed different total volume: static %d, fastroute %d",
			r.Static.TotalQueries, r.FastRoute.TotalQueries)
	}
	if r.Static.ShedQueries != 0 || r.Static.RedirectedClientDays != 0 {
		t.Errorf("static arm redirected traffic: shed=%d redirected=%d",
			r.Static.ShedQueries, r.Static.RedirectedClientDays)
	}
}

// BenchmarkLoadManagement measures the full three-arm comparison over a
// 1000-prefix surge day — the load-management hot path end to end
// (capacity derivation, controller convergence, per-client re-routing,
// aggregation).
func BenchmarkLoadManagement(b *testing.B) {
	cfg := sim.DefaultConfig(3)
	cfg.Prefixes = 1000
	cfg.Days = 2
	sc, err := faults.ParseScenario("surge south-america day=1 qps=6")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadManagement(cfg, sc); err != nil {
			b.Fatal(err)
		}
	}
}
