package experiments

import (
	"fmt"
	"strings"

	"anycastcdn/internal/cdn"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/stats"
)

// DeploymentDensity runs the extension §4 of the paper leaves as future
// work: "how to extend these performance results to CDNs with different
// numbers and locations of servers". It re-runs a short simulation at
// each deployment preset and reports the paper's key metrics — median
// client→front-end distance, fraction of clients at their closest
// front-end, and the ≥25 ms anycast penalty rate — as the deployment
// thins from Bing-like (64 sites) to CDNify-like (~20 sites).
//
// baseCfg supplies scale (prefixes, days are clamped for speed); each
// preset reuses its seed so rows differ only by deployment.
func DeploymentDensity(baseCfg sim.Config) (Report, error) {
	cfg := baseCfg
	if cfg.Days > 3 {
		cfg.Days = 3
	}
	if cfg.Prefixes > 3000 {
		cfg.Prefixes = 3000
	}
	tb := &stats.Table{
		Title: "§4 future work: anycast performance vs deployment density",
		Columns: []string{
			"deployment", "front-ends",
			"median km to anycast FE", "clients at closest FE",
			"requests >=25ms slower", "requests >=100ms slower",
		},
	}
	type row struct {
		medianKm, atClosest, p25, p100 float64
	}
	var rows []row
	for _, preset := range []cdn.Preset{cdn.PresetDefault, cdn.PresetMedium, cdn.PresetSparse} {
		cfg.Deployment = preset
		res, err := sim.Run(cfg)
		if err != nil {
			return Report{}, fmt.Errorf("experiments: density preset %q: %w", preset, err)
		}
		suite := NewSuite(res)
		f4 := suite.Figure4()
		f3 := suite.Figure3()
		r := row{
			medianKm:  seriesQuantile(f4, "clients to front-end", 0.5),
			atClosest: headlineFraction(f4, "closest front-end"),
			p25:       headlineFraction(f3, ">= 25 ms"),
			p100:      headlineFraction(f3, ">= 100 ms"),
		}
		rows = append(rows, r)
		tb.Rows = append(tb.Rows, []string{
			string(preset),
			fmt.Sprintf("%d", res.World.Deployment.NumFrontEnds()),
			fmt.Sprintf("%.0f", r.medianKm),
			pct(r.atClosest),
			pct(r.p25),
			pct(r.p100),
		})
	}
	lines := []Headline{}
	if len(rows) == 3 {
		lines = append(lines, Headline{
			Name:     "sparser deployments push clients farther",
			Paper:    "open question in §4 (future work)",
			Measured: fmt.Sprintf("median km %d → %d → %d as sites thin", int(rows[0].medianKm), int(rows[1].medianKm), int(rows[2].medianKm)),
		})
	}
	return Report{ID: "deployment-density", Table: tb, Lines: lines}, nil
}

// seriesQuantile inverts a sampled CDF series: the first grid x whose CDF
// value reaches q.
func seriesQuantile(r Report, seriesName string, q float64) float64 {
	if r.Figure == nil {
		return 0
	}
	for _, s := range r.Figure.Series {
		if s.Name != seriesName {
			continue
		}
		for _, p := range s.Points {
			if p.Y >= q {
				return p.X
			}
		}
		if n := len(s.Points); n > 0 {
			return s.Points[n-1].X
		}
	}
	return 0
}

// headlineFraction parses the measured percentage of the first headline
// whose name contains key, returning a fraction.
func headlineFraction(r Report, key string) float64 {
	for _, h := range r.Lines {
		if !strings.Contains(h.Name, key) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(h.Measured, "%f%%", &v); err == nil {
			return v / 100
		}
	}
	return 0
}
