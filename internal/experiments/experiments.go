// Package experiments regenerates every table and figure of the paper's
// evaluation from a simulation run. Each FigureN function returns a Report
// holding the figure's series (the same rows/lines the paper plots) plus
// headline numbers with the paper's value alongside the measured value, so
// EXPERIMENTS.md and cmd/repro can compare shapes directly.
package experiments

import (
	"fmt"
	"sort"

	"anycastcdn/internal/beacon"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// Headline is one paper-vs-measured comparison point.
type Headline struct {
	Name     string
	Paper    string
	Measured string
}

// Report is the output of one experiment.
type Report struct {
	ID     string // "fig1" .. "fig9", "cdn-table"
	Figure *stats.Figure
	Table  *stats.Table
	Lines  []Headline
}

// Render formats the report for terminal output.
func (r Report) Render() string {
	out := ""
	if r.Figure != nil {
		out += r.Figure.Render()
	}
	if r.Table != nil {
		out += r.Table.Render()
	}
	if len(r.Lines) > 0 {
		out += "-- paper vs measured --\n"
		for _, h := range r.Lines {
			out += fmt.Sprintf("%-52s  paper: %-18s  measured: %s\n", h.Name, h.Paper, h.Measured)
		}
	}
	return out
}

// Suite runs experiments over one simulation result, caching shared
// derived datasets.
type Suite struct {
	Res *sim.Result

	dailyOnce bool
	daily     [][]Comparison
}

// NewSuite wraps a simulation result.
func NewSuite(res *sim.Result) *Suite { return &Suite{Res: res} }

// Comparison is a per-(client, day) anycast-vs-best-unicast summary used
// by Figures 5 and 6: the difference between the day's median anycast
// latency and the best per-front-end median unicast latency.
type Comparison struct {
	ClientID uint64
	Day      int
	// ImprovementMs > 0 means some unicast front-end's median beat the
	// anycast median by that much.
	ImprovementMs units.Millis
	BestSite      topology.SiteID
	Volume        float64
}

// minSamplesPerTarget is the per-day floor for a (client, front-end) median
// to count in the daily comparison.
const minSamplesPerTarget = 5

// DailyComparisons computes (and caches) the per-day medians analysis.
func (s *Suite) DailyComparisons() [][]Comparison {
	if s.dailyOnce {
		return s.daily
	}
	vols := s.Res.Volumes()
	out := make([][]Comparison, len(s.Res.Beacons))
	for day, ms := range s.Res.Beacons {
		out[day] = dailyComparison(ms, day, vols)
	}
	s.daily = out
	s.dailyOnce = true
	return out
}

func dailyComparison(ms []beacon.Measurement, day int, vols map[uint64]float64) []Comparison {
	type key struct {
		client uint64
		site   topology.SiteID
	}
	anycast := map[uint64][]units.Millis{}
	unicast := map[key][]units.Millis{}
	for _, m := range ms {
		anycast[m.ClientID] = append(anycast[m.ClientID], m.Anycast.RTTms)
		for _, u := range m.Unicast {
			k := key{m.ClientID, u.Site}
			unicast[k] = append(unicast[k], u.RTTms)
		}
	}
	perClientSites := map[uint64][]key{}
	for k := range unicast {
		perClientSites[k.client] = append(perClientSites[k.client], k)
	}
	var out []Comparison
	clientIDs := make([]uint64, 0, len(anycast))
	//replay:commutative keys only; sorted immediately below, so collection order is discarded
	for id := range anycast {
		clientIDs = append(clientIDs, id)
	}
	sort.Slice(clientIDs, func(i, j int) bool { return clientIDs[i] < clientIDs[j] })
	for _, id := range clientIDs {
		as := anycast[id]
		if len(as) < minSamplesPerTarget {
			continue
		}
		anyMed, err := stats.Median(as)
		if err != nil {
			continue
		}
		bestMed := units.Millis(-1)
		var bestSite topology.SiteID = topology.InvalidSite
		sites := perClientSites[id]
		sort.Slice(sites, func(i, j int) bool { return sites[i].site < sites[j].site })
		for _, k := range sites {
			us := unicast[k]
			if len(us) < minSamplesPerTarget {
				continue
			}
			med, err := stats.Median(us)
			if err != nil {
				continue
			}
			if bestMed < 0 || med < bestMed {
				bestMed, bestSite = med, k.site
			}
		}
		if bestMed < 0 {
			continue
		}
		out = append(out, Comparison{
			ClientID:      id,
			Day:           day,
			ImprovementMs: anyMed - bestMed,
			BestSite:      bestSite,
			Volume:        vols[id],
		})
	}
	return out
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// km formats a distance.
func km(d units.Kilometers) string { return fmt.Sprintf("%.0f km", d) }

// msStr formats a latency.
func msStr(d units.Millis) string { return fmt.Sprintf("%.1f ms", d) }
