package experiments

import "anycastcdn/internal/sim"

// StreamSuite computes the passive-log experiments online over a streaming
// simulation: feed every sim.DayResult to Observe (or call Run) and read
// the reports after the stream ends. It drives the same per-record
// aggregators the batch Suite drives over a full Result, so the two
// produce byte-identical reports — pinned by TestStreamSuiteMatchesSuite —
// while the stream retains only the aggregators' state, never a day of
// raw output. This is the analysis path for paper-scale runs (millions of
// client /24s over a month) whose full measurement set would not fit in
// memory.
//
// The beacon-driven figures (5, 6, 9) need cross-day latency samples per
// client and are not part of the streaming suite.
type StreamSuite struct {
	Cfg   sim.Config
	World *sim.World

	fig4 *figure4Agg
	cat  *catchmentAgg
	tcp  *tcpAgg
	shed *loadShedAgg
	fig7 *switchAgg
	fig8 *fig8Agg
}

// NewStreamSuite prepares aggregators for a streaming run over w. The
// dense per-client aggregators size themselves from cfg.Prefixes, not the
// world's population, so a merge-only suite can run over a population-free
// sim.BuildAnalysisWorld — the distributed coordinator's configuration.
func NewStreamSuite(cfg sim.Config, w *sim.World) *StreamSuite {
	return &StreamSuite{
		Cfg:   cfg,
		World: w,
		fig4:  newFigure4Agg(cfg, w),
		cat:   newCatchmentAgg(w),
		tcp:   newTCPAgg(cfg.Prefixes),
		shed:  newLoadShedAgg(),
		fig7:  newSwitchAgg(figure7Week, cfg.Prefixes),
		fig8:  newFig8Agg(w.Deployment.Backbone),
	}
}

// Observe consumes one streamed day. It has the sim.StreamWorld callback
// shape, so a suite can be fed directly:
//
//	ss := experiments.NewStreamSuite(cfg, w)
//	err := sim.StreamWorld(cfg, w, ss.Observe)
//
// It copies nothing out of the DayResult: every record lands in the
// aggregators before the callback returns, respecting the stream's
// buffer-reuse contract.
func (s *StreamSuite) Observe(d sim.DayResult) error {
	for i, r := range d.Passive {
		s.fig4.observe(r)
		s.cat.observe(r)
		s.tcp.observe(r)
		s.fig7.observe(r)
		s.fig8.observe(r)
		if d.Day == 0 {
			s.shed.observe(r, d.Assignments[i].Ingress)
		}
	}
	return nil
}

// Run streams the configured simulation over the world, feeding every day
// to the suite.
func (s *StreamSuite) Run() error {
	return sim.StreamWorld(s.Cfg, s.World, s.Observe)
}

// Figure4 reports the client-to-front-end distance analysis (§5).
func (s *StreamSuite) Figure4() Report { return s.fig4.report() }

// Catchments reports the per-front-end catchment table.
func (s *StreamSuite) Catchments(topN int) Report { return s.cat.report(topN) }

// TCPDisruption reports the §2 flow-breakage claim check.
func (s *StreamSuite) TCPDisruption() Report { return s.tcp.report() }

// LoadShedding reports the FastRoute-style flash-crowd experiment.
func (s *StreamSuite) LoadShedding(crowdFactor float64) Report {
	return s.shed.report(s.World, crowdFactor)
}

// Figure7 reports the front-end affinity analysis (§5).
func (s *StreamSuite) Figure7() Report { return s.fig7.report(s.World.Router.Weekday) }

// Figure8 reports the switch-distance analysis (§5).
func (s *StreamSuite) Figure8() Report { return s.fig8.report() }
