package experiments

import (
	"strings"
	"testing"

	"anycastcdn/internal/faults"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
	"anycastcdn/internal/topology"
)

// busiestIngressMetro picks the peering metro carrying the most clients
// on a day of the baseline run, so a flap of it must shift catchments.
func busiestIngressMetro(t *testing.T, res *sim.Result, day int) string {
	t.Helper()
	counts := map[topology.SiteID]int{}
	for c := range res.Assignments {
		counts[res.Assignments[c][day].Ingress]++
	}
	best, bestN := topology.InvalidSite, 0
	for s, n := range counts {
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	return res.World.Deployment.Backbone.Site(best).Metro.Name
}

// TestResilienceFlap is the headline acceptance case: a BGP flap of the
// busiest ingress must show a nonzero catchment shift and latency delta
// during its window and exact recovery to baseline after it.
func TestResilienceFlap(t *testing.T) {
	base := testutil.SmallResult(t)
	ing := busiestIngressMetro(t, base, 3)
	sc, err := faults.ParseScenario("flap " + ing + " day=3 for=2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testutil.SmallConfig(1)
	cfg.Scenario = &sc
	faulted, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := CompareRuns(base, faulted, sc)
	if err != nil {
		t.Fatal(err)
	}

	if len(r.Events) != 1 {
		t.Fatalf("report has %d events, want 1", len(r.Events))
	}
	imp := r.Events[0]
	if imp.PeakShiftFrac <= 0 {
		t.Fatalf("flap of busiest ingress %s produced zero catchment shift", ing)
	}
	if imp.BeaconDiffFrac <= 0 {
		t.Fatal("flap produced no beacon-level latency delta")
	}
	if len(r.ActiveDeltasMs) == 0 {
		t.Fatal("no latency deltas collected on fault-active days")
	}
	nonzero := false
	for _, d := range r.ActiveDeltasMs {
		if d != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("latency-delta CDF is identically zero for a flap scenario")
	}
	if imp.RecoveryDays != 0 {
		t.Fatalf("flap recovery took %d days, want exact reconvergence the day after the window", imp.RecoveryDays)
	}
	if !r.Recovered() {
		t.Fatal("report does not show recovery to baseline")
	}
	for d := 0; d < 3; d++ {
		if r.ShiftFrac[d] != 0 || r.BeaconDiffFrac[d] != 0 {
			t.Fatalf("pre-event day %d shows divergence", d)
		}
	}
	for d := 5; d < r.Days; d++ {
		if r.ShiftFrac[d] != 0 || r.BeaconDiffFrac[d] != 0 {
			t.Fatalf("post-event day %d shows divergence; no recovery", d)
		}
	}

	rendered := r.Render()
	for _, want := range []string{"fault scenario impact", "flap " + ing, "anycast latency delta", "recovered to baseline"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, rendered)
		}
	}
	if fig := r.DeltaCDFFigure(); fig == nil {
		t.Fatal("DeltaCDFFigure is nil despite active-day deltas")
	}
}

// TestResilienceEmptyScenario pins the degenerate case: comparing a run
// against itself under no events reports zero divergence everywhere.
func TestResilienceEmptyScenario(t *testing.T) {
	base := testutil.SmallResult(t)
	r, err := CompareRuns(base, base, faults.Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < r.Days; d++ {
		if r.ShiftFrac[d] != 0 || r.BeaconDiffFrac[d] != 0 || r.MeanAnycastDeltaMs[d] != 0 {
			t.Fatalf("self-comparison shows divergence on day %d", d)
		}
	}
	if len(r.ActiveDeltasMs) != 0 {
		t.Fatal("empty scenario collected active-day deltas")
	}
	if r.DeltaCDFFigure() != nil {
		t.Fatal("empty scenario has a delta CDF")
	}
	if !r.Recovered() {
		t.Fatal("empty scenario should count as recovered")
	}
	if r.Render() == "" {
		t.Fatal("empty report renders nothing")
	}
}

// TestResilienceShapeMismatch guards the alignment precondition.
func TestResilienceShapeMismatch(t *testing.T) {
	base := testutil.SmallResult(t)
	other, err := sim.Run(testutil.TinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareRuns(base, other, faults.Scenario{}); err == nil {
		t.Fatal("CompareRuns accepted runs of different shapes")
	}
}
