package experiments

import (
	"testing"

	"anycastcdn/internal/faults"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

// shardFrames streams one shard's days through a ShardObserver and
// returns the encoded per-day deltas.
func shardFrames(t *testing.T, cfg sim.Config, w *sim.World, lo, hi int) [][]byte {
	t.Helper()
	obs, err := NewShardObserver(cfg, w, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, 0, cfg.Days)
	err = sim.StreamShard(cfg, w, sim.ShardOpts{Lo: lo, Hi: hi}, func(d sim.DayResult) error {
		frames = append(frames, obs.AppendDay(d, nil))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

// TestShardMergeMatchesStreamSuite is the distributed analysis pipeline's
// core identity: shard observers encoding per-day deltas, merged in
// (day, shard) order into a suite over a population-free analysis world,
// must render every passive-log report byte-identically to a suite that
// observed the whole stream in one process. A surge scenario keeps
// front-end switches and zero-query days crossing shard boundaries.
func TestShardMergeMatchesStreamSuite(t *testing.T) {
	sc, err := faults.ParseScenario("surge south-america day=3 for=3 qps=6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testutil.SmallConfig(17)
	cfg.Scenario = &sc
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewStreamSuite(cfg, w)
	if err := sim.StreamWorld(cfg, w, ref.Observe); err != nil {
		t.Fatal(err)
	}

	n := len(w.Population.Clients)
	a := n / 3
	bounds := [][2]int{{0, a}, {a, a + 3}, {a + 3, n}}
	frames := make([][][]byte, len(bounds)) // shard -> day -> delta
	for si, b := range bounds {
		frames[si] = shardFrames(t, cfg, w, b[0], b[1])
	}

	// The coordinator path: merge over a world with no population at all.
	aw, err := sim.BuildAnalysisWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := NewStreamSuite(cfg, aw)
	for day := 0; day < cfg.Days; day++ {
		for si, b := range bounds {
			if err := merged.MergeShardDay(day, b[0], b[1], frames[si][day]); err != nil {
				t.Fatalf("day %d shard %d: %v", day, si, err)
			}
		}
	}

	reports := []struct {
		name     string
		ref, got string
	}{
		{"fig4", ref.Figure4().Render(), merged.Figure4().Render()},
		{"catchments", ref.Catchments(10).Render(), merged.Catchments(10).Render()},
		{"tcp", ref.TCPDisruption().Render(), merged.TCPDisruption().Render()},
		{"loadshed", ref.LoadShedding(4).Render(), merged.LoadShedding(4).Render()},
		{"fig7", ref.Figure7().Render(), merged.Figure7().Render()},
		{"fig8", ref.Figure8().Render(), merged.Figure8().Render()},
	}
	for _, r := range reports {
		if r.ref != r.got {
			t.Errorf("%s report differs after shard merge:\n--- single-process ---\n%s\n--- merged ---\n%s",
				r.name, r.ref, r.got)
		}
	}
}

// TestMergeShardDayErrors pins the malformed-frame paths: nothing a
// worker sends should be able to panic the coordinator.
func TestMergeShardDayErrors(t *testing.T) {
	cfg := testutil.TinyConfig(5)
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(w.Population.Clients)
	frames := shardFrames(t, cfg, w, 0, n)

	fresh := func() *StreamSuite { return NewStreamSuite(cfg, w) }
	if err := fresh().MergeShardDay(0, 0, n, frames[0]); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	cases := []struct {
		name        string
		day, lo, hi int
		data        []byte
	}{
		{"empty", 0, 0, n, nil},
		{"bad magic", 0, 0, n, append([]byte{0x00}, frames[0][1:]...)},
		{"wrong day", 1, 0, n, frames[0]},
		{"wrong range", 0, 0, n - 1, frames[0]},
		{"truncated", 0, 0, n, frames[0][:len(frames[0])/2]},
		{"trailing bytes", 0, 0, n, append(append([]byte{}, frames[0]...), 0xAB)},
	}
	for _, c := range cases {
		if err := fresh().MergeShardDay(c.day, c.lo, c.hi, c.data); err == nil {
			t.Errorf("%s: malformed frame accepted", c.name)
		}
	}
}

// TestShardObserverRejectsBadRange pins the constructor validation.
func TestShardObserverRejectsBadRange(t *testing.T) {
	cfg := testutil.TinyConfig(5)
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(w.Population.Clients)
	for _, b := range [][2]int{{-1, 2}, {4, 2}, {0, n + 1}} {
		if _, err := NewShardObserver(cfg, w, b[0], b[1]); err == nil {
			t.Errorf("range [%d, %d) accepted", b[0], b[1])
		}
	}
}
