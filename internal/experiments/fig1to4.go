package experiments

import (
	"fmt"
	"math"

	"anycastcdn/internal/bgp"
	"anycastcdn/internal/cdn"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// Figure1 reproduces the diminishing-returns validation of §3.3: the CDF
// over client /24s of the minimum latency observed when measuring to the
// nearest N candidate front-ends (N = 1, 3, 5, 7, 9). The paper uses it to
// argue ten candidates suffice; the lines for N >= 5 should nearly overlap.
func (s *Suite) Figure1() Report {
	const (
		repetitions = 4
		maxClients  = 4000
	)
	w := s.Res.World
	ns := []int{1, 3, 5, 7, 9}
	mins := make(map[int][]units.Millis, len(ns)) // N -> per-client min latency
	clientsToUse := w.Population.Clients
	if len(clientsToUse) > maxClients {
		clientsToUse = clientsToUse[:maxClients]
	}
	for _, c := range clientsToUse {
		rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
		assign := w.Router.Assign(rc, w.Router.BaseIngress(rc))
		// Latency per candidate rank, min over repetitions.
		var perRank []units.Millis
		for rep := 0; rep < repetitions; rep++ {
			qid := xrand.DeriveSeed(s.Res.Cfg.Seed, "fig1", c.ID, uint64(rep))
			_, samples := w.Executor.MeasureCandidates(c, 0, assign, qid)
			if perRank == nil {
				perRank = make([]units.Millis, len(samples))
				for i := range perRank {
					perRank[i] = units.Millis(math.Inf(1))
				}
			}
			for i, ts := range samples {
				if ts.RTTms < perRank[i] {
					perRank[i] = ts.RTTms
				}
			}
		}
		for _, n := range ns {
			k := n
			if k > len(perRank) {
				k = len(perRank)
			}
			best := units.Millis(math.Inf(1))
			for i := 0; i < k; i++ {
				if perRank[i] < best {
					best = perRank[i]
				}
			}
			mins[n] = append(mins[n], best)
		}
	}
	fig := &stats.Figure{
		Title:  "Figure 1: CDF over /24s of min latency to the nearest N front-ends",
		XLabel: "min latency (ms)",
		YLabel: "CDF of /24s",
	}
	grid := stats.LinearGrid[units.Millis](0, 200, 20)
	medianAt := map[int]units.Millis{}
	for _, n := range ns {
		e, err := stats.NewECDF(mins[n])
		if err != nil {
			continue
		}
		fig.Series = append(fig.Series, e.SampleCDF(fmt.Sprintf("%d front-ends", n), grid))
		medianAt[n] = e.Quantile(0.5)
	}
	gain13 := medianAt[1] - medianAt[3]
	gain59 := medianAt[5] - medianAt[9]
	return Report{
		ID:     "fig1",
		Figure: fig,
		Lines: []Headline{
			{
				Name:     "adding front-ends beyond the 5th helps little",
				Paper:    "5th+ lines nearly overlap",
				Measured: fmt.Sprintf("median gain 1→3: %s; 5→9: %s", msStr(gain13), msStr(gain59)),
			},
		},
	}
}

// Figure2 reproduces the deployment-density view of §4: the CDF, weighted
// by client query volume, of the distance from clients to their 1st-4th
// closest front-end. Paper medians: ~280 km (1st), ~700 km (2nd),
// ~1300 km (4th).
func (s *Suite) Figure2() Report {
	w := s.Res.World
	fes := w.Deployment.FrontEnds
	pts := make([]geo.Point, len(fes))
	for i, fe := range fes {
		pts[i] = w.Deployment.Backbone.Site(fe.Site).Metro.Point
	}
	dists := make([][]units.Kilometers, 4) // rank -> per-client distance
	var weights []float64
	for _, c := range w.Population.Clients {
		order := geo.RankByDistance(c.Point, pts)
		for r := 0; r < 4 && r < len(order); r++ {
			dists[r] = append(dists[r], geo.DistanceKm(c.Point, pts[order[r]]))
		}
		weights = append(weights, c.Volume)
	}
	fig := &stats.Figure{
		Title:  "Figure 2: distance from volume-weighted clients to Nth closest front-end",
		XLabel: "distance (km, log)",
		YLabel: "CDF of clients weighted by query volume",
	}
	grid := stats.LogGrid[units.Kilometers](64, 8192, 14)
	var medians [4]units.Kilometers
	for r := 0; r < 4; r++ {
		e, err := stats.NewWeightedECDF(dists[r], weights)
		if err != nil {
			continue
		}
		fig.Series = append(fig.Series, e.SampleCDF(fmt.Sprintf("%s closest", ordinal(r+1)), grid))
		medians[r] = e.Quantile(0.5)
	}
	return Report{
		ID:     "fig2",
		Figure: fig,
		Lines: []Headline{
			{Name: "median distance to 1st closest", Paper: "280 km", Measured: km(medians[0])},
			{Name: "median distance to 2nd closest", Paper: "700 km", Measured: km(medians[1])},
			{Name: "median distance to 4th closest", Paper: "1300 km", Measured: km(medians[3])},
		},
	}
}

func ordinal(n int) string {
	switch n {
	case 1:
		return "1st"
	case 2:
		return "2nd"
	case 3:
		return "3rd"
	default:
		return fmt.Sprintf("%dth", n)
	}
}

// CDNSizeTable reproduces the §4 comparison of public CDN deployment
// sizes, with the four outliers the paper sets aside marked.
func CDNSizeTable() Report {
	cat := cdn.Catalog()
	tb := &stats.Table{
		Title:   "Section 4: CDN deployment size comparison",
		Columns: []string{"cdn", "locations", "anycast", "outlier", "note"},
	}
	minLoc, maxLoc := 1<<30, 0
	for _, c := range cat {
		any, out := "", ""
		if c.Anycast {
			any = "yes"
		}
		if c.Outlier {
			out = "yes"
		} else if c.Name != "bing" {
			if c.Locations < minLoc {
				minLoc = c.Locations
			}
			if c.Locations > maxLoc {
				maxLoc = c.Locations
			}
		}
		tb.Rows = append(tb.Rows, []string{
			c.Name, fmt.Sprintf("%d", c.Locations), any, out, c.Note,
		})
	}
	return Report{
		ID:    "cdn-table",
		Table: tb,
		Lines: []Headline{
			{Name: "non-outlier deployment range", Paper: "17 (CDNify) – 161 (CDNetworks)",
				Measured: fmt.Sprintf("%d – %d", minLoc, maxLoc)},
			{Name: "measured CDN scale", Paper: "a few dozen locations, similar to Level3/MaxCDN",
				Measured: "64 front-end locations (default deployment)"},
		},
	}
}

// Figure3 reproduces the headline anycast-vs-unicast comparison (§5): the
// CCDF over requests of how much slower anycast was than the best of the
// three measured unicast front-ends, split by region (Europe / World /
// United States). Paper: anycast >= 25 ms slower for ~20% of requests,
// >= 100 ms slower for just under 10%.
func (s *Suite) Figure3() Report {
	const maxDays = 4 // "collected over a period of a few days"
	w := s.Res.World
	countryOf := make(map[uint64]string, len(w.Population.Clients))
	for _, c := range w.Population.Clients {
		countryOf[c.ID] = c.Country
	}
	var europe, world, us []units.Millis
	days := len(s.Res.Beacons)
	if days > maxDays {
		days = maxDays
	}
	for day := 0; day < days; day++ {
		for _, m := range s.Res.Beacons[day] {
			p := m.AnycastPenaltyMs()
			world = append(world, p)
			if m.Region == geo.RegionEurope {
				europe = append(europe, p)
			}
			if countryOf[m.ClientID] == "US" {
				us = append(us, p)
			}
		}
	}
	fig := &stats.Figure{
		Title:  "Figure 3: CCDF of requests by anycast latency penalty vs best of 3 unicast",
		XLabel: "anycast - best unicast (ms)",
		YLabel: "CCDF of requests",
	}
	grid := stats.LinearGrid[units.Millis](0, 100, 20)
	var worldAt25, worldAt100 float64
	for _, line := range []struct {
		name string
		data []units.Millis
	}{{"Europe", europe}, {"World", world}, {"United States", us}} {
		e, err := stats.NewECDF(line.data)
		if err != nil {
			continue
		}
		fig.Series = append(fig.Series, e.SampleCCDF(line.name, grid))
		if line.name == "World" {
			worldAt25 = e.CCDF(25)
			worldAt100 = e.CCDF(100)
		}
	}
	return Report{
		ID:     "fig3",
		Figure: fig,
		Lines: []Headline{
			{Name: "requests with anycast >= 25 ms slower", Paper: "~20%", Measured: pct(worldAt25)},
			{Name: "requests with anycast >= 100 ms slower", Paper: "just under 10%", Measured: pct(worldAt100)},
		},
	}
}

// Figure4 reproduces the geographic view of anycast routing (§5): CDFs of
// the distance between clients and their anycast front-end, and of the
// distance *past* the closest front-end, weighted and unweighted. Paper:
// ~55% of clients go to the closest front-end; 75% within ~400 km of
// closest; ~82% of clients (87% of volume) within 2000 km.
func (s *Suite) Figure4() Report {
	agg := newFigure4Agg(s.Res.Cfg, s.Res.World)
	for c := s.Res.Passive.Cursor(); c.Next(); {
		agg.observe(c.Record())
	}
	return agg.report()
}

// figure4Agg accumulates Figure 4's distance samples one passive record at
// a time, so the batch Suite (cursor over the full log) and StreamSuite
// (one day at a time) share the figure's code and produce byte-identical
// reports. It looks only at day 0 with traffic — one day of production
// logs, as in the paper.
type figure4Agg struct {
	w     *sim.World
	geoDB *geo.DB
	pts   []geo.Point
	// Weighted and unweighted builders over the same samples: distance to
	// the serving front-end and distance past the closest one. Client
	// positions come from the geolocation database, as in the paper's
	// pipeline — its footnote notes that a fraction of very long distances
	// may be geolocation error, and the same is true here.
	wToFE, uToFE, wPast, uPast stats.ECDFBuilder[units.Kilometers]
}

func newFigure4Agg(cfg sim.Config, w *sim.World) *figure4Agg {
	fes := w.Deployment.FrontEnds
	pts := make([]geo.Point, len(fes))
	for i, fe := range fes {
		pts[i] = w.Deployment.Backbone.Site(fe.Site).Metro.Point
	}
	return &figure4Agg{
		w:     w,
		geoDB: geo.NewDB(cfg.Seed, cfg.GeoMedianErrKm, cfg.GeoGrossRate, cfg.GeoGrossKm),
		pts:   pts,
	}
}

func (a *figure4Agg) observe(r logs.DayRecord) {
	if r.Day != 0 || r.Queries == 0 {
		return
	}
	c := a.w.Population.Client(r.ClientID)
	loc := a.geoDB.Locate(c.ID, c.Point)
	fePt := a.w.Deployment.Backbone.Site(r.FrontEnd).Metro.Point
	d := geo.DistanceKm(loc, fePt)
	_, closest := geo.NearestIndex(loc, a.pts)
	a.wPast.AddWeighted(d-closest, c.Volume)
	a.uPast.Add(d - closest)
	a.wToFE.AddWeighted(d, c.Volume)
	a.uToFE.Add(d)
}

func (a *figure4Agg) report() Report {
	fig := &stats.Figure{
		Title:  "Figure 4: distance between clients and their anycast front-end",
		XLabel: "distance (km, log)",
		YLabel: "CDF",
	}
	grid := stats.LogGrid[units.Kilometers](64, 8192, 14)
	var lines []Headline
	add := func(name string, b *stats.ECDFBuilder[units.Kilometers]) *stats.ECDF[units.Kilometers] {
		e, err := b.ECDF()
		if err != nil {
			return nil
		}
		fig.Series = append(fig.Series, e.SampleCDF(name, grid))
		return e
	}
	wPast := add("weighted past closest", &a.wPast)
	uPast := add("clients past closest", &a.uPast)
	wTo := add("weighted to front-end", &a.wToFE)
	uTo := add("clients to front-end", &a.uToFE)
	if uPast != nil && uTo != nil && wTo != nil && wPast != nil {
		lines = []Headline{
			{Name: "clients directed to their closest front-end", Paper: "~55%",
				Measured: pct(uPast.P(1))}, // within 1 km of closest == closest
			{Name: "clients within 400 km past closest", Paper: "~75%", Measured: pct(uPast.P(400))},
			{Name: "clients within 1375 km past closest", Paper: "~90%", Measured: pct(uPast.P(1375))},
			{Name: "clients within 2000 km of anycast front-end", Paper: "~82%", Measured: pct(uTo.P(2000))},
			{Name: "query volume within 2000 km of anycast front-end", Paper: "~87%", Measured: pct(wTo.P(2000))},
		}
	}
	return Report{ID: "fig4", Figure: fig, Lines: lines}
}
