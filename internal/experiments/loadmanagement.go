package experiments

import (
	"fmt"

	"anycastcdn/internal/bgp"
	"anycastcdn/internal/faults"
	"anycastcdn/internal/latency"
	"anycastcdn/internal/load"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/units"
)

// LoadArm is one overload policy's outcome under the shared surge
// scenario.
type LoadArm struct {
	Policy load.Policy
	// PeakUtil is the worst (front-end, day) utilization of the run.
	PeakUtil float64
	// PerDayPeak[d] is day d's worst front-end utilization.
	PerDayPeak []float64
	// OverloadSiteDays counts (front-end, day) pairs served above
	// capacity; OverloadMinutes is the same expressed as minutes of
	// overload (1440 per site-day).
	OverloadSiteDays int
	// WithdrawnSiteDays counts (front-end, day) pairs whose route the
	// naive strategy withdrew; PerDayWithdrawn[d] is day d's withdrawn
	// count — the cascade's shape (a rolling failure grows day over day).
	WithdrawnSiteDays int
	PerDayWithdrawn   []int
	// ShedQueries is the volume served away from the anycast front-end;
	// TotalQueries is the run's whole volume.
	ShedQueries  int64
	TotalQueries int64
	// RedirectedClientDays counts client-days whose queries were served
	// off their anycast front-end.
	RedirectedClientDays int
	// DeltaECDF is the latency-delta distribution of redirected
	// client-days (redirected path RTT minus anycast path RTT); nil when
	// nothing was redirected.
	DeltaECDF *stats.ECDF[units.Millis]
}

// OverloadMinutes expresses the arm's overload exposure in minutes.
func (a LoadArm) OverloadMinutes() int { return a.OverloadSiteDays * 24 * 60 }

// ShedFrac is the shed volume as a fraction of total.
func (a LoadArm) ShedFrac() float64 {
	if a.TotalQueries == 0 {
		return 0
	}
	return float64(a.ShedQueries) / float64(a.TotalQueries)
}

// LoadManagementReport compares the three overload policies seeds-aligned
// under one surge scenario: static anycast (the paper's measured
// baseline, blind to load), naive route withdrawal (§2's warning), and
// FastRoute-style layered spillover (the papers' distributed controller).
// All three arms share the seed, the world, the derived capacities and
// the scenario, so every difference is attributable to the policy.
type LoadManagementReport struct {
	Scenario faults.Scenario
	Days     int
	// HighWatermark is the controller's shed threshold — the utilization
	// the FastRoute arm aims to stay under.
	HighWatermark float64
	Static        LoadArm
	Withdraw      LoadArm
	FastRoute     LoadArm
}

// LoadManagement runs the three-policy comparison in batch mode. Any
// LoadManager knobs already set on cfg are kept (the Policy field is
// overridden per arm); cfg.Scenario is overridden by sc.
func LoadManagement(cfg sim.Config, sc faults.Scenario) (*LoadManagementReport, error) {
	rep := newLoadManagementReport(cfg, sc)
	for _, p := range []load.Policy{load.Static, load.Withdraw, load.FastRoute} {
		res, err := sim.Run(armConfig(cfg, sc, p))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s arm: %w", p, err)
		}
		agg := newLoadMgmtAgg(res.World, cfg.Days)
		agg.observeResult(res)
		if err := rep.setArm(p, agg.arm(p)); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// StreamLoadManagement runs the same comparison over streaming
// simulations, retaining only the aggregators' state — the path for
// paper-scale runs. Its report renders byte-identical to
// LoadManagement's (pinned by test): the batch path aggregates the
// materialized Result in the same day-major record order the stream
// delivers.
func StreamLoadManagement(cfg sim.Config, sc faults.Scenario) (*LoadManagementReport, error) {
	rep := newLoadManagementReport(cfg, sc)
	for _, p := range []load.Policy{load.Static, load.Withdraw, load.FastRoute} {
		ac := armConfig(cfg, sc, p)
		w, err := sim.BuildWorld(ac)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s arm: %w", p, err)
		}
		agg := newLoadMgmtAgg(w, cfg.Days)
		if err := sim.StreamWorld(ac, w, agg.Observe); err != nil {
			return nil, fmt.Errorf("experiments: %s arm: %w", p, err)
		}
		if err := rep.setArm(p, agg.arm(p)); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

func newLoadManagementReport(cfg sim.Config, sc faults.Scenario) *LoadManagementReport {
	mc := load.ManagerConfig{}
	if cfg.LoadManager != nil {
		mc = *cfg.LoadManager
	}
	return &LoadManagementReport{
		Scenario:      sc,
		Days:          cfg.Days,
		HighWatermark: mc.WithDefaults().HighWatermark,
	}
}

// armConfig derives one arm's simulation config: shared scenario, shared
// manager knobs, the arm's policy.
func armConfig(cfg sim.Config, sc faults.Scenario, p load.Policy) sim.Config {
	mc := load.ManagerConfig{}
	if cfg.LoadManager != nil {
		mc = *cfg.LoadManager
	}
	mc.Policy = p
	cfg.LoadManager = &mc
	cfg.Scenario = &sc
	return cfg
}

func (r *LoadManagementReport) setArm(p load.Policy, arm LoadArm) error {
	switch p {
	case load.Static:
		r.Static = arm
	case load.Withdraw:
		r.Withdraw = arm
	case load.FastRoute:
		r.FastRoute = arm
	default:
		return fmt.Errorf("experiments: unknown policy %v", p)
	}
	return nil
}

// loadMgmtAgg accumulates one arm's metrics online. Suite-style batch
// aggregation and the streaming Observe drive the same per-record and
// per-day methods in the same order, which is what keeps the two paths'
// float accumulation — and therefore the rendered report — identical.
type loadMgmtAgg struct {
	w               *sim.World
	perDayPeak      []float64
	perDayWithdrawn []int

	overloadSiteDays  int
	withdrawnSiteDays int
	shed              int64
	total             int64
	redirected        int
	deltas            stats.ECDFBuilder[units.Millis]
}

func newLoadMgmtAgg(w *sim.World, days int) *loadMgmtAgg {
	return &loadMgmtAgg{
		w:               w,
		perDayPeak:      make([]float64, days),
		perDayWithdrawn: make([]int, days),
	}
}

// Observe consumes one streamed day (sim.StreamWorld callback shape). It
// copies nothing out of the DayResult.
func (a *loadMgmtAgg) Observe(d sim.DayResult) error {
	for i, r := range d.Passive {
		a.observeRecord(r, d.Assignments[i], d.Day)
	}
	a.observeUtil(d.Day, d.Utilization)
	return nil
}

// observeResult drives the same aggregation over a batch Result in
// day-major order — the order the stream delivers records.
func (a *loadMgmtAgg) observeResult(res *sim.Result) {
	days := res.Cfg.Days
	n := len(res.Assignments)
	for d := 0; d < days; d++ {
		for i := 0; i < n; i++ {
			a.observeRecord(res.Passive.At(i*days+d), res.Assignments[i][d], d)
		}
		a.observeUtil(d, res.Utilization[d])
	}
}

func (a *loadMgmtAgg) observeRecord(r logs.DayRecord, asg bgp.Assignment, day int) {
	if r.Queries == 0 {
		// Zero-query client-days are unobservable in the passive log; the
		// redirection metrics follow the log's observability rule.
		return
	}
	a.total += int64(r.Queries)
	if r.FrontEnd == asg.FrontEnd {
		return
	}
	a.shed += int64(r.Queries)
	a.redirected++
	// Latency cost of the redirection: same ingress and public-Internet
	// leg, but the query is hauled over the backbone to the effective
	// front-end instead of the hot-potato one. DayRTTms is pure and
	// memoized, so sampling it here consumes no shared randomness.
	orig := latency.Path{
		PrefixID:   r.ClientID,
		EntryKey:   uint64(asg.Ingress),
		AirKm:      asg.AirKm,
		BackboneKm: asg.BackboneKm,
	}
	red := orig
	red.BackboneKm = a.w.Deployment.Backbone.IGPDistanceKm(asg.Ingress, r.FrontEnd)
	a.deltas.Add(a.w.Latency.DayRTTms(red, day) - a.w.Latency.DayRTTms(orig, day))
}

func (a *loadMgmtAgg) observeUtil(day int, utils []sim.SiteUtil) {
	peak := 0.0
	withdrawn := 0
	for _, u := range utils {
		util := u.Utilization()
		if util > peak {
			peak = util
		}
		if util > 1 {
			a.overloadSiteDays++
		}
		if u.Withdrawn {
			withdrawn++
		}
	}
	a.perDayPeak[day] = peak
	a.perDayWithdrawn[day] = withdrawn
	a.withdrawnSiteDays += withdrawn
}

func (a *loadMgmtAgg) arm(p load.Policy) LoadArm {
	arm := LoadArm{
		Policy:               p,
		PerDayPeak:           a.perDayPeak,
		PerDayWithdrawn:      a.perDayWithdrawn,
		OverloadSiteDays:     a.overloadSiteDays,
		WithdrawnSiteDays:    a.withdrawnSiteDays,
		ShedQueries:          a.shed,
		TotalQueries:         a.total,
		RedirectedClientDays: a.redirected,
	}
	for _, u := range a.perDayPeak {
		if u > arm.PeakUtil {
			arm.PeakUtil = u
		}
	}
	if ecdf, err := a.deltas.ECDF(); err == nil {
		arm.DeltaECDF = ecdf
	}
	return arm
}

// Arms returns the three arms in report order.
func (r *LoadManagementReport) Arms() []LoadArm {
	return []LoadArm{r.Static, r.Withdraw, r.FastRoute}
}

// Report converts the comparison into the standard experiment report
// shape: a per-arm table, the per-day peak-utilization figure, and
// headline numbers against the papers' claims.
func (r *LoadManagementReport) Report() Report {
	rep := Report{ID: "load-management"}

	tbl := &stats.Table{
		Title:   "overload policies under flash crowd: " + r.Scenario.Summary(),
		Columns: []string{"policy", "peak util", "overload site-days", "overload min", "withdrawn site-days", "shed volume", "redirected", "median Δ", "p95 Δ"},
	}
	for _, arm := range r.Arms() {
		med, p95 := "n/a", "n/a"
		if arm.DeltaECDF != nil {
			med = msStr(arm.DeltaECDF.Quantile(0.5))
			p95 = msStr(arm.DeltaECDF.Quantile(0.95))
		}
		tbl.Rows = append(tbl.Rows, []string{
			arm.Policy.String(),
			fmt.Sprintf("%.2f", arm.PeakUtil),
			fmt.Sprintf("%d", arm.OverloadSiteDays),
			fmt.Sprintf("%d", arm.OverloadMinutes()),
			fmt.Sprintf("%d", arm.WithdrawnSiteDays),
			pct(arm.ShedFrac()),
			fmt.Sprintf("%d", arm.RedirectedClientDays),
			med,
			p95,
		})
	}
	rep.Table = tbl

	fig := &stats.Figure{
		Title:  "peak front-end utilization by day (1.0 = at capacity)",
		XLabel: "day",
		YLabel: "peak utilization",
	}
	for _, arm := range r.Arms() {
		s := stats.Series{Name: arm.Policy.String()}
		for d, u := range arm.PerDayPeak {
			s.Points = append(s.Points, stats.SeriesPoint{X: float64(d), Y: u})
		}
		fig.Series = append(fig.Series, s)
	}
	rep.Figure = fig

	rep.Lines = []Headline{
		{
			Name:     "static anycast is blind to load",
			Paper:    "anycast 'is not aware of the load on servers' (§2)",
			Measured: fmt.Sprintf("peak util %.2f, %d overload site-days", r.Static.PeakUtil, r.Static.OverloadSiteDays),
		},
		{
			Name:     "naive withdrawal cascades",
			Paper:    "withdrawal 'can lead to cascading overloading' (§2)",
			Measured: fmt.Sprintf("%d site-days withdrawn (rolling up to %d sites/day), peak util %.2f",
				r.Withdraw.WithdrawnSiteDays, maxInt(r.Withdraw.PerDayWithdrawn), r.Withdraw.PeakUtil),
		},
		{
			Name:     "FastRoute spillover holds the fleet",
			Paper:    "excess sheds to deeper rings with no central coordinator ([23])",
			Measured: fmt.Sprintf("peak util %.2f (target <= 1.0), shed %s of volume", r.FastRoute.PeakUtil, pct(r.FastRoute.ShedFrac())),
		},
	}
	return rep
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// DeltaCDFFigure returns the FastRoute arm's redirection latency-delta
// CDF, or nil when nothing was redirected.
func (r *LoadManagementReport) DeltaCDFFigure() *stats.Figure {
	if r.FastRoute.DeltaECDF == nil {
		return nil
	}
	e := r.FastRoute.DeltaECDF
	return &stats.Figure{
		Title:  "latency delta of FastRoute-redirected client-days",
		XLabel: "delta ms",
		YLabel: "CDF",
		Series: []stats.Series{e.SampleCDF("P[Δ <= x]", deltaGrid)},
		Notes: []string{fmt.Sprintf("%d redirected client-days; median Δ %s",
			e.N(), msStr(e.Quantile(0.5)))},
	}
}

// Render formats the comparison for terminal output.
func (r *LoadManagementReport) Render() string {
	out := r.Report().Render()
	if fig := r.DeltaCDFFigure(); fig != nil {
		out += fig.Render()
	}
	return out
}
