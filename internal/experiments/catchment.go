package experiments

import (
	"fmt"
	"sort"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/stats"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// Catchments characterizes each front-end's anycast catchment on day 0 of
// the passive logs: how many clients and how much query volume BGP
// delivers to it, and how geographically tight that catchment is. This is
// the operator-facing companion to Figure 4 — the same data viewed from
// the server side — and quantifies the load imbalance §2 says anycast
// cannot control ("anycast is unaware of server load").
func (s *Suite) Catchments(topN int) Report {
	agg := newCatchmentAgg(s.Res.World)
	for c := s.Res.Passive.Cursor(); c.Next(); {
		agg.observe(c.Record())
	}
	return agg.report(topN)
}

// catchmentAgg accumulates per-front-end catchment statistics one passive
// record at a time; Suite and StreamSuite share it.
type catchmentAgg struct {
	w           *sim.World
	perFE       map[topology.SiteID]*catchmentFE
	totalVolume float64
}

type catchmentFE struct {
	clients int
	volume  float64
	dists   []units.Kilometers
}

func newCatchmentAgg(w *sim.World) *catchmentAgg {
	return &catchmentAgg{w: w, perFE: map[topology.SiteID]*catchmentFE{}}
}

func (a *catchmentAgg) observe(r logs.DayRecord) {
	if r.Day != 0 || r.Queries == 0 {
		return
	}
	c := a.w.Population.Client(r.ClientID)
	bb := a.w.Deployment.Backbone
	a.apply(r.FrontEnd, c.Volume, geo.DistanceKm(c.Point, bb.Site(r.FrontEnd).Metro.Point))
}

// apply folds one day-0 record's contribution in. Volumes are arbitrary
// floats, so the per-front-end and total sums are order-sensitive in
// their last bits: the distributed merge ships each shard's (front-end,
// volume, distance) tuples verbatim and replays them here in global
// client order, reproducing the single-process additions exactly rather
// than re-associating partial sums.
func (a *catchmentAgg) apply(feID topology.SiteID, volume float64, dist units.Kilometers) {
	fe := a.perFE[feID]
	if fe == nil {
		fe = &catchmentFE{}
		a.perFE[feID] = fe
	}
	fe.clients++
	fe.volume += volume
	a.totalVolume += volume
	fe.dists = append(fe.dists, dist)
}

func (a *catchmentAgg) report(topN int) Report {
	if topN <= 0 {
		topN = 15
	}
	bb := a.w.Deployment.Backbone
	type row struct {
		fe  topology.SiteID
		agg *catchmentFE
	}
	rows := make([]row, 0, len(a.perFE))
	//replay:commutative rows get a total order immediately below (volume, then site id), so collection order is discarded
	for fe, fa := range a.perFE {
		rows = append(rows, row{fe, fa})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].agg.volume != rows[j].agg.volume {
			return rows[i].agg.volume > rows[j].agg.volume
		}
		return rows[i].fe < rows[j].fe // break volume ties: map order must not reach the output
	})

	tb := &stats.Table{
		Title: "Anycast catchments (day 0): the server-side view of Figure 4",
		Columns: []string{
			"front-end", "clients", "volume share",
			"median client km", "p90 client km",
		},
	}
	for i, r := range rows {
		if i >= topN {
			tb.Notes = append(tb.Notes,
				fmt.Sprintf("%d further front-ends omitted (top %d by volume shown)", len(rows)-topN, topN))
			break
		}
		med, _ := stats.Quantile(r.agg.dists, 0.5)
		p90, _ := stats.Quantile(r.agg.dists, 0.9)
		tb.Rows = append(tb.Rows, []string{
			bb.Site(r.fe).Metro.Name,
			fmt.Sprintf("%d", r.agg.clients),
			pct(r.agg.volume / a.totalVolume),
			fmt.Sprintf("%.0f", med),
			fmt.Sprintf("%.0f", p90),
		})
	}
	// Imbalance headline: top front-end share vs a uniform share.
	lines := []Headline{}
	if len(rows) > 0 && a.totalVolume > 0 {
		topShare := rows[0].agg.volume / a.totalVolume
		uniform := 1 / float64(a.w.Deployment.NumFrontEnds())
		lines = append(lines, Headline{
			Name:     "anycast load imbalance (top front-end vs uniform)",
			Paper:    "anycast 'is unaware of server load' (§2)",
			Measured: fmt.Sprintf("%.1f%% vs uniform %.1f%% (%.1fx)", 100*topShare, 100*uniform, topShare/uniform),
		})
	}
	return Report{ID: "catchments", Table: tb, Lines: lines}
}
