package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ExportCSV writes a report's figure series as a CSV file: the first
// column is x, one column per series. Table reports are written as plain
// CSV rows. It returns the written path.
func ExportCSV(r Report, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.ID+".csv")
	var b strings.Builder
	switch {
	case r.Figure != nil:
		b.WriteString("x")
		for _, s := range r.Figure.Series {
			b.WriteString("," + csvEscape(s.Name))
		}
		b.WriteByte('\n')
		if len(r.Figure.Series) > 0 {
			rows := len(r.Figure.Series[0].Points)
			for i := 0; i < rows; i++ {
				fmt.Fprintf(&b, "%g", r.Figure.Series[0].Points[i].X)
				for _, s := range r.Figure.Series {
					if i < len(s.Points) {
						fmt.Fprintf(&b, ",%g", s.Points[i].Y)
					} else {
						b.WriteString(",")
					}
				}
				b.WriteByte('\n')
			}
		}
	case r.Table != nil:
		for i, c := range r.Table.Columns {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
		for _, row := range r.Table.Rows {
			for i, cell := range row {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(csvEscape(cell))
			}
			b.WriteByte('\n')
		}
	default:
		return "", fmt.Errorf("experiments: report %s has no content", r.ID)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// ExportGnuplot writes a gnuplot script that renders the figure from its
// CSV (as produced by ExportCSV in the same directory). It returns the
// script path. Table reports have nothing to plot and return an error.
func ExportGnuplot(r Report, dir string) (string, error) {
	if r.Figure == nil {
		return "", fmt.Errorf("experiments: report %s is not a figure", r.ID)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.ID+".gp")
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", r.Figure.Title)
	fmt.Fprintf(&b, "set datafile separator ','\n")
	fmt.Fprintf(&b, "set key bottom right\n")
	fmt.Fprintf(&b, "set title %q\n", r.Figure.Title)
	fmt.Fprintf(&b, "set xlabel %q\n", r.Figure.XLabel)
	fmt.Fprintf(&b, "set ylabel %q\n", r.Figure.YLabel)
	fmt.Fprintf(&b, "set yrange [0:1]\n")
	if strings.Contains(r.Figure.XLabel, "log") {
		fmt.Fprintf(&b, "set logscale x 2\n")
	}
	fmt.Fprintf(&b, "set terminal pngcairo size 900,600\n")
	fmt.Fprintf(&b, "set output '%s.png'\n", r.ID)
	b.WriteString("plot ")
	for i, s := range r.Figure.Series {
		if i > 0 {
			b.WriteString(", \\\n     ")
		}
		fmt.Fprintf(&b, "'%s.csv' using 1:%d with linespoints title %q", r.ID, i+2, s.Name)
	}
	b.WriteByte('\n')
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
