package experiments

import (
	"testing"

	"anycastcdn/internal/sim"
)

// TestExperimentReplayIdentical runs the full pipeline — simulation,
// catchment analysis, and the §6 day-over-day prediction figure — twice
// from one seed and requires byte-identical rendered reports. This is the
// end-to-end form of the determinism invariant the analysis suite
// enforces statically: if any bare time.Now() or global math/rand use
// crept into the sim/core/experiments path, this test is designed to
// catch the drift the analyzers missed.
func TestExperimentReplayIdentical(t *testing.T) {
	render := func() (catchment, prediction string) {
		cfg := sim.DefaultConfig(31)
		cfg.Prefixes = 900
		cfg.Days = 8
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSuite(res)
		return s.Catchments(10).Render(), s.Figure9().Render()
	}
	c1, p1 := render()
	c2, p2 := render()
	if c1 != c2 {
		t.Errorf("catchment report differs across same-seed replays:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", c1, c2)
	}
	if p1 != p2 {
		t.Errorf("prediction report differs across same-seed replays:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", p1, p2)
	}
	if c1 == "" || p1 == "" {
		t.Error("empty report; replay comparison is vacuous")
	}
}
