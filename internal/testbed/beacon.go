package testbed

import (
	"context"
	"fmt"
	"net/http"
	"net/netip"
	"time"

	"anycastcdn/internal/dnswire"
	"anycastcdn/internal/topology"
)

// BeaconSample is one timed fetch.
type BeaconSample struct {
	Host    string
	Site    topology.SiteID
	Elapsed time.Duration
}

// BeaconResult is one beacon execution against the testbed.
type BeaconResult struct {
	ClientID uint64
	Anycast  BeaconSample
	Unicast  []BeaconSample
}

// BestUnicast returns the fastest unicast sample, ok=false when none.
func (r BeaconResult) BestUnicast() (BeaconSample, bool) {
	if len(r.Unicast) == 0 {
		return BeaconSample{}, false
	}
	best := r.Unicast[0]
	for _, s := range r.Unicast[1:] {
		if s.Elapsed < best.Elapsed {
			best = s
		}
	}
	return best, true
}

// BeaconClient performs the paper's measurement sequence against a
// testbed: resolve through a caching resolver (with ECS), warm up each
// connection so DNS and TCP setup don't pollute the timing, then time the
// fetches.
type BeaconClient struct {
	tb       *Testbed
	resolver *dnswire.CachingResolver
	http     *http.Client
	// Now is the measurement clock; defaults to time.Now so live runs
	// measure wall time, while tests can inject a fake clock and get
	// deterministic Elapsed values (same pattern as
	// dnswire.CachingResolver.Now).
	Now func() time.Time
}

// NewBeaconClient builds a client against a running testbed.
func NewBeaconClient(tb *Testbed) *BeaconClient {
	return &BeaconClient{
		tb:       tb,
		resolver: dnswire.NewCachingResolver(tb.DNSAddr()),
		http:     &http.Client{Timeout: 10 * time.Second},
		Now:      time.Now,
	}
}

// now returns the injected clock, guarding against a zeroed field.
func (bc *BeaconClient) now() time.Time {
	if bc.Now == nil {
		return time.Now()
	}
	return bc.Now()
}

// Resolver exposes the client's caching resolver (for cache statistics).
func (bc *BeaconClient) Resolver() *dnswire.CachingResolver { return bc.resolver }

// Resolve resolves a testbed hostname as the given client.
func (bc *BeaconClient) Resolve(ctx context.Context, clientID uint64, host string) (netip.Addr, error) {
	src := bc.tb.cfg.ClientAddr(clientID)
	addrs, err := bc.resolver.Lookup(ctx, host, dnswire.TypeA, &src)
	if err != nil {
		return netip.Addr{}, err
	}
	return addrs[0], nil
}

// fetch resolves host, optionally warms up, and times one probe fetch.
func (bc *BeaconClient) fetch(ctx context.Context, clientID uint64, host, mode string, warm bool) (BeaconSample, error) {
	addr, err := bc.Resolve(ctx, clientID, host)
	if err != nil {
		return BeaconSample{}, fmt.Errorf("testbed: resolving %s: %w", host, err)
	}
	site, ok := bc.tb.SiteOfAddr(addr)
	if !ok {
		return BeaconSample{}, fmt.Errorf("testbed: %s resolved to unknown address %v", host, addr)
	}
	base := fmt.Sprintf("http://%s/probe?c=%d&mode=%s", netip.AddrPortFrom(addr, uint16(bc.tb.Port())), clientID, mode)
	if warm {
		// Warm-up request: primes DNS cache and the HTTP connection pool,
		// mirroring §3.2.2's warm-up fetch.
		resp, err := bc.http.Get(fmt.Sprintf("http://%s/healthz", netip.AddrPortFrom(addr, uint16(bc.tb.Port()))))
		if err == nil {
			readAll(resp.Body)
			_ = resp.Body.Close() // warm-up is best-effort; a close error can't affect the measurement
		}
	}
	start := bc.now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base, nil)
	if err != nil {
		return BeaconSample{}, err
	}
	resp, err := bc.http.Do(req)
	if err != nil {
		return BeaconSample{}, fmt.Errorf("testbed: fetching %s: %w", host, err)
	}
	readAll(resp.Body)
	elapsed := bc.now().Sub(start)
	if err := resp.Body.Close(); err != nil {
		return BeaconSample{}, fmt.Errorf("testbed: closing %s response: %w", host, err)
	}
	return BeaconSample{Host: host, Site: site, Elapsed: elapsed}, nil
}

// RunBeaconUnique executes one beacon using a globally unique hostname
// per fetch ("<qid>.anycast.cdn.test"), the paper's §3.2.2 technique:
// unique names defeat resolver caching so every execution triggers a
// fresh authoritative decision, and the query ID joins the client-side
// HTTP result with the server-side DNS log.
func (bc *BeaconClient) RunBeaconUnique(ctx context.Context, clientID, queryID uint64, unicastNames []string) (BeaconResult, error) {
	res := BeaconResult{ClientID: clientID}
	host := fmt.Sprintf("q%d.anycast.%s", queryID, Domain)
	s, err := bc.fetch(ctx, clientID, host, "anycast", true)
	if err != nil {
		return res, err
	}
	res.Anycast = s
	for i, name := range unicastNames {
		host := fmt.Sprintf("q%d-%d.fe-%s.%s", queryID, i, name, Domain)
		s, err := bc.fetch(ctx, clientID, host, "unicast", true)
		if err != nil {
			return res, err
		}
		res.Unicast = append(res.Unicast, s)
	}
	return res, nil
}

// RunBeacon executes one beacon for a client: the anycast fetch plus one
// fetch per named unicast front-end (fe-<name> labels).
func (bc *BeaconClient) RunBeacon(ctx context.Context, clientID uint64, unicastNames []string) (BeaconResult, error) {
	res := BeaconResult{ClientID: clientID}
	s, err := bc.fetch(ctx, clientID, "anycast."+Domain, "anycast", true)
	if err != nil {
		return res, err
	}
	res.Anycast = s
	for _, name := range unicastNames {
		s, err := bc.fetch(ctx, clientID, "fe-"+name+"."+Domain, "unicast", true)
		if err != nil {
			return res, err
		}
		res.Unicast = append(res.Unicast, s)
	}
	return res, nil
}

// FetchWWW fetches the predictor-driven hostname and reports which
// front-end served it — the end-to-end form of §6's hybrid redirection.
func (bc *BeaconClient) FetchWWW(ctx context.Context, clientID uint64) (BeaconSample, error) {
	mode := "unicast"
	// The prediction may be anycast; mode only affects injected latency
	// lookup, so derive it from the decision.
	if bc.tb.cfg.PredictFor != nil {
		if _, ok := bc.tb.cfg.PredictFor(clientID); !ok {
			mode = "anycast"
		}
	}
	return bc.fetch(ctx, clientID, "www."+Domain, mode, true)
}
