package testbed

import (
	"context"
	"fmt"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"anycastcdn/internal/dnswire"
	"anycastcdn/internal/topology"
)

// testConfig builds a 3-front-end testbed where client 1 is well routed
// (anycast = its nearest FE 0) and client 2 is misrouted (anycast = FE 2,
// far), with prediction redirecting client 2 to FE 0.
func testConfig() Config {
	base := 2 * time.Millisecond
	rtts := map[[2]uint64]time.Duration{
		{1, 0}: base, {1, 1}: 4 * base, {1, 2}: 8 * base,
		{2, 0}: base, {2, 1}: 4 * base, {2, 2}: 10 * base,
	}
	anycast := map[uint64]topology.SiteID{1: 0, 2: 2}
	return Config{
		FrontEnds: []FrontEndSpec{
			{Site: 0, Name: "newyork"},
			{Site: 1, Name: "chicago"},
			{Site: 2, Name: "losangeles"},
		},
		AnycastFor: func(c uint64) topology.SiteID { return anycast[c] },
		PredictFor: func(c uint64) (topology.SiteID, bool) {
			if c == 2 {
				return 0, true
			}
			return 0, false
		},
		RTT: func(c uint64, fe topology.SiteID, anycastPath bool) time.Duration {
			return rtts[[2]uint64{c, uint64(fe)}]
		},
		ClientAddr: func(c uint64) netip.Addr {
			return netip.AddrFrom4([4]byte{10, 0, byte(c), 7})
		},
		ClientOf: func(p netip.Addr) (uint64, bool) {
			a4 := p.As4()
			if a4[0] != 10 || a4[1] != 0 {
				return 0, false
			}
			return uint64(a4[2]), true
		},
		TTL: 30,
	}
}

func startTB(t *testing.T) *Testbed {
	t.Helper()
	tb, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := tb.Close(); err != nil {
			t.Errorf("closing testbed: %v", err)
		}
	})
	return tb
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("empty config should fail")
	}
	cfg := testConfig()
	cfg.RTT = nil
	if _, err := Start(cfg); err == nil {
		t.Fatal("missing RTT should fail")
	}
}

func TestFrontEndsServeHTTP(t *testing.T) {
	tb := startTB(t)
	for _, fe := range testConfig().FrontEnds {
		addr, ok := tb.FrontEndAddr(fe.Site)
		if !ok {
			t.Fatalf("no address for site %d", fe.Site)
		}
		url := fmt.Sprintf("http://%s/healthz", netip.AddrPortFrom(addr, uint16(tb.Port())))
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("front-end %s unreachable: %v", fe.Name, err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("front-end %s status %d", fe.Name, resp.StatusCode)
		}
	}
}

func TestDNSAnycastPerClient(t *testing.T) {
	tb := startTB(t)
	bc := NewBeaconClient(tb)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a1, err := bc.Resolve(ctx, 1, "anycast."+Domain)
	if err != nil {
		t.Fatal(err)
	}
	site1, _ := tb.SiteOfAddr(a1)
	if site1 != 0 {
		t.Fatalf("client 1 anycast -> site %d, want 0", site1)
	}
	// Distinct clients must flush cache or use distinct names; the cache
	// key is the hostname, so a second client through the SAME resolver
	// would get the cached answer — exactly the LDNS problem of §2.
	bc2 := NewBeaconClient(tb)
	a2, err := bc2.Resolve(ctx, 2, "anycast."+Domain)
	if err != nil {
		t.Fatal(err)
	}
	site2, _ := tb.SiteOfAddr(a2)
	if site2 != 2 {
		t.Fatalf("client 2 anycast -> site %d, want 2", site2)
	}
}

func TestDNSLDNSGranularityProblem(t *testing.T) {
	// Two clients sharing one caching resolver: the second gets the first
	// client's cached answer, demonstrating why LDNS-grained redirection
	// misroutes clients of shared resolvers (§2).
	tb := startTB(t)
	bc := NewBeaconClient(tb)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a1, err := bc.Resolve(ctx, 1, "anycast."+Domain)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := bc.Resolve(ctx, 2, "anycast."+Domain)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("shared resolver should serve the cached answer: %v vs %v", a1, a2)
	}
	if bc.Resolver().Stats().CacheHits == 0 {
		t.Fatal("expected a cache hit")
	}
}

func TestDNSNamedFrontEnds(t *testing.T) {
	tb := startTB(t)
	bc := NewBeaconClient(tb)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, name := range []string{"newyork", "chicago", "losangeles"} {
		addr, err := bc.Resolve(ctx, 1, "fe-"+name+"."+Domain)
		if err != nil {
			t.Fatal(err)
		}
		site, ok := tb.SiteOfAddr(addr)
		if !ok || site != topology.SiteID(i) {
			t.Fatalf("fe-%s -> site %d, want %d", name, site, i)
		}
	}
}

func TestDNSUnknownName(t *testing.T) {
	tb := startTB(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	q := dnswire.NewQuery(1, "nope."+Domain, dnswire.TypeA)
	resp, err := dnswire.Exchange(ctx, tb.DNSAddr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %d, want NXDOMAIN", resp.RCode)
	}
	// Out-of-zone names too.
	q2 := dnswire.NewQuery(2, "example.org", dnswire.TypeA)
	resp2, err := dnswire.Exchange(ctx, tb.DNSAddr(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("out-of-zone rcode = %d", resp2.RCode)
	}
}

func TestBeaconMeasuresLatencyOrdering(t *testing.T) {
	tb := startTB(t)
	bc := NewBeaconClient(tb)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := bc.RunBeacon(ctx, 1, []string{"newyork", "losangeles"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unicast) != 2 {
		t.Fatalf("unicast samples = %d", len(res.Unicast))
	}
	// Client 1: newyork (2ms) must beat losangeles (16ms) despite real
	// network noise on loopback.
	var ny, la BeaconSample
	for _, s := range res.Unicast {
		switch s.Site {
		case 0:
			ny = s
		case 2:
			la = s
		}
	}
	if ny.Elapsed >= la.Elapsed {
		t.Fatalf("newyork (%v) should be faster than losangeles (%v)", ny.Elapsed, la.Elapsed)
	}
	// Anycast for client 1 lands on site 0.
	if res.Anycast.Site != 0 {
		t.Fatalf("anycast site = %d", res.Anycast.Site)
	}
	best, ok := res.BestUnicast()
	if !ok || best.Site != 0 {
		t.Fatalf("best unicast = %+v", best)
	}
}

func TestPredictionRedirectsMisroutedClient(t *testing.T) {
	tb := startTB(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Client 2 is misrouted by anycast (site 2, 20ms) but the predictor
	// sends www traffic to site 0 (2ms).
	bc := NewBeaconClient(tb)
	www, err := bc.FetchWWW(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if www.Site != 0 {
		t.Fatalf("www for client 2 served by site %d, want 0 (predicted)", www.Site)
	}
	// Client 1 stays on anycast.
	bc1 := NewBeaconClient(tb)
	www1, err := bc1.FetchWWW(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if www1.Site != 0 {
		t.Fatalf("www for client 1 served by site %d, want anycast site 0", www1.Site)
	}
}

func TestUniqueHostnamesDefeatSharedResolverCache(t *testing.T) {
	// With unique per-query hostnames (§3.2.2), two clients behind ONE
	// shared resolver still get their own anycast answers — the fix for
	// the LDNS-granularity problem that plain names suffer.
	tb := startTB(t)
	bc := NewBeaconClient(tb)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r1, err := bc.RunBeaconUnique(ctx, 1, 1001, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := bc.RunBeaconUnique(ctx, 2, 1002, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Anycast.Site != 0 {
		t.Fatalf("client 1 unique-name anycast -> site %d, want 0", r1.Anycast.Site)
	}
	if r2.Anycast.Site != 2 {
		t.Fatalf("client 2 unique-name anycast -> site %d, want 2 (cache must not leak)", r2.Anycast.Site)
	}
}

func TestRunBeaconUniqueWithUnicast(t *testing.T) {
	tb := startTB(t)
	bc := NewBeaconClient(tb)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := bc.RunBeaconUnique(ctx, 1, 7, []string{"newyork", "losangeles"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unicast) != 2 {
		t.Fatalf("unicast samples = %d", len(res.Unicast))
	}
	if res.Unicast[0].Site != 0 || res.Unicast[1].Site != 2 {
		t.Fatalf("unique unicast names resolved to sites %d,%d", res.Unicast[0].Site, res.Unicast[1].Site)
	}
}

func TestBeaconResultEmpty(t *testing.T) {
	var r BeaconResult
	if _, ok := r.BestUnicast(); ok {
		t.Fatal("empty result should have no best unicast")
	}
}

func TestCloseIdempotent(t *testing.T) {
	tb, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
}

func TestDNSWithoutECSFallsBackToDefault(t *testing.T) {
	// A query with no client-subnet option: the authoritative server has
	// only the resolver to go on and returns the default site — the
	// LDNS-granularity limitation of §2 in its purest form.
	tb := startTB(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, name := range []string{"anycast." + Domain, "www." + Domain} {
		q := dnswire.NewQuery(1, name, dnswire.TypeA)
		resp, err := dnswire.Exchange(ctx, tb.DNSAddr(), q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 {
			t.Fatalf("%s: %+v", name, resp)
		}
		addr, _ := resp.Answers[0].Addr()
		site, ok := tb.SiteOfAddr(addr)
		if !ok || site != 0 {
			t.Fatalf("%s resolved to site %d, want default site 0", name, site)
		}
	}
}

func TestDNSAAAAQueriesRejected(t *testing.T) {
	tb := startTB(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	q := dnswire.NewQuery(2, "anycast."+Domain, dnswire.TypeAAAA)
	resp, err := dnswire.Exchange(ctx, tb.DNSAddr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("AAAA rcode = %d, want NXDOMAIN", resp.RCode)
	}
}

func TestFrontEndAddrLookups(t *testing.T) {
	tb := startTB(t)
	if _, ok := tb.FrontEndAddr(99); ok {
		t.Fatal("unknown site should have no address")
	}
	if _, ok := tb.SiteOfAddr(netip.MustParseAddr("9.9.9.9")); ok {
		t.Fatal("unknown address should have no site")
	}
	addr, ok := tb.FrontEndAddr(1)
	if !ok {
		t.Fatal("site 1 missing")
	}
	site, ok := tb.SiteOfAddr(addr)
	if !ok || site != 1 {
		t.Fatalf("round trip: %d %v", site, ok)
	}
}

func TestProbeRejectsMissingClientID(t *testing.T) {
	tb := startTB(t)
	addr, _ := tb.FrontEndAddr(0)
	resp, err := http.Get(fmt.Sprintf("http://%s/probe", netip.AddrPortFrom(addr, uint16(tb.Port()))))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestBeaconClockInjection pins the injected-clock refactor: with a fake
// clock advancing 1ms per reading, a beacon fetch reads it exactly twice
// (start, end) and reports exactly 1ms, independent of real scheduling.
func TestBeaconClockInjection(t *testing.T) {
	tb := startTB(t)
	bc := NewBeaconClient(tb)
	var ticks int64
	bc.Now = func() time.Time {
		ticks++
		return time.Unix(0, ticks*int64(time.Millisecond))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := bc.RunBeacon(ctx, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Anycast.Elapsed != time.Millisecond {
		t.Fatalf("Elapsed = %v with fake clock, want exactly 1ms", res.Anycast.Elapsed)
	}
}
