// Package testbed runs a live miniature of the paper's system on the
// loopback interface: real HTTP front-ends (each on its own 127.0.0.0/8
// address, with injected path latency), a real authoritative DNS server
// speaking internal/dnswire with EDNS Client Subnet, and a beacon client
// that performs the §3.2.2 measurement sequence — warm-up request, cached
// DNS, four timed fetches.
//
// "Anycast" on loopback is emulated at the DNS layer: the authoritative
// server answers anycast.cdn.test with the address of whichever front-end
// the simulated BGP would deliver that client to, and www.cdn.test with
// the hybrid predictor's choice (anycast unless a better unicast front-end
// is predicted), which is exactly the deployment §6 proposes.
package testbed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"anycastcdn/internal/dnswire"
	"anycastcdn/internal/topology"
)

// Domain is the testbed's DNS zone.
const Domain = "cdn.test"

// FrontEndSpec declares one front-end of the testbed.
type FrontEndSpec struct {
	Site topology.SiteID
	Name string // metro name; becomes fe-<name>.cdn.test
}

// Config wires the testbed to a routing/latency model.
type Config struct {
	FrontEnds []FrontEndSpec
	// AnycastFor returns the front-end anycast routing delivers a client
	// to.
	AnycastFor func(clientID uint64) topology.SiteID
	// PredictFor returns the redirection decision for a client: the
	// chosen front-end, or ok=false to stay on anycast.
	PredictFor func(clientID uint64) (topology.SiteID, bool)
	// RTT returns the simulated round-trip time between a client and a
	// front-end (anycast=true for the anycast path).
	RTT func(clientID uint64, fe topology.SiteID, anycast bool) time.Duration
	// ClientAddr maps a client to its source address (used for ECS).
	ClientAddr func(clientID uint64) netip.Addr
	// ClientOf inverts ClientAddr's /24 for the DNS handler.
	ClientOf func(prefix netip.Addr) (uint64, bool)
	// TTL is the answer TTL in seconds (short, per §2's small-TTL
	// redirection).
	TTL uint32
}

// Testbed is a running loopback CDN. mu guards the closed flag, making
// Close idempotent; everything else is set once by Start and read-only
// while serving. mu is a leaf lock: Close releases it before shutting
// down the servers it owns, so it is never held while acquiring their
// mutexes and imposes no acquisition order (verified by the lockorder
// analyzer's held-lock dataflow).
type Testbed struct {
	cfg Config
	dns *dnswire.Server

	port    int
	addrs   map[topology.SiteID]netip.Addr
	names   map[string]topology.SiteID // fe-<name> -> site
	servers []*http.Server
	lns     []net.Listener
	serving sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Start brings up the front-ends and the DNS server.
func Start(cfg Config) (*Testbed, error) {
	if len(cfg.FrontEnds) == 0 {
		return nil, errors.New("testbed: no front-ends")
	}
	if cfg.AnycastFor == nil || cfg.RTT == nil || cfg.ClientAddr == nil || cfg.ClientOf == nil {
		return nil, errors.New("testbed: incomplete config")
	}
	if cfg.TTL == 0 {
		cfg.TTL = 15
	}
	tb := &Testbed{
		cfg:   cfg,
		addrs: map[topology.SiteID]netip.Addr{},
		names: map[string]topology.SiteID{},
	}
	if err := tb.startFrontEnds(); err != nil {
		_ = tb.Close() // best-effort cleanup; the start error is what matters
		return nil, err
	}
	srv, err := dnswire.NewServer("127.0.0.1:0", dnswire.HandlerFunc(tb.handleDNS))
	if err != nil {
		_ = tb.Close()
		return nil, err
	}
	tb.dns = srv
	return tb, nil
}

// startFrontEnds binds each front-end to its own loopback address on one
// shared port (port spaces are per-address on loopback).
func (tb *Testbed) startFrontEnds() error {
	const maxAttempts = 5
	var lastErr error
attempt:
	for try := 0; try < maxAttempts; try++ {
		// Bind the first front-end on an ephemeral port, then reuse that
		// port number on the remaining loopback aliases.
		first, err := net.Listen("tcp", feLoopback(0).String()+":0")
		if err != nil {
			return fmt.Errorf("testbed: listen: %w", err)
		}
		port := first.Addr().(*net.TCPAddr).Port
		lns := []net.Listener{first}
		for i := 1; i < len(tb.cfg.FrontEnds); i++ {
			ln, err := net.Listen("tcp", fmt.Sprintf("%s:%d", feLoopback(i), port))
			if err != nil {
				for _, l := range lns {
					_ = l.Close() // unwinding a failed bind attempt
				}
				lastErr = err
				continue attempt
			}
			lns = append(lns, ln)
		}
		tb.port = port
		tb.lns = lns
		for i, fe := range tb.cfg.FrontEnds {
			addr := feLoopback(i)
			tb.addrs[fe.Site] = addr
			tb.names["fe-"+fe.Name] = fe.Site
			srv := &http.Server{Handler: tb.frontEndHandler(fe.Site)}
			tb.servers = append(tb.servers, srv)
			ln := lns[i]
			tb.serving.Add(1)
			go func() {
				defer tb.serving.Done()
				// Serve returns ErrServerClosed after Shutdown; nothing to handle.
				_ = srv.Serve(ln)
			}()
		}
		return nil
	}
	return fmt.Errorf("testbed: could not bind front-end listeners: %w", lastErr)
}

// feLoopback returns the loopback alias of front-end i.
func feLoopback(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{127, 83, byte(1 + i/200), byte(10 + i%200)})
}

// Port returns the shared front-end HTTP port.
func (tb *Testbed) Port() int { return tb.port }

// DNSAddr returns the authoritative server's UDP address.
func (tb *Testbed) DNSAddr() string { return tb.dns.Addr() }

// FrontEndAddr returns the loopback address of a front-end site.
func (tb *Testbed) FrontEndAddr(site topology.SiteID) (netip.Addr, bool) {
	a, ok := tb.addrs[site]
	return a, ok
}

// SiteOfAddr returns the front-end site listening on addr.
func (tb *Testbed) SiteOfAddr(addr netip.Addr) (topology.SiteID, bool) {
	for site, a := range tb.addrs {
		if a == addr {
			return site, true
		}
	}
	return 0, false
}

// Close shuts everything down.
func (tb *Testbed) Close() error {
	tb.mu.Lock()
	if tb.closed {
		tb.mu.Unlock()
		return nil
	}
	tb.closed = true
	tb.mu.Unlock()
	var first error
	if tb.dns != nil {
		first = tb.dns.Close()
	}
	for _, s := range tb.servers {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if err := s.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		cancel()
	}
	for _, ln := range tb.lns {
		// Shutdown above already closed listeners handed to a server; this
		// catches listeners bound but never served, where double-close
		// errors are expected and meaningless.
		_ = ln.Close()
	}
	tb.serving.Wait()
	return first
}

// frontEndHandler serves beacon probes with injected latency. The probe
// URL is /probe?c=<clientID>&mode=anycast|unicast; the handler sleeps the
// simulated RTT before answering, so a client-side elapsed-time
// measurement observes it.
func (tb *Testbed) frontEndHandler(site topology.SiteID) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/probe", func(w http.ResponseWriter, r *http.Request) {
		clientID, err := strconv.ParseUint(r.URL.Query().Get("c"), 10, 64)
		if err != nil {
			http.Error(w, "missing client id", http.StatusBadRequest)
			return
		}
		anycast := r.URL.Query().Get("mode") == "anycast"
		select {
		case <-time.After(tb.cfg.RTT(clientID, site, anycast)):
		case <-r.Context().Done():
			return
		}
		w.Header().Set("X-Front-End", fmt.Sprintf("%d", site))
		fmt.Fprintf(w, "ok fe=%d client=%d\n", site, clientID)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok fe=%d\n", site)
	})
	return mux
}

// handleDNS answers the testbed zone.
func (tb *Testbed) handleDNS(q *dnswire.Message, _ netip.AddrPort) *dnswire.Message {
	resp := q.Reply()
	qu := q.Questions[0]
	name := strings.ToLower(strings.TrimSuffix(qu.Name, "."))
	if qu.Type != dnswire.TypeA || !strings.HasSuffix(name, "."+Domain) {
		resp.RCode = dnswire.RCodeNXDomain
		return resp
	}
	label := strings.TrimSuffix(name, "."+Domain)
	// Beacon hostnames carry a unique id prefix ("<uid>.anycast"); strip
	// it so cached warm-ups and measurements resolve alike.
	if i := strings.LastIndexByte(label, '.'); i >= 0 {
		label = label[i+1:]
	}
	site, ok := tb.resolveLabel(label, q)
	if !ok {
		resp.RCode = dnswire.RCodeNXDomain
		return resp
	}
	addr, ok := tb.addrs[site]
	if !ok {
		resp.RCode = dnswire.RCodeServFail
		return resp
	}
	resp.Answers = append(resp.Answers, dnswire.ARecord(qu.Name, tb.cfg.TTL, addr))
	return resp
}

// resolveLabel maps a service label to a front-end site.
func (tb *Testbed) resolveLabel(label string, q *dnswire.Message) (topology.SiteID, bool) {
	if site, ok := tb.names[label]; ok {
		return site, true
	}
	clientID, haveClient := tb.clientFromECS(q)
	switch label {
	case "anycast":
		if !haveClient {
			// Without ECS the best the server can do is a default site —
			// the first front-end (the LDNS-granularity problem of §2).
			return tb.cfg.FrontEnds[0].Site, true
		}
		return tb.cfg.AnycastFor(clientID), true
	case "www":
		if haveClient && tb.cfg.PredictFor != nil {
			if fe, ok := tb.cfg.PredictFor(clientID); ok {
				return fe, true
			}
		}
		if !haveClient {
			return tb.cfg.FrontEnds[0].Site, true
		}
		return tb.cfg.AnycastFor(clientID), true
	}
	return 0, false
}

func (tb *Testbed) clientFromECS(q *dnswire.Message) (uint64, bool) {
	if q.ClientSubnet == nil {
		return 0, false
	}
	return tb.cfg.ClientOf(q.ClientSubnet.Addr)
}

// readAll drains a response body; kept tiny so callers stay tidy.
func readAll(r io.Reader) { _, _ = io.Copy(io.Discard, r) }
