package units

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func TestFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, 25, 483.5, -37.25, math.Inf(1)} {
		if got := Millis(v).Float(); got != v {
			t.Errorf("Millis(%v).Float() = %v", v, got)
		}
		if got := Kilometers(v).Float(); got != v {
			t.Errorf("Kilometers(%v).Float() = %v", v, got)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	cases := []struct {
		ms Millis
		d  time.Duration
	}{
		{0, 0},
		{1, time.Millisecond},
		{25, 25 * time.Millisecond},
		{0.5, 500 * time.Microsecond},
		{1500, 1500 * time.Millisecond},
	}
	for _, c := range cases {
		if got := c.ms.Duration(); got != c.d {
			t.Errorf("Millis(%v).Duration() = %v, want %v", c.ms, got, c.d)
		}
		if got := MillisOf(c.d); got != c.ms {
			t.Errorf("MillisOf(%v) = %v, want %v", c.d, got, c.ms)
		}
	}
}

// TestFormattingMatchesFloat64 pins the replay-identity contract: a
// unit-typed value must render byte-identically to the float64 it wraps
// under every verb the repo's render paths use. This fails if anyone
// adds a String() method to Millis or Kilometers.
func TestFormattingMatchesFloat64(t *testing.T) {
	verbs := []string{"%.0f", "%.1f", "%.4f", "%g", "%14.4g", "%v", "%8.0f"}
	values := []float64{0, 25, 483.25, 1e18, -0.5, math.Inf(1)}
	for _, verb := range verbs {
		for _, v := range values {
			want := fmt.Sprintf(verb, v)
			if got := fmt.Sprintf(verb, Millis(v)); got != want {
				t.Errorf("Sprintf(%q, Millis(%v)) = %q, want %q", verb, v, got, want)
			}
			if got := fmt.Sprintf(verb, Kilometers(v)); got != want {
				t.Errorf("Sprintf(%q, Kilometers(%v)) = %q, want %q", verb, v, got, want)
			}
		}
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	in := []Millis{1, 2.5, 483}
	raw := Floats(in)
	if len(raw) != len(in) {
		t.Fatalf("Floats length %d, want %d", len(raw), len(in))
	}
	for i := range in {
		if raw[i] != float64(in[i]) {
			t.Errorf("Floats[%d] = %v, want %v", i, raw[i], float64(in[i]))
		}
	}
	back := FromFloats[Millis](raw)
	for i := range in {
		if back[i] != in[i] {
			t.Errorf("FromFloats[%d] = %v, want %v", i, back[i], in[i])
		}
	}
	if got := Floats([]Kilometers(nil)); len(got) != 0 {
		t.Errorf("Floats(nil) length %d, want 0", len(got))
	}
}
