// Package units defines the two physical dimensions the reproduction
// measures everything in: latency in milliseconds and distance in
// kilometers. Both are defined types over float64, so a km value can no
// longer flow silently into a ms comparison — mixing them is a compile
// error, and the unitsafety analyzer (internal/analysis) additionally
// rejects explicit cross-unit conversions that bypass Float().
//
// The types deliberately carry no String method: every render path in
// the repo formats with explicit float verbs (%.0f, %.1f, %g), and a
// Stringer would change %v output and break replay identity.
package units

import "time"

// Millis is a latency or latency difference in milliseconds.
type Millis float64

// Kilometers is a great-circle or backbone distance in kilometers.
type Kilometers float64

// Float returns the raw float64 value. Use it at arithmetic boundaries
// that genuinely leave the dimension (scaling by a dimensionless factor,
// dividing by a rate) — it is the one sanctioned escape hatch, and the
// unitsafety analyzer treats any other cross-unit route as a violation.
func (m Millis) Float() float64 { return float64(m) }

// Float returns the raw float64 value.
func (k Kilometers) Float() float64 { return float64(k) }

// Duration converts to a time.Duration with nanosecond precision.
func (m Millis) Duration() time.Duration {
	return time.Duration(m.Float() * float64(time.Millisecond))
}

// MillisOf converts a time.Duration to Millis.
func MillisOf(d time.Duration) Millis {
	return Millis(float64(d) / float64(time.Millisecond))
}

// Floats unwraps a slice of unit-typed values to bare float64, e.g. for
// CSV export. The stats package is generic over ~float64, so quantiles
// and CDFs do not need this.
func Floats[T ~float64](xs []T) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// FromFloats wraps a bare float64 slice in a unit type, e.g. when
// ingesting external measurements that are known to be in that unit.
func FromFloats[T ~float64](xs []float64) []T {
	out := make([]T, len(xs))
	for i, x := range xs {
		out[i] = T(x)
	}
	return out
}
