// Package xrand provides deterministic, hash-derived random substreams.
//
// The simulator needs randomness that is (a) reproducible from a single
// seed and (b) stable per entity: the latency noise a client prefix sees on
// day 12 must not depend on how many other prefixes were simulated before
// it. xrand derives independent streams by hashing a root seed together
// with arbitrary labels and integers (e.g. "latency", prefixID, day) using
// SplitMix64-style mixing, and seeds a small PCG-like generator from the
// digest.
package xrand

import (
	"math"
	"math/bits"
)

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded with 0. Stream is not safe for concurrent use; derive one
// stream per goroutine with Derive.
type Stream struct {
	state uint64
	inc   uint64
}

// New returns a stream seeded from seed.
func New(seed uint64) *Stream {
	s := &Stream{}
	s.Reseed(seed)
	return s
}

// Reseed reinitializes s in place to the exact state New(seed) produces.
// It lets hot paths keep one stack-allocated Stream value and re-point it
// at successive substreams instead of heap-allocating a *Stream per
// sample: `var s Stream; s.Reseed(seed)` is equivalent to `s := *New(seed)`.
func (s *Stream) Reseed(seed uint64) {
	s.state = mix64(seed)
	s.inc = mix64(seed^0x9e3779b97f4a7c15) | 1
	s.Uint64() // warm up so similar seeds diverge immediately
}

// mix64 is the SplitMix64 finalizer: a bijective mixing of 64-bit values
// with good avalanche behaviour.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashLabel folds a string label into a 64-bit value.
func hashLabel(label string) uint64 {
	// FNV-1a, then mixed. FNV alone has weak high bits.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return mix64(h)
}

// DeriveSeed combines a root seed, a label, and any number of integer keys
// into a new seed. It is the basis for per-entity substreams.
func DeriveSeed(root uint64, label string, keys ...uint64) uint64 {
	h := mix64(root ^ hashLabel(label))
	for _, k := range keys {
		h = mix64(h ^ mix64(k))
	}
	return h
}

// Label is a precomputed label hash for the non-variadic DeriveSeed fast
// paths. Hashing a label string costs a byte loop per call; hot paths that
// derive millions of substreams per run hash each label once at package
// init (`var labelJitter = xrand.NewLabel("jitter")`) and use the L-suffix
// derivations below, which are guaranteed to produce the same seeds as
// DeriveSeed/Substream with the equivalent string label.
type Label uint64

// NewLabel precomputes the hash of a label string.
func NewLabel(label string) Label { return Label(hashLabel(label)) }

// Mix64 exposes the SplitMix64 finalizer used throughout seed derivation;
// callers use it to build cheap deterministic hashes (e.g. cache shard
// selection) that must not depend on process-randomized map hashing.
func Mix64(x uint64) uint64 { return mix64(x) }

// DeriveSeedL is the zero-key fast path of DeriveSeed: identical output,
// no variadic slice, label hashed ahead of time.
func DeriveSeedL(root uint64, label Label) uint64 {
	return mix64(root ^ uint64(label))
}

// DeriveSeedL1 derives a seed from one key without variadic overhead.
func DeriveSeedL1(root uint64, label Label, k1 uint64) uint64 {
	return mix64(mix64(root^uint64(label)) ^ mix64(k1))
}

// DeriveSeedL2 derives a seed from two keys without variadic overhead.
func DeriveSeedL2(root uint64, label Label, k1, k2 uint64) uint64 {
	h := mix64(mix64(root^uint64(label)) ^ mix64(k1))
	return mix64(h ^ mix64(k2))
}

// DeriveSeedL3 derives a seed from three keys without variadic overhead.
func DeriveSeedL3(root uint64, label Label, k1, k2, k3 uint64) uint64 {
	h := mix64(mix64(root^uint64(label)) ^ mix64(k1))
	h = mix64(h ^ mix64(k2))
	return mix64(h ^ mix64(k3))
}

// DeriveSeedL4 derives a seed from four keys without variadic overhead.
func DeriveSeedL4(root uint64, label Label, k1, k2, k3, k4 uint64) uint64 {
	h := mix64(mix64(root^uint64(label)) ^ mix64(k1))
	h = mix64(h ^ mix64(k2))
	h = mix64(h ^ mix64(k3))
	return mix64(h ^ mix64(k4))
}

// Derive returns a new independent stream identified by label and keys.
// Streams derived with the same arguments from equal parents are identical.
func (s *Stream) Derive(label string, keys ...uint64) *Stream {
	return New(DeriveSeed(s.inc^s.state, label, keys...))
}

// Substream returns a stream for (label, keys) derived from a root seed
// without constructing an intermediate stream.
func Substream(root uint64, label string, keys ...uint64) *Stream {
	return New(DeriveSeed(root, label, keys...))
}

// SubstreamInto reseeds s to the substream Substream(root, label, keys...)
// would return, without allocating. The label is a precomputed Label; s is
// typically a stack-allocated Stream reused across many derivations.
//
//perf:hotpath
func SubstreamInto(s *Stream, root uint64, label Label, keys ...uint64) {
	h := mix64(root ^ uint64(label))
	for _, k := range keys {
		h = mix64(h ^ mix64(k))
	}
	s.Reseed(h)
}

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	// PCG-XSH-RR style on 64-bit state; simple and fast, quality is plenty
	// for simulation noise.
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := ((old >> 18) ^ old) >> 27
	rot := uint(old >> 59)
	out := bits.RotateLeft64(xorshifted, -int(rot))
	return mix64(out)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		//lint:ignore nopanic mirrors math/rand.Intn's documented contract for drop-in compatibility
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (s *Stream) NormFloat64() float64 {
	// Marsaglia polar method; rejects ~21% of pairs.
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// LogNormal returns a log-normal variate with the given location mu and
// scale sigma of the underlying normal.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.NormFloat64())
}

// Exp returns an exponential variate with the given mean. Mean must be > 0.
func (s *Stream) Exp(mean float64) float64 {
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum; otherwise it returns -1.
func (s *Stream) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			return -1
		}
		total += w
	}
	if total <= 0 {
		return -1
	}
	target := s.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf draws from a Zipf-like distribution over ranks [1, n] with exponent
// alpha > 0 using inverse transform over the precomputed CDF in z.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent alpha.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		//lint:ignore nopanic mirrors math/rand.NewZipf's documented contract for drop-in compatibility
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -alpha)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// Rank draws a rank in [0, n).
func (z *Zipf) Rank(s *Stream) int {
	u := s.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weight returns the probability mass of rank i.
func (z *Zipf) Weight(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }
