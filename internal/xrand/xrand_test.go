package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d equal draws", same)
	}
}

func TestDeriveStable(t *testing.T) {
	root := New(7)
	x := root.Derive("latency", 3, 12).Uint64()
	y := New(7).Derive("latency", 3, 12).Uint64()
	if x != y {
		t.Fatal("Derive is not stable across identical parents")
	}
	z := New(7).Derive("latency", 3, 13).Uint64()
	if x == z {
		t.Fatal("Derive did not differentiate on key")
	}
	w := New(7).Derive("volume", 3, 12).Uint64()
	if x == w {
		t.Fatal("Derive did not differentiate on label")
	}
}

func TestDeriveIndependentOfDrawCount(t *testing.T) {
	a := New(9)
	a.Uint64()
	a.Uint64()
	// Substream derivation must not depend on how many draws happened on an
	// unrelated stream constructed from the same root seed.
	x := Substream(9, "x", 1).Uint64()
	y := Substream(9, "x", 1).Uint64()
	if x != y {
		t.Fatal("Substream is not stable")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v far from 1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(1, 0.5); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp mean %v far from 5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(12)
	vals := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	var got int
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: %v", vals)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	s := New(13)
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		idx := s.WeightedChoice(weights)
		if idx < 0 || idx > 2 {
			t.Fatalf("WeightedChoice out of range: %d", idx)
		}
		counts[idx]++
	}
	if f := float64(counts[2]) / n; math.Abs(f-0.7) > 0.02 {
		t.Fatalf("heavy weight drawn with frequency %v, want ~0.7", f)
	}
	if f := float64(counts[0]) / n; math.Abs(f-0.1) > 0.02 {
		t.Fatalf("light weight drawn with frequency %v, want ~0.1", f)
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	s := New(14)
	if got := s.WeightedChoice(nil); got != -1 {
		t.Fatalf("WeightedChoice(nil) = %d, want -1", got)
	}
	if got := s.WeightedChoice([]float64{0, 0}); got != -1 {
		t.Fatalf("WeightedChoice(zeros) = %d, want -1", got)
	}
	if got := s.WeightedChoice([]float64{1, -1}); got != -1 {
		t.Fatalf("WeightedChoice(negative) = %d, want -1", got)
	}
	if got := s.WeightedChoice([]float64{0, 3, 0}); got != 1 {
		t.Fatalf("WeightedChoice singleton = %d, want 1", got)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.0)
	s := New(15)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Rank(s)]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("Zipf rank 0 (%d) should dominate rank 10 (%d)", counts[0], counts[10])
	}
	if counts[0] < n/20 {
		t.Fatalf("Zipf rank 0 drew %d, expected a heavy head", counts[0])
	}
}

func TestZipfWeightsSumToOne(t *testing.T) {
	z := NewZipf(100, 0.9)
	var sum float64
	for i := 0; i < z.N(); i++ {
		w := z.Weight(i)
		if w <= 0 {
			t.Fatalf("Zipf weight %d is non-positive: %v", i, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf weights sum to %v, want 1", sum)
	}
}

func TestZipfRankInRangeProperty(t *testing.T) {
	z := NewZipf(37, 1.1)
	f := func(seed uint64) bool {
		s := New(seed)
		r := z.Rank(s)
		return r >= 0 && r < 37
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveSeedAvalancheProperty(t *testing.T) {
	// Flipping a single key bit should change the derived seed.
	f := func(root, key uint64) bool {
		a := DeriveSeed(root, "l", key)
		b := DeriveSeed(root, "l", key^1)
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		var s Stream
		s.Reseed(seed)
		want := New(seed)
		for i := 0; i < 20; i++ {
			if got, exp := s.Uint64(), want.Uint64(); got != exp {
				t.Fatalf("seed %d draw %d: Reseed stream %d, New stream %d", seed, i, got, exp)
			}
		}
	}
}

func TestDeriveSeedFastPathsMatchVariadic(t *testing.T) {
	l := NewLabel("fastpath")
	for root := uint64(0); root < 50; root++ {
		k := []uint64{root * 3, root ^ 0xdead, root + 7, root << 5}
		cases := []struct {
			got, want uint64
		}{
			{DeriveSeedL(root, l), DeriveSeed(root, "fastpath")},
			{DeriveSeedL1(root, l, k[0]), DeriveSeed(root, "fastpath", k[0])},
			{DeriveSeedL2(root, l, k[0], k[1]), DeriveSeed(root, "fastpath", k[0], k[1])},
			{DeriveSeedL3(root, l, k[0], k[1], k[2]), DeriveSeed(root, "fastpath", k[0], k[1], k[2])},
			{DeriveSeedL4(root, l, k[0], k[1], k[2], k[3]), DeriveSeed(root, "fastpath", k[0], k[1], k[2], k[3])},
		}
		for i, c := range cases {
			if c.got != c.want {
				t.Fatalf("root %d: fast path with %d keys derived %d, variadic derived %d", root, i, c.got, c.want)
			}
		}
	}
}

func TestSubstreamIntoMatchesSubstream(t *testing.T) {
	l := NewLabel("into")
	var s Stream
	for root := uint64(0); root < 50; root++ {
		SubstreamInto(&s, root, l, root, root*2)
		want := Substream(root, "into", root, root*2)
		for i := 0; i < 10; i++ {
			if got, exp := s.Uint64(), want.Uint64(); got != exp {
				t.Fatalf("root %d draw %d: SubstreamInto %d, Substream %d", root, i, got, exp)
			}
		}
	}
}

func TestMix64MatchesInternal(t *testing.T) {
	for x := uint64(0); x < 100; x++ {
		if Mix64(x) != mix64(x) {
			t.Fatalf("Mix64(%d) diverged from internal mix64", x)
		}
	}
}

// TestSubstreamFastPathZeroAlloc pins the hot derivation path at zero
// heap allocations per sample; the simulation's throughput ceiling
// depends on it (DESIGN.md §11).
func TestSubstreamFastPathZeroAlloc(t *testing.T) {
	l := NewLabel("alloc")
	var s Stream
	var sink uint64
	allocs := testing.AllocsPerRun(200, func() {
		s.Reseed(DeriveSeedL4(9, l, 1, 2, 3, 4))
		sink += s.Uint64()
	})
	if allocs != 0 {
		t.Fatalf("Reseed+DeriveSeedL4 path allocates %.1f times per run, want 0", allocs)
	}
	_ = sink
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkDerive(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Derive("bench", uint64(i))
	}
}

// BenchmarkSubstream measures the allocation-free substream derivation the
// per-sample hot path uses; ci.sh pins it at 0 allocs/op via the benchjson
// compare gate.
func BenchmarkSubstream(b *testing.B) {
	l := NewLabel("bench")
	var s Stream
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Reseed(DeriveSeedL2(1, l, uint64(i), 42))
		_ = s.Uint64()
	}
}
