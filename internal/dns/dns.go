// Package dns models the DNS side of the paper's measurement system: the
// LDNS resolvers clients use, the client→LDNS mapping, and the CDN's
// authoritative nameserver logic that picks which front-ends each beacon
// execution measures (§3.3).
//
// LDNS placement matters twice. First, the authoritative server only knows
// the LDNS (not the client), so front-end candidates are ranked by
// geolocated LDNS position. Second, LDNS-grained prediction (Figure 9)
// degrades exactly when one LDNS serves clients spread over a wide area.
// Following the end-user-mapping numbers the paper cites: most clients use
// an ISP resolver near them, a minority are served from a distant ISP hub,
// and ~8% of demand uses public resolvers.
package dns

import (
	"fmt"
	"sync"

	"anycastcdn/internal/cdn"
	"anycastcdn/internal/clients"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/xrand"
)

// LDNSKind classifies a resolver.
type LDNSKind int

// Resolver kinds.
const (
	// ISPLocal is an ISP resolver in the client's own metro.
	ISPLocal LDNSKind = iota
	// ISPHub is an ISP resolver at the ISP's national hub, possibly far
	// from the client.
	ISPHub
	// Public is a public resolver (the paper's Google Public DNS /
	// OpenDNS case) serving geographically disparate clients.
	Public
)

func (k LDNSKind) String() string {
	switch k {
	case ISPLocal:
		return "isp-local"
	case ISPHub:
		return "isp-hub"
	case Public:
		return "public"
	default:
		return fmt.Sprintf("LDNSKind(%d)", int(k))
	}
}

// LDNSID identifies a resolver in a Mapping.
type LDNSID int

// LDNS is one resolver.
type LDNS struct {
	ID    LDNSID
	Name  string
	Kind  LDNSKind
	Point geo.Point
}

// MapperConfig controls LDNS assignment.
type MapperConfig struct {
	Seed uint64
	// PublicFrac is the fraction of clients using a public resolver.
	PublicFrac float64
	// HubFrac is the fraction of non-public clients served from their
	// ISP's distant hub resolver instead of a metro-local one.
	HubFrac float64
}

// DefaultMapperConfig matches the demand split the paper cites: ~8%
// public-resolver demand, and ~11-12% of the rest further than 500 km from
// their LDNS.
func DefaultMapperConfig(seed uint64) MapperConfig {
	return MapperConfig{Seed: seed, PublicFrac: 0.08, HubFrac: 0.12}
}

// publicResolverMetros hosts the public resolver deployment: a handful of
// global sites; each client uses the nearest.
var publicResolverMetros = []string{
	"san-francisco", "washington", "dallas", "london", "frankfurt",
	"singapore", "tokyo", "sao-paulo",
}

// PublicResolvers returns the public-resolver deployment as standalone
// LDNS records with IDs baseID, baseID+1, … in catalog order. The
// fault-injection layer (internal/faults) uses this to model an ISP
// resolver outage: affected clients fall back to the nearest public
// resolver, and the out-of-range IDs keep the authoritative candidate
// cache for fallback resolvers separate from the mapping's own.
func PublicResolvers(metros []geo.Metro, baseID LDNSID) ([]LDNS, error) {
	metroByName := map[string]geo.Metro{}
	for _, m := range metros {
		metroByName[m.Name] = m
	}
	out := make([]LDNS, 0, len(publicResolverMetros))
	for i, name := range publicResolverMetros {
		m, ok := metroByName[name]
		if !ok {
			return nil, fmt.Errorf("dns: public resolver metro %q missing from catalog", name)
		}
		out = append(out, LDNS{
			ID:    baseID + LDNSID(i),
			Name:  "fallback-public-" + name,
			Kind:  Public,
			Point: m.Point,
		})
	}
	return out, nil
}

// Mapping is the realized client→LDNS assignment.
type Mapping struct {
	Resolvers []LDNS
	// ClientLDNS[i] is the resolver of the client with global ID Base+i.
	ClientLDNS []LDNSID
	// Base is the global client ID of ClientLDNS[0]: zero for a mapping
	// over a full population, the shard's lower bound for one built by a
	// RangeMapper over a client range.
	Base uint64
}

// BuildMapping assigns every client in the population a resolver.
// Resolver identity is shared: all clients of one (ISP, metro) share the
// local resolver, all hub clients of an ISP share its hub resolver, and
// public-resolver clients in a region share the nearest public site.
func BuildMapping(pop *clients.Population, isps *topology.ISPModel, metros []geo.Metro, cfg MapperConfig) (*Mapping, error) {
	lo := pop.Base
	rm, err := NewRangeMapper(isps, metros, cfg, lo, lo+uint64(len(pop.Clients)))
	if err != nil {
		return nil, err
	}
	for _, c := range pop.Clients {
		rm.Observe(c)
	}
	return rm.Mapping(), nil
}

// RangeMapper builds a Mapping incrementally, one observed client at a
// time, storing assignments only for clients in [lo, hi). A distributed
// worker feeds it EVERY client of the population in ID order (the
// transient walk clients.GenerateRange already makes) because resolver
// IDs are interned in first-encounter order and the authoritative
// nameserver keys its geolocation draws by resolver ID: a shard that
// interned only its own clients' resolvers would geolocate the same
// resolver differently than the single-process build and the beacon
// candidate sets would diverge. Observing everything keeps Resolvers —
// contents and IDs — identical on every process.
type RangeMapper struct {
	cfg         MapperConfig
	isps        *topology.ISPModel
	metros      []geo.Metro
	metroByName map[string]geo.Metro
	publicPts   []geo.Point
	lo, hi      uint64
	mp          *Mapping
	index       map[string]LDNSID
}

// NewRangeMapper prepares a mapper that records assignments for global
// client IDs in [lo, hi).
func NewRangeMapper(isps *topology.ISPModel, metros []geo.Metro, cfg MapperConfig, lo, hi uint64) (*RangeMapper, error) {
	if hi < lo {
		return nil, fmt.Errorf("dns: mapper range [%d, %d) is inverted", lo, hi)
	}
	metroByName := map[string]geo.Metro{}
	for _, m := range metros {
		metroByName[m.Name] = m
	}
	var publicPts []geo.Point
	for _, name := range publicResolverMetros {
		m, ok := metroByName[name]
		if !ok {
			return nil, fmt.Errorf("dns: public resolver metro %q missing from catalog", name)
		}
		publicPts = append(publicPts, m.Point)
	}
	return &RangeMapper{
		cfg:         cfg,
		isps:        isps,
		metros:      metros,
		metroByName: metroByName,
		publicPts:   publicPts,
		lo:          lo,
		hi:          hi,
		mp:          &Mapping{ClientLDNS: make([]LDNSID, hi-lo), Base: lo},
		index:       map[string]LDNSID{},
	}, nil
}

// Observe assigns one client its resolver, interning the resolver in
// encounter order; clients must arrive in ascending global-ID order,
// covering every ID the population defines. Assignments are stored only
// for clients inside the mapper's range.
func (rm *RangeMapper) Observe(c clients.Client) {
	rs := xrand.Substream(rm.cfg.Seed, "ldns", c.ID)
	var id LDNSID
	switch {
	case rs.Bool(rm.cfg.PublicFrac):
		pi, _ := geo.NearestIndex(c.Point, rm.publicPts)
		name := "public-" + publicResolverMetros[pi]
		id = rm.intern(name, Public, rm.publicPts[pi])
	case rs.Bool(rm.cfg.HubFrac):
		isp := rm.isps.ISP(c.ISP)
		// The hub resolver sits at the ISP's primary hub peering
		// metro; approximate by the heaviest metro of the country.
		hub := heaviestMetroOfCountry(rm.metros, isp.Country)
		name := fmt.Sprintf("%s-hub", isp.Name)
		id = rm.intern(name, ISPHub, hub.Point)
	default:
		m := rm.metroByName[c.Metro]
		isp := rm.isps.ISP(c.ISP)
		name := fmt.Sprintf("%s-%s", isp.Name, c.Metro)
		id = rm.intern(name, ISPLocal, m.Point)
	}
	if c.ID >= rm.lo && c.ID < rm.hi {
		rm.mp.ClientLDNS[c.ID-rm.lo] = id
	}
}

func (rm *RangeMapper) intern(name string, kind LDNSKind, pt geo.Point) LDNSID {
	if id, ok := rm.index[name]; ok {
		return id
	}
	id := LDNSID(len(rm.mp.Resolvers))
	rm.mp.Resolvers = append(rm.mp.Resolvers, LDNS{ID: id, Name: name, Kind: kind, Point: pt})
	rm.index[name] = id
	return id
}

// Mapping returns the built mapping. The mapper must not be observed
// further afterwards.
func (rm *RangeMapper) Mapping() *Mapping { return rm.mp }

func heaviestMetroOfCountry(metros []geo.Metro, country string) geo.Metro {
	var best geo.Metro
	for _, m := range metros {
		if m.Country == country && m.Weight > best.Weight {
			best = m
		}
	}
	return best
}

// Resolver returns the resolver of a client by global client ID; the ID
// must lie inside the mapping's [Base, Base+len(ClientLDNS)) range.
func (m *Mapping) Resolver(clientID uint64) LDNS {
	return m.Resolvers[m.ClientLDNS[clientID-m.Base]]
}

// Authority is the CDN's authoritative nameserver logic of §3.3: for each
// LDNS it considers the ten front-ends closest to the (geolocated) LDNS as
// candidates, and per beacon execution returns the geographically closest
// candidate plus two distance-weighted random picks.
//
// Safe for concurrent use: the per-LDNS candidate cache is guarded by mu;
// the deployment, geo database, and candidate count are read-only after
// construction. mu is a leaf lock — never held across the geolocation
// or distance computations, or while acquiring any other mutex — so it
// imposes no acquisition order (verified by the lockorder analyzer's
// held-lock dataflow).
type Authority struct {
	dep   *cdn.Deployment
	geoDB *geo.DB
	// CandidateCount is the candidate set size (10 in the paper).
	CandidateCount int

	mu    sync.RWMutex
	cache map[LDNSID][]topology.SiteID
}

// NewAuthority builds an authority over a deployment using the given
// geolocation database to locate resolvers.
func NewAuthority(dep *cdn.Deployment, geoDB *geo.DB, candidates int) *Authority {
	if candidates < 1 {
		candidates = 10
	}
	return &Authority{
		dep:            dep,
		geoDB:          geoDB,
		CandidateCount: candidates,
		cache:          map[LDNSID][]topology.SiteID{},
	}
}

// Candidates returns the candidate front-end sites for an LDNS, nearest
// (by geolocated LDNS position) first. The result is cached per LDNS;
// callers must not modify it. Safe for concurrent use.
func (a *Authority) Candidates(l LDNS) []topology.SiteID {
	a.mu.RLock()
	sites, ok := a.cache[l.ID]
	a.mu.RUnlock()
	if ok {
		return sites
	}
	believed := a.geoDB.Locate(ldnsGeoKey(l.ID), l.Point)
	fes := a.dep.FrontEnds
	pts := make([]geo.Point, len(fes))
	for i, fe := range fes {
		pts[i] = a.dep.Backbone.Site(fe.Site).Metro.Point
	}
	order := geo.RankByDistance(believed, pts)
	n := a.CandidateCount
	if n > len(order) {
		n = len(order)
	}
	sites = make([]topology.SiteID, n)
	for i := 0; i < n; i++ {
		sites[i] = fes[order[i]].Site
	}
	a.mu.Lock()
	a.cache[l.ID] = sites
	a.mu.Unlock()
	return sites
}

// ldnsGeoKey namespaces LDNS ids in the geolocation database so they don't
// collide with client prefix ids.
func ldnsGeoKey(id LDNSID) uint64 { return 1<<40 | uint64(id) }

// BeaconTargets is the unicast target set of one beacon execution:
// the closest candidate and two weighted-random alternates (§3.3's
// measurements (b), (c) and (d); (a) is the anycast address).
type BeaconTargets struct {
	Closest topology.SiteID
	Random  [2]topology.SiteID
}

// SelectBeaconTargets picks the unicast targets for one beacon execution
// served via the given LDNS. rs drives the randomized choice; the paper
// weights nearer candidates higher ("we return the 3rd closest front-end
// with higher probability than the 4th closest").
func (a *Authority) SelectBeaconTargets(l LDNS, rs *xrand.Stream) BeaconTargets {
	cands := a.Candidates(l)
	t := BeaconTargets{Closest: cands[0]}
	rest := cands[1:]
	if len(rest) == 0 {
		t.Random = [2]topology.SiteID{cands[0], cands[0]}
		return t
	}
	// Inverse-rank weights over the remaining candidates. Candidate sets
	// are small (Config.CandidateCount, default 10), so the weights live
	// in a stack buffer: this runs once per beacon execution and was a
	// top-five allocation site of a simulated month.
	var wbuf [16]float64
	var weights []float64
	if len(rest) <= len(wbuf) {
		weights = wbuf[:len(rest)]
	} else {
		weights = make([]float64, len(rest))
	}
	for i := range rest {
		weights[i] = 1 / float64(i+2) // candidate i is the (i+2)-th closest
	}
	first := rs.WeightedChoice(weights)
	t.Random[0] = rest[first]
	if len(rest) == 1 {
		t.Random[1] = rest[0]
		return t
	}
	saved := weights[first]
	weights[first] = 0
	second := rs.WeightedChoice(weights)
	weights[first] = saved
	t.Random[1] = rest[second]
	return t
}

// QueryRecord is one authoritative DNS log entry; the backend joins these
// with client-side HTTP results by QueryID (§3.2.2).
type QueryRecord struct {
	QueryID uint64
	Day     int
	LDNS    LDNSID
	// Targets are the unicast front-end sites returned.
	Targets BeaconTargets
}
