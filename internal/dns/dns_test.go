package dns

import (
	"testing"

	"anycastcdn/internal/cdn"
	"anycastcdn/internal/clients"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/xrand"
)

type fixture struct {
	dep   *cdn.Deployment
	isps  *topology.ISPModel
	pop   *clients.Population
	metro []geo.Metro
}

func setup(t *testing.T) fixture {
	t.Helper()
	dep, err := cdn.BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	metros := geo.World()
	isps := topology.BuildISPs(dep.Backbone, metros, topology.DefaultISPModelConfig(1))
	pop, err := clients.Generate(metros, isps, clients.DefaultConfig(2, 4000))
	if err != nil {
		t.Fatal(err)
	}
	return fixture{dep: dep, isps: isps, pop: pop, metro: metros}
}

func TestBuildMappingSplit(t *testing.T) {
	f := setup(t)
	cfg := DefaultMapperConfig(3)
	mp, err := BuildMapping(f.pop, f.isps, f.metro, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.ClientLDNS) != len(f.pop.Clients) {
		t.Fatalf("mapping covers %d clients, want %d", len(mp.ClientLDNS), len(f.pop.Clients))
	}
	kinds := map[LDNSKind]int{}
	for _, c := range f.pop.Clients {
		l := mp.Resolver(c.ID)
		kinds[l.Kind]++
		if !l.Point.Valid() {
			t.Fatalf("resolver %s has invalid point", l.Name)
		}
	}
	n := float64(len(f.pop.Clients))
	if frac := float64(kinds[Public]) / n; frac < 0.05 || frac > 0.12 {
		t.Fatalf("public resolver fraction %.3f, want ~0.08", frac)
	}
	if frac := float64(kinds[ISPHub]) / n; frac < 0.06 || frac > 0.17 {
		t.Fatalf("hub resolver fraction %.3f, want ~0.11", frac)
	}
	if kinds[ISPLocal] == 0 {
		t.Fatal("no local resolvers")
	}
}

func TestMostClientsNearLDNS(t *testing.T) {
	f := setup(t)
	mp, err := BuildMapping(f.pop, f.isps, f.metro, DefaultMapperConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	near, nonPublic := 0, 0
	for _, c := range f.pop.Clients {
		l := mp.Resolver(c.ID)
		if l.Kind == Public {
			continue
		}
		nonPublic++
		if geo.DistanceKm(c.Point, l.Point) <= 500 {
			near++
		}
	}
	frac := float64(near) / float64(nonPublic)
	// Paper: only 11-12% of non-public demand is >500km from its LDNS.
	if frac < 0.80 {
		t.Fatalf("only %.2f of non-public clients within 500 km of LDNS", frac)
	}
	if frac > 0.99 {
		t.Fatalf("%.2f within 500 km; some hub clients should be distant", frac)
	}
}

func TestResolversShared(t *testing.T) {
	f := setup(t)
	mp, err := BuildMapping(f.pop, f.isps, f.metro, DefaultMapperConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Resolvers) >= len(f.pop.Clients) {
		t.Fatalf("%d resolvers for %d clients; resolvers must be shared",
			len(mp.Resolvers), len(f.pop.Clients))
	}
	// Public resolvers must serve clients from more than one metro.
	metrosByLDNS := map[LDNSID]map[string]bool{}
	for _, c := range f.pop.Clients {
		l := mp.Resolver(c.ID)
		if l.Kind != Public {
			continue
		}
		if metrosByLDNS[l.ID] == nil {
			metrosByLDNS[l.ID] = map[string]bool{}
		}
		metrosByLDNS[l.ID][c.Metro] = true
	}
	multi := 0
	for _, ms := range metrosByLDNS {
		if len(ms) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no public resolver serves clients of multiple metros")
	}
}

func TestBuildMappingDeterministic(t *testing.T) {
	f := setup(t)
	m1, err := BuildMapping(f.pop, f.isps, f.metro, DefaultMapperConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := BuildMapping(f.pop, f.isps, f.metro, DefaultMapperConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.ClientLDNS {
		if m1.ClientLDNS[i] != m2.ClientLDNS[i] {
			t.Fatalf("client %d mapped differently across identical builds", i)
		}
	}
}

func TestAuthorityCandidates(t *testing.T) {
	f := setup(t)
	auth := NewAuthority(f.dep, geo.PerfectDB(), 10)
	boston, _ := geo.FindMetro("boston")
	l := LDNS{ID: 1, Name: "test", Kind: ISPLocal, Point: boston.Point}
	cands := auth.Candidates(l)
	if len(cands) != 10 {
		t.Fatalf("got %d candidates, want 10", len(cands))
	}
	seen := map[topology.SiteID]bool{}
	prev := -1.0
	for _, s := range cands {
		if seen[s] {
			t.Fatalf("duplicate candidate %d", s)
		}
		seen[s] = true
		site := f.dep.Backbone.Site(s)
		if !site.FrontEnd {
			t.Fatalf("candidate %s is not a front-end", site.Metro.Name)
		}
		d := geo.DistanceKm(boston.Point, site.Metro.Point).Float()
		if d < prev {
			t.Fatal("candidates not sorted by distance")
		}
		prev = d
	}
	// Boston hosts a front-end in the default deployment: candidate 0
	// must be boston itself with a perfect geolocation DB.
	if f.dep.Backbone.Site(cands[0]).Metro.Name != "boston" {
		t.Fatalf("closest candidate = %s, want boston", f.dep.Backbone.Site(cands[0]).Metro.Name)
	}
}

func TestAuthorityCandidateCacheStable(t *testing.T) {
	f := setup(t)
	auth := NewAuthority(f.dep, geo.PerfectDB(), 10)
	l := LDNS{ID: 5, Point: geo.Point{Lat: 50, Lon: 10}}
	a := auth.Candidates(l)
	b := auth.Candidates(l)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("candidate cache unstable")
		}
	}
}

func TestSelectBeaconTargets(t *testing.T) {
	f := setup(t)
	auth := NewAuthority(f.dep, geo.PerfectDB(), 10)
	paris, _ := geo.FindMetro("paris")
	l := LDNS{ID: 2, Point: paris.Point}
	cands := auth.Candidates(l)
	candSet := map[topology.SiteID]int{}
	for rank, s := range cands {
		candSet[s] = rank
	}
	rs := xrand.New(11)
	pickCounts := map[topology.SiteID]int{}
	for i := 0; i < 20000; i++ {
		tg := auth.SelectBeaconTargets(l, rs)
		if tg.Closest != cands[0] {
			t.Fatal("closest target is not candidate 0")
		}
		if tg.Random[0] == tg.Random[1] {
			t.Fatal("random targets must differ")
		}
		for _, r := range tg.Random {
			rank, ok := candSet[r]
			if !ok {
				t.Fatalf("random target %d outside candidate set", r)
			}
			if rank == 0 {
				t.Fatal("random target duplicates the closest candidate")
			}
			pickCounts[r]++
		}
	}
	// Nearer candidates must be picked more often than distant ones.
	if pickCounts[cands[1]] <= pickCounts[cands[9]] {
		t.Fatalf("2nd closest picked %d times, 10th %d; want distance weighting",
			pickCounts[cands[1]], pickCounts[cands[9]])
	}
	// Every candidate should appear occasionally (measurement diversity).
	for _, s := range cands[1:] {
		if pickCounts[s] == 0 {
			t.Fatalf("candidate %d never selected", s)
		}
	}
}

func TestSelectBeaconTargetsTinyDeployments(t *testing.T) {
	b, err := topology.Build([]topology.SiteSpec{
		{Metro: "london", FrontEnd: true, Peering: true},
		{Metro: "paris", FrontEnd: true, Peering: true},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := cdn.NewDeployment(b)
	if err != nil {
		t.Fatal(err)
	}
	auth := NewAuthority(dep, geo.PerfectDB(), 10)
	l := LDNS{ID: 1, Point: geo.Point{Lat: 51, Lon: 0}}
	rs := xrand.New(1)
	tg := auth.SelectBeaconTargets(l, rs)
	if tg.Closest == 0 && tg.Random[0] == 0 && tg.Random[1] == 0 {
		t.Fatal("targets not populated")
	}
}

func TestGeolocationErrorPerturbsCandidates(t *testing.T) {
	f := setup(t)
	perfect := NewAuthority(f.dep, geo.PerfectDB(), 10)
	noisy := NewAuthority(f.dep, geo.NewDB(1, 200, 0.1, 8000), 10)
	diff := 0
	for i := 0; i < 200; i++ {
		pt := geo.Point{Lat: 30 + float64(i%40), Lon: -100 + float64(i)}
		if !pt.Valid() {
			continue
		}
		l := LDNS{ID: LDNSID(i), Point: pt}
		a := perfect.Candidates(l)
		b := noisy.Candidates(l)
		if a[0] != b[0] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("a noisy geolocation DB should sometimes change the closest candidate")
	}
}

func TestLDNSKindString(t *testing.T) {
	if ISPLocal.String() != "isp-local" || ISPHub.String() != "isp-hub" || Public.String() != "public" {
		t.Fatal("kind names wrong")
	}
	if LDNSKind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func BenchmarkSelectBeaconTargets(b *testing.B) {
	dep, err := cdn.BuildDefault()
	if err != nil {
		b.Fatal(err)
	}
	auth := NewAuthority(dep, geo.PerfectDB(), 10)
	l := LDNS{ID: 1, Point: geo.Point{Lat: 40, Lon: -80}}
	rs := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = auth.SelectBeaconTargets(l, rs)
	}
}

// TestRangeMapperMatchesBuildMapping pins the distributed mapping
// contract: a RangeMapper fed every client in ID order produces the same
// resolver catalog — contents AND interned IDs, which key the
// authority's geolocation draws — as the full BuildMapping, plus exactly
// the range's window of assignments.
func TestRangeMapperMatchesBuildMapping(t *testing.T) {
	f := setup(t)
	cfg := DefaultMapperConfig(3)
	full, err := BuildMapping(f.pop, f.isps, f.metro, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := uint64(700), uint64(2900)
	rm, err := NewRangeMapper(f.isps, f.metro, cfg, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range f.pop.Clients {
		rm.Observe(c)
	}
	mp := rm.Mapping()
	if mp.Base != lo {
		t.Fatalf("mapping base %d, want %d", mp.Base, lo)
	}
	if len(mp.Resolvers) != len(full.Resolvers) {
		t.Fatalf("range mapper interned %d resolvers, full build %d", len(mp.Resolvers), len(full.Resolvers))
	}
	for i := range full.Resolvers {
		if mp.Resolvers[i] != full.Resolvers[i] {
			t.Fatalf("resolver %d differs:\n%+v\nvs\n%+v", i, mp.Resolvers[i], full.Resolvers[i])
		}
	}
	if uint64(len(mp.ClientLDNS)) != hi-lo {
		t.Fatalf("mapping covers %d clients, want %d", len(mp.ClientLDNS), hi-lo)
	}
	for id := lo; id < hi; id++ {
		if mp.Resolver(id) != full.Resolver(id) {
			t.Fatalf("client %d: range resolver %+v, full %+v", id, mp.Resolver(id), full.Resolver(id))
		}
	}
	if _, err := NewRangeMapper(f.isps, f.metro, cfg, 5, 4); err == nil {
		t.Error("inverted mapper range accepted")
	}
}
