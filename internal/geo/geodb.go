package geo

import (
	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// DB is a geolocation database with an error model. The paper's analysis
// depends on geolocation twice: the authoritative DNS ranks front-ends by
// distance to the LDNS using a commercial geolocation database, and the
// distance analysis geolocates client /24s. Footnote 1 of the paper notes
// that "no geolocation database is perfect" — a fraction of very long
// client-to-front-end distances may be geolocation error. DB reproduces
// that: looking up an entity returns its true position displaced by a
// lognormal error, and a small fraction of lookups are grossly wrong.
type DB struct {
	// MedianErrorKm is the median displacement of a normal lookup.
	// Commercial databases at city granularity are typically tens of km off.
	MedianErrorKm units.Kilometers
	// GrossErrorRate is the probability that a lookup is wildly wrong
	// (e.g. geolocated to a registrant address on another continent).
	GrossErrorRate float64
	// GrossErrorKm is the scale of a gross error displacement.
	GrossErrorKm units.Kilometers

	seed uint64
}

// NewDB returns a database with the given error model rooted at seed.
// A zero MedianErrorKm produces perfect lookups.
func NewDB(seed uint64, medianErrKm units.Kilometers, grossRate float64, grossKm units.Kilometers) *DB {
	return &DB{
		MedianErrorKm:  medianErrKm,
		GrossErrorRate: grossRate,
		GrossErrorKm:   grossKm,
		seed:           seed,
	}
}

// PerfectDB returns a database that always reports true positions.
func PerfectDB() *DB { return &DB{} }

// Locate returns the database's belief about the position of the entity
// with the given stable id whose true position is truth. The same id always
// produces the same answer (databases are wrong consistently, not noisily).
func (db *DB) Locate(id uint64, truth Point) Point {
	if db.MedianErrorKm <= 0 && db.GrossErrorRate <= 0 {
		return truth
	}
	rs := xrand.Substream(db.seed, "geodb", id)
	bearing := rs.Float64() * 360
	var dist units.Kilometers
	if rs.Bool(db.GrossErrorRate) {
		dist = units.Kilometers(rs.Exp(db.GrossErrorKm.Float()))
	} else {
		// Lognormal with median MedianErrorKm and moderate spread.
		dist = units.Kilometers(db.MedianErrorKm.Float() * rs.LogNormal(0, 0.75))
	}
	m := Metro{Point: truth}
	return m.Offset(dist, bearing)
}
