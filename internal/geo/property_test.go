package geo

import (
	"math"
	"testing"

	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// randPoint draws a point uniformly over the sphere's surface (uniform
// longitude, arcsine-distributed latitude) so the triples exercise the
// poles and the antimeridian, not just the temperate band.
func randPoint(rs *xrand.Stream) Point {
	return Point{
		Lat: math.Asin(2*rs.Float64()-1) * 180 / math.Pi,
		Lon: rs.Float64()*360 - 180,
	}
}

// TestDistanceKmMetricProperties checks that great-circle distance is a
// metric on xrand-seeded random triples: symmetric, non-negative, zero
// on identical points, bounded by half the circumference, and obeying
// the triangle inequality.
func TestDistanceKmMetricProperties(t *testing.T) {
	const trials = 2000
	halfCircumference := math.Pi * EarthRadiusKm.Float()
	for i := 0; i < trials; i++ {
		rs := xrand.Substream(42, "geo-metric", uint64(i))
		a, b, c := randPoint(rs), randPoint(rs), randPoint(rs)

		ab := DistanceKm(a, b)
		ba := DistanceKm(b, a)
		bc := DistanceKm(b, c)
		ac := DistanceKm(a, c)

		if ab != ba {
			t.Fatalf("trial %d: DistanceKm not symmetric: %v vs %v (a=%+v b=%+v)", i, ab, ba, a, b)
		}
		if ab.Float() < 0 || ab.Float() > halfCircumference+1e-6 {
			t.Fatalf("trial %d: DistanceKm(%+v, %+v) = %v out of [0, %v]", i, a, b, ab, halfCircumference)
		}
		if self := DistanceKm(a, a); self != 0 {
			t.Fatalf("trial %d: DistanceKm(p, p) = %v, want 0 (p=%+v)", i, self, a)
		}
		// Triangle inequality with a float tolerance: haversine is exact
		// to ~1e-9 relative, so a meter of slack at Earth scale is ample.
		if ac.Float() > ab.Float()+bc.Float()+1e-3 {
			t.Fatalf("trial %d: triangle inequality violated: d(a,c)=%v > d(a,b)+d(b,c)=%v (a=%+v b=%+v c=%+v)",
				i, ac, units.Kilometers(ab.Float()+bc.Float()), a, b, c)
		}
	}
}
