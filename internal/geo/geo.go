// Package geo provides geographic primitives for the simulator: lat/lon
// points, great-circle distance, a world metro catalog with population
// weights, and a geolocation database with a configurable error model.
//
// Distances drive almost every result in the paper (client→front-end
// distance, distance past closest, switch distance), so the catalog covers
// enough of the world that a "dozens of front-ends" deployment has the same
// density contrast between North America / Europe and the rest of the world
// that the Bing deployment had.
package geo

import (
	"fmt"
	"math"
	"sort"

	"anycastcdn/internal/units"
)

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm units.Kilometers = 6371.0

// Point is a position on Earth in degrees.
type Point struct {
	Lat float64 // latitude in [-90, 90]
	Lon float64 // longitude in [-180, 180]
}

// Valid reports whether the point's coordinates are in range.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func (p Point) String() string {
	return fmt.Sprintf("(%.3f,%.3f)", p.Lat, p.Lon)
}

// DistanceKm returns the great-circle (haversine) distance between two
// points in kilometers.
func DistanceKm(a, b Point) units.Kilometers {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return units.Kilometers(2 * EarthRadiusKm.Float() * math.Asin(math.Sqrt(h)))
}

// Region is a coarse world region used to slice results (Figure 3 reports
// Europe / World / United States separately).
type Region string

// Regions used throughout the simulator.
const (
	RegionNorthAmerica Region = "north-america"
	RegionEurope       Region = "europe"
	RegionAsia         Region = "asia"
	RegionSouthAmerica Region = "south-america"
	RegionOceania      Region = "oceania"
	RegionAfrica       Region = "africa"
)

// Metro is a metropolitan area: a name, a position, a region, and a relative
// Internet population weight used when placing clients.
type Metro struct {
	Name    string
	Point   Point
	Region  Region
	Country string
	// Weight is a relative share of client population, roughly proportional
	// to Internet user population of the metro area.
	Weight float64
}

// Offset returns a point displaced from the metro center by approximately
// dKm kilometers at the given bearing in degrees. Used to scatter client
// prefixes around their metro.
func (m Metro) Offset(dKm units.Kilometers, bearingDeg float64) Point {
	const degToRad = math.Pi / 180
	br := bearingDeg * degToRad
	lat1 := m.Point.Lat * degToRad
	lon1 := m.Point.Lon * degToRad
	ad := dKm.Float() / EarthRadiusKm.Float()
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(br))
	lon2 := lon1 + math.Atan2(math.Sin(br)*math.Sin(ad)*math.Cos(lat1),
		math.Cos(ad)-math.Sin(lat1)*math.Sin(lat2))
	// Normalize longitude into [-180, 180].
	lonDeg := math.Mod(lon2/degToRad+540, 360) - 180
	return Point{Lat: lat2 / degToRad, Lon: lonDeg}
}

// NearestIndex returns the index of the point in pts nearest to p, and the
// distance. It returns (-1, +Inf) for an empty slice.
func NearestIndex(p Point, pts []Point) (int, units.Kilometers) {
	best := -1
	bestD := units.Kilometers(math.Inf(1))
	for i, q := range pts {
		if d := DistanceKm(p, q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// RankByDistance returns the indices of pts sorted by increasing distance
// from p. Ties are broken by index for determinism.
func RankByDistance(p Point, pts []Point) []int {
	type entry struct {
		idx int
		d   units.Kilometers
	}
	es := make([]entry, len(pts))
	for i, q := range pts {
		es[i] = entry{i, DistanceKm(p, q)}
	}
	sort.Slice(es, func(a, b int) bool {
		if es[a].d != es[b].d {
			return es[a].d < es[b].d
		}
		return es[a].idx < es[b].idx
	})
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.idx
	}
	return out
}
