package geo

import (
	"math"
	"testing"
	"testing/quick"

	"anycastcdn/internal/units"
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b       string
		wantKm     float64
		toleranceK float64
	}{
		{"new-york", "los-angeles", 3940, 100},
		{"london", "paris", 344, 25},
		{"moscow", "stockholm", 1230, 80},
		{"denver", "phoenix", 950, 80},
		{"tokyo", "osaka", 400, 40},
		{"sydney", "auckland", 2160, 120},
	}
	for _, c := range cases {
		ma, ok := FindMetro(c.a)
		if !ok {
			t.Fatalf("metro %q missing", c.a)
		}
		mb, ok := FindMetro(c.b)
		if !ok {
			t.Fatalf("metro %q missing", c.b)
		}
		got := DistanceKm(ma.Point, mb.Point)
		if math.Abs(got.Float()-c.wantKm) > c.toleranceK {
			t.Errorf("distance %s-%s = %.0f km, want %.0f±%.0f", c.a, c.b, got, c.wantKm, c.toleranceK)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	// Symmetry and identity over random valid points.
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clamp(lat1, -90, 90), Lon: clamp(lon1, -180, 180)}
		b := Point{Lat: clamp(lat2, -90, 90), Lon: clamp(lon2, -180, 180)}
		dab := DistanceKm(a, b)
		dba := DistanceKm(b, a)
		if math.Abs(dab.Float()-dba.Float()) > 1e-6 {
			return false
		}
		if DistanceKm(a, a) > 1e-6 {
			return false
		}
		// Great-circle distance is bounded by half the circumference.
		return dab >= 0 && dab.Float() <= math.Pi*EarthRadiusKm.Float()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp(v, lo, hi float64) float64 {
	if math.IsNaN(v) {
		return lo
	}
	return math.Mod(math.Abs(v), hi-lo) + lo
}

func TestPointValid(t *testing.T) {
	if !(Point{0, 0}).Valid() {
		t.Error("origin should be valid")
	}
	if (Point{91, 0}).Valid() {
		t.Error("lat 91 should be invalid")
	}
	if (Point{0, 181}).Valid() {
		t.Error("lon 181 should be invalid")
	}
	if (Point{math.NaN(), 0}).Valid() {
		t.Error("NaN lat should be invalid")
	}
}

func TestOffsetDistance(t *testing.T) {
	m, _ := FindMetro("chicago")
	for _, d := range []units.Kilometers{1, 50, 500, 3000} {
		for _, brg := range []float64{0, 45, 90, 180, 270} {
			p := m.Offset(d, brg)
			if !p.Valid() {
				t.Fatalf("Offset(%v,%v) produced invalid point %v", d, brg, p)
			}
			got := DistanceKm(m.Point, p)
			if math.Abs(got.Float()-d.Float()) > d.Float()*0.01+0.1 {
				t.Errorf("Offset(%v km, %v deg): actual distance %.2f km", d, brg, got)
			}
		}
	}
}

func TestOffsetCrossesAntimeridian(t *testing.T) {
	m := Metro{Point: Point{Lat: 0, Lon: 179.5}}
	p := m.Offset(200, 90)
	if !p.Valid() {
		t.Fatalf("offset across antimeridian produced invalid point %v", p)
	}
	if d := DistanceKm(m.Point, p); math.Abs(d.Float()-200) > 3 {
		t.Fatalf("antimeridian offset distance = %.1f, want ~200", d)
	}
}

func TestNearestIndex(t *testing.T) {
	ny, _ := FindMetro("new-york")
	pts := []Point{}
	for _, name := range []string{"los-angeles", "chicago", "boston", "london"} {
		m, _ := FindMetro(name)
		pts = append(pts, m.Point)
	}
	idx, d := NearestIndex(ny.Point, pts)
	if idx != 2 {
		t.Fatalf("nearest to new-york = index %d, want 2 (boston)", idx)
	}
	if d < 100 || d > 500 {
		t.Fatalf("new-york to boston distance %.0f out of expected range", d)
	}
	if idx, d := NearestIndex(ny.Point, nil); idx != -1 || !math.IsInf(d.Float(), 1) {
		t.Fatal("NearestIndex on empty slice should be (-1, +Inf)")
	}
}

func TestRankByDistance(t *testing.T) {
	ny, _ := FindMetro("new-york")
	names := []string{"london", "boston", "chicago", "los-angeles"}
	pts := make([]Point, len(names))
	for i, n := range names {
		m, _ := FindMetro(n)
		pts[i] = m.Point
	}
	order := RankByDistance(ny.Point, pts)
	want := []int{1, 2, 3, 0} // boston, chicago, LA, london
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rank order = %v, want %v", order, want)
		}
	}
	// Property: distances are non-decreasing along the ranking.
	prev := units.Kilometers(-1)
	for _, idx := range order {
		d := DistanceKm(ny.Point, pts[idx])
		if d < prev {
			t.Fatal("RankByDistance output not sorted")
		}
		prev = d
	}
}

func TestWorldCatalog(t *testing.T) {
	ms := World()
	if len(ms) < 150 {
		t.Fatalf("catalog has %d metros, want >= 150", len(ms))
	}
	names := map[string]bool{}
	regions := map[Region]int{}
	for _, m := range ms {
		if names[m.Name] {
			t.Errorf("duplicate metro name %q", m.Name)
		}
		names[m.Name] = true
		if !m.Point.Valid() {
			t.Errorf("metro %q has invalid point %v", m.Name, m.Point)
		}
		if m.Weight <= 0 {
			t.Errorf("metro %q has non-positive weight", m.Name)
		}
		if m.Country == "" {
			t.Errorf("metro %q has empty country", m.Name)
		}
		regions[m.Region]++
	}
	for _, r := range []Region{RegionNorthAmerica, RegionEurope, RegionAsia,
		RegionSouthAmerica, RegionOceania, RegionAfrica} {
		if regions[r] < 5 {
			t.Errorf("region %s has only %d metros", r, regions[r])
		}
	}
}

func TestWorldReturnsCopy(t *testing.T) {
	a := World()
	a[0].Name = "mutated"
	b := World()
	if b[0].Name == "mutated" {
		t.Fatal("World returned a shared slice")
	}
}

func TestFindMetroMissing(t *testing.T) {
	if _, ok := FindMetro("atlantis"); ok {
		t.Fatal("FindMetro found a nonexistent metro")
	}
}

func TestGeoDBPerfect(t *testing.T) {
	db := PerfectDB()
	p := Point{40, -70}
	if got := db.Locate(1, p); got != p {
		t.Fatalf("perfect DB moved the point: %v", got)
	}
}

func TestGeoDBConsistentAndBounded(t *testing.T) {
	db := NewDB(99, 30, 0.02, 4000)
	truth := Point{48.86, 2.35}
	a := db.Locate(7, truth)
	b := db.Locate(7, truth)
	if a != b {
		t.Fatal("geolocation DB is not consistent per id")
	}
	// Across many ids, the median error should be near the configured value.
	var errs []float64
	for id := uint64(0); id < 2000; id++ {
		p := db.Locate(id, truth)
		errs = append(errs, DistanceKm(truth, p).Float())
	}
	med := median(errs)
	if med < 15 || med > 60 {
		t.Fatalf("median geolocation error %.1f km, want ~30", med)
	}
}

func TestGeoDBGrossErrors(t *testing.T) {
	db := NewDB(5, 30, 0.05, 5000)
	truth := Point{34, -118}
	gross := 0
	const n = 5000
	for id := uint64(0); id < n; id++ {
		if DistanceKm(truth, db.Locate(id, truth)) > 1500 {
			gross++
		}
	}
	frac := float64(gross) / n
	if frac < 0.01 || frac > 0.10 {
		t.Fatalf("gross error fraction %.3f, want near 0.05", frac)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func BenchmarkDistanceKm(b *testing.B) {
	p1 := Point{40.71, -74.01}
	p2 := Point{34.05, -118.24}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DistanceKm(p1, p2)
	}
}

func BenchmarkRankByDistance(b *testing.B) {
	ms := World()
	pts := make([]Point, len(ms))
	for i, m := range ms {
		pts[i] = m.Point
	}
	p := Point{40.71, -74.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RankByDistance(p, pts)
	}
}
