package sim_test

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

// TestRunVsStreamEquivalence10k pins the tentpole contract at scale: a
// 10k-prefix batch RunWorld and a streaming StreamWorld over the same
// world must agree byte for byte on every beacon, every passive record,
// and every per-day assignment. It runs race-enabled in CI, so it also
// exercises the shared-buffer writes of both parallel reduces.
func TestRunVsStreamEquivalence10k(t *testing.T) {
	cfg := sim.DefaultConfig(97)
	cfg.Prefixes = 10000
	cfg.Days = 3
	cfg.BeaconSampleRate = 0.02
	cfg.MaxBeaconsPerClientDay = 4
	cfg.Workers = 4
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim.RunWorld(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	days := 0
	err = sim.StreamWorld(cfg, w, func(d sim.DayResult) error {
		if d.Day != days {
			return fmt.Errorf("day %d delivered out of order (want %d)", d.Day, days)
		}
		if len(d.Beacons) != len(full.Beacons[d.Day]) {
			return fmt.Errorf("day %d: %d streamed beacons, run had %d",
				d.Day, len(d.Beacons), len(full.Beacons[d.Day]))
		}
		for i := range d.Beacons {
			if d.Beacons[i] != full.Beacons[d.Day][i] {
				return fmt.Errorf("day %d beacon %d differs between Stream and Run", d.Day, i)
			}
		}
		if len(d.Passive) != cfg.Prefixes {
			return fmt.Errorf("day %d: %d passive records, want %d", d.Day, len(d.Passive), cfg.Prefixes)
		}
		for i, r := range d.Passive {
			// The batch log is client-major: client i's day-d row is i*Days+d.
			if want := full.Passive.At(i*cfg.Days + d.Day); r != want {
				return fmt.Errorf("day %d client %d passive record differs:\nstream %+v\nrun    %+v",
					d.Day, i, r, want)
			}
			if d.Assignments[i] != full.Assignments[i][d.Day] {
				return fmt.Errorf("day %d client %d assignment differs:\nstream %+v\nrun    %+v",
					d.Day, i, d.Assignments[i], full.Assignments[i][d.Day])
			}
		}
		days++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if days != cfg.Days {
		t.Fatalf("stream delivered %d days, want %d", days, cfg.Days)
	}
}

// TestWorkersRuleUnifiedAcrossPaths pins the worker-pool bugfix: RunWorld
// and StreamWorld share one clamping rule, so any non-positive worker
// count — including a negative one passed directly around Validate —
// behaves exactly like Workers=0 (GOMAXPROCS) on BOTH paths, and every
// worker count produces byte-identical output. Before the shared
// parallelFor helper, a negative count meant "all cores" in RunWorld but
// silently serialized parts of the streaming path.
func TestWorkersRuleUnifiedAcrossPaths(t *testing.T) {
	cfg := testutil.TinyConfig(55)
	cfg.Days = 4
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type digest struct {
		beacons []string
		passive []string
	}
	runDigest := func(workers int) digest {
		c := cfg
		c.Workers = workers
		res, err := sim.RunWorld(c, w)
		if err != nil {
			t.Fatal(err)
		}
		var d digest
		for day := range res.Beacons {
			d.beacons = append(d.beacons, fmt.Sprintf("%+v", res.Beacons[day]))
		}
		for i := 0; i < res.Passive.Len(); i++ {
			d.passive = append(d.passive, fmt.Sprintf("%+v", res.Passive.At(i)))
		}
		return d
	}
	streamDigest := func(workers int) digest {
		c := cfg
		c.Workers = workers
		// The batch log is client-major (client i, day d at i*Days+d) while
		// the stream delivers day-major; normalize to client-major so the
		// digests compare content, not delivery order.
		d := digest{passive: make([]string, c.Prefixes*c.Days)}
		err := sim.StreamWorld(c, w, func(dr sim.DayResult) error {
			d.beacons = append(d.beacons, fmt.Sprintf("%+v", dr.Beacons))
			for i, r := range dr.Passive {
				d.passive[i*c.Days+dr.Day] = fmt.Sprintf("%+v", r)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	compare := func(name string, ref, got digest) {
		t.Helper()
		if len(ref.beacons) != len(got.beacons) || len(ref.passive) != len(got.passive) {
			t.Fatalf("%s: output shape differs", name)
		}
		for i := range ref.beacons {
			if ref.beacons[i] != got.beacons[i] {
				t.Fatalf("%s: beacon day %d differs", name, i)
			}
		}
		for i := range ref.passive {
			if ref.passive[i] != got.passive[i] {
				t.Fatalf("%s: passive record %d differs", name, i)
			}
		}
	}
	refRun := runDigest(1)
	refStream := streamDigest(1)
	compare("run-vs-stream baseline", refRun, refStream)
	// Zero means GOMAXPROCS; a negative count reaching the pool directly
	// (Validate rejects it at the config boundary) means the same thing.
	for _, workers := range []int{-1, 0, 2, 16} {
		compare(fmt.Sprintf("RunWorld workers=%d", workers), refRun, runDigest(workers))
		compare(fmt.Sprintf("StreamWorld workers=%d", workers), refStream, streamDigest(workers))
	}
}

// TestStreamWorldSteadyStateAllocs pins the buffer-reuse contract: once
// the per-day output buffers exist, additional simulated days allocate
// nothing. Doubling the day count must not change the per-run allocation
// count (beacons are disabled so no day ever outgrows the shared beacon
// buffer; Workers=1 keeps the pool inline and goroutine-free).
func TestStreamWorldSteadyStateAllocs(t *testing.T) {
	cfg := testutil.TinyConfig(66)
	cfg.Prefixes = 300
	cfg.BeaconSampleRate = 0
	cfg.Workers = 1
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(days int) float64 {
		c := cfg
		c.Days = days
		return testing.AllocsPerRun(3, func() {
			if err := sim.StreamWorld(c, w, func(sim.DayResult) error { return nil }); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := measure(4), measure(8)
	// The fixed setup cost (schedule array, day buffers) is identical; the
	// four extra days must add zero allocations.
	if long > short+0.5 {
		t.Fatalf("per-day steady-state allocations: %d days = %.0f allocs, %d days = %.0f allocs; extra days must not allocate",
			4, short, 8, long)
	}
}

// TestStreamWorldMillionPrefixSmoke runs the paper-scale configuration the
// streaming path exists for: one million client /24s over a 30-day month,
// beacons disabled (a passive-log analysis run). It pins three things: the
// run completes, it stays inside a generous wall-clock budget (the seed
// machine streams it in ~42s on one core; the budget is 5x that), and the
// process heap stays bounded — the batch Result for this run would exceed
// 2 GiB on its own, so staying under that bound proves the day-buffer
// reuse actually bounds memory. Skipped under -short and under the race
// detector (see race_on_test.go); ci.sh runs it as a named smoke step.
func TestStreamWorldMillionPrefixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("million-prefix smoke skipped in short mode")
	}
	if raceEnabled {
		t.Skip("million-prefix smoke skipped under the race detector; TestRunVsStreamEquivalence10k covers the streaming path race-enabled")
	}
	cfg := testutil.TinyConfig(9)
	cfg.Prefixes = 1_000_000
	cfg.Days = 30
	cfg.BeaconSampleRate = 0
	cfg.Workers = 0
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	days := 0
	var records int
	err = sim.StreamWorld(cfg, w, func(d sim.DayResult) error {
		if d.Day != days {
			return fmt.Errorf("day %d out of order (want %d)", d.Day, days)
		}
		days++
		records += len(d.Passive)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if days != cfg.Days || records != cfg.Prefixes*cfg.Days {
		t.Fatalf("streamed %d days / %d records, want %d / %d", days, records, cfg.Days, cfg.Prefixes*cfg.Days)
	}
	const budget = 210 * time.Second
	if elapsed > budget {
		t.Fatalf("1M x 30 stream took %v, budget %v", elapsed.Round(time.Second), budget)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapSys > 2<<30 {
		t.Fatalf("heap grew to %d MiB; streaming must stay under 2 GiB", ms.HeapSys>>20)
	}
	t.Logf("1M prefixes x 30 days streamed in %v (%.1fM client-days/s), heap %d MiB",
		elapsed.Round(time.Millisecond),
		float64(records)/elapsed.Seconds()/1e6, ms.HeapSys>>20)
}

// TestStreamErrorJoinsWorkers pins the error-path cleanup: when the
// callback fails mid-run with a parallel worker pool active, StreamWorld
// returns the error immediately and no pool goroutines survive it (the
// pool runs per phase and joins before fn is called, so an error can
// never strand a worker). The reused day buffers are function-local, so
// they are unreachable — collectable — as soon as StreamWorld returns.
func TestStreamErrorJoinsWorkers(t *testing.T) {
	cfg := testutil.TinyConfig(77)
	cfg.Days = 4
	cfg.Workers = 4
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	sentinel := errors.New("stop mid-run")
	calls := 0
	err = sim.StreamWorld(cfg, w, func(d sim.DayResult) error {
		calls++
		if d.Day == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2 (days 0 and 1)", calls)
	}
	// Workers join before fn runs, so the count should already be back;
	// poll briefly to absorb unrelated runtime goroutines winding down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked past StreamWorld error: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
