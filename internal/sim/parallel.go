package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for i in [0, n). It is the single worker-pool
// helper of the simulation core — RunWorld and StreamWorld both dispatch
// every parallel phase through it — so there is exactly one clamping rule
// for Config.Workers: workers <= 0 means GOMAXPROCS. (Validate rejects
// negative counts at the config boundary; a negative value reaching this
// level through a direct RunWorld/StreamWorld call behaves like the zero
// value rather than silently serializing, which is the disagreement the
// two hand-rolled pools used to have.) The worker count is additionally
// clamped to n, and a single worker runs inline: no goroutines, no
// scheduling allocations — the serial path replay tests compare against
// parallel runs byte for byte.
//
// Work is claimed from a shared atomic counter, one index at a time,
// rather than handed out in contiguous chunks: per-index work is wildly
// skewed under surge scenarios (a flash-crowd client-day runs orders of
// magnitude more beacon executions than a quiet one), and chunked
// assignment strands that skew on one worker while the rest idle at the
// barrier. The claim is one uncontended atomic add — cheaper than the
// channel send per index it replaces — and the schedule has no effect on
// results: every output index is written by whichever worker claims it,
// and all randomness is per-entity substreams.
func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
