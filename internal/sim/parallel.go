package sim

import (
	"runtime"
	"sync"
)

// parallelFor runs fn(i) for i in [0, n). It is the single worker-pool
// helper of the simulation core — RunWorld and StreamWorld both dispatch
// every parallel phase through it — so there is exactly one clamping rule
// for Config.Workers: workers <= 0 means GOMAXPROCS. (Validate rejects
// negative counts at the config boundary; a negative value reaching this
// level through a direct RunWorld/StreamWorld call behaves like the zero
// value rather than silently serializing, which is the disagreement the
// two hand-rolled pools used to have.) The worker count is additionally
// clamped to n, and a single worker runs inline: no goroutines, no
// channel, zero scheduling allocations — the serial path replay tests
// compare against parallel runs byte for byte.
func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
