//go:build race

package sim_test

// raceEnabled reports whether the race detector is instrumenting this
// build. The million-prefix smoke skips under race: its wall-clock
// budget assumes uninstrumented code (race slows the day loop ~3x,
// pushing a ~70s run against the 210s budget), and the race coverage of
// the streaming path comes from TestRunVsStreamEquivalence10k, which
// does run race-enabled.
const raceEnabled = true
