package sim

import (
	"anycastcdn/internal/bgp"
	"anycastcdn/internal/load"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/xrand"
)

// SiteUtil is one front-end's load picture for one simulated day under
// load management: the queries it actually served after any DNS-layer
// redirection, against its derived capacity.
type SiteUtil struct {
	Site topology.SiteID
	// Queries is the effective served volume (post-redirection).
	Queries float64
	// Capacity is the site's derived or configured capacity.
	Capacity float64
	// ShedFrac is the site's ring-0 shed fraction at end of day (zero
	// unless the FastRoute policy is active).
	ShedFrac float64
	// Withdrawn reports whether the naive strategy withdrew the site's
	// route this day.
	Withdrawn bool
}

// Utilization is the served-to-capacity ratio (1.0 = at capacity).
func (u SiteUtil) Utilization() float64 { return u.Queries / u.Capacity }

// loadManager drives the load package inside the simulation day loop.
// One instance exists per StreamWorld invocation when Config.LoadManager
// is set; all of its state is deterministic functions of (config, world),
// so managed runs replay byte-identically.
type loadManager struct {
	cfg    load.ManagerConfig // defaulted
	bb     *topology.Backbone
	caps   map[topology.SiteID]float64
	layers []load.Layer
	// bal is the layered balancer; non-nil only for the FastRoute
	// policy. Its shed fractions persist across days, which is what
	// carries the controller's hysteresis through a multi-day surge.
	bal *load.Balancer
	// withdrawn is the Withdraw policy's decision state, carried across
	// days; routeWithdrawn is the set actually applied to TODAY's routing
	// (yesterday's decision — route withdrawal reacts a control interval
	// late, which is what makes the paper's cascade roll); and
	// rehome[ingress] caches where anycast re-homes each ingress's
	// traffic under routeWithdrawn.
	withdrawn      map[topology.SiteID]bool
	routeWithdrawn map[topology.SiteID]bool
	rehome         []topology.SiteID
	// demand, served and utils are per-day scratch, reused.
	demand map[topology.SiteID]float64
	served map[topology.SiteID]float64
	utils  []SiteUtil
}

// newLoadManager compiles cfg.LoadManager against a built world; it
// returns (nil, nil) when the subsystem is inactive. Capacity derivation
// is a pure serial function of the world (client order, fault-free base
// catchment), so every policy arm of an experiment sees identical
// capacities and rings.
func newLoadManager(cfg Config, w *World) (*loadManager, error) {
	if cfg.LoadManager == nil {
		return nil, nil
	}
	if err := cfg.LoadManager.Validate(); err != nil {
		return nil, err
	}
	c := cfg.LoadManager.WithDefaults()
	bb := w.Deployment.Backbone
	caps := make(map[topology.SiteID]float64, len(bb.FrontEnds()))
	if c.Capacity != nil {
		// Copy: DeriveRings raises deep-ring capacities in place and the
		// caller's map must stay untouched.
		for _, fe := range bb.FrontEnds() {
			caps[fe] = c.Capacity[fe]
		}
	} else {
		// Fault-free per-day load per front-end at the SCHEDULED catchment
		// (clients switch front-ends across days even without faults, so
		// the base-day catchment would under-provision the sites those
		// switches land on): capacity is headroom over each site's PEAK
		// day, because daily per-prefix volume is lognormally bursty — a
		// site provisioned for its mean day would overload on ordinary
		// fault-free days. Serial, in day-major client order, so the float
		// sums are bit-stable across runs and worker counts.
		n := len(w.Population.Clients)
		feDay := make([]topology.SiteID, n*cfg.Days)
		sched := make([]topology.SiteID, cfg.Days)
		for i, cl := range w.Population.Clients {
			rc := bgp.Client{PrefixID: cl.ID, Point: cl.Point, ISP: cl.ISP}
			w.Router.IngressScheduleInto(rc, sched)
			for d, ing := range sched {
				feDay[i*cfg.Days+d] = w.Router.Assign(rc, ing).FrontEnd
			}
		}
		trafficSeed := xrand.DeriveSeedL(cfg.Seed, labelTraffic)
		base := make(map[topology.SiteID]float64, len(bb.FrontEnds()))
		dayLoad := make(map[topology.SiteID]float64, len(bb.FrontEnds()))
		for d := 0; d < cfg.Days; d++ {
			clear(dayLoad)
			weekend := w.Router.IsWeekend(d)
			for i, cl := range w.Population.Clients {
				dayLoad[feDay[i*cfg.Days+d]] += float64(cl.QueriesOnDay(trafficSeed, d, weekend, cfg.QueriesPerVolume))
			}
			for _, fe := range bb.FrontEnds() {
				if dayLoad[fe] > base[fe] {
					base[fe] = dayLoad[fe]
				}
			}
		}
		// Headroom over each site's peak day, floored at half the
		// fleet-mean peak: idle sites keep some spillover slack without a
		// floor that dwarfs small catchments (which would let a regional
		// flash crowd hide inside the floor). Deterministic front-end
		// order for the sums.
		var mean float64
		for _, fe := range bb.FrontEnds() {
			mean += base[fe]
		}
		mean /= float64(len(bb.FrontEnds()))
		for _, fe := range bb.FrontEnds() {
			q := base[fe]
			if q < mean/2 {
				q = mean / 2
			}
			caps[fe] = c.Headroom * q
		}
	}
	layers := load.DeriveRings(bb, caps, c.DeepRingShare, c.MegaShare)
	m := &loadManager{
		cfg:            c,
		bb:             bb,
		caps:           caps,
		layers:         layers,
		withdrawn:      map[topology.SiteID]bool{},
		routeWithdrawn: map[topology.SiteID]bool{},
		demand:         make(map[topology.SiteID]float64, bb.NumSites()),
		served:         make(map[topology.SiteID]float64, bb.NumSites()),
		utils:          make([]SiteUtil, 0, len(bb.FrontEnds())),
		rehome:         make([]topology.SiteID, bb.NumSites()),
	}
	if c.Policy == load.FastRoute {
		bal, err := load.NewBalancer(bb, layers, caps)
		if err != nil {
			return nil, err
		}
		bal.HighWatermark = c.HighWatermark
		bal.LowWatermark = c.LowWatermark
		bal.Gain = c.Gain
		bal.MaxStep = c.MaxStep
		bal.HeavyShare = c.HeavyShare
		m.bal = bal
	}
	return m, nil
}

// stepDay aggregates the day's offered load by ingress and runs the
// policy's control decision. Serial, in client order, so the demand sums
// are bit-stable regardless of worker count.
func (m *loadManager) stepDay(passive []logs.DayRecord, assigns []bgp.Assignment) {
	clear(m.demand)
	for i := range passive {
		m.demand[assigns[i].Ingress] += float64(passive[i].Queries)
	}
	switch m.cfg.Policy {
	case load.Static:
		// Observe only.
	case load.FastRoute:
		// Intra-day fixpoint of the distributed watermark controller:
		// within a simulated day the real system runs many short control
		// rounds, so the day's shed fractions are the equilibrium the
		// local rules reach (bounded by StepsPerDay). State persists to
		// the next day — that is the hysteresis across the surge window.
		m.bal.Converge(m.demand, m.cfg.StepsPerDay)
	case load.Withdraw:
		// Today's routing applies yesterday's decision, then tonight's
		// decision reacts to today's offered load under that routing: the
		// naive operator only sees overload after it has happened, so the
		// first interval's withdrawals dump their catchments onto
		// neighbours that the next interval withdraws in turn.
		clear(m.routeWithdrawn)
		//replay:commutative set copy; each key written once
		for fe := range m.withdrawn {
			m.routeWithdrawn[fe] = true
		}
		for id := range m.rehome {
			m.rehome[id] = load.NearestStandingFE(m.bb, topology.SiteID(id), m.routeWithdrawn)
		}
		m.withdrawn = load.WithdrawStep(m.bb, m.demand, m.caps, m.routeWithdrawn)
	}
}

// route resolves where one client's queries are actually served after
// the policy's DNS-layer decision. FastRoute draws its uniform from a
// dedicated (client, day)-keyed substream, so managed runs stay
// schedule-independent and an inactive balancer leaves the assignment
// untouched.
func (m *loadManager) route(seed uint64, clientID uint64, day int, a bgp.Assignment, queries int) topology.SiteID {
	switch m.cfg.Policy {
	case load.FastRoute:
		var rs xrand.Stream
		rs.Reseed(xrand.DeriveSeedL2(seed, labelLoadU, clientID, uint64(day)))
		return m.bal.RouteFrom(a.Ingress, a.FrontEnd, rs.Float64(), float64(queries))
	case load.Withdraw:
		if m.routeWithdrawn[a.FrontEnd] {
			if fe := m.rehome[a.Ingress]; fe != topology.InvalidSite {
				return fe
			}
		}
	}
	return a.FrontEnd
}

// observeServed totals the day's effective served volume per front-end
// and snapshots per-site utilization. Serial, in client order. The
// returned slice is reused for the next day (DayResult ownership rules).
func (m *loadManager) observeServed(passive []logs.DayRecord) []SiteUtil {
	clear(m.served)
	for i := range passive {
		m.served[passive[i].FrontEnd] += float64(passive[i].Queries)
	}
	m.utils = m.utils[:0]
	for _, fe := range m.bb.FrontEnds() {
		su := SiteUtil{
			Site:      fe,
			Queries:   m.served[fe],
			Capacity:  m.caps[fe],
			Withdrawn: m.routeWithdrawn[fe],
		}
		if m.bal != nil {
			su.ShedFrac = m.bal.ShedFraction(0, fe)
		}
		m.utils = append(m.utils, su)
	}
	return m.utils
}
