package sim

import (
	"fmt"

	"anycastcdn/internal/bgp"
	"anycastcdn/internal/load"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/xrand"
)

// SiteUtil is one front-end's load picture for one simulated day under
// load management: the queries it actually served after any DNS-layer
// redirection, against its derived capacity.
type SiteUtil struct {
	Site topology.SiteID
	// Queries is the effective served volume (post-redirection).
	Queries float64
	// Capacity is the site's derived or configured capacity.
	Capacity float64
	// ShedFrac is the site's ring-0 shed fraction at end of day (zero
	// unless the FastRoute policy is active).
	ShedFrac float64
	// Withdrawn reports whether the naive strategy withdrew the site's
	// route this day.
	Withdrawn bool
}

// Utilization is the served-to-capacity ratio (1.0 = at capacity).
func (u SiteUtil) Utilization() float64 { return u.Queries / u.Capacity }

// loadManager drives the load package inside the simulation day loop.
// One instance exists per StreamWorld invocation when Config.LoadManager
// is set; all of its state is deterministic functions of (config, world),
// so managed runs replay byte-identically.
type loadManager struct {
	cfg    load.ManagerConfig // defaulted
	bb     *topology.Backbone
	caps   map[topology.SiteID]float64
	layers []load.Layer
	// bal is the layered balancer; non-nil only for the FastRoute
	// policy. Its shed fractions persist across days, which is what
	// carries the controller's hysteresis through a multi-day surge.
	bal *load.Balancer
	// withdrawn is the Withdraw policy's decision state, carried across
	// days; routeWithdrawn is the set actually applied to TODAY's routing
	// (yesterday's decision — route withdrawal reacts a control interval
	// late, which is what makes the paper's cascade roll); and
	// rehome[ingress] caches where anycast re-homes each ingress's
	// traffic under routeWithdrawn.
	withdrawn      map[topology.SiteID]bool
	routeWithdrawn map[topology.SiteID]bool
	rehome         []topology.SiteID
	// demand, served and utils are per-day scratch, reused.
	demand map[topology.SiteID]float64
	served map[topology.SiteID]float64
	utils  []SiteUtil
}

// ShardLoadMatrix accumulates the fault-free scheduled load of clients
// [lo, hi) into a flat [Days][front-end] matrix (day-major, front-ends in
// bb.FrontEnds() order): cell (d, f) is the sum of those clients'
// fault-free day-d queries whose scheduled catchment is front-end f. The
// matrix is the distributable half of capacity derivation — queries are
// integers, so float64 cell sums are exact and shard matrices reduce by
// plain addition into exactly the full-population matrix, regardless of
// how the population was sharded. CapsFromLoadMatrix is the other half.
//
// Memory is one Days x front-ends matrix plus a Days-length scratch
// schedule, independent of the shard size — this is also what the
// single-process derivation runs, replacing the clients x days schedule
// array it used to materialize.
func ShardLoadMatrix(cfg Config, w *World, lo, hi int) ([]float64, error) {
	if cfg.LoadManager == nil {
		return nil, fmt.Errorf("sim: load matrix requested without a load-manager config")
	}
	base := int(w.Population.Base)
	if lo < base || hi < lo || hi > base+len(w.Population.Clients) {
		return nil, fmt.Errorf("sim: load-matrix shard [%d, %d) outside population [%d, %d)", lo, hi, base, base+len(w.Population.Clients))
	}
	bb := w.Deployment.Backbone
	fes := bb.FrontEnds()
	feIdx := make(map[topology.SiteID]int, len(fes))
	for i, fe := range fes {
		feIdx[fe] = i
	}
	weekend := make([]bool, cfg.Days)
	for d := range weekend {
		weekend[d] = w.Router.IsWeekend(d)
	}
	m := make([]float64, cfg.Days*len(fes))
	sched := make([]topology.SiteID, cfg.Days)
	trafficSeed := xrand.DeriveSeedL(cfg.Seed, labelTraffic)
	// Serial, in client order: per matrix cell the additions run in
	// ascending client order, the same per-cell sequence the pre-matrix
	// serial derivation produced — and integer-valued besides, so the
	// reduction over shards is exact.
	for i := lo; i < hi; i++ {
		cl := w.Population.Clients[i-base]
		rc := bgp.Client{PrefixID: cl.ID, Point: cl.Point, ISP: cl.ISP}
		w.Router.IngressScheduleInto(rc, sched)
		for d, ing := range sched {
			f := feIdx[w.Router.Assign(rc, ing).FrontEnd]
			m[d*len(fes)+f] += float64(cl.QueriesOnDay(trafficSeed, d, weekend[d], cfg.QueriesPerVolume))
		}
	}
	return m, nil
}

// CapsFromLoadMatrix derives per-front-end capacities from a full
// population load matrix (ShardLoadMatrix over [0, n), or the elementwise
// sum of shard matrices): headroom over each site's peak fault-free day,
// floored at half the fleet-mean peak. A pure serial function of the
// matrix, so every process that holds the same reduced matrix — the
// coordinator and each worker replica of a distributed run — derives
// bitwise-identical capacities.
func CapsFromLoadMatrix(cfg Config, w *World, m []float64) (map[topology.SiteID]float64, error) {
	if cfg.LoadManager == nil {
		return nil, fmt.Errorf("sim: capacity derivation requested without a load-manager config")
	}
	bb := w.Deployment.Backbone
	fes := bb.FrontEnds()
	if len(m) != cfg.Days*len(fes) {
		return nil, fmt.Errorf("sim: load matrix has %d cells, want %d days x %d front-ends", len(m), cfg.Days, len(fes))
	}
	c := cfg.LoadManager.WithDefaults()
	// Capacity is headroom over each site's PEAK day at the SCHEDULED
	// catchment (clients switch front-ends across days even without
	// faults, so the base-day catchment would under-provision the sites
	// those switches land on), because daily per-prefix volume is
	// lognormally bursty — a site provisioned for its mean day would
	// overload on ordinary fault-free days. The floor keeps idle sites
	// some spillover slack without letting a regional flash crowd hide
	// inside a floor that dwarfs small catchments. Deterministic
	// front-end order for the sums.
	caps := make(map[topology.SiteID]float64, len(fes))
	var mean float64
	for f := range fes {
		var peak float64
		for d := 0; d < cfg.Days; d++ {
			if v := m[d*len(fes)+f]; v > peak {
				peak = v
			}
		}
		caps[fes[f]] = peak
		mean += peak
	}
	mean /= float64(len(fes))
	for _, fe := range fes {
		q := caps[fe]
		if q < mean/2 {
			q = mean / 2
		}
		caps[fe] = c.Headroom * q
	}
	return caps, nil
}

// newLoadManager compiles cfg.LoadManager against a built world; it
// returns (nil, nil) when the subsystem is inactive. Capacity derivation
// is a pure serial function of the world (client order, fault-free base
// catchment), so every policy arm of an experiment sees identical
// capacities and rings. explicitCaps overrides the config's capacity map
// when non-nil (the distributed stream injects coordinator-reduced
// capacities this way).
func newLoadManager(cfg Config, w *World, explicitCaps map[topology.SiteID]float64) (*loadManager, error) {
	if cfg.LoadManager == nil {
		return nil, nil
	}
	if err := cfg.LoadManager.Validate(); err != nil {
		return nil, err
	}
	c := cfg.LoadManager.WithDefaults()
	if explicitCaps != nil {
		c.Capacity = explicitCaps
	}
	bb := w.Deployment.Backbone
	caps := make(map[topology.SiteID]float64, len(bb.FrontEnds()))
	if c.Capacity != nil {
		// Copy: DeriveRings raises deep-ring capacities in place and the
		// caller's map must stay untouched.
		for _, fe := range bb.FrontEnds() {
			caps[fe] = c.Capacity[fe]
		}
	} else {
		base := int(w.Population.Base)
		m, err := ShardLoadMatrix(cfg, w, base, base+len(w.Population.Clients))
		if err != nil {
			return nil, err
		}
		derived, err := CapsFromLoadMatrix(cfg, w, m)
		if err != nil {
			return nil, err
		}
		for _, fe := range bb.FrontEnds() {
			caps[fe] = derived[fe]
		}
	}
	layers := load.DeriveRings(bb, caps, c.DeepRingShare, c.MegaShare)
	m := &loadManager{
		cfg:            c,
		bb:             bb,
		caps:           caps,
		layers:         layers,
		withdrawn:      map[topology.SiteID]bool{},
		routeWithdrawn: map[topology.SiteID]bool{},
		demand:         make(map[topology.SiteID]float64, bb.NumSites()),
		served:         make(map[topology.SiteID]float64, bb.NumSites()),
		utils:          make([]SiteUtil, 0, len(bb.FrontEnds())),
		rehome:         make([]topology.SiteID, bb.NumSites()),
	}
	if c.Policy == load.FastRoute {
		bal, err := load.NewBalancer(bb, layers, caps)
		if err != nil {
			return nil, err
		}
		bal.HighWatermark = c.HighWatermark
		bal.LowWatermark = c.LowWatermark
		bal.Gain = c.Gain
		bal.MaxStep = c.MaxStep
		bal.HeavyShare = c.HeavyShare
		m.bal = bal
	}
	return m, nil
}

// demandFrom aggregates the day's offered load by ingress over the given
// records. Serial, in client order, so the demand sums are bit-stable
// regardless of worker count — and integer-valued, so per-shard demand
// maps reduce exactly into the full-population one. The returned map is
// the manager's reusable scratch, valid until the next call.
func (m *loadManager) demandFrom(passive []logs.DayRecord, assigns []bgp.Assignment) map[topology.SiteID]float64 {
	clear(m.demand)
	for i := range passive {
		m.demand[assigns[i].Ingress] += float64(passive[i].Queries)
	}
	return m.demand
}

// policyStep runs the policy's control decision against a day's offered
// load. In a sharded run every worker calls this with the SAME
// coordinator-reduced global demand map, so the policy state machines —
// balancer shed fractions, withdrawal sets — stay bitwise-identical
// replicas on every process.
func (m *loadManager) policyStep(demand map[topology.SiteID]float64) {
	switch m.cfg.Policy {
	case load.Static:
		// Observe only.
	case load.FastRoute:
		// Intra-day fixpoint of the distributed watermark controller:
		// within a simulated day the real system runs many short control
		// rounds, so the day's shed fractions are the equilibrium the
		// local rules reach (bounded by StepsPerDay). State persists to
		// the next day — that is the hysteresis across the surge window.
		m.bal.Converge(demand, m.cfg.StepsPerDay)
	case load.Withdraw:
		// Today's routing applies yesterday's decision, then tonight's
		// decision reacts to today's offered load under that routing: the
		// naive operator only sees overload after it has happened, so the
		// first interval's withdrawals dump their catchments onto
		// neighbours that the next interval withdraws in turn.
		clear(m.routeWithdrawn)
		//replay:commutative set copy; each key written once
		for fe := range m.withdrawn {
			m.routeWithdrawn[fe] = true
		}
		for id := range m.rehome {
			m.rehome[id] = load.NearestStandingFE(m.bb, topology.SiteID(id), m.routeWithdrawn)
		}
		m.withdrawn = load.WithdrawStep(m.bb, demand, m.caps, m.routeWithdrawn)
	}
}

// route resolves where one client's queries are actually served after
// the policy's DNS-layer decision. FastRoute draws its uniform from a
// dedicated (client, day)-keyed substream, so managed runs stay
// schedule-independent and an inactive balancer leaves the assignment
// untouched.
func (m *loadManager) route(seed uint64, clientID uint64, day int, a bgp.Assignment, queries int) topology.SiteID {
	switch m.cfg.Policy {
	case load.FastRoute:
		var rs xrand.Stream
		rs.Reseed(xrand.DeriveSeedL2(seed, labelLoadU, clientID, uint64(day)))
		return m.bal.RouteFrom(a.Ingress, a.FrontEnd, rs.Float64(), float64(queries))
	case load.Withdraw:
		if m.routeWithdrawn[a.FrontEnd] {
			if fe := m.rehome[a.Ingress]; fe != topology.InvalidSite {
				return fe
			}
		}
	}
	return a.FrontEnd
}

// observeServed totals the day's effective served volume per front-end
// and snapshots per-site utilization. Serial, in client order. The
// returned slice is reused for the next day (DayResult ownership rules).
func (m *loadManager) observeServed(passive []logs.DayRecord) []SiteUtil {
	clear(m.served)
	for i := range passive {
		m.served[passive[i].FrontEnd] += float64(passive[i].Queries)
	}
	m.utils = m.utils[:0]
	for _, fe := range m.bb.FrontEnds() {
		su := SiteUtil{
			Site:      fe,
			Queries:   m.served[fe],
			Capacity:  m.caps[fe],
			Withdrawn: m.routeWithdrawn[fe],
		}
		if m.bal != nil {
			su.ShedFrac = m.bal.ShedFraction(0, fe)
		}
		m.utils = append(m.utils, su)
	}
	return m.utils
}
