package sim_test

import (
	"errors"
	"testing"

	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

func TestStreamMatchesRun(t *testing.T) {
	full := testutil.SmallResult(t)
	cfg := full.Cfg
	day := 0
	err := sim.Stream(cfg, func(d sim.DayResult) error {
		if d.Day != day {
			t.Fatalf("days out of order: got %d want %d", d.Day, day)
		}
		if len(d.Beacons) != len(full.Beacons[day]) {
			t.Fatalf("day %d beacon count %d != run's %d", day, len(d.Beacons), len(full.Beacons[day]))
		}
		for i := range d.Beacons {
			if d.Beacons[i] != full.Beacons[day][i] {
				t.Fatalf("day %d measurement %d differs between Stream and Run", day, i)
			}
		}
		if len(d.Passive) != cfg.Prefixes {
			t.Fatalf("day %d passive records = %d, want %d", day, len(d.Passive), cfg.Prefixes)
		}
		day++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if day != cfg.Days {
		t.Fatalf("stream delivered %d days, want %d", day, cfg.Days)
	}
}

func TestStreamPassiveMatchesRun(t *testing.T) {
	full := testutil.SmallResult(t)
	// Index run's passive records by (client, day).
	type key struct {
		client uint64
		day    int
	}
	want := map[key]int{}
	for c := full.Passive.Cursor(); c.Next(); {
		r := c.Record()
		want[key{r.ClientID, r.Day}] = r.Queries
	}
	err := sim.Stream(full.Cfg, func(d sim.DayResult) error {
		for _, r := range d.Passive {
			if q, ok := want[key{r.ClientID, r.Day}]; !ok || q != r.Queries {
				t.Fatalf("passive record mismatch for client %d day %d", r.ClientID, r.Day)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStreamStopsOnError(t *testing.T) {
	cfg := testutil.SmallConfig(23)
	sentinel := errors.New("stop")
	calls := 0
	err := sim.Stream(cfg, func(d sim.DayResult) error {
		calls++
		if d.Day == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 3 {
		t.Fatalf("stream continued after error: %d calls", calls)
	}
}

func TestStreamNilFn(t *testing.T) {
	if err := sim.Stream(testutil.SmallConfig(24), nil); err == nil {
		t.Fatal("nil fn should fail")
	}
}

// BenchmarkStreamWorld measures the streaming hot path end to end —
// BuildWorld excluded, mirroring BenchmarkRunWorld — on DefaultConfig at
// a reduced prefix count. Its B/op is the per-run cost of the reused day
// buffers plus the per-client-day simulation work; the CI gate pins it.
func BenchmarkStreamWorld(b *testing.B) {
	cfg := sim.DefaultConfig(3)
	cfg.Prefixes = 1000
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		beacons := 0
		err := sim.StreamWorld(cfg, w, func(d sim.DayResult) error {
			beacons += len(d.Beacons)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if beacons == 0 {
			b.Fatal("no beacons")
		}
	}
}

func BenchmarkStreamDay(b *testing.B) {
	cfg := testutil.SmallConfig(25)
	cfg.Days = 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := sim.Stream(cfg, func(sim.DayResult) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
