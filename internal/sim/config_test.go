package sim_test

import (
	"strings"
	"testing"

	"anycastcdn/internal/faults"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

func TestConfigValidate(t *testing.T) {
	mut := func(f func(*sim.Config)) sim.Config {
		cfg := testutil.SmallConfig(1)
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name    string
		cfg     sim.Config
		wantErr string // empty means valid
	}{
		{"default small", testutil.SmallConfig(1), ""},
		{"zero workers means GOMAXPROCS", mut(func(c *sim.Config) { c.Workers = 0 }), ""},
		{"zero prefixes", mut(func(c *sim.Config) { c.Prefixes = 0 }), "prefix"},
		{"negative prefixes", mut(func(c *sim.Config) { c.Prefixes = -4 }), "prefix"},
		{"zero days", mut(func(c *sim.Config) { c.Days = 0 }), "day"},
		{"negative days", mut(func(c *sim.Config) { c.Days = -1 }), "day"},
		{"negative workers", mut(func(c *sim.Config) { c.Workers = -2 }), "worker"},
		{"negative query rate", mut(func(c *sim.Config) { c.QueriesPerVolume = -1 }), "quer"},
		{"beacon rate above one", mut(func(c *sim.Config) { c.BeaconSampleRate = 1.5 }), "sample rate"},
		{"beacon rate below zero", mut(func(c *sim.Config) { c.BeaconSampleRate = -0.1 }), "sample rate"},
		{"negative beacon cap", mut(func(c *sim.Config) { c.MaxBeaconsPerClientDay = -1 }), "beacon cap"},
		{"scenario event past end", mut(func(c *sim.Config) {
			c.Scenario = &faults.Scenario{Events: []faults.Event{
				{Kind: faults.Drain, Target: "paris", Day: c.Days + 3, Days: 1},
			}}
		}), "ends after day"},
		{"invalid scenario event", mut(func(c *sim.Config) {
			c.Scenario = &faults.Scenario{Events: []faults.Event{
				{Kind: faults.Drain, Target: "paris", Day: 1, Days: 0},
			}}
		}), "duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestBuildWorldValidates confirms BuildWorld rejects what Validate
// rejects, so a bad config cannot slip into a run through any entry point.
func TestBuildWorldValidates(t *testing.T) {
	cfg := testutil.SmallConfig(1)
	cfg.Workers = -1
	if _, err := sim.BuildWorld(cfg); err == nil {
		t.Fatal("BuildWorld accepted a config Validate rejects")
	}
	if _, err := sim.Run(cfg); err == nil {
		t.Fatal("Run accepted a config Validate rejects")
	}
}
