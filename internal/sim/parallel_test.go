package sim_test

import (
	"runtime"
	"testing"

	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

// TestParallelMatchesSerial pins the schedule-independence invariant from
// the other direction than TestReplayIdentical: a fully serial run
// (Workers=1) and a maximally parallel run (Workers=GOMAXPROCS) of the
// same config must produce byte-identical Results. Per-entity substream
// derivation — not run ordering — is the only source of randomness, so
// the reduce must also merge worker outputs in a deterministic order.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := testutil.SmallConfig(33)

	cfg.Workers = 1
	serial, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = runtime.GOMAXPROCS(0)
	parallel, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if serial.TotalBeacons() != parallel.TotalBeacons() {
		t.Fatalf("beacon totals differ: serial %d vs parallel %d",
			serial.TotalBeacons(), parallel.TotalBeacons())
	}
	if len(serial.Beacons) != len(parallel.Beacons) {
		t.Fatalf("day counts differ: %d vs %d", len(serial.Beacons), len(parallel.Beacons))
	}
	for day := range serial.Beacons {
		if len(serial.Beacons[day]) != len(parallel.Beacons[day]) {
			t.Fatalf("day %d beacon count differs: serial %d vs parallel %d",
				day, len(serial.Beacons[day]), len(parallel.Beacons[day]))
		}
		for i := range serial.Beacons[day] {
			if serial.Beacons[day][i] != parallel.Beacons[day][i] {
				t.Fatalf("day %d beacon %d differs:\nserial   %+v\nparallel %+v",
					day, i, serial.Beacons[day][i], parallel.Beacons[day][i])
			}
		}
	}

	if serial.Passive.Len() != parallel.Passive.Len() {
		t.Fatalf("passive log lengths differ: serial %d vs parallel %d",
			serial.Passive.Len(), parallel.Passive.Len())
	}
	for i := 0; i < serial.Passive.Len(); i++ {
		if serial.Passive.At(i) != parallel.Passive.At(i) {
			t.Fatalf("passive record %d differs:\nserial   %+v\nparallel %+v",
				i, serial.Passive.At(i), parallel.Passive.At(i))
		}
	}

	if len(serial.Assignments) != len(parallel.Assignments) {
		t.Fatal("assignment counts differ")
	}
	for c := range serial.Assignments {
		for d := range serial.Assignments[c] {
			if serial.Assignments[c][d] != parallel.Assignments[c][d] {
				t.Fatalf("assignment for client %d day %d differs", c, d)
			}
		}
	}
}

// BenchmarkRunWorld measures the simulation hot path end to end —
// BuildWorld excluded, so the timing isolates the per-client day loop and
// the pre-sized reduce — on DefaultConfig at a reduced prefix count.
func BenchmarkRunWorld(b *testing.B) {
	cfg := sim.DefaultConfig(3)
	cfg.Prefixes = 1000
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunWorld(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalBeacons() == 0 {
			b.Fatal("no beacons")
		}
	}
}
