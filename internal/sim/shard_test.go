package sim_test

import (
	"sync"
	"testing"

	"anycastcdn/internal/beacon"
	"anycastcdn/internal/bgp"
	"anycastcdn/internal/load"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
	"anycastcdn/internal/topology"
)

// dayCapture materializes one stream's per-day outputs (DayResult slices
// are stream-owned and reused, so tests must copy).
type dayCapture struct {
	passive [][]logs.DayRecord
	assigns [][]bgp.Assignment
	beacons [][]beacon.Measurement
	utils   [][]sim.SiteUtil
}

func capture(days int) *dayCapture {
	return &dayCapture{
		passive: make([][]logs.DayRecord, days),
		assigns: make([][]bgp.Assignment, days),
		beacons: make([][]beacon.Measurement, days),
		utils:   make([][]sim.SiteUtil, days),
	}
}

func (c *dayCapture) observe(d sim.DayResult) error {
	c.passive[d.Day] = append([]logs.DayRecord(nil), d.Passive...)
	c.assigns[d.Day] = append([]bgp.Assignment(nil), d.Assignments...)
	c.beacons[d.Day] = append([]beacon.Measurement(nil), d.Beacons...)
	c.utils[d.Day] = append([]sim.SiteUtil(nil), d.Utilization...)
	return nil
}

// shardBounds carves [0, n) into deliberately uneven contiguous shards,
// including a tiny middle one, so off-by-ones at shard edges surface.
func shardBounds(n int) [][2]int {
	a := n / 3
	return [][2]int{{0, a}, {a, a + 3}, {a + 3, n}}
}

// TestStreamShardConcatenationMatchesStreamWorld is the core sharding
// property: per-client outputs are schedule-independent, so streaming
// contiguous client ranges separately and concatenating each day's
// outputs in shard order reproduces StreamWorld record for record —
// beacons, passive rows and assignments alike. Runs with a surge
// scenario so fault rewrites and flash-crowd beacon skew cross shard
// boundaries.
func TestStreamShardConcatenationMatchesStreamWorld(t *testing.T) {
	cfg := managedConfig(t, 11, load.Static)
	cfg.LoadManager = nil // fault injection only; managed sharding is tested below
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := capture(cfg.Days)
	if err := sim.StreamWorld(cfg, w, ref.observe); err != nil {
		t.Fatal(err)
	}
	got := capture(cfg.Days)
	for _, b := range shardBounds(len(w.Population.Clients)) {
		sh := capture(cfg.Days)
		err := sim.StreamShard(cfg, w, sim.ShardOpts{Lo: b[0], Hi: b[1]}, sh.observe)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < cfg.Days; d++ {
			got.passive[d] = append(got.passive[d], sh.passive[d]...)
			got.assigns[d] = append(got.assigns[d], sh.assigns[d]...)
			got.beacons[d] = append(got.beacons[d], sh.beacons[d]...)
		}
	}
	for d := 0; d < cfg.Days; d++ {
		if len(got.passive[d]) != len(ref.passive[d]) {
			t.Fatalf("day %d: %d concatenated passive rows, want %d", d, len(got.passive[d]), len(ref.passive[d]))
		}
		for i := range ref.passive[d] {
			if got.passive[d][i] != ref.passive[d][i] {
				t.Fatalf("day %d passive %d differs:\n%+v\nvs\n%+v", d, i, got.passive[d][i], ref.passive[d][i])
			}
			if got.assigns[d][i] != ref.assigns[d][i] {
				t.Fatalf("day %d assignment %d differs", d, i)
			}
		}
		if len(got.beacons[d]) != len(ref.beacons[d]) {
			t.Fatalf("day %d: %d concatenated beacons, want %d", d, len(got.beacons[d]), len(ref.beacons[d]))
		}
		for i := range ref.beacons[d] {
			if got.beacons[d][i] != ref.beacons[d][i] {
				t.Fatalf("day %d beacon %d differs:\n%+v\nvs\n%+v", d, i, got.beacons[d][i], ref.beacons[d][i])
			}
		}
	}
}

// TestStreamShardRejectsBadRange pins the bounds validation.
func TestStreamShardRejectsBadRange(t *testing.T) {
	cfg := testutil.TinyConfig(3)
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(sim.DayResult) error { return nil }
	n := len(w.Population.Clients)
	for _, b := range [][2]int{{-1, 5}, {5, 4}, {0, n + 1}} {
		if err := sim.StreamShard(cfg, w, sim.ShardOpts{Lo: b[0], Hi: b[1]}, fn); err == nil {
			t.Errorf("shard [%d, %d) accepted", b[0], b[1])
		}
	}
}

// demandBarrier is an in-process stand-in for the coordinator's per-day
// two-phase demand exchange: every shard reports its offered load, the
// last arrival reduces the sum, and all shards proceed with the same
// global map. Query counts are integers, so the float sums are exact in
// any arrival order.
type demandBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	shards  int
	arrived int
	gen     int
	sum     map[topology.SiteID]float64
	global  map[topology.SiteID]float64
}

func newDemandBarrier(shards int) *demandBarrier {
	b := &demandBarrier{
		shards: shards,
		sum:    map[topology.SiteID]float64{},
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *demandBarrier) exchange(day int, shard map[topology.SiteID]float64) (map[topology.SiteID]float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.arrived == 0 {
		clear(b.sum)
	}
	for s, v := range shard {
		b.sum[s] += v
	}
	b.arrived++
	if b.arrived == b.shards {
		global := make(map[topology.SiteID]float64, len(b.sum))
		for s, v := range b.sum {
			global[s] = v
		}
		b.global = global
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return global, nil
	}
	gen := b.gen
	for b.gen == gen {
		b.cond.Wait()
	}
	return b.global, nil
}

// TestStreamShardLoadManagedMatchesStreamWorld runs the full distributed
// load-management protocol in-process: capacities reduced from per-shard
// load matrices, concurrent shard streams synchronized by a per-day
// demand exchange, policy replicas stepping on the same global demand.
// The concatenated outputs must be byte-identical to single-process
// StreamWorld under the same surge, and the per-shard utilization
// snapshots must reduce (served volumes summed, control state identical
// across replicas) to the single-process ones.
func TestStreamShardLoadManagedMatchesStreamWorld(t *testing.T) {
	for _, policy := range []load.Policy{load.FastRoute, load.Withdraw} {
		cfg := managedConfig(t, 11, policy)
		w, err := sim.BuildWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := capture(cfg.Days)
		if err := sim.StreamWorld(cfg, w, ref.observe); err != nil {
			t.Fatal(err)
		}

		n := len(w.Population.Clients)
		bounds := shardBounds(n)
		// Coordinator pre-phase: reduce shard load matrices, derive caps.
		var reduced []float64
		for _, b := range bounds {
			m, err := sim.ShardLoadMatrix(cfg, w, b[0], b[1])
			if err != nil {
				t.Fatal(err)
			}
			if reduced == nil {
				reduced = m
			} else {
				for i := range reduced {
					reduced[i] += m[i]
				}
			}
		}
		caps, err := sim.CapsFromLoadMatrix(cfg, w, reduced)
		if err != nil {
			t.Fatal(err)
		}

		barrier := newDemandBarrier(len(bounds))
		shards := make([]*dayCapture, len(bounds))
		errs := make([]error, len(bounds))
		var wg sync.WaitGroup
		for si, b := range bounds {
			shards[si] = capture(cfg.Days)
			wg.Add(1)
			go func(si int, lo, hi int) {
				defer wg.Done()
				errs[si] = sim.StreamShard(cfg, w, sim.ShardOpts{
					Lo: lo, Hi: hi,
					Caps:           caps,
					ExchangeDemand: barrier.exchange,
				}, shards[si].observe)
			}(si, b[0], b[1])
		}
		wg.Wait()
		for si, err := range errs {
			if err != nil {
				t.Fatalf("%s: shard %d: %v", policy, si, err)
			}
		}

		for d := 0; d < cfg.Days; d++ {
			var passive []logs.DayRecord
			var beacons []beacon.Measurement
			for _, sh := range shards {
				passive = append(passive, sh.passive[d]...)
				beacons = append(beacons, sh.beacons[d]...)
			}
			for i := range ref.passive[d] {
				if passive[i] != ref.passive[d][i] {
					t.Fatalf("%s: day %d passive %d differs:\n%+v\nvs\n%+v",
						policy, d, i, passive[i], ref.passive[d][i])
				}
			}
			if len(beacons) != len(ref.beacons[d]) {
				t.Fatalf("%s: day %d beacon count %d, want %d", policy, d, len(beacons), len(ref.beacons[d]))
			}
			for i := range ref.beacons[d] {
				if beacons[i] != ref.beacons[d][i] {
					t.Fatalf("%s: day %d beacon %d differs", policy, d, i)
				}
			}
			// Utilization reduce: shard served volumes sum exactly; the
			// control-state fields are replica-identical.
			for i, ru := range ref.utils[d] {
				var q float64
				for _, sh := range shards {
					su := sh.utils[d][i]
					q += su.Queries
					if su.Site != ru.Site || su.Capacity != ru.Capacity ||
						su.ShedFrac != ru.ShedFrac || su.Withdrawn != ru.Withdrawn {
						t.Fatalf("%s: day %d site %d control state differs:\n%+v\nvs\n%+v",
							policy, d, i, su, ru)
					}
				}
				if q != ru.Queries {
					t.Fatalf("%s: day %d site %d served %v, want %v", policy, d, i, q, ru.Queries)
				}
			}
		}
	}
}

// TestShardLoadMatrixReducesToFull: the elementwise sum of shard matrices
// equals the full-population matrix bit for bit (integer-valued cells),
// and the derived capacities match the ones newLoadManager derives
// internally — pinned indirectly by the managed shard test above, and
// directly here.
func TestShardLoadMatrixReducesToFull(t *testing.T) {
	cfg := managedConfig(t, 5, load.FastRoute)
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(w.Population.Clients)
	full, err := sim.ShardLoadMatrix(cfg, w, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	var reduced []float64
	for _, b := range shardBounds(n) {
		m, err := sim.ShardLoadMatrix(cfg, w, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		if reduced == nil {
			reduced = m
		} else {
			for i := range reduced {
				reduced[i] += m[i]
			}
		}
	}
	for i := range full {
		if full[i] != reduced[i] {
			t.Fatalf("matrix cell %d: full %v, reduced %v", i, full[i], reduced[i])
		}
	}
	if _, err := sim.ShardLoadMatrix(cfg, w, -1, n); err == nil {
		t.Error("negative shard lo accepted")
	}
	badCfg := cfg
	badCfg.LoadManager = nil
	if _, err := sim.ShardLoadMatrix(badCfg, w, 0, n); err == nil {
		t.Error("load matrix without manager config accepted")
	}
	if _, err := sim.CapsFromLoadMatrix(cfg, w, full[:3]); err == nil {
		t.Error("short matrix accepted by CapsFromLoadMatrix")
	}
}
