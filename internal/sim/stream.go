package sim

import (
	"fmt"

	"anycastcdn/internal/beacon"
	"anycastcdn/internal/bgp"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/xrand"
)

// DayResult is one simulated day's output, delivered in day order.
//
// All three slices are OWNED BY THE STREAM and reused for the next day:
// they are valid only until the callback passed to Stream/StreamWorld
// returns. A consumer that needs data past that point must copy it —
// which is the point: streaming consumers aggregate online precisely so
// nothing per-day is retained.
type DayResult struct {
	Day int
	// Beacons holds the day's active measurements (client order, each
	// client's executions in query order).
	Beacons []beacon.Measurement
	// Passive holds the day's per-client log records (client order, one
	// per client).
	Passive []logs.DayRecord
	// Assignments holds the day's effective anycast assignment per client
	// (client order), after any fault rewrite — what Result.Assignments
	// exposes per day in batch mode.
	Assignments []bgp.Assignment
	// Utilization holds the day's per-front-end load picture; nil unless
	// Config.LoadManager is active. When load management redirects a
	// client's queries, Passive[i].FrontEnd is the effective serving
	// front-end while Assignments[i].FrontEnd stays the anycast one —
	// the difference IS the shed volume.
	Utilization []SiteUtil
}

// Stream simulates cfg.Days days, invoking fn once per day with that
// day's outputs and retaining only one day in memory — the mode to use
// for paper-scale runs (millions of prefixes) whose full measurement set
// would not fit.
//
// The stream is identical, measurement for measurement, to the equivalent
// Run: both derive from the same per-entity substreams.
func Stream(cfg Config, fn func(DayResult) error) error {
	w, err := BuildWorld(cfg)
	if err != nil {
		return err
	}
	return StreamWorld(cfg, w, fn)
}

// StreamWorld streams over an already-built world.
//
// Steady-state memory is one flat ingress-schedule array (one SiteID per
// client-day — the only cross-day state the simulation needs, since the
// rest of an assignment is a pure function of the ingress) plus per-day
// output buffers that are allocated once and reused for every day. A
// million-prefix 30-day run therefore holds a few hundred MB, not the
// tens of GB the batch Result would occupy. After the schedule pass,
// steady-state day iterations allocate nothing (enforced by
// TestStreamWorldSteadyStateAllocs).
//
// On error from fn the stream stops immediately; all workers have already
// joined (the pool runs per phase, never across fn), so nothing leaks and
// the buffers become garbage as soon as StreamWorld returns.
func StreamWorld(cfg Config, w *World, fn func(DayResult) error) error {
	base := int(w.Population.Base)
	return streamRange(cfg, w, ShardOpts{Lo: base, Hi: base + len(w.Population.Clients)}, fn)
}

// ShardOpts selects the client slice a StreamShard call simulates and
// wires in the coordination hooks a multi-process run needs.
type ShardOpts struct {
	// Lo and Hi bound the global client-ID range [Lo, Hi) this stream
	// simulates. The world's population must cover the range — either a
	// full build, or a BuildShardWorld whose materialized clients include
	// it. The shard restricts which clients' days are simulated and
	// logged.
	Lo, Hi int
	// Caps overrides load-manager capacity derivation with explicit
	// per-front-end capacities. A sharded worker must receive the
	// capacities derived from the FULL population (reduced from
	// ShardLoadMatrix partials); deriving locally would also be correct
	// but repeats the full-population schedule pass in every worker.
	// Ignored when Config.LoadManager is nil.
	Caps map[topology.SiteID]float64
	// ExchangeDemand, when set on a load-managed run, is called once per
	// day between demand aggregation and the policy step: it receives the
	// shard's offered load by ingress (the manager's scratch map, valid
	// only during the call) and must return the full-population demand —
	// in a distributed run, by reducing every shard's map on the
	// coordinator and broadcasting the sum. The policy state machine then
	// steps on global demand in every worker, keeping the replicas
	// bitwise-identical. Ignored when Config.LoadManager is nil.
	ExchangeDemand func(day int, shard map[topology.SiteID]float64) (map[topology.SiteID]float64, error)
}

// StreamShard streams days for the clients in opts' range only — one
// worker's slice of a distributed run. DayResult slices are indexed
// 0..Hi-Lo-1 (record ClientIDs stay global). Per-client outputs are
// schedule-independent (per-entity substreams), so the concatenation of
// contiguous shard streams in shard order reproduces, record for record,
// the single-process StreamWorld over the same world.
func StreamShard(cfg Config, w *World, opts ShardOpts, fn func(DayResult) error) error {
	return streamRange(cfg, w, opts, fn)
}

func streamRange(cfg Config, w *World, opts ShardOpts, fn func(DayResult) error) error {
	if fn == nil {
		return fmt.Errorf("sim: nil stream function")
	}
	base := int(w.Population.Base)
	if opts.Lo < base || opts.Hi < opts.Lo || opts.Hi > base+len(w.Population.Clients) {
		return fmt.Errorf("sim: shard range [%d, %d) outside population [%d, %d)",
			opts.Lo, opts.Hi, base, base+len(w.Population.Clients))
	}
	mgr, err := newLoadManager(cfg, w, opts.Caps)
	if err != nil {
		return err
	}
	// cl[i] is the client with global ID opts.Lo+i: the range's clients,
	// positioned relative to whatever slice of the population this world
	// materialized.
	cl := w.Population.Clients[opts.Lo-base:]
	n := opts.Hi - opts.Lo
	days := cfg.Days

	// Per-client-day ingress sites, packed flat (client-major). The full
	// [][]bgp.Assignment schedule RunWorld materializes is ~48 bytes per
	// client-day — gigabytes at paper scale — while the ingress alone is
	// one SiteID, and Router.Assign plus the fault rewrite recompute the
	// rest per day, value-identically to the batch path.
	scheds := make([]topology.SiteID, n*days)
	// prevFE[i] is client i's serving front-end at the end of the previous
	// day (the base assignment before day 0), carried across days for the
	// passive log's switch records.
	prevFE := make([]topology.SiteID, n)
	parallelFor(n, cfg.Workers, func(i int) {
		c := cl[i]
		rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
		w.Router.IngressScheduleInto(rc, scheds[i*days:(i+1)*days])
		prevFE[i] = w.Router.Assign(rc, w.Router.BaseIngress(rc)).FrontEnd
	})

	// Per-day output buffers, reused across days. The beacon buffer grows
	// to the busiest day seen and stays there.
	passive := make([]logs.DayRecord, n)
	assigns := make([]bgp.Assignment, n)
	counts := make([]int32, n)
	offs := make([]int32, n)
	var beacons []beacon.Measurement
	trafficSeed := xrand.DeriveSeedL(cfg.Seed, labelTraffic)
	// The worker bodies are hoisted out of the day loop and capture the
	// loop state (day, weekend, beacons) by reference: a closure literal
	// inside the loop would allocate once per day, which the steady-state
	// contract forbids.
	var day int
	var weekend bool
	logDay := func(i int) {
		c := cl[i]
		rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
		a := w.Router.Assign(rc, scheds[i*days+day])
		if !w.Faults.Empty() {
			a = w.Faults.Rewrite(rc, day, a, w.Router)
		}
		assigns[i] = a
		q := c.QueriesOnDay(trafficSeed, day, weekend, cfg.QueriesPerVolume)
		if !w.Faults.Empty() {
			q = w.Faults.ScaleQueries(c.Region, day, q)
		}
		passive[i] = logs.DayRecord{
			ClientID:     c.ID,
			Day:          day,
			FrontEnd:     a.FrontEnd,
			Switched:     w.Router.SwitchedOnDay(rc, day),
			PrevFrontEnd: prevFE[i],
			Queries:      q,
		}
		// Only this worker touches index i today, so the end-of-day
		// front-end commits as soon as the record has the old one. With
		// an active manager the commit waits for applyLoad: the day's
		// effective front-end is not known until the policy has run.
		if mgr == nil {
			prevFE[i] = a.FrontEnd
		}
		if q > 0 {
			counts[i] = int32(beaconCount(cfg, c.ID, day, q))
		} else {
			counts[i] = 0
		}
	}
	// applyLoad re-routes one client's day through the active policy:
	// passive records move to the effective serving front-end while
	// assigns keeps the anycast path (beacons measure anycast and the
	// per-front-end unicast targets regardless of which front-end served
	// the page that carried them). Allocated once, outside the day loop.
	applyLoad := func(i int) {
		a := assigns[i]
		fe := mgr.route(cfg.Seed, cl[i].ID, day, a, passive[i].Queries)
		if fe != a.FrontEnd {
			passive[i].FrontEnd = fe
		}
		prevFE[i] = fe
	}
	runBeacons := func(i int) {
		nb := int(counts[i])
		if nb == 0 {
			return
		}
		c := cl[i]
		out := beacons[offs[i] : int(offs[i])+nb]
		for k := 0; k < nb; k++ {
			qid := xrand.DeriveSeedL3(cfg.Seed, labelQID, c.ID, uint64(day), uint64(k))
			out[k] = w.Executor.Run(c, day, assigns[i], qid)
		}
	}
	for day = 0; day < days; day++ {
		weekend = w.Router.IsWeekend(day)
		parallelFor(n, cfg.Workers, logDay)
		var utils []SiteUtil
		if mgr != nil {
			// Load management runs between logging and beacons: the
			// controller needs the whole day's offered load, its decision
			// re-routes the day's queries, and the effective per-site
			// volumes are snapshotted for the day's output.
			demand := mgr.demandFrom(passive, assigns)
			if opts.ExchangeDemand != nil {
				global, err := opts.ExchangeDemand(day, demand)
				if err != nil {
					return err
				}
				demand = global
			}
			mgr.policyStep(demand)
			parallelFor(n, cfg.Workers, applyLoad)
			utils = mgr.observeServed(passive)
		}
		// Exclusive prefix sum: client i's beacons start at offs[i], so
		// the execution pass writes disjoint ranges of the shared buffer.
		var total int32
		for i := range counts {
			offs[i] = total
			total += counts[i]
		}
		if int(total) > cap(beacons) {
			beacons = make([]beacon.Measurement, total)
		} else {
			beacons = beacons[:total]
		}
		if total > 0 {
			parallelFor(n, cfg.Workers, runBeacons)
		}
		if err := fn(DayResult{Day: day, Beacons: beacons, Passive: passive, Assignments: assigns, Utilization: utils}); err != nil {
			return err
		}
	}
	return nil
}
