package sim

import (
	"fmt"
	"runtime"
	"sync"

	"anycastcdn/internal/beacon"
	"anycastcdn/internal/bgp"
	"anycastcdn/internal/clients"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/xrand"
)

// DayResult is one simulated day's output, delivered in day order.
type DayResult struct {
	Day int
	// Beacons holds the day's active measurements (client order).
	Beacons []beacon.Measurement
	// Passive holds the day's per-client log records (client order).
	Passive []logs.DayRecord
}

// Stream simulates cfg.Days days, invoking fn once per day with that
// day's outputs and retaining only one day in memory — the mode to use
// for paper-scale runs (hundreds of thousands of prefixes) whose full
// measurement set would not fit.
//
// The stream is identical, measurement for measurement, to the equivalent
// Run: both derive from the same per-entity substreams.
func Stream(cfg Config, fn func(DayResult) error) error {
	w, err := BuildWorld(cfg)
	if err != nil {
		return err
	}
	return StreamWorld(cfg, w, fn)
}

// StreamWorld streams over an already-built world.
func StreamWorld(cfg Config, w *World, fn func(DayResult) error) error {
	if fn == nil {
		return fmt.Errorf("sim: nil stream function")
	}
	n := len(w.Population.Clients)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Assignment schedules are small; precompute them in parallel. The
	// effective schedule already has any fault scenario applied, exactly
	// as Run's per-client path does.
	schedules := make([][]bgp.Assignment, n)
	parallelFor(n, workers, func(i int) {
		c := w.Population.Clients[i]
		rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
		schedules[i] = effectiveSchedule(cfg, w, rc)
	})

	type clientDay struct {
		passive logs.DayRecord
		beacons []beacon.Measurement
	}
	buf := make([]clientDay, n)
	for day := 0; day < cfg.Days; day++ {
		parallelFor(n, workers, func(i int) {
			c := w.Population.Clients[i]
			buf[i] = simulateClientDay(cfg, w, c, schedules[i], day)
		})
		// Count-then-fill: sizes are known once the workers finish, so the
		// day's output slices are allocated exactly once.
		nBeacons := 0
		for i := range buf {
			nBeacons += len(buf[i].beacons)
		}
		out := DayResult{
			Day:     day,
			Passive: make([]logs.DayRecord, 0, n),
			Beacons: make([]beacon.Measurement, 0, nBeacons),
		}
		for i := range buf {
			out.Passive = append(out.Passive, buf[i].passive)
			out.Beacons = append(out.Beacons, buf[i].beacons...)
			buf[i] = clientDay{}
		}
		if err := fn(out); err != nil {
			return err
		}
	}
	return nil
}

// simulateClientDay is the one-day slice of simulateClient; the two must
// stay in lockstep so Stream and Run emit identical data.
func simulateClientDay(cfg Config, w *World, c clients.Client, sched []bgp.Assignment, day int) (out struct {
	passive logs.DayRecord
	beacons []beacon.Measurement
}) {
	rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
	weekend := w.Router.IsWeekend(day)
	q := c.QueriesOnDay(xrand.DeriveSeedL(cfg.Seed, labelTraffic), day, weekend, cfg.QueriesPerVolume)
	prevFE := sched[day].FrontEnd
	if day > 0 {
		prevFE = sched[day-1].FrontEnd
	} else {
		base := w.Router.Assign(rc, w.Router.BaseIngress(rc))
		prevFE = base.FrontEnd
	}
	out.passive = logs.DayRecord{
		ClientID:     c.ID,
		Day:          day,
		FrontEnd:     sched[day].FrontEnd,
		Switched:     w.Router.SwitchedOnDay(rc, day),
		PrevFrontEnd: prevFE,
		Queries:      q,
	}
	if q == 0 {
		return out
	}
	nb := beaconCount(cfg, c.ID, day, q)
	if nb > 0 {
		out.beacons = make([]beacon.Measurement, 0, nb)
	}
	for k := 0; k < nb; k++ {
		qid := xrand.DeriveSeedL3(cfg.Seed, labelQID, c.ID, uint64(day), uint64(k))
		out.beacons = append(out.beacons, w.Executor.Run(c, day, sched[day], qid))
	}
	return out
}

// parallelFor runs fn(i) for i in [0, n) across the given worker count.
func parallelFor(n, workers int, fn func(i int)) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
