package sim_test

import (
	"testing"

	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

// TestReplayIdentical is the invariant the nondeterminism analyzer
// (internal/analysis) exists to protect: two runs with the same seed must
// be bit-for-bit identical — beacons, passive logs, and day-by-day anycast
// assignments — regardless of the parallel worker schedule.
func TestReplayIdentical(t *testing.T) {
	cfg := testutil.SmallConfig(21)
	cfg.Workers = 4
	a, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if a.TotalBeacons() != b.TotalBeacons() {
		t.Fatalf("beacon totals differ across replays: %d vs %d", a.TotalBeacons(), b.TotalBeacons())
	}
	for day := range a.Beacons {
		if len(a.Beacons[day]) != len(b.Beacons[day]) {
			t.Fatalf("day %d beacon count differs across replays", day)
		}
		for i := range a.Beacons[day] {
			if a.Beacons[day][i] != b.Beacons[day][i] {
				t.Fatalf("day %d beacon %d differs across replays:\n%+v\nvs\n%+v",
					day, i, a.Beacons[day][i], b.Beacons[day][i])
			}
		}
	}

	if a.Passive.Len() != b.Passive.Len() {
		t.Fatalf("passive log lengths differ across replays: %d vs %d", a.Passive.Len(), b.Passive.Len())
	}
	for i := 0; i < a.Passive.Len(); i++ {
		if a.Passive.At(i) != b.Passive.At(i) {
			t.Fatalf("passive record %d differs across replays:\n%+v\nvs\n%+v", i, a.Passive.At(i), b.Passive.At(i))
		}
	}

	if len(a.Assignments) != len(b.Assignments) {
		t.Fatalf("assignment counts differ across replays")
	}
	for c := range a.Assignments {
		for d := range a.Assignments[c] {
			if a.Assignments[c][d] != b.Assignments[c][d] {
				t.Fatalf("assignment for client %d day %d differs across replays", c, d)
			}
		}
	}
}
