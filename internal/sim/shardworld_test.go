package sim_test

import (
	"testing"

	"anycastcdn/internal/load"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

// TestBuildShardWorldStreamsIdentically is the memory-scaling contract of
// the distributed layer: a world built for just [lo, hi) must stream
// that range byte-identically to the full build — passive rows,
// assignments, beacons (whose candidate sets depend on resolver-ID-keyed
// geolocation draws, the part a naive shard build gets wrong) and, with
// a load manager and shared capacities, utilization snapshots.
func TestBuildShardWorldStreamsIdentically(t *testing.T) {
	cfg := managedConfig(t, 11, load.FastRoute)
	full, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(full.Population.Clients)
	lo, hi := n/3, n-n/4

	// Managed runs need fleet-derived capacities on both sides: a shard
	// world cannot derive the full-population matrix locally, which is
	// exactly why the distributed protocol ships capacities.
	m, err := sim.ShardLoadMatrix(cfg, full, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	caps, err := sim.CapsFromLoadMatrix(cfg, full, m)
	if err != nil {
		t.Fatal(err)
	}

	shardW, err := sim.BuildShardWorld(cfg, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(shardW.Population.Base); got != lo {
		t.Fatalf("shard world base %d, want %d", got, lo)
	}
	if got := len(shardW.Population.Clients); got != hi-lo {
		t.Fatalf("shard world holds %d clients, want %d", got, hi-lo)
	}
	if shardW.Population.TotalVolume != full.Population.TotalVolume {
		t.Fatalf("shard world TotalVolume %v, want %v",
			shardW.Population.TotalVolume, full.Population.TotalVolume)
	}
	for i, c := range shardW.Population.Clients {
		if c != full.Population.Clients[lo+i] {
			t.Fatalf("shard client %d differs from full client %d", i, lo+i)
		}
	}
	if lr, lf := len(shardW.Mapping.Resolvers), len(full.Mapping.Resolvers); lr != lf {
		t.Fatalf("shard world interned %d resolvers, full build %d", lr, lf)
	}

	opts := sim.ShardOpts{Lo: lo, Hi: hi, Caps: caps}
	ref := capture(cfg.Days)
	if err := sim.StreamShard(cfg, full, opts, ref.observe); err != nil {
		t.Fatal(err)
	}
	got := capture(cfg.Days)
	if err := sim.StreamShard(cfg, shardW, opts, got.observe); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < cfg.Days; d++ {
		for i := range ref.passive[d] {
			if got.passive[d][i] != ref.passive[d][i] {
				t.Fatalf("day %d passive %d differs:\n%+v\nvs\n%+v",
					d, i, got.passive[d][i], ref.passive[d][i])
			}
			if got.assigns[d][i] != ref.assigns[d][i] {
				t.Fatalf("day %d assignment %d differs", d, i)
			}
		}
		if len(got.beacons[d]) != len(ref.beacons[d]) {
			t.Fatalf("day %d: %d beacons, want %d", d, len(got.beacons[d]), len(ref.beacons[d]))
		}
		for i := range ref.beacons[d] {
			if got.beacons[d][i] != ref.beacons[d][i] {
				t.Fatalf("day %d beacon %d differs:\n%+v\nvs\n%+v",
					d, i, got.beacons[d][i], ref.beacons[d][i])
			}
		}
		for i := range ref.utils[d] {
			if got.utils[d][i] != ref.utils[d][i] {
				t.Fatalf("day %d utilization %d differs", d, i)
			}
		}
	}
}

// TestBuildShardWorldValidates pins range validation and the guards that
// keep a shard world off the paths that assume a full population.
func TestBuildShardWorldValidates(t *testing.T) {
	cfg := testutil.TinyConfig(7)
	for _, b := range [][2]int{{-1, 5}, {5, 5}, {5, 4}, {0, cfg.Prefixes + 1}} {
		if _, err := sim.BuildShardWorld(cfg, b[0], b[1]); err == nil {
			t.Errorf("shard world range [%d, %d) accepted", b[0], b[1])
		}
	}
	w, err := sim.BuildShardWorld(cfg, 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunWorld(cfg, w); err == nil {
		t.Error("batch RunWorld accepted a shard world")
	}
	fn := func(sim.DayResult) error { return nil }
	// Ranges poking outside the materialized window must be rejected.
	for _, b := range [][2]int{{0, 300}, {100, 301}, {99, 200}} {
		if err := sim.StreamShard(cfg, w, sim.ShardOpts{Lo: b[0], Hi: b[1]}, fn); err == nil {
			t.Errorf("stream range [%d, %d) accepted over world [100, 300)", b[0], b[1])
		}
	}
	// StreamWorld over a shard world streams exactly its range.
	days := 0
	if err := sim.StreamWorld(cfg, w, func(d sim.DayResult) error {
		if len(d.Passive) != 200 {
			t.Fatalf("day %d streamed %d records, want the shard's 200", d.Day, len(d.Passive))
		}
		days++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if days != cfg.Days {
		t.Fatalf("streamed %d days, want %d", days, cfg.Days)
	}
}
