// Package sim orchestrates the month-scale simulation that stands in for
// the paper's production datasets: it builds the world (deployment, ISPs,
// clients, LDNS mapping), walks the simulated days, and emits the two
// datasets the paper's analysis consumes — beacon measurements (active,
// §3.2.2) and passive per-day request logs (§3.2.1).
package sim

import (
	"fmt"

	"anycastcdn/internal/beacon"
	"anycastcdn/internal/bgp"
	"anycastcdn/internal/cdn"
	"anycastcdn/internal/clients"
	"anycastcdn/internal/dns"
	"anycastcdn/internal/faults"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/latency"
	"anycastcdn/internal/load"
	"anycastcdn/internal/logs"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// Config is the top-level simulation configuration.
type Config struct {
	Seed uint64
	// Prefixes is the number of client /24s.
	Prefixes int
	// Days is the simulated study length (the paper covers April 2015,
	// starting Wednesday the 1st).
	Days int
	// QueriesPerVolume converts a client's relative volume to queries/day.
	QueriesPerVolume float64
	// BeaconSampleRate is the fraction of queries that carry the beacon
	// ("a small fraction of search response pages").
	BeaconSampleRate float64
	// MaxBeaconsPerClientDay caps beacon executions per client-day.
	MaxBeaconsPerClientDay int
	// CandidateCount is the authoritative DNS candidate set size.
	CandidateCount int
	// Deployment selects a front-end density preset (cdn.Preset); empty
	// means the default 64-site deployment.
	Deployment cdn.Preset
	// GeoMedianErrKm / GeoGrossRate / GeoGrossKm configure the
	// geolocation database error model used by the authority.
	GeoMedianErrKm units.Kilometers
	GeoGrossRate   float64
	GeoGrossKm     units.Kilometers
	// Routing, Latency, ISP, DNS and client sub-configurations. Zero
	// values are replaced by defaults derived from Seed.
	Routing *bgp.Config
	Latency *latency.Config
	ISPs    *topology.ISPModelConfig
	Mapper  *dns.MapperConfig
	// Workers bounds simulation parallelism. 0 means GOMAXPROCS; Validate
	// rejects negative values. RunWorld and StreamWorld share one worker
	// pool (parallelFor), so the rule is identical on every parallel path:
	// any non-positive count that reaches the pool behaves like 0.
	Workers int
	// Scenario optionally injects deterministic fault events (front-end
	// drains, BGP flaps, LDNS outages, latency inflation) into the run;
	// see internal/faults. nil and the empty scenario both produce runs
	// byte-identical to a fault-free simulation.
	Scenario *faults.Scenario
	// LoadManager optionally activates load-aware anycast in the day
	// loop: per-front-end capacities are derived from the fault-free
	// base catchment, each day's offered load drives the configured
	// overload policy (static observation, FastRoute spillover, or naive
	// withdrawal), and per-site utilization surfaces in DayResult and
	// Result. nil deactivates the subsystem entirely; see internal/load.
	LoadManager *load.ManagerConfig
}

// Validate checks the configuration for values that would otherwise flow
// silently into a nonsensical world build.
func (cfg Config) Validate() error {
	if cfg.Prefixes <= 0 {
		return fmt.Errorf("sim: non-positive prefix count %d", cfg.Prefixes)
	}
	if cfg.Days <= 0 {
		return fmt.Errorf("sim: non-positive day count %d", cfg.Days)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("sim: negative worker count %d (use 0 for GOMAXPROCS)", cfg.Workers)
	}
	if cfg.QueriesPerVolume < 0 {
		return fmt.Errorf("sim: negative queries-per-volume %v", cfg.QueriesPerVolume)
	}
	if cfg.BeaconSampleRate < 0 || cfg.BeaconSampleRate > 1 {
		return fmt.Errorf("sim: beacon sample rate %v outside [0, 1]", cfg.BeaconSampleRate)
	}
	if cfg.MaxBeaconsPerClientDay < 0 {
		return fmt.Errorf("sim: negative beacon cap %d", cfg.MaxBeaconsPerClientDay)
	}
	if cfg.Scenario != nil {
		if err := cfg.Scenario.Validate(); err != nil {
			return err
		}
		for i, e := range cfg.Scenario.Events {
			if e.Day >= cfg.Days {
				return fmt.Errorf("sim: scenario event %d (%s %s) starts on day %d but the simulation ends after day %d",
					i, e.Kind, e.Target, e.Day, cfg.Days-1)
			}
		}
	}
	if cfg.LoadManager != nil {
		if err := cfg.LoadManager.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// DefaultConfig returns the experiment-scale configuration: large enough
// for stable distributions, small enough to run in seconds.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                   seed,
		Prefixes:               8000,
		Days:                   30,
		QueriesPerVolume:       22,
		BeaconSampleRate:       0.10,
		MaxBeaconsPerClientDay: 100,
		CandidateCount:         10,
		GeoMedianErrKm:         25,
		GeoGrossRate:           0.01,
		GeoGrossKm:             4000,
	}
}

// World is the built simulation environment.
type World struct {
	Metros     []geo.Metro
	Deployment *cdn.Deployment
	ISPs       *topology.ISPModel
	Population *clients.Population
	Mapping    *dns.Mapping
	Router     *bgp.Router
	Authority  *dns.Authority
	Latency    *latency.Model
	Executor   *beacon.Executor
	// Faults is the compiled fault injector (nil when Config.Scenario is
	// nil). Install a custom one with InstallFaults.
	Faults *faults.Injector
}

// InstallFaults wires a fault injector into the world and its beacon
// executor; pass nil to remove injection. Replaces any injector compiled
// from Config.Scenario by BuildWorld.
func (w *World) InstallFaults(inj *faults.Injector) {
	w.Faults = inj
	w.Executor.Faults = inj
}

// BuildWorld constructs the environment for a config.
func BuildWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return buildWorldRange(cfg, 0, cfg.Prefixes)
}

// BuildShardWorld constructs the environment for one shard of a
// distributed run: identical to BuildWorld in every shared component, but
// holding only the clients (and client→LDNS assignments) of [lo, hi) —
// the change that keeps a worker's resident set proportional to its shard
// rather than the whole population. The full population is still walked
// transiently: the generator's sequential streams must advance past every
// client, the population's TotalVolume covers all of it, and the LDNS
// resolver catalog is interned in full-population order so resolver IDs —
// which key the authority's geolocation draws — match the single-process
// build exactly. StreamShard over the result, with the same [lo, hi),
// reproduces the corresponding slice of StreamWorld record for record.
func BuildShardWorld(cfg Config, lo, hi int) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lo < 0 || hi <= lo || hi > cfg.Prefixes {
		return nil, fmt.Errorf("sim: shard world range [%d, %d) outside population of %d", lo, hi, cfg.Prefixes)
	}
	return buildWorldRange(cfg, lo, hi)
}

// buildWorldRange is the shared builder behind BuildWorld (the full
// range) and BuildShardWorld. cfg must already be validated.
func buildWorldRange(cfg Config, lo, hi int) (*World, error) {
	dep, err := cdn.BuildPreset(cfg.Deployment)
	if err != nil {
		return nil, fmt.Errorf("sim: building deployment: %w", err)
	}
	metros := geo.World()

	ispCfg := topology.DefaultISPModelConfig(xrand.DeriveSeed(cfg.Seed, "isps"))
	if cfg.ISPs != nil {
		ispCfg = *cfg.ISPs
	}
	isps := topology.BuildISPs(dep.Backbone, metros, ispCfg)

	mapCfg := dns.DefaultMapperConfig(xrand.DeriveSeed(cfg.Seed, "ldns"))
	if cfg.Mapper != nil {
		mapCfg = *cfg.Mapper
	}
	// One fused walk builds both range-limited structures: the generator
	// visits every client transiently and the mapper observes each one, so
	// a shard build pays one pass of draws, not two, and materializes
	// nothing outside [lo, hi).
	rm, err := dns.NewRangeMapper(isps, metros, mapCfg, uint64(lo), uint64(hi))
	if err != nil {
		return nil, fmt.Errorf("sim: mapping LDNS: %w", err)
	}
	pop, err := clients.GenerateRange(metros, isps,
		clients.DefaultConfig(xrand.DeriveSeed(cfg.Seed, "clients"), cfg.Prefixes), lo, hi, rm.Observe)
	if err != nil {
		return nil, fmt.Errorf("sim: generating clients: %w", err)
	}
	mapping := rm.Mapping()

	routeCfg := bgp.DefaultConfig()
	if cfg.Routing != nil {
		routeCfg = *cfg.Routing
	}
	router := bgp.NewRouter(dep.Backbone, isps, xrand.DeriveSeed(cfg.Seed, "bgp"), routeCfg)

	latCfg := latency.DefaultConfig()
	if cfg.Latency != nil {
		latCfg = *cfg.Latency
	}
	model := latency.NewModel(xrand.DeriveSeed(cfg.Seed, "latency"), latCfg)

	geoDB := geo.NewDB(xrand.DeriveSeed(cfg.Seed, "geodb"),
		cfg.GeoMedianErrKm, cfg.GeoGrossRate, cfg.GeoGrossKm)
	auth := dns.NewAuthority(dep, geoDB, cfg.CandidateCount)

	exec := &beacon.Executor{
		Router:    router,
		Authority: auth,
		Latency:   model,
		Mapping:   mapping,
		Seed:      xrand.DeriveSeed(cfg.Seed, "beacon"),
	}
	w := &World{
		Metros:     metros,
		Deployment: dep,
		ISPs:       isps,
		Population: pop,
		Mapping:    mapping,
		Router:     router,
		Authority:  auth,
		Latency:    model,
		Executor:   exec,
	}
	if cfg.Scenario != nil {
		inj, err := faults.NewInjector(*cfg.Scenario, dep, mapping, metros)
		if err != nil {
			return nil, fmt.Errorf("sim: compiling fault scenario: %w", err)
		}
		w.InstallFaults(inj)
	}
	return w, nil
}

// BuildAnalysisWorld constructs the population-free slice of the world:
// deployment, ISPs, router, latency model, geolocation database and
// authority — everything the experiment aggregators and report renderers
// consult, and nothing that scales with Prefixes. The distributed
// coordinator uses it to merge and render shard partials without paying
// for (or holding) a multi-million-client population; the sub-seeds are
// the same ones BuildWorld derives, so every shared component is
// identical to the workers' full builds. Population, Mapping, Executor
// and Faults are nil: the returned world cannot simulate days.
func BuildAnalysisWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dep, err := cdn.BuildPreset(cfg.Deployment)
	if err != nil {
		return nil, fmt.Errorf("sim: building deployment: %w", err)
	}
	metros := geo.World()

	ispCfg := topology.DefaultISPModelConfig(xrand.DeriveSeed(cfg.Seed, "isps"))
	if cfg.ISPs != nil {
		ispCfg = *cfg.ISPs
	}
	isps := topology.BuildISPs(dep.Backbone, metros, ispCfg)

	routeCfg := bgp.DefaultConfig()
	if cfg.Routing != nil {
		routeCfg = *cfg.Routing
	}
	router := bgp.NewRouter(dep.Backbone, isps, xrand.DeriveSeed(cfg.Seed, "bgp"), routeCfg)

	latCfg := latency.DefaultConfig()
	if cfg.Latency != nil {
		latCfg = *cfg.Latency
	}
	model := latency.NewModel(xrand.DeriveSeed(cfg.Seed, "latency"), latCfg)

	geoDB := geo.NewDB(xrand.DeriveSeed(cfg.Seed, "geodb"),
		cfg.GeoMedianErrKm, cfg.GeoGrossRate, cfg.GeoGrossKm)
	auth := dns.NewAuthority(dep, geoDB, cfg.CandidateCount)

	return &World{
		Metros:     metros,
		Deployment: dep,
		ISPs:       isps,
		Router:     router,
		Authority:  auth,
		Latency:    model,
	}, nil
}

// Result is the output of a simulation run.
type Result struct {
	Cfg   Config
	World *World
	// Beacons holds the active measurements, indexed by day.
	Beacons [][]beacon.Measurement
	// Passive is the per-client-day production log.
	Passive *logs.Log
	// Assignments[i] is client i's per-day anycast assignment.
	Assignments [][]bgp.Assignment
	// Utilization[d] is day d's per-front-end load picture; non-nil only
	// when Cfg.LoadManager is active.
	Utilization [][]SiteUtil
}

// Run builds the world and simulates cfg.Days days.
func Run(cfg Config) (*Result, error) {
	w, err := BuildWorld(cfg)
	if err != nil {
		return nil, err
	}
	return RunWorld(cfg, w)
}

// Per-run substream labels, hashed once (see xrand.Label).
var (
	labelTraffic     = xrand.NewLabel("traffic")
	labelQID         = xrand.NewLabel("qid")
	labelBeaconCount = xrand.NewLabel("beacon-count")
	labelLoadU       = xrand.NewLabel("load-u")
)

// RunWorld simulates over an already-built world. The run is
// deterministic: all randomness derives from per-entity substreams, so the
// parallel schedule cannot affect results.
//
// The reduce is direct-write. Beacon counts and passive rows are
// deterministic functions of the config, so every output position is
// known before the expensive work runs: pass one fills the columnar
// passive log at exact indices (client-major: client i's day-d record is
// row i*Days+d) and records per-client-day beacon counts; a serial
// prefix-sum pass turns the counts into exact offsets within each day's
// beacon slice; pass two executes beacons straight into their final
// positions. Workers write disjoint indices of shared outputs, and no
// per-client intermediate buffers exist — the allocation profile is the
// outputs themselves plus two int32 index arrays.
//
// With an active LoadManager the run delegates to the streaming day loop
// (load management is inherently day-serial: a day's controller step
// needs the whole day's offered load) and materializes its outputs —
// byte-identical to consuming StreamWorld directly.
func RunWorld(cfg Config, w *World) (*Result, error) {
	if w.Population.Base != 0 {
		return nil, fmt.Errorf("sim: batch run over a shard world (clients start at %d); use StreamShard", w.Population.Base)
	}
	if cfg.LoadManager != nil {
		return runWorldViaStream(cfg, w)
	}
	n := len(w.Population.Clients)
	days := cfg.Days
	res := &Result{
		Cfg:         cfg,
		World:       w,
		Beacons:     make([][]beacon.Measurement, days),
		Passive:     &logs.Log{},
		Assignments: make([][]bgp.Assignment, n),
	}
	res.Passive.Extend(n * days)
	// counts[i*days+d] is client i's beacon count on day d; offs is its
	// exclusive prefix sum within day d in client order, i.e. where client
	// i's beacons start in res.Beacons[d].
	counts := make([]int32, n*days)
	offs := make([]int32, n*days)
	trafficSeed := xrand.DeriveSeedL(cfg.Seed, labelTraffic)
	parallelFor(n, cfg.Workers, func(i int) {
		c := w.Population.Clients[i]
		rc := bgp.Client{PrefixID: c.ID, Point: c.Point, ISP: c.ISP}
		sched := effectiveSchedule(cfg, w, rc)
		res.Assignments[i] = sched
		prevFE := w.Router.Assign(rc, w.Router.BaseIngress(rc)).FrontEnd
		for day := 0; day < days; day++ {
			if day > 0 {
				prevFE = sched[day-1].FrontEnd
			}
			q := c.QueriesOnDay(trafficSeed, day, w.Router.IsWeekend(day), cfg.QueriesPerVolume)
			if !w.Faults.Empty() {
				q = w.Faults.ScaleQueries(c.Region, day, q)
			}
			res.Passive.Set(i*days+day, logs.DayRecord{
				ClientID:     c.ID,
				Day:          day,
				FrontEnd:     sched[day].FrontEnd,
				Switched:     w.Router.SwitchedOnDay(rc, day),
				PrevFrontEnd: prevFE,
				Queries:      q,
			})
			if q > 0 {
				counts[i*days+day] = int32(beaconCount(cfg, c.ID, day, q))
			}
		}
	})
	dayTotals := make([]int32, days)
	for i := 0; i < n; i++ {
		for d := 0; d < days; d++ {
			offs[i*days+d] = dayTotals[d]
			dayTotals[d] += counts[i*days+d]
		}
	}
	for d, total := range dayTotals {
		if total > 0 {
			res.Beacons[d] = make([]beacon.Measurement, total)
		}
	}
	parallelFor(n, cfg.Workers, func(i int) {
		c := w.Population.Clients[i]
		sched := res.Assignments[i]
		for day := 0; day < days; day++ {
			nb := int(counts[i*days+day])
			if nb == 0 {
				continue
			}
			off := int(offs[i*days+day])
			out := res.Beacons[day][off : off+nb]
			for k := 0; k < nb; k++ {
				qid := xrand.DeriveSeedL3(cfg.Seed, labelQID, c.ID, uint64(day), uint64(k))
				out[k] = w.Executor.Run(c, day, sched[day], qid)
			}
		}
	})
	return res, nil
}

// runWorldViaStream materializes a streaming run into a batch Result.
// It is the batch path whenever load management is active, which makes
// Run-vs-Stream byte-identity for managed runs structural rather than
// something two parallel implementations have to maintain.
func runWorldViaStream(cfg Config, w *World) (*Result, error) {
	n := len(w.Population.Clients)
	days := cfg.Days
	res := &Result{
		Cfg:         cfg,
		World:       w,
		Beacons:     make([][]beacon.Measurement, days),
		Passive:     &logs.Log{},
		Assignments: make([][]bgp.Assignment, n),
		Utilization: make([][]SiteUtil, days),
	}
	res.Passive.Extend(n * days)
	flat := make([]bgp.Assignment, n*days)
	for i := range res.Assignments {
		res.Assignments[i] = flat[i*days : (i+1)*days : (i+1)*days]
	}
	err := StreamWorld(cfg, w, func(d DayResult) error {
		day := d.Day
		for i, r := range d.Passive {
			res.Passive.Set(i*days+day, r)
		}
		for i, a := range d.Assignments {
			res.Assignments[i][day] = a
		}
		if len(d.Beacons) > 0 {
			res.Beacons[day] = append([]beacon.Measurement(nil), d.Beacons...)
		}
		res.Utilization[day] = append([]SiteUtil(nil), d.Utilization...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// effectiveSchedule is the per-day anycast assignment a client actually
// experiences: the BGP schedule with any active fault events applied.
// With no injector (or an empty scenario) it is exactly the BGP schedule,
// value for value, which is what keeps fault-free runs byte-identical.
// Passive logs, beacon executions, and Result.Assignments all observe
// this effective schedule, so a drain or flap shows up as a catchment
// shift everywhere downstream.
func effectiveSchedule(cfg Config, w *World, rc bgp.Client) []bgp.Assignment {
	sched := w.Router.AssignmentSchedule(rc, cfg.Days)
	if !w.Faults.Empty() {
		for d := range sched {
			sched[d] = w.Faults.Rewrite(rc, d, sched[d], w.Router)
		}
	}
	return sched
}

// beaconCount draws how many of a client-day's queries carry the beacon.
// It draws from its own substream, so calling it twice for the same
// client-day (the count pass and the fill pass of simulateClient) returns
// the same value without perturbing any other stream.
func beaconCount(cfg Config, clientID uint64, day, queries int) int {
	expect := float64(queries) * cfg.BeaconSampleRate
	nb := int(expect)
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL2(cfg.Seed, labelBeaconCount, clientID, uint64(day)))
	if rs.Float64() < expect-float64(nb) {
		nb++
	}
	if cfg.MaxBeaconsPerClientDay > 0 && nb > cfg.MaxBeaconsPerClientDay {
		nb = cfg.MaxBeaconsPerClientDay
	}
	return nb
}

// Volumes returns the client→query-volume map used for weighted analyses.
func (r *Result) Volumes() map[uint64]float64 {
	out := make(map[uint64]float64, len(r.World.Population.Clients))
	for _, c := range r.World.Population.Clients {
		out[c.ID] = c.Volume
	}
	return out
}

// TotalBeacons returns the number of beacon executions in the run.
func (r *Result) TotalBeacons() int {
	n := 0
	for _, day := range r.Beacons {
		n += len(day)
	}
	return n
}
