package sim_test

import (
	"testing"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

func TestBuildWorldErrors(t *testing.T) {
	cfg := testutil.SmallConfig(1)
	cfg.Prefixes = 0
	if _, err := sim.BuildWorld(cfg); err == nil {
		t.Error("zero prefixes should fail")
	}
	cfg = testutil.SmallConfig(1)
	cfg.Days = 0
	if _, err := sim.BuildWorld(cfg); err == nil {
		t.Error("zero days should fail")
	}
}

func TestRunShape(t *testing.T) {
	res := testutil.SmallResult(t)
	cfg := res.Cfg
	if len(res.Beacons) != cfg.Days {
		t.Fatalf("beacon days = %d, want %d", len(res.Beacons), cfg.Days)
	}
	if res.TotalBeacons() == 0 {
		t.Fatal("no beacons executed")
	}
	if res.Passive.Len() != cfg.Prefixes*cfg.Days {
		t.Fatalf("passive log has %d records, want %d", res.Passive.Len(), cfg.Prefixes*cfg.Days)
	}
	if len(res.Assignments) != cfg.Prefixes {
		t.Fatalf("assignments for %d clients, want %d", len(res.Assignments), cfg.Prefixes)
	}
	for day, ms := range res.Beacons {
		for _, m := range ms {
			if m.Day != day {
				t.Fatalf("measurement filed under day %d has Day=%d", day, m.Day)
			}
			if m.Anycast.RTTms <= 0 {
				t.Fatal("non-positive anycast RTT")
			}
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	cfg := testutil.SmallConfig(3)
	cfg.Workers = 1
	a, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBeacons() != b.TotalBeacons() {
		t.Fatalf("beacon counts differ across worker counts: %d vs %d",
			a.TotalBeacons(), b.TotalBeacons())
	}
	for day := range a.Beacons {
		if len(a.Beacons[day]) != len(b.Beacons[day]) {
			t.Fatalf("day %d beacon count differs", day)
		}
		for i := range a.Beacons[day] {
			if a.Beacons[day][i] != b.Beacons[day][i] {
				t.Fatalf("day %d measurement %d differs across worker counts", day, i)
			}
		}
	}
	for i := range a.Assignments {
		for d := range a.Assignments[i] {
			if a.Assignments[i][d] != b.Assignments[i][d] {
				t.Fatalf("assignment differs for client %d day %d", i, d)
			}
		}
	}
}

func TestSeedChangesResults(t *testing.T) {
	a, err := sim.Run(testutil.SmallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(testutil.SmallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBeacons() == b.TotalBeacons() {
		// Counts could coincide; compare an actual measurement stream.
		same := true
		for d := range a.Beacons {
			if len(a.Beacons[d]) != len(b.Beacons[d]) {
				same = false
				break
			}
			for i := range a.Beacons[d] {
				if a.Beacons[d][i] != b.Beacons[d][i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestVolumes(t *testing.T) {
	res := testutil.SmallResult(t)
	vols := res.Volumes()
	if len(vols) != len(res.World.Population.Clients) {
		t.Fatalf("volumes for %d clients, want %d", len(vols), len(res.World.Population.Clients))
	}
	for id, v := range vols {
		if v <= 0 {
			t.Fatalf("client %d has non-positive volume", id)
		}
	}
}

func TestPassiveLogConsistentWithAssignments(t *testing.T) {
	res := testutil.SmallResult(t)
	for c := res.Passive.Cursor(); c.Next(); {
		r := c.Record()
		if got := res.Assignments[r.ClientID][r.Day].FrontEnd; got != r.FrontEnd {
			t.Fatalf("passive log FE %d != assignment FE %d for client %d day %d",
				r.FrontEnd, got, r.ClientID, r.Day)
		}
		if !res.World.Deployment.Backbone.Site(r.FrontEnd).FrontEnd {
			t.Fatal("passive log references a non-front-end site")
		}
	}
}

func TestHeavyClientsRunMoreBeacons(t *testing.T) {
	res := testutil.SmallResult(t)
	perClient := map[uint64]int{}
	for _, day := range res.Beacons {
		for _, m := range day {
			perClient[m.ClientID]++
		}
	}
	// Compare the top-volume client against the bottom-volume client.
	var top, bottom uint64
	topV, bottomV := -1.0, 1e18
	for _, c := range res.World.Population.Clients {
		if c.Volume > topV {
			top, topV = c.ID, c.Volume
		}
		if c.Volume < bottomV {
			bottom, bottomV = c.ID, c.Volume
		}
	}
	if perClient[top] <= perClient[bottom] {
		t.Fatalf("top-volume client ran %d beacons, bottom %d; sampling should follow volume",
			perClient[top], perClient[bottom])
	}
}

func TestRegionsPresentInBeacons(t *testing.T) {
	res := testutil.SmallResult(t)
	regions := map[geo.Region]bool{}
	for _, day := range res.Beacons {
		for _, m := range day {
			regions[m.Region] = true
		}
	}
	if !regions[geo.RegionNorthAmerica] || !regions[geo.RegionEurope] {
		t.Fatalf("beacon regions missing NA/EU: %v", regions)
	}
}

func BenchmarkRunSmall(b *testing.B) {
	cfg := testutil.SmallConfig(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBuildWorldDeploymentPresets(t *testing.T) {
	cfg := testutil.SmallConfig(30)
	def, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Deployment = "sparse"
	sparse, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Deployment.NumFrontEnds() >= def.Deployment.NumFrontEnds() {
		t.Fatalf("sparse deployment (%d FEs) not smaller than default (%d)",
			sparse.Deployment.NumFrontEnds(), def.Deployment.NumFrontEnds())
	}
	cfg.Deployment = "nonsense"
	if _, err := sim.BuildWorld(cfg); err == nil {
		t.Fatal("unknown preset should fail")
	}
}
