package sim_test

import (
	"runtime"
	"testing"

	"anycastcdn/internal/faults"
	"anycastcdn/internal/load"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

// The load-aware replay pack: the load-management subsystem must preserve
// every replay guarantee the plain simulator gives — byte-identical
// reruns, worker-schedule independence, Run/Stream lockstep — and an
// inactive or no-op configuration must leave runs byte-identical to the
// unmanaged simulator.

// managedConfig is the shared surge + FastRoute configuration.
func managedConfig(t *testing.T, seed uint64, policy load.Policy) sim.Config {
	t.Helper()
	sc, err := faults.ParseScenario("surge south-america day=3 for=3 qps=6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testutil.SmallConfig(seed)
	cfg.Scenario = &sc
	cfg.LoadManager = &load.ManagerConfig{Policy: policy}
	return cfg
}

// sameResults fails on the first difference between two managed runs,
// including the per-day utilization snapshots.
func sameResults(t *testing.T, label string, a, b *sim.Result) {
	t.Helper()
	for day := range a.Beacons {
		if len(a.Beacons[day]) != len(b.Beacons[day]) {
			t.Fatalf("%s: day %d beacon counts differ", label, day)
		}
		for i := range a.Beacons[day] {
			if a.Beacons[day][i] != b.Beacons[day][i] {
				t.Fatalf("%s: day %d beacon %d differs:\n%+v\nvs\n%+v",
					label, day, i, a.Beacons[day][i], b.Beacons[day][i])
			}
		}
	}
	if a.Passive.Len() != b.Passive.Len() {
		t.Fatalf("%s: passive lengths differ: %d vs %d", label, a.Passive.Len(), b.Passive.Len())
	}
	for i := 0; i < a.Passive.Len(); i++ {
		if a.Passive.At(i) != b.Passive.At(i) {
			t.Fatalf("%s: passive record %d differs:\n%+v\nvs\n%+v", label, i, a.Passive.At(i), b.Passive.At(i))
		}
	}
	for c := range a.Assignments {
		for d := range a.Assignments[c] {
			if a.Assignments[c][d] != b.Assignments[c][d] {
				t.Fatalf("%s: assignment client %d day %d differs", label, c, d)
			}
		}
	}
	if len(a.Utilization) != len(b.Utilization) {
		t.Fatalf("%s: utilization day counts differ", label)
	}
	for d := range a.Utilization {
		if len(a.Utilization[d]) != len(b.Utilization[d]) {
			t.Fatalf("%s: day %d utilization site counts differ", label, d)
		}
		for i := range a.Utilization[d] {
			if a.Utilization[d][i] != b.Utilization[d][i] {
				t.Fatalf("%s: day %d site %d utilization differs:\n%+v\nvs\n%+v",
					label, d, i, a.Utilization[d][i], b.Utilization[d][i])
			}
		}
	}
}

func TestManagedReplayIdentical(t *testing.T) {
	for _, policy := range []load.Policy{load.Static, load.Withdraw, load.FastRoute} {
		cfg := managedConfig(t, 7, policy)
		cfg.Workers = 4
		a, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, policy.String(), a, b)
	}
}

// TestManagedWorkersInvariance pins schedule independence under
// load-aware routing: the FastRoute redirection draw comes from a
// (client, day)-keyed substream, so the worker count cannot change a
// single record.
func TestManagedWorkersInvariance(t *testing.T) {
	cfg := managedConfig(t, 7, load.FastRoute)
	cfg.Workers = 1
	serial, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = runtime.GOMAXPROCS(0)
	parallel, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "workers 1 vs max", serial, parallel)
}

// TestManagedRunMatchesStream extends Run/Stream lockstep to managed
// runs, utilization snapshots included.
func TestManagedRunMatchesStream(t *testing.T) {
	cfg := managedConfig(t, 7, load.FastRoute)
	full, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	days := 0
	err = sim.Stream(cfg, func(d sim.DayResult) error {
		for i := range d.Beacons {
			if d.Beacons[i] != full.Beacons[d.Day][i] {
				t.Fatalf("day %d beacon %d differs between Stream and Run", d.Day, i)
			}
		}
		for i := range d.Passive {
			if d.Passive[i] != full.Passive.At(i*cfg.Days+d.Day) {
				t.Fatalf("day %d passive %d differs between Stream and Run", d.Day, i)
			}
		}
		for i := range d.Assignments {
			if d.Assignments[i] != full.Assignments[i][d.Day] {
				t.Fatalf("day %d assignment %d differs between Stream and Run", d.Day, i)
			}
		}
		for i := range d.Utilization {
			if d.Utilization[i] != full.Utilization[d.Day][i] {
				t.Fatalf("day %d utilization %d differs between Stream and Run", d.Day, i)
			}
		}
		days++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if days != cfg.Days {
		t.Fatalf("stream delivered %d days, want %d", days, cfg.Days)
	}
}

// TestManagerWithoutSurgeIsByteIdentical: with no faults the derived
// capacities carry 1.4x headroom over every site's peak day, so the
// watermark controller never sheds and a FastRoute-managed run must be
// byte-identical (passive, beacons, assignments) to the unmanaged one —
// the subsystem only pays for itself when something is actually on fire.
func TestManagerWithoutSurgeIsByteIdentical(t *testing.T) {
	plain, err := sim.Run(testutil.SmallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []load.Policy{load.Static, load.FastRoute, load.Withdraw} {
		cfg := testutil.SmallConfig(1)
		cfg.LoadManager = &load.ManagerConfig{Policy: policy}
		managed, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < plain.Passive.Len(); i++ {
			if plain.Passive.At(i) != managed.Passive.At(i) {
				t.Fatalf("%s: passive record %d differs from unmanaged run:\n%+v\nvs\n%+v",
					policy, i, plain.Passive.At(i), managed.Passive.At(i))
			}
		}
		for day := range plain.Beacons {
			for i := range plain.Beacons[day] {
				if plain.Beacons[day][i] != managed.Beacons[day][i] {
					t.Fatalf("%s: day %d beacon %d differs from unmanaged run", policy, day, i)
				}
			}
		}
		for c := range plain.Assignments {
			for d := range plain.Assignments[c] {
				if plain.Assignments[c][d] != managed.Assignments[c][d] {
					t.Fatalf("%s: assignment client %d day %d differs from unmanaged run", policy, c, d)
				}
			}
		}
		// The manager still reports utilization even when it never acts.
		if len(managed.Utilization) != cfg.Days {
			t.Fatalf("%s: managed run has %d utilization days, want %d", policy, len(managed.Utilization), cfg.Days)
		}
	}
}

// TestFastRouteRedirectsOnlyFromSurge: before the surge window nothing
// sheds, so passive records sit on their anycast front-end; during it the
// overloaded region's records visibly move.
func TestFastRouteRedirectsOnlyFromSurge(t *testing.T) {
	cfg := managedConfig(t, 1, load.FastRoute)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	redirectsBefore, redirectsDuring := 0, 0
	for i := range res.Assignments {
		for d := 0; d < cfg.Days; d++ {
			r := res.Passive.At(i*cfg.Days + d)
			if r.FrontEnd == res.Assignments[i][d].FrontEnd {
				continue
			}
			if d < 3 {
				redirectsBefore++
			} else {
				redirectsDuring++
			}
		}
	}
	if redirectsBefore != 0 {
		t.Errorf("%d client-days redirected before the surge window", redirectsBefore)
	}
	if redirectsDuring == 0 {
		t.Error("no client-day redirected during or after the surge window")
	}
}
