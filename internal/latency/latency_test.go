package latency

import (
	"math"
	"testing"
	"testing/quick"

	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

func model() *Model { return NewModel(42, DefaultConfig()) }

func TestBaseRTTDeterministic(t *testing.T) {
	m := model()
	p := Path{PrefixID: 1, EntryKey: 2, AirKm: 1000}
	if m.BaseRTTms(p) != m.BaseRTTms(p) {
		t.Fatal("BaseRTTms not deterministic")
	}
	m2 := NewModel(42, DefaultConfig())
	if m.BaseRTTms(p) != m2.BaseRTTms(p) {
		t.Fatal("BaseRTTms differs across identical models")
	}
}

func TestBaseRTTScalesWithDistance(t *testing.T) {
	m := model()
	near := Path{PrefixID: 1, EntryKey: 2, AirKm: 100}
	far := Path{PrefixID: 1, EntryKey: 2, AirKm: 5000}
	if m.BaseRTTms(far) <= m.BaseRTTms(near) {
		t.Fatal("longer path should have higher RTT")
	}
	// Sanity: 1000 km with inflation <= 2 should be under ~40ms plus
	// last-mile; cross-ocean should be big.
	p := Path{PrefixID: 3, EntryKey: 4, AirKm: 1000}
	rtt := m.BaseRTTms(p)
	if rtt < 10 || rtt > 80 {
		t.Fatalf("1000 km RTT = %.1f ms, outside plausible range", rtt)
	}
}

func TestBaseRTTPositiveProperty(t *testing.T) {
	m := model()
	f := func(prefix, entry uint64, air, backbone float64) bool {
		p := Path{
			PrefixID:   prefix,
			EntryKey:   entry,
			AirKm:      units.Kilometers(math.Abs(math.Mod(air, 20000))),
			BackboneKm: units.Kilometers(math.Abs(math.Mod(backbone, 20000))),
		}
		return m.BaseRTTms(p) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackboneLegCheaperThanInternetLeg(t *testing.T) {
	m := model()
	// Anycast-style path: short Internet leg + backbone leg, versus
	// unicast-style path covering the whole distance on the public
	// Internet. With equal endpoints the anycast decomposition should
	// usually win because backbone inflation < Internet inflation.
	wins := 0
	const n = 1000
	for i := uint64(0); i < n; i++ {
		anycast := Path{PrefixID: i, EntryKey: 100, AirKm: 100, BackboneKm: 900}
		unicast := Path{PrefixID: i, EntryKey: 200, AirKm: 1000}
		if m.BaseRTTms(anycast) < m.BaseRTTms(unicast) {
			wins++
		}
	}
	if wins < n*80/100 {
		t.Fatalf("anycast decomposition won only %d/%d; backbone should usually be faster", wins, n)
	}
}

func TestLastMileDistribution(t *testing.T) {
	m := model()
	var vals []float64
	for i := uint64(0); i < 4000; i++ {
		v := m.LastMileMs(i)
		if v <= 0 {
			t.Fatalf("non-positive last mile %v", v)
		}
		vals = append(vals, v.Float())
	}
	med := medianOf(vals)
	if med < 6 || med > 13 {
		t.Fatalf("last-mile median %.1f, want near 9", med)
	}
}

func TestCongestionRate(t *testing.T) {
	m := model()
	events := 0
	const n = 20000
	for i := uint64(0); i < n; i++ {
		p := Path{PrefixID: i, EntryKey: 5, AirKm: 500}
		if c := m.CongestionMs(p, 3); c > 0 {
			events++
		} else if c < 0 {
			t.Fatalf("negative congestion %v", c)
		}
	}
	rate := float64(events) / n
	want := DefaultConfig().CongestionDailyRate
	if math.Abs(rate-want) > 0.01 {
		t.Fatalf("congestion rate %.3f, want ~%.3f", rate, want)
	}
}

func TestCongestionStableWithinDay(t *testing.T) {
	m := model()
	p := Path{PrefixID: 9, EntryKey: 1, AirKm: 500}
	for day := 0; day < 40; day++ {
		if m.CongestionMs(p, day) != m.CongestionMs(p, day) {
			t.Fatal("congestion not stable within day")
		}
	}
}

func TestCongestionVariesAcrossDays(t *testing.T) {
	m := model()
	// Over many paths and days, events on consecutive days should be
	// mostly independent: P(event on day d+1 | event on day d) ≈ rate.
	bothDays, firstDay := 0, 0
	for i := uint64(0); i < 30000; i++ {
		p := Path{PrefixID: i, EntryKey: 2, AirKm: 300}
		if m.CongestionMs(p, 10) > 0 {
			firstDay++
			if m.CongestionMs(p, 11) > 0 {
				bothDays++
			}
		}
	}
	if firstDay == 0 {
		t.Fatal("no events at all")
	}
	cond := float64(bothDays) / float64(firstDay)
	if cond > 0.15 {
		t.Fatalf("consecutive-day event correlation %.2f too high; events should be transient", cond)
	}
}

func TestSampleJitterPositive(t *testing.T) {
	m := model()
	p := Path{PrefixID: 1, EntryKey: 1, AirKm: 800}
	day := m.DayRTTms(p, 0)
	for k := uint64(0); k < 200; k++ {
		s := m.SampleRTTms(p, 0, k)
		if s < day {
			t.Fatalf("sample %v below day RTT %v", s, day)
		}
	}
	// Different sample keys must differ (jitter present).
	if m.SampleRTTms(p, 0, 1) == m.SampleRTTms(p, 0, 2) {
		t.Fatal("samples with different keys are identical")
	}
}

func TestMeasuredRTTBias(t *testing.T) {
	m := model()
	const trueRTT = 50.0
	biased, exact := 0, 0
	for b := uint64(0); b < 5000; b++ {
		v := m.MeasuredRTTms(trueRTT, b, 1)
		if v == trueRTT {
			exact++
		} else if v > trueRTT {
			biased++
		} else {
			t.Fatalf("measured RTT %v below true RTT", v)
		}
	}
	supportRate := float64(exact) / 5000
	want := DefaultConfig().ResourceTimingSupportRate
	if math.Abs(supportRate-want) > 0.03 {
		t.Fatalf("resource-timing support rate %.2f, want ~%.2f", supportRate, want)
	}
}

func TestMeasuredRTTSupportStablePerBrowser(t *testing.T) {
	m := model()
	for b := uint64(0); b < 100; b++ {
		a := m.MeasuredRTTms(10, b, 1) == 10
		c := m.MeasuredRTTms(10, b, 2) == 10
		if a != c {
			t.Fatal("resource timing support flapped within one browser")
		}
	}
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestDayRTTCacheTransparent(t *testing.T) {
	// The memo cache must be invisible: a fresh model (cold cache) and a
	// heavily exercised model (warm cache, including evictions) agree on
	// every value.
	warm := model()
	for i := uint64(0); i < 3000; i++ {
		p := Path{PrefixID: i, EntryKey: i % 7, AirKm: 500}
		_ = warm.DayRTTms(p, int(i%30))
	}
	cold := NewModel(42, DefaultConfig())
	for i := uint64(0); i < 200; i++ {
		p := Path{PrefixID: i, EntryKey: i % 7, AirKm: 500, BackboneKm: 100, Household: i % 6}
		for day := 0; day < 5; day++ {
			if warm.DayRTTms(p, day) != cold.DayRTTms(p, day) {
				t.Fatalf("cached DayRTTms diverged from cold model at prefix %d day %d", i, day)
			}
			if warm.SampleRTTms(p, day, i) != cold.SampleRTTms(p, day, i) {
				t.Fatalf("SampleRTTms diverged across cache states at prefix %d day %d", i, day)
			}
		}
	}
}

func TestDayRTTCacheEvictionKeepsValues(t *testing.T) {
	m := model()
	p := Path{PrefixID: 1, EntryKey: 2, AirKm: 800}
	want := m.DayRTTms(p, 0)
	// Overflow every shard several times over.
	for i := uint64(0); i < dayCacheShards*dayShardMaxEntries/4; i++ {
		q := Path{PrefixID: i + 100, EntryKey: i % 13, AirKm: 300}
		_ = m.DayRTTms(q, int(i%30))
	}
	if got := m.DayRTTms(p, 0); got != want {
		t.Fatalf("DayRTTms changed after shard evictions: %v vs %v", got, want)
	}
}

func TestSampleRTTIntoMatchesSampleRTT(t *testing.T) {
	m := model()
	var rs xrand.Stream
	for i := uint64(0); i < 500; i++ {
		p := Path{PrefixID: i, EntryKey: 3, AirKm: 900, Unicast: i%2 == 0}
		day := int(i % 30)
		if m.SampleRTTmsInto(&rs, p, day, i) != m.SampleRTTms(p, day, i) {
			t.Fatalf("SampleRTTmsInto diverged at prefix %d", i)
		}
		if m.MeasuredRTTmsInto(&rs, 50, i, 1) != m.MeasuredRTTms(50, i, 1) {
			t.Fatalf("MeasuredRTTmsInto diverged at browser %d", i)
		}
	}
}

// TestSampleRTTZeroAlloc pins the warm-cache sampling path at zero heap
// allocations per sample (DESIGN.md §11).
func TestSampleRTTZeroAlloc(t *testing.T) {
	m := model()
	p := Path{PrefixID: 1, EntryKey: 2, AirKm: 1200, BackboneKm: 300}
	for day := 0; day < 30; day++ {
		_ = m.SampleRTTms(p, day, 0) // warm the day cache
	}
	var rs xrand.Stream
	var k uint64
	allocs := testing.AllocsPerRun(200, func() {
		_ = m.SampleRTTmsInto(&rs, p, int(k%30), k)
		k++
	})
	if allocs != 0 {
		t.Fatalf("warm SampleRTTmsInto allocates %.1f times per run, want 0", allocs)
	}
}

func BenchmarkSampleRTT(b *testing.B) {
	m := model()
	p := Path{PrefixID: 1, EntryKey: 2, AirKm: 1200, BackboneKm: 300}
	var rs xrand.Stream
	for day := 0; day < 30; day++ {
		_ = m.SampleRTTms(p, day, 0) // warm the day cache so 1-iteration CI runs measure the steady state
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SampleRTTmsInto(&rs, p, i%30, uint64(i))
	}
}

func BenchmarkDayRTTCold(b *testing.B) {
	m := model()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := Path{PrefixID: uint64(i), EntryKey: 2, AirKm: 1200, BackboneKm: 300}
		_ = m.DayRTTms(p, i%30)
	}
}
