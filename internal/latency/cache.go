package latency

import (
	"math"
	"sync"

	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// dayKey identifies one memoized day-RTT value. Path is a comparable
// struct of plain scalars, so keys compare with ==; the day is kept
// alongside because congestion events are drawn per day.
type dayKey struct {
	p   Path
	day int32
}

// dayCacheShards is the shard count of the day-RTT cache; a power of two
// so shard selection is a mask. 64 shards keep lock contention negligible
// at GOMAXPROCS-scale worker counts.
const dayCacheShards = 64

// dayShardMaxEntries is one shard's slot count (power of two). Memoized
// values are pure functions of the model seed, so a collision simply
// overwrites the slot and the displaced value is recomputed on its next
// miss — eviction can never change a returned value, which is what keeps
// paper-scale streaming runs (millions of prefixes) memory-bounded
// without a replay hazard.
const dayShardMaxEntries = 4096

// dayEntry is one direct-mapped slot.
type dayEntry struct {
	key  dayKey
	val  units.Millis
	used bool
}

// dayShard is one lock-striped slice of the cache. mu guards entries.
// Slots are allocated lazily on the shard's first store, so models built
// for tiny worlds (unit tests) don't pay for the full cache.
type dayShard struct {
	mu      sync.RWMutex
	entries []dayEntry // nil until first put; then dayShardMaxEntries slots
}

// dayCache memoizes DayRTTms per (path, day) behind striped RWMutexes so
// parallel simulation workers share computed base RTTs race-free. It is a
// direct-mapped hash cache: each key owns exactly one slot, a store
// overwrites whatever occupied it, and steady-state operation allocates
// nothing — unlike a bounded map, which churns a fresh map (and its
// buckets) every time a shard fills while simulating a working set larger
// than its capacity.
type dayCache struct {
	shards [dayCacheShards]dayShard
}

func newDayCache() *dayCache { return &dayCache{} }

// hashKey mixes the key with deterministic functions (Go's randomized map
// hash would make shard and slot placement differ between processes). The
// low bits pick the shard, bits 32+ pick the slot within it, so the two
// indices are independent.
func hashKey(k dayKey) uint64 {
	h := xrand.Mix64(k.p.PrefixID ^ xrand.Mix64(k.p.EntryKey))
	h = xrand.Mix64(h ^ k.p.Household ^ uint64(k.day)<<32)
	h ^= math.Float64bits(k.p.AirKm.Float())
	if k.p.Unicast {
		h = xrand.Mix64(h ^ 1)
	}
	return xrand.Mix64(h)
}

// get returns the cached value for k, if present.
func (c *dayCache) get(k dayKey) (units.Millis, bool) {
	h := hashKey(k)
	sh := &c.shards[h&(dayCacheShards-1)]
	slot := (h >> 32) & (dayShardMaxEntries - 1)
	var v units.Millis
	ok := false
	sh.mu.RLock()
	if sh.entries != nil {
		if e := &sh.entries[slot]; e.used && e.key == k {
			v, ok = e.val, true
		}
	}
	sh.mu.RUnlock()
	return v, ok
}

// put stores v for k, displacing any colliding entry.
func (c *dayCache) put(k dayKey, v units.Millis) {
	h := hashKey(k)
	sh := &c.shards[h&(dayCacheShards-1)]
	slot := (h >> 32) & (dayShardMaxEntries - 1)
	sh.mu.Lock()
	if sh.entries == nil {
		sh.entries = make([]dayEntry, dayShardMaxEntries)
	}
	sh.entries[slot] = dayEntry{key: k, val: v, used: true}
	sh.mu.Unlock()
}
