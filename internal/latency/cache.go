package latency

import (
	"math"
	"sync"

	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// dayKey identifies one memoized day-RTT value. Path is a comparable
// struct of plain scalars, so it can key a map directly; the day is kept
// alongside because congestion events are drawn per day.
type dayKey struct {
	p   Path
	day int32
}

// dayCacheShards is the shard count of the day-RTT cache; a power of two
// so shard selection is a mask. 64 shards keep lock contention negligible
// at GOMAXPROCS-scale worker counts.
const dayCacheShards = 64

// dayShardMaxEntries bounds one shard's map. Memoized values are pure
// functions of the model seed, so a full shard is simply reset and
// repopulated on demand — eviction can never change a returned value,
// which is what keeps paper-scale streaming runs (hundreds of thousands
// of prefixes) memory-bounded without a replay hazard.
const dayShardMaxEntries = 4096

// dayShard is one lock-striped slice of the cache. mu guards m.
type dayShard struct {
	mu sync.RWMutex
	m  map[dayKey]units.Millis
}

// dayCache memoizes DayRTTms per (path, day) behind striped RWMutexes so
// parallel simulation workers share computed base RTTs race-free. Each
// shard's mutex guards only that shard's map; values are deterministic in
// the model seed, so concurrent duplicate computation is harmless.
type dayCache struct {
	shards [dayCacheShards]dayShard
}

func newDayCache() *dayCache {
	c := &dayCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[dayKey]units.Millis)
	}
	return c
}

// shardOf hashes the key to a shard with deterministic mixing (Go's
// randomized map hash only distributes entries inside a shard).
func shardOf(k dayKey) uint64 {
	h := xrand.Mix64(k.p.PrefixID ^ xrand.Mix64(k.p.EntryKey))
	h = xrand.Mix64(h ^ k.p.Household ^ uint64(k.day)<<32)
	h ^= math.Float64bits(k.p.AirKm.Float())
	if k.p.Unicast {
		h = xrand.Mix64(h ^ 1)
	}
	return h & (dayCacheShards - 1)
}

// get returns the cached value for k, if present.
func (c *dayCache) get(k dayKey) (units.Millis, bool) {
	sh := &c.shards[shardOf(k)]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

// put stores v for k, resetting the shard first if it is full.
func (c *dayCache) put(k dayKey, v units.Millis) {
	sh := &c.shards[shardOf(k)]
	sh.mu.Lock()
	if len(sh.m) >= dayShardMaxEntries {
		sh.m = make(map[dayKey]units.Millis, dayShardMaxEntries)
	}
	sh.m[k] = v
	sh.mu.Unlock()
}
