// Package latency models client-perceived round-trip latency for the
// simulator.
//
// An RTT sample decomposes as:
//
//	RTT = lastMile(prefix)                         // access-network delay
//	    + airKm * inflation(path) / fiberFactor    // public Internet leg
//	    + backboneKm * backboneInflation / fiber   // CDN backbone leg
//	    + congestion(path, day)                    // per-day transient event
//	    + jitter(measurement)                      // per-sample noise
//
// The public Internet leg carries a per-path inflation factor drawn once
// per (prefix, ingress) pair — real paths are consistently inflated over
// the great circle (Spring et al., "The Causes of Path Inflation", which
// the paper cites when discussing anycast's blindness). The CDN backbone
// leg is nearly straight-line: a production backbone is engineered, which
// is why entering the CDN near the client and riding the backbone
// (anycast's behaviour) is usually at least as fast as a pure Internet
// path to the same front-end (the unicast beacon target's behaviour).
//
// Everything is deterministic per (seed, path, day, sample index).
package latency

import (
	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// Path identifies one network path from a client prefix into a front-end.
type Path struct {
	// PrefixID is the stable ID of the client /24.
	PrefixID uint64
	// EntryKey distinguishes paths from the same prefix: the ingress site
	// for anycast paths or the front-end site for direct unicast paths.
	EntryKey uint64
	// AirKm is the great-circle distance of the public Internet leg
	// (client to ingress/front-end).
	AirKm units.Kilometers
	// BackboneKm is the CDN-internal distance (ingress to front-end);
	// zero for unicast paths, which ingress at the front-end's own
	// peering point per §3.1 of the paper.
	BackboneKm units.Kilometers
	// Household distinguishes end hosts within the /24: a prefix contains
	// many households with different access links, so measurements from
	// the same /24 to the same front-end still differ by a few ms
	// depending on which household ran the beacon. Zero is a valid
	// household.
	Household uint64
	// Unicast marks a beacon unicast path. Because the unicast /24 is
	// announced only at the peering point closest to its front-end
	// (§3.1), the client's ISP must haul the traffic to that specific
	// interconnect instead of handing off at its nearest exchange; the
	// extra intra-ISP haul costs a few milliseconds. Anycast traffic
	// early-exits into the CDN backbone and avoids it.
	Unicast bool
}

// Config parameterizes the model. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	// FiberKmPerMs is one-way propagation speed in fiber (~200 km/ms);
	// RTT doubles it.
	FiberKmPerMs float64
	// InflationMin/Max bound the per-path public-Internet inflation
	// factor (multiplies the great-circle distance).
	InflationMin float64
	InflationMax float64
	// BackboneInflation multiplies backbone distance (engineered paths,
	// close to 1).
	BackboneInflation float64
	// LastMileMedianMs and LastMileSigma parameterize the lognormal
	// access-network delay per prefix; HouseholdSigma adds per-household
	// variation around the prefix's base (see Path.Household).
	LastMileMedianMs units.Millis
	LastMileSigma    float64
	HouseholdSigma   float64
	// CongestionDailyRate is the probability that a given path suffers a
	// transient congestion event on a given day; CongestionMeanMs is the
	// mean of the exponential extra delay.
	CongestionDailyRate float64
	CongestionMeanMs    units.Millis
	// JitterMeanMs is the mean per-sample exponential jitter.
	JitterMeanMs units.Millis
	// JitterBurstProb and JitterBurstMeanMs model the heavy tail of
	// one-shot browser measurements (cross traffic, wifi retransmits,
	// renderer scheduling): with probability JitterBurstProb a sample
	// gains an additional exponential delay. Bursts dominate per-request
	// comparisons (Figure 3) but medians wash them out (Figure 5).
	JitterBurstProb   float64
	JitterBurstMeanMs units.Millis
	// UnicastDetourMedianMs and UnicastDetourSigma parameterize the
	// lognormal per-(prefix, front-end) haul penalty of unicast beacon
	// paths (see Path.Unicast).
	UnicastDetourMedianMs units.Millis
	UnicastDetourSigma    float64
	// PrimitiveTimingBiasMs is the mean positive bias of JavaScript
	// primitive timings versus the W3C Resource Timing API (§3.2.2).
	PrimitiveTimingBiasMs units.Millis
	// ResourceTimingSupportRate is the fraction of browsers supporting
	// the Resource Timing API, whose measurements replace primitive ones.
	ResourceTimingSupportRate float64
}

// DefaultConfig returns the calibration used by the experiments.
func DefaultConfig() Config {
	return Config{
		FiberKmPerMs:              200,
		InflationMin:              1.25,
		InflationMax:              2.0,
		BackboneInflation:         1.05,
		LastMileMedianMs:          9,
		LastMileSigma:             0.45,
		HouseholdSigma:            0.45,
		CongestionDailyRate:       0.05,
		CongestionMeanMs:          55,
		JitterMeanMs:              1.2,
		JitterBurstProb:           0.12,
		JitterBurstMeanMs:         70,
		UnicastDetourMedianMs:     3.0,
		UnicastDetourSigma:        0.6,
		PrimitiveTimingBiasMs:     12,
		ResourceTimingSupportRate: 0.85,
	}
}

// Package-level label hashes: every per-sample substream derivation pays
// only integer mixing, not a byte loop over the label string (the seeds
// are identical to the string-label derivations; see xrand.Label).
var (
	labelLastMile   = xrand.NewLabel("lastmile")
	labelInflation  = xrand.NewLabel("inflation")
	labelHousehold  = xrand.NewLabel("household")
	labelDetour     = xrand.NewLabel("unicast-detour")
	labelCongestion = xrand.NewLabel("congestion")
	labelJitter     = xrand.NewLabel("jitter")
	labelTiming     = xrand.NewLabel("timing")
	labelTimingBias = xrand.NewLabel("timing-bias")
)

// Model produces latency samples. It is safe for concurrent use: the only
// mutable state is the sharded day-RTT memo cache, whose shard locks guard
// their maps (see dayCache); everything else is read-only after NewModel.
type Model struct {
	cfg   Config
	seed  uint64
	cache *dayCache
}

// NewModel returns a model rooted at seed.
func NewModel(seed uint64, cfg Config) *Model {
	return &Model{cfg: cfg, seed: seed, cache: newDayCache()}
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// LastMileMs returns the prefix's stable access-network delay.
func (m *Model) LastMileMs(prefixID uint64) units.Millis {
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL1(m.seed, labelLastMile, prefixID))
	return units.Millis(m.cfg.LastMileMedianMs.Float() * rs.LogNormal(0, m.cfg.LastMileSigma))
}

// inflation returns the stable inflation factor for a path.
func (m *Model) inflation(p Path) float64 {
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL2(m.seed, labelInflation, p.PrefixID, p.EntryKey))
	return m.cfg.InflationMin + rs.Float64()*(m.cfg.InflationMax-m.cfg.InflationMin)
}

// BaseRTTms returns the stable (no congestion, no jitter) round-trip time
// of a path in milliseconds.
func (m *Model) BaseRTTms(p Path) units.Millis {
	prop := 2 * p.AirKm.Float() * m.inflation(p) / m.cfg.FiberKmPerMs
	backbone := 2 * p.BackboneKm.Float() * m.cfg.BackboneInflation / m.cfg.FiberKmPerMs
	lastMile := m.LastMileMs(p.PrefixID).Float() * m.householdFactor(p)
	return units.Millis(lastMile + prop + backbone + m.unicastDetourMs(p).Float())
}

// householdFactor returns the stable multiplicative last-mile variation of
// the path's household.
func (m *Model) householdFactor(p Path) float64 {
	if m.cfg.HouseholdSigma <= 0 {
		return 1
	}
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL2(m.seed, labelHousehold, p.PrefixID, p.Household))
	return rs.LogNormal(0, m.cfg.HouseholdSigma)
}

// unicastDetourMs returns the stable haul penalty of a unicast beacon path
// (zero for anycast paths).
func (m *Model) unicastDetourMs(p Path) units.Millis {
	if !p.Unicast || m.cfg.UnicastDetourMedianMs <= 0 {
		return 0
	}
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL2(m.seed, labelDetour, p.PrefixID, p.EntryKey))
	return units.Millis(m.cfg.UnicastDetourMedianMs.Float() * rs.LogNormal(0, m.cfg.UnicastDetourSigma))
}

// CongestionMs returns the extra delay the path suffers on the given day
// (zero on most days). The event is stable within a day, producing the
// "poor path for exactly one day" pattern of Figure 6.
func (m *Model) CongestionMs(p Path, day int) units.Millis {
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL3(m.seed, labelCongestion, p.PrefixID, p.EntryKey, uint64(day)))
	if !rs.Bool(m.cfg.CongestionDailyRate) {
		return 0
	}
	return units.Millis(rs.Exp(m.cfg.CongestionMeanMs.Float()))
}

// DayRTTms returns the path RTT for a given day including any congestion
// event but no per-sample jitter.
//
// The value is memoized per (path, day): it is a pure function of the
// model seed, drawn from substreams that no other derivation touches, so
// caching skips recomputation without changing any stream's draw order —
// a replay with or without cache hits is byte-identical. Every sample of
// a path-day shares this value, which turns the three lognormal draws of
// BaseRTTms from a per-sample cost into a per-path-day cost.
func (m *Model) DayRTTms(p Path, day int) units.Millis {
	k := dayKey{p: p, day: int32(day)}
	if v, ok := m.cache.get(k); ok {
		return v
	}
	v := m.BaseRTTms(p) + m.CongestionMs(p, day)
	m.cache.put(k, v)
	return v
}

// SampleRTTms returns one measured RTT sample: day RTT plus per-sample
// jitter. sampleKey must differ between samples of the same path and day.
func (m *Model) SampleRTTms(p Path, day int, sampleKey uint64) units.Millis {
	var rs xrand.Stream
	return m.SampleRTTmsInto(&rs, p, day, sampleKey)
}

// SampleRTTmsInto is SampleRTTms with caller-provided stream scratch: rs
// is reseeded to the sample's jitter substream before use, so one
// stack-allocated Stream can serve every sample of a measurement (the
// beacon executor reuses one across its four targets). Results are
// identical to SampleRTTms.
//
//perf:hotpath
func (m *Model) SampleRTTmsInto(rs *xrand.Stream, p Path, day int, sampleKey uint64) units.Millis {
	rs.Reseed(xrand.DeriveSeedL4(m.seed, labelJitter, p.PrefixID, p.EntryKey, uint64(day), sampleKey))
	rtt := m.DayRTTms(p, day).Float() + rs.Exp(m.cfg.JitterMeanMs.Float())
	if m.cfg.JitterBurstProb > 0 && rs.Bool(m.cfg.JitterBurstProb) {
		rtt += rs.Exp(m.cfg.JitterBurstMeanMs.Float())
	}
	return units.Millis(rtt)
}

// MeasuredRTTms applies the beacon's timing-API model to a true sample:
// browsers without Resource Timing support report a positively biased
// value from JavaScript primitive timings (§3.2.2 of the paper).
// browserKey identifies the client browser so support is stable per client.
func (m *Model) MeasuredRTTms(trueRTT units.Millis, browserKey uint64, sampleKey uint64) units.Millis {
	var rs xrand.Stream
	return m.MeasuredRTTmsInto(&rs, trueRTT, browserKey, sampleKey)
}

// MeasuredRTTmsInto is MeasuredRTTms with caller-provided stream scratch
// (reseeded before each use; see SampleRTTmsInto).
//
//perf:hotpath
func (m *Model) MeasuredRTTmsInto(rs *xrand.Stream, trueRTT units.Millis, browserKey uint64, sampleKey uint64) units.Millis {
	rs.Reseed(xrand.DeriveSeedL1(m.seed, labelTiming, browserKey))
	if rs.Bool(m.cfg.ResourceTimingSupportRate) {
		return trueRTT
	}
	rs.Reseed(xrand.DeriveSeedL2(m.seed, labelTimingBias, browserKey, sampleKey))
	return trueRTT + units.Millis(rs.Exp(m.cfg.PrimitiveTimingBiasMs.Float()))
}
