package faults

import (
	"strings"
	"testing"

	"anycastcdn/internal/units"
)

func TestParseScenario(t *testing.T) {
	text := `
# weekend maintenance
drain paris day=2 for=3
flap denver day=4          # one withdraw/restore cycle
ldns-outage europe day=1; inflate south-america day=5 for=2 ms=42.5
`
	sc, err := ParseScenario(text)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: Drain, Target: "paris", Day: 2, Days: 3},
		{Kind: Flap, Target: "denver", Day: 4, Days: 1},
		{Kind: LDNSOutage, Target: "europe", Day: 1, Days: 1},
		{Kind: Inflate, Target: "south-america", Day: 5, Days: 2, ExtraMs: units.Millis(42.5)},
	}
	if len(sc.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d: %+v", len(sc.Events), len(want), sc.Events)
	}
	for i, e := range want {
		if sc.Events[i] != e {
			t.Errorf("event %d = %+v, want %+v", i, sc.Events[i], e)
		}
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"unknown kind", "melt paris day=1", "unknown event kind"},
		{"missing day", "drain paris for=2", "missing day="},
		{"missing target", "drain day=1 for=2", "missing its target"},
		{"duplicate option", "drain paris day=1 day=2", "duplicate option"},
		{"bad day", "drain paris day=soon", "not an integer"},
		{"bad for", "drain paris day=1 for=long", "not an integer"},
		{"bad ms", "inflate europe day=1 ms=lots", "not a number"},
		{"unknown option", "drain paris day=1 until=9", "unknown option"},
		{"not key=value", "drain paris day=1 loudly", "not key=value"},
		{"ms on drain", "drain paris day=1 ms=5", "only inflate takes ms"},
		{"inflate without ms", "inflate europe day=1", "needs ms > 0"},
		{"inflate negative ms", "inflate europe day=1 ms=-3", "needs ms > 0"},
		{"inflate infinite ms", "inflate europe day=1 ms=1e999", "not a number"},
		{"negative day", "drain paris day=-1", "negative day"},
		{"zero duration", "drain paris day=1 for=0", "non-positive duration"},
		{"negative duration", "drain paris day=1 for=-2", "non-positive duration"},
		{"bad target charset", "drain Paris day=1", "lowercase"},
		{"short clause", "drain", "needs at least"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario(tc.text)
			if err == nil {
				t.Fatalf("ParseScenario(%q) succeeded, want error mentioning %q", tc.text, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseScenarioEmpty(t *testing.T) {
	for _, text := range []string{"", "\n\n", "# only a comment\n", " ; ; "} {
		sc, err := ParseScenario(text)
		if err != nil {
			t.Fatalf("ParseScenario(%q) = %v", text, err)
		}
		if !sc.Empty() {
			t.Fatalf("ParseScenario(%q) produced events: %+v", text, sc.Events)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	scenarios := []Scenario{
		{},
		{Events: []Event{{Kind: Drain, Target: "paris", Day: 0, Days: 1}}},
		{Events: []Event{
			{Kind: Flap, Target: "denver", Day: 3, Days: 2},
			{Kind: LDNSOutage, Target: "asia", Day: 1, Days: 4},
			{Kind: Inflate, Target: "europe", Day: 2, Days: 1, ExtraMs: units.Millis(0.125)},
			{Kind: Inflate, Target: "oceania", Day: 0, Days: 9, ExtraMs: units.Millis(33.333333333333336)},
		}},
	}
	for _, sc := range scenarios {
		text := sc.Format()
		back, err := ParseScenario(text)
		if err != nil {
			t.Fatalf("reparsing %q: %v", text, err)
		}
		if len(back.Events) != len(sc.Events) {
			t.Fatalf("round trip of %q changed event count", text)
		}
		for i := range sc.Events {
			if back.Events[i] != sc.Events[i] {
				t.Fatalf("round trip of %q: event %d = %+v, want %+v", text, i, back.Events[i], sc.Events[i])
			}
		}
	}
}

func TestEventWindow(t *testing.T) {
	e := Event{Kind: Drain, Target: "paris", Day: 3, Days: 2}
	if e.End() != 5 {
		t.Fatalf("End() = %d, want 5", e.End())
	}
	for day, want := range map[int]bool{2: false, 3: true, 4: true, 5: false} {
		if e.ActiveOn(day) != want {
			t.Errorf("ActiveOn(%d) = %v, want %v", day, e.ActiveOn(day), want)
		}
	}
}

func TestScenarioHelpers(t *testing.T) {
	sc := Scenario{Events: []Event{
		{Kind: Inflate, Target: "europe", Day: 2, Days: 3, ExtraMs: 10},
		{Kind: Drain, Target: "paris", Day: 4, Days: 1},
	}}
	if got := sc.MaxDay(); got != 4 {
		t.Fatalf("MaxDay() = %d, want 4", got)
	}
	if got := len(sc.ActiveOn(4)); got != 2 {
		t.Fatalf("ActiveOn(4) has %d events, want 2", got)
	}
	if got := len(sc.ActiveOn(5)); got != 0 {
		t.Fatalf("ActiveOn(5) has %d events, want 0", got)
	}
	if got := sc.Summary(); got != "inflate europe d2+3; drain paris d4+1" {
		t.Fatalf("Summary() = %q", got)
	}
	if got := (Scenario{}).Summary(); got != "no faults" {
		t.Fatalf("empty Summary() = %q", got)
	}
	kinds := sc.Kinds()
	if len(kinds) != 2 || kinds[0] != Drain || kinds[1] != Inflate {
		t.Fatalf("Kinds() = %v", kinds)
	}
	if (Scenario{}).MaxDay() != -1 {
		t.Fatal("empty MaxDay should be -1")
	}
}

func TestKindString(t *testing.T) {
	if Kind(99).String() != "Kind(99)" {
		t.Fatalf("unknown kind renders %q", Kind(99).String())
	}
	if err := (Event{Kind: Kind(99), Target: "x", Day: 0, Days: 1}).Validate(); err == nil {
		t.Fatal("unknown kind should fail validation")
	}
}
