package faults

import "testing"

// FuzzParseScenario checks the parser's core contract on arbitrary input:
// it never panics, and any text it accepts canonicalizes — Format output
// reparses to the same events, and Format is a fixed point.
func FuzzParseScenario(f *testing.F) {
	f.Add("drain paris day=2 for=3")
	f.Add("flap denver day=0")
	f.Add("ldns-outage europe day=1; inflate asia day=2 for=4 ms=12.5")
	f.Add("# comment\n drain a.b-c_9 day=7\n")
	f.Add("inflate europe day=1 ms=0.30000000000000004")
	f.Add("drain paris day=1 day=2")
	f.Add(";;;\n#\n")
	f.Add("surge europe day=1 qps=0")
	f.Add("surge asia day=2 for=3 qps=1")
	f.Add("surge south-america day=0 qps=1e15")
	f.Add("surge oceania day=1 qps=0.30000000000000004")
	f.Add("surge europe day=1 qps=nan")
	f.Add("surge europe day=1 qps=-inf")
	f.Fuzz(func(t *testing.T, text string) {
		sc, err := ParseScenario(text)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		canon := sc.Format()
		back, err := ParseScenario(canon)
		if err != nil {
			t.Fatalf("Format output %q does not reparse: %v", canon, err)
		}
		if len(back.Events) != len(sc.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(sc.Events), len(back.Events))
		}
		for i := range sc.Events {
			if back.Events[i] != sc.Events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, sc.Events[i], back.Events[i])
			}
		}
		if again := back.Format(); again != canon {
			t.Fatalf("Format is not a fixed point:\n%q\nvs\n%q", canon, again)
		}
	})
}
