package faults

import (
	"fmt"
	"math"

	"anycastcdn/internal/bgp"
	"anycastcdn/internal/cdn"
	"anycastcdn/internal/dns"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// Injector is a Scenario compiled against a built world: event targets
// are resolved to site IDs and regions, and LDNS fallback routes are
// precomputed. All methods are pure functions of (event list, day), are
// safe on a nil receiver (a nil *Injector injects nothing), and consume
// no randomness — which is what keeps a faulted run replay-deterministic
// and a fault-free run byte-identical to one with a nil or empty
// injector.
//
// Injector is immutable after construction and safe for concurrent use
// by the simulation workers.
type Injector struct {
	scenario Scenario

	// siteEvents holds Drain and Flap events with their resolved site.
	siteEvents []siteEvent
	// regionEvents holds LDNSOutage, Inflate and Surge events.
	regionEvents []regionEvent
	// ldnsFallback maps each resolver ID of the world's mapping to the
	// public resolver its clients fall back to during an outage of the
	// resolver's region; entries are only present for resolvers an
	// LDNSOutage event can affect (ISP resolvers, by region).
	ldnsFallback map[dns.LDNSID]fallback
	// firstDay/lastDay bound the active window across all events so the
	// per-day hot path can bail out with two comparisons.
	firstDay, lastDay int
}

type siteEvent struct {
	ev   Event
	site topology.SiteID
}

type regionEvent struct {
	ev     Event
	region geo.Region
}

type fallback struct {
	region geo.Region
	ldns   dns.LDNS
}

// NewInjector compiles a scenario against a deployment, resolver mapping
// and metro catalog. It returns an error for targets that do not resolve:
// a Drain target that is not a front-end metro of the deployment, a Flap
// target that is not a peering metro, or a region target that is not a
// region of the catalog.
func NewInjector(sc Scenario, dep *cdn.Deployment, mapping *dns.Mapping, metros []geo.Metro) (*Injector, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{scenario: sc, firstDay: int(^uint(0) >> 1), lastDay: -1}

	bb := dep.Backbone
	siteByMetro := map[string]topology.SiteID{}
	for _, s := range bb.Sites {
		siteByMetro[s.Metro.Name] = s.ID
	}
	regions := map[geo.Region]bool{}
	for _, m := range metros {
		regions[m.Region] = true
	}

	for i, e := range sc.Events {
		switch e.Kind {
		case Drain, Flap:
			id, ok := siteByMetro[e.Target]
			if !ok {
				return nil, fmt.Errorf("faults: event %d: %s target %q is not a deployment metro", i, e.Kind, e.Target)
			}
			s := bb.Site(id)
			if e.Kind == Drain && !s.FrontEnd {
				return nil, fmt.Errorf("faults: event %d: drain target %q hosts no front-end", i, e.Target)
			}
			if e.Kind == Flap && !s.Peering {
				return nil, fmt.Errorf("faults: event %d: flap target %q is not a peering site", i, e.Target)
			}
			inj.siteEvents = append(inj.siteEvents, siteEvent{ev: e, site: id})
		case LDNSOutage, Inflate, Surge:
			if !regions[geo.Region(e.Target)] {
				return nil, fmt.Errorf("faults: event %d: %s target %q is not a world region", i, e.Kind, e.Target)
			}
			inj.regionEvents = append(inj.regionEvents, regionEvent{ev: e, region: geo.Region(e.Target)})
		}
		if e.Day < inj.firstDay {
			inj.firstDay = e.Day
		}
		if e.End()-1 > inj.lastDay {
			inj.lastDay = e.End() - 1
		}
	}

	if err := inj.compileLDNSFallback(mapping, metros); err != nil {
		return nil, err
	}
	return inj, nil
}

// compileLDNSFallback precomputes, for every ISP resolver of the mapping,
// which region it sits in and which public resolver its clients would
// fall back to. Synthetic fallback resolvers get IDs past the mapping's
// range so the authoritative DNS caches them separately from real ones.
func (inj *Injector) compileLDNSFallback(mapping *dns.Mapping, metros []geo.Metro) error {
	hasOutage := false
	for _, re := range inj.regionEvents {
		if re.ev.Kind == LDNSOutage {
			hasOutage = true
			break
		}
	}
	if !hasOutage || mapping == nil {
		return nil
	}
	publics, err := dns.PublicResolvers(metros, dns.LDNSID(len(mapping.Resolvers)))
	if err != nil {
		return err
	}
	pts := make([]geo.Point, len(publics))
	for i, p := range publics {
		pts[i] = p.Point
	}
	metroPts := make([]geo.Point, len(metros))
	for i, m := range metros {
		metroPts[i] = m.Point
	}
	inj.ldnsFallback = make(map[dns.LDNSID]fallback)
	for _, l := range mapping.Resolvers {
		if l.Kind == dns.Public {
			continue // public resolvers are the fallback, not the casualty
		}
		mi, _ := geo.NearestIndex(l.Point, metroPts)
		pi, _ := geo.NearestIndex(l.Point, pts)
		inj.ldnsFallback[l.ID] = fallback{region: metros[mi].Region, ldns: publics[pi]}
	}
	return nil
}

// Scenario returns the compiled scenario.
func (inj *Injector) Scenario() Scenario {
	if inj == nil {
		return Scenario{}
	}
	return inj.scenario
}

// Empty reports whether the injector never injects anything; true for a
// nil injector.
func (inj *Injector) Empty() bool { return inj == nil || inj.scenario.Empty() }

// ActiveOn reports whether any event is in effect on the given day.
func (inj *Injector) ActiveOn(day int) bool {
	return inj != nil && day >= inj.firstDay && day <= inj.lastDay
}

// Drained reports whether the front-end at site is out of service on day.
func (inj *Injector) Drained(site topology.SiteID, day int) bool {
	if !inj.ActiveOn(day) {
		return false
	}
	for _, se := range inj.siteEvents {
		if se.ev.Kind == Drain && se.site == site && se.ev.ActiveOn(day) {
			return true
		}
	}
	return false
}

// Withdrawn reports whether the peering site's anycast route is withdrawn
// on day.
func (inj *Injector) Withdrawn(site topology.SiteID, day int) bool {
	if !inj.ActiveOn(day) {
		return false
	}
	for _, se := range inj.siteEvents {
		if se.ev.Kind == Flap && se.site == site && se.ev.ActiveOn(day) {
			return true
		}
	}
	return false
}

// InflationMs returns the extra latency every path of the region's
// clients suffers on day (zero when no inflate event is active).
func (inj *Injector) InflationMs(region geo.Region, day int) units.Millis {
	if !inj.ActiveOn(day) {
		return 0
	}
	var extra units.Millis
	for _, re := range inj.regionEvents {
		if re.ev.Kind == Inflate && re.region == region && re.ev.ActiveOn(day) {
			extra += re.ev.ExtraMs
		}
	}
	return extra
}

// SurgeFactor returns the query-volume multiplier the region's clients
// experience on day: 1 with no active surge event, otherwise the product
// of every active matching surge's qps (stacked flash crowds compound).
func (inj *Injector) SurgeFactor(region geo.Region, day int) float64 {
	if !inj.ActiveOn(day) {
		return 1
	}
	f := 1.0
	for _, re := range inj.regionEvents {
		if re.ev.Kind == Surge && re.region == region && re.ev.ActiveOn(day) {
			f *= re.ev.QPS
		}
	}
	return f
}

// ScaleQueries applies the day's surge factor to a client's query count,
// rounding half-up so the scaling consumes no randomness and a factor of
// exactly 1 returns q unchanged. Results are clamped to the int32 range
// the columnar passive log stores queries in, so an absurd qps cannot
// overflow downstream arithmetic.
func (inj *Injector) ScaleQueries(region geo.Region, day int, q int) int {
	f := inj.SurgeFactor(region, day)
	if f == 1 {
		return q
	}
	scaled := float64(q)*f + 0.5
	if scaled >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(scaled)
}

// Resolver returns the resolver the client actually reaches on day: l
// itself normally, or its public fallback while an ldns-outage event
// covers l's region. The fallback resolver's distant position changes
// the front-end candidates the authoritative DNS computes — the paper's
// public-resolver ECS behaviour.
func (inj *Injector) Resolver(l dns.LDNS, day int) dns.LDNS {
	if !inj.ActiveOn(day) || inj.ldnsFallback == nil {
		return l
	}
	fb, ok := inj.ldnsFallback[l.ID]
	if !ok {
		return l
	}
	for _, re := range inj.regionEvents {
		if re.ev.Kind == LDNSOutage && re.region == fb.region && re.ev.ActiveOn(day) {
			return fb.ldns
		}
	}
	return l
}

// Rewrite applies the active events to one client's anycast assignment
// for a day and returns the effective assignment. With no active events
// it returns a unchanged, so a no-op scenario leaves runs byte-identical.
//
// The rewrite happens in BGP order: first a withdrawn ingress re-routes
// the client to its next-ranked peering site that still announces the
// prefix; then, if the resulting hot-potato front-end is drained, the CDN
// AS falls through to the nearest standing front-end from the same
// ingress. Unicast beacon paths are untouched: the per-front-end unicast
// /24s of §3.1 stay announced during a drain (the front-end is out of
// rotation, not off the network), which is exactly what lets the beacon
// keep measuring a drained site.
func (inj *Injector) Rewrite(c bgp.Client, day int, a bgp.Assignment, r *bgp.Router) bgp.Assignment {
	if !inj.ActiveOn(day) {
		return a
	}
	if inj.Withdrawn(a.Ingress, day) {
		for _, cand := range r.Backbone().RankPeeringByAir(c.Point) {
			if !inj.Withdrawn(cand, day) {
				a = r.Assign(c, cand)
				break
			}
		}
		// All peering withdrawn: the scenario black-holed the whole AS;
		// keep the original assignment rather than invent connectivity.
	}
	if inj.Drained(a.FrontEnd, day) {
		a = r.AssignExcluding(c, a.Ingress, func(fe topology.SiteID) bool {
			return inj.Drained(fe, day)
		})
	}
	return a
}
