package faults_test

import (
	"fmt"
	"testing"

	"anycastcdn/internal/dns"
	"anycastcdn/internal/faults"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
	"anycastcdn/internal/topology"
)

// The end-to-end suite runs full simulations under each event kind and
// checks the three scenario-engine contracts: the event does what it says
// during its window, the world is untouched outside the window, and the
// whole thing is replay-deterministic.

// runScenario simulates the shared small config under a scenario text.
func runScenario(t *testing.T, text string) *sim.Result {
	t.Helper()
	sc, err := faults.ParseScenario(text)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testutil.SmallConfig(1)
	cfg.Scenario = &sc
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// diffRuns returns a description of the first difference between two
// runs, or "" when they are byte-identical.
func diffRuns(a, b *sim.Result) string {
	for day := range a.Beacons {
		if len(a.Beacons[day]) != len(b.Beacons[day]) {
			return fmt.Sprintf("day %d beacon counts %d vs %d", day, len(a.Beacons[day]), len(b.Beacons[day]))
		}
		for i := range a.Beacons[day] {
			if a.Beacons[day][i] != b.Beacons[day][i] {
				return fmt.Sprintf("day %d beacon %d:\n%+v\nvs\n%+v", day, i, a.Beacons[day][i], b.Beacons[day][i])
			}
		}
	}
	if a.Passive.Len() != b.Passive.Len() {
		return fmt.Sprintf("passive lengths %d vs %d", a.Passive.Len(), b.Passive.Len())
	}
	for i := 0; i < a.Passive.Len(); i++ {
		if a.Passive.At(i) != b.Passive.At(i) {
			return fmt.Sprintf("passive record %d: %+v vs %+v", i, a.Passive.At(i), b.Passive.At(i))
		}
	}
	for c := range a.Assignments {
		for d := range a.Assignments[c] {
			if a.Assignments[c][d] != b.Assignments[c][d] {
				return fmt.Sprintf("assignment client %d day %d: %+v vs %+v",
					c, d, a.Assignments[c][d], b.Assignments[c][d])
			}
		}
	}
	return ""
}

// assignmentsEqualOnDay reports whether every client's day-d assignment
// matches between runs.
func assignmentsEqualOnDay(a, b *sim.Result, d int) bool {
	for c := range a.Assignments {
		if a.Assignments[c][d] != b.Assignments[c][d] {
			return false
		}
	}
	return true
}

// beaconsEqualOnDay reports whether day d's beacons match between runs.
func beaconsEqualOnDay(a, b *sim.Result, d int) bool {
	if len(a.Beacons[d]) != len(b.Beacons[d]) {
		return false
	}
	for i := range a.Beacons[d] {
		if a.Beacons[d][i] != b.Beacons[d][i] {
			return false
		}
	}
	return true
}

// busiestSite returns the metro name and site ID serving the most clients
// on a day, by ingress or by front-end.
func busiestSite(t *testing.T, res *sim.Result, day int, byIngress bool) (string, topology.SiteID) {
	t.Helper()
	counts := map[topology.SiteID]int{}
	for c := range res.Assignments {
		a := res.Assignments[c][day]
		if byIngress {
			counts[a.Ingress]++
		} else {
			counts[a.FrontEnd]++
		}
	}
	best, bestN := topology.InvalidSite, 0
	for s, n := range counts {
		if n > bestN || (n == bestN && s < best) {
			best, bestN = s, n
		}
	}
	if best == topology.InvalidSite {
		t.Fatal("no assignments to pick a target from")
	}
	return res.World.Deployment.Backbone.Site(best).Metro.Name, best
}

func TestNoOpScenarioByteIdentical(t *testing.T) {
	base := testutil.SmallResult(t)
	cfg := testutil.SmallConfig(1)
	cfg.Scenario = &faults.Scenario{} // present but empty
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffRuns(base, res); d != "" {
		t.Fatalf("empty scenario diverged from fault-free run: %s", d)
	}
}

func TestScenarioReplayIdentical(t *testing.T) {
	base := testutil.SmallResult(t)
	fe, _ := busiestSite(t, base, 3, false)
	text := fmt.Sprintf("drain %s day=3 for=2; inflate europe day=4 ms=25", fe)
	a := runScenario(t, text)
	b := runScenario(t, text)
	if d := diffRuns(a, b); d != "" {
		t.Fatalf("same seed + same scenario diverged: %s", d)
	}
	if d := diffRuns(base, a); d == "" {
		t.Fatal("scenario run identical to fault-free run; events had no effect")
	}
}

func TestDrainScenario(t *testing.T) {
	base := testutil.SmallResult(t)
	fe, feSite := busiestSite(t, base, 3, false)
	res := runScenario(t, fmt.Sprintf("drain %s day=3 for=2", fe))

	for d := 0; d < base.Cfg.Days; d++ {
		inWindow := d == 3 || d == 4
		if !inWindow {
			if !assignmentsEqualOnDay(base, res, d) {
				t.Fatalf("day %d outside the drain window diverged from baseline", d)
			}
			continue
		}
		shifted := 0
		for c := range res.Assignments {
			if res.Assignments[c][d].FrontEnd == feSite {
				t.Fatalf("client %d still served by drained front-end %s on day %d", c, fe, d)
			}
			if res.Assignments[c][d] != base.Assignments[c][d] {
				shifted++
			}
		}
		if shifted == 0 {
			t.Fatalf("draining the busiest front-end %s shifted nobody on day %d", fe, d)
		}
	}
}

func TestFlapScenario(t *testing.T) {
	base := testutil.SmallResult(t)
	ing, ingSite := busiestSite(t, base, 3, true)
	res := runScenario(t, fmt.Sprintf("flap %s day=3 for=2", ing))

	feShifted := 0
	for d := 0; d < base.Cfg.Days; d++ {
		inWindow := d == 3 || d == 4
		if !inWindow {
			if !assignmentsEqualOnDay(base, res, d) {
				t.Fatalf("day %d outside the flap window diverged from baseline", d)
			}
			continue
		}
		for c := range res.Assignments {
			if res.Assignments[c][d].Ingress == ingSite {
				t.Fatalf("client %d still ingressing at withdrawn site %s on day %d", c, ing, d)
			}
			if res.Assignments[c][d].FrontEnd != base.Assignments[c][d].FrontEnd {
				feShifted++
			}
		}
	}
	if feShifted == 0 {
		t.Fatalf("withdrawing the busiest ingress %s moved no client to a different front-end", ing)
	}
}

func TestLDNSOutageScenario(t *testing.T) {
	base := testutil.SmallResult(t)
	res := runScenario(t, "ldns-outage europe day=3 for=2")
	realResolvers := dns.LDNSID(len(base.World.Mapping.Resolvers))

	sawFallback := false
	for d := 0; d < base.Cfg.Days; d++ {
		inWindow := d == 3 || d == 4
		if !inWindow {
			if !beaconsEqualOnDay(base, res, d) {
				t.Fatalf("day %d outside the outage window diverged from baseline", d)
			}
			continue
		}
		for i, m := range res.Beacons[d] {
			if m.LDNS >= realResolvers {
				sawFallback = true
				if bm := base.Beacons[d][i]; bm.LDNS == m.LDNS {
					t.Fatalf("baseline beacon already used fallback resolver %d", m.LDNS)
				}
			}
		}
	}
	if !sawFallback {
		t.Fatal("no beacon fell back to a public resolver during the outage")
	}
	// Assignments are routing-only and must be untouched by a DNS fault.
	for d := 0; d < base.Cfg.Days; d++ {
		if !assignmentsEqualOnDay(base, res, d) {
			t.Fatalf("ldns outage changed routing assignments on day %d", d)
		}
	}
}

func TestInflateScenario(t *testing.T) {
	base := testutil.SmallResult(t)
	res := runScenario(t, "inflate europe day=3 for=2 ms=40")

	sawInflation := false
	for d := 0; d < base.Cfg.Days; d++ {
		inWindow := d == 3 || d == 4
		if !inWindow {
			if !beaconsEqualOnDay(base, res, d) {
				t.Fatalf("day %d outside the inflate window diverged from baseline", d)
			}
			continue
		}
		for i, m := range res.Beacons[d] {
			bm := base.Beacons[d][i]
			if m.Region != geo.RegionEurope {
				if m != bm {
					t.Fatalf("day %d: inflate europe changed a %s client's beacon", d, m.Region)
				}
				continue
			}
			if m.Anycast.RTTms < bm.Anycast.RTTms {
				t.Fatalf("day %d: inflation lowered a latency (%v -> %v)", d, bm.Anycast.RTTms, m.Anycast.RTTms)
			}
			if m.Anycast.RTTms > bm.Anycast.RTTms {
				sawInflation = true
			}
		}
	}
	if !sawInflation {
		t.Fatal("no european beacon latency rose during the inflate window")
	}
}

func TestSurgeScenario(t *testing.T) {
	base := testutil.SmallResult(t)
	res := runScenario(t, "surge europe day=3 for=2 qps=4")
	days := base.Cfg.Days

	// A surge is volume-only: routing is untouched on every day.
	for d := 0; d < days; d++ {
		if !assignmentsEqualOnDay(base, res, d) {
			t.Fatalf("surge changed routing assignments on day %d", d)
		}
	}
	sawScale := false
	for i, c := range base.World.Population.Clients {
		for d := 0; d < days; d++ {
			rb, rr := base.Passive.At(i*days+d), res.Passive.At(i*days+d)
			inWindow := d == 3 || d == 4
			if !inWindow || c.Region != geo.RegionEurope {
				if rr != rb {
					t.Fatalf("client %d (%s) day %d outside the surge diverged: %+v vs %+v",
						i, c.Region, d, rr, rb)
				}
				continue
			}
			// Half-up rounding, exactly as the injector documents.
			want := int(float64(rb.Queries)*4 + 0.5)
			if rr.Queries != want {
				t.Fatalf("client %d day %d: queries %d, want %d (base %d x4)",
					i, d, rr.Queries, want, rb.Queries)
			}
			if rr.Queries != rb.Queries {
				sawScale = true
			}
		}
	}
	if !sawScale {
		t.Fatal("no european client-day's volume actually scaled during the surge")
	}
}

// TestSurgeUnityIsNoOp: qps=1 scales by exactly 1 with no rounding and no
// randomness consumed, so the run is byte-identical to fault-free.
func TestSurgeUnityIsNoOp(t *testing.T) {
	base := testutil.SmallResult(t)
	res := runScenario(t, "surge europe day=3 for=2 qps=1")
	if d := diffRuns(base, res); d != "" {
		t.Fatalf("qps=1 surge diverged from fault-free run: %s", d)
	}
}

func TestSurgeZeroSilencesRegion(t *testing.T) {
	base := testutil.SmallResult(t)
	res := runScenario(t, "surge europe day=3 for=2 qps=0")
	days := base.Cfg.Days
	hadVolume := false
	for i, c := range base.World.Population.Clients {
		if c.Region != geo.RegionEurope {
			continue
		}
		for d := 3; d <= 4; d++ {
			if base.Passive.At(i*days+d).Queries > 0 {
				hadVolume = true
			}
			if q := res.Passive.At(i*days + d).Queries; q != 0 {
				t.Fatalf("client %d day %d still sent %d queries under qps=0", i, d, q)
			}
		}
	}
	if !hadVolume {
		t.Fatal("baseline had no european volume in the window; test proves nothing")
	}
}

// TestStreamMatchesRunUnderFaults extends the Stream/Run lockstep
// guarantee to faulted runs.
func TestStreamMatchesRunUnderFaults(t *testing.T) {
	base := testutil.SmallResult(t)
	fe, _ := busiestSite(t, base, 3, false)
	sc, err := faults.ParseScenario(fmt.Sprintf("drain %s day=3 for=2; inflate asia day=2 ms=15", fe))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testutil.SmallConfig(1)
	cfg.Scenario = &sc
	full, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := 0
	err = sim.Stream(cfg, func(d sim.DayResult) error {
		for i := range d.Beacons {
			if d.Beacons[i] != full.Beacons[day][i] {
				t.Fatalf("day %d beacon %d differs between Stream and Run under faults", day, i)
			}
		}
		day++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
