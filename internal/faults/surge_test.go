package faults

import (
	"math"
	"strings"
	"testing"
)

func TestParseSurge(t *testing.T) {
	cases := []struct {
		text string
		want Event
	}{
		{"surge europe day=3 qps=4", Event{Kind: Surge, Target: "europe", Day: 3, Days: 1, QPS: 4}},
		{"surge south-america day=3 for=3 qps=6", Event{Kind: Surge, Target: "south-america", Day: 3, Days: 3, QPS: 6}},
		// A brown-out is a surge below 1; qps=0 silences the region.
		{"surge asia day=0 qps=0.5", Event{Kind: Surge, Target: "asia", Day: 0, Days: 1, QPS: 0.5}},
		{"surge asia day=0 qps=0", Event{Kind: Surge, Target: "asia", Day: 0, Days: 1, QPS: 0}},
		{"surge oceania day=1 qps=1e15", Event{Kind: Surge, Target: "oceania", Day: 1, Days: 1, QPS: 1e15}},
	}
	for _, tc := range cases {
		sc, err := ParseScenario(tc.text)
		if err != nil {
			t.Errorf("ParseScenario(%q) = %v", tc.text, err)
			continue
		}
		if len(sc.Events) != 1 || sc.Events[0] != tc.want {
			t.Errorf("ParseScenario(%q) = %+v, want [%+v]", tc.text, sc.Events, tc.want)
		}
	}
}

func TestParseSurgeErrors(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"missing qps", "surge europe day=1", "missing qps="},
		{"qps on drain", "drain paris day=1 qps=2", "takes no qps"},
		{"qps on inflate", "inflate europe day=1 ms=5 qps=2", "takes no qps"},
		{"bad qps", "surge europe day=1 qps=lots", "not a number"},
		{"negative qps", "surge europe day=1 qps=-1", "needs qps >= 0"},
		// strconv accepts "nan" and "inf"; validation rejects them.
		{"nan qps", "surge europe day=1 qps=nan", "non-finite qps"},
		{"inf qps", "surge europe day=1 qps=inf", "non-finite qps"},
		{"overflow qps", "surge europe day=1 qps=1e999", "not a number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario(tc.text)
			if err == nil {
				t.Fatalf("ParseScenario(%q) succeeded, want error mentioning %q", tc.text, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestSurgeValidate(t *testing.T) {
	ok := Event{Kind: Surge, Target: "europe", Day: 0, Days: 1, QPS: 2.5}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid surge rejected: %v", err)
	}
	bad := []Event{
		{Kind: Surge, Target: "europe", Day: 0, Days: 1, QPS: math.NaN()},
		{Kind: Surge, Target: "europe", Day: 0, Days: 1, QPS: math.Inf(1)},
		{Kind: Surge, Target: "europe", Day: 0, Days: 1, QPS: -0.5},
		// qps is surge-only, even when set programmatically.
		{Kind: Drain, Target: "paris", Day: 0, Days: 1, QPS: 2},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: %+v should fail validation", i, e)
		}
	}
}

func TestSurgeFormatRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: Surge, Target: "europe", Day: 2, Days: 3, QPS: 6},
		{Kind: Surge, Target: "asia", Day: 0, Days: 1, QPS: 0},
		{Kind: Surge, Target: "oceania", Day: 1, Days: 1, QPS: 0.30000000000000004},
		{Kind: Surge, Target: "south-america", Day: 9, Days: 2, QPS: 1e15},
	}
	sc := Scenario{Events: events}
	back, err := ParseScenario(sc.Format())
	if err != nil {
		t.Fatalf("reparsing %q: %v", sc.Format(), err)
	}
	for i := range events {
		if back.Events[i] != events[i] {
			t.Errorf("round trip changed event %d: %+v -> %+v", i, events[i], back.Events[i])
		}
	}
	if got := sc.Events[0].Format(); got != "surge europe day=2 for=3 qps=6" {
		t.Errorf("Format() = %q", got)
	}
	if got := sc.Summary(); !strings.HasPrefix(got, "surge europe d2+3; ") {
		t.Errorf("Summary() = %q", got)
	}
}
