package faults_test

import (
	"math"
	"strings"
	"testing"

	"anycastcdn/internal/dns"
	"anycastcdn/internal/faults"
	"anycastcdn/internal/geo"
	"anycastcdn/internal/testutil"
	"anycastcdn/internal/topology"
)

// feMetro and peeringMetro pick resolvable targets from the shared world.
func feMetro(t *testing.T) string {
	t.Helper()
	w := testutil.SmallWorld(t)
	for _, s := range w.Deployment.Backbone.Sites {
		if s.FrontEnd {
			return s.Metro.Name
		}
	}
	t.Fatal("deployment has no front-end")
	return ""
}

func TestNewInjectorResolvesTargets(t *testing.T) {
	w := testutil.SmallWorld(t)
	sc, err := faults.ParseScenario(
		"drain " + feMetro(t) + " day=1\nldns-outage europe day=2\ninflate asia day=3 ms=10")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(sc, w.Deployment, w.Mapping, w.Metros)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Empty() {
		t.Fatal("compiled injector reports empty")
	}
	if got := inj.Scenario().Summary(); got != sc.Summary() {
		t.Fatalf("Scenario() = %q, want %q", got, sc.Summary())
	}
}

func TestNewInjectorTargetErrors(t *testing.T) {
	w := testutil.SmallWorld(t)
	cases := []struct {
		name, text, wantErr string
	}{
		{"unknown metro", "drain atlantis day=1", "not a deployment metro"},
		{"unknown region", "inflate atlantis day=1 ms=5", "not a world region"},
		{"unknown outage region", "ldns-outage nowhere day=1", "not a world region"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := faults.ParseScenario(tc.text)
			if err != nil {
				t.Fatal(err)
			}
			_, err = faults.NewInjector(sc, w.Deployment, w.Mapping, w.Metros)
			if err == nil {
				t.Fatalf("NewInjector accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	// An invalid scenario is rejected before target resolution.
	bad := faults.Scenario{Events: []faults.Event{{Kind: faults.Drain, Target: "paris", Day: 0, Days: 0}}}
	if _, err := faults.NewInjector(bad, w.Deployment, w.Mapping, w.Metros); err == nil {
		t.Fatal("NewInjector accepted an invalid scenario")
	}
}

// TestSurgeFactorAndScaleQueries pins the injector-level surge semantics:
// factors multiply where windows stack, scaling rounds half-up, and an
// absurd qps clamps to the int32 range the passive log stores.
func TestSurgeFactorAndScaleQueries(t *testing.T) {
	w := testutil.SmallWorld(t)
	sc, err := faults.ParseScenario(
		"surge europe day=1 for=2 qps=3; surge europe day=2 qps=2; surge asia day=1 qps=1e15; surge oceania day=1 qps=0.25")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(sc, w.Deployment, w.Mapping, w.Metros)
	if err != nil {
		t.Fatal(err)
	}
	factors := []struct {
		region geo.Region
		day    int
		want   float64
	}{
		{geo.RegionEurope, 0, 1},
		{geo.RegionEurope, 1, 3},
		{geo.RegionEurope, 2, 6}, // stacked flash crowds compound
		{geo.RegionEurope, 3, 1},
		{geo.RegionAsia, 1, 1e15},
		{geo.RegionNorthAmerica, 1, 1},
	}
	for _, tc := range factors {
		if got := inj.SurgeFactor(tc.region, tc.day); got != tc.want {
			t.Errorf("SurgeFactor(%s, %d) = %v, want %v", tc.region, tc.day, got, tc.want)
		}
	}
	scales := []struct {
		region geo.Region
		day    int
		q      int
		want   int
	}{
		{geo.RegionEurope, 0, 10, 10},           // outside the window: untouched
		{geo.RegionEurope, 1, 10, 30},           // x3
		{geo.RegionEurope, 2, 3, 18},            // x6 stacked
		{geo.RegionOceania, 1, 10, 3},           // 2.5 rounds half-up
		{geo.RegionAsia, 1, 10, math.MaxInt32},  // clamped to the log's int32
		{geo.RegionEurope, 1, 0, 0},             // nothing to scale
	}
	for _, tc := range scales {
		if got := inj.ScaleQueries(tc.region, tc.day, tc.q); got != tc.want {
			t.Errorf("ScaleQueries(%s, %d, %d) = %d, want %d", tc.region, tc.day, tc.q, got, tc.want)
		}
	}
}

// TestNilInjectorIsInert pins the nil-safety contract every sim hook
// relies on: a nil *Injector behaves exactly like no injector.
func TestNilInjectorIsInert(t *testing.T) {
	var inj *faults.Injector
	if !inj.Empty() {
		t.Fatal("nil injector is not Empty")
	}
	if inj.ActiveOn(0) {
		t.Fatal("nil injector is active")
	}
	if inj.Drained(topology.SiteID(1), 0) || inj.Withdrawn(topology.SiteID(1), 0) {
		t.Fatal("nil injector drains or withdraws")
	}
	if inj.InflationMs(geo.RegionEurope, 0) != 0 {
		t.Fatal("nil injector inflates")
	}
	l := dns.LDNS{ID: 3, Name: "x"}
	if got := inj.Resolver(l, 0); got != l {
		t.Fatal("nil injector rewrote a resolver")
	}
	if !inj.Scenario().Empty() {
		t.Fatal("nil injector has a scenario")
	}
}

func TestInjectorDayWindows(t *testing.T) {
	w := testutil.SmallWorld(t)
	fe := feMetro(t)
	sc, err := faults.ParseScenario("drain " + fe + " day=2 for=2")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(sc, w.Deployment, w.Mapping, w.Metros)
	if err != nil {
		t.Fatal(err)
	}
	var site topology.SiteID = topology.InvalidSite
	for _, s := range w.Deployment.Backbone.Sites {
		if s.Metro.Name == fe {
			site = s.ID
		}
	}
	for day, want := range map[int]bool{1: false, 2: true, 3: true, 4: false} {
		if inj.Drained(site, day) != want {
			t.Errorf("Drained(%s, %d) = %v, want %v", fe, day, !want, want)
		}
		if inj.Withdrawn(site, day) {
			t.Errorf("drain event must not withdraw the route (day %d)", day)
		}
	}
}
