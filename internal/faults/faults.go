// Package faults is the deterministic fault-injection layer of the
// simulator: it composes timed disruption events — the kind the paper's
// operational sections describe but its measurement month happened to
// avoid — into a simulated study, so the analysis machinery of
// internal/experiments can quantify how the anycast CDN degrades and
// recovers.
//
// The event vocabulary mirrors the paper's operational story:
//
//   - drain: a front-end is taken out of service (maintenance drain or
//     failure); hot-potato routing inside the CDN AS falls through to the
//     next-nearest front-end while the peering site keeps announcing the
//     anycast prefix.
//   - flap: a peering site's anycast route is withdrawn for the window
//     and restored at its end (one flap cycle). Clients whose BGP path
//     entered there shift to their next-ranked peering site — the ~20%
//     catchment shift of §4.2/§5, forced mid-study.
//   - ldns-outage: the ISP resolvers of a region go dark; their clients
//     fall back to the nearest public resolver, whose distant geolocation
//     changes which front-end candidates the authoritative DNS returns
//     (§3.3's LDNS-grained view, degraded the way §6's LDNS grouping is).
//   - inflate: transit congestion adds a fixed latency to every path of a
//     region's clients for the window.
//   - surge: a flash crowd multiplies the query volume of a region's
//     clients by a factor for the window — the load-management papers'
//     "large burst of traffic" that static anycast cannot steer away from
//     an overloaded front-end. Query counts scale deterministically
//     (half-up rounding, no randomness consumed), so qps=1 is exactly a
//     no-op.
//
// Everything is pure and replay-deterministic: a Scenario applied to a
// world consumes no randomness, so the same seed plus the same scenario
// is byte-identical across runs, and an empty scenario is byte-identical
// to a fault-free run.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"anycastcdn/internal/units"
)

// Kind classifies a fault event.
type Kind int

// Event kinds, in scenario-text spelling order.
const (
	// Drain takes a front-end out of service for the window.
	Drain Kind = iota
	// Flap withdraws a peering site's anycast route for the window.
	Flap
	// LDNSOutage fails a region's ISP resolvers for the window.
	LDNSOutage
	// Inflate adds ExtraMs to every path of a region's clients.
	Inflate
	// Surge multiplies the query volume of a region's clients by QPS.
	Surge
)

// String returns the scenario-text spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Drain:
		return "drain"
	case Flap:
		return "flap"
	case LDNSOutage:
		return "ldns-outage"
	case Inflate:
		return "inflate"
	case Surge:
		return "surge"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// kindByName inverts String for the parser.
var kindByName = map[string]Kind{
	"drain":       Drain,
	"flap":        Flap,
	"ldns-outage": LDNSOutage,
	"inflate":     Inflate,
	"surge":       Surge,
}

// Event is one timed disruption.
type Event struct {
	Kind Kind
	// Target names what the event hits: a site metro name for Drain and
	// Flap (e.g. "paris"), a region for LDNSOutage and Inflate (e.g.
	// "europe"). Resolution against the built world happens in
	// NewInjector.
	Target string
	// Day is the first simulated day the event is active.
	Day int
	// Days is the event duration in days (>= 1).
	Days int
	// ExtraMs is the added latency of an Inflate event; zero otherwise.
	ExtraMs units.Millis
	// QPS is the query-volume multiplier of a Surge event; zero
	// otherwise. qps=0 silences the region for the window, qps=1 is a
	// no-op, and fractional values are legal (a brown-out is a surge
	// below 1).
	QPS float64
}

// End returns the first day the event is no longer active.
func (e Event) End() int { return e.Day + e.Days }

// ActiveOn reports whether the event is in effect on the given day.
func (e Event) ActiveOn(day int) bool { return day >= e.Day && day < e.End() }

// Validate checks the event's fields independently of any world.
func (e Event) Validate() error {
	if _, ok := kindByName[e.Kind.String()]; !ok {
		return fmt.Errorf("faults: unknown event kind %d", int(e.Kind))
	}
	if err := validTarget(e.Target); err != nil {
		return err
	}
	if e.Day < 0 {
		return fmt.Errorf("faults: %s %s starts on negative day %d", e.Kind, e.Target, e.Day)
	}
	if e.Days < 1 {
		return fmt.Errorf("faults: %s %s has non-positive duration %d days", e.Kind, e.Target, e.Days)
	}
	ms := e.ExtraMs.Float()
	if math.IsNaN(ms) || math.IsInf(ms, 0) {
		return fmt.Errorf("faults: %s %s has non-finite ms", e.Kind, e.Target)
	}
	if e.Kind == Inflate {
		if ms <= 0 {
			return fmt.Errorf("faults: inflate %s needs ms > 0, got %v", e.Target, ms)
		}
	} else if ms != 0 {
		return fmt.Errorf("faults: %s %s carries ms=%v but only inflate takes ms", e.Kind, e.Target, ms)
	}
	if e.Kind == Surge {
		if math.IsNaN(e.QPS) || math.IsInf(e.QPS, 0) {
			return fmt.Errorf("faults: surge %s has non-finite qps", e.Target)
		}
		if e.QPS < 0 {
			return fmt.Errorf("faults: surge %s needs qps >= 0, got %v", e.Target, e.QPS)
		}
	} else if e.QPS != 0 {
		return fmt.Errorf("faults: %s %s carries qps=%v but only surge takes qps", e.Kind, e.Target, e.QPS)
	}
	return nil
}

// validTarget enforces the token shape the text form can round-trip.
func validTarget(t string) error {
	if t == "" {
		return fmt.Errorf("faults: event with empty target")
	}
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("faults: target %q contains %q; targets are lowercase metro or region tokens", t, r)
		}
	}
	return nil
}

// Format renders the event in canonical scenario text.
func (e Event) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s day=%d for=%d", e.Kind, e.Target, e.Day, e.Days)
	if e.Kind == Inflate {
		fmt.Fprintf(&b, " ms=%s", strconv.FormatFloat(e.ExtraMs.Float(), 'g', -1, 64))
	}
	if e.Kind == Surge {
		fmt.Fprintf(&b, " qps=%s", strconv.FormatFloat(e.QPS, 'g', -1, 64))
	}
	return b.String()
}

// Scenario is an ordered list of fault events. The zero value is the
// empty scenario, which injects nothing.
type Scenario struct {
	Events []Event
}

// Empty reports whether the scenario has no events.
func (s Scenario) Empty() bool { return len(s.Events) == 0 }

// MaxDay returns the last day any event is active, or -1 for an empty
// scenario.
func (s Scenario) MaxDay() int {
	last := -1
	for _, e := range s.Events {
		if e.End()-1 > last {
			last = e.End() - 1
		}
	}
	return last
}

// Validate checks every event.
func (s Scenario) Validate() error {
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Format renders the scenario in canonical text: one event per line, in
// event order. ParseScenario(s.Format()) yields an equal scenario.
func (s Scenario) Format() string {
	lines := make([]string, len(s.Events))
	for i, e := range s.Events {
		lines[i] = e.Format()
	}
	return strings.Join(lines, "\n")
}

// ActiveOn returns the events in effect on the given day, in scenario
// order.
func (s Scenario) ActiveOn(day int) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.ActiveOn(day) {
			out = append(out, e)
		}
	}
	return out
}

// ParseScenario parses the scenario text form. Events are separated by
// newlines or semicolons; '#' starts a comment that runs to end of line.
// Each event is
//
//	<kind> <target> day=<int> [for=<int>] [ms=<float>] [qps=<float>]
//
// where kind is drain, flap, ldns-outage, inflate or surge; for defaults
// to 1; ms is required for inflate and rejected elsewhere; qps is
// required for surge and rejected elsewhere. The parse is strict enough
// that parse → Format → parse round-trips to equal events.
func ParseScenario(text string) (Scenario, error) {
	var sc Scenario
	for ln, rawLine := range strings.Split(text, "\n") {
		if i := strings.IndexByte(rawLine, '#'); i >= 0 {
			rawLine = rawLine[:i]
		}
		for _, raw := range strings.Split(rawLine, ";") {
			raw = strings.TrimSpace(raw)
			if raw == "" {
				continue
			}
			e, err := parseEvent(raw)
			if err != nil {
				return Scenario{}, fmt.Errorf("faults: line %d: %w", ln+1, err)
			}
			sc.Events = append(sc.Events, e)
		}
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// parseEvent parses one event clause.
func parseEvent(raw string) (Event, error) {
	fields := strings.Fields(raw)
	if len(fields) < 3 {
		return Event{}, fmt.Errorf("event %q needs at least '<kind> <target> day=<n>'", raw)
	}
	kind, ok := kindByName[fields[0]]
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q (want drain, flap, ldns-outage, inflate or surge)", fields[0])
	}
	e := Event{Kind: kind, Target: fields[1], Days: 1}
	if strings.Contains(fields[1], "=") {
		return Event{}, fmt.Errorf("event %q is missing its target (got option %q)", raw, fields[1])
	}
	seen := map[string]bool{}
	haveDay := false
	for _, f := range fields[2:] {
		key, val, found := strings.Cut(f, "=")
		if !found {
			return Event{}, fmt.Errorf("option %q is not key=value", f)
		}
		if seen[key] {
			return Event{}, fmt.Errorf("duplicate option %q", key)
		}
		seen[key] = true
		switch key {
		case "day":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Event{}, fmt.Errorf("day=%q is not an integer", val)
			}
			e.Day, haveDay = n, true
		case "for":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Event{}, fmt.Errorf("for=%q is not an integer", val)
			}
			e.Days = n
		case "ms":
			ms, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("ms=%q is not a number", val)
			}
			e.ExtraMs = units.Millis(ms)
		case "qps":
			if kind != Surge {
				return Event{}, fmt.Errorf("%s takes no qps= option", kind)
			}
			qps, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("qps=%q is not a number", val)
			}
			e.QPS = qps
		default:
			return Event{}, fmt.Errorf("unknown option %q (want day=, for=, ms= or qps=)", key)
		}
	}
	if !haveDay {
		return Event{}, fmt.Errorf("event %q is missing day=", raw)
	}
	if kind == Surge && !seen["qps"] {
		return Event{}, fmt.Errorf("event %q is missing qps=", raw)
	}
	return e, nil
}

// Summary returns a compact single-line description of the scenario for
// logs and report headers, e.g. "drain paris d2+3; inflate europe d5+1".
func (s Scenario) Summary() string {
	if s.Empty() {
		return "no faults"
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = fmt.Sprintf("%s %s d%d+%d", e.Kind, e.Target, e.Day, e.Days)
	}
	return strings.Join(parts, "; ")
}

// Kinds returns the distinct event kinds of the scenario, sorted, for
// report summaries.
func (s Scenario) Kinds() []Kind {
	set := map[Kind]bool{}
	for _, e := range s.Events {
		set[e.Kind] = true
	}
	out := make([]Kind, 0, len(set))
	//replay:commutative keys only; sorted immediately below, so collection order is discarded
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
