package analysis

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteSARIF decodes the emitted log and pins the subset of SARIF
// 2.1.0 that consumers key on: schema, version, driver name, one rule
// per analyzer (plus synthesized rules for non-analyzer checks), and a
// physical location per result.
func TestWriteSARIF(t *testing.T) {
	diags := []Diagnostic{
		{File: "pkg/a.go", Line: 3, Col: 7, Check: "replaysafety", Message: "first"},
		{File: "pkg/b.go", Line: 9, Col: 1, Check: "lint", Message: "malformed directive"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, []*Analyzer{ReplaySafety, HotPathAlloc}, diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version = %q, $schema = %q; want 2.1.0 with a schema URI", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "anycastvet" {
		t.Errorf("driver name = %q, want anycastvet", run.Tool.Driver.Name)
	}
	rules := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, id := range []string{"replaysafety", "hotpathalloc", "lint"} {
		if !rules[id] {
			t.Errorf("rule %q missing (got %v)", id, rules)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "replaysafety" || first.Level != "error" || first.Message.Text != "first" {
		t.Errorf("first result = %+v, want replaysafety/error/first", first)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "pkg/a.go" || loc.Region.StartLine != 3 || loc.Region.StartColumn != 7 {
		t.Errorf("first location = %+v, want pkg/a.go:3:7", loc)
	}
}

// TestWriteSARIFEmpty pins that a clean run still emits a valid log with
// an empty (not null) results array — consumers reject null.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, Analyzers(), nil); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"results": null`)) {
		t.Errorf("empty run emitted null results:\n%s", buf.String())
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}
}
