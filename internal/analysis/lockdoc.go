package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDoc requires every exported type in an internal/ package that holds
// a sync.Mutex or sync.RWMutex field directly to state its locking
// contract in the doc comment: which fields the lock guards, or that the
// type is safe for concurrent use. The check is lexical — the doc must
// mention "lock", "guard", or "concurren(t|cy)" — because the point is
// that a human wrote the contract down, not that a machine can verify it.
//
// Only direct fields count: a type that embeds a documented lock-holding
// type inherits that type's contract.
var LockDoc = &Analyzer{
	Name: "lockdoc",
	Doc:  "exported mutex-holding types in internal/ must document their locking contract",
	Run:  runLockDoc,
}

func runLockDoc(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path, "/internal/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() || pass.InTestFile(ts.Pos()) {
					continue
				}
				obj, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok || !hasDirectLockField(obj.Type()) {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc == nil || !mentionsLocking(doc.Text()) {
					pass.Reportf(ts.Name.Pos(),
						"exported type %s holds a sync lock but its doc comment does not state the locking contract; say what the mutex guards (mention \"lock\", \"guard\", or \"concurrent\")", ts.Name.Name)
				}
			}
		}
	}
}

// mentionsLocking reports whether the doc text names the locking contract.
func mentionsLocking(doc string) bool {
	low := strings.ToLower(doc)
	return strings.Contains(low, "lock") ||
		strings.Contains(low, "guard") ||
		strings.Contains(low, "concurren")
}

// hasDirectLockField reports whether t's underlying struct has a field
// whose type is sync.Mutex or sync.RWMutex (or a pointer to one).
func hasDirectLockField(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if p, ok := ft.Underlying().(*types.Pointer); ok {
			ft = p.Elem()
		}
		if isSyncLock(ft) {
			return true
		}
	}
	return false
}

// isSyncLock reports whether t is exactly sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
