package analysis

import "testing"

// TestHotPathAlloc covers every allocation-forcing construct the
// analyzer flags inside a //perf:hotpath function, each paired with the
// allocation-free form it demands.
func TestHotPathAlloc(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "capturing closure",
			src: `package hot

//perf:hotpath
func F() func() int {
	n := 0
	f := func() int { return n }
	return f
}
`,
			want: []string{"a.go:6:hotpathalloc"},
		},
		{
			name: "non-capturing closure is free",
			src: `package hot

//perf:hotpath
func F() func() int {
	f := func() int { return 1 }
	return f
}
`,
			want: nil,
		},
		{
			name: "string concatenation",
			src: `package hot

//perf:hotpath
func F(a, b string) string {
	s := a + b
	s += a
	return s
}
`,
			want: []string{"a.go:5:hotpathalloc", "a.go:6:hotpathalloc"},
		},
		{
			name: "fmt call",
			src: `package hot

import "fmt"

//perf:hotpath
func F(x int) {
	fmt.Println(x)
}
`,
			want: []string{"a.go:7:hotpathalloc"},
		},
		{
			name: "interface boxing: assignment, conversion, return",
			src: `package hot

//perf:hotpath
func F(x int) any {
	var v any
	v = x
	_ = v
	w := any(x)
	_ = w
	return x
}
`,
			want: []string{"a.go:6:hotpathalloc", "a.go:8:hotpathalloc", "a.go:10:hotpathalloc"},
		},
		{
			name: "interface-to-interface and nil are free",
			src: `package hot

//perf:hotpath
func F(x any) any {
	var v any
	v = x
	_ = v
	if false {
		return nil
	}
	return x
}
`,
			want: nil,
		},
		{
			name: "variadic call builds the argument slice",
			src: `package hot

func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

//perf:hotpath
func F(xs []int) int {
	a := sum(1, 2, 3)
	b := sum(xs...)
	return a + b
}
`,
			want: []string{"a.go:13:hotpathalloc"}, // sum(xs...) reuses the slice: free
		},
		{
			name: "un-presized append in loop",
			src: `package hot

//perf:hotpath
func F(xs []int) []int {
	out := []int{}
	pre := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
		pre = append(pre, x)
	}
	return append(out, pre...)
}
`,
			// pre is pre-sized and the final append is outside the loop.
			want: []string{"a.go:8:hotpathalloc"},
		},
		{
			name: "append to parameter is the caller's contract",
			src: `package hot

//perf:hotpath
func F(dst []int, xs []int) []int {
	for _, x := range xs {
		dst = append(dst, x)
	}
	return dst
}
`,
			want: nil,
		},
		{
			name: "map literal",
			src: `package hot

//perf:hotpath
func F() int {
	m := map[string]int{"a": 1}
	return m["a"]
}
`,
			want: []string{"a.go:5:hotpathalloc"},
		},
		{
			name: "un-annotated function is out of scope",
			src: `package hot

import "fmt"

func F(a, b string) string {
	fmt.Println(a + b)
	m := map[string]int{}
	_ = m
	return a + b
}
`,
			want: nil,
		},
		{
			name: "lint:ignore justifies a one-time cost",
			src: `package hot

//perf:hotpath
func F(a, b string) string {
	//lint:ignore hotpathalloc fixture justification
	return a + b
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkFixture(t, HotPathAlloc, "anycastcdn/internal/hot", map[string]string{"a.go": tc.src})
			wantDiags(t, got, tc.want)
		})
	}
}

// TestHotPathAllocModuleFact pins that the annotation is collected as a
// module fact: the annotated declaration is enforced during a multi-
// package run even though the analysis task for its package cannot see
// the other packages' files.
func TestHotPathAllocModuleFact(t *testing.T) {
	got := checkModuleFixture(t, HotPathAlloc, map[string]map[string]string{
		"a": {"a/a.go": `package a

//perf:hotpath
func Hot() string {
	s := "x" + "y"
	return s
}
`},
		"b": {"b/b.go": `package b

import "a"

func Use() string {
	return a.Hot()
}
`},
	})
	wantDiags(t, got, []string{"a/a.go:5:hotpathalloc"})
}
