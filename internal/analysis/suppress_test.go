package analysis

import "testing"

// TestIgnoreCoversMultiLineStatement is the regression test for the
// suppression edge case: a //lint:ignore above a statement that spans
// several lines must suppress diagnostics reported on the continuation
// lines, not just the statement's first line. Here the range statement
// starts on the line below the directive but its violations are
// reported two and three lines further down.
func TestIgnoreCoversMultiLineStatement(t *testing.T) {
	src := `package sim

func Sums(m map[string]float64) (float64, []string) {
	var total float64
	var keys []string
	//lint:ignore replaysafety fixture: order independence argued elsewhere
	for k, v := range m {
		total += v
		keys = append(keys, k)
	}
	var again float64
	for _, v := range m {
		again += v
	}
	return total + again, keys
}
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/sim", map[string]string{"a.go": src})
	// Lines 8-9 are continuation lines of the suppressed range statement;
	// the second loop (line 13) is past the statement's extent and must
	// still be reported.
	wantDiags(t, got, []string{"a.go:13:replaysafety"})
}

// TestIgnoreTrailingOnMultiLineStatement pins the trailing-comment form:
// a directive at the end of the statement's first line covers the whole
// statement extent too.
func TestIgnoreTrailingOnMultiLineStatement(t *testing.T) {
	src := `package sim

func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { //lint:ignore replaysafety fixture justification
		total += v
	}
	return total
}
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/sim", map[string]string{"a.go": src})
	wantDiags(t, got, nil)
}

// TestIgnoreWrongCheckDoesNotSuppress pins that coverage is per check
// name: an ignore for a different analyzer leaves the diagnostic alone.
func TestIgnoreWrongCheckDoesNotSuppress(t *testing.T) {
	src := `package sim

func Sum(m map[string]float64) float64 {
	var total float64
	//lint:ignore nopanic wrong check name
	for _, v := range m {
		total += v
	}
	return total
}
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/sim", map[string]string{"a.go": src})
	wantDiags(t, got, []string{"a.go:7:replaysafety"})
}

// TestMalformedIgnoreReported pins that a directive without a reason is
// itself a diagnostic — the escape hatch cannot silently rot — and does
// not suppress anything.
func TestMalformedIgnoreReported(t *testing.T) {
	src := `package sim

func Sum(m map[string]float64) float64 {
	var total float64
	//lint:ignore replaysafety
	for _, v := range m {
		total += v
	}
	return total
}
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/sim", map[string]string{"a.go": src})
	wantDiags(t, got, []string{"a.go:5:lint", "a.go:7:replaysafety"})
}
