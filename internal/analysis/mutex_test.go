package analysis

import "testing"

func TestMutexHygieneCopies(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "mutex parameter by value",
			src: `package x

import "sync"

func f(mu sync.Mutex) { _ = mu }
`,
			want: []string{"a.go:5:mutexhygiene"},
		},
		{
			name: "pointer parameter is fine",
			src: `package x

import "sync"

func f(mu *sync.Mutex) { _ = mu }
`,
			want: nil,
		},
		{
			name: "struct containing a lock passed and assigned by value",
			src: `package x

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func use(S) {}

func f(s S) {
	t := s
	use(t)
}
`,
			// parameter of use, parameter of f, assignment t := s, arg use(t)
			want: []string{"a.go:10:mutexhygiene", "a.go:12:mutexhygiene", "a.go:13:mutexhygiene", "a.go:14:mutexhygiene"},
		},
		{
			name: "value receiver with embedded rwmutex",
			src: `package x

import "sync"

type S struct{ sync.RWMutex }

func (s S) Get() int { return 0 }
`,
			want: []string{"a.go:7:mutexhygiene"},
		},
		{
			name: "range over lock-bearing slice values",
			src: `package x

import "sync"

type S struct{ mu sync.Mutex }

func f(ss []S) int {
	n := 0
	for _, s := range ss {
		_ = s
		n++
	}
	return n
}
`,
			// parameter ss is []S (slice does not itself copy), range value does
			want: []string{"a.go:9:mutexhygiene"},
		},
		{
			name: "constructing fresh values is fine",
			src: `package x

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func f() *S {
	s := S{n: 1}
	return &s
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{"a.go": tc.src}
			wantDiags(t, checkFixture(t, MutexHygiene, "anycastcdn/internal/fixture", files), tc.want)
		})
	}
}

func TestMutexHygieneLockBalance(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "lock with no unlock",
			src: `package x

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Bad() {
	s.mu.Lock()
}
`,
			want: []string{"a.go:8:mutexhygiene"},
		},
		{
			name: "deferred unlock balances",
			src: `package x

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Good() {
	s.mu.Lock()
	defer s.mu.Unlock()
}
`,
			want: nil,
		},
		{
			name: "conditional early unlock balances (dnswire Close pattern)",
			src: `package x

import "sync"

type S struct {
	mu     sync.Mutex
	closed bool
}

func (s *S) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return nil
}
`,
			want: nil,
		},
		{
			name: "rlock needs runlock, not unlock",
			src: `package x

import "sync"

type S struct{ mu sync.RWMutex }

func (s *S) Bad() {
	s.mu.RLock()
	s.mu.Unlock()
}

func (s *S) Good() {
	s.mu.RLock()
	s.mu.RUnlock()
}
`,
			want: []string{"a.go:8:mutexhygiene"},
		},
		{
			name: "different receivers tracked separately",
			src: `package x

import "sync"

type S struct{ a, b sync.Mutex }

func (s *S) Bad() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
}
`,
			want: []string{"a.go:8:mutexhygiene"},
		},
		{
			name: "non-sync Lock method is not tracked",
			src: `package x

type flock struct{}

func (flock) Lock() {}

func f(fl flock) {
	fl.Lock()
}
`,
			want: nil,
		},
		{
			name: "unlock in deferred closure balances",
			src: `package x

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Good() {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{"a.go": tc.src}
			wantDiags(t, checkFixture(t, MutexHygiene, "anycastcdn/internal/fixture", files), tc.want)
		})
	}
}
