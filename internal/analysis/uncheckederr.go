package analysis

import (
	"go/ast"
	"go/types"
)

// uncheckedMethods are the method names whose error results must not be
// dropped: connection/listener teardown, net.Conn deadline setters, and
// the buffered-writer/encoder flush family. These are exactly the calls
// whose silent failure corrupts measurements (a deadline that never
// armed, a CSV row that never hit disk) rather than crashing loudly.
var uncheckedMethods = map[string]bool{
	"Close":            true,
	"Flush":            true,
	"Encode":           true,
	"Sync":             true,
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

// UncheckedErr flags statements that drop the error result of the methods
// above. A plain `x.Close()` statement must become `err := x.Close()`
// (handled) or `_ = x.Close()` (an explicit, reviewable discard).
// `defer x.Close()` is allowed as idiomatic best-effort cleanup; deferring
// any of the other methods still discards a meaningful error and is
// flagged.
var UncheckedErr = &Analyzer{
	Name: "uncheckederr",
	Doc:  "flag dropped errors from Close, Flush, Encode, Sync, and deadline setters",
	Run:  runUncheckedErr,
}

func runUncheckedErr(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDropped(pass, call, "")
				}
			case *ast.GoStmt:
				checkDropped(pass, n.Call, "go ")
			case *ast.DeferStmt:
				if name, recv, ok := watchedCall(pass, n.Call); ok && name != "Close" {
					pass.Reportf(n.Call.Pos(),
						"deferred %s.%s drops its error; call it in a deferred closure and handle the error", recv, name)
				}
			}
			return true
		})
	}
}

// checkDropped reports call when it is a watched method used as a bare
// statement.
func checkDropped(pass *Pass, call *ast.CallExpr, prefix string) {
	if name, recv, ok := watchedCall(pass, call); ok {
		pass.Reportf(call.Pos(),
			"%s%s.%s drops its error; handle it or assign to _ explicitly", prefix, recv, name)
	}
}

// watchedCall reports whether call invokes one of uncheckedMethods with an
// error (as last result) in its signature, returning the method name and
// the receiver's source text.
func watchedCall(pass *Pass, call *ast.CallExpr) (name, recv string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || !uncheckedMethods[sel.Sel.Name] {
		return "", "", false
	}
	fn, isFn := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig {
		return "", "", false
	}
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return "", "", false
	}
	return sel.Sel.Name, types.ExprString(sel.X), true
}
