package analysis

import (
	"go/ast"
)

// This file is the solver half of the dataflow framework: a generic
// forward/backward worklist fixpoint over the CFGs of cfg.go,
// parameterized over the state type the same way internal/stats is
// generic over its sample type — the lattice is supplied as values
// (bottom, join, equality, transfer), the solver owns only the
// iteration order and convergence.
//
// States must be treated as immutable by Transfer and Join: return a
// fresh (or shared-structure) value rather than mutating the argument,
// because a block's In state is the join of several predecessors' Out
// states and aliasing them would corrupt the fixpoint.

// FlowAnalysis defines one dataflow problem over a CFG.
type FlowAnalysis[S any] struct {
	// Backward runs the transfer functions against edge direction
	// (facts flow from Succs to Preds, nodes fold in reverse).
	Backward bool
	// Boundary is the fact at the entry block (forward) or exit block
	// (backward).
	Boundary S
	// Bottom produces the identity for Join — the fact of an edge never
	// taken. Join(Bottom(), x) must equal x.
	Bottom func() S
	// Join merges the facts of two converging paths.
	Join func(a, b S) S
	// Equal reports lattice-state equality; the fixpoint has converged
	// when no block's input changes under Join.
	Equal func(a, b S) bool
	// Transfer applies one node's effect to the state. Nodes are the
	// statements and control expressions of a block, folded in execution
	// order (reverse order for backward analyses).
	Transfer func(n ast.Node, s S) S
	// EdgeTransfer, optional, refines the fact flowing along one edge
	// before it joins into the successor — this is where a branch
	// condition (from.Cond, true on from.Succs[0], false on
	// from.Succs[1]) sharpens the state. Forward analyses only.
	EdgeTransfer func(from, to *Block, s S) S
}

// FlowResult holds the per-block fixpoint: In[i] is the fact at entry
// of Blocks[i], Out[i] at its exit (for backward analyses In is the
// fact *after* the block in execution order — i.e. facts still flow
// In -> Out through the transfer fold).
type FlowResult[S any] struct {
	In, Out []S
}

// Solve runs the worklist fixpoint of a over g and returns the
// per-block facts. Every block is processed at least once (unreachable
// blocks converge immediately from Bottom), so analyzers can still
// inspect dead code without special cases.
func Solve[S any](g *CFG, a FlowAnalysis[S]) *FlowResult[S] {
	n := len(g.Blocks)
	res := &FlowResult[S]{In: make([]S, n), Out: make([]S, n)}
	for i := 0; i < n; i++ {
		res.In[i] = a.Bottom()
		res.Out[i] = a.Bottom()
	}
	boundary := g.Entry
	if a.Backward {
		boundary = g.Exit
	}
	res.In[boundary.Index] = a.Boundary

	// Worklist seeded in index order (approximately reverse post-order
	// for the forward builder's numbering); the queued set keeps each
	// block at most once in flight.
	queue := make([]*Block, 0, n)
	queued := make([]bool, n)
	push := func(blk *Block) {
		if !queued[blk.Index] {
			queued[blk.Index] = true
			queue = append(queue, blk)
		}
	}
	for _, blk := range g.Blocks {
		push(blk)
	}

	preds := func(blk *Block) []*Block { return blk.Preds }
	succs := func(blk *Block) []*Block { return blk.Succs }
	if a.Backward {
		preds, succs = succs, preds
	}

	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		queued[blk.Index] = false

		// In = join over incoming edges (boundary block keeps its seed).
		in := res.In[blk.Index]
		if blk != boundary {
			in = a.Bottom()
			for _, p := range preds(blk) {
				fact := res.Out[p.Index]
				if a.EdgeTransfer != nil && !a.Backward {
					fact = a.EdgeTransfer(p, blk, fact)
				}
				in = a.Join(in, fact)
			}
			res.In[blk.Index] = in
		}

		out := a.FoldBlock(blk, in)
		if a.Equal(out, res.Out[blk.Index]) {
			continue
		}
		res.Out[blk.Index] = out
		for _, s := range succs(blk) {
			push(s)
		}
	}
	return res
}

// FoldBlock applies the transfer function across one block's nodes
// (reversed for backward analyses), returning the block's output fact
// for the given input. Analyzers reuse it after Solve to recover the
// state immediately before a node of interest.
func (a FlowAnalysis[S]) FoldBlock(blk *Block, in S) S {
	s := in
	if a.Backward {
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			s = a.Transfer(blk.Nodes[i], s)
		}
		return s
	}
	for _, n := range blk.Nodes {
		s = a.Transfer(n, s)
	}
	return s
}
