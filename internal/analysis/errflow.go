package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ErrFlow is the flow-sensitive error tracker. Where uncheckederr is
// syntactic (an error-returning call whose result is dropped on the
// floor), errflow follows error values along CFG paths and reports the
// bugs that only show up as path properties:
//
//   - overwrite before check: an assignment to an error variable whose
//     previous error, on every path reaching the assignment, was never
//     read — the first failure is silently lost.
//   - shadowed check: a nil check that reads an outer `err` while a
//     different, shadowing variable of the same name was assigned on
//     this path and never checked — the check looks right and tests
//     the wrong value.
//   - use on the error path: dereferencing, indexing, or calling a
//     result on a path where the error it was returned with is known
//     non-nil (refined from the branch condition) — the canonical
//     `resp, err := ...; if err != nil { resp.Body.Close() }` nil
//     dereference.
//
// The analysis is a forward may-analysis: "consumed" joins with OR (a
// read on either branch counts), "known non-nil" joins with AND (only
// if established on every incoming path), so each finding holds on all
// (respectively some) executions and the false-positive rate stays
// lint-worthy. Error variables captured by closures or having their
// address taken are excluded — their reads happen off-path.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "flow-sensitive error tracking: overwritten-before-checked, shadowed checks, results used on the error path",
	Run:  runErrFlow,
}

func runErrFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeErrBody(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyzeErrBody(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// errFact is what the analysis knows about one error variable on the
// current path.
type errFact struct {
	assignPos token.Pos // site of the live (unconsumed) assignment
	assigned  bool      // an error value is pending
	consumed  bool      // read since assignment
	checked   bool      // nil-compared since assignment
	nonNil    bool      // branch refinement proved it non-nil here
}

// resultFact pairs a result variable with the error variable returned
// alongside it, so a use of the result can be tied to the error path.
type resultFact struct {
	errVar *types.Var
	pos    token.Pos
}

// errState is the lattice element: facts per tracked error variable
// plus live result→error pairings. A nil *errState is bottom (path not
// reached). Values are copy-on-write.
type errState struct {
	errs map[*types.Var]errFact
	res  map[*types.Var]resultFact
}

func (s *errState) clone() *errState {
	out := &errState{
		errs: make(map[*types.Var]errFact, len(s.errs)),
		res:  make(map[*types.Var]resultFact, len(s.res)),
	}
	for k, v := range s.errs {
		out.errs[k] = v
	}
	for k, v := range s.res {
		out.res[k] = v
	}
	return out
}

func joinErr(a, b *errState) *errState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for v, fb := range b.errs {
		fa, ok := out.errs[v]
		if !ok {
			out.errs[v] = fb
			continue
		}
		m := errFact{
			assigned: fa.assigned || fb.assigned,
			consumed: fa.consumed || fb.consumed,
			checked:  fa.checked || fb.checked,
			nonNil:   fa.nonNil && fb.nonNil,
		}
		m.assignPos = fa.assignPos
		if fb.assignPos != token.NoPos && (m.assignPos == token.NoPos || fb.assignPos < m.assignPos) {
			m.assignPos = fb.assignPos
		}
		out.errs[v] = m
	}
	for v, rb := range b.res {
		if _, ok := out.res[v]; !ok {
			out.res[v] = rb
		}
	}
	return out
}

func equalErr(a, b *errState) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.errs) != len(b.errs) || len(a.res) != len(b.res) {
		return false
	}
	for k, v := range a.errs {
		if b.errs[k] != v {
			return false
		}
	}
	for k, v := range a.res {
		if b.res[k] != v {
			return false
		}
	}
	return true
}

// errFlowUnit carries the per-body context shared by the transfer
// function and the reporting refold.
type errFlowUnit struct {
	pass     *Pass
	excluded map[*types.Var]bool
	bodyPos  token.Pos
	report   bool
}

func analyzeErrBody(pass *Pass, body *ast.BlockStmt) {
	u := &errFlowUnit{pass: pass, excluded: escapedErrVars(pass.Pkg.Info, body), bodyPos: body.Pos()}
	g := NewCFG(body)
	an := FlowAnalysis[*errState]{
		Boundary:     &errState{errs: map[*types.Var]errFact{}, res: map[*types.Var]resultFact{}},
		Bottom:       func() *errState { return nil },
		Join:         joinErr,
		Equal:        equalErr,
		Transfer:     func(n ast.Node, s *errState) *errState { return u.apply(n, s) },
		EdgeTransfer: u.refine,
	}
	res := Solve(g, an)
	u.report = true
	for _, blk := range g.Blocks {
		s := res.In[blk.Index]
		for _, n := range blk.Nodes {
			s = u.apply(n, s)
		}
	}
	u.report = false
	u.deadErrorStores(g)
}

// liveFact is one backward-liveness fact: whether some path from here
// reads the variable before rewriting it, and — when none does — the
// earliest overwrite that kills it (NoPos if the function just
// returns).
type liveFact struct {
	live    bool
	killPos token.Pos
}

type liveState map[*types.Var]liveFact

func joinLive(a, b liveState) liveState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(liveState, len(a)+len(b))
	for v, f := range a {
		out[v] = f
	}
	for v, fb := range b {
		fa := out[v]
		m := liveFact{live: fa.live || fb.live, killPos: fa.killPos}
		if fb.killPos != token.NoPos && (m.killPos == token.NoPos || fb.killPos < m.killPos) {
			m.killPos = fb.killPos
		}
		out[v] = m
	}
	return out
}

func equalLive(a, b liveState) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	for v, f := range a {
		if b[v] != f {
			return false
		}
	}
	return true
}

// deadErrorStores runs backward liveness over the tracked error
// variables and reports assignments whose error no path ever reads:
// the value is overwritten or the function returns before any check.
// Anchoring at the earlier assignment (not the overwrite) is what
// keeps the idiomatic retry loop clean — `lastErr = err` is live
// through the loop-exit path even though the back edge rewrites it.
func (u *errFlowUnit) deadErrorStores(g *CFG) {
	an := FlowAnalysis[liveState]{
		Backward: true,
		Boundary: liveState{},
		Bottom:   func() liveState { return nil },
		Join:     joinLive,
		Equal:    equalLive,
		Transfer: func(n ast.Node, s liveState) liveState { return u.applyLive(n, s, false) },
	}
	res := Solve(g, an)
	for _, blk := range g.Blocks {
		s := res.In[blk.Index] // fact at block end (backward)
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			s = u.applyLive(blk.Nodes[i], s, true)
		}
	}
}

// applyLive folds one node backward: writes check-and-kill liveness,
// reads establish it. With report set it emits the dead-store finding.
func (u *errFlowUnit) applyLive(n ast.Node, s liveState, report bool) liveState {
	if s == nil {
		return nil
	}
	write := func(id *ast.Ident, rhs ast.Expr, s liveState) liveState {
		v := u.trackedErrVar(id)
		if v == nil {
			return s
		}
		if rhs != nil {
			if tv, ok := u.pass.Pkg.Info.Types[rhs]; ok && tv.IsNil() {
				return s // err = nil is a reset, not a droppable error
			}
		}
		f := s[v]
		if report && !f.live {
			if f.killPos != token.NoPos {
				u.pass.Reportf(id.Pos(), "the error assigned to %s here is overwritten at %s before any path checks it — the first failure is lost", id.Name, u.posString(f.killPos))
			} else {
				u.pass.Reportf(id.Pos(), "the error assigned to %s here is never checked on any path before the function returns", id.Name)
			}
		}
		out := make(liveState, len(s))
		for k, fv := range s {
			out[k] = fv
		}
		out[v] = liveFact{live: false, killPos: id.Pos()}
		return out
	}
	reads := func(n ast.Node, s liveState) liveState {
		if n == nil {
			return s
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := u.pass.Pkg.Info.Uses[x.(*ast.Ident)].(*types.Var); ok {
				if f := s[v]; !f.live && u.trackedErrVar(id) != nil {
					out := make(liveState, len(s))
					for k, fv := range s {
						out[k] = fv
					}
					out[v] = liveFact{live: true}
					s = out
				}
			}
			return true
		})
		return s
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Backward: the write happens after the RHS reads, so fold the
		// kills first, then the reads.
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[indexOfExpr(n.Lhs, lhs)]
				}
				s = write(id, rhs, s)
			} else {
				s = reads(lhs, s)
			}
		}
		for _, rhs := range n.Rhs {
			s = reads(rhs, s)
		}
		return s
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					for i, name := range vs.Names {
						var rhs ast.Expr
						if len(vs.Values) == len(vs.Names) {
							rhs = vs.Values[i]
						}
						s = write(name, rhs, s)
					}
					for _, val := range vs.Values {
						s = reads(val, s)
					}
				}
			}
		}
		return s
	default:
		return reads(n, s)
	}
}

// escapedErrVars collects the error variables this unit must not
// track: referenced inside a nested function literal (reads and writes
// happen off this CFG) or address-taken (aliased through a pointer).
func escapedErrVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(id *ast.Ident) {
		if v, ok := info.ObjectOf(id).(*types.Var); ok && isErrorType(v.Type()) {
			out[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					mark(id)
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					mark(id)
				}
			}
		}
		return true
	})
	return out
}

// trackedErrVar resolves id to a local error variable worth tracking:
// declared in a function body (not a parameter or named result, whose
// lifetime we do not see end-to-end) and not escaped.
func (u *errFlowUnit) trackedErrVar(id *ast.Ident) *types.Var {
	v, ok := u.pass.Pkg.Info.ObjectOf(id).(*types.Var)
	if !ok || !isErrorType(v.Type()) || u.excluded[v] {
		return nil
	}
	if v.IsField() || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return nil
	}
	if v.Pos() < u.bodyPos { // parameter, receiver, or named result
		return nil
	}
	return v
}

// apply is both the transfer function (report=false) and the
// diagnostic pass (report=true); it folds one CFG node into s.
func (u *errFlowUnit) apply(n ast.Node, s *errState) *errState {
	if s == nil { // unreachable path: nothing to track
		return nil
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		return u.applyAssign(n, s)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				for _, val := range vs.Values {
					s = u.markUses(val, s)
				}
				for i, name := range vs.Names {
					if v := u.trackedErrVar(name); v != nil {
						var rhs ast.Expr
						if len(vs.Values) == len(vs.Names) {
							rhs = vs.Values[i]
						}
						s = u.setAssigned(v, name.Pos(), rhs, s)
					}
				}
			}
		}
		return s
	default:
		return u.markUses(n, s)
	}
}

// applyAssign folds an assignment: RHS reads first (so `err =
// wrap(err)` consumes the old value), then the overwrite check and the
// new facts for each LHS error variable, then result pairing for
// `v, err := call()` forms.
func (u *errFlowUnit) applyAssign(n *ast.AssignStmt, s *errState) *errState {
	for _, rhs := range n.Rhs {
		s = u.markUses(rhs, s)
	}
	for _, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			// m[k] = ..., p.f = ...: the base and index are reads.
			s = u.markUses(lhs, s)
			continue
		}
		if id.Name == "_" {
			continue
		}
		v := u.trackedErrVar(id)
		if v == nil {
			// Assigning any variable kills its result pairing.
			if rv, ok := u.pass.Pkg.Info.ObjectOf(id).(*types.Var); ok {
				if _, had := s.res[rv]; had {
					s = s.clone()
					delete(s.res, rv)
				}
			}
			continue
		}
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[indexOfExpr(n.Lhs, lhs)]
		}
		s = u.setAssigned(v, id.Pos(), rhs, s)
	}
	// v1, v2, err := call(): pair each non-error result with err.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		if _, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			var errVar *types.Var
			errCount := 0
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					if v, ok := u.pass.Pkg.Info.ObjectOf(id).(*types.Var); ok && isErrorType(v.Type()) {
						errVar = v
						errCount++
					}
				}
			}
			if errCount == 1 && errVar != nil && !u.excluded[errVar] {
				s = s.clone()
				for _, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if v, ok := u.pass.Pkg.Info.ObjectOf(id).(*types.Var); ok && v != errVar {
						s.res[v] = resultFact{errVar: errVar, pos: n.Pos()}
					}
				}
			}
		}
	}
	return s
}

// setAssigned records a fresh assignment to error variable v. A nil
// RHS (err = nil) clears the pending error instead.
func (u *errFlowUnit) setAssigned(v *types.Var, pos token.Pos, rhs ast.Expr, s *errState) *errState {
	s = s.clone()
	// A fresh error kills pairings from the previous call: results
	// guarded by the old value are no longer tied to this variable.
	for r, rf := range s.res {
		if rf.errVar == v {
			delete(s.res, r)
		}
	}
	if rhs != nil {
		if tv, ok := u.pass.Pkg.Info.Types[rhs]; ok && tv.IsNil() {
			delete(s.errs, v)
			return s
		}
	}
	s.errs[v] = errFact{assignPos: pos, assigned: true}
	return s
}

// markUses walks an expression/statement (function literals excluded —
// they are separate units), marking reads of tracked error variables
// consumed, handling nil comparisons (checked bit + the shadowed-check
// finding), and flagging uses of paired results on non-nil-error
// paths.
func (u *errFlowUnit) markUses(n ast.Node, s *errState) *errState {
	if n == nil {
		return s
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if v := u.nilComparedVar(x); v != nil && isErrorType(v.Type()) {
				if u.report {
					u.shadowCheck(x, v, s)
				}
				if f, ok := s.errs[v]; ok {
					f.consumed = true
					f.checked = true
					s = s.clone()
					s.errs[v] = f
					return false // operands handled
				}
			}
		case *ast.Ident:
			if v, ok := u.pass.Pkg.Info.Uses[x].(*types.Var); ok {
				if f, ok := s.errs[v]; ok && !f.consumed {
					f.consumed = true
					s = s.clone()
					s.errs[v] = f
				}
			}
		case *ast.SelectorExpr:
			u.checkErrPathUse(x.X, "field or method access", s)
		case *ast.StarExpr:
			u.checkErrPathUse(x.X, "dereference", s)
		case *ast.IndexExpr:
			u.checkErrPathUse(x.X, "index", s)
		case *ast.SliceExpr:
			u.checkErrPathUse(x.X, "slice", s)
		case *ast.CallExpr:
			u.checkErrPathUse(x.Fun, "call", s)
		case *ast.RangeStmt:
			u.checkErrPathUse(x.X, "range", s)
		}
		return true
	})
	return s
}

// shadowCheck reports a nil comparison of v when a different,
// later-declared variable of the same name carries an unchecked error
// on this path — the check reads the shadowed-out value.
func (u *errFlowUnit) shadowCheck(at *ast.BinaryExpr, v *types.Var, s *errState) {
	type cand struct {
		w *types.Var
		f errFact
	}
	var cands []cand
	// Paths that returned inside the shadowing scope never reach this
	// check, so "assigned and not nil-checked" here means the inner
	// error really was dropped on this path — a read (logging, say)
	// is not a check.
	for w, f := range s.errs {
		if w != v && w.Name() == v.Name() && w.Pos() > v.Pos() && f.assigned && !f.checked {
			cands = append(cands, cand{w, f})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].w.Pos() < cands[j].w.Pos() })
	for _, c := range cands {
		u.pass.Reportf(at.Pos(), "this nil check reads %s declared at %s, but the shadowing %s assigned at %s is never checked on this path", v.Name(), u.posString(v.Pos()), c.w.Name(), u.posString(c.f.assignPos))
	}
}

// checkErrPathUse reports a dereference-like use of a result variable
// whose paired error is known non-nil on this path.
func (u *errFlowUnit) checkErrPathUse(base ast.Expr, how string, s *errState) {
	if !u.report {
		return
	}
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := u.pass.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	rf, ok := s.res[v]
	if !ok {
		return
	}
	if f, ok := s.errs[rf.errVar]; ok && f.nonNil {
		u.pass.Reportf(id.Pos(), "%s of %s on the path where %s != nil: the result of the failed call at %s may be nil or zero", how, id.Name, rf.errVar.Name(), u.posString(rf.pos))
	}
}

// refine is the edge transfer: a branch on `x != nil` / `x == nil`
// sharpens the state on the corresponding edge — an error variable
// becomes known non-nil, a result variable proven non-nil drops its
// pairing (the use is guarded).
func (u *errFlowUnit) refine(from, to *Block, s *errState) *errState {
	if s == nil || from.Cond == nil || len(from.Succs) < 2 || from.Succs[0] == from.Succs[1] {
		return s
	}
	cmp, ok := ast.Unparen(from.Cond).(*ast.BinaryExpr)
	if !ok {
		return s
	}
	v := u.nilComparedVar(cmp)
	if v == nil {
		return s
	}
	onTrue := to == from.Succs[0]
	// nonNilHere: does this edge imply the variable is non-nil?
	nonNilHere := (cmp.Op == token.NEQ) == onTrue
	if f, ok := s.errs[v]; ok {
		if f.nonNil != nonNilHere {
			s = s.clone()
			f.nonNil = nonNilHere
			s.errs[v] = f
		}
		return s
	}
	if _, ok := s.res[v]; ok && nonNilHere {
		s = s.clone()
		delete(s.res, v) // guarded: proven non-nil on this edge
	}
	return s
}

// nilComparedVar returns the variable in a `v == nil` / `v != nil`
// comparison, or nil for any other expression.
func (u *errFlowUnit) nilComparedVar(cmp *ast.BinaryExpr) *types.Var {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return nil
	}
	info := u.pass.Pkg.Info
	isNil := func(e ast.Expr) bool {
		tv, ok := info.Types[ast.Unparen(e)]
		return ok && tv.IsNil()
	}
	var operand ast.Expr
	switch {
	case isNil(cmp.Y):
		operand = cmp.X
	case isNil(cmp.X):
		operand = cmp.Y
	default:
		return nil
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func indexOfExpr(list []ast.Expr, e ast.Expr) int {
	for i, x := range list {
		if x == e {
			return i
		}
	}
	return 0
}

func (u *errFlowUnit) posString(pos token.Pos) string {
	p := u.pass.Pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
