package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// checkFixture parses and type-checks an in-memory package (stdlib
// imports only), runs one analyzer plus suppression handling, and returns
// the diagnostics as "file.go:line:check" strings for table-driven
// comparison.
func checkFixture(t *testing.T, an *Analyzer, path string, files map[string]string) []string {
	t.Helper()
	fset := token.NewFileSet()
	var astFiles []*ast.File
	var names []string
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", nil)}
	tpkg, err := conf.Check(path, fset, astFiles, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	pkg := &Package{Path: path, Dir: ".", Fset: fset, Files: astFiles, Types: tpkg, Info: info}
	var out []string
	for _, d := range Run([]*Package{pkg}, []*Analyzer{an}) {
		out = append(out, fmt.Sprintf("%s:%d:%s", d.File, d.Line, d.Check))
	}
	return out
}

// wantDiags compares got (from checkFixture) against want, reporting both
// directions of mismatch.
func wantDiags(t *testing.T, got, want []string) {
	t.Helper()
	gotSet := map[string]bool{}
	for _, g := range got {
		gotSet[g] = true
	}
	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w] = true
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("missing diagnostic %s (got %v)", w, got)
		}
	}
	for _, g := range got {
		if !wantSet[g] {
			t.Errorf("unexpected diagnostic %s (want %v)", g, want)
		}
	}
}
