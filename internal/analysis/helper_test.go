package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// checkFixture parses and type-checks an in-memory package (stdlib
// imports only), runs one analyzer plus suppression handling, and returns
// the diagnostics as "file.go:line:check" strings for table-driven
// comparison.
func checkFixture(t *testing.T, an *Analyzer, path string, files map[string]string) []string {
	t.Helper()
	fset := token.NewFileSet()
	var astFiles []*ast.File
	var names []string
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", nil)}
	tpkg, err := conf.Check(path, fset, astFiles, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	pkg := &Package{Path: path, Dir: ".", Fset: fset, Files: astFiles, Types: tpkg, Info: info}
	var out []string
	for _, d := range Run([]*Package{pkg}, []*Analyzer{an}) {
		out = append(out, fmt.Sprintf("%s:%d:%s", d.File, d.Line, d.Check))
	}
	return out
}

// checkModuleFixture builds several in-memory packages into one Module
// (so cross-package facts propagate) and runs one analyzer over all of
// them. pkgs maps import path → (file name → source); packages are
// type-checked in sorted path order, and imports between fixture
// packages resolve to the already-checked results — list dependencies
// under paths that sort first.
func checkModuleFixture(t *testing.T, an *Analyzer, pkgs map[string]map[string]string) []string {
	t.Helper()
	loaded := loadFixtureModule(t, pkgs)
	var out []string
	for _, d := range Run(loaded, []*Analyzer{an}) {
		out = append(out, fmt.Sprintf("%s:%d:%s", d.File, d.Line, d.Check))
	}
	return out
}

// loadFixtureModule parses and type-checks the in-memory packages of a
// multi-package fixture, in sorted path order.
func loadFixtureModule(t *testing.T, pkgs map[string]map[string]string) []*Package {
	t.Helper()
	fset := token.NewFileSet()
	var paths []string
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	std := importer.ForCompiler(fset, "gc", nil)
	checked := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return std.Import(path)
	})

	var loaded []*Package
	for _, path := range paths {
		var astFiles []*ast.File
		var names []string
		for name := range pkgs[path] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, pkgs[path][name], parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing fixture %s: %v", name, err)
			}
			astFiles = append(astFiles, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, astFiles, info)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", path, err)
		}
		checked[path] = tpkg
		loaded = append(loaded, &Package{Path: path, Dir: path, Fset: fset, Files: astFiles, Types: tpkg, Info: info})
	}
	return loaded
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantDiags compares got (from checkFixture) against want, reporting both
// directions of mismatch.
func wantDiags(t *testing.T, got, want []string) {
	t.Helper()
	gotSet := map[string]bool{}
	for _, g := range got {
		gotSet[g] = true
	}
	wantSet := map[string]bool{}
	for _, w := range want {
		wantSet[w] = true
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("missing diagnostic %s (got %v)", w, got)
		}
	}
	for _, g := range got {
		if !wantSet[g] {
			t.Errorf("unexpected diagnostic %s (want %v)", g, want)
		}
	}
}
