package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateCFG = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestCFGWholeRepo is the builder's self-test against this repository:
// every function body (declarations and function literals alike) must
// build a CFG without panicking, every atomic statement must land in
// exactly one basic block, and the entry/exit blocks must keep their
// structural invariants. A failure means the builder mis-handles a
// control construct the repo actually uses — exactly the situation
// that would silently corrupt lockorder/errflow facts.
func TestCFGWholeRepo(t *testing.T) {
	root := moduleRootForTest(t)
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	var bodies int
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				var name string
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body == nil {
						return true
					}
					body, name = n.Body, n.Name.Name
				case *ast.FuncLit:
					body, name = n.Body, "func literal"
				default:
					return true
				}
				bodies++
				pos := pkg.Fset.Position(body.Pos())
				checkCFGInvariants(t, pkg.Fset, body, fmt.Sprintf("%s (%s)", name, pos))
				return true
			})
		}
	}
	if bodies < 500 {
		t.Fatalf("checked only %d function bodies; the walk is missing most of the tree", bodies)
	}
}

// checkCFGInvariants builds the CFG for one body (converting a builder
// panic into a test failure) and verifies the block partition.
func checkCFGInvariants(t *testing.T, fset *token.FileSet, body *ast.BlockStmt, where string) {
	t.Helper()
	var g *CFG
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("NewCFG panicked on %s: %v", where, r)
			}
		}()
		g = NewCFG(body)
	}()
	if g == nil {
		return
	}
	if len(g.Entry.Preds) != 0 {
		t.Errorf("%s: entry block has %d predecessors", where, len(g.Entry.Preds))
	}
	if len(g.Exit.Succs) != 0 {
		t.Errorf("%s: exit block has %d successors", where, len(g.Exit.Succs))
	}
	counts := map[ast.Node]int{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			counts[n]++
		}
	}
	for _, s := range AtomicStmts(body) {
		switch counts[s] {
		case 1:
		case 0:
			t.Errorf("%s: statement at %s missing from every block", where, fset.Position(s.Pos()))
		default:
			t.Errorf("%s: statement at %s appears in %d blocks", where, fset.Position(s.Pos()), counts[s])
		}
	}
}

// cfgGoldenSrc exercises the edge cases the golden dumps pin: goto
// (forward and backward), labeled break/continue across nested loops,
// select with send/receive/default arms, defer funneling every exit
// path, type switches with fallthrough-free clauses, switch
// fallthrough, range loops, and panic as a terminator.
const cfgGoldenSrc = `package fixture

func gotos(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	if n < 0 {
		goto out
	}
	i *= 2
out:
	return i
}

func labeled(rows [][]int) int {
	total := 0
outer:
	for _, row := range rows {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			total += v
		}
	}
	return total
}

func selects(a, b chan int, stop chan struct{}) int {
	for {
		select {
		case v := <-a:
			return v
		case b <- 1:
		case <-stop:
			return 0
		default:
			return -1
		}
	}
}

func deferred(release func(), fail bool) int {
	defer release()
	if fail {
		panic("boom")
	}
	defer release()
	return 1
}

func typeSwitch(x any) int {
	switch v := x.(type) {
	case int:
		return v
	case string:
		return len(v)
	default:
		return 0
	}
}

func fallthroughs(n int) string {
	s := ""
	switch n {
	case 0:
		s += "zero "
		fallthrough
	case 1:
		s += "one"
	case 2:
		s += "two"
	}
	return s
}
`

// TestCFGGoldenDumps renders the CFG of each fixture function with
// Dump and compares against testdata/cfg_dumps.golden. Run
// `go test ./internal/analysis -run CFGGolden -update` after an
// intentional builder change.
func TestCFGGoldenDumps(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", cfgGoldenSrc, 0)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	var b strings.Builder
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "== %s ==\n%s\n", fd.Name.Name, NewCFG(fd.Body).Dump(fset))
	}
	got := b.String()

	path := filepath.Join("testdata", "cfg_dumps.golden")
	if *updateCFG {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("creating testdata: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG dumps drifted from %s (re-run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
