package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// UnitSafety enforces the dimensional-safety contract of internal/units:
// latency is units.Millis, distance is units.Kilometers, and bare float64
// never carries either dimension across an exported API.
//
// Two rules:
//
//  1. naming — an exported struct field, or a parameter/result of an
//     exported function, whose name reads as a unit-bearing quantity
//     (suffix "Ms"/"Km", or containing "RTT", "Latency", "Distance") must
//     not be typed bare float64 (or []float64) outside internal/units.
//     Names containing "Per" are rates (e.g. FiberKmPerMs) and exempt:
//     a rate deliberately mixes dimensions and stays float64.
//  2. mixing — a conversion from one unit type directly to the other
//     (units.Millis(k) where k is units.Kilometers, or vice versa) is
//     flagged: the only sanctioned route between dimensions is through
//     Float() and an explicit rate or factor. Direct arithmetic mixing
//     the two types is already a compile error, so conversions are the
//     one type-correct way to smuggle a km value into a ms slot.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc:  "flag bare-float64 unit-named identifiers and Millis<->Kilometers conversions",
	Run:  runUnitSafety,
}

func runUnitSafety(pass *Pass) {
	// internal/units is where the dimension types live; its own helpers
	// (Float, Floats, FromFloats) legitimately traffic in bare float64.
	inUnits := strings.HasSuffix(pass.Pkg.Path, "internal/units")
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				if inUnits || pass.InTestFile(n.Pos()) {
					return true
				}
				for _, field := range n.Fields.List {
					for _, name := range field.Names {
						if !name.IsExported() {
							continue
						}
						hint := unitHint(name.Name)
						if hint == "" {
							continue
						}
						if isBareFloat64(pass.Pkg.Info.TypeOf(field.Type)) {
							pass.Reportf(name.Pos(),
								"exported field %s reads as a %s quantity but is bare float64; type it units.%s", name.Name, hintWord(hint), hint)
						}
					}
				}
			case *ast.FuncDecl:
				if inUnits || pass.InTestFile(n.Pos()) || !n.Name.IsExported() {
					return true
				}
				checkUnitSignature(pass, n)
			case *ast.CallExpr:
				checkUnitConversion(pass, n)
			}
			return true
		})
	}
}

// checkUnitSignature applies the naming rule to an exported function's
// parameters, named results, and — when the function name itself carries
// the unit — its result types.
func checkUnitSignature(pass *Pass, fd *ast.FuncDecl) {
	for _, fl := range []*ast.FieldList{fd.Type.Params, fd.Type.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				hint := unitHint(name.Name)
				if hint == "" {
					continue
				}
				if isBareFloat64(pass.Pkg.Info.TypeOf(field.Type)) {
					pass.Reportf(name.Pos(),
						"%s of exported %s reads as a %s quantity but is bare float64; type it units.%s", name.Name, fd.Name.Name, hintWord(hint), hint)
				}
			}
		}
	}
	// A function named for the unit it returns (BaseRTTms, SwitchDistancesKm)
	// with unnamed bare-float64 results escapes the field check above.
	if hint := unitHint(fd.Name.Name); hint != "" && fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			if len(field.Names) > 0 {
				continue // named results were checked above
			}
			if isBareFloat64(pass.Pkg.Info.TypeOf(field.Type)) {
				pass.Reportf(field.Type.Pos(),
					"exported %s is named for a %s quantity but returns bare float64; return units.%s", fd.Name.Name, hintWord(hint), hint)
			}
		}
	}
}

// checkUnitConversion flags T2(x) where T2 and the type of x are the two
// distinct unit types. units.Millis(k.Float()) is fine: the argument is
// float64 by the time it reaches the conversion.
func checkUnitConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := unitTypeName(tv.Type)
	if dst == "" {
		return
	}
	src := unitTypeName(pass.Pkg.Info.TypeOf(call.Args[0]))
	if src != "" && src != dst {
		pass.Reportf(call.Pos(),
			"conversion units.%s(...) takes a units.%s; dimensions do not convert — unwrap with Float() and apply an explicit rate", dst, src)
	}
}

// unitHint classifies an identifier name: "Millis", "Kilometers", or ""
// when the name carries no dimension. Names containing "Per" are rates
// and never flagged.
func unitHint(name string) string {
	if strings.Contains(name, "Per") {
		return ""
	}
	switch {
	case strings.Contains(name, "RTT"), strings.Contains(name, "Latency"), hasUnitSuffix(name, "Ms"):
		return "Millis"
	case strings.Contains(name, "Distance"), hasUnitSuffix(name, "Km"):
		return "Kilometers"
	}
	return ""
}

func hintWord(hint string) string {
	if hint == "Millis" {
		return "latency (ms)"
	}
	return "distance (km)"
}

// hasUnitSuffix reports whether name ends in the given two-letter unit
// suffix ("Ms"/"Km"), accepting the lowercase form only after an
// uppercase letter or digit ("RTTms" yes, "Params" no).
func hasUnitSuffix(name, suffix string) bool {
	if strings.HasSuffix(name, suffix) {
		return true
	}
	if !strings.HasSuffix(name, strings.ToLower(suffix)) {
		return false
	}
	rest := name[:len(name)-len(suffix)]
	if rest == "" {
		return false
	}
	c := rest[len(rest)-1]
	return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// isBareFloat64 reports whether t is the literal float64 type or a slice
// of it — not a defined type over float64, which is exactly what the rule
// asks callers to use instead.
func isBareFloat64(t types.Type) bool {
	if s, ok := t.(*types.Slice); ok {
		t = s.Elem()
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// unitTypeName returns "Millis" or "Kilometers" when t is one of the
// dimension types from internal/units, else "".
func unitTypeName(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/units") {
		return ""
	}
	if obj.Name() == "Millis" || obj.Name() == "Kilometers" {
		return obj.Name()
	}
	return ""
}
