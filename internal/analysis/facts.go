package analysis

import (
	"go/ast"
	"go/types"
	"strings"
	"sync"
)

// Module is the cross-package view of one loaded module: every package
// from a single shared type-checked load plus the facts derived from the
// whole-program function graph. Facts are what let an analyzer running on
// one package reason about properties that originate in another — a
// replay-sensitive root in internal/sim reaching a helper in
// internal/latency, or a //perf:hotpath annotation on a method the caller
// only sees through its import.
//
// A Module is immutable after NewModule and safe for concurrent reads;
// the parallel runner (RunModule) shares one across every (package,
// analyzer) task.
type Module struct {
	// Pkgs is every package of the load, sorted by import path.
	Pkgs []*Package

	decls   map[*types.Func]*ast.FuncDecl
	declPkg map[*types.Func]*Package
	calls   map[*types.Func][]*types.Func

	replayReachable map[*types.Func]bool
	hotPath         map[*types.Func]bool

	// Lock facts (lockorder.go) are derived lazily on first use and
	// shared by every pass over this module.
	lockOnce sync.Once
	lockData *lockFactsData
}

// ReplayRootNames are the function names treated as replay roots: every
// function statically reachable from a function with one of these names
// carries the "replay-sensitive" fact, in whatever package it lives. The
// repo's roots are sim.RunWorld and sim.StreamWorld — everything a
// figure is computed from flows through them — plus the distributed
// pipeline's two halves: sim.StreamShard (the worker's shard stream) and
// experiments.MergeShardDay (the coordinator's fold), which must replay
// byte-identically for the fleet merge to equal the single-process run.
var ReplayRootNames = []string{"RunWorld", "StreamWorld", "StreamShard", "MergeShardDay"}

// HotPathDirective marks a function as allocation-free by contract; the
// hotpathalloc analyzer enforces it. The directive goes in the doc
// comment, on its own line:
//
//	//perf:hotpath
func (m *Module) HotPathDirective() string { return "//perf:hotpath" }

// NewModule derives the cross-package facts for pkgs: the static call
// graph (direct calls and method calls resolved through go/types; calls
// through interface values or stored function values are not followed —
// a deliberate static approximation), replay reachability from the
// ReplayRootNames roots, and //perf:hotpath annotations.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:            pkgs,
		decls:           map[*types.Func]*ast.FuncDecl{},
		declPkg:         map[*types.Func]*Package{},
		calls:           map[*types.Func][]*types.Func{},
		replayReachable: map[*types.Func]bool{},
		hotPath:         map[*types.Func]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				m.decls[obj] = fd
				m.declPkg[obj] = pkg
				if hasDirective(fd.Doc, "//perf:hotpath") {
					m.hotPath[obj] = true
				}
			}
		}
	}
	// Call edges: every call lexically inside a declaration (including
	// inside its func literals) is attributed to that declaration.
	for obj, fd := range m.decls {
		pkg := m.declPkg[obj]
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(pkg.Info, call); callee != nil {
				m.calls[obj] = append(m.calls[obj], callee)
			}
			return true
		})
	}
	// Replay reachability: BFS from every function named like a root.
	var queue []*types.Func
	for obj := range m.decls {
		if isReplayRootName(obj.Name()) {
			m.replayReachable[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range m.calls[fn] {
			if m.replayReachable[callee] {
				continue
			}
			m.replayReachable[callee] = true
			queue = append(queue, callee)
		}
	}
	return m
}

// ReplayReachable reports the "replay-sensitive" fact: fn is statically
// reachable from a RunWorld/StreamWorld root (possibly across packages).
func (m *Module) ReplayReachable(fn *types.Func) bool { return m.replayReachable[fn] }

// HotPath reports the "annotated hot-path" fact: fn's declaration carries
// a //perf:hotpath directive.
func (m *Module) HotPath(fn *types.Func) bool { return m.hotPath[fn] }

// FuncDecl returns fn's declaration, from whichever package declares it.
func (m *Module) FuncDecl(fn *types.Func) *ast.FuncDecl { return m.decls[fn] }

// FuncPackage returns the package declaring fn, or nil for functions
// outside the module (stdlib, interface methods).
func (m *Module) FuncPackage(fn *types.Func) *Package { return m.declPkg[fn] }

func isReplayRootName(name string) bool {
	for _, r := range ReplayRootNames {
		if name == r {
			return true
		}
	}
	return false
}

// calleeFunc resolves the function object a call expression invokes:
// plain calls, package-qualified calls, and method calls. Calls through
// function-typed values (fields, parameters) and type conversions
// resolve to nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// hasDirective reports whether a doc comment group contains the given
// machine directive (an exact "//directive" line, no leading space — the
// form gofmt preserves and godoc hides).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}
