package analysis

import (
	"bytes"
	"strings"
	"testing"
)

func baselineFixtureDiags(t *testing.T) []Diagnostic {
	t.Helper()
	src := `package sim

func Sums(m map[string]float64) (float64, []string) {
	var total float64
	var keys []string
	for k, v := range m {
		total += v
		keys = append(keys, k)
	}
	return total, keys
}
`
	fixturePkgs := map[string]map[string]string{
		"anycastcdn/internal/sim": {"a.go": src},
	}
	pkgs := loadFixtureModule(t, fixturePkgs)
	diags := Run(pkgs, []*Analyzer{ReplaySafety})
	if len(diags) != 2 {
		t.Fatalf("fixture produced %d diagnostics, want 2: %v", len(diags), diags)
	}
	return diags
}

// TestBaselineRoundTrip is the acceptance criterion: generate a baseline
// from a run's diagnostics, read it back, and verifying the same run
// against it yields zero diagnostics.
func TestBaselineRoundTrip(t *testing.T) {
	diags := baselineFixtureDiags(t)

	var buf bytes.Buffer
	if err := WriteBaseline(&buf, diags); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if b.Len() != len(diags) {
		t.Fatalf("baseline tolerates %d instances, want %d", b.Len(), len(diags))
	}
	if left := b.Filter(diags); len(left) != 0 {
		t.Errorf("round-tripped baseline left %v, want none", left)
	}
	// Filter must not consume the baseline: a second verify also passes.
	if left := b.Filter(diags); len(left) != 0 {
		t.Errorf("second Filter left %v; Filter mutated the baseline", left)
	}
}

// TestBaselineRatchet pins the grandfathering semantics: a fresh
// violation is never absorbed, and each entry absorbs at most its count.
func TestBaselineRatchet(t *testing.T) {
	diags := baselineFixtureDiags(t)

	b := NewBaseline(diags[:1]) // tolerate only the first shape
	left := b.Filter(diags)
	if len(left) != 1 || left[0].Message != diags[1].Message {
		t.Fatalf("partial baseline left %v, want only the second diagnostic", left)
	}

	// A new instance of an already-absorbed shape exceeds the count.
	double := append(append([]Diagnostic{}, diags[0]), diags[0])
	if left := b.Filter(double); len(left) != 1 {
		t.Errorf("count-bounded baseline left %v, want exactly one overflow", left)
	}

	// A diagnostic in a different file never matches.
	moved := diags[0]
	moved.File = "elsewhere.go"
	if left := b.Filter([]Diagnostic{moved}); len(left) != 1 {
		t.Errorf("baseline absorbed a diagnostic from another file: %v", left)
	}
}

// TestBaselineLineMoveSurvives pins the key design choice: line numbers
// are not part of the match, so grandfathered diagnostics survive
// unrelated edits that reflow the file.
func TestBaselineLineMoveSurvives(t *testing.T) {
	diags := baselineFixtureDiags(t)
	b := NewBaseline(diags)
	shifted := make([]Diagnostic, len(diags))
	for i, d := range diags {
		d.Line += 40
		shifted[i] = d
	}
	if left := b.Filter(shifted); len(left) != 0 {
		t.Errorf("line shift broke the baseline: %v", left)
	}
}

// TestReadBaselineRejectsGarbage covers the validation paths.
func TestReadBaselineRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "nope",
		"missing file":   `[{"check":"replaysafety","message":"m","count":1}]`,
		"missing check":  `[{"file":"a.go","message":"m","count":1}]`,
		"zero count":     `[{"file":"a.go","check":"c","message":"m","count":0}]`,
		"negative count": `[{"file":"a.go","check":"c","message":"m","count":-2}]`,
	}
	for name, text := range cases {
		if _, err := ReadBaseline(strings.NewReader(text)); err == nil {
			t.Errorf("%s: ReadBaseline accepted %q", name, text)
		}
	}
}
