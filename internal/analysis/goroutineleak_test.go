package analysis

import "testing"

func TestGoroutineLeak(t *testing.T) {
	cases := []struct {
		name  string
		path  string
		files map[string]string
		want  []string
	}{
		{
			name: "bare spawn with no join path",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

func work() {}

func f() {
	go work()
}
`},
			want: []string{"a.go:6:goroutineleak"},
		},
		{
			name: "literal with no join path",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

func f() {
	go func() {
		for {
		}
	}()
}
`},
			want: []string{"a.go:4:goroutineleak"},
		},
		{
			name: "waitgroup-tracked literal",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

import "sync"

func f() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`},
			want: nil,
		},
		{
			name: "done-channel close in same-package callee",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

type srv struct{ done chan struct{} }

func (s *srv) serve() {
	defer close(s.done)
}

func (s *srv) start() {
	go s.serve()
}
`},
			want: nil,
		},
		{
			name: "ctx-parked watcher literal",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

import "context"

func f(ctx context.Context) func() {
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-stop:
		}
	}()
	return func() { close(stop) }
}
`},
			want: nil,
		},
		{
			name: "spawning an external-package method is flagged",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

import (
	"net"
	"net/http"
)

func f(srv *http.Server, ln net.Listener) {
	go srv.Serve(ln)
}
`},
			want: []string{"a.go:9:goroutineleak"},
		},
		{
			name: "cmd binaries are exempt",
			path: "anycastcdn/cmd/repro",
			files: map[string]string{"a.go": `package main

func work() {}

func f() {
	go work()
}
`},
			want: nil,
		},
		{
			name: "test files are exempt",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a_test.go": `package geo

func work() {}

func f() {
	go work()
}
`},
			want: nil,
		},
		{
			name: "justified ignore survives",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

func work() {}

func f() {
	//lint:ignore goroutineleak process-lifetime singleton, joined at exit by the OS
	go work()
}
`},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, checkFixture(t, GoroutineLeak, tc.path, tc.files), tc.want)
		})
	}
}
