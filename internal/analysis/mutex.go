package analysis

import (
	"go/ast"
	"go/types"
)

// MutexHygiene enforces two locking invariants:
//
//  1. no lock value copies — a struct containing a sync.Mutex or
//     sync.RWMutex must not be passed, assigned, ranged-over, or returned
//     by value (the copy forks the lock state and the original and copy
//     silently stop excluding each other);
//  2. lock/unlock pairing — a function that calls mu.Lock() (or RLock)
//     must contain at least one matching mu.Unlock() (or RUnlock), direct
//     or deferred, on the same receiver expression.
var MutexHygiene = &Analyzer{
	Name: "mutexhygiene",
	Doc:  "flag lock copies and Lock() calls with no same-function Unlock",
	Run:  runMutexHygiene,
}

func runMutexHygiene(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSignature(pass, n.Recv, n.Type)
				if n.Body != nil {
					checkLockBalance(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFuncSignature(pass, nil, n.Type)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to _ discards the value; no second usable
					// copy of the lock comes into existence.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if copiesLock(pass, rhs) {
						pass.Reportf(rhs.Pos(),
							"assignment copies %s by value; the type contains a sync lock — use a pointer", exprTypeName(pass, rhs))
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.Pkg.Info.TypeOf(n.Value); t != nil && containsLock(t) {
						pass.Reportf(n.Value.Pos(),
							"range value copies %s by value; the type contains a sync lock — range over indices or pointers", exprTypeName(pass, n.Value))
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if copiesLock(pass, arg) {
						pass.Reportf(arg.Pos(),
							"call passes %s by value; the type contains a sync lock — pass a pointer", exprTypeName(pass, arg))
					}
				}
			}
			return true
		})
	}
}

// checkFuncSignature flags receivers, parameters, and results whose
// non-pointer types contain locks.
func checkFuncSignature(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	lists := []*ast.FieldList{recv, ft.Params, ft.Results}
	kinds := []string{"receiver", "parameter", "result"}
	for i, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := pass.Pkg.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				pass.Reportf(field.Type.Pos(),
					"%s %s passes a lock by value; use a pointer", kinds[i], types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
			}
		}
	}
}

// copiesLock reports whether expr copies an existing lock-containing
// value. Composite literals and function-call results construct fresh
// values and are fine; reading an existing variable, field, element, or
// dereference is a copy.
func copiesLock(pass *Pass, expr ast.Expr) bool {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		// Type names and package names are not values.
		switch pass.Pkg.Info.Uses[id].(type) {
		case *types.TypeName, *types.PkgName, nil:
			return false
		}
	}
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || !tv.IsValue() {
		return false
	}
	return containsLock(tv.Type)
}

func exprTypeName(pass *Pass, expr ast.Expr) string {
	if t := pass.Pkg.Info.TypeOf(expr); t != nil {
		return types.TypeString(t, types.RelativeTo(pass.Pkg.Types))
	}
	return "value"
}

// containsLock walks t for sync.Mutex / sync.RWMutex, directly or through
// struct fields and array elements (pointers and interfaces do not
// propagate the copy hazard).
func containsLock(t types.Type) bool {
	return containsLockSeen(t, map[types.Type]bool{})
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return false
}

// lockPairs maps an acquire method to its release.
var lockPairs = map[string]string{
	"Lock":  "Unlock",
	"RLock": "RUnlock",
}

// checkLockBalance verifies that every receiver locked in body is also
// unlocked somewhere in body (conditional early-unlock branches and
// deferred closures all count — the repo's Close() guards unlock on both
// paths, which a stricter pairing would false-positive on).
func checkLockBalance(pass *Pass, body *ast.BlockStmt) {
	type pairKey struct {
		recv    string // receiver expression text, e.g. "tb.mu"
		release string // "Unlock" or "RUnlock"
	}
	firstAcquire := map[pairKey]*ast.CallExpr{}
	released := map[pairKey]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		recv := types.ExprString(sel.X)
		name := sel.Sel.Name
		if release, isAcquire := lockPairs[name]; isAcquire {
			key := pairKey{recv, release}
			if firstAcquire[key] == nil {
				firstAcquire[key] = call
			}
		} else if name == "Unlock" || name == "RUnlock" {
			released[pairKey{recv, name}] = true
		}
		return true
	})
	for key, call := range firstAcquire {
		if !released[key] {
			pass.Reportf(call.Pos(),
				"%s is locked but never unlocked in this function; add %s.%s() or defer it", key.recv, key.recv, key.release)
		}
	}
}
