package analysis

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output — the minimum viable subset every SARIF consumer
// (GitHub code scanning, VS Code SARIF viewers) understands: one run,
// one driver with a rule per analyzer, one result per diagnostic with a
// physical location. Kept as explicit structs rather than map soup so
// the shape is testable.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits diags as a SARIF 2.1.0 log with one rule per
// analyzer. Diagnostics from non-analyzer sources (the "lint" check for
// malformed suppressions) get rules synthesized on the fly.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	driver := sarifDriver{
		Name:  "anycastvet",
		Rules: []sarifRule{},
	}
	known := map[string]bool{}
	for _, an := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               an.Name,
			ShortDescription: sarifMessage{Text: an.Doc},
		})
		known[an.Name] = true
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if !known[d.Check] {
			driver.Rules = append(driver.Rules, sarifRule{
				ID:               d.Check,
				ShortDescription: sarifMessage{Text: d.Check},
			})
			known[d.Check] = true
		}
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
