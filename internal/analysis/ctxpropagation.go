package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RestrictedCtxPropagation lists the packages whose client-side network
// code must honor caller contexts: the DNS exchange layer is on the
// beacon's measurement path, where a read that ignores cancellation and
// rides out a private fallback deadline dominates tail latency; the
// distributed-simulation layer holds socket pairs to a worker fleet,
// where an I/O wait that ignores cancellation strands the whole run.
var RestrictedCtxPropagation = []string{
	"anycastcdn/internal/dnswire",
	"anycastcdn/internal/distsim",
}

// CtxPropagation enforces the dnswire ctx contract: a function that takes
// a context.Context and performs blocking net I/O (conn.Read/ReadFrom/
// Write/WriteTo) must consult that ctx — reference ctx.Done(),
// ctx.Deadline(), or ctx.Err() directly, or hand the ctx to a
// same-package helper that does (e.g. a cancellation watcher that yanks
// the conn deadline). Separately, ctx-less dialing (net.Dial and
// friends) is flagged anywhere in the restricted packages: use
// net.Dialer.DialContext so the caller's ctx bounds connection setup.
var CtxPropagation = &Analyzer{
	Name: "ctxpropagation",
	Doc:  "blocking net I/O in dnswire must derive deadlines and cancellation from the caller's ctx",
	Run:  runCtxPropagation,
}

// blockingNetIO are the net-package methods treated as blocking I/O.
var blockingNetIO = map[string]bool{
	"Read":        true,
	"ReadFrom":    true,
	"ReadFromUDP": true,
	"ReadMsgUDP":  true,
	"Write":       true,
	"WriteTo":     true,
}

// ctxlessDials are the package-level net dialers that cannot carry a ctx.
var ctxlessDials = map[string]bool{
	"Dial":        true,
	"DialTimeout": true,
	"DialUDP":     true,
	"DialTCP":     true,
	"DialIP":      true,
}

// ctxEvidenceDepth bounds how many same-package call levels the evidence
// search follows.
const ctxEvidenceDepth = 2

func runCtxPropagation(pass *Pass) {
	if !pathInList(pass.Pkg.Path, RestrictedCtxPropagation) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxlessDials(pass, fd.Body)
			if !funcTakesContext(pass, fd) {
				continue
			}
			blocking := blockingNetCalls(pass, fd.Body)
			if len(blocking) == 0 {
				continue
			}
			if ctxConsulted(pass, fd.Body, ctxEvidenceDepth, map[*ast.FuncDecl]bool{fd: true}) {
				continue
			}
			for _, call := range blocking {
				pass.Reportf(call.Pos(),
					"blocking net call ignores the caller's ctx; derive the conn deadline from ctx.Deadline and watch ctx.Done for cancellation")
			}
		}
	}
}

// checkCtxlessDials flags net.Dial-family calls, which cannot honor a ctx.
func checkCtxlessDials(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !ctxlessDials[sel.Sel.Name] {
			return true
		}
		if pn := pass.PkgNameOf(sel); pn != nil && pn.Imported().Path() == "net" {
			pass.Reportf(call.Pos(),
				"net.%s cannot carry the caller's ctx; use net.Dialer.DialContext", sel.Sel.Name)
		}
		return true
	})
}

// funcTakesContext reports whether fd has a context.Context parameter.
func funcTakesContext(pass *Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if isContextType(pass.Pkg.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// blockingNetCalls collects calls to blocking net-package I/O methods.
func blockingNetCalls(pass *Pass, body *ast.BlockStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !blockingNetIO[sel.Sel.Name] {
			return true
		}
		fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == "net" {
			out = append(out, call)
		}
		return true
	})
	return out
}

// ctxConsulted searches body (including nested literals) for a reference
// to Done/Deadline/Err on a context value, following ctx-carrying calls
// into same-package declarations depth levels deep.
func ctxConsulted(pass *Pass, body *ast.BlockStmt, depth int, seen map[*ast.FuncDecl]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			switch n.Sel.Name {
			case "Done", "Deadline", "Err":
				if isContextType(pass.Pkg.Info.TypeOf(n.X)) {
					found = true
					return false
				}
			}
		case *ast.CallExpr:
			if depth == 0 {
				return true
			}
			// Only follow calls that actually carry a ctx argument.
			carries := false
			for _, arg := range n.Args {
				if isContextType(pass.Pkg.Info.TypeOf(arg)) {
					carries = true
					break
				}
			}
			if !carries {
				return true
			}
			if decl := calleeDecl(pass, n); decl != nil && decl.Body != nil && !seen[decl] {
				seen[decl] = true
				if ctxConsulted(pass, decl.Body, depth-1, seen) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// pathInList reports whether path equals or is nested below one of the
// listed import paths.
func pathInList(path string, list []string) bool {
	for _, p := range list {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
