package analysis

import "testing"

func TestNoPanic(t *testing.T) {
	cases := []struct {
		name  string
		path  string
		files map[string]string
		want  []string
	}{
		{
			name: "panic in internal library code",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

func f() {
	panic("boom")
}
`},
			want: []string{"a.go:4:nopanic"},
		},
		{
			name: "cmd binaries may panic",
			path: "anycastcdn/cmd/repro",
			files: map[string]string{"a.go": `package main

func f() {
	panic("boom")
}
`},
			want: nil,
		},
		{
			name: "test files may panic",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a_test.go": `package geo

func f() {
	panic("boom")
}
`},
			want: nil,
		},
		{
			name: "shadowing local panic is not the builtin",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

func f() {
	panic := func(string) {}
	panic("fine")
}
`},
			want: nil,
		},
		{
			name: "justified ignore survives",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

func f(n int) {
	if n < 0 {
		//lint:ignore nopanic documented contract violation, mirrors stdlib behavior
		panic("negative n")
	}
}
`},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, checkFixture(t, NoPanic, tc.path, tc.files), tc.want)
		})
	}
}
