package analysis

import "testing"

// Scenario: fn stores a closure that locks mu but never invokes it.
// Caller holds mu while calling fn. Does lockorder report a (false)
// re-entrant deadlock?
func TestReviewStoredClosureSummary(t *testing.T) {
	got := checkFixture(t, LockOrder, "fix", map[string]string{
		"a.go": `package fix

import "sync"

type S struct {
	mu sync.Mutex
	cb func()
}

func (s *S) register() {
	s.cb = func() {
		s.mu.Lock()
		s.mu.Unlock()
	}
}

func (s *S) caller() {
	s.mu.Lock()
	s.register()
	s.mu.Unlock()
}
`,
	})
	for _, d := range got {
		t.Logf("diag: %+v", d)
	}
}

// Scenario: closure assigned to a variable then launched with go cl().
// Locks inside run on another goroutine, yet are attributed to the
// spawner's summary.
func TestReviewGoClosureVar(t *testing.T) {
	got := checkFixture(t, LockOrder, "fix", map[string]string{
		"b.go": `package fix

import "sync"

type T struct {
	a, b sync.Mutex
}

func (t *T) spawn() {
	cl := func() {
		t.b.Lock()
		t.b.Unlock()
	}
	go cl()
}

func (t *T) caller() {
	t.b.Lock()
	t.spawn()
	t.b.Unlock()
}
`,
	})
	for _, d := range got {
		t.Logf("diag: %+v", d)
	}
}
