package analysis

import (
	"go/ast"
	"go/types"
)

// RestrictedDeterminism lists the packages (and their subpackages) whose
// outputs must be bit-for-bit reproducible from a seed: the simulation
// core, the prediction pipeline, the experiment harness, and the client
// population model. Everything the paper's figures are computed from flows
// through these.
var RestrictedDeterminism = []string{
	"anycastcdn/internal/sim",
	"anycastcdn/internal/core",
	"anycastcdn/internal/experiments",
	"anycastcdn/internal/clients",
}

// randConstructors are the math/rand names that build explicitly seeded
// generators and are therefore replay-safe.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// Nondeterminism forbids the global math/rand functions and bare
// time.Now() calls in the deterministic packages: all randomness there
// must come from injected xrand substreams and all timestamps from an
// injected clock, so a rerun with the same seed replays exactly.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid global math/rand and bare time.Now() in replay-critical packages",
	Run:  runNondeterminism,
}

func runNondeterminism(pass *Pass) {
	if !pathRestricted(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if pn := pass.PkgNameOf(sel); pn != nil &&
						pn.Imported().Path() == "time" && sel.Sel.Name == "Now" {
						pass.Reportf(n.Pos(),
							"bare time.Now() breaks experiment replay; inject a clock (now func() time.Time) like dnswire.CachingResolver.Now")
					}
				}
			case *ast.SelectorExpr:
				pn := pass.PkgNameOf(n)
				if pn == nil {
					return true
				}
				p := pn.Imported().Path()
				if p != "math/rand" && p != "math/rand/v2" {
					return true
				}
				// Types (rand.Rand, rand.Source, …) and seeded
				// constructors are fine; package-level functions draw from
				// the shared global source and are not.
				if _, isFunc := pass.Pkg.Info.Uses[n.Sel].(*types.Func); isFunc && !randConstructors[n.Sel.Name] {
					pass.Reportf(n.Pos(),
						"global %s.%s is nondeterministic across runs; use an injected xrand substream", p, n.Sel.Name)
				}
			}
			return true
		})
	}
}

// pathRestricted reports whether path is one of the deterministic
// packages or nested below one.
func pathRestricted(path string) bool {
	return pathInList(path, RestrictedDeterminism)
}
