package analysis

import "testing"

func TestCtxPropagation(t *testing.T) {
	cases := []struct {
		name  string
		path  string
		files map[string]string
		want  []string
	}{
		{
			name: "blocking read ignoring ctx",
			path: "anycastcdn/internal/dnswire",
			files: map[string]string{"a.go": `package dnswire

import (
	"context"
	"net"
	"time"
)

func f(ctx context.Context, conn net.Conn) error {
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return err
	}
	buf := make([]byte, 64)
	_, err := conn.Read(buf)
	return err
}
`},
			want: []string{"a.go:14:ctxpropagation"},
		},
		{
			name: "ctx deadline consulted directly",
			path: "anycastcdn/internal/dnswire",
			files: map[string]string{"a.go": `package dnswire

import (
	"context"
	"net"
	"time"
)

func f(ctx context.Context, conn net.Conn) error {
	dl, ok := ctx.Deadline()
	if !ok {
		dl = time.Now().Add(5 * time.Second)
	}
	if err := conn.SetDeadline(dl); err != nil {
		return err
	}
	buf := make([]byte, 64)
	_, err := conn.Read(buf)
	return err
}
`},
			want: nil,
		},
		{
			name: "ctx handed to a same-package watcher",
			path: "anycastcdn/internal/dnswire",
			files: map[string]string{"a.go": `package dnswire

import (
	"context"
	"net"
	"time"
)

func watch(ctx context.Context, conn net.Conn) func() {
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()
	return func() { close(stop) }
}

func f(ctx context.Context, conn net.Conn) error {
	defer watch(ctx, conn)()
	buf := make([]byte, 64)
	_, err := conn.Read(buf)
	return err
}
`},
			want: nil,
		},
		{
			name: "ctx-less net.Dial",
			path: "anycastcdn/internal/dnswire",
			files: map[string]string{"a.go": `package dnswire

import "net"

func f(addr string) (net.Conn, error) {
	return net.Dial("udp", addr)
}
`},
			want: []string{"a.go:6:ctxpropagation"},
		},
		{
			name: "functions without ctx params are out of scope",
			path: "anycastcdn/internal/dnswire",
			files: map[string]string{"a.go": `package dnswire

import "net"

func f(conn net.Conn) error {
	buf := make([]byte, 64)
	_, err := conn.Read(buf)
	return err
}
`},
			want: nil,
		},
		{
			name: "unrestricted packages are out of scope",
			path: "anycastcdn/internal/geo",
			files: map[string]string{"a.go": `package geo

import (
	"context"
	"net"
)

func f(ctx context.Context, conn net.Conn) error {
	buf := make([]byte, 64)
	_, err := conn.Read(buf)
	return err
}
`},
			want: nil,
		},
		{
			name: "test files are exempt",
			path: "anycastcdn/internal/dnswire",
			files: map[string]string{"a_test.go": `package dnswire

import "net"

func f(addr string) (net.Conn, error) {
	return net.Dial("udp", addr)
}
`},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, checkFixture(t, CtxPropagation, tc.path, tc.files), tc.want)
		})
	}
}
