package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module. In-package
// _test.go files are included; external (_test-suffixed) test packages are
// not — the repo has none, and the invariants target library code.
type Package struct {
	// Path is the import path ("anycastcdn/internal/sim").
	Path string
	// Dir is the package directory relative to the module root ("." for
	// the root package).
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadModule parses and type-checks every package under the module rooted
// at root (the directory containing go.mod), in dependency order, using
// only the standard library: module-internal imports are served from the
// packages already checked, standard-library imports from the compiler's
// export data. File names in diagnostics are relative to root.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		path, dir string
		files     []*ast.File
		imports   []string
	}
	raw := map[string]*rawPkg{} // by import path
	for _, dir := range dirs {
		path := modPath
		if dir != "." {
			path = modPath + "/" + filepath.ToSlash(dir)
		}
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			return nil, err
		}
		rp := &rawPkg{path: path, dir: dir}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			rel := filepath.Join(dir, e.Name())
			src, err := os.ReadFile(filepath.Join(root, rel))
			if err != nil {
				return nil, err
			}
			if excludedByBuildTags(src) {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.ToSlash(rel), src, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", rel, err)
			}
			// Skip external test packages (package foo_test).
			if strings.HasSuffix(f.Name.Name, "_test") {
				continue
			}
			rp.files = append(rp.files, f)
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					rp.imports = append(rp.imports, p)
				}
			}
		}
		if len(rp.files) > 0 {
			raw[path] = rp
		}
	}

	// Topologically sort by module-internal imports so dependencies are
	// type-checked before their importers.
	graph := map[string][]string{}
	for path, rp := range raw {
		graph[path] = rp.imports
	}
	order, err := topoSort(graph)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "gc", nil),
		pkgs: map[string]*types.Package{},
	}
	var out []*Package
	for _, path := range order {
		rp := raw[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, rp.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		imp.pkgs[path] = tpkg
		out = append(out, &Package{
			Path:  path,
			Dir:   rp.dir,
			Fset:  fset,
			Files: rp.files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// moduleImporter serves module-internal packages from already-checked
// results and everything else (the standard library) from export data.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// excludedByBuildTags reports whether a //go:build line before the
// package clause excludes the file from the default build on this
// platform. Tag evaluation mirrors what the analysis run needs: GOOS,
// GOARCH, and go1.N release tags are true, everything else (custom
// tags like "ignore" or "integration", cgo, other platforms) is false.
func excludedByBuildTags(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			return false // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			continue
		}
		return !expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH ||
				strings.HasPrefix(tag, "go1.") ||
				(tag == "unix" && (runtime.GOOS == "linux" || runtime.GOOS == "darwin"))
		})
	}
	return false
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s/go.mod", root)
}

// packageDirs lists directories under root that contain .go files,
// skipping hidden directories, testdata, and vendor trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				dirs = append(dirs, rel)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// topoSort orders paths so every package follows its dependencies.
func topoSort(graph map[string][]string) ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch color[p] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", p)
		}
		color[p] = gray
		for _, d := range graph[p] {
			if _, ok := graph[d]; !ok {
				continue // resolved by the importer (stdlib) or missing; the type checker will complain
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		color[p] = black
		order = append(order, p)
		return nil
	}
	var keys []string
	for p := range graph {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	for _, p := range keys {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
