package analysis

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// This file is the control-flow half of the dataflow framework (see
// dataflow.go for the worklist solver). A CFG partitions one function
// body into basic blocks — maximal straight-line statement runs — and
// records the edges a Go program can take between them: if/else, the
// three for-loop forms, range, switch and type-switch (with
// fallthrough), select, goto, labeled and unlabeled break/continue,
// return, and panic. Deferred calls are modeled with a single synthetic
// "defers" block that every function-exiting edge funnels through, in
// reverse registration order — the standard static approximation: a
// conditionally registered defer is treated as running on every exit
// path, which errs toward believing a deferred Unlock happens (fewer
// lockorder false positives, never a false "double lock").
//
// Statement placement invariant (pinned by cfg_selfrepo_test.go): every
// atomic statement of the body lands in exactly one block, including
// statements that are unreachable (code after a return starts a fresh
// block with no predecessors), so reachability is a property of blocks,
// not a hole in the partition.

// Block is one basic block: a run of nodes with no internal control
// transfer. Nodes holds atomic statements plus the control expressions
// evaluated in this block (an if/for/switch condition, a range operand,
// a switch tag) — expressions are included so transfer functions see
// every read in execution order.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, build order).
	Index int
	// Kind names what created the block ("entry", "if.then", "for.body",
	// "defers", …) — for dumps and debugging only.
	Kind string
	// Nodes are the statements and control expressions, in order.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to. For a block ending
	// in a branching condition (Cond != nil), Succs[0] is the true edge
	// and Succs[1] the false edge.
	Succs []*Block
	// Preds are the incoming edges (inverse of Succs).
	Preds []*Block
	// Cond is the branching condition evaluated last in this block, when
	// the block ends in a two-way branch (if and for conditions). It is
	// also present in Nodes; solvers use it for edge refinement.
	Cond ast.Expr
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block, entry first; Blocks[i].Index == i.
	Blocks []*Block
	// Entry is the function entry block.
	Entry *Block
	// Exit is the single synthetic exit block (no Nodes, no Succs).
	// Return statements, panics, and the fall-off-the-end path all reach
	// it — through Defers when the function registers any defer.
	Exit *Block
	// Defers, non-nil only when the body contains defer statements, is
	// the synthetic block holding each deferred call in reverse
	// registration order; its only successor is Exit.
	Defers *Block
}

// cfgBuilder carries the under-construction graph and the lexical
// context needed to resolve break/continue/goto targets.
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// breakTo / continueTo map a label ("" for the innermost construct)
	// to the jump target; inner constructs shadow outer ones via the
	// save/restore in the statement builders.
	breakTo    map[string]*Block
	continueTo map[string]*Block
	// gotos defers edge creation for forward gotos until every label's
	// block exists.
	labels map[string]*Block
	gotos  []pendingGoto
	// exitPending lists blocks ending in return or panic; their edge to
	// the defers/exit block is patched in once that block exists.
	exitPending []*Block
	// defers collects DeferStmts in registration order.
	defers []*ast.DeferStmt
	// label names the next loop/switch/select block's label, consumed by
	// the construct that starts immediately after a LabeledStmt.
	label string
}

type pendingGoto struct {
	from  *Block
	label string
	pos   token.Pos
}

// NewCFG builds the control-flow graph of one function body. It never
// fails: syntactically valid bodies always partition (ill-formed jumps —
// a goto to a missing label — land on an isolated dead-end block rather
// than panicking, since the type checker has already rejected them in
// any analyzed package).
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:        &CFG{},
		breakTo:    map[string]*Block{},
		continueTo: map[string]*Block{},
		labels:     map[string]*Block{},
	}
	entry := b.newBlock("entry")
	b.cfg.Entry = entry
	b.cur = entry
	b.stmtList(body.List)

	// The fall-off-the-end path and every return/panic edge meet at the
	// exit — through the defers block when any defer was registered.
	exit := b.newBlock("exit")
	b.cfg.Exit = exit
	var preExit *Block = exit
	if len(b.defers) > 0 {
		d := b.newBlock("defers")
		for i := len(b.defers) - 1; i >= 0; i-- {
			d.Nodes = append(d.Nodes, b.defers[i].Call)
		}
		b.edge(d, exit)
		b.cfg.Defers = d
		preExit = d
	}
	// Blocks that recorded a pending exit edge (returns, panics) and the
	// current fall-through block all jump to preExit.
	for _, blk := range b.exitPending {
		b.edge(blk, preExit)
	}
	if b.cur != nil {
		b.edge(b.cur, preExit)
	}
	// Resolve forward gotos now that every label exists.
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends an atomic node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump ends the current block with an edge to target and starts an
// unreachable successor (so statements after a break/goto still land in
// exactly one block).
func (b *cfgBuilder) jump(target *Block, deadKind string) {
	b.edge(b.cur, target)
	b.cur = b.newBlock(deadKind)
}

// stmtList builds each statement in order into the growing graph.
func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Any statement other than a labeled loop/switch/select consumes a
	// pending label (a label on a plain statement is a goto target only).
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.exitPending = append(b.exitPending, b.cur)
		b.cur = b.newBlock("dead.return")
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.exitPending = append(b.exitPending, b.cur)
			b.cur = b.newBlock("dead.panic")
		}
	case *ast.EmptyStmt:
		// no effect, no node
	default:
		// Assign, IncDec, Send, Decl, Go, …: straight-line.
		b.add(s)
	}
}

// takeLabel consumes the label a LabeledStmt recorded for the construct
// that directly follows it.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	// The label starts a fresh block so goto can target it.
	target := b.newBlock("label." + s.Label.Name)
	b.edge(b.cur, target)
	b.cur = target
	b.labels[s.Label.Name] = target
	switch s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.label = s.Label.Name
	}
	b.stmt(s.Stmt)
	b.label = ""
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t, ok := b.breakTo[label]; ok {
			b.jump(t, "dead.break")
			return
		}
	case token.CONTINUE:
		if t, ok := b.continueTo[label]; ok {
			b.jump(t, "dead.continue")
			return
		}
	case token.GOTO:
		from := b.cur
		b.gotos = append(b.gotos, pendingGoto{from: from, label: label, pos: s.Pos()})
		b.cur = b.newBlock("dead.goto")
		return
	case token.FALLTHROUGH:
		// Handled by the switch builder (the clause's fall edge); the
		// statement itself is just a marker here.
		return
	}
	// break/continue with no visible target (ill-formed code): dead-end.
	b.cur = b.newBlock("dead.branch")
}

// setTarget binds m[key] = blk and returns a restore func undoing it.
func setTarget(m map[string]*Block, key string, blk *Block) func() {
	saved, had := m[key]
	m[key] = blk
	return func() {
		if had {
			m[key] = saved
		} else {
			delete(m, key)
		}
	}
}

// pushLoop registers break/continue targets for a loop (label may be
// ""), returning a restore func.
func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) func() {
	restores := []func(){
		setTarget(b.breakTo, "", brk),
		setTarget(b.continueTo, "", cont),
	}
	if label != "" {
		restores = append(restores,
			setTarget(b.breakTo, label, brk),
			setTarget(b.continueTo, label, cont))
	}
	return func() {
		for _, r := range restores {
			r()
		}
	}
}

// pushBreakable registers a break-only target (switch/select).
func (b *cfgBuilder) pushBreakable(label string, brk *Block) func() {
	restores := []func(){setTarget(b.breakTo, "", brk)}
	if label != "" {
		restores = append(restores, setTarget(b.breakTo, label, brk))
	}
	return func() {
		for _, r := range restores {
			r()
		}
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	b.cur.Cond = s.Cond
	condBlk := b.cur

	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	b.edge(condBlk, then) // Succs[0]: true edge
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, done)

	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(condBlk, els) // Succs[1]: false edge
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, done)
	} else {
		b.edge(condBlk, done) // Succs[1]: false edge
	}
	b.cur = done
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}

	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		head.Cond = s.Cond
		b.edge(head, body) // true edge
		b.edge(head, done) // false edge
	} else {
		b.edge(head, body) // for {} — done is reachable only via break
	}

	restore := b.pushLoop(label, done, post)
	b.cur = body
	b.stmtList(s.Body.List)
	restore()
	if s.Post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	} else {
		b.edge(b.cur, head)
	}
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	// The range operand is evaluated once, before the loop.
	b.add(s.X)
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	// head models the per-iteration "next element" decision: into the
	// body while elements remain, to done when exhausted.
	b.cur = head
	if s.Key != nil {
		b.add(s.Key)
	}
	if s.Value != nil {
		b.add(s.Value)
	}
	b.edge(head, body)
	b.edge(head, done)

	restore := b.pushLoop(label, done, head)
	b.cur = body
	b.stmtList(s.Body.List)
	restore()
	b.edge(b.cur, head)
	b.cur = done
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	done := b.newBlock("switch.done")
	restore := b.pushBreakable(label, done)
	b.caseClauses(s.Body.List, head, done, "switch")
	restore()
	b.cur = done
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.stmt(s.Assign) // the x := y.(type) assignment or bare y.(type)
	head := b.cur
	done := b.newBlock("typeswitch.done")
	restore := b.pushBreakable(label, done)
	b.caseClauses(s.Body.List, head, done, "typeswitch")
	restore()
	b.cur = done
}

// caseClauses wires each CaseClause as a successor of head; a clause
// with no terminating jump falls to done, and a trailing fallthrough
// falls to the next clause's body. A switch with no default also edges
// head → done directly.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, head, done *Block, kindPrefix string) {
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		kind := kindPrefix + ".case"
		if cc.List == nil {
			kind = kindPrefix + ".default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok || blocks[i] == nil {
			continue
		}
		b.cur = blocks[i]
		// Case expressions are evaluated when the clause is considered.
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		if endsInFallthrough(cc.Body) && i+1 < len(clauses) && blocks[i+1] != nil {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, done)
		}
	}
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	done := b.newBlock("select.done")
	restore := b.pushBreakable(label, done)
	for _, c := range s.Body.List {
		comm, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		kind := "select.comm"
		if comm.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		b.cur = blk
		if comm.Comm != nil {
			b.stmt(comm.Comm)
		}
		b.stmtList(comm.Body)
		b.edge(b.cur, done)
	}
	restore()
	b.cur = done
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isPanicCall reports whether e is a call to the panic builtin. Lexical
// on purpose: NewCFG has no types.Info, and nothing in this module
// shadows panic (nopanic keeps library code panic-free anyway).
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Reachable returns the blocks reachable from the entry, as a set
// indexed by Block.Index.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	seen[g.Entry.Index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// Dump renders the CFG in a stable human-readable form for golden
// tests: one line per block with kind, reachability, successor list,
// and the source text of each node (via go/printer against fset).
func (g *CFG) Dump(fset *token.FileSet) string {
	reach := g.Reachable()
	var sb strings.Builder
	for _, blk := range g.Blocks {
		succs := make([]string, len(blk.Succs))
		for i, s := range blk.Succs {
			succs[i] = fmt.Sprintf("b%d", s.Index)
		}
		mark := ""
		if !reach[blk.Index] {
			mark = " unreachable"
		}
		fmt.Fprintf(&sb, "b%d %s%s -> [%s]\n", blk.Index, blk.Kind, mark, strings.Join(succs, " "))
		for _, n := range blk.Nodes {
			var nb strings.Builder
			if err := printer.Fprint(&nb, fset, n); err != nil {
				nb.WriteString("<unprintable>")
			}
			text := strings.Join(strings.Fields(nb.String()), " ")
			fmt.Fprintf(&sb, "\t%s\n", text)
		}
	}
	return sb.String()
}

// AtomicStmts returns, for a function body, every statement the CFG
// builder places into blocks (the partition the self-test checks):
// assignments, expression and send statements, inc/dec, declarations,
// go/defer/return/branch statements — excluding statements nested in
// func literals, which get their own CFGs.
func AtomicStmts(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.SendStmt, *ast.IncDecStmt,
			*ast.DeclStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt,
			*ast.BranchStmt:
			out = append(out, n.(ast.Stmt))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
