package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// libraryPrefix is the import-path subtree in which panicking is
// forbidden. cmd/ and examples/ binaries may exit however they like;
// library code must return errors so callers (including long-running
// servers) can degrade instead of dying.
const libraryPrefix = "anycastcdn/internal"

// NoPanic forbids panic calls in internal library packages outside test
// files. The rare legitimate panic (a documented math/rand-style contract
// violation) must carry a //lint:ignore nopanic justification.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic in internal library code; return errors instead",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	path := pass.Pkg.Path
	if path != libraryPrefix && !strings.HasPrefix(path, libraryPrefix+"/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// Only the builtin counts; a shadowing local func is fine.
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				pass.Reportf(call.Pos(),
					"panic in library code; return an error so callers can recover")
			}
			return true
		})
	}
}
