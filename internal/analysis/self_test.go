package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoIsClean runs every analyzer against this repository's own
// source. A failure here means a new violation of the determinism,
// error-handling, locking, or no-panic invariants landed; fix the code
// (or, for a genuinely justified exception, add a
// "//lint:ignore <check> <reason>" on the offending line).
func TestRepoIsClean(t *testing.T) {
	root := moduleRootForTest(t)
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the tree", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d violation(s); run `go run ./cmd/anycastvet ./...` locally for the same report", len(diags))
	}
}

// TestSuiteShape pins the advertised analyzer set: at least the twelve
// invariants the repo documents, each with a name and doc.
func TestSuiteShape(t *testing.T) {
	ans := Analyzers()
	if len(ans) < 12 {
		t.Fatalf("Analyzers() = %d analyzers, want >= 12", len(ans))
	}
	want := map[string]bool{
		"nondeterminism": false,
		"uncheckederr":   false,
		"mutexhygiene":   false,
		"nopanic":        false,
		"goroutineleak":  false,
		"ctxpropagation": false,
		"unitsafety":     false,
		"lockdoc":        false,
		"replaysafety":   false,
		"hotpathalloc":   false,
		"lockorder":      false,
		"errflow":        false,
	}
	for _, an := range ans {
		if an.Name == "" || an.Doc == "" || an.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", an)
		}
		if _, ok := want[an.Name]; ok {
			want[an.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("analyzer %q missing from the suite", name)
		}
	}
}

// moduleRootForTest walks up from the package directory to go.mod.
func moduleRootForTest(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
