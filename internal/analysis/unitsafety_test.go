package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// unitsFixtureSrc is a minimal stand-in for internal/units so conversion
// fixtures can import it without touching the real module.
const unitsFixtureSrc = `package units

type Millis float64
type Kilometers float64

func (m Millis) Float() float64     { return float64(m) }
func (k Kilometers) Float() float64 { return float64(k) }
`

// checkUnitsFixture mirrors checkFixture but type-checks a fake
// anycastcdn/internal/units package first and serves it to the fixture's
// imports the way LoadModule's moduleImporter serves module-internal
// packages.
func checkUnitsFixture(t *testing.T, path string, files map[string]string) []string {
	t.Helper()
	fset := token.NewFileSet()
	uf, err := parser.ParseFile(fset, "units.go", unitsFixtureSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing units fixture: %v", err)
	}
	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "gc", nil),
		pkgs: map[string]*types.Package{},
	}
	conf := types.Config{Importer: imp}
	upkg, err := conf.Check("anycastcdn/internal/units", fset, []*ast.File{uf}, nil)
	if err != nil {
		t.Fatalf("type-checking units fixture: %v", err)
	}
	imp.pkgs["anycastcdn/internal/units"] = upkg

	var names []string
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var astFiles []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(path, fset, astFiles, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	pkg := &Package{Path: path, Dir: ".", Fset: fset, Files: astFiles, Types: tpkg, Info: info}
	var out []string
	for _, d := range Run([]*Package{pkg}, []*Analyzer{UnitSafety}) {
		out = append(out, fmt.Sprintf("%s:%d:%s", d.File, d.Line, d.Check))
	}
	return out
}

// TestUnitSafetyNaming seeds the canonical violation from the issue — a
// bare `float64 RTTMs` struct field — alongside the documented
// exemptions: "Per"-rates, unexported names, non-float64 types.
func TestUnitSafetyNaming(t *testing.T) {
	got := checkFixture(t, UnitSafety, "anycastcdn/internal/fix", map[string]string{
		"fix.go": `package fix

type Sample struct {
	RTTMs        float64
	AirKm        float64
	Latency      float64
	DistancesKm  []float64
	FiberKmPerMs float64
	Count        int
	rttMs        float64
	Alarms       float64
}

func Measure(marginMs float64, n int) (distKm float64) {
	_ = n
	return marginMs
}

func BaseRTTms(x int) float64 { return float64(x) }

func helper(rttMs float64) float64 { return rttMs }
`,
	})
	wantDiags(t, got, []string{
		"fix.go:4:unitsafety",  // RTTMs
		"fix.go:5:unitsafety",  // AirKm
		"fix.go:6:unitsafety",  // Latency
		"fix.go:7:unitsafety",  // DistancesKm
		"fix.go:14:unitsafety", // marginMs param and distKm result
		"fix.go:19:unitsafety", // BaseRTTms returning bare float64
	})
}

// TestUnitSafetyExemptsUnitsPackage checks the naming rule is silent
// inside internal/units itself, whose helpers legitimately take float64.
func TestUnitSafetyExemptsUnitsPackage(t *testing.T) {
	got := checkFixture(t, UnitSafety, "anycastcdn/internal/units", map[string]string{
		"units.go": `package units

type Shim struct {
	RTTMs float64
}

func FromMs(rttMs float64) float64 { return rttMs }
`,
	})
	wantDiags(t, got, nil)
}

// TestUnitSafetyConversions seeds cross-dimension conversions in both
// directions and checks the sanctioned Float() route stays clean.
func TestUnitSafetyConversions(t *testing.T) {
	got := checkUnitsFixture(t, "anycastcdn/internal/fix", map[string]string{
		"fix.go": `package fix

import "anycastcdn/internal/units"

func Bad(k units.Kilometers) units.Millis {
	return units.Millis(k)
}

func BadBack(m units.Millis) units.Kilometers {
	return units.Kilometers(m)
}

func Good(k units.Kilometers) units.Millis {
	return units.Millis(k.Float() / 200.0)
}

func Wrap(x float64) units.Kilometers {
	return units.Kilometers(x)
}

func Same(k units.Kilometers) units.Kilometers {
	return units.Kilometers(k)
}
`,
	})
	wantDiags(t, got, []string{
		"fix.go:6:unitsafety",  // Millis(Kilometers)
		"fix.go:10:unitsafety", // Kilometers(Millis)
	})
}
