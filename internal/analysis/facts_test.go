package analysis

import (
	"go/types"
	"testing"
)

// TestModuleFacts pins the fact graph itself: replay reachability
// crosses package boundaries through the static call graph, and
// //perf:hotpath annotations become module-wide facts.
func TestModuleFacts(t *testing.T) {
	pkgs := loadFixtureModule(t, map[string]map[string]string{
		"a": {"a/a.go": `package a

func Leaf() int { return 1 }

func Orphan() int { return 2 }

//perf:hotpath
func Hot() int { return 3 }
`},
		"b": {"b/b.go": `package b

import "a"

func RunWorld() int {
	return indirect()
}

func indirect() int {
	return a.Leaf()
}

func idle() int { return a.Orphan() }

var _ = idle
`},
	})
	mod := NewModule(pkgs)

	lookup := func(pkgPath, name string) *types.Func {
		t.Helper()
		for _, p := range pkgs {
			if p.Path != pkgPath {
				continue
			}
			fn, ok := p.Types.Scope().Lookup(name).(*types.Func)
			if !ok {
				t.Fatalf("%s.%s is not a function", pkgPath, name)
			}
			return fn
		}
		t.Fatalf("package %s not loaded", pkgPath)
		return nil
	}

	reachable := map[string]bool{
		"RunWorld": true, "indirect": true, "Leaf": true,
		"Orphan": false, "idle": false, "Hot": false,
	}
	pkgOf := map[string]string{
		"RunWorld": "b", "indirect": "b", "idle": "b",
		"Leaf": "a", "Orphan": "a", "Hot": "a",
	}
	for name, want := range reachable {
		fn := lookup(pkgOf[name], name)
		if got := mod.ReplayReachable(fn); got != want {
			t.Errorf("ReplayReachable(%s.%s) = %v, want %v", pkgOf[name], name, got, want)
		}
	}

	if !mod.HotPath(lookup("a", "Hot")) {
		t.Errorf("HotPath(a.Hot) = false, want true (annotated)")
	}
	if mod.HotPath(lookup("a", "Leaf")) {
		t.Errorf("HotPath(a.Leaf) = true, want false (not annotated)")
	}

	// Declaration lookups resolve to the declaring package.
	leaf := lookup("a", "Leaf")
	if fd := mod.FuncDecl(leaf); fd == nil || fd.Name.Name != "Leaf" {
		t.Errorf("FuncDecl(a.Leaf) = %v, want the Leaf declaration", fd)
	}
	if p := mod.FuncPackage(leaf); p == nil || p.Path != "a" {
		t.Errorf("FuncPackage(a.Leaf) resolves to %v, want package a", p)
	}
}

// TestRunModuleSubsetKeepsFacts pins the CLI's split between fact scope
// and report scope: analyzing only package a against whole-module facts
// still flags a's violation, because reachability came from b's root.
func TestRunModuleSubsetKeepsFacts(t *testing.T) {
	pkgs := loadFixtureModule(t, map[string]map[string]string{
		"a": {"a/a.go": `package a

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`},
		"b": {"b/b.go": `package b

import "a"

func RunWorld() {
	_ = a.Stamp()
}
`},
	})
	mod := NewModule(pkgs)

	var subset []*Package
	for _, p := range pkgs {
		if p.Path == "a" {
			subset = append(subset, p)
		}
	}
	diags, timings := RunModule(mod, subset, []*Analyzer{ReplaySafety})
	if len(diags) != 1 || diags[0].File != "a/a.go" || diags[0].Line != 6 {
		t.Fatalf("subset run = %v, want the single a/a.go:6 diagnostic", diags)
	}
	if len(timings) != 1 || timings[0].Name != "replaysafety" {
		t.Fatalf("timings = %v, want one replaysafety entry", timings)
	}
}
