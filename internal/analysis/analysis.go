// Package analysis is anycastvet: a small, dependency-free static-analysis
// framework (stdlib go/ast + go/types only) that enforces the repository's
// cross-cutting invariants — deterministic simulation code, disciplined
// error handling on the network paths, mutex hygiene, no panics in
// library packages, dimensional safety for the ms/km quantities in
// internal/units, and documented locking contracts.
//
// The paper's results (anycast vs. unicast latency deltas, catchments,
// day-over-day prediction) are only trustworthy if a rerun with the same
// seed reproduces them bit-for-bit and the concurrent measurement plumbing
// is race-free. These analyzers make the machine check those properties on
// every `go test ./...` (see self_test.go) instead of trusting review.
//
// Diagnostics may be suppressed with a justified escape hatch on the same
// or the preceding line:
//
//	//lint:ignore <check> <reason>
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the check identifier used in output and //lint:ignore.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package and reports diagnostics via the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package, plus the
// whole-module facts (Mod) shared by every pass of the run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Mod holds the cross-package facts (call graph reachability,
	// hot-path annotations) derived once per run by NewModule.
	Mod    *Module
	report func(Diagnostic)

	declCache map[*types.Func]*ast.FuncDecl
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// PkgNameOf returns the imported package a selector's base identifier
// refers to, or nil when the base is not a package name (e.g. a variable).
func (p *Pass) PkgNameOf(sel *ast.SelectorExpr) *types.PkgName {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := p.Pkg.Info.Uses[id].(*types.PkgName)
	return pn
}

// FuncDeclOf returns the declaration of fn when fn is declared in this
// package, or nil (external functions, interface methods, builtins).
func (p *Pass) FuncDeclOf(fn *types.Func) *ast.FuncDecl {
	if p.declCache == nil {
		p.declCache = map[*types.Func]*ast.FuncDecl{}
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
						p.declCache[obj] = fd
					}
				}
			}
		}
	}
	return p.declCache[fn]
}

// Diagnostic is one reported violation. File is relative to the module
// root when produced by LoadModule.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Nondeterminism, UncheckedErr, MutexHygiene, NoPanic, GoroutineLeak,
		CtxPropagation, UnitSafety, LockDoc, ReplaySafety, HotPathAlloc,
		LockOrder, ErrFlow,
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
