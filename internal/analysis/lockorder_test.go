package analysis

import "testing"

// TestLockOrderDoubleLock covers the re-acquisition findings: double
// Lock, RLock-under-Lock, and the RLock→Lock upgrade, with nested read
// locks staying legal.
func TestLockOrderDoubleLock(t *testing.T) {
	got := checkFixture(t, LockOrder, "fix", map[string]string{
		"locks.go": `package fix

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func (s *S) double() {
	s.mu.Lock()
	s.mu.Lock() // line 12: deadlock
	s.mu.Unlock()
	s.mu.Unlock()
}

func (s *S) upgrade() {
	s.rw.RLock()
	s.rw.Lock() // line 19: upgrade deadlock
	s.rw.Unlock()
	s.rw.RUnlock()
}

func (s *S) readUnderWrite() {
	s.rw.Lock()
	s.rw.RLock() // line 26: RLock under Lock
	s.rw.RUnlock()
	s.rw.Unlock()
}

func (s *S) sharedReaders() {
	s.rw.RLock()
	s.rw.RLock() // nested read locks are fine
	s.rw.RUnlock()
	s.rw.RUnlock()
}
`,
	})
	wantDiags(t, got, []string{
		"locks.go:12:lockorder",
		"locks.go:19:lockorder",
		"locks.go:26:lockorder",
	})
}

// TestLockOrderUnlockSomePaths covers the lock-released-on-some-paths
// finding: a conditional early return that skips the unlock is
// reported at the acquisition, while balanced paths and deferred
// unlocks stay clean.
func TestLockOrderUnlockSomePaths(t *testing.T) {
	got := checkFixture(t, LockOrder, "fix", map[string]string{
		"paths.go": `package fix

import "sync"

type P struct {
	mu   sync.Mutex
	n    int
	done bool
}

func (p *P) leaky() int {
	p.mu.Lock() // line 12: held on the early-return path
	if p.done {
		return 0 // forgot the unlock
	}
	n := p.n
	p.mu.Unlock()
	return n
}

func (p *P) deferred() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return 0
	}
	return p.n
}

func (p *P) balanced() int {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return 0
	}
	n := p.n
	p.mu.Unlock()
	return n
}
`,
	})
	wantDiags(t, got, []string{"paths.go:12:lockorder"})
}

// TestLockOrderIntraCycle seeds an A→B / B→A inversion inside one
// package: both closing acquisitions are reported, each naming the
// other site.
func TestLockOrderIntraCycle(t *testing.T) {
	got := checkFixture(t, LockOrder, "fix", map[string]string{
		"cycle.go": `package fix

import "sync"

var muA, muB sync.Mutex

func ab() {
	muA.Lock()
	muB.Lock() // line 9: A→B
	muB.Unlock()
	muA.Unlock()
}

func ba() {
	muB.Lock()
	muA.Lock() // line 16: B→A
	muA.Unlock()
	muB.Unlock()
}
`,
	})
	wantDiags(t, got, []string{
		"cycle.go:9:lockorder",
		"cycle.go:16:lockorder",
	})
}

// TestLockOrderCrossPackageCycle is the seeded cross-package
// inversion from the acceptance criteria: package fixa orders A→B
// directly; package fixb takes B and then calls back into fixa's
// TakeA, so the B→A edge only exists via call-graph propagation of the
// held-lock set. Both edges of the cycle must be reported, each in the
// package owning the closing acquisition.
func TestLockOrderCrossPackageCycle(t *testing.T) {
	got := checkModuleFixture(t, LockOrder, map[string]map[string]string{
		"fixa": {"a.go": `package fixa

import "sync"

var MuA, MuB sync.Mutex

func AB() {
	MuA.Lock()
	MuB.Lock() // line 9: A→B directly
	MuB.Unlock()
	MuA.Unlock()
}

func TakeA() {
	MuA.Lock() // line 15: B→A lands here via fixb.BA's held set
	MuA.Unlock()
}
`},
		"fixb": {"b.go": `package fixb

import "fixa"

func BA() {
	fixa.MuB.Lock()
	defer fixa.MuB.Unlock()
	fixa.TakeA() // holds MuB while TakeA acquires MuA
}
`},
	})
	wantDiags(t, got, []string{
		"a.go:9:lockorder",
		"a.go:15:lockorder",
	})
}

// TestLockOrderReentrantCall covers the cross-function double lock: a
// call made with a mutex held into a callee that (transitively)
// acquires the same mutex.
func TestLockOrderReentrantCall(t *testing.T) {
	got := checkFixture(t, LockOrder, "fix", map[string]string{
		"reent.go": `package fix

import "sync"

type R struct {
	mu sync.Mutex
	n  int
}

func (r *R) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func (r *R) Report() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Count() + 1 // line 19: re-entrant via call
}

func (r *R) viaHelper() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return helper(r) // line 25: transitive through helper
}

func helper(r *R) int { return r.Count() }
`,
	})
	wantDiags(t, got, []string{
		"reent.go:19:lockorder",
		"reent.go:25:lockorder",
	})
}

// TestLockOrderGoroutineBoundary pins the goroutine semantics: locks
// held at a go statement do not leak into the spawned body (no false
// re-entrancy), but the body's own acquisition order still feeds the
// global graph and can complete a cycle.
func TestLockOrderGoroutineBoundary(t *testing.T) {
	got := checkFixture(t, LockOrder, "fix", map[string]string{
		"gor.go": `package fix

import "sync"

var gmuA, gmuB sync.Mutex

func spawnWhileHeld() {
	gmuA.Lock()
	go func() {
		gmuA.Lock() // runs on another goroutine: not a double lock
		gmuA.Unlock()
	}()
	gmuA.Unlock()
}

func orderInGoroutine() {
	go func() {
		gmuB.Lock()
		gmuA.Lock() // line 19: B→A, inverting abOrder's A→B
		gmuA.Unlock()
		gmuB.Unlock()
	}()
}

func abOrder() {
	gmuA.Lock()
	gmuB.Lock() // line 27: A→B
	gmuB.Unlock()
	gmuA.Unlock()
}
`,
	})
	wantDiags(t, got, []string{
		"gor.go:19:lockorder",
		"gor.go:27:lockorder",
	})
}

// TestLockOrderIgnoreSuppressesCycleEdge is the cross-package
// suppression regression from the satellite list: a //lint:ignore at
// the reported site of a call-graph-propagated cycle edge must
// suppress that edge (and only that edge), even though the fact chain
// that produced it crosses packages.
func TestLockOrderIgnoreSuppressesCycleEdge(t *testing.T) {
	got := checkModuleFixture(t, LockOrder, map[string]map[string]string{
		"fixa": {"a.go": `package fixa

import "sync"

var MuA, MuB sync.Mutex

func AB() {
	MuA.Lock()
	//lint:ignore lockorder seeded inversion, order documented elsewhere
	MuB.Lock()
	MuB.Unlock()
	MuA.Unlock()
}

func TakeA() {
	MuA.Lock() // line 16: still reported
	MuA.Unlock()
}
`},
		"fixb": {"b.go": `package fixb

import "fixa"

func BA() {
	fixa.MuB.Lock()
	defer fixa.MuB.Unlock()
	fixa.TakeA()
}
`},
	})
	wantDiags(t, got, []string{"a.go:16:lockorder"})
}
