package analysis

import "testing"

// These tests pin the fact registrations that put the distributed
// simulation layer under the analyzers' contracts: distsim is
// replay-sensitive and ctx-restricted, and the distributed pipeline's two
// halves — StreamShard and MergeShardDay — are replay roots alongside
// RunWorld/StreamWorld.

// TestReplaySafetyDistsimIsSensitive seeds an order-dependent map range
// in a distsim-path fixture: the package gate must now catch it.
func TestReplaySafetyDistsimIsSensitive(t *testing.T) {
	src := `package distsim

func Reduce(m map[int]float64) []int {
	var ids []int
	for k := range m {
		ids = append(ids, k)
	}
	return ids
}
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/distsim", map[string]string{"a.go": src})
	wantDiags(t, got, []string{
		"a.go:6:replaysafety", // append in map-range order, no directive
	})
}

// TestReplaySafetyDistributedRoots seeds wall-clock reads behind the new
// roots: a helper reachable from StreamShard, and one reachable from
// MergeShardDay, must both carry the replay-sensitive fact. A sibling
// helper reachable from neither stays out of scope.
func TestReplaySafetyDistributedRoots(t *testing.T) {
	src := `package experiments

import "time"

func StreamShard() int64 { return stamp() }

func MergeShardDay() int64 { return stamp2() }

func stamp() int64 { return time.Now().UnixNano() }

func stamp2() int64 { return time.Now().UnixNano() }

func Unreached() int64 { return time.Now().UnixNano() }
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/experiments", map[string]string{"a.go": src})
	wantDiags(t, got, []string{
		"a.go:9:replaysafety",  // stamp: reachable from the StreamShard root
		"a.go:11:replaysafety", // stamp2: reachable from the MergeShardDay root
		// Unreached reads the clock too, but no root reaches it.
	})
}

// TestCtxPropagationDistsimRestricted seeds ctx-blind blocking I/O in a
// distsim-path fixture: the restricted-package gate must now catch it,
// and the cancellation-watcher shape the real package uses must pass.
func TestCtxPropagationDistsimRestricted(t *testing.T) {
	bad := `package distsim

import (
	"context"
	"net"
)

func ReadFrame(ctx context.Context, conn net.Conn) error {
	buf := make([]byte, 64)
	_, err := conn.Read(buf)
	return err
}
`
	got := checkFixture(t, CtxPropagation, "anycastcdn/internal/distsim", map[string]string{"a.go": bad})
	wantDiags(t, got, []string{
		"a.go:10:ctxpropagation", // conn.Read with the ctx never consulted
	})

	good := `package distsim

import (
	"context"
	"net"
	"time"
)

func ReadFrame(ctx context.Context, conn net.Conn) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Unix(1, 0))
		case <-done:
		}
	}()
	buf := make([]byte, 64)
	_, err := conn.Read(buf)
	return err
}
`
	got = checkFixture(t, CtxPropagation, "anycastcdn/internal/distsim", map[string]string{"a.go": good})
	wantDiags(t, got, nil)
}
