package analysis

import "testing"

// TestErrFlowOverwrite covers the dead-error-store finding: an error
// assignment no path reads before a rewrite or return.
func TestErrFlowOverwrite(t *testing.T) {
	got := checkFixture(t, ErrFlow, "fix", map[string]string{
		"over.go": `package fix

import "errors"

func step() error { return errors.New("x") }

func lost() error {
	err := step() // line 8: overwritten before any check
	err = step()
	return err
}

func abandoned() int {
	n, err := twoStep()
	if err != nil {
		return 0
	}
	m, err := twoStep() // line 18: err never checked again
	return n + m
}

func twoStep() (int, error) { return 1, step() }
`,
	})
	wantDiags(t, got, []string{
		"over.go:8:errflow",
		"over.go:18:errflow",
	})
}

// TestErrFlowOverwriteNegatives pins the idioms the overwrite finding
// must not fire on: the retry loop keeping the last error (live via
// the loop-exit path), wrapping reads the old value, and err = nil is
// a reset, not a droppable error.
func TestErrFlowOverwriteNegatives(t *testing.T) {
	got := checkFixture(t, ErrFlow, "fix", map[string]string{
		"neg.go": `package fix

import (
	"errors"
	"fmt"
)

func attempt() error { return errors.New("x") }

func retry() error {
	var lastErr error
	for i := 0; i < 3; i++ {
		err := attempt()
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("3 attempts: %w", lastErr)
}

func wrap() error {
	err := attempt()
	err = fmt.Errorf("wrapped: %w", err)
	return err
}

func reset() error {
	err := attempt()
	if errors.Is(err, errSentinel) {
		err = nil
	}
	return err
}

var errSentinel = errors.New("sentinel")
`,
	})
	wantDiags(t, got, nil)
}

// TestErrFlowShadowedCheck covers the shadowed-check finding: a nil
// check that reads the outer err while a shadowing err assigned on
// this path was never nil-checked.
func TestErrFlowShadowedCheck(t *testing.T) {
	got := checkFixture(t, ErrFlow, "fix", map[string]string{
		"shadow.go": `package fix

import (
	"errors"
	"fmt"
)

func side() (int, error) { return 0, errors.New("x") }

func confused(c bool) error {
	n, err := side()
	if err != nil {
		return err
	}
	if c {
		_, err := side() // assigned, logged, never nil-checked
		fmt.Println(n, err)
	}
	if err != nil { // line 19: reads the outer err
		return err
	}
	return nil
}

func clean(c bool) error {
	_, err := side()
	if err != nil {
		return err
	}
	if c {
		_, err := side()
		if err != nil { // inner checked: fine
			return err
		}
	}
	if err != nil {
		return err
	}
	return nil
}
`,
	})
	wantDiags(t, got, []string{"shadow.go:19:errflow"})
}

// TestErrFlowUseOnErrorPath covers the use-of-result finding: a
// dereference-like use of a result on the branch where its paired
// error is known non-nil, with nil-guarded uses and plain copies
// allowed.
func TestErrFlowUseOnErrorPath(t *testing.T) {
	got := checkFixture(t, ErrFlow, "fix", map[string]string{
		"use.go": `package fix

import "errors"

type conn struct{ n int }

func (c *conn) close() {}

func dial() (*conn, error) { return nil, errors.New("refused") }

func bad() {
	c, err := dial()
	if err != nil {
		c.close() // line 14: c may be nil here
	}
}

func guarded() {
	c, err := dial()
	if err != nil {
		if c != nil {
			c.close() // proven non-nil: fine
		}
	}
}

func earlyReturn() error {
	c, err := dial()
	if err != nil {
		return err
	}
	c.close() // error path returned: fine
	return nil
}

func copied() (*conn, error) {
	c, err := dial()
	if err != nil {
		return c, err // plain copy, no dereference: fine
	}
	return c, nil
}
`,
	})
	wantDiags(t, got, []string{"use.go:14:errflow"})
}

// TestErrFlowReassignKillsPairing is the regression for the stale
// pairing bug: once the error variable is reassigned by a later call,
// results of the earlier call are no longer tied to it.
func TestErrFlowReassignKillsPairing(t *testing.T) {
	got := checkFixture(t, ErrFlow, "fix", map[string]string{
		"pair.go": `package fix

import "errors"

type f struct{}

func (*f) close() {}

func open() (*f, error) { return nil, errors.New("x") }

func sequential() error {
	a, err := open()
	if err != nil {
		return err
	}
	b, err := open()
	if err != nil {
		a.close() // a's error was checked above: fine
		return err
	}
	b.close()
	return nil
}
`,
	})
	wantDiags(t, got, nil)
}

// TestErrFlowClosuresExcluded pins the escape rule: error variables
// captured by closures or address-taken are off the CFG and must not
// be reported.
func TestErrFlowClosuresExcluded(t *testing.T) {
	got := checkFixture(t, ErrFlow, "fix", map[string]string{
		"esc.go": `package fix

import "errors"

func produce() error { return errors.New("x") }

func captured() error {
	var err error
	fn := func() { err = produce() }
	fn()
	err = produce() // would look like an overwrite, but err escaped
	return err
}

func addressed() error {
	err := produce()
	record(&err)
	err = produce()
	return err
}

func record(*error) {}
`,
	})
	wantDiags(t, got, nil)
}

// TestErrFlowSkipsTestFiles pins that errflow leaves _test.go files
// alone — tests drop errors on purpose.
func TestErrFlowSkipsTestFiles(t *testing.T) {
	got := checkFixture(t, ErrFlow, "fix", map[string]string{
		"x.go": `package fix

import "errors"

func mk() error { return errors.New("x") }
`,
		"x_test.go": `package fix

func helper() error {
	err := mk()
	err = mk()
	return err
}
`,
	})
	wantDiags(t, got, nil)
}
