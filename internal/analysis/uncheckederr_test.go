package analysis

import "testing"

// closerFixture defines a local type with the watched method shapes so
// cases stay self-contained.
const closerFixture = `package x

import "time"

type conn struct{}

func (conn) Close() error                  { return nil }
func (conn) SetDeadline(time.Time) error   { return nil }
func (conn) Flush() error                  { return nil }
func (conn) Encode(any) error              { return nil }

type quietCloser struct{}

func (quietCloser) Close() {} // no error result; never flagged
`

func TestUncheckedErr(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "bare statements drop errors",
			src: `package x

import "time"

func f(c conn) {
	c.Close()
	c.SetDeadline(time.Time{})
	c.Flush()
	c.Encode(1)
}
`,
			want: []string{"b.go:6:uncheckederr", "b.go:7:uncheckederr", "b.go:8:uncheckederr", "b.go:9:uncheckederr"},
		},
		{
			name: "handled, discarded, and deferred close are fine",
			src: `package x

func f(c conn) error {
	if err := c.Close(); err != nil {
		return err
	}
	_ = c.Close()
	defer c.Close()
	return nil
}
`,
			want: nil,
		},
		{
			name: "deferring a flush still loses the error",
			src: `package x

func f(c conn) {
	defer c.Flush()
}
`,
			want: []string{"b.go:4:uncheckederr"},
		},
		{
			name: "close without an error result is not watched",
			src: `package x

func f(q quietCloser) {
	q.Close()
}
`,
			want: nil,
		},
		{
			name: "go statement drops the error",
			src: `package x

func f(c conn) {
	go c.Close()
}
`,
			want: []string{"b.go:4:uncheckederr"},
		},
		{
			name: "lint ignore with reason suppresses",
			src: `package x

func f(c conn) {
	//lint:ignore uncheckederr teardown on a path where the error is unreachable
	c.Close()
}
`,
			want: nil,
		},
		{
			name: "lint ignore without reason reports lint and keeps the finding",
			src: `package x

func f(c conn) {
	//lint:ignore uncheckederr
	c.Close()
}
`,
			want: []string{"b.go:4:lint", "b.go:5:uncheckederr"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			files := map[string]string{"a.go": closerFixture, "b.go": tc.src}
			wantDiags(t, checkFixture(t, UncheckedErr, "anycastcdn/internal/fixture", files), tc.want)
		})
	}
}
