package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLeak requires every goroutine spawned in internal library code
// to have a visible join or cancellation path. A long-running server that
// leaks one goroutine per query or per Close eventually dies of scheduler
// pressure, and a leaked handler can touch caller state after shutdown —
// the exact class of bug the dnswire drain-on-Close work fixes.
//
// A `go` statement is accepted when the spawned body (a func literal, or
// the declaration of a same-package function) shows one of:
//
//  1. a (*sync.WaitGroup).Done or .Wait call — the spawner joins it;
//  2. a close(ch) call — it signals a done channel on exit;
//  3. a channel receive (<-ch, including select cases and <-ctx.Done()) —
//     it parks on a cancellation signal instead of running away.
//
// Evidence is also searched one call level deep through same-package
// callees. Spawning a function from another package directly (e.g.
// `go srv.Serve(ln)`) is always flagged: the analyzer cannot see into it,
// so wrap it in a tracked literal. cmd/ and examples/ binaries are exempt,
// as are test files.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "flag goroutines in library code with no join/cancel path (WaitGroup, done channel, or ctx)",
	Run:  runGoroutineLeak,
}

// leakSearchDepth bounds how many same-package call levels the evidence
// search follows from the spawned body.
const leakSearchDepth = 2

func runGoroutineLeak(pass *Pass) {
	path := pass.Pkg.Path
	if path != libraryPrefix && !strings.HasPrefix(path, libraryPrefix+"/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !spawnHasJoinPath(pass, g.Call) {
				pass.Reportf(g.Pos(),
					"goroutine has no visible join or cancel path; track it with a WaitGroup, close a done channel, or park it on a ctx/channel receive")
			}
			return true
		})
	}
}

// spawnHasJoinPath locates the spawned body and searches it for join
// evidence.
func spawnHasJoinPath(pass *Pass, call *ast.CallExpr) bool {
	seen := map[*ast.FuncDecl]bool{}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return hasJoinEvidence(pass, fun.Body, leakSearchDepth, seen)
	default:
		if decl := calleeDecl(pass, call); decl != nil && decl.Body != nil {
			seen[decl] = true
			return hasJoinEvidence(pass, decl.Body, leakSearchDepth, seen)
		}
	}
	return false
}

// calleeDecl resolves a call to its same-package declaration, or nil.
func calleeDecl(pass *Pass, call *ast.CallExpr) *ast.FuncDecl {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return pass.FuncDeclOf(fn)
}

// hasJoinEvidence walks body (including nested literals) for a join or
// cancel signal, following same-package calls depth levels deep.
func hasJoinEvidence(pass *Pass, body *ast.BlockStmt, depth int, seen map[*ast.FuncDecl]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // channel receive: select case, <-done, <-ctx.Done()
			}
		case *ast.CallExpr:
			if isCloseBuiltin(pass, n) || isWaitGroupJoin(pass, n) {
				found = true
				return false
			}
			if depth > 0 {
				if decl := calleeDecl(pass, n); decl != nil && decl.Body != nil && !seen[decl] {
					seen[decl] = true
					if hasJoinEvidence(pass, decl.Body, depth-1, seen) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isCloseBuiltin reports whether call is the builtin close(ch).
func isCloseBuiltin(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isWaitGroupJoin reports whether call is (*sync.WaitGroup).Done or .Wait.
func isWaitGroupJoin(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Wait") {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}
