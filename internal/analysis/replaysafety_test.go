package analysis

import "testing"

// TestReplaySafetyMapRanges covers every map-range construct the analyzer
// flags in a replay-sensitive package — float accumulation, append,
// channel send — plus the exemptions: integer accumulation, sorted-key
// iteration, and a justified //replay:commutative directive.
func TestReplaySafetyMapRanges(t *testing.T) {
	src := `package sim

import "sort"

func Accumulate(m map[string]float64, ch chan float64) (float64, []string) {
	var total float64
	var keys []string
	n := 0
	for k, v := range m {
		total += v
		keys = append(keys, k)
		ch <- v
		n += 1
	}
	_ = n
	sorted := make([]string, 0, len(m))
	//replay:commutative keys only; sorted immediately below
	for k := range m {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var ordered float64
	for _, k := range sorted {
		ordered += m[k]
	}
	return total + ordered, keys
}
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/sim", map[string]string{"a.go": src})
	wantDiags(t, got, []string{
		"a.go:10:replaysafety", // total += v: float accumulation in key order
		"a.go:11:replaysafety", // keys = append(keys, k)
		"a.go:12:replaysafety", // ch <- v
		// n += 1 is integer (exact, commutative): not flagged.
		// line 18: justified by the //replay:commutative directive above it.
		// line 24: range over a sorted slice, not a map.
	})
}

// TestReplaySafetyDirectiveNeedsReason pins the escape hatch's own
// contract: a bare //replay:commutative is reported, and does not
// suppress the loop below it.
func TestReplaySafetyDirectiveNeedsReason(t *testing.T) {
	src := `package sim

func Keys(m map[int]int) []int {
	var out []int
	//replay:commutative
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/sim", map[string]string{"a.go": src})
	wantDiags(t, got, []string{
		"a.go:5:replaysafety", // the reason-less directive itself
		"a.go:7:replaysafety", // the append it failed to justify
	})
}

// TestReplaySafetyNonSensitivePackage is the negative case for the
// package gate: the same order-dependent loop outside the
// replay-sensitive list is not the analyzer's business.
func TestReplaySafetyNonSensitivePackage(t *testing.T) {
	src := `package topology

func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/topology", map[string]string{"a.go": src})
	wantDiags(t, got, nil)
}

// TestReplaySafetyReachability covers the fact-graph checks inside one
// package: everything transitively called from a RunWorld root must not
// read the wall clock, use global math/rand, or mutate package-level
// maps — while identical code in an unreachable function passes.
func TestReplaySafetyReachability(t *testing.T) {
	src := `package widget

import (
	"math/rand"
	"time"
)

var cache = map[string]int{}

func RunWorld() {
	helper()
}

func helper() {
	_ = time.Now()
	_ = rand.Int()
	cache["x"] = 1
	delete(cache, "x")
}

func cold() {
	_ = time.Now()
	_ = rand.Int()
	cache["y"] = 2
}

var _ = cold
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/widget", map[string]string{"a.go": src})
	wantDiags(t, got, []string{
		"a.go:15:replaysafety", // time.Now in reachable helper
		"a.go:16:replaysafety", // global rand.Int in reachable helper
		"a.go:17:replaysafety", // write to package-level map
		"a.go:18:replaysafety", // delete on package-level map
		// cold() has every violation but is not reachable from a root.
	})
}

// TestReplaySafetyCrossPackageFact is the acceptance case for the fact
// graph: a StreamWorld root in one package reaches a callee in another
// package, and the violation is reported in the callee's package — which
// on its own has no root at all.
func TestReplaySafetyCrossPackageFact(t *testing.T) {
	got := checkModuleFixture(t, ReplaySafety, map[string]map[string]string{
		"a": {"a/a.go": `package a

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}

func Cold() int64 {
	return time.Now().UnixNano()
}
`},
		"b": {"b/b.go": `package b

import "a"

func StreamWorld() {
	_ = a.Stamp()
}
`},
	})
	wantDiags(t, got, []string{
		"a/a.go:6:replaysafety", // Stamp is reachable from b.StreamWorld
		// Cold is identical but unreachable: not flagged.
	})
}

// TestReplaySafetySuppressed pins //lint:ignore interop: a justified
// ignore on the accumulating line suppresses the diagnostic.
func TestReplaySafetySuppressed(t *testing.T) {
	src := `package sim

func Total(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore replaysafety fixture justification
		total += v
	}
	return total
}
`
	got := checkFixture(t, ReplaySafety, "anycastcdn/internal/sim", map[string]string{"a.go": src})
	wantDiags(t, got, nil)
}

// TestReplaySafetyCrossPackageIgnore is the suppression-attribution
// regression from the lockorder/errflow PR: a //lint:ignore at the
// *reported* site must suppress a finding whose fact chain crosses
// packages — here the reachability fact originates at a StreamWorld
// root in package b, while the directive sits next to the time.Now
// call in package a, which has no root of its own.
func TestReplaySafetyCrossPackageIgnore(t *testing.T) {
	got := checkModuleFixture(t, ReplaySafety, map[string]map[string]string{
		"a": {"a/a.go": `package a

import "time"

func Stamp() int64 {
	//lint:ignore replaysafety fixture: wall-clock stamp never reaches replayed bytes
	return time.Now().UnixNano()
}
`},
		"b": {"b/b.go": `package b

import "a"

func StreamWorld() {
	_ = a.Stamp()
}
`},
	})
	wantDiags(t, got, nil)
}
