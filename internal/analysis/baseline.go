package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// A Baseline grandfathers existing diagnostics so a new analyzer can land
// before every violation it finds is fixed, then be ratcheted down:
// regenerate the file after each fix and the count shrinks; a fresh
// violation is never absorbed, because matching is per (file, check,
// message) with a bounded count.
//
// Line numbers are deliberately not part of the key — unrelated edits
// move code, and a baseline that rots on every reflow would be deleted,
// not ratcheted.
type Baseline struct {
	counts map[baselineKey]int
}

type baselineKey struct {
	File    string
	Check   string
	Message string
}

// baselineEntry is the on-disk form: one grandfathered diagnostic shape
// and how many instances of it are tolerated.
type baselineEntry struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// NewBaseline builds a baseline tolerating exactly the given diagnostics.
func NewBaseline(diags []Diagnostic) *Baseline {
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, d := range diags {
		b.counts[baselineKey{File: d.File, Check: d.Check, Message: d.Message}]++
	}
	return b
}

// WriteBaseline serializes a baseline for diags to w as sorted JSON.
func WriteBaseline(w io.Writer, diags []Diagnostic) error {
	b := NewBaseline(diags)
	entries := make([]baselineEntry, 0, len(b.counts))
	for k, n := range b.counts {
		entries = append(entries, baselineEntry{File: k.File, Check: k.Check, Message: k.Message, Count: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, c := entries[i], entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// ReadBaseline parses a baseline written by WriteBaseline.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var entries []baselineEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline: %w", err)
	}
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, e := range entries {
		if e.File == "" || e.Check == "" || e.Count < 1 {
			return nil, fmt.Errorf("analysis: baseline entry %+v needs file, check, and a positive count", e)
		}
		b.counts[baselineKey{File: e.File, Check: e.Check, Message: e.Message}] += e.Count
	}
	return b, nil
}

// Filter returns the diagnostics not absorbed by the baseline. Each
// baseline entry absorbs at most its count; diags must be sorted (the
// runner's output order) so which instances are absorbed is
// deterministic. Filter does not mutate b and may be called repeatedly.
func (b *Baseline) Filter(diags []Diagnostic) []Diagnostic {
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	var out []Diagnostic
	for _, d := range diags {
		k := baselineKey{File: d.File, Check: d.Check, Message: d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// Len returns the number of tolerated diagnostic instances.
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}
