package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the //perf:hotpath contract: an annotated
// function is in the per-sample tier the bench gate pins at 0 allocs/op,
// so its body must contain no allocation-forcing constructs —
//
//   - func literals capturing outer variables (the closure and its
//     captures escape together),
//   - string concatenation and fmt calls,
//   - interface conversions of concrete values (explicit conversions,
//     assignments to interface-typed variables, concrete returns behind
//     interface results),
//   - variadic calls with a non-empty argument list (each call builds the
//     backing slice; pass ...slice or use a fixed-arity variant),
//   - append inside a loop to a slice the function did not pre-size with
//     make,
//   - map literals.
//
// The annotation is a cross-package fact (Module.HotPath), so a method
// annotated in one package is enforced wherever its declaration lives.
// Genuine one-time costs inside an annotated function carry a
// //lint:ignore hotpathalloc justification.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation-forcing constructs in //perf:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !pass.Mod.HotPath(obj) {
				continue
			}
			checkHotPath(pass, fd, obj)
		}
	}
}

func checkHotPath(pass *Pass, fd *ast.FuncDecl, fn *types.Func) {
	info := pass.Pkg.Info
	loops := loopRanges(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			for _, v := range capturedVars(info, fd, n) {
				pass.Reportf(n.Pos(),
					"closure in hot path %s captures %s by reference and allocates; hoist the work or pass state explicitly", fd.Name.Name, v.Name())
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				pass.Reportf(n.Pos(),
					"string concatenation in hot path %s allocates; pre-build the string or use a byte buffer owned by the caller", fd.Name.Name)
			}
		case *ast.AssignStmt:
			checkHotPathAssign(pass, fd, n)
		case *ast.ReturnStmt:
			checkHotPathReturn(pass, fd, fn, n)
		case *ast.CallExpr:
			checkHotPathCall(pass, fd, n, loops)
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"map literal in hot path %s allocates; hoist the map to setup code", fd.Name.Name)
				}
			}
		}
		return true
	})
}

func checkHotPathAssign(pass *Pass, fd *ast.FuncDecl, assign *ast.AssignStmt) {
	info := pass.Pkg.Info
	if assign.Tok == token.ADD_ASSIGN && len(assign.Lhs) == 1 && isStringType(info.TypeOf(assign.Lhs[0])) {
		pass.Reportf(assign.Pos(),
			"string concatenation in hot path %s allocates; pre-build the string or use a byte buffer owned by the caller", fd.Name.Name)
		return
	}
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		if boxesIntoInterface(info, info.TypeOf(lhs), assign.Rhs[i]) {
			pass.Reportf(assign.Pos(),
				"assignment boxes a concrete %s into interface %s in hot path %s; keep the concrete type", info.TypeOf(assign.Rhs[i]), info.TypeOf(lhs), fd.Name.Name)
		}
	}
}

func checkHotPathReturn(pass *Pass, fd *ast.FuncDecl, fn *types.Func, ret *ast.ReturnStmt) {
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		if boxesIntoInterface(pass.Pkg.Info, sig.Results().At(i).Type(), res) {
			pass.Reportf(res.Pos(),
				"return boxes a concrete %s into interface result %s in hot path %s", pass.Pkg.Info.TypeOf(res), sig.Results().At(i).Type(), fd.Name.Name)
		}
	}
}

func checkHotPathCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, loops []posRange) {
	info := pass.Pkg.Info
	// Explicit conversion to an interface type.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && isInterfaceType(tv.Type) && !isInterfaceType(info.TypeOf(call.Args[0])) && !isUntypedNil(info, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"conversion boxes a concrete %s into interface %s in hot path %s", info.TypeOf(call.Args[0]), tv.Type, fd.Name.Name)
		}
		return
	}
	// fmt.* anywhere in a hot path allocates (boxing plus formatting state).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pn := pass.PkgNameOf(sel); pn != nil && pn.Imported().Path() == "fmt" {
			pass.Reportf(call.Pos(),
				"fmt.%s in hot path %s allocates; format outside the hot path", sel.Sel.Name, fd.Name.Name)
			return
		}
	}
	// append in a loop to a slice this function did not pre-size.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && inAnyRange(call.Pos(), loops) {
				checkLoopAppend(pass, fd, call)
			}
			return
		}
	}
	// Variadic call with a non-empty variadic slot: the call site builds
	// the backing slice every time. Passing an existing slice (xs...) is
	// allocation-free and allowed.
	if callee := calleeFunc(info, call); callee != nil {
		sig, ok := callee.Type().(*types.Signature)
		if ok && sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
			pass.Reportf(call.Pos(),
				"variadic call %s(...) with %d variadic argument(s) in hot path %s allocates the argument slice; use a fixed-arity variant (like xrand.DeriveSeedL1..L4) or pass an existing slice", callee.Name(), len(call.Args)-sig.Params().Len()+1, fd.Name.Name)
		}
	}
}

// checkLoopAppend flags append-in-loop when the destination slice is a
// local the function visibly failed to pre-size. Slices that arrive as
// parameters or outer state are the caller's responsibility.
func checkLoopAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := pass.Pkg.Info.ObjectOf(id).(*types.Var)
	if !ok || obj.Pos() < fd.Pos() || obj.Pos() >= fd.End() {
		return
	}
	init, found := localInit(pass.Pkg.Info, fd, obj)
	if !found {
		return // a parameter: pre-sizing is the caller's contract
	}
	if presizedMake(pass.Pkg.Info, init) {
		return
	}
	pass.Reportf(call.Pos(),
		"append to %s in a loop in hot path %s without pre-sizing; allocate with make(len/cap) before the loop", id.Name, fd.Name.Name)
}

// localInit finds the initializer expression of obj's declaration inside
// fd (from := or var = forms); found is false for parameters and
// receivers, and init is nil for `var x []T` with no initializer.
func localInit(info *types.Info, fd *ast.FuncDecl, obj *types.Var) (init ast.Expr, found bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if ok && info.Defs[id] == obj {
					found = true
					if len(n.Rhs) == len(n.Lhs) {
						init = n.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.Defs[name] == obj {
					found = true
					if i < len(n.Values) {
						init = n.Values[i]
					}
				}
			}
		}
		return true
	})
	return init, found
}

// presizedMake reports whether init is make([]T, n) or make([]T, n, c)
// with a nonzero size: the append loop then grows into reserved space.
func presizedMake(info *types.Info, init ast.Expr) bool {
	call, ok := ast.Unparen(init).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if len(call.Args) >= 3 {
		return true // explicit capacity
	}
	if len(call.Args) == 2 {
		// make([]T, n): pre-sized unless n is literally zero.
		if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
			return false
		}
		return true
	}
	return false
}

// capturedVars returns the distinct variables a func literal captures
// from its enclosing function (idents resolving to variables declared
// inside fd but outside lit, excluding fields and package-level state).
func capturedVars(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture
		}
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// posRange is a half-open position interval.
type posRange struct{ lo, hi token.Pos }

func inAnyRange(p token.Pos, rs []posRange) bool {
	for _, r := range rs {
		if p >= r.lo && p < r.hi {
			return true
		}
	}
	return false
}

// loopRanges collects the extents of every for/range statement in body.
func loopRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, posRange{n.Pos(), n.End()})
		}
		return true
	})
	return out
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// boxesIntoInterface reports whether assigning rhs to a destination of
// type dst converts a concrete value to an interface.
func boxesIntoInterface(info *types.Info, dst types.Type, rhs ast.Expr) bool {
	if !isInterfaceType(dst) {
		return false
	}
	rt := info.TypeOf(rhs)
	if rt == nil || isInterfaceType(rt) || isUntypedNil(info, rhs) {
		return false
	}
	return true
}
