package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the deadlock analyzer: it runs the held-lock dataflow
// (cfg.go + dataflow.go) over every function body in the module, joins
// the per-function results through the whole-program call graph, and
// reports path properties no syntactic check can see:
//
//   - lock-order cycles: lock A is held while B is acquired on one
//     path, and B is held while A is acquired on another — in the same
//     package or across packages via the call graph. Two goroutines
//     interleaving those paths deadlock. Both acquisition sites are
//     named; the diagnostic lands on the acquisition that closes the
//     cycle.
//   - double lock / RW upgrade: re-acquiring a sync.Mutex the path
//     already holds (sync mutexes are not reentrant), or taking
//     Lock/RLock on an RWMutex whose write (or, for Lock, read) side
//     the path already holds — including through a call chain, where
//     the callee that re-acquires is named.
//   - unlock on some paths only: a lock still held on at least one
//     path into the function exit (after deferred unlocks run) while
//     other paths release it — the conditional-early-return bug
//     mutexhygiene's "any unlock exists" rule cannot see.
//
// The held-lock state is a may-analysis (union join): an acquisition
// on either branch of an if counts as held after the join. Deferred
// calls are modeled as running on every exit path (cfg.go's defers
// block), so `defer mu.Unlock()` never yields a false
// held-at-exit. Goroutine bodies are analyzed as their own functions —
// locks held at a `go` statement do not leak into the spawned body,
// but the body's own acquisition order still feeds the global graph,
// which is what makes cross-goroutine inversions visible.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "detect lock-order deadlock cycles (cross-package), double locks, and locks released on only some paths",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	facts := pass.Mod.LockFacts()
	if facts == nil {
		return
	}
	owned := pass.ownedFiles()
	for _, f := range facts.findings {
		if owned[pass.Pkg.Fset.Position(f.pos).Filename] {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// ownedFiles returns the set of file names this pass's package declares —
// the filter that keeps module-wide facts reported exactly once, in the
// package that owns the diagnostic's site (so a //lint:ignore at the
// reported line suppresses it; see RunModule).
func (p *Pass) ownedFiles() map[string]bool {
	out := make(map[string]bool, len(p.Pkg.Files))
	for _, f := range p.Pkg.Files {
		out[p.Pkg.Fset.Position(f.Pos()).Filename] = true
	}
	return out
}

// lockID identifies one lock across the module: the mutex field or
// variable object when the receiver resolves to one, plus a stable
// human-readable name ("dnswire.Server.mu"). Receivers too dynamic to
// resolve (map elements, results of calls) fall back to a
// function-scoped expression string with a nil object.
type lockID struct {
	v    *types.Var
	name string
}

// heldLock is one element of the dataflow state: a lock the current
// path may hold, how it was acquired, and where.
type heldLock struct {
	id  lockID
	w   bool // write side (Lock) vs read side (RLock)
	pos token.Pos
}

// heldSet is the lattice state: the set of locks a path into this
// point may hold, sorted by name then declaration position. Treated as
// immutable — add/remove copy.
type heldSet []heldLock

func (s heldSet) find(id lockID) int {
	for i, h := range s {
		if h.id == id {
			return i
		}
	}
	return -1
}

func heldLess(a, b heldLock) bool {
	if a.id.name != b.id.name {
		return a.id.name < b.id.name
	}
	av, bv := token.NoPos, token.NoPos
	if a.id.v != nil {
		av = a.id.v.Pos()
	}
	if b.id.v != nil {
		bv = b.id.v.Pos()
	}
	return av < bv
}

func (s heldSet) add(id lockID, w bool, pos token.Pos) heldSet {
	if i := s.find(id); i >= 0 {
		if s[i].w == (s[i].w || w) && s[i].pos <= pos {
			return s
		}
		out := append(heldSet(nil), s...)
		out[i].w = out[i].w || w
		if pos < out[i].pos {
			out[i].pos = pos
		}
		return out
	}
	out := make(heldSet, 0, len(s)+1)
	out = append(out, s...)
	out = append(out, heldLock{id: id, w: w, pos: pos})
	sort.Slice(out, func(i, j int) bool { return heldLess(out[i], out[j]) })
	return out
}

func (s heldSet) remove(id lockID) heldSet {
	i := s.find(id)
	if i < 0 {
		return s
	}
	out := make(heldSet, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

func joinHeld(a, b heldSet) heldSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := append(heldSet(nil), a...)
	for _, h := range b {
		if i := out.find(h.id); i >= 0 {
			out[i].w = out[i].w || h.w
			if h.pos < out[i].pos {
				out[i].pos = h.pos
			}
		} else {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return heldLess(out[i], out[j]) })
	return out
}

func equalHeld(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lockFinding is one diagnostic-to-be, positioned so the analyzer pass
// owning the file reports it.
type lockFinding struct {
	pos token.Pos
	msg string
}

// lockEdge is one arc of the global acquisition-order graph: from is
// held while to is acquired (at toPos; from was acquired at fromPos).
type lockEdge struct {
	from, to       lockID
	fromPos, toPos token.Pos
}

// lockFactsData is the module-wide result of the lock analysis,
// computed once per Module and shared by every lockorder pass.
type lockFactsData struct {
	findings []lockFinding
	// edges is the deduplicated acquisition-order graph, sorted.
	edges []lockEdge
}

// LockFacts runs the module-wide lock analysis once (subsequent calls,
// including concurrent ones from parallel passes, return the cached
// result): per-function held-lock dataflow, call-graph propagation of
// held sets into callee acquisition summaries, and cycle detection on
// the global order graph.
func (m *Module) LockFacts() *lockFactsData {
	m.lockOnce.Do(func() { m.lockData = buildLockFacts(m) })
	return m.lockData
}

// lockUnit is one independently analyzed body: a function declaration
// or a function literal that runs on its own schedule (a goroutine
// body, or a closure stored/passed rather than invoked in place).
type lockUnit struct {
	pkg  *Package
	name string
	fn   *types.Func // enclosing declaration (summary attribution)
	body *ast.BlockStmt
}

// acqInfo summarizes one lock a function (transitively) acquires.
type acqInfo struct {
	w   bool
	pos token.Pos
}

// heldCall is one call site reached with locks held.
type heldCall struct {
	callee *types.Func
	pos    token.Pos
	held   heldSet
}

type lockAnalysis struct {
	mod  *Module
	fset *token.FileSet
	// canon assigns each lock object its first-seen display name so
	// every edge/finding names a lock one way.
	canon map[*types.Var]string

	findings  []lockFinding
	edgeSet   map[[2]lockID]lockEdge
	heldCalls []heldCall
	// direct accumulates per-declaration direct acquisitions
	// (goroutine subtrees excluded — they run on another goroutine);
	// callees mirrors the call graph under the same exclusion.
	direct  map[*types.Func]map[lockID]acqInfo
	callees map[*types.Func][]*types.Func
	// released records, per unit, which locks have any release site —
	// the held-at-exit finding only fires when the function does
	// release the lock on some path (a function with no release at all
	// is mutexhygiene's finding, not ours).
	released map[lockID]bool
}

func buildLockFacts(m *Module) *lockFactsData {
	if len(m.Pkgs) == 0 {
		return &lockFactsData{}
	}
	la := &lockAnalysis{
		mod:     m,
		fset:    m.Pkgs[0].Fset,
		canon:   map[*types.Var]string{},
		edgeSet: map[[2]lockID]lockEdge{},
		direct:  map[*types.Func]map[lockID]acqInfo{},
		callees: map[*types.Func][]*types.Func{},
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				la.collectSummaries(pkg, fn, fd)
				for _, u := range lockUnits(pkg, fn, fd) {
					la.analyzeUnit(u)
				}
			}
		}
	}
	trans := la.transitiveAcq()
	la.crossEdges(trans)
	la.cycleFindings()

	sort.Slice(la.findings, func(i, j int) bool {
		a, b := la.findings[i], la.findings[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.msg < b.msg
	})
	edges := make([]lockEdge, 0, len(la.edgeSet))
	for _, e := range la.edgeSet {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.from.name != b.from.name {
			return a.from.name < b.from.name
		}
		if a.to.name != b.to.name {
			return a.to.name < b.to.name
		}
		return a.toPos < b.toPos
	})
	return &lockFactsData{findings: la.findings, edges: edges}
}

// lockUnits enumerates the analysis units of one declaration: the body
// itself, plus every function literal that does not run in place —
// goroutine bodies and stored/passed closures. Literals invoked where
// they appear (including `defer func(){...}()`, which cfg.go folds
// into the defers block) stay part of the enclosing unit.
func lockUnits(pkg *Package, fn *types.Func, fd *ast.FuncDecl) []lockUnit {
	name := fd.Name.Name
	units := []lockUnit{{pkg: pkg, name: name, fn: fn, body: fd.Body}}
	inline := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			inline[lit] = true
		}
		return true
	})
	// A `go func(){...}()` body is not inline: it runs on another
	// goroutine, so it must be its own unit with an empty held set.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				inline[lit] = false
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if !inline[lit] {
			units = append(units, lockUnit{pkg: pkg, name: name + ".func", fn: fn, body: lit.Body})
		}
		return true
	})
	return units
}

// collectSummaries records fn's direct acquisitions and call edges,
// excluding goroutine subtrees (their effects belong to the spawned
// unit, not the caller's lock path).
func (la *lockAnalysis) collectSummaries(pkg *Package, fn *types.Func, fd *ast.FuncDecl) {
	if fn == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, w, acquire, isLock := la.syncLockCall(pkg, call); isLock {
			if acquire {
				set := la.direct[fn]
				if set == nil {
					set = map[lockID]acqInfo{}
					la.direct[fn] = set
				}
				if prev, ok := set[id]; !ok || call.Pos() < prev.pos {
					set[id] = acqInfo{w: w, pos: call.Pos()}
				} else if w && !prev.w {
					set[id] = acqInfo{w: true, pos: prev.pos}
				}
			}
			return true
		}
		if callee := calleeFunc(pkg.Info, call); callee != nil && la.mod.decls[callee] != nil {
			la.callees[fn] = append(la.callees[fn], callee)
		}
		return true
	})
}

// analyzeUnit runs the held-lock dataflow over one body and harvests
// findings, intra-procedural order edges, and held call sites.
func (la *lockAnalysis) analyzeUnit(u lockUnit) {
	g := NewCFG(u.body)
	la.released = map[lockID]bool{}
	transfer := func(n ast.Node, s heldSet) heldSet {
		return la.applyNode(u, n, s, false)
	}
	res := Solve(g, FlowAnalysis[heldSet]{
		Boundary: nil,
		Bottom:   func() heldSet { return nil },
		Join:     joinHeld,
		Equal:    equalHeld,
		Transfer: transfer,
	})
	// Reporting pass: refold each block from its fixpoint input with
	// callbacks armed.
	for _, blk := range g.Blocks {
		s := res.In[blk.Index]
		for _, n := range blk.Nodes {
			s = la.applyNode(u, n, s, true)
		}
	}
	// Held at exit (after deferred releases): the lock is released on
	// some path (otherwise mutexhygiene owns the finding) but not all.
	for _, h := range res.In[g.Exit.Index] {
		if !la.released[h.id] {
			continue
		}
		la.findings = append(la.findings, lockFinding{
			pos: h.pos,
			msg: fmt.Sprintf("%s is released on some paths through %s but may still be held when the function returns; unlock on every path or defer the unlock", h.id.name, u.name),
		})
	}
}

// applyNode executes one CFG node's lock effects against s. With
// report set it also emits findings and records order edges and held
// call sites (the reporting refold); without, it is the pure transfer
// function for the fixpoint.
func (la *lockAnalysis) applyNode(u lockUnit, n ast.Node, s heldSet, report bool) heldSet {
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.GoStmt, *ast.DeferStmt, *ast.FuncLit:
				// Goroutine bodies and stored closures are separate
				// units; defer registration has no effect here (the
				// deferred call sits in the defers block).
				_ = x
				return false
			case *ast.CallExpr:
				if lit, ok := x.Fun.(*ast.FuncLit); ok {
					// Invoked in place (incl. from the defers block):
					// the body runs here, on this goroutine.
					for _, arg := range x.Args {
						visit(arg)
					}
					visit(lit.Body)
					return false
				}
				if id, w, acquire, isLock := la.syncLockCall(u.pkg, x); isLock {
					if acquire {
						if report {
							la.reportAcquire(u, x, id, w, s)
						}
						s = s.add(id, w, x.Pos())
					} else {
						la.released[id] = true
						s = s.remove(id)
					}
					return false
				}
				if report && len(s) > 0 {
					if callee := calleeFunc(u.pkg.Info, x); callee != nil && la.mod.decls[callee] != nil {
						held := append(heldSet(nil), s...)
						la.heldCalls = append(la.heldCalls, heldCall{callee: callee, pos: x.Pos(), held: held})
					}
				}
			}
			return true
		})
	}
	visit(n)
	return s
}

// reportAcquire emits the double-lock/upgrade findings and records
// intra-procedural order edges for an acquisition under held set s.
func (la *lockAnalysis) reportAcquire(u lockUnit, call *ast.CallExpr, id lockID, w bool, s heldSet) {
	for _, h := range s {
		if h.id == id {
			switch {
			case w && h.w:
				la.findings = append(la.findings, lockFinding{pos: call.Pos(),
					msg: fmt.Sprintf("double Lock of %s: already locked at %s on this path; sync mutexes are not reentrant, this deadlocks", id.name, la.posString(h.pos))})
			case w && !h.w:
				la.findings = append(la.findings, lockFinding{pos: call.Pos(),
					msg: fmt.Sprintf("Lock of %s while its read lock is held (RLock at %s); upgrading RLock to Lock deadlocks", id.name, la.posString(h.pos))})
			case !w && h.w:
				la.findings = append(la.findings, lockFinding{pos: call.Pos(),
					msg: fmt.Sprintf("RLock of %s while its write lock is held (Lock at %s); this deadlocks", id.name, la.posString(h.pos))})
				// RLock while RLock held is legal (shared readers).
			}
			continue
		}
		la.addEdge(h.id, h.pos, id, call.Pos())
	}
}

func (la *lockAnalysis) addEdge(from lockID, fromPos token.Pos, to lockID, toPos token.Pos) {
	if from == to {
		return
	}
	key := [2]lockID{from, to}
	if prev, ok := la.edgeSet[key]; ok {
		// Keep the lexically first site pair so output is independent
		// of discovery order.
		if fromPos > prev.fromPos || (fromPos == prev.fromPos && toPos >= prev.toPos) {
			return
		}
	}
	la.edgeSet[key] = lockEdge{from: from, to: to, fromPos: fromPos, toPos: toPos}
}

// transitiveAcq closes the per-declaration direct-acquisition sets
// over the call graph: everything a call to fn may acquire, in fn or
// any (transitive) callee.
func (la *lockAnalysis) transitiveAcq() map[*types.Func]map[lockID]acqInfo {
	trans := map[*types.Func]map[lockID]acqInfo{}
	for fn, set := range la.direct {
		cp := make(map[lockID]acqInfo, len(set))
		for id, a := range set {
			cp[id] = a
		}
		trans[fn] = cp
	}
	for changed := true; changed; {
		changed = false
		for fn := range la.callees {
			var dst map[lockID]acqInfo
			for _, callee := range la.callees[fn] {
				for id, a := range trans[callee] {
					if dst == nil {
						dst = trans[fn]
						if dst == nil {
							dst = map[lockID]acqInfo{}
							trans[fn] = dst
						}
					}
					if prev, ok := dst[id]; !ok {
						dst[id] = a
						changed = true
					} else if (a.w && !prev.w) || a.pos < prev.pos {
						merged := acqInfo{w: prev.w || a.w, pos: prev.pos}
						if a.pos < prev.pos {
							merged.pos = a.pos
						}
						if merged != prev {
							dst[id] = merged
							changed = true
						}
					}
				}
			}
		}
	}
	return trans
}

// crossEdges turns each held call site into order edges (and
// re-entrant acquisition findings) against the callee's transitive
// acquisition summary.
func (la *lockAnalysis) crossEdges(trans map[*types.Func]map[lockID]acqInfo) {
	for _, hc := range la.heldCalls {
		acq := trans[hc.callee]
		if len(acq) == 0 {
			continue
		}
		for _, h := range hc.held {
			for id, a := range acq {
				if id == h.id {
					if !h.w && !a.w {
						continue // nested read locks are legal
					}
					la.findings = append(la.findings, lockFinding{pos: hc.pos,
						msg: fmt.Sprintf("call to %s while holding %s (locked at %s); %s acquires %s again at %s — re-entrant locking deadlocks",
							hc.callee.Name(), h.id.name, la.posString(h.pos), hc.callee.Name(), id.name, la.posString(a.pos))})
					continue
				}
				la.addEdge(h.id, h.pos, id, a.pos)
			}
		}
	}
}

// cycleFindings finds strongly connected components of the order graph
// and reports every edge inside one: each is an acquisition that, with
// the rest of the component, forms a deadlock-capable cycle.
func (la *lockAnalysis) cycleFindings() {
	inCycle := sccLocks(la.edgeSet)
	var cyclic []lockEdge
	for _, e := range la.edgeSet {
		if inCycle[e.from] != 0 && inCycle[e.from] == inCycle[e.to] {
			cyclic = append(cyclic, e)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool {
		a, b := cyclic[i], cyclic[j]
		if a.toPos != b.toPos {
			return a.toPos < b.toPos
		}
		return a.from.name < b.from.name
	})
	// Name the full component in each message so a reader sees the
	// whole cycle from any one report.
	members := map[int][]string{}
	for id, comp := range inCycle {
		members[comp] = append(members[comp], id.name)
	}
	for comp := range members {
		sort.Strings(members[comp])
	}
	for _, e := range cyclic {
		comp := inCycle[e.from]
		cycle := strings.Join(members[comp], " ⇄ ")
		la.findings = append(la.findings, lockFinding{pos: e.toPos,
			msg: fmt.Sprintf("lock-order cycle: %s is acquired here while %s is held (locked at %s), but another path acquires them in the opposite order [cycle: %s]; concurrent callers deadlock",
				e.to.name, e.from.name, la.posString(e.fromPos), cycle)})
	}
}

// sccLocks assigns each lock that sits on a cycle a non-zero component
// id (Tarjan); locks in singleton components map to 0 unless they have
// a self-loop (excluded earlier by addEdge).
func sccLocks(edgeSet map[[2]lockID]lockEdge) map[lockID]int {
	adj := map[lockID][]lockID{}
	var nodes []lockID
	seen := map[lockID]bool{}
	addNode := func(id lockID) {
		if !seen[id] {
			seen[id] = true
			nodes = append(nodes, id)
		}
	}
	for key := range edgeSet {
		addNode(key[0])
		addNode(key[1])
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })
	for _, n := range nodes {
		succs := adj[n]
		sort.Slice(succs, func(i, j int) bool { return succs[i].name < succs[j].name })
	}

	index := map[lockID]int{}
	low := map[lockID]int{}
	onStack := map[lockID]bool{}
	var stack []lockID
	comp := map[lockID]int{}
	next, compID := 1, 0
	var strongconnect func(v lockID)
	strongconnect = func(v lockID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var size int
			var popped []lockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				popped = append(popped, w)
				size++
				if w == v {
					break
				}
			}
			if size > 1 {
				compID++
				for _, w := range popped {
					comp[w] = compID
				}
			}
		}
	}
	for _, n := range nodes {
		if index[n] == 0 {
			strongconnect(n)
		}
	}
	return comp
}

// syncLockCall classifies call as a sync.Mutex/RWMutex operation,
// resolving the lock's identity: (id, write-side, acquire, true) for
// Lock/RLock/Unlock/RUnlock calls, with embedded mutexes resolved
// through the selection's field path.
func (la *lockAnalysis) syncLockCall(pkg *Package, call *ast.CallExpr) (id lockID, w, acquire, isLock bool) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockID{}, false, false, false
	}
	fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockID{}, false, false, false
	}
	switch fn.Name() {
	case "Lock":
		w, acquire = true, true
	case "RLock":
		w, acquire = false, true
	case "Unlock":
		w, acquire = true, false
	case "RUnlock":
		w, acquire = false, false
	default:
		return lockID{}, false, false, false
	}
	return la.resolveLock(pkg, fun), w, acquire, true
}

// resolveLock derives the lock identity from the method selector:
// either the explicit mutex operand (s.mu.Lock → field mu of s's
// type), an embedded mutex (t.Lock → the promoted field), or a scoped
// expression-string fallback.
func (la *lockAnalysis) resolveLock(pkg *Package, fun *ast.SelectorExpr) lockID {
	// Embedded mutex: the selection walks through promoted fields.
	if sel, ok := pkg.Info.Selections[fun]; ok {
		idx := sel.Index()
		if len(idx) > 1 {
			t := sel.Recv()
			var fv *types.Var
			var owner *types.Named
			for _, i := range idx[:len(idx)-1] {
				if p, ok := t.Underlying().(*types.Pointer); ok {
					t = p.Elem()
				}
				if n, ok := t.(*types.Named); ok {
					owner = n
				}
				st, ok := t.Underlying().(*types.Struct)
				if !ok {
					fv = nil
					break
				}
				fv = st.Field(i)
				t = fv.Type()
			}
			if fv != nil {
				return la.canonical(fv, ownerName(owner, fv.Name()))
			}
		}
	}
	lockExpr := ast.Unparen(fun.X)
	switch x := lockExpr.(type) {
	case *ast.SelectorExpr: // recv.mu
		if v, ok := pkg.Info.ObjectOf(x.Sel).(*types.Var); ok {
			base := pkg.Info.TypeOf(x.X)
			var owner *types.Named
			if base != nil {
				if p, ok := base.Underlying().(*types.Pointer); ok {
					base = p.Elem()
				}
				if n, ok := base.(*types.Named); ok {
					owner = n
				}
			}
			return la.canonical(v, ownerName(owner, x.Sel.Name))
		}
	case *ast.Ident: // package-level or local mutex variable
		if v, ok := pkg.Info.ObjectOf(x).(*types.Var); ok {
			name := x.Name
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				name = shortPkg(v.Pkg().Path()) + "." + x.Name
			}
			return la.canonical(v, name)
		}
	}
	// Dynamic receiver (map element, call result): scoped text.
	return lockID{name: pkg.Path + "#" + types.ExprString(lockExpr)}
}

// canonical returns v's lockID, registering the first-seen display
// name so the same lock is always reported under one name.
func (la *lockAnalysis) canonical(v *types.Var, name string) lockID {
	if prev, ok := la.canon[v]; ok {
		return lockID{v: v, name: prev}
	}
	la.canon[v] = name
	return lockID{v: v, name: name}
}

func ownerName(owner *types.Named, field string) string {
	if owner == nil || owner.Obj().Pkg() == nil {
		return field
	}
	return shortPkg(owner.Obj().Pkg().Path()) + "." + owner.Obj().Name() + "." + field
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func (la *lockAnalysis) posString(pos token.Pos) string {
	p := la.fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
