package analysis

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeTree lays out files (path → content) under a fresh temp module
// root and returns the root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const goModM = "module m\n\ngo 1.24\n"

func TestLoadModuleHappyPath(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":        goModM,
		"a.go":          "package m\n\nimport \"m/sub\"\n\nfunc A() int { return sub.B() }\n",
		"sub/b.go":      "package sub\n\nfunc B() int { return 1 }\n",
		"sub/b_test.go": "package sub\n\nimport \"testing\"\n\nfunc TestB(t *testing.T) {}\n",
	})
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) != 2 || pkgs[0].Path != "m" || pkgs[1].Path != "m/sub" {
		t.Fatalf("loaded %v, want [m m/sub]", pkgs)
	}
	// In-package test files ride along with their package.
	if len(pkgs[1].Files) != 2 {
		t.Errorf("m/sub has %d files, want 2 (source + in-package test)", len(pkgs[1].Files))
	}
}

func TestLoadModuleUnparsableFile(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": goModM,
		"a.go":   "package m\n\nfunc A( {\n",
	})
	_, err := LoadModule(root)
	if err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Fatalf("LoadModule = %v, want a parsing error", err)
	}
}

func TestLoadModuleTypeError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": goModM,
		"a.go":   "package m\n\nfunc A() int { return \"not an int\" }\n",
	})
	_, err := LoadModule(root)
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("LoadModule = %v, want a type-checking error", err)
	}
}

func TestLoadModuleNonStdlibImport(t *testing.T) {
	// The loader serves only module-internal packages and the standard
	// library; a third-party import surfaces as a type-checking error
	// rather than a network fetch.
	root := writeTree(t, map[string]string{
		"go.mod": goModM,
		"a.go":   "package m\n\nimport _ \"github.com/nobody/nothing\"\n",
	})
	_, err := LoadModule(root)
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("LoadModule = %v, want a type-checking error", err)
	}
}

func TestLoadModuleSkipsVendorAndTestdata(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":               goModM,
		"a.go":                 "package m\n\nfunc A() int { return 1 }\n",
		"vendor/dep/broken.go": "package dep\n\nthis is not go\n",
		"testdata/fixture.go":  "also not go\n",
		".hidden/h.go":         "package h\n\nnot go either\n",
		"_skipped/s.go":        "package s\n\nnope\n",
	})
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "m" {
		t.Fatalf("loaded %v, want only [m]", pkgs)
	}
}

func TestLoadModuleSkipsBuildTagExcludedFile(t *testing.T) {
	// The excluded file is deliberately broken: if the loader ever tried
	// to parse it, the load would fail.
	root := writeTree(t, map[string]string{
		"go.mod":    goModM,
		"a.go":      "package m\n\nfunc A() int { return 1 }\n",
		"broken.go": "//go:build ignore\n\npackage m\n\nthis would not parse\n",
	})
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("loaded %v with %d files, want one package with one file", pkgs, len(pkgs[0].Files))
	}
}

func TestLoadModuleSkipsExternalTestPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":        goModM,
		"a.go":          "package m\n\nfunc A() int { return 1 }\n",
		"a_ext_test.go": "package m_test\n\nimport \"testing\"\n\nfunc TestExt(t *testing.T) {}\n",
	})
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("loaded %v with %d files, want the external test package skipped", pkgs, len(pkgs[0].Files))
	}
}

func TestLoadModuleNotAModule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a.go": "package m\n",
	})
	_, err := LoadModule(root)
	if err == nil || !strings.Contains(err.Error(), "not a module root") {
		t.Fatalf("LoadModule = %v, want a not-a-module-root error", err)
	}
}

func TestLoadModuleNoModuleDeclaration(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "go 1.24\n",
		"a.go":   "package m\n",
	})
	_, err := LoadModule(root)
	if err == nil || !strings.Contains(err.Error(), "no module declaration") {
		t.Fatalf("LoadModule = %v, want a no-module-declaration error", err)
	}
}

func TestLoadModuleImportCycle(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": goModM,
		"x/x.go": "package x\n\nimport \"m/y\"\n\nvar _ = y.Y\n",
		"y/y.go": "package y\n\nimport \"m/x\"\n\nvar Y = 0\n\nvar _ = x.X\n",
	})
	_, err := LoadModule(root)
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("LoadModule = %v, want an import cycle error", err)
	}
}

func TestExcludedByBuildTags(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"no constraint", "package p\n", false},
		{"custom tag", "//go:build integration\n\npackage p\n", true},
		{"negated custom tag", "//go:build !integration\n\npackage p\n", false},
		{"current GOOS", "//go:build " + runtime.GOOS + "\n\npackage p\n", false},
		{"other GOOS", "//go:build plan9\n\npackage p\n", runtime.GOOS != "plan9"},
		{"go release tag", "//go:build go1.18\n\npackage p\n", false},
		{"after package clause", "package p\n\n//go:build ignore\n", false},
	}
	for _, tc := range cases {
		if got := excludedByBuildTags([]byte(tc.src)); got != tc.want {
			t.Errorf("%s: excludedByBuildTags = %v, want %v", tc.name, got, tc.want)
		}
	}
}
