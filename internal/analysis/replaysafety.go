package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ReplaySensitive lists the packages (and their subpackages) where map
// iteration order must not leak into output: the simulation core, the
// experiment harness, the measurement log, the fault engine, the
// prediction pipeline, and the statistics kernels. Everything a figure's
// bytes flow through.
var ReplaySensitive = []string{
	"anycastcdn/internal/sim",
	"anycastcdn/internal/experiments",
	"anycastcdn/internal/logs",
	"anycastcdn/internal/faults",
	"anycastcdn/internal/core",
	"anycastcdn/internal/stats",
	"anycastcdn/internal/distsim",
}

// commutativeDirective justifies an order-dependent-looking map
// iteration whose accumulation is in fact order-independent. A reason is
// mandatory, on the range statement's line or the line above:
//
//	//replay:commutative <reason>
const commutativeDirective = "//replay:commutative"

// ReplaySafety enforces byte-identical replay mechanically, two ways.
//
// In the ReplaySensitive packages it flags `range` over a map whose body
// accumulates into state declared outside the loop — appends, non-exact
// compound assignment (float/string/complex accumulation, where
// evaluation order changes the bytes), or channel sends. Iterate sorted
// keys instead, or justify with //replay:commutative. Integer
// accumulation is exact and order-independent, so it is exempt.
//
// Module-wide, it walks the cross-package fact graph: any function
// statically reachable from a RunWorld/StreamWorld root — in whatever
// package — must not call time.Now or the global math/rand functions,
// and must not write to package-level maps (shared mutable state the
// parallel schedule could interleave differently between runs).
var ReplaySafety = &Analyzer{
	Name: "replaysafety",
	Doc:  "forbid order-dependent map iteration in replay-sensitive packages and nondeterminism reachable from RunWorld/StreamWorld",
	Run:  runReplaySafety,
}

func runReplaySafety(pass *Pass) {
	commutative := collectCommutative(pass)
	restricted := pathInList(pass.Pkg.Path, ReplaySensitive)
	for _, f := range pass.Pkg.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		if restricted {
			checkMapRanges(pass, f, commutative)
		}
		checkReplayReachable(pass, f)
	}
}

// collectCommutative gathers //replay:commutative directives per file
// line, reporting directives with no reason (the justification is the
// point of the escape hatch).
func collectCommutative(pass *Pass) map[ignoreKey]bool {
	out := map[ignoreKey]bool{}
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, commutativeDirective)
				if !ok {
					continue
				}
				pos := pass.Pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(rest) == "" {
					pass.report(Diagnostic{
						File:    pos.Filename,
						Line:    pos.Line,
						Col:     pos.Column,
						Check:   pass.Analyzer.Name,
						Message: "//replay:commutative needs a reason: why is this accumulation order-independent?",
					})
					continue
				}
				out[ignoreKey{file: pos.Filename, line: pos.Line}] = true
			}
		}
	}
	return out
}

// checkMapRanges flags map-range loops whose bodies accumulate
// order-dependently into outer state.
func checkMapRanges(pass *Pass, f *ast.File, commutative map[ignoreKey]bool) {
	info := pass.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		pos := pass.Pkg.Fset.Position(rng.Pos())
		if commutative[ignoreKey{file: pos.Filename, line: pos.Line}] ||
			commutative[ignoreKey{file: pos.Filename, line: pos.Line - 1}] {
			return true
		}
		reportMapRangeBody(pass, rng)
		return true
	})
}

// reportMapRangeBody reports each order-dependent accumulation inside one
// map-range body.
func reportMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside map iteration delivers in random key order; iterate sorted keys or justify with %s", commutativeDirective)
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, n)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Pkg.Info.ObjectOf(id)
		if obj == nil || !declaredOutside(obj, rng) {
			continue
		}
		// x = append(x, ...): element order follows key order.
		if assign.Tok == token.ASSIGN && i < len(assign.Rhs) && isAppendCall(pass.Pkg.Info, assign.Rhs[i]) {
			pass.Reportf(assign.Pos(),
				"append to %s inside map iteration records elements in random key order; iterate sorted keys or justify with %s", id.Name, commutativeDirective)
			continue
		}
		// Compound accumulation whose result depends on evaluation order:
		// float and complex addition are not associative, string append is
		// ordered. Integer ops are exact and commute.
		if assign.Tok != token.ASSIGN && assign.Tok != token.DEFINE && !exactCommutativeType(obj.Type()) {
			pass.Reportf(assign.Pos(),
				"%s accumulation into %s inside map iteration is order-dependent for %s; iterate sorted keys or justify with %s",
				assign.Tok, id.Name, obj.Type(), commutativeDirective)
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement (so writes to it survive the loop).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

// exactCommutativeType reports whether compound accumulation into t is
// order-independent: integer addition/multiplication and bit ops are
// exact, so any iteration order produces identical bytes.
func exactCommutativeType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// checkReplayReachable walks every function in f that carries the
// replay-sensitive fact (statically reachable from a RunWorld/StreamWorld
// root, possibly across package boundaries) and flags wall-clock reads,
// global randomness, and writes to package-level maps.
func checkReplayReachable(pass *Pass, f *ast.File) {
	if pass.Mod == nil {
		return
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok || !pass.Mod.ReplayReachable(obj) {
			continue
		}
		checkReachableBody(pass, fd)
	}
}

func checkReachableBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pn := pass.PkgNameOf(sel); pn != nil &&
					pn.Imported().Path() == "time" && sel.Sel.Name == "Now" {
					pass.Reportf(n.Pos(),
						"time.Now() in %s is reachable from a RunWorld/StreamWorld replay root; inject a clock", fd.Name.Name)
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "delete" || b.Name() == "clear") && len(n.Args) > 0 {
					if v := packageLevelMap(info, n.Args[0]); v != nil {
						pass.Reportf(n.Pos(),
							"%s of package-level map %s in %s, which is reachable from a RunWorld/StreamWorld replay root; replay-sensitive state must be run-local", b.Name(), v.Name(), fd.Name.Name)
					}
				}
			}
		case *ast.SelectorExpr:
			pn := pass.PkgNameOf(n)
			if pn == nil {
				return true
			}
			p := pn.Imported().Path()
			if p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if _, isFunc := info.Uses[n.Sel].(*types.Func); isFunc && !randConstructors[n.Sel.Name] {
				pass.Reportf(n.Pos(),
					"global %s.%s in %s is reachable from a RunWorld/StreamWorld replay root; use an injected xrand substream", p, n.Sel.Name, fd.Name.Name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if v := packageLevelMap(info, idx.X); v != nil {
					pass.Reportf(lhs.Pos(),
						"write to package-level map %s in %s, which is reachable from a RunWorld/StreamWorld replay root; replay-sensitive state must be run-local", v.Name(), fd.Name.Name)
				}
			}
		}
		return true
	})
}

// packageLevelMap resolves e to a package-level map variable, or nil.
func packageLevelMap(info *types.Info, e ast.Expr) *types.Var {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.ObjectOf(x)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(x.Sel)
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if _, isMap := v.Type().Underlying().(*types.Map); !isMap {
		return nil
	}
	return v
}
