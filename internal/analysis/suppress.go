package analysis

import (
	"sort"
	"strings"
)

// ignoreKey locates one //lint:ignore directive.
type ignoreKey struct {
	file string
	line int
}

// collectIgnores gathers //lint:ignore directives from a package's
// comments. A directive suppresses matching diagnostics on its own line
// (trailing comment) and on the line directly below it (comment above the
// offending statement). Malformed directives — a missing check name or a
// missing justification — are themselves reported as "lint" diagnostics,
// so the escape hatch cannot silently rot.
func collectIgnores(pkg *Package, report func(Diagnostic)) map[ignoreKey]map[string]bool {
	out := map[ignoreKey]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(Diagnostic{
						File:    pos.Filename,
						Line:    pos.Line,
						Col:     pos.Column,
						Check:   "lint",
						Message: "malformed //lint:ignore: want \"//lint:ignore <check> <reason>\"",
					})
					continue
				}
				key := ignoreKey{file: pos.Filename, line: pos.Line}
				if out[key] == nil {
					out[key] = map[string]bool{}
				}
				out[key][fields[0]] = true
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by an ignore directive on its
// line or the line above.
func suppressed(ignores map[ignoreKey]map[string]bool, d Diagnostic) bool {
	for _, line := range []int{d.Line, d.Line - 1} {
		if checks, ok := ignores[ignoreKey{file: d.File, line: line}]; ok && checks[d.Check] {
			return true
		}
	}
	return false
}

// Run applies analyzers to packages and returns the surviving diagnostics
// sorted by file, line, column, and check.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		collect := func(d Diagnostic) { raw = append(raw, d) }
		ignores := collectIgnores(pkg, collect)
		for _, an := range analyzers {
			pass := &Pass{Analyzer: an, Pkg: pkg, report: collect}
			an.Run(pass)
		}
		for _, d := range raw {
			if !suppressed(ignores, d) {
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}
