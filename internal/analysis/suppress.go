package analysis

import (
	"go/ast"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ignoreKey locates one //lint:ignore directive.
type ignoreKey struct {
	file string
	line int
}

// collectIgnores gathers //lint:ignore directives from a package's
// comments. A directive suppresses matching diagnostics on its own line
// (trailing comment) and on the statement directly below it — including
// every continuation line when that statement spans several (see
// stmtExtents). Malformed directives — a missing check name or a missing
// justification — are themselves reported as "lint" diagnostics, so the
// escape hatch cannot silently rot.
func collectIgnores(pkg *Package, report func(Diagnostic)) map[ignoreKey]map[string]bool {
	extents := stmtExtents(pkg)
	out := map[ignoreKey]map[string]bool{}
	cover := func(file string, line int, check string) {
		key := ignoreKey{file: file, line: line}
		if out[key] == nil {
			out[key] = map[string]bool{}
		}
		out[key][check] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(Diagnostic{
						File:    pos.Filename,
						Line:    pos.Line,
						Col:     pos.Column,
						Check:   "lint",
						Message: "malformed //lint:ignore: want \"//lint:ignore <check> <reason>\"",
					})
					continue
				}
				check := fields[0]
				// The directive's own line (trailing comment) and the line
				// below it (comment above the statement) are covered, each
				// extended to the end of any multi-line statement starting
				// there.
				for _, start := range []int{pos.Line, pos.Line + 1} {
					end := start
					if e, ok := extents[pos.Filename][start]; ok && e > end {
						end = e
					}
					for line := start; line <= end; line++ {
						cover(pos.Filename, line, check)
					}
				}
			}
		}
	}
	return out
}

// stmtExtents maps, per file, the starting line of each statement or
// declaration to the last line it spans. A //lint:ignore above a
// multi-line call or declaration must suppress diagnostics reported on
// its continuation lines, not just its first.
func stmtExtents(pkg *Package) map[string]map[int]int {
	out := map[string]map[int]int{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, ast.Decl, *ast.Field:
			default:
				return true
			}
			start := pkg.Fset.Position(n.Pos())
			end := pkg.Fset.Position(n.End()).Line
			lines := out[start.Filename]
			if lines == nil {
				lines = map[int]int{}
				out[start.Filename] = lines
			}
			if end > lines[start.Line] {
				lines[start.Line] = end
			}
			return true
		})
	}
	return out
}

// suppressed reports whether d is covered by an ignore directive.
func suppressed(ignores map[ignoreKey]map[string]bool, d Diagnostic) bool {
	checks, ok := ignores[ignoreKey{file: d.File, line: d.Line}]
	return ok && checks[d.Check]
}

// Timing is one analyzer's total wall-clock across every package it ran
// on (tasks run in parallel, so timings overlap and do not sum to the
// pass's elapsed time).
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// Run derives cross-package facts for pkgs and applies analyzers,
// returning the surviving diagnostics sorted by file, line, column, and
// check. Callers that already hold a Module (to analyze a package subset
// against whole-module facts) use RunModule directly.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunModule(NewModule(pkgs), pkgs, analyzers)
	return diags
}

// RunModule applies analyzers to pkgs with facts drawn from mod, running
// every (package, analyzer) pair as its own parallel task. pkgs may be a
// subset of mod.Pkgs — facts still reflect the whole module, so a
// cross-package property (replay reachability into a package outside the
// selection) is never lost by narrowing the report scope. Diagnostics
// are deterministic: tasks write to indexed slots and the merged result
// is sorted, so the schedule cannot reorder output.
func RunModule(mod *Module, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	slots := make([][]Diagnostic, len(pkgs)*len(analyzers))
	elapsed := make([]int64, len(analyzers))
	var wg sync.WaitGroup
	for pi := range pkgs {
		for ai := range analyzers {
			wg.Add(1)
			go func(pi, ai int) {
				defer wg.Done()
				var diags []Diagnostic
				pass := &Pass{
					Analyzer: analyzers[ai],
					Pkg:      pkgs[pi],
					Mod:      mod,
					report:   func(d Diagnostic) { diags = append(diags, d) },
				}
				start := time.Now()
				analyzers[ai].Run(pass)
				atomic.AddInt64(&elapsed[ai], int64(time.Since(start)))
				slots[pi*len(analyzers)+ai] = diags
			}(pi, ai)
		}
	}
	wg.Wait()

	// Ignores are collected from every package of the module, not just
	// the report selection: a module-fact diagnostic (a lockorder cycle
	// edge, a replaysafety reachability finding) lands in whatever file
	// owns its site, and the //lint:ignore directive lives next to that
	// site — which may belong to a package other than the one whose pass
	// reported it. Suppression is therefore keyed purely by the
	// diagnostic's (file, line, check). Malformed-directive diagnostics
	// stay scoped to the selected packages so narrowing the report scope
	// does not surface lint noise from elsewhere.
	selected := make(map[*Package]bool, len(pkgs))
	for _, pkg := range pkgs {
		selected[pkg] = true
	}
	var raw []Diagnostic
	ignores := map[ignoreKey]map[string]bool{}
	mergeIgnores := func(pkg *Package) {
		report := func(d Diagnostic) {
			if selected[pkg] {
				raw = append(raw, d)
			}
		}
		for key, checks := range collectIgnores(pkg, report) {
			if ignores[key] == nil {
				ignores[key] = checks
				continue
			}
			for check := range checks {
				ignores[key][check] = true
			}
		}
	}
	inModule := make(map[*Package]bool, len(mod.Pkgs))
	for _, pkg := range mod.Pkgs {
		inModule[pkg] = true
		mergeIgnores(pkg)
	}
	for _, pkg := range pkgs {
		if !inModule[pkg] {
			mergeIgnores(pkg)
		}
	}

	for i := range slots {
		raw = append(raw, slots[i]...)
	}
	var out []Diagnostic
	for _, d := range raw {
		if !suppressed(ignores, d) {
			out = append(out, d)
		}
	}
	sortDiagnostics(out)

	timings := make([]Timing, len(analyzers))
	for ai, an := range analyzers {
		timings[ai] = Timing{Name: an.Name, Elapsed: time.Duration(elapsed[ai])}
	}
	return out, timings
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}
