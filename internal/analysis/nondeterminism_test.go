package analysis

import "testing"

func TestNondeterminism(t *testing.T) {
	cases := []struct {
		name  string
		path  string
		files map[string]string
		want  []string
	}{
		{
			name: "global rand and bare time.Now in sim",
			path: "anycastcdn/internal/sim",
			files: map[string]string{"a.go": `package sim

import (
	"math/rand"
	"time"
)

func Draw() int { return rand.Intn(10) }

func Stamp() time.Time { return time.Now() }
`},
			want: []string{"a.go:8:nondeterminism", "a.go:10:nondeterminism"},
		},
		{
			name: "seeded constructors and injected clocks are fine",
			path: "anycastcdn/internal/core",
			files: map[string]string{"a.go": `package core

import (
	"math/rand"
	"time"
)

type M struct {
	rng *rand.Rand
	now func() time.Time
}

func New(seed int64) *M {
	return &M{rng: rand.New(rand.NewSource(seed)), now: time.Now}
}

func (m *M) Draw() int { return m.rng.Intn(10) }
`},
			want: nil,
		},
		{
			name: "renamed import is still caught",
			path: "anycastcdn/internal/experiments",
			files: map[string]string{"a.go": `package experiments

import mrand "math/rand"

func Draw() float64 { return mrand.Float64() }
`},
			want: []string{"a.go:5:nondeterminism"},
		},
		{
			name: "unrestricted package may use wall clocks",
			path: "anycastcdn/internal/stats",
			files: map[string]string{"a.go": `package stats

import "time"

func Stamp() time.Time { return time.Now() }
`},
			want: nil,
		},
		{
			name: "test files are exempt",
			path: "anycastcdn/internal/sim",
			files: map[string]string{"a_test.go": `package sim

import "time"

func stamp() time.Time { return time.Now() }
`},
			want: nil,
		},
		{
			name: "lint ignore suppresses with justification",
			path: "anycastcdn/internal/clients",
			files: map[string]string{"a.go": `package clients

import "time"

func Stamp() time.Time {
	//lint:ignore nondeterminism wall time feeds a log label, not an experiment output
	return time.Now()
}
`},
			want: nil,
		},
		{
			name: "subpackage of a restricted package is restricted",
			path: "anycastcdn/internal/sim/replay",
			files: map[string]string{"a.go": `package replay

import "math/rand"

func Draw() int { return rand.Int() }
`},
			want: []string{"a.go:5:nondeterminism"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantDiags(t, checkFixture(t, Nondeterminism, tc.path, tc.files), tc.want)
		})
	}
}
