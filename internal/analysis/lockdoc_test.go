package analysis

// TestLockDoc seeds the canonical violation — an exported mutex-holding
// type whose doc says nothing about locking — next to a compliant type,
// a doc-less type, and the exemptions (unexported, lock-free).
import "testing"

const lockDocFixture = `package fix

import "sync"

// Registry is a set of things.
type Registry struct {
	mu sync.Mutex
	m  map[string]int
}

// Store is safe for concurrent use; mu guards m.
type Store struct {
	mu sync.RWMutex
	m  map[string]int
}

type Bare struct {
	mu sync.Mutex
}

// pool is an internal free list.
type pool struct {
	mu sync.Mutex
}

// Plain needs no contract.
type Plain struct {
	N int
}
`

func TestLockDoc(t *testing.T) {
	got := checkFixture(t, LockDoc, "anycastcdn/internal/fix", map[string]string{
		"fix.go": lockDocFixture,
	})
	wantDiags(t, got, []string{
		"fix.go:6:lockdoc",  // Registry: doc without a locking word
		"fix.go:17:lockdoc", // Bare: no doc at all
	})
}

// TestLockDocOnlyInternal checks the rule stays out of cmd/ and the root
// package: the contract requirement is for the library surface.
func TestLockDocOnlyInternal(t *testing.T) {
	got := checkFixture(t, LockDoc, "anycastcdn/cmd/tool", map[string]string{
		"fix.go": lockDocFixture,
	})
	wantDiags(t, got, nil)
}
