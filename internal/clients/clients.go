// Package clients generates the synthetic client population: /24 prefixes
// placed around world metros, with heavy-tailed query volumes and ISP
// membership.
//
// The paper aggregates clients by /24 "because they tend to be localized"
// and weights several results by query volume because "the number of
// queries per /24 is heavily skewed across prefixes" (§3.2.2, citing the
// Akamai end-user-mapping study). Both properties are reproduced here: a
// prefix is a single point scattered a few km around its metro, and
// volumes follow a lognormal with a long tail.
package clients

import (
	"fmt"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/netaddr"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// Client is one client /24 prefix.
type Client struct {
	ID      uint64
	Prefix  netaddr.Prefix24
	Point   geo.Point
	Metro   string
	Region  geo.Region
	Country string
	ISP     topology.ISPID
	// Volume is the prefix's relative daily query volume.
	Volume float64
}

// Config controls population generation.
type Config struct {
	Seed uint64
	// N is the number of client /24s to generate.
	N int
	// ScatterMedianKm is the median distance of a prefix from its metro
	// center.
	ScatterMedianKm units.Kilometers
	// VolumeSigma is the lognormal sigma of per-prefix query volume; the
	// paper's volumes are heavily skewed.
	VolumeSigma float64
}

// DefaultConfig returns the population calibration used by experiments.
func DefaultConfig(seed uint64, n int) Config {
	return Config{Seed: seed, N: n, ScatterMedianKm: 140, VolumeSigma: 2.0}
}

// Population is a generated set of clients.
type Population struct {
	Clients []Client
	// TotalVolume is the sum of all client volumes.
	TotalVolume float64
}

// Generate builds a population over the given metros and ISP model.
// Prefix placement is metro-weighted; ISP assignment is uniform among the
// ISPs of the metro's country.
func Generate(metros []geo.Metro, isps *topology.ISPModel, cfg Config) (*Population, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("clients: non-positive population size %d", cfg.N)
	}
	if len(metros) == 0 {
		return nil, fmt.Errorf("clients: empty metro catalog")
	}
	weights := make([]float64, len(metros))
	for i, m := range metros {
		weights[i] = m.Weight
	}
	alloc := netaddr.NewAllocator(netaddr.ClientPool)
	pop := &Population{Clients: make([]Client, 0, cfg.N)}
	picker := xrand.Substream(cfg.Seed, "clients-metro")
	for i := 0; i < cfg.N; i++ {
		prefix, ok := alloc.Next()
		if !ok {
			return nil, fmt.Errorf("clients: address pool exhausted at %d clients", i)
		}
		mi := picker.WeightedChoice(weights)
		if mi < 0 {
			return nil, fmt.Errorf("clients: no metro weights")
		}
		m := metros[mi]
		rs := xrand.Substream(cfg.Seed, "client", uint64(i))
		scatter := units.Kilometers(cfg.ScatterMedianKm.Float() * rs.LogNormal(0, 0.8))
		point := m.Offset(scatter, rs.Float64()*360)
		ispIDs := isps.ForCountry(m.Country)
		if len(ispIDs) == 0 {
			return nil, fmt.Errorf("clients: country %q has no ISPs", m.Country)
		}
		c := Client{
			ID:      uint64(i),
			Prefix:  prefix,
			Point:   point,
			Metro:   m.Name,
			Region:  m.Region,
			Country: m.Country,
			ISP:     ispIDs[rs.Intn(len(ispIDs))],
			Volume:  rs.LogNormal(0, cfg.VolumeSigma),
		}
		pop.Clients = append(pop.Clients, c)
		pop.TotalVolume += c.Volume
	}
	return pop, nil
}

// labelQueries is the precomputed substream label of QueriesOnDay, the one
// clients entry point on the per-client-day hot path.
var labelQueries = xrand.NewLabel("queries")

// QueriesOnDay returns the number of search queries the prefix issues on a
// simulation day: volume scaled by a weekday/weekend activity factor and
// per-day noise. perVolumeQueries converts relative volume into queries.
func (c Client) QueriesOnDay(seed uint64, day int, weekend bool, perVolumeQueries float64) int {
	factor := 1.0
	if weekend {
		factor = 0.8 // search traffic dips on weekends
	}
	// Daily activity is bursty: a light prefix can be very active on one
	// day and silent the next, which is what lets light /24s appear in
	// the measurable population on only a day or two of the month.
	// Value-type stream: this runs once per client-day, and a heap
	// *Stream here dominates the streaming loop's steady-state allocs.
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL2(seed, labelQueries, c.ID, uint64(day)))
	noise := rs.LogNormal(0, 1.1)
	n := c.Volume * perVolumeQueries * factor * noise
	q := int(n)
	// Probabilistically round the fraction so small-volume prefixes still
	// query occasionally.
	if rs.Float64() < n-float64(q) {
		q++
	}
	return q
}
