// Package clients generates the synthetic client population: /24 prefixes
// placed around world metros, with heavy-tailed query volumes and ISP
// membership.
//
// The paper aggregates clients by /24 "because they tend to be localized"
// and weights several results by query volume because "the number of
// queries per /24 is heavily skewed across prefixes" (§3.2.2, citing the
// Akamai end-user-mapping study). Both properties are reproduced here: a
// prefix is a single point scattered a few km around its metro, and
// volumes follow a lognormal with a long tail.
package clients

import (
	"fmt"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/netaddr"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// Client is one client /24 prefix.
type Client struct {
	ID      uint64
	Prefix  netaddr.Prefix24
	Point   geo.Point
	Metro   string
	Region  geo.Region
	Country string
	ISP     topology.ISPID
	// Volume is the prefix's relative daily query volume.
	Volume float64
}

// Config controls population generation.
type Config struct {
	Seed uint64
	// N is the number of client /24s to generate.
	N int
	// ScatterMedianKm is the median distance of a prefix from its metro
	// center.
	ScatterMedianKm units.Kilometers
	// VolumeSigma is the lognormal sigma of per-prefix query volume; the
	// paper's volumes are heavily skewed.
	VolumeSigma float64
}

// DefaultConfig returns the population calibration used by experiments.
func DefaultConfig(seed uint64, n int) Config {
	return Config{Seed: seed, N: n, ScatterMedianKm: 140, VolumeSigma: 2.0}
}

// Population is a generated set of clients — the whole world, or one
// contiguous shard of it (GenerateRange).
type Population struct {
	// Base is the global client ID of Clients[0]. A full population has
	// Base 0; a shard built by GenerateRange has Base = lo. Every lookup
	// keyed by a record's global client ID must go through Client.
	Base uint64
	// Clients holds the materialized clients, in ID order; Clients[i] has
	// global ID Base+i.
	Clients []Client
	// TotalVolume is the sum of ALL client volumes, including — for a
	// shard — the clients outside the materialized range: generation
	// walks the whole population either way.
	TotalVolume float64
}

// Client returns the client with the given global ID. The ID must lie in
// [Base, Base+len(Clients)); the returned pointer aliases the
// population's storage and must be treated as read-only.
func (p *Population) Client(id uint64) *Client { return &p.Clients[id-p.Base] }

// Generate builds a population over the given metros and ISP model.
// Prefix placement is metro-weighted; ISP assignment is uniform among the
// ISPs of the metro's country.
func Generate(metros []geo.Metro, isps *topology.ISPModel, cfg Config) (*Population, error) {
	return GenerateRange(metros, isps, cfg, 0, cfg.N, nil)
}

// GenerateRange builds the population shard [lo, hi). The whole
// population is still walked in ID order — the metro picker and the /24
// allocator are single sequential streams, so skipping a client would
// shift every later draw — but only the range is materialized, which is
// what lets one worker of a multi-process run hold a million-client
// shard of a many-million-client world. Every transient client is
// byte-identical to the one Generate would store, and observe — when
// non-nil — is called with each of the N clients in ID order (the hook a
// fused builder uses to derive full-population state, like the LDNS
// mapping's resolver interning, without a second walk).
func GenerateRange(metros []geo.Metro, isps *topology.ISPModel, cfg Config, lo, hi int, observe func(Client)) (*Population, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("clients: non-positive population size %d", cfg.N)
	}
	if lo < 0 || hi < lo || hi > cfg.N {
		return nil, fmt.Errorf("clients: shard range [%d, %d) outside population of %d", lo, hi, cfg.N)
	}
	if len(metros) == 0 {
		return nil, fmt.Errorf("clients: empty metro catalog")
	}
	weights := make([]float64, len(metros))
	for i, m := range metros {
		weights[i] = m.Weight
	}
	alloc := netaddr.NewAllocator(netaddr.ClientPool)
	pop := &Population{Base: uint64(lo), Clients: make([]Client, 0, hi-lo)}
	picker := xrand.Substream(cfg.Seed, "clients-metro")
	for i := 0; i < cfg.N; i++ {
		prefix, ok := alloc.Next()
		if !ok {
			return nil, fmt.Errorf("clients: address pool exhausted at %d clients", i)
		}
		mi := picker.WeightedChoice(weights)
		if mi < 0 {
			return nil, fmt.Errorf("clients: no metro weights")
		}
		m := metros[mi]
		rs := xrand.Substream(cfg.Seed, "client", uint64(i))
		scatter := units.Kilometers(cfg.ScatterMedianKm.Float() * rs.LogNormal(0, 0.8))
		point := m.Offset(scatter, rs.Float64()*360)
		ispIDs := isps.ForCountry(m.Country)
		if len(ispIDs) == 0 {
			return nil, fmt.Errorf("clients: country %q has no ISPs", m.Country)
		}
		c := Client{
			ID:      uint64(i),
			Prefix:  prefix,
			Point:   point,
			Metro:   m.Name,
			Region:  m.Region,
			Country: m.Country,
			ISP:     ispIDs[rs.Intn(len(ispIDs))],
			Volume:  rs.LogNormal(0, cfg.VolumeSigma),
		}
		if observe != nil {
			observe(c)
		}
		if i >= lo && i < hi {
			pop.Clients = append(pop.Clients, c)
		}
		pop.TotalVolume += c.Volume
	}
	return pop, nil
}

// labelQueries is the precomputed substream label of QueriesOnDay, the one
// clients entry point on the per-client-day hot path.
var labelQueries = xrand.NewLabel("queries")

// QueriesOnDay returns the number of search queries the prefix issues on a
// simulation day: volume scaled by a weekday/weekend activity factor and
// per-day noise. perVolumeQueries converts relative volume into queries.
func (c Client) QueriesOnDay(seed uint64, day int, weekend bool, perVolumeQueries float64) int {
	factor := 1.0
	if weekend {
		factor = 0.8 // search traffic dips on weekends
	}
	// Daily activity is bursty: a light prefix can be very active on one
	// day and silent the next, which is what lets light /24s appear in
	// the measurable population on only a day or two of the month.
	// Value-type stream: this runs once per client-day, and a heap
	// *Stream here dominates the streaming loop's steady-state allocs.
	var rs xrand.Stream
	rs.Reseed(xrand.DeriveSeedL2(seed, labelQueries, c.ID, uint64(day)))
	noise := rs.LogNormal(0, 1.1)
	n := c.Volume * perVolumeQueries * factor * noise
	q := int(n)
	// Probabilistically round the fraction so small-volume prefixes still
	// query occasionally.
	if rs.Float64() < n-float64(q) {
		q++
	}
	return q
}
