package clients

import (
	"math"
	"sort"
	"testing"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/netaddr"
	"anycastcdn/internal/topology"
)

func world(t *testing.T) ([]geo.Metro, *topology.ISPModel) {
	t.Helper()
	b, err := topology.Build([]topology.SiteSpec{
		{Metro: "new-york", FrontEnd: true, Peering: true},
		{Metro: "london", FrontEnd: true, Peering: true},
		{Metro: "tokyo", FrontEnd: true, Peering: true},
		{Metro: "sydney", FrontEnd: true, Peering: true},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	metros := geo.World()
	return metros, topology.BuildISPs(b, metros, topology.DefaultISPModelConfig(1))
}

func TestGenerateBasics(t *testing.T) {
	metros, isps := world(t)
	pop, err := Generate(metros, isps, DefaultConfig(42, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Clients) != 5000 {
		t.Fatalf("got %d clients, want 5000", len(pop.Clients))
	}
	if pop.TotalVolume <= 0 {
		t.Fatal("total volume must be positive")
	}
	prefixes := map[netaddr.Prefix24]bool{}
	metroByName := map[string]geo.Metro{}
	for _, m := range metros {
		metroByName[m.Name] = m
	}
	for _, c := range pop.Clients {
		if prefixes[c.Prefix] {
			t.Fatalf("duplicate prefix %v", c.Prefix)
		}
		prefixes[c.Prefix] = true
		if !c.Point.Valid() {
			t.Fatalf("client %d has invalid point", c.ID)
		}
		if c.Volume <= 0 {
			t.Fatalf("client %d has non-positive volume", c.ID)
		}
		m, ok := metroByName[c.Metro]
		if !ok {
			t.Fatalf("client %d has unknown metro %q", c.ID, c.Metro)
		}
		if m.Country != c.Country || m.Region != c.Region {
			t.Fatalf("client %d metro metadata mismatch", c.ID)
		}
		if isps.ISP(c.ISP).Country != c.Country {
			t.Fatalf("client %d assigned ISP of wrong country", c.ID)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	metros, isps := world(t)
	if _, err := Generate(metros, isps, DefaultConfig(1, 0)); err == nil {
		t.Error("zero population should fail")
	}
	if _, err := Generate(nil, isps, DefaultConfig(1, 10)); err == nil {
		t.Error("empty catalog should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	metros, isps := world(t)
	p1, err := Generate(metros, isps, DefaultConfig(9, 500))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(metros, isps, DefaultConfig(9, 500))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Clients {
		if p1.Clients[i] != p2.Clients[i] {
			t.Fatalf("client %d differs across identical generations", i)
		}
	}
}

func TestClientsNearTheirMetro(t *testing.T) {
	metros, isps := world(t)
	pop, err := Generate(metros, isps, DefaultConfig(3, 3000))
	if err != nil {
		t.Fatal(err)
	}
	metroByName := map[string]geo.Point{}
	for _, m := range metros {
		metroByName[m.Name] = m.Point
	}
	var dists []float64
	for _, c := range pop.Clients {
		dists = append(dists, geo.DistanceKm(c.Point, metroByName[c.Metro]).Float())
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med < 50 || med > 180 {
		t.Fatalf("median scatter %.1f km, want near 95", med)
	}
}

func TestVolumeHeavyTail(t *testing.T) {
	metros, isps := world(t)
	pop, err := Generate(metros, isps, DefaultConfig(4, 10000))
	if err != nil {
		t.Fatal(err)
	}
	vols := make([]float64, len(pop.Clients))
	for i, c := range pop.Clients {
		vols[i] = c.Volume
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vols)))
	var top, total float64
	for i, v := range vols {
		total += v
		if i < len(vols)/10 {
			top += v
		}
	}
	// Top 10% of prefixes should carry a large share of volume.
	if share := top / total; share < 0.45 {
		t.Fatalf("top-decile volume share %.2f; volumes should be heavily skewed", share)
	}
}

func TestPopulationSkewsToNAandEU(t *testing.T) {
	metros, isps := world(t)
	pop, err := Generate(metros, isps, DefaultConfig(5, 10000))
	if err != nil {
		t.Fatal(err)
	}
	regions := map[geo.Region]int{}
	for _, c := range pop.Clients {
		regions[c.Region]++
	}
	naeu := regions[geo.RegionNorthAmerica] + regions[geo.RegionEurope]
	if frac := float64(naeu) / float64(len(pop.Clients)); frac < 0.5 {
		t.Fatalf("NA+EU fraction %.2f; catalog weights should skew there", frac)
	}
	for _, r := range []geo.Region{geo.RegionAsia, geo.RegionSouthAmerica, geo.RegionAfrica, geo.RegionOceania} {
		if regions[r] == 0 {
			t.Fatalf("region %s has no clients", r)
		}
	}
}

func TestQueriesOnDay(t *testing.T) {
	metros, isps := world(t)
	pop, err := Generate(metros, isps, DefaultConfig(6, 100))
	if err != nil {
		t.Fatal(err)
	}
	c := pop.Clients[0]
	q1 := c.QueriesOnDay(1, 0, false, 10)
	q2 := c.QueriesOnDay(1, 0, false, 10)
	if q1 != q2 {
		t.Fatal("QueriesOnDay not deterministic")
	}
	if q1 < 0 {
		t.Fatal("negative query count")
	}
	// Expected count scales with the multiplier.
	var loSum, hiSum int
	for _, c := range pop.Clients {
		loSum += c.QueriesOnDay(1, 2, false, 1)
		hiSum += c.QueriesOnDay(1, 2, false, 100)
	}
	if hiSum <= loSum {
		t.Fatal("query volume should scale with perVolumeQueries")
	}
	// Weekends should carry less traffic in aggregate.
	var wd, we float64
	for _, c := range pop.Clients {
		wd += float64(c.QueriesOnDay(1, 3, false, 50))
		we += float64(c.QueriesOnDay(1, 3, true, 50))
	}
	if we >= wd {
		t.Fatalf("weekend traffic %v should be below weekday %v", we, wd)
	}
	if math.Abs(we/wd-0.8) > 0.1 {
		t.Fatalf("weekend/weekday ratio %.2f, want near 0.8", we/wd)
	}
}

func BenchmarkGenerate(b *testing.B) {
	bb, err := topology.Build([]topology.SiteSpec{
		{Metro: "new-york", FrontEnd: true, Peering: true},
		{Metro: "london", FrontEnd: true, Peering: true},
	}, 2)
	if err != nil {
		b.Fatal(err)
	}
	metros := geo.World()
	isps := topology.BuildISPs(bb, metros, topology.DefaultISPModelConfig(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(metros, isps, DefaultConfig(uint64(i), 2000)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGenerateRangeMatchesFull pins the sharding contract: a range build
// walks the whole population, so its materialized slice is bit-identical
// to the corresponding window of a full Generate, its TotalVolume is the
// full-population sum, and the observe hook sees every client in ID
// order.
func TestGenerateRangeMatchesFull(t *testing.T) {
	metros, isps := world(t)
	cfg := DefaultConfig(42, 5000)
	full, err := Generate(metros, isps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 1234, 3456
	var seen []uint64
	shard, err := GenerateRange(metros, isps, cfg, lo, hi, func(c Client) {
		seen = append(seen, c.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	if shard.Base != uint64(lo) {
		t.Fatalf("shard base %d, want %d", shard.Base, lo)
	}
	if len(shard.Clients) != hi-lo {
		t.Fatalf("shard holds %d clients, want %d", len(shard.Clients), hi-lo)
	}
	for i, c := range shard.Clients {
		if c != full.Clients[lo+i] {
			t.Fatalf("shard client %d differs from full client %d:\n%+v\nvs\n%+v", i, lo+i, c, full.Clients[lo+i])
		}
		if got := shard.Client(c.ID); *got != c {
			t.Fatalf("Client(%d) returned %+v, want %+v", c.ID, *got, c)
		}
	}
	if shard.TotalVolume != full.TotalVolume {
		t.Fatalf("shard TotalVolume %v, want full-population %v", shard.TotalVolume, full.TotalVolume)
	}
	if len(seen) != cfg.N {
		t.Fatalf("observe saw %d clients, want all %d", len(seen), cfg.N)
	}
	for i, id := range seen {
		if id != uint64(i) {
			t.Fatalf("observe order broken at %d: saw ID %d", i, id)
		}
	}

	for _, b := range [][2]int{{-1, 5}, {5, 4}, {0, cfg.N + 1}} {
		if _, err := GenerateRange(metros, isps, cfg, b[0], b[1], nil); err == nil {
			t.Errorf("range [%d, %d) accepted", b[0], b[1])
		}
	}
}
