package distsim

import (
	"context"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"anycastcdn/internal/experiments"
	"anycastcdn/internal/faults"
	"anycastcdn/internal/load"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/testutil"
)

// TestMain doubles as the worker fleet for the subprocess tests: the
// coordinator re-execs this test binary, and the DISTSIM_TEST_MODE
// variable selects a faithful worker or one of the failure stand-ins.
func TestMain(m *testing.M) {
	switch os.Getenv("DISTSIM_TEST_MODE") {
	case "":
		os.Exit(m.Run())
	case "worker":
		if err := ServeFD(context.Background()); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	case "crash":
		// Complete the handshake, then die mid-protocol: the coordinator
		// must surface the EOF, not hang waiting for day frames.
		f := os.NewFile(workerFD, "coordinator")
		conn, err := net.FileConn(f)
		_ = f.Close()
		if err != nil {
			os.Exit(1)
		}
		fc := newFrameConn(conn)
		if _, err := fc.expect(frameConfig, time.Now().Add(time.Minute)); err != nil {
			os.Exit(1)
		}
		fc.write(frameHello, nil, time.Now().Add(time.Minute))
		os.Exit(2)
	case "stall":
		// Heartbeat forever without making progress: liveness without
		// progress must still trip the coordinator's stall deadline.
		f := os.NewFile(workerFD, "coordinator")
		conn, err := net.FileConn(f)
		_ = f.Close()
		if err != nil {
			os.Exit(1)
		}
		fc := newFrameConn(conn)
		if _, err := fc.expect(frameConfig, time.Now().Add(time.Minute)); err != nil {
			os.Exit(1)
		}
		for {
			if err := fc.write(frameHeartbeat, nil, time.Now().Add(time.Minute)); err != nil {
				os.Exit(0) // coordinator hung up: the expected end
			}
			time.Sleep(10 * time.Millisecond)
		}
	default:
		os.Exit(1)
	}
}

// surgeConfig is the fixture used across the identity tests: a flash
// crowd keeps front-end switches, zero-query days, and (with a policy)
// nontrivial control decisions crossing shard boundaries.
func surgeConfig(t *testing.T, seed uint64, mgr *load.ManagerConfig) sim.Config {
	t.Helper()
	sc, err := faults.ParseScenario("surge south-america day=3 for=3 qps=6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testutil.SmallConfig(seed)
	cfg.Scenario = &sc
	cfg.LoadManager = mgr
	return cfg
}

// singleProcess runs the reference computation: one StreamWorld pass
// feeding one StreamSuite, capturing per-day utilization for managed
// configurations.
func singleProcess(t *testing.T, cfg sim.Config) (*experiments.StreamSuite, [][]sim.SiteUtil) {
	t.Helper()
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	suite := experiments.NewStreamSuite(cfg, w)
	var utils [][]sim.SiteUtil
	err = sim.StreamWorld(cfg, w, func(d sim.DayResult) error {
		if d.Utilization != nil {
			utils = append(utils, append([]sim.SiteUtil(nil), d.Utilization...))
		}
		return suite.Observe(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	return suite, utils
}

// compareSuites asserts every passive-log report renders byte-identically.
func compareSuites(t *testing.T, ref, got *experiments.StreamSuite) {
	t.Helper()
	for _, r := range []struct {
		name     string
		ref, got string
	}{
		{"fig4", ref.Figure4().Render(), got.Figure4().Render()},
		{"catchments", ref.Catchments(10).Render(), got.Catchments(10).Render()},
		{"tcp", ref.TCPDisruption().Render(), got.TCPDisruption().Render()},
		{"loadshed", ref.LoadShedding(4).Render(), got.LoadShedding(4).Render()},
		{"fig7", ref.Figure7().Render(), got.Figure7().Render()},
		{"fig8", ref.Figure8().Render(), got.Figure8().Render()},
	} {
		if r.ref != r.got {
			t.Errorf("%s report differs from single-process run:\n--- single ---\n%s\n--- distributed ---\n%s",
				r.name, r.ref, r.got)
		}
	}
}

// compareUtilization asserts the merged fleet load picture matches the
// single-process one exactly: queries are integer-valued so the shard
// sums are exact, and the control fields are replica-identical.
func compareUtilization(t *testing.T, ref, got [][]sim.SiteUtil) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("utilization days: got %d, want %d", len(got), len(ref))
	}
	for day := range ref {
		if len(ref[day]) != len(got[day]) {
			t.Fatalf("day %d: %d sites, want %d", day, len(got[day]), len(ref[day]))
		}
		for i, r := range ref[day] {
			if got[day][i] != r {
				t.Errorf("day %d site %d: got %+v, want %+v", day, r.Site, got[day][i], r)
			}
		}
	}
}

// TestDistributedMatchesSingleProcess is the tentpole identity for plain
// runs: three in-process workers speaking the full wire protocol must
// merge to byte-identical reports.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	cfg := surgeConfig(t, 17, nil)
	ref, _ := singleProcess(t, cfg)
	res, err := Run(context.Background(), cfg, Options{Shards: 3, InProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	compareSuites(t, ref, res.Suite)
	if res.Utilization != nil {
		t.Error("unmanaged run reported utilization")
	}
	if res.Records == 0 || res.Beacons == 0 {
		t.Errorf("fleet counters empty: %d records, %d beacons", res.Records, res.Beacons)
	}
}

// TestDistributedLoadManagedMatchesSingleProcess pins the managed path:
// the capacity pre-phase plus the per-day demand barrier must keep every
// policy replica bitwise in step, for both the FastRoute spillover and
// the naive withdrawal strategy.
func TestDistributedLoadManagedMatchesSingleProcess(t *testing.T) {
	for _, policy := range []load.Policy{load.FastRoute, load.Withdraw} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := surgeConfig(t, 23, &load.ManagerConfig{Policy: policy})
			ref, refUtil := singleProcess(t, cfg)
			res, err := Run(context.Background(), cfg, Options{Shards: 3, InProcess: true})
			if err != nil {
				t.Fatal(err)
			}
			compareSuites(t, ref, res.Suite)
			compareUtilization(t, refUtil, res.Utilization)
		})
	}
}

// TestDistributedSubprocess runs the real process fleet: forked workers
// on inherited socket pairs, Getrusage accounting and all. The merged
// reports must still be byte-identical.
func TestDistributedSubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a worker fleet")
	}
	t.Setenv("DISTSIM_TEST_MODE", "worker")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cfg := surgeConfig(t, 17, &load.ManagerConfig{Policy: load.FastRoute})
	ref, refUtil := singleProcess(t, cfg)
	res, err := Run(context.Background(), cfg, Options{Shards: 2, Argv: []string{exe}})
	if err != nil {
		t.Fatal(err)
	}
	compareSuites(t, ref, res.Suite)
	compareUtilization(t, refUtil, res.Utilization)
	for _, ws := range res.Workers {
		if ws.PeakRSSBytes <= 0 {
			t.Errorf("worker %d reported no peak RSS", ws.Shard)
		}
	}
}

// TestWorkerCrashSurfacesError pins the failure path: a worker dying
// mid-protocol must fail the run promptly with an error, never hang the
// merge loop.
func TestWorkerCrashSurfacesError(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a worker fleet")
	}
	t.Setenv("DISTSIM_TEST_MODE", "crash")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testutil.TinyConfig(5)
	start := time.Now()
	_, err = Run(context.Background(), cfg, Options{
		Shards: 2, Argv: []string{exe}, StallTimeout: 30 * time.Second,
	})
	if err == nil {
		t.Fatal("run with crashing workers succeeded")
	}
	// The crash is an EOF, not a stall: it must surface well before the
	// stall deadline.
	if d := time.Since(start); d > 20*time.Second {
		t.Errorf("crash took %v to surface", d)
	}
}

// TestStalledWorkerTripsDeadline pins the liveness/progress distinction:
// heartbeats prove the process is alive but must not reset the stall
// bound on the frame the coordinator is actually waiting for.
func TestStalledWorkerTripsDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a worker fleet")
	}
	t.Setenv("DISTSIM_TEST_MODE", "stall")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testutil.TinyConfig(5)
	start := time.Now()
	_, err = Run(context.Background(), cfg, Options{
		Shards: 1, Argv: []string{exe},
		HeartbeatEvery: 20 * time.Millisecond, StallTimeout: 500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("run with a stalled worker succeeded")
	}
	if d := time.Since(start); d > 15*time.Second {
		t.Errorf("stall took %v to trip a 500ms deadline", d)
	}
}

// TestCancelTearsDownFleet pins cancellation: a canceled context must
// unwind the whole run — every goroutine joined, every worker reaped —
// and report the cancellation, not a derived I/O error.
func TestCancelTearsDownFleet(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		// Big enough that the fleet is mid-flight when the cancel lands.
		cfg := testutil.SmallConfig(31)
		cfg.Prefixes = 60000
		cfg.Days = 30
		_, err := Run(ctx, cfg, Options{Shards: 2, InProcess: true})
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("canceled run succeeded")
		}
		if !strings.Contains(err.Error(), context.Canceled.Error()) {
			t.Errorf("error does not report cancellation: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not return")
	}
}

// TestRunValidatesOptions pins the cheap argument errors.
func TestRunValidatesOptions(t *testing.T) {
	cfg := testutil.TinyConfig(5)
	if _, err := Run(context.Background(), cfg, Options{Shards: 0}); err == nil {
		t.Error("zero shards accepted")
	}
	// More shards than prefixes must clamp, not break.
	cfg.Prefixes = 3
	res, err := Run(context.Background(), cfg, Options{Shards: 8, InProcess: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workers) != 3 {
		t.Errorf("shards not clamped to prefix count: %d workers", len(res.Workers))
	}
}
