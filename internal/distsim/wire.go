// Package distsim distributes a streaming simulation across a fleet of
// worker processes. The coordinator splits the client population into
// contiguous prefix-range shards, hands each shard to a worker (a
// re-exec of the current binary, or an in-process goroutine speaking the
// same protocol), and folds the workers' per-day encoded deltas into one
// experiments.StreamSuite — in shard order, so the merged analysis is
// byte-identical to a single-process run over the same configuration.
//
// For load-managed runs the day loop adds a two-phase demand exchange:
// every worker reports its shard's offered load, the coordinator reduces
// the maps (integer-exact sums) and broadcasts the global demand, and
// every worker steps its policy replica on the same numbers — keeping
// the control state machines bitwise-identical across the fleet.
package distsim

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"anycastcdn/internal/topology"
)

// Frame types. A frame on the wire is a 4-byte little-endian payload
// length, one type byte, then the payload.
type frameType byte

const (
	frameConfig    frameType = 1 // coordinator → worker: gob(wireConfig)
	frameHello     frameType = 2 // worker → coordinator: world built, empty
	frameCapsPart  frameType = 3 // worker → coordinator: shard load matrix
	frameCaps      frameType = 4 // coordinator → worker: derived capacities
	frameDemand    frameType = 5 // worker → coordinator: shard demand for one day
	frameGlobal    frameType = 6 // coordinator → worker: reduced global demand
	frameDay       frameType = 7 // worker → coordinator: one day's delta + utilization
	frameDone      frameType = 8 // worker → coordinator: gob(WorkerStats)
	frameError     frameType = 9 // either direction: failure message, then hang up
	frameHeartbeat frameType = 10 // worker → coordinator: liveness, empty
)

// maxFramePayload bounds a single frame. Day-0 deltas carry per-client
// sections (~100 B/client), so paper-scale shards produce frames in the
// hundreds of MB; 2 GiB is the protocol's hard cap and comfortably above
// any real shard.
const maxFramePayload = 2 << 30

// frameConn frames a stream connection. Reads reuse one buffer (the
// returned payload is valid until the next read); writes are serialized
// by a mutex so the heartbeat goroutine can interleave with the
// protocol's own sends.
type frameConn struct {
	conn net.Conn
	wmu  sync.Mutex
	hdr  [5]byte
	rbuf []byte
}

func newFrameConn(conn net.Conn) *frameConn { return &frameConn{conn: conn} }

// write sends one frame, bounded by the absolute deadline.
func (f *frameConn) write(t frameType, payload []byte, deadline time.Time) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("distsim: frame payload %d exceeds protocol cap", len(payload))
	}
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if err := f.conn.SetWriteDeadline(deadline); err != nil {
		return err
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := f.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("distsim: writing frame header: %w", err)
	}
	if _, err := f.conn.Write(payload); err != nil {
		return fmt.Errorf("distsim: writing frame payload: %w", err)
	}
	return nil
}

// read returns the next frame. The deadline is absolute and applies to
// the whole frame; the payload slice is owned by the frameConn and valid
// until the next read.
func (f *frameConn) read(deadline time.Time) (frameType, []byte, error) {
	if err := f.conn.SetReadDeadline(deadline); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(f.conn, f.hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("distsim: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(f.hdr[:4])
	t := frameType(f.hdr[4])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("distsim: frame payload %d exceeds protocol cap", n)
	}
	if cap(f.rbuf) < int(n) {
		f.rbuf = make([]byte, n)
	}
	f.rbuf = f.rbuf[:n]
	if _, err := io.ReadFull(f.conn, f.rbuf); err != nil {
		return 0, nil, fmt.Errorf("distsim: reading frame payload: %w", err)
	}
	return t, f.rbuf, nil
}

// readData returns the next non-heartbeat frame. Heartbeats prove the
// peer process is alive but deliberately do NOT extend the deadline: the
// deadline is the stall bound on the EXPECTED frame, so a worker that
// keeps heartbeating while its day loop is wedged still surfaces as a
// stall instead of hanging the coordinator forever. A frameError payload
// is surfaced as an error.
func (f *frameConn) readData(deadline time.Time) (frameType, []byte, error) {
	for {
		t, payload, err := f.read(deadline)
		if err != nil {
			return 0, nil, err
		}
		if t == frameHeartbeat {
			continue
		}
		if t == frameError {
			return 0, nil, fmt.Errorf("distsim: peer failed: %s", payload)
		}
		return t, payload, nil
	}
}

// expect reads the next data frame and requires it to be of type want.
func (f *frameConn) expect(want frameType, deadline time.Time) ([]byte, error) {
	t, payload, err := f.readData(deadline)
	if err != nil {
		return nil, err
	}
	if t != want {
		return nil, fmt.Errorf("distsim: got frame type %d, want %d", t, want)
	}
	return payload, nil
}

// appendMatrix encodes a []float64 (the shard load matrix) verbatim.
func appendMatrix(dst []byte, m []float64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(m)))
	for _, v := range m {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decodeMatrix decodes an encoded []float64, adding into dst when dst is
// already sized (the coordinator's reduce) or allocating it otherwise.
func decodeMatrix(dst []float64, data []byte) ([]float64, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("distsim: truncated matrix")
	}
	n := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) != 8*n {
		return nil, fmt.Errorf("distsim: matrix payload is %d bytes, want %d", len(data), 8*n)
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	if uint64(len(dst)) != n {
		return nil, fmt.Errorf("distsim: matrix has %d cells, want %d", n, len(dst))
	}
	for i := range dst {
		dst[i] += math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
	}
	return dst, nil
}

// appendSiteMap encodes a site→value map as (site, value) pairs sorted
// by site ID, so identical maps produce identical bytes.
func appendSiteMap(dst []byte, m map[topology.SiteID]float64, scratch []topology.SiteID) ([]byte, []topology.SiteID) {
	scratch = scratch[:0]
	//replay:commutative keys only; sorted immediately below, so collection order is discarded
	for s := range m {
		scratch = append(scratch, s)
	}
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(scratch)))
	for _, s := range scratch {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(s))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m[s]))
	}
	return dst, scratch
}

// decodeSiteMap decodes (site, value) pairs. With add=false the map is
// cleared first (decode); with add=true values accumulate (the demand
// reduce — integer-valued, so the sums are exact in any arrival order).
func decodeSiteMap(m map[topology.SiteID]float64, data []byte, add bool) error {
	if len(data) < 8 {
		return fmt.Errorf("distsim: truncated site map")
	}
	n := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) != 16*n {
		return fmt.Errorf("distsim: site map payload is %d bytes, want %d", len(data), 16*n)
	}
	if !add {
		clear(m)
	}
	for i := uint64(0); i < n; i++ {
		s := topology.SiteID(binary.LittleEndian.Uint64(data))
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
		data = data[16:]
		if add {
			m[s] += v
		} else {
			m[s] = v
		}
	}
	return nil
}
