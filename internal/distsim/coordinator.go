package distsim

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"anycastcdn/internal/experiments"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/topology"
)

// Options configures a distributed run.
type Options struct {
	// Shards is the worker count; each worker owns one contiguous
	// client-prefix range. Clamped to the prefix count. Must be ≥ 1.
	Shards int
	// InProcess runs the workers as goroutines inside this process
	// instead of forked subprocesses. The full wire protocol still runs
	// over a socket pair — only the process boundary differs. Used by
	// tests and useful for debugging.
	InProcess bool
	// Argv is the worker command line; defaults to re-execing the
	// current binary with a single "-worker" argument.
	Argv []string
	// HeartbeatEvery is the worker liveness interval (default 1s).
	HeartbeatEvery time.Duration
	// StallTimeout bounds every protocol step: how long the coordinator
	// waits for an expected frame and how long any frame write may
	// block. Heartbeats do not extend it — a worker that stays alive but
	// stops making progress is a stall, not a slow day. Default 2m.
	StallTimeout time.Duration
}

// Result is a distributed run's merged output.
type Result struct {
	// Suite holds the merged passive-log analysis, byte-identical to a
	// single-process StreamSuite over the same configuration.
	Suite *experiments.StreamSuite
	// Utilization is the per-day fleet load picture (managed runs only):
	// Queries are summed across shards, control fields are the replicas'
	// shared values.
	Utilization [][]sim.SiteUtil
	// Workers holds each worker's closing statistics in shard order.
	Workers []WorkerStats
	// Records and Beacons are fleet totals.
	Records int64
	Beacons int64
}

// Run executes cfg split across opts.Shards workers and merges their
// per-day deltas into a single analysis. The merge is deterministic:
// shard deltas are folded in (day, shard) order, so the result is
// byte-identical to a single-process run — regardless of how the workers'
// execution interleaves.
func Run(ctx context.Context, cfg sim.Config, opts Options) (*Result, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("distsim: Shards must be ≥ 1, got %d", opts.Shards)
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = 2 * time.Minute
	}
	if len(opts.Argv) == 0 && !opts.InProcess {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("distsim: resolving worker binary: %w", err)
		}
		opts.Argv = []string{exe, "-worker"}
	}

	// The coordinator never holds a population: it merges encoded deltas
	// over an analysis world (deployment, topology, models — no clients).
	aw, err := sim.BuildAnalysisWorld(cfg)
	if err != nil {
		return nil, err
	}
	if opts.Shards > cfg.Prefixes {
		opts.Shards = cfg.Prefixes
	}

	c := &coordinator{cfg: cfg, opts: opts, world: aw}
	defer c.teardown()
	if err := c.start(ctx); err != nil {
		return nil, c.annotate(ctx, err)
	}
	res, err := c.run()
	if err != nil {
		return nil, c.annotate(ctx, err)
	}
	return res, nil
}

// coordinator owns the worker fleet for one Run.
type coordinator struct {
	cfg   sim.Config
	opts  Options
	world *sim.World

	conns  []*frameConn
	bounds [][2]int
	cmds   []*exec.Cmd

	// teardown state: done stops the ctx watcher; wg joins the watcher,
	// process reapers, and in-process workers.
	wg      sync.WaitGroup
	done    chan struct{}
	closers []net.Conn

	// demand and siteScratch are the reusable global-demand reduce state.
	demand      map[topology.SiteID]float64
	siteScratch []topology.SiteID
	sendBuf     []byte
}

// annotate prefers the context's verdict when the run was canceled: the
// proximate error is then just a yanked deadline.
func (c *coordinator) annotate(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return fmt.Errorf("distsim: run canceled: %w", ctx.Err())
	}
	return err
}

// socketPair returns a connected stream-socket pair as net.Conns plus
// the raw file for the worker end (kept open for ExtraFiles in the
// subprocess mode; closed by the caller after the fork).
func socketPair() (coord net.Conn, workerConn net.Conn, workerFile *os.File, err error) {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("distsim: socketpair: %w", err)
	}
	syscall.CloseOnExec(fds[0])
	syscall.CloseOnExec(fds[1])
	cf := os.NewFile(uintptr(fds[0]), "distsim-coordinator-end")
	wf := os.NewFile(uintptr(fds[1]), "distsim-worker-end")
	coord, err = net.FileConn(cf)
	_ = cf.Close() // FileConn dup'd the fd; the original is ours to drop
	if err != nil {
		_ = wf.Close()
		return nil, nil, nil, err
	}
	workerConn, err = net.FileConn(wf)
	if err != nil {
		_ = coord.Close()
		_ = wf.Close()
		return nil, nil, nil, err
	}
	return coord, workerConn, wf, nil
}

// start launches the fleet and completes the handshake: config out,
// Hello back, and for managed runs the capacity pre-phase.
func (c *coordinator) start(ctx context.Context) error {
	c.done = make(chan struct{})
	n := c.cfg.Prefixes
	for i := 0; i < c.opts.Shards; i++ {
		lo, hi := i*n/c.opts.Shards, (i+1)*n/c.opts.Shards
		c.bounds = append(c.bounds, [2]int{lo, hi})

		coordConn, workerConn, workerFile, err := socketPair()
		if err != nil {
			return err
		}
		c.closers = append(c.closers, coordConn)
		c.conns = append(c.conns, newFrameConn(coordConn))

		if c.opts.InProcess {
			_ = workerFile.Close() // in-process workers use workerConn directly
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				// Serve reports protocol failures over the connection
				// itself; the coordinator's read side surfaces them.
				Serve(ctx, workerConn)
			}()
		} else {
			_ = workerConn.Close() // the subprocess owns the inherited copy
			cmd := exec.Command(c.opts.Argv[0], c.opts.Argv[1:]...)
			cmd.ExtraFiles = []*os.File{workerFile}
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				_ = workerFile.Close()
				return fmt.Errorf("distsim: starting worker %d: %w", i, err)
			}
			_ = workerFile.Close() // the fork holds its own descriptor now
			c.cmds = append(c.cmds, cmd)
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				// Reap the subprocess; its exit status is advisory — a
				// dead worker always surfaces as EOF on its connection.
				cmd.Wait()
			}()
		}
	}

	// The ctx watcher yanks every connection deadline on cancellation,
	// unblocking any in-flight frame I/O.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		select {
		case <-ctx.Done():
			for _, conn := range c.closers {
				// Teardown: a conn already closed by cleanup errors here,
				// which is fine — there is nothing left to unblock.
				_ = conn.SetDeadline(time.Unix(1, 0))
			}
		case <-c.done:
		}
	}()

	// Configs out.
	for i, fc := range c.conns {
		wc := wireConfig{
			Cfg:            c.cfg,
			Shard:          i,
			Lo:             c.bounds[i][0],
			Hi:             c.bounds[i][1],
			HeartbeatEvery: c.opts.HeartbeatEvery,
			StallTimeout:   c.opts.StallTimeout,
		}
		var b bytes.Buffer
		if err := gob.NewEncoder(&b).Encode(wc); err != nil {
			return fmt.Errorf("distsim: encoding config: %w", err)
		}
		if err := fc.write(frameConfig, b.Bytes(), c.deadline()); err != nil {
			return fmt.Errorf("distsim: worker %d: %w", i, err)
		}
	}
	// Hellos back — the world builds happen here, under one stall bound
	// each (heartbeats flow while they build).
	for i, fc := range c.conns {
		if _, err := fc.expect(frameHello, c.deadline()); err != nil {
			return fmt.Errorf("distsim: worker %d: %w", i, err)
		}
	}
	if c.cfg.LoadManager != nil {
		if err := c.capsPhase(); err != nil {
			return err
		}
	}
	return nil
}

// deadline is the stall bound on the next protocol step.
func (c *coordinator) deadline() time.Time { return time.Now().Add(c.opts.StallTimeout) }

// capsPhase reduces the shards' offered-load matrices and broadcasts the
// derived per-site capacities, so every worker's policy replica starts
// from the same numbers the single-process run derives.
func (c *coordinator) capsPhase() error {
	var matrix []float64
	for i, fc := range c.conns {
		payload, err := fc.expect(frameCapsPart, c.deadline())
		if err != nil {
			return fmt.Errorf("distsim: worker %d load matrix: %w", i, err)
		}
		matrix, err = decodeMatrix(matrix, payload)
		if err != nil {
			return fmt.Errorf("distsim: worker %d load matrix: %w", i, err)
		}
	}
	caps, err := sim.CapsFromLoadMatrix(c.cfg, c.world, matrix)
	if err != nil {
		return err
	}
	c.sendBuf, c.siteScratch = appendSiteMap(c.sendBuf[:0], caps, c.siteScratch)
	for i, fc := range c.conns {
		if err := fc.write(frameCaps, c.sendBuf, c.deadline()); err != nil {
			return fmt.Errorf("distsim: worker %d: %w", i, err)
		}
	}
	return nil
}

// run drives the day loop and closes the protocol. The merge is
// single-threaded and allocation-light: delta payloads are decoded in
// place from each connection's reusable read buffer.
func (c *coordinator) run() (*Result, error) {
	res := &Result{Suite: experiments.NewStreamSuite(c.cfg, c.world)}
	managed := c.cfg.LoadManager != nil
	if managed {
		c.demand = make(map[topology.SiteID]float64)
		res.Utilization = make([][]sim.SiteUtil, 0, c.cfg.Days)
	}

	for day := 0; day < c.cfg.Days; day++ {
		if managed {
			if err := c.demandBarrier(day); err != nil {
				return nil, err
			}
		}
		var dayUtil []sim.SiteUtil
		for i, fc := range c.conns {
			payload, err := fc.expect(frameDay, c.deadline())
			if err != nil {
				return nil, fmt.Errorf("distsim: worker %d day %d: %w", i, day, err)
			}
			dayUtil, err = c.mergeDay(res.Suite, day, i, payload, dayUtil)
			if err != nil {
				return nil, fmt.Errorf("distsim: worker %d day %d: %w", i, day, err)
			}
		}
		if managed {
			res.Utilization = append(res.Utilization, dayUtil)
		}
	}

	res.Workers = make([]WorkerStats, len(c.conns))
	for i, fc := range c.conns {
		payload, err := fc.expect(frameDone, c.deadline())
		if err != nil {
			return nil, fmt.Errorf("distsim: worker %d: %w", i, err)
		}
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&res.Workers[i]); err != nil {
			return nil, fmt.Errorf("distsim: worker %d stats: %w", i, err)
		}
		res.Records += res.Workers[i].Records
		res.Beacons += res.Workers[i].Beacons
	}
	return res, nil
}

// demandBarrier runs one day's two-phase exchange: collect every shard's
// offered load, reduce (integer-valued sums — exact in any order), and
// broadcast the global map back.
func (c *coordinator) demandBarrier(day int) error {
	clear(c.demand)
	for i, fc := range c.conns {
		payload, err := fc.expect(frameDemand, c.deadline())
		if err != nil {
			return fmt.Errorf("distsim: worker %d day %d demand: %w", i, day, err)
		}
		if err := decodeSiteMap(c.demand, payload, true); err != nil {
			return fmt.Errorf("distsim: worker %d day %d demand: %w", i, day, err)
		}
	}
	c.sendBuf, c.siteScratch = appendSiteMap(c.sendBuf[:0], c.demand, c.siteScratch)
	for i, fc := range c.conns {
		if err := fc.write(frameGlobal, c.sendBuf, c.deadline()); err != nil {
			return fmt.Errorf("distsim: worker %d day %d: %w", i, day, err)
		}
	}
	return nil
}

// mergeDay folds one worker's Day frame: the analysis delta into the
// suite, then the utilization section into the day's fleet picture
// (queries summed, control fields validated replica-identical).
func (c *coordinator) mergeDay(suite *experiments.StreamSuite, day, shard int, payload []byte, dayUtil []sim.SiteUtil) ([]sim.SiteUtil, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("distsim: truncated day frame")
	}
	deltaLen := binary.LittleEndian.Uint64(payload)
	payload = payload[8:]
	if uint64(len(payload)) < deltaLen {
		return nil, fmt.Errorf("distsim: day frame shorter than its delta")
	}
	lo, hi := c.bounds[shard][0], c.bounds[shard][1]
	if err := suite.MergeShardDay(day, lo, hi, payload[:deltaLen]); err != nil {
		return nil, err
	}
	util := payload[deltaLen:]
	if len(util) < 8 {
		return nil, fmt.Errorf("distsim: day frame missing utilization section")
	}
	n := binary.LittleEndian.Uint64(util)
	util = util[8:]
	if uint64(len(util)) != 33*n {
		return nil, fmt.Errorf("distsim: utilization section is %d bytes, want %d", len(util), 33*n)
	}
	if n == 0 {
		return dayUtil, nil
	}
	first := dayUtil == nil
	for i := uint64(0); i < n; i++ {
		u := sim.SiteUtil{
			Site:      topology.SiteID(binary.LittleEndian.Uint64(util)),
			Queries:   math.Float64frombits(binary.LittleEndian.Uint64(util[8:])),
			Capacity:  math.Float64frombits(binary.LittleEndian.Uint64(util[16:])),
			ShedFrac:  math.Float64frombits(binary.LittleEndian.Uint64(util[24:])),
			Withdrawn: util[32] == 1,
		}
		util = util[33:]
		if first {
			dayUtil = append(dayUtil, u)
			continue
		}
		if uint64(len(dayUtil)) <= i {
			return nil, fmt.Errorf("distsim: shards disagree on utilization length")
		}
		prev := &dayUtil[i]
		if prev.Site != u.Site || prev.Capacity != u.Capacity ||
			prev.ShedFrac != u.ShedFrac || prev.Withdrawn != u.Withdrawn {
			return nil, fmt.Errorf("distsim: replicas diverged on site %d control state", u.Site)
		}
		prev.Queries += u.Queries
	}
	return dayUtil, nil
}

// teardown stops the watcher, closes every connection, and kills any
// subprocess still running, then joins every goroutine start spawned.
// Safe on partial starts.
func (c *coordinator) teardown() {
	if c.done != nil {
		close(c.done)
	}
	for _, conn := range c.closers {
		_ = conn.Close() // teardown; the worker sees EOF either way
	}
	for _, cmd := range c.cmds {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	c.wg.Wait()
}
