package distsim

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"anycastcdn/internal/experiments"
	"anycastcdn/internal/sim"
	"anycastcdn/internal/topology"
)

// workerFD is the file descriptor a forked worker inherits its
// coordinator connection on (the first exec.Cmd ExtraFiles slot).
const workerFD = 3

// wireConfig is the coordinator's opening frame: the full simulation
// configuration plus this worker's shard assignment and the fleet's
// liveness parameters.
type wireConfig struct {
	Cfg            sim.Config
	Shard          int
	Lo, Hi         int
	HeartbeatEvery time.Duration
	StallTimeout   time.Duration
}

// WorkerStats is a worker's closing report, carried on the Done frame.
type WorkerStats struct {
	Shard   int
	Lo, Hi  int
	Days    int
	Records int64
	Beacons int64
	// PeakRSSBytes is the worker process's maximum resident set size.
	// In-process workers report the shared process's peak.
	PeakRSSBytes int64
}

// ServeFD runs the worker side of the protocol on the coordinator
// connection inherited at fd 3 — the entry point behind the binary's
// -worker flag.
func ServeFD(ctx context.Context) error {
	f := os.NewFile(workerFD, "distsim-coordinator")
	conn, err := net.FileConn(f)
	_ = f.Close() // FileConn dup'd the fd; the original is ours to drop
	if err != nil {
		return fmt.Errorf("distsim: fd %d is not a stream socket: %w", workerFD, err)
	}
	return Serve(ctx, conn)
}

// Serve runs the worker side of the protocol on conn: receive the
// configuration and shard range, build the world, stream the shard, and
// send one delta frame per day. Any failure is reported to the
// coordinator as an Error frame before returning. Serve closes conn.
func Serve(ctx context.Context, conn net.Conn) error {
	defer conn.Close()
	fc := newFrameConn(conn)

	// Teardown joins every goroutine Serve starts. The watcher yanks the
	// connection deadlines on ctx cancellation so no frame read or write
	// can outlive the caller's intent.
	var wg sync.WaitGroup
	done := make(chan struct{})
	defer wg.Wait()
	defer close(done)
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
			// Teardown: unblocks any in-flight frame I/O; an error here
			// means the conn is already closed and nothing is blocked.
			_ = conn.SetDeadline(time.Unix(1, 0))
		case <-done:
		}
	}()

	err := serve(ctx, fc)
	if err != nil {
		// Best effort: the coordinator may already be gone.
		fc.write(frameError, []byte(err.Error()), time.Now().Add(5*time.Second))
		if ctx.Err() != nil {
			return fmt.Errorf("distsim: worker canceled: %w", ctx.Err())
		}
	}
	return err
}

// worker is the per-run state of one serving worker.
type worker struct {
	fc    *frameConn
	wc    wireConfig
	stats WorkerStats

	// sendBuf accumulates each outbound payload; reused across days so
	// the steady-state day loop does not allocate frame memory.
	sendBuf []byte
	// siteScratch backs the sorted-key encoding of demand maps.
	siteScratch []topology.SiteID
	// global is the reusable decoded global-demand map.
	global map[topology.SiteID]float64
}

func serve(ctx context.Context, fc *frameConn) error {
	w := &worker{fc: fc}

	payload, err := fc.expect(frameConfig, time.Now().Add(time.Minute))
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w.wc); err != nil {
		return fmt.Errorf("distsim: decoding config: %w", err)
	}
	if w.wc.StallTimeout <= 0 || w.wc.HeartbeatEvery <= 0 {
		return fmt.Errorf("distsim: config carries no liveness parameters")
	}
	w.stats.Shard, w.stats.Lo, w.stats.Hi = w.wc.Shard, w.wc.Lo, w.wc.Hi

	// The world build is the longest silent stretch a worker has, so the
	// heartbeat goroutine starts before it, not after.
	wg := sync.WaitGroup{}
	hbDone := make(chan struct{})
	defer wg.Wait()
	defer close(hbDone)
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(w.wc.HeartbeatEvery)
		defer tick.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-tick.C:
				// A failed heartbeat is not fatal here: the protocol
				// write that is actually stuck will surface the error.
				w.fc.write(frameHeartbeat, nil, time.Now().Add(w.wc.StallTimeout))
			}
		}
	}()

	// A shard world: only [Lo, Hi) is materialized, so a worker's resident
	// set scales with its shard, not the whole population — the full build
	// alone would bust the per-worker memory budget at paper scale.
	world, err := sim.BuildShardWorld(w.wc.Cfg, w.wc.Lo, w.wc.Hi)
	if err != nil {
		return fmt.Errorf("distsim: worker building world: %w", err)
	}
	if err := w.fc.write(frameHello, nil, w.deadline()); err != nil {
		return err
	}

	opts := sim.ShardOpts{Lo: w.wc.Lo, Hi: w.wc.Hi}
	if w.wc.Cfg.LoadManager != nil {
		caps, err := w.capsPhase(w.wc.Cfg, world)
		if err != nil {
			return err
		}
		opts.Caps = caps
		opts.ExchangeDemand = w.exchangeDemand
		w.global = make(map[topology.SiteID]float64)
	}

	obs, err := experiments.NewShardObserver(w.wc.Cfg, world, w.wc.Lo, w.wc.Hi)
	if err != nil {
		return err
	}
	err = sim.StreamShard(w.wc.Cfg, world, opts, func(d sim.DayResult) error {
		return w.sendDay(obs, d)
	})
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("distsim: worker canceled: %w", ctx.Err())
		}
		return err
	}
	return w.sendDone()
}

// deadline is the stall bound on the next protocol step.
func (w *worker) deadline() time.Time { return time.Now().Add(w.wc.StallTimeout) }

// capsPhase runs the managed pre-phase: compute this shard's offered
// load matrix, send it, and receive the fleet-derived capacities every
// replica will share.
func (w *worker) capsPhase(cfg sim.Config, world *sim.World) (map[topology.SiteID]float64, error) {
	m, err := sim.ShardLoadMatrix(cfg, world, w.wc.Lo, w.wc.Hi)
	if err != nil {
		return nil, err
	}
	w.sendBuf = appendMatrix(w.sendBuf[:0], m)
	if err := w.fc.write(frameCapsPart, w.sendBuf, w.deadline()); err != nil {
		return nil, err
	}
	payload, err := w.fc.expect(frameCaps, w.deadline())
	if err != nil {
		return nil, err
	}
	caps := make(map[topology.SiteID]float64)
	if err := decodeSiteMap(caps, payload, false); err != nil {
		return nil, err
	}
	return caps, nil
}

// exchangeDemand is the two-phase demand barrier: publish this shard's
// offered per-site load for the day, then block for the coordinator's
// global reduction. Every worker steps its policy replica on the same
// global map, keeping control state bitwise-identical across the fleet.
func (w *worker) exchangeDemand(day int, shard map[topology.SiteID]float64) (map[topology.SiteID]float64, error) {
	w.sendBuf, w.siteScratch = appendSiteMap(w.sendBuf[:0], shard, w.siteScratch)
	if err := w.fc.write(frameDemand, w.sendBuf, w.deadline()); err != nil {
		return nil, err
	}
	payload, err := w.fc.expect(frameGlobal, w.deadline())
	if err != nil {
		return nil, err
	}
	if err := decodeSiteMap(w.global, payload, false); err != nil {
		return nil, err
	}
	return w.global, nil
}

// sendDay frames one simulated day: the shard's encoded analysis delta,
// then the utilization section for managed runs. The payload buffer is
// reused across days.
func (w *worker) sendDay(obs *experiments.ShardObserver, d sim.DayResult) error {
	buf := w.sendBuf[:0]
	// Reserve the delta-length word, encode the delta in place, then
	// back-patch — no second copy of a frame that carries per-client
	// sections on day 0.
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = obs.AppendDay(d, buf)
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(buf)-8))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(d.Utilization)))
	for _, u := range d.Utilization {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(u.Site))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.Queries))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.Capacity))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.ShedFrac))
		if u.Withdrawn {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	w.sendBuf = buf
	w.stats.Days++
	w.stats.Records += int64(len(d.Passive))
	w.stats.Beacons += int64(len(d.Beacons))
	return w.fc.write(frameDay, buf, w.deadline())
}

// sendDone closes the protocol with this worker's statistics.
func (w *worker) sendDone() error {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		w.stats.PeakRSSBytes = ru.Maxrss * 1024 // Linux reports KiB
	}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(w.stats); err != nil {
		return fmt.Errorf("distsim: encoding stats: %w", err)
	}
	return w.fc.write(frameDone, b.Bytes(), w.deadline())
}
