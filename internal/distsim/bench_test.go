package distsim

import (
	"context"
	"testing"

	"anycastcdn/internal/sim"
)

// BenchmarkDistWorld measures a full distributed run — fleet startup,
// per-worker world builds, the day loop with its frame traffic, and the
// coordinator's merge — with two in-process workers over the wire
// protocol. Its B/op is the whole-fleet allocation bill (the worker
// worlds dominate); the CI gate pins it so the reusable frame buffers
// stay reusable.
func BenchmarkDistWorld(b *testing.B) {
	cfg := sim.DefaultConfig(3)
	cfg.Prefixes = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), cfg, Options{Shards: 2, InProcess: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Records == 0 {
			b.Fatal("no records")
		}
	}
}
