package netaddr

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestTableEmpty(t *testing.T) {
	var tb Table[int]
	if _, ok := tb.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("empty table should miss")
	}
	if tb.Len() != 0 {
		t.Fatal("empty table size")
	}
}

func TestTableLongestPrefixMatch(t *testing.T) {
	var tb Table[string]
	must := func(p string, v string) {
		t.Helper()
		if err := tb.Insert(netip.MustParsePrefix(p), v); err != nil {
			t.Fatal(err)
		}
	}
	must("10.0.0.0/8", "eight")
	must("10.1.0.0/16", "sixteen")
	must("10.1.2.0/24", "twentyfour")
	must("10.1.2.128/25", "twentyfive")
	cases := []struct {
		addr string
		want string
	}{
		{"10.9.9.9", "eight"},
		{"10.1.9.9", "sixteen"},
		{"10.1.2.5", "twentyfour"},
		{"10.1.2.200", "twentyfive"},
	}
	for _, c := range cases {
		got, ok := tb.Lookup(netip.MustParseAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q, %v; want %q", c.addr, got, ok, c.want)
		}
	}
	if _, ok := tb.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("out-of-table address should miss")
	}
	if tb.Len() != 4 {
		t.Errorf("Len = %d, want 4", tb.Len())
	}
}

func TestTableDefaultRoute(t *testing.T) {
	var tb Table[string]
	if err := tb.Insert(netip.MustParsePrefix("0.0.0.0/0"), "default"); err != nil {
		t.Fatal(err)
	}
	got, ok := tb.Lookup(netip.MustParseAddr("203.0.113.1"))
	if !ok || got != "default" {
		t.Fatalf("default route miss: %q %v", got, ok)
	}
}

func TestTableReplace(t *testing.T) {
	var tb Table[int]
	p := netip.MustParsePrefix("192.0.2.0/24")
	if err := tb.Insert(p, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(p, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := tb.Lookup(netip.MustParseAddr("192.0.2.9")); got != 2 {
		t.Fatalf("replace failed: %d", got)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len after replace = %d", tb.Len())
	}
}

func TestTableRejectsIPv6(t *testing.T) {
	var tb Table[int]
	if err := tb.Insert(netip.MustParsePrefix("2001:db8::/32"), 1); err == nil {
		t.Fatal("IPv6 insert should fail")
	}
	tb.Insert24(FromOctets(10, 0, 0), 1)
	if _, ok := tb.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Fatal("IPv6 lookup should miss")
	}
}

func TestTableHostRoutes(t *testing.T) {
	var tb Table[int]
	if err := tb.Insert(netip.MustParsePrefix("198.51.100.7/32"), 7); err != nil {
		t.Fatal(err)
	}
	if got, ok := tb.Lookup(netip.MustParseAddr("198.51.100.7")); !ok || got != 7 {
		t.Fatal("host route miss")
	}
	if _, ok := tb.Lookup(netip.MustParseAddr("198.51.100.8")); ok {
		t.Fatal("adjacent host should miss")
	}
}

func TestTableInsert24LookupProperty(t *testing.T) {
	// Any address inside an inserted /24 resolves to it; the host octet
	// never matters.
	f := func(a, b, c, host byte) bool {
		var tb Table[Prefix24]
		p := FromOctets(a, b, c)
		tb.Insert24(p, p)
		got, ok := tb.Lookup(p.Addr(host))
		return ok && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableManyPrefixes(t *testing.T) {
	var tb Table[uint64]
	al := NewAllocator(ClientPool)
	prefixes := make([]Prefix24, 5000)
	for i := range prefixes {
		p, ok := al.Next()
		if !ok {
			t.Fatal("pool exhausted")
		}
		prefixes[i] = p
		tb.Insert24(p, uint64(i))
	}
	if tb.Len() != 5000 {
		t.Fatalf("Len = %d", tb.Len())
	}
	for i, p := range prefixes {
		got, ok := tb.Lookup(p.Addr(byte(i)))
		if !ok || got != uint64(i) {
			t.Fatalf("prefix %v -> %d, %v; want %d", p, got, ok, i)
		}
	}
}

func BenchmarkTableLookup(b *testing.B) {
	var tb Table[uint64]
	al := NewAllocator(ClientPool)
	for i := 0; i < 50000; i++ {
		p, ok := al.Next()
		if !ok {
			b.Fatal("pool exhausted")
		}
		tb.Insert24(p, uint64(i))
	}
	addr := netip.AddrFrom4([4]byte{10, 100, 50, 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(addr)
	}
}
