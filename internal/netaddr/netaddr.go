// Package netaddr provides compact /24 prefix identifiers and synthetic
// IPv4 address allocation for the simulator.
//
// The paper aggregates all client measurements by /24 prefix "because they
// tend to be localized" (citing Freedman et al.), so the /24 is the unit of
// identity for clients throughout the system. Front-end unicast prefixes
// are also /24s, mirroring §3.1 of the paper.
package netaddr

import (
	"fmt"
	"net/netip"
)

// Prefix24 identifies an IPv4 /24 by its 24 network bits. The zero value is
// 0.0.0.0/24.
type Prefix24 uint32

// ParsePrefix24 parses a dotted string like "192.0.2.0/24" (the host octet
// and mask are validated).
func ParsePrefix24(s string) (Prefix24, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return 0, fmt.Errorf("netaddr: %w", err)
	}
	if !p.Addr().Is4() {
		return 0, fmt.Errorf("netaddr: %v is not IPv4", p)
	}
	if p.Bits() != 24 {
		return 0, fmt.Errorf("netaddr: %v is not a /24", p)
	}
	a4 := p.Addr().As4()
	return FromOctets(a4[0], a4[1], a4[2]), nil
}

// FromOctets builds a Prefix24 from the three network octets.
func FromOctets(a, b, c byte) Prefix24 {
	return Prefix24(uint32(a)<<16 | uint32(b)<<8 | uint32(c))
}

// FromAddr returns the /24 containing the given IPv4 address.
func FromAddr(addr netip.Addr) (Prefix24, bool) {
	if !addr.Is4() && !addr.Is4In6() {
		return 0, false
	}
	a4 := addr.Unmap().As4()
	return FromOctets(a4[0], a4[1], a4[2]), true
}

// Octets returns the three network octets.
func (p Prefix24) Octets() (a, b, c byte) {
	return byte(p >> 16), byte(p >> 8), byte(p)
}

// Addr returns the host address p.a.b.c/24 with the given final octet.
func (p Prefix24) Addr(host byte) netip.Addr {
	a, b, c := p.Octets()
	return netip.AddrFrom4([4]byte{a, b, c, host})
}

// Prefix returns the netip.Prefix form.
func (p Prefix24) Prefix() netip.Prefix {
	return netip.PrefixFrom(p.Addr(0), 24)
}

// Contains reports whether addr lies inside the /24.
func (p Prefix24) Contains(addr netip.Addr) bool {
	q, ok := FromAddr(addr)
	return ok && q == p
}

func (p Prefix24) String() string {
	a, b, c := p.Octets()
	return fmt.Sprintf("%d.%d.%d.0/24", a, b, c)
}

// Allocator hands out non-overlapping synthetic /24s from a chain of
// ranges, so generated "client" and "front-end" prefixes can never collide
// with each other. The addresses are simulation-only labels — nothing is
// ever bound or routed — so the ranges only need to be mutually disjoint.
type Allocator struct {
	next   uint32 // offset within ranges[ri]
	ri     int
	ranges []addrRange
}

type addrRange struct {
	base uint32 // /24 index of the range start (addr >> 8)
	size uint32
}

// Pool identifies an address pool for an Allocator.
type Pool int

// Address pools. ClientPool starts in 10.0.0.0/8 (65,536 /24s), continues
// into 16.0.0.0/4 (1,048,576 more) for paper-scale populations, and then
// into 64.0.0.0/2 (4,194,304 more) for the distributed multi-process runs
// that shard a world several times the single-process ceiling — over five
// million client /24s in total. The ranges are chained in that fixed
// order, so growing the pool never changes which prefix an existing
// client index receives. FrontEndPool allocates from 198.18.0.0/15
// (benchmarking); AnycastPool is the single well-known VIP prefix
// 192.0.2.0/24. All pools are disjoint.
const (
	ClientPool Pool = iota
	FrontEndPool
)

// NewAllocator returns an allocator over the given pool.
func NewAllocator(pool Pool) *Allocator {
	switch pool {
	case FrontEndPool:
		// 198.18.0.0/15 => 512 /24s, plenty for front-ends.
		return &Allocator{ranges: []addrRange{{base: uint32(198)<<16 | uint32(18)<<8, size: 512}}}
	default:
		return &Allocator{ranges: []addrRange{
			{base: uint32(10) << 16, size: 65536},   // 10.0.0.0/8
			{base: uint32(16) << 16, size: 1048576}, // 16.0.0.0/4
			{base: uint32(64) << 16, size: 4 << 20}, // 64.0.0.0/2
		}}
	}
}

// Next returns the next unallocated /24. ok is false when the pool is
// exhausted.
func (al *Allocator) Next() (Prefix24, bool) {
	for al.ri < len(al.ranges) && al.next >= al.ranges[al.ri].size {
		al.ri++
		al.next = 0
	}
	if al.ri >= len(al.ranges) {
		return 0, false
	}
	p := Prefix24(al.ranges[al.ri].base + al.next)
	al.next++
	return p, true
}

// Remaining returns how many /24s are left in the pool.
func (al *Allocator) Remaining() int {
	var n uint32
	for i := al.ri; i < len(al.ranges); i++ {
		n += al.ranges[i].size
		if i == al.ri {
			n -= al.next
		}
	}
	return int(n)
}

// AnycastVIP is the anycast service address announced from every front-end
// location, mirroring the production anycast address of §3.1.
var AnycastVIP = netip.AddrFrom4([4]byte{192, 0, 2, 1})

// AnycastPrefix is the /24 containing AnycastVIP.
var AnycastPrefix = FromOctets(192, 0, 2)
