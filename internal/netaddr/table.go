package netaddr

import (
	"fmt"
	"net/netip"
)

// Table is a longest-prefix-match routing table for IPv4 prefixes,
// implemented as a binary trie on the address bits. It is what a router's
// FIB does conceptually, and what the testbed's DNS handler uses to map
// an EDNS Client Subnet back to a simulated client /24.
//
// The zero value is an empty table. Table is not safe for concurrent
// mutation; concurrent lookups are safe after all inserts complete.
type Table[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	children [2]*node[V]
	hasValue bool
	value    V
}

// Insert associates value with the given IPv4 prefix, replacing any
// existing entry for exactly that prefix.
func (t *Table[V]) Insert(p netip.Prefix, value V) error {
	addr := p.Addr()
	if !addr.Is4() && !addr.Is4In6() {
		return fmt.Errorf("netaddr: table requires IPv4 prefixes, got %v", p)
	}
	bits := p.Bits()
	if bits < 0 || bits > 32 {
		return fmt.Errorf("netaddr: invalid prefix length %d", bits)
	}
	a4 := addr.Unmap().As4()
	key := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
	if t.root == nil {
		t.root = &node[V]{}
	}
	cur := t.root
	for i := 0; i < bits; i++ {
		b := (key >> (31 - i)) & 1
		if cur.children[b] == nil {
			cur.children[b] = &node[V]{}
		}
		cur = cur.children[b]
	}
	if !cur.hasValue {
		t.size++
	}
	cur.hasValue = true
	cur.value = value
	return nil
}

// Insert24 associates value with a /24.
func (t *Table[V]) Insert24(p Prefix24, value V) {
	// The /24 form is always valid; ignore the impossible error.
	_ = t.Insert(p.Prefix(), value)
}

// Lookup returns the value of the longest prefix containing addr.
func (t *Table[V]) Lookup(addr netip.Addr) (V, bool) {
	var zero V
	if t.root == nil {
		return zero, false
	}
	if !addr.Is4() && !addr.Is4In6() {
		return zero, false
	}
	a4 := addr.Unmap().As4()
	key := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
	cur := t.root
	best := zero
	found := false
	if cur.hasValue { // default route
		best, found = cur.value, true
	}
	for i := 0; i < 32; i++ {
		b := (key >> (31 - i)) & 1
		cur = cur.children[b]
		if cur == nil {
			break
		}
		if cur.hasValue {
			best, found = cur.value, true
		}
	}
	return best, found
}

// Len returns the number of distinct prefixes in the table.
func (t *Table[V]) Len() int { return t.size }
