package netaddr

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParsePrefix24(t *testing.T) {
	p, err := ParsePrefix24("192.0.2.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "192.0.2.0/24" {
		t.Fatalf("round trip = %q", p.String())
	}
}

func TestParsePrefix24Errors(t *testing.T) {
	for _, s := range []string{"", "garbage", "192.0.2.0/23", "192.0.2.0", "2001:db8::/24"} {
		if _, err := ParsePrefix24(s); err == nil {
			t.Errorf("ParsePrefix24(%q) should fail", s)
		}
	}
}

func TestOctetsRoundTrip(t *testing.T) {
	f := func(a, b, c byte) bool {
		p := FromOctets(a, b, c)
		x, y, z := p.Octets()
		return x == a && y == b && z == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrAndContains(t *testing.T) {
	p := FromOctets(10, 1, 2)
	addr := p.Addr(77)
	if addr.String() != "10.1.2.77" {
		t.Fatalf("Addr = %v", addr)
	}
	if !p.Contains(addr) {
		t.Fatal("prefix should contain its own host address")
	}
	other := netip.AddrFrom4([4]byte{10, 1, 3, 77})
	if p.Contains(other) {
		t.Fatal("prefix should not contain 10.1.3.77")
	}
	if p.Contains(netip.MustParseAddr("2001:db8::1")) {
		t.Fatal("IPv4 prefix should not contain an IPv6 address")
	}
}

func TestFromAddr(t *testing.T) {
	p, ok := FromAddr(netip.MustParseAddr("203.0.113.9"))
	if !ok || p.String() != "203.0.113.0/24" {
		t.Fatalf("FromAddr = %v, %v", p, ok)
	}
	// 4-in-6 mapped addresses should unmap.
	p2, ok := FromAddr(netip.MustParseAddr("::ffff:203.0.113.9"))
	if !ok || p2 != p {
		t.Fatalf("FromAddr mapped = %v, %v", p2, ok)
	}
	if _, ok := FromAddr(netip.MustParseAddr("2001:db8::1")); ok {
		t.Fatal("FromAddr should reject native IPv6")
	}
}

func TestPrefixForm(t *testing.T) {
	p := FromOctets(198, 51, 100)
	np := p.Prefix()
	if np.String() != "198.51.100.0/24" {
		t.Fatalf("Prefix = %v", np)
	}
}

func TestAllocatorUnique(t *testing.T) {
	al := NewAllocator(ClientPool)
	seen := map[Prefix24]bool{}
	for i := 0; i < 10000; i++ {
		p, ok := al.Next()
		if !ok {
			t.Fatalf("pool exhausted at %d", i)
		}
		if seen[p] {
			t.Fatalf("duplicate allocation %v", p)
		}
		seen[p] = true
	}
}

func TestAllocatorPoolsDisjoint(t *testing.T) {
	ca := NewAllocator(ClientPool)
	fa := NewAllocator(FrontEndPool)
	cp, _ := ca.Next()
	fp, _ := fa.Next()
	if cp == fp {
		t.Fatal("client and front-end pools overlap")
	}
	a, _, _ := cp.Octets()
	if a != 10 {
		t.Fatalf("client pool starts at %v, want 10.x", cp)
	}
	a, b, _ := fp.Octets()
	if a != 198 || b != 18 {
		t.Fatalf("front-end pool starts at %v, want 198.18.x", fp)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	al := NewAllocator(FrontEndPool)
	n := al.Remaining()
	for i := 0; i < n; i++ {
		if _, ok := al.Next(); !ok {
			t.Fatalf("pool exhausted early at %d of %d", i, n)
		}
	}
	if _, ok := al.Next(); ok {
		t.Fatal("allocation succeeded past pool size")
	}
	if al.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", al.Remaining())
	}
}

func TestAnycastVIPInPrefix(t *testing.T) {
	if !AnycastPrefix.Contains(AnycastVIP) {
		t.Fatal("anycast VIP not inside anycast prefix")
	}
}

// TestClientPoolSpansAMillionPrefixes pins the paper-scale capacity: the
// client pool must hand out over five million distinct /24s (the 10/8
// range chained into 16/4, then 64/2 for distributed multi-process
// worlds), never overlapping the front-end pool, and Remaining must count
// down across the range boundaries.
func TestClientPoolSpansAMillionPrefixes(t *testing.T) {
	al := NewAllocator(ClientPool)
	total := al.Remaining()
	if total < 4_000_000 {
		t.Fatalf("client pool holds %d /24s, want >= 4M for distributed runs", total)
	}
	var last Prefix24
	for i := 0; i < total; i++ {
		p, ok := al.Next()
		if !ok {
			t.Fatalf("pool exhausted at %d of %d", i, total)
		}
		if i > 0 && p <= last && i != 65536 && i != 65536+1048576 {
			// Monotone within a range; the only drops are the 10/8 -> 16/4
			// and 16/4 -> 64/2 boundaries, which guarantees uniqueness
			// without a seen-map.
			t.Fatalf("allocation %d not increasing: %v after %v", i, p, last)
		}
		a, _, _ := p.Octets()
		if a != 10 && (a < 16 || a > 31) && (a < 64 || a > 127) {
			t.Fatalf("allocation %v outside the client ranges", p)
		}
		last = p
	}
	if _, ok := al.Next(); ok {
		t.Fatal("pool should be exhausted")
	}
	if al.Remaining() != 0 {
		t.Fatalf("Remaining = %d after exhaustion", al.Remaining())
	}
}

// TestClientPoolPrefixStability pins the append-only growth contract: the
// first allocations out of the client pool — the prefixes every existing
// client index already has — must be identical no matter how many ranges
// are chained after them. A reordering would silently re-address every
// generated population.
func TestClientPoolPrefixStability(t *testing.T) {
	al := NewAllocator(ClientPool)
	first, _ := al.Next()
	if want := FromOctets(10, 0, 0); first != want {
		t.Fatalf("first client prefix = %v, want %v", first, want)
	}
	// Skip to the first cross-range boundary and check the handoff.
	for i := 1; i < 65536; i++ {
		al.Next()
	}
	p, _ := al.Next()
	if want := FromOctets(16, 0, 0); p != want {
		t.Fatalf("allocation 65536 = %v, want %v (start of 16/4)", p, want)
	}
}
