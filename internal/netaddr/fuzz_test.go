package netaddr

import "testing"

// FuzzParsePrefix24 checks the /24 parser never panics and that every
// accepted prefix survives String -> ParsePrefix24 and Octets ->
// FromOctets round trips. Prefix identity is the aggregation key for all
// client measurements, so a parse/format asymmetry would silently split
// or merge /24 populations.
func FuzzParsePrefix24(f *testing.F) {
	for _, s := range []string{
		"192.0.2.0/24",     // canonical
		"0.0.0.0/24",       // zero value
		"255.255.255.0/24", // top of the space
		"192.0.2.1/24",     // host bits set
		"10.1.2.0/23",      // wrong mask
		"2001:db8::/24",    // not IPv4
		"not a prefix",
		"192.0.2.0/24/24",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix24(s)
		if err != nil {
			return
		}
		s2 := p.String()
		p2, err := ParsePrefix24(s2)
		if err != nil {
			t.Fatalf("ParsePrefix24(%q).String() = %q does not reparse: %v", s, s2, err)
		}
		if p2 != p {
			t.Fatalf("String round trip changed prefix: %v -> %v", p, p2)
		}
		a, b, c := p.Octets()
		if FromOctets(a, b, c) != p {
			t.Fatalf("Octets round trip changed prefix: %v", p)
		}
	})
}
