package dnswire

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"
)

// bigHandler answers with many A records so the response exceeds small
// UDP limits.
type bigHandler struct{ records int }

func (h *bigHandler) HandleQuery(q *Message, _ netip.AddrPort) *Message {
	r := q.Reply()
	name := q.Questions[0].Name
	for i := 0; i < h.records; i++ {
		r.Answers = append(r.Answers, ARecord(name, 60,
			netip.AddrFrom4([4]byte{198, 18, byte(i >> 8), byte(i)})))
	}
	return r
}

func TestTCPServerExchange(t *testing.T) {
	h := &bigHandler{records: 3}
	s, err := NewTCPServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := ExchangeTCP(ctx, s.Addr(), NewQuery(5, "tcp.test", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 3 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
}

func TestTCPMultipleQueriesPerConnection(t *testing.T) {
	// RFC 7766 pipelining at the message level: two sequential exchanges
	// work; here we reuse via two separate ExchangeTCP calls plus a
	// manual two-query connection through the framing helpers.
	h := &bigHandler{records: 1}
	s, err := NewTCPServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for id := uint16(1); id <= 3; id++ {
		resp, err := ExchangeTCP(ctx, s.Addr(), NewQuery(id, "multi.test", TypeA))
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != id {
			t.Fatalf("response ID %d, want %d", resp.ID, id)
		}
	}
}

func TestUDPTruncationAndFallback(t *testing.T) {
	// 60 A records ≈ 60*(8+2+2+4+2+4) > 1232 bytes, so a UDP query must
	// come back truncated and the fallback must fetch the full answer
	// over TCP.
	h := &bigHandler{records: 80}
	udp, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	tcp, err := NewTCPServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	q := NewQuery(9, "big.test", TypeA)
	q.EDNS = true
	q.UDPSize = 512

	udpResp, err := Exchange(ctx, udp.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !udpResp.Truncated {
		t.Fatal("oversized UDP response should be truncated")
	}
	if len(udpResp.Answers) != 0 {
		t.Fatalf("truncated response carries %d answers", len(udpResp.Answers))
	}

	full, err := ExchangeWithFallback(ctx, udp.Addr(), tcp.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("TCP response should not be truncated")
	}
	if len(full.Answers) != 80 {
		t.Fatalf("TCP answers = %d, want 80", len(full.Answers))
	}
}

func TestExchangeWithFallbackNoTruncation(t *testing.T) {
	h := &bigHandler{records: 1}
	udp, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := ExchangeWithFallback(ctx, udp.Addr(), "", NewQuery(1, "small.test", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated || len(resp.Answers) != 1 {
		t.Fatalf("small response should pass through UDP: %+v", resp)
	}
}

func TestTruncateFor(t *testing.T) {
	m := &Message{ID: 1, Response: true}
	for i := 0; i < 100; i++ {
		m.Answers = append(m.Answers, ARecord("x.test", 60, netip.AddrFrom4([4]byte{1, 2, 3, byte(i)})))
	}
	small, err := TruncateFor(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !small.Truncated || len(small.Answers) != 0 {
		t.Fatalf("expected truncation: %+v", small)
	}
	pkt, err := small.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) > 512 {
		t.Fatalf("truncated response still %d bytes", len(pkt))
	}
	// Original must be untouched.
	if len(m.Answers) != 100 || m.Truncated {
		t.Fatal("TruncateFor mutated the original")
	}
	// A fitting response passes through unchanged.
	tiny := &Message{ID: 1, Response: true, Answers: []Record{ARecord("x.test", 60, netip.AddrFrom4([4]byte{1, 2, 3, 4}))}}
	same, err := TruncateFor(tiny, 512)
	if err != nil {
		t.Fatal(err)
	}
	if same != tiny {
		t.Fatal("fitting response should be returned as-is")
	}
}

func TestTCPServerCloseIdempotent(t *testing.T) {
	s, err := NewTCPServer("127.0.0.1:0", &bigHandler{records: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPServerNilHandler(t *testing.T) {
	if _, err := NewTCPServer("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler should fail")
	}
}

func TestReadTCPMessageShortFrame(t *testing.T) {
	// Length prefix below the DNS header size must error.
	r := strings.NewReader("\x00\x04abcd")
	if _, err := readTCPMessage(r); err == nil {
		t.Fatal("short frame should fail")
	}
	// Frame longer than the stream must error cleanly.
	r = strings.NewReader("\x00\xff12")
	if _, err := readTCPMessage(r); err == nil {
		t.Fatal("truncated stream should fail")
	}
}
