package dnswire

import (
	"context"
	"net"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"
)

// staticHandler answers every A query with the given address.
type staticHandler struct {
	addr    netip.Addr
	ttl     uint32
	queries atomic.Int64
}

func (h *staticHandler) HandleQuery(q *Message, _ netip.AddrPort) *Message {
	h.queries.Add(1)
	r := q.Reply()
	qu := q.Questions[0]
	if qu.Type != TypeA {
		r.RCode = RCodeNotImpl
		return r
	}
	r.Answers = append(r.Answers, ARecord(qu.Name, h.ttl, h.addr))
	return r
}

func startServer(t *testing.T, h Handler) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	return s
}

func TestServerExchange(t *testing.T) {
	h := &staticHandler{addr: netip.MustParseAddr("192.0.2.1"), ttl: 60}
	s := startServer(t, h)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := Exchange(ctx, s.Addr(), NewQuery(42, "test.cdn", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 || !resp.Response {
		t.Fatalf("bad response %+v", resp)
	}
	a, ok := resp.Answers[0].Addr()
	if !ok || a != h.addr {
		t.Fatalf("answer = %v", a)
	}
}

func TestServerECSVisibleToHandler(t *testing.T) {
	var seen atomic.Value
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message {
		if q.ClientSubnet != nil {
			seen.Store(q.ClientSubnet.Addr.String())
		}
		r := q.Reply()
		r.Answers = append(r.Answers, ARecord(q.Questions[0].Name, 5, netip.MustParseAddr("192.0.2.9")))
		return r
	})
	s := startServer(t, h)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	q := NewQuery(1, "ecs.cdn", TypeA)
	q.SetECS(netip.MustParseAddr("10.5.6.7"), 24)
	if _, err := Exchange(ctx, s.Addr(), q); err != nil {
		t.Fatal(err)
	}
	if got, _ := seen.Load().(string); got != "10.5.6.0" {
		t.Fatalf("handler saw ECS %q, want 10.5.6.0", got)
	}
}

func TestServerDropsNil(t *testing.T) {
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message { return nil })
	s := startServer(t, h)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := Exchange(ctx, s.Addr(), NewQuery(1, "drop.test", TypeA)); err == nil {
		t.Fatal("dropped query should time out")
	}
}

func TestNewServerNilHandler(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler should fail")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := startServer(t, &staticHandler{addr: netip.MustParseAddr("192.0.2.1")})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
}

func TestServerConcurrentQueries(t *testing.T) {
	h := &staticHandler{addr: netip.MustParseAddr("192.0.2.7"), ttl: 5}
	s := startServer(t, h)
	const n = 50
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(id uint16) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, err := Exchange(ctx, s.Addr(), NewQuery(id, "load.test", TypeA))
			errs <- err
		}(uint16(i))
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := h.queries.Load(); got != n {
		t.Fatalf("handler saw %d queries, want %d", got, n)
	}
}

func TestCachingResolver(t *testing.T) {
	h := &staticHandler{addr: netip.MustParseAddr("192.0.2.3"), ttl: 60}
	s := startServer(t, h)
	r := NewCachingResolver(s.Addr())
	now := time.Unix(1000, 0)
	r.Now = func() time.Time { return now }
	ctx := context.Background()

	a1, err := r.Lookup(ctx, "cache.test", TypeA, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Lookup(ctx, "cache.test", TypeA, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a1[0] != a2[0] {
		t.Fatal("cached answer differs")
	}
	if h.queries.Load() != 1 {
		t.Fatalf("server saw %d queries, want 1 (second lookup cached)", h.queries.Load())
	}
	if st := r.Stats(); st.CacheHits != 1 || st.Lookups != 2 {
		t.Fatalf("cache stats: hits=%d lookups=%d", st.CacheHits, st.Lookups)
	}
	// Expire and refetch.
	now = now.Add(2 * time.Minute)
	if _, err := r.Lookup(ctx, "cache.test", TypeA, nil); err != nil {
		t.Fatal(err)
	}
	if h.queries.Load() != 2 {
		t.Fatalf("server saw %d queries after expiry, want 2", h.queries.Load())
	}
	// Flush forces a refetch too.
	r.Flush()
	if _, err := r.Lookup(ctx, "cache.test", TypeA, nil); err != nil {
		t.Fatal(err)
	}
	if h.queries.Load() != 3 {
		t.Fatalf("server saw %d queries after flush, want 3", h.queries.Load())
	}
}

func TestCachingResolverErrorRCode(t *testing.T) {
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message {
		r := q.Reply()
		r.RCode = RCodeNXDomain
		return r
	})
	s := startServer(t, h)
	r := NewCachingResolver(s.Addr())
	if _, err := r.Lookup(context.Background(), "missing.test", TypeA, nil); err == nil {
		t.Fatal("NXDOMAIN should surface as an error")
	}
}

func TestServerSendsServfailOnUnpackableResponse(t *testing.T) {
	// A handler that builds a response that cannot be packed (label too
	// long): the server must degrade to SERVFAIL rather than go silent.
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message {
		r := q.Reply()
		long := make([]byte, 70)
		for i := range long {
			long[i] = 'a'
		}
		r.Answers = append(r.Answers, Record{
			Name: string(long) + ".test", Type: TypeA, Class: ClassIN, TTL: 1,
			Data: []byte{1, 2, 3, 4},
		})
		return r
	})
	s := startServer(t, h)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := Exchange(ctx, s.Addr(), NewQuery(3, "broken.test", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != RCodeServFail {
		t.Fatalf("rcode = %d, want SERVFAIL", resp.RCode)
	}
}

func TestServerIgnoresGarbageDatagrams(t *testing.T) {
	h := &staticHandler{addr: netip.MustParseAddr("192.0.2.5"), ttl: 5}
	s := startServer(t, h)
	// Throw garbage at the socket; the server must survive and keep
	// answering real queries.
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, garbage := range [][]byte{{}, {1}, []byte("not dns at all"), make([]byte, 11)} {
		if _, err := conn.Write(garbage); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := Exchange(ctx, s.Addr(), NewQuery(4, "alive.test", TypeA)); err != nil {
		t.Fatalf("server unhealthy after garbage: %v", err)
	}
}
