package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestPackUnpackQuery(t *testing.T) {
	q := NewQuery(0x1234, "beacon.example.com", TypeA)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response || !got.RecursionDesired {
		t.Fatalf("header round trip: %+v", got)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if got.Questions[0].Name != "beacon.example.com" || got.Questions[0].Type != TypeA {
		t.Fatalf("question round trip: %+v", got.Questions[0])
	}
}

func TestPackUnpackResponse(t *testing.T) {
	q := NewQuery(7, "fe.cdn.test", TypeA)
	r := q.Reply()
	addr := netip.MustParseAddr("198.18.0.1")
	r.Answers = append(r.Answers, ARecord("fe.cdn.test", 30, addr))
	pkt, err := r.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.Authoritative || got.ID != 7 {
		t.Fatalf("response header: %+v", got)
	}
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	a, ok := got.Answers[0].Addr()
	if !ok || a != addr {
		t.Fatalf("answer addr = %v, %v", a, ok)
	}
	if got.Answers[0].TTL != 30 {
		t.Fatalf("TTL = %d", got.Answers[0].TTL)
	}
}

func TestAAAARoundTrip(t *testing.T) {
	addr := netip.MustParseAddr("2001:db8::1")
	r := AAAARecord("v6.test", 60, addr)
	m := &Message{ID: 1, Response: true, Answers: []Record{r}}
	pkt, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(pkt)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := got.Answers[0].Addr()
	if !ok || a != addr {
		t.Fatalf("AAAA round trip: %v %v", a, ok)
	}
}

func TestECSRoundTrip(t *testing.T) {
	q := NewQuery(9, "ecs.test", TypeA)
	q.SetECS(netip.MustParseAddr("203.0.113.57"), 24)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EDNS {
		t.Fatal("EDNS flag lost")
	}
	cs := got.ClientSubnet
	if cs == nil {
		t.Fatal("client subnet lost")
	}
	if cs.SourcePrefixLen != 24 {
		t.Fatalf("prefix len = %d", cs.SourcePrefixLen)
	}
	// Host bits must be masked: /24 of 203.0.113.57 is 203.0.113.0.
	if cs.Addr != netip.MustParseAddr("203.0.113.0") {
		t.Fatalf("ECS addr = %v", cs.Addr)
	}
}

func TestECSv6RoundTrip(t *testing.T) {
	q := NewQuery(9, "ecs6.test", TypeAAAA)
	q.SetECS(netip.MustParseAddr("2001:db8:1234:5678::1"), 56)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientSubnet == nil || got.ClientSubnet.SourcePrefixLen != 56 {
		t.Fatalf("v6 ECS lost: %+v", got.ClientSubnet)
	}
}

func TestReplyEchoesECSWithScope(t *testing.T) {
	q := NewQuery(9, "x.test", TypeA)
	q.SetECS(netip.MustParseAddr("10.1.2.3"), 24)
	r := q.Reply()
	if r.ClientSubnet == nil || r.ClientSubnet.ScopePrefixLen != 24 {
		t.Fatalf("reply ECS scope: %+v", r.ClientSubnet)
	}
	if len(r.Questions) != 1 || r.Questions[0].Name != "x.test" {
		t.Fatal("reply must echo the question")
	}
}

func TestNameCompressionDecoding(t *testing.T) {
	// Hand-build a response with a compression pointer: question
	// "a.test", answer name pointing back at offset 12.
	var b []byte
	b = put16(b, 1)      // ID
	b = put16(b, 0x8400) // QR|AA
	b = put16(b, 1)      // QD
	b = put16(b, 1)      // AN
	b = put16(b, 0)      // NS
	b = put16(b, 0)      // AR
	b = append(b, 1, 'a', 4, 't', 'e', 's', 't', 0)
	b = put16(b, TypeA)
	b = put16(b, ClassIN)
	// Answer with compressed name 0xc00c -> offset 12.
	b = append(b, 0xc0, 0x0c)
	b = put16(b, TypeA)
	b = put16(b, ClassIN)
	b = put32(b, 60)
	b = put16(b, 4)
	b = append(b, 192, 0, 2, 1)
	m, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "a.test" {
		t.Fatalf("compressed name = %q", m.Answers[0].Name)
	}
}

func TestUnpackRejectsBadPointers(t *testing.T) {
	// Self-referencing pointer at offset 12.
	var b []byte
	b = put16(b, 1)
	b = put16(b, 0)
	b = put16(b, 1)
	b = put16(b, 0)
	b = put16(b, 0)
	b = put16(b, 0)
	b = append(b, 0xc0, 0x0c) // points at itself
	b = put16(b, TypeA)
	b = put16(b, ClassIN)
	if _, err := Unpack(b); err == nil {
		t.Fatal("self-referencing pointer should fail")
	}
}

func TestUnpackTruncated(t *testing.T) {
	q := NewQuery(3, "trunc.test", TypeA)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(pkt); cut++ {
		if m, err := Unpack(pkt[:cut]); err == nil {
			// Some prefixes may parse as a shorter valid message only if
			// counts allow it; with QD=1 they cannot.
			t.Fatalf("truncation at %d parsed: %+v", cut, m)
		}
	}
}

func TestPackNameValidation(t *testing.T) {
	long := bytes.Repeat([]byte("a"), 64)
	if _, err := packName(nil, string(long)+".test"); err == nil {
		t.Fatal("64-byte label should fail")
	}
	if _, err := packName(nil, "a..b"); err == nil {
		t.Fatal("empty label should fail")
	}
	veryLong := ""
	for i := 0; i < 60; i++ {
		veryLong += "abcde."
	}
	if _, err := packName(nil, veryLong+"test"); err == nil {
		t.Fatal("too-long name should fail")
	}
}

func TestNameCaseInsensitive(t *testing.T) {
	q := NewQuery(1, "MiXeD.Example.COM", TypeA)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "mixed.example.com" {
		t.Fatalf("name not normalized: %q", got.Questions[0].Name)
	}
}

func TestRootName(t *testing.T) {
	q := NewQuery(1, ".", TypeA)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "." {
		t.Fatalf("root name = %q", got.Questions[0].Name)
	}
}

func TestUnpackGarbageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unpack(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRoundTripProperty(t *testing.T) {
	f := func(id uint16, rd bool) bool {
		q := NewQuery(id, "prop.test", TypeA)
		q.RecursionDesired = rd
		pkt, err := q.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(pkt)
		if err != nil {
			return false
		}
		return got.ID == id && got.RecursionDesired == rd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRCodeRoundTrip(t *testing.T) {
	for _, rc := range []uint8{RCodeSuccess, RCodeFormErr, RCodeServFail, RCodeNXDomain, RCodeNotImpl, RCodeRefused} {
		m := &Message{ID: 1, Response: true, RCode: rc}
		pkt, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unpack(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if got.RCode != rc {
			t.Fatalf("rcode %d round-tripped to %d", rc, got.RCode)
		}
	}
}

func BenchmarkPack(b *testing.B) {
	q := NewQuery(1, "bench.example.com", TypeA)
	q.SetECS(netip.MustParseAddr("10.0.0.0"), 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	q := NewQuery(1, "bench.example.com", TypeA)
	q.SetECS(netip.MustParseAddr("10.0.0.0"), 24)
	pkt, err := q.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
