package dnswire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Handler answers DNS queries. Returning nil drops the query.
type Handler interface {
	HandleQuery(q *Message, from netip.AddrPort) *Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(q *Message, from netip.AddrPort) *Message

// HandleQuery implements Handler.
func (f HandlerFunc) HandleQuery(q *Message, from netip.AddrPort) *Message {
	return f(q, from)
}

// DefaultDrainTimeout bounds how long a server's Close waits for in-flight
// query handlers before giving up on stragglers.
const DefaultDrainTimeout = 2 * time.Second

// Server is a UDP DNS server.
//
// Lifecycle: NewServer spawns the read loop; every query is handled on its
// own tracked goroutine. Close stops the read loop, then drains in-flight
// handlers (bounded by the drain timeout) before releasing the socket, so
// a returned Close guarantees no handler is still running against caller
// state and no response is written to a closed socket.
//
// mu guards the closed flag and drain timeout; the socket and handler are
// set once at construction and safe to read concurrently. mu is a leaf
// lock: it is never held while acquiring any other mutex or calling
// outside the struct, so it imposes no acquisition order (verified by
// the lockorder analyzer's held-lock dataflow).
type Server struct {
	conn    net.PacketConn
	handler Handler

	mu     sync.Mutex
	closed bool
	drain  time.Duration

	done     chan struct{}  // read loop exit
	handlers sync.WaitGroup // in-flight query handlers
}

// NewServer starts serving on a UDP address ("127.0.0.1:0" for an
// ephemeral port). Close releases the socket.
func NewServer(addr string, h Handler) (*Server, error) {
	if h == nil {
		return nil, errors.New("dnswire: nil handler")
	}
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnswire: listen: %w", err)
	}
	s := &Server{conn: pc, handler: h, drain: DefaultDrainTimeout, done: make(chan struct{})}
	go s.serve()
	return s, nil
}

// Addr returns the server's UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// SetDrainTimeout bounds how long Close waits for in-flight handlers.
func (s *Server) SetDrainTimeout(d time.Duration) {
	s.mu.Lock()
	s.drain = d
	s.mu.Unlock()
}

// Close shuts the server down: it stops the read loop, waits (up to the
// drain timeout) for in-flight handlers to finish writing their responses,
// and only then closes the socket.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	drain := s.drain
	s.mu.Unlock()
	// Wake the read loop with a past deadline instead of closing the
	// socket: in-flight handlers still need it to write their responses.
	if err := s.conn.SetReadDeadline(time.Unix(1, 0)); err != nil {
		err = s.conn.Close()
		<-s.done
		drainWait(&s.handlers, drain)
		return err
	}
	<-s.done
	drainWait(&s.handlers, drain)
	return s.conn.Close()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) serve() {
	defer close(s.done)
	buf := make([]byte, 4096)
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			if s.isClosed() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // stray deadline wakeup; not shutting down
			}
			return
		}
		pkt := append([]byte(nil), buf[:n]...)
		fromAP := addrPortOf(from)
		s.handlers.Add(1)
		go func() {
			defer s.handlers.Done()
			s.handle(pkt, from, fromAP)
		}()
	}
}

func (s *Server) handle(pkt []byte, raw net.Addr, from netip.AddrPort) {
	q, err := Unpack(pkt)
	if err != nil || q.Response || len(q.Questions) == 0 {
		return // not a usable query; drop
	}
	resp := s.handler.HandleQuery(q, from)
	if resp == nil {
		return
	}
	// Respect the client's UDP payload limit: oversized responses go out
	// truncated so the client retries over TCP (RFC 7766).
	limit := uint16(0)
	if q.EDNS {
		limit = q.UDPSize
	}
	if t, err := TruncateFor(resp, limit); err == nil {
		resp = t
	}
	out, err := resp.Pack()
	if err != nil {
		// Fall back to SERVFAIL so the client does not hang on timeout.
		sf := q.Reply()
		sf.RCode = RCodeServFail
		if out, err = sf.Pack(); err != nil {
			return
		}
	}
	_, _ = s.conn.WriteTo(out, raw)
}

// drainWait blocks until wg reaches zero or d elapses, reporting whether
// the drain completed. On timeout the helper goroutine lingers only until
// the stragglers it waits on finish.
func drainWait(wg *sync.WaitGroup, d time.Duration) bool {
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		wg.Wait()
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-idle:
		return true
	case <-timer.C:
		return false
	}
}

func addrPortOf(a net.Addr) netip.AddrPort {
	if ua, ok := a.(*net.UDPAddr); ok {
		if ap, ok := netip.AddrFromSlice(ua.IP); ok {
			return netip.AddrPortFrom(ap.Unmap(), uint16(ua.Port))
		}
	}
	return netip.AddrPort{}
}

// ExchangeConfig tunes the client-side exchange helpers.
type ExchangeConfig struct {
	// Attempts is the maximum number of tries per call; a try that fails
	// on timeout is retried with backoff. Defaults to 3.
	Attempts int
	// Timeout bounds one attempt. The effective per-attempt deadline is
	// the earlier of this and the caller ctx's deadline. Defaults to 5s.
	Timeout time.Duration
	// Backoff is the delay before the first retry, doubling after each
	// timed-out attempt. Defaults to 50ms.
	Backoff time.Duration
}

func (c ExchangeConfig) withDefaults() ExchangeConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	return c
}

// exchangeRetry runs attempt under cfg's retry policy: timeouts are
// retried with doubling backoff while the caller's ctx is live; any other
// error (and ctx cancellation) returns immediately.
func exchangeRetry(ctx context.Context, cfg ExchangeConfig, attempt func(timeout time.Duration) (*Message, error)) (*Message, error) {
	cfg = cfg.withDefaults()
	backoff := cfg.Backoff
	var lastErr error
	for try := 0; try < cfg.Attempts; try++ {
		if try > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			case <-timer.C:
			}
			backoff *= 2
		}
		resp, err := attempt(cfg.Timeout)
		if err == nil {
			return resp, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if !isTimeoutErr(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dnswire: %d attempts timed out: %w", cfg.Attempts, lastErr)
}

func isTimeoutErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// watchCancel arms a watcher that yanks conn's deadline into the past the
// moment ctx is canceled, so a read blocked in the kernel returns
// immediately instead of riding out its full deadline. The returned stop
// must be called (deferred) to release the watcher.
func watchCancel(ctx context.Context, conn net.Conn) (stop func()) {
	finished := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// Best-effort wakeup; the unblocked caller surfaces ctx.Err().
			_ = conn.SetDeadline(time.Unix(1, 0))
		case <-finished:
		}
	}()
	return func() { close(finished) }
}

// attemptDeadline derives one attempt's deadline: the caller ctx's
// deadline when it is sooner, else now+timeout.
func attemptDeadline(ctx context.Context, timeout time.Duration) time.Time {
	dl := time.Now().Add(timeout)
	if cdl, ok := ctx.Deadline(); ok && cdl.Before(dl) {
		dl = cdl
	}
	return dl
}

// Exchange sends one query to a UDP DNS server and waits for the matching
// response. Timeouts are retried with backoff (see ExchangeConfig
// defaults); cancellation of ctx interrupts an in-flight read immediately
// and returns ctx.Err().
func Exchange(ctx context.Context, server string, q *Message) (*Message, error) {
	return ExchangeWithConfig(ctx, server, q, ExchangeConfig{})
}

// ExchangeWithConfig is Exchange with explicit retry/timeout tuning.
func ExchangeWithConfig(ctx context.Context, server string, q *Message, cfg ExchangeConfig) (*Message, error) {
	return exchangeRetry(ctx, cfg, func(timeout time.Duration) (*Message, error) {
		return exchangeUDPOnce(ctx, server, q, timeout)
	})
}

// exchangeUDPOnce performs a single dial-send-receive attempt.
func exchangeUDPOnce(ctx context.Context, server string, q *Message, timeout time.Duration) (*Message, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "udp", server)
	if err != nil {
		return nil, fmt.Errorf("dnswire: dial %s: %w", server, err)
	}
	defer conn.Close()
	stop := watchCancel(ctx, conn)
	defer stop()
	if err := conn.SetDeadline(attemptDeadline(ctx, timeout)); err != nil {
		return nil, err
	}
	pkt, err := q.Pack()
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(pkt); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("dnswire: send: %w", err)
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			// A canceled ctx surfaces as a deadline error on the read (the
			// watcher's wakeup); report the cancellation, not the timeout.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("dnswire: receive: %w", err)
		}
		resp, err := Unpack(buf[:n])
		if err != nil {
			continue // garbled datagram; keep waiting
		}
		if resp.ID != q.ID || !resp.Response {
			continue // not ours
		}
		return resp, nil
	}
}
