package dnswire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// Handler answers DNS queries. Returning nil drops the query.
type Handler interface {
	HandleQuery(q *Message, from netip.AddrPort) *Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(q *Message, from netip.AddrPort) *Message

// HandleQuery implements Handler.
func (f HandlerFunc) HandleQuery(q *Message, from netip.AddrPort) *Message {
	return f(q, from)
}

// Server is a UDP DNS server.
type Server struct {
	conn    net.PacketConn
	handler Handler

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// NewServer starts serving on a UDP address ("127.0.0.1:0" for an
// ephemeral port). Close releases the socket.
func NewServer(addr string, h Handler) (*Server, error) {
	if h == nil {
		return nil, errors.New("dnswire: nil handler")
	}
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnswire: listen: %w", err)
	}
	s := &Server{conn: pc, handler: h, done: make(chan struct{})}
	go s.serve()
	return s, nil
}

// Addr returns the server's UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	<-s.done
	return err
}

func (s *Server) serve() {
	defer close(s.done)
	buf := make([]byte, 4096)
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		pkt := append([]byte(nil), buf[:n]...)
		fromAP := addrPortOf(from)
		go s.handle(pkt, from, fromAP)
	}
}

func (s *Server) handle(pkt []byte, raw net.Addr, from netip.AddrPort) {
	q, err := Unpack(pkt)
	if err != nil || q.Response || len(q.Questions) == 0 {
		return // not a usable query; drop
	}
	resp := s.handler.HandleQuery(q, from)
	if resp == nil {
		return
	}
	// Respect the client's UDP payload limit: oversized responses go out
	// truncated so the client retries over TCP (RFC 7766).
	limit := uint16(0)
	if q.EDNS {
		limit = q.UDPSize
	}
	if t, err := TruncateFor(resp, limit); err == nil {
		resp = t
	}
	out, err := resp.Pack()
	if err != nil {
		// Fall back to SERVFAIL so the client does not hang on timeout.
		sf := q.Reply()
		sf.RCode = RCodeServFail
		if out, err = sf.Pack(); err != nil {
			return
		}
	}
	_, _ = s.conn.WriteTo(out, raw)
}

func addrPortOf(a net.Addr) netip.AddrPort {
	if ua, ok := a.(*net.UDPAddr); ok {
		if ap, ok := netip.AddrFromSlice(ua.IP); ok {
			return netip.AddrPortFrom(ap.Unmap(), uint16(ua.Port))
		}
	}
	return netip.AddrPort{}
}

// Exchange sends one query to a UDP DNS server and waits for the matching
// response.
func Exchange(ctx context.Context, server string, q *Message) (*Message, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "udp", server)
	if err != nil {
		return nil, fmt.Errorf("dnswire: dial %s: %w", server, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			return nil, err
		}
	} else if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return nil, err
	}
	pkt, err := q.Pack()
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(pkt); err != nil {
		return nil, fmt.Errorf("dnswire: send: %w", err)
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("dnswire: receive: %w", err)
		}
		resp, err := Unpack(buf[:n])
		if err != nil {
			continue // garbled datagram; keep waiting
		}
		if resp.ID != q.ID || !resp.Response {
			continue // not ours
		}
		return resp, nil
	}
}
