package dnswire

import (
	"net/netip"
	"testing"
)

// FuzzMessageUnpack throws arbitrary bytes at the wire decoder. The
// invariants: Unpack never panics (it parses packets straight off a UDP
// socket), and any message it accepts survives a Pack/Unpack round trip.
// Pack is allowed to reject an accepted message — wire labels may contain
// bytes (embedded dots, empty runs) that the name validator refuses on
// the way back out — but it must not panic either.
func FuzzMessageUnpack(f *testing.F) {
	// Seeds from the unit-test vectors: a plain query, an ECS query, and
	// a response carrying A, AAAA, and compressed names.
	q := NewQuery(0x1234, "beacon.example.com", TypeA)
	if pkt, err := q.Pack(); err == nil {
		f.Add(pkt)
	}
	e := NewQuery(9, "ecs.test", TypeA)
	e.SetECS(netip.MustParseAddr("203.0.113.57"), 24)
	if pkt, err := e.Pack(); err == nil {
		f.Add(pkt)
	}
	r := e.Reply()
	r.Answers = append(r.Answers,
		ARecord("ecs.test", 60, netip.MustParseAddr("192.0.2.1")),
		AAAARecord("ecs.test", 60, netip.MustParseAddr("2001:db8::1")))
	if pkt, err := r.Pack(); err == nil {
		f.Add(pkt)
	}
	// Hand-built adversarial seeds: empty, truncated header, and a name
	// pointer that points at itself (the decoder must bound the chase).
	f.Add([]byte{})
	f.Add([]byte{0x12, 0x34, 0x01, 0x00, 0x00, 0x01})
	f.Add([]byte{
		0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0xc0, 0x0c, // QNAME: pointer to offset 12, i.e. itself
		0x00, 0x01, 0x00, 0x01,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("Unpack(Pack(Unpack(%x))) failed: %v", data, err)
		}
		if m2.ID != m.ID {
			t.Fatalf("ID changed across round trip: %#x -> %#x", m.ID, m2.ID)
		}
		if len(m2.Questions) != len(m.Questions) {
			t.Fatalf("question count changed across round trip: %d -> %d",
				len(m.Questions), len(m2.Questions))
		}
	})
}
