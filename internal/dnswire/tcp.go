package dnswire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"
)

// DNS over TCP (RFC 7766): messages are framed with a two-octet length
// prefix. UDP responses that exceed the client's advertised payload size
// are truncated (TC=1) and the client retries over TCP.

// maxTCPMessage is the framing limit (length prefix is 16 bits).
const maxTCPMessage = 0xffff

// writeTCPMessage frames and writes one message.
func writeTCPMessage(w io.Writer, m *Message) error {
	pkt, err := m.Pack()
	if err != nil {
		return err
	}
	if len(pkt) > maxTCPMessage {
		return fmt.Errorf("dnswire: message too large for TCP framing (%d bytes)", len(pkt))
	}
	buf := make([]byte, 2+len(pkt))
	binary.BigEndian.PutUint16(buf, uint16(len(pkt)))
	copy(buf[2:], pkt)
	_, err = w.Write(buf)
	return err
}

// readTCPMessage reads one framed message.
func readTCPMessage(r io.Reader) (*Message, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	if n < 12 {
		return nil, ErrTruncatedMessage
	}
	pkt := make([]byte, n)
	if _, err := io.ReadFull(r, pkt); err != nil {
		return nil, err
	}
	return Unpack(pkt)
}

// TCPServer serves DNS over TCP.
//
// Lifecycle mirrors Server: every accepted connection runs on a tracked
// goroutine, and Close stops accepting, lets in-flight queries finish
// writing their responses (bounded by the drain timeout), and force-closes
// any connection still open after that.
//
// mu guards the closed flag, drain timeout, and the live-connection set.
// mu is a leaf lock: it is never held while acquiring another mutex or
// blocking on connection I/O, so it imposes no acquisition order
// (verified by the lockorder analyzer's held-lock dataflow).
type TCPServer struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	closed bool
	drain  time.Duration
	conns  map[net.Conn]struct{}

	done     chan struct{}  // accept loop exit
	handlers sync.WaitGroup // per-connection handlers
}

// NewTCPServer starts serving framed DNS on a TCP address.
func NewTCPServer(addr string, h Handler) (*TCPServer, error) {
	if h == nil {
		return nil, errors.New("dnswire: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnswire: listen tcp: %w", err)
	}
	s := &TCPServer{
		ln:      ln,
		handler: h,
		drain:   DefaultDrainTimeout,
		conns:   map[net.Conn]struct{}{},
		done:    make(chan struct{}),
	}
	go s.serve()
	return s, nil
}

// Addr returns the server's TCP address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// SetDrainTimeout bounds how long Close waits for in-flight handlers.
func (s *TCPServer) SetDrainTimeout(d time.Duration) {
	s.mu.Lock()
	s.drain = d
	s.mu.Unlock()
}

// Close stops accepting, drains in-flight queries (each connection
// finishes the query it is serving but takes no new ones), and after the
// drain timeout force-closes whatever is left.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	drain := s.drain
	s.mu.Unlock()
	err := s.ln.Close()
	<-s.done
	// The accept loop has exited, so the connection set is final. Nudge
	// idle connections out of their blocking reads; a handler mid-query
	// still gets its response written before it notices the shutdown.
	s.mu.Lock()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Unix(1, 0)) // wakeup only; the handler exits on the read error
	}
	s.mu.Unlock()
	if !drainWait(&s.handlers, drain) {
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close() // drain timeout expired; abandon the connection
		}
		s.mu.Unlock()
		// Bounded again: a handler stuck inside user code (not a conn
		// read) must not wedge Close forever.
		drainWait(&s.handlers, drain)
	}
	return err
}

func (s *TCPServer) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *TCPServer) serve() {
	defer close(s.done)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // lost the race with Close; refuse the connection
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.handlers.Add(1)
		go func() {
			defer s.handlers.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn processes queries on one connection until EOF, error, or
// server shutdown; RFC 7766 allows multiple queries per connection.
func (s *TCPServer) handleConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close() // teardown; the peer sees EOF either way
	}()
	from := addrPortOfTCP(conn.RemoteAddr())
	for {
		if s.isClosed() {
			return
		}
		if err := conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return
		}
		q, err := readTCPMessage(conn)
		if err != nil {
			return
		}
		if q.Response || len(q.Questions) == 0 {
			continue
		}
		resp := s.handler.HandleQuery(q, from)
		if resp == nil {
			continue
		}
		if err := writeTCPMessage(conn, resp); err != nil {
			return
		}
	}
}

func addrPortOfTCP(a net.Addr) netip.AddrPort {
	if ta, ok := a.(*net.TCPAddr); ok {
		if ap, ok := netip.AddrFromSlice(ta.IP); ok {
			return netip.AddrPortFrom(ap.Unmap(), uint16(ta.Port))
		}
	}
	return netip.AddrPort{}
}

// ExchangeTCP sends one query over TCP and reads the matching response.
// Timeouts are retried with backoff on a fresh connection; ctx
// cancellation interrupts an in-flight read immediately.
func ExchangeTCP(ctx context.Context, server string, q *Message) (*Message, error) {
	return ExchangeTCPWithConfig(ctx, server, q, ExchangeConfig{})
}

// ExchangeTCPWithConfig is ExchangeTCP with explicit retry/timeout tuning.
func ExchangeTCPWithConfig(ctx context.Context, server string, q *Message, cfg ExchangeConfig) (*Message, error) {
	return exchangeRetry(ctx, cfg, func(timeout time.Duration) (*Message, error) {
		return exchangeTCPOnce(ctx, server, q, timeout)
	})
}

// exchangeTCPOnce performs a single dial-send-receive attempt over TCP.
func exchangeTCPOnce(ctx context.Context, server string, q *Message, timeout time.Duration) (*Message, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", server)
	if err != nil {
		return nil, fmt.Errorf("dnswire: dial tcp %s: %w", server, err)
	}
	defer conn.Close()
	stop := watchCancel(ctx, conn)
	defer stop()
	if err := conn.SetDeadline(attemptDeadline(ctx, timeout)); err != nil {
		return nil, err
	}
	if err := writeTCPMessage(conn, q); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("dnswire: send tcp: %w", err)
	}
	for {
		resp, err := readTCPMessage(conn)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("dnswire: receive tcp: %w", err)
		}
		if resp.ID != q.ID || !resp.Response {
			continue
		}
		return resp, nil
	}
}

// ExchangeWithFallback queries over UDP and retries over TCP when the
// response arrives truncated (TC=1), per RFC 7766. tcpServer may be empty
// to reuse the UDP server address. A response that is still truncated
// after the TCP retry is returned as-is — there is no bigger transport to
// escalate to, and looping would never terminate.
func ExchangeWithFallback(ctx context.Context, udpServer, tcpServer string, q *Message) (*Message, error) {
	resp, err := Exchange(ctx, udpServer, q)
	if err != nil {
		return nil, err
	}
	if !resp.Truncated {
		return resp, nil
	}
	if tcpServer == "" {
		tcpServer = udpServer
	}
	return ExchangeTCP(ctx, tcpServer, q)
}

// TruncateFor prepares a response for a UDP client whose advertised
// payload size (or the 512-byte classic default) the packed response
// exceeds: answers are dropped and TC is set, telling the client to retry
// over TCP. It returns the (possibly truncated) message to send.
func TruncateFor(resp *Message, udpSize uint16) (*Message, error) {
	if udpSize == 0 {
		udpSize = 512
	}
	pkt, err := resp.Pack()
	if err != nil {
		return nil, err
	}
	if len(pkt) <= int(udpSize) {
		return resp, nil
	}
	t := *resp
	t.Truncated = true
	t.Answers = nil
	t.Authorities = nil
	t.Additionals = nil
	return &t, nil
}
