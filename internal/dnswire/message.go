// Package dnswire implements a from-scratch DNS wire codec (RFC 1035)
// with EDNS0 (RFC 6891) and the Client Subnet option (RFC 7871), plus a
// UDP authoritative server and a caching stub resolver.
//
// It is the protocol substrate of the live loopback testbed
// (internal/testbed): the testbed's authoritative nameserver speaks this
// codec to return either the anycast VIP or a predictor-chosen unicast
// front-end, exactly the redirection machinery §6 of the paper proposes.
//
// Scope: queries with one question; A/AAAA/CNAME/TXT answers; name
// compression is decoded but never emitted.
package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Record types supported by the codec.
const (
	TypeA     uint16 = 1
	TypeCNAME uint16 = 5
	TypeTXT   uint16 = 16
	TypeAAAA  uint16 = 28
	TypeOPT   uint16 = 41
)

// ClassIN is the Internet class.
const ClassIN uint16 = 1

// Response codes.
const (
	RCodeSuccess  = 0
	RCodeFormErr  = 1
	RCodeServFail = 2
	RCodeNXDomain = 3
	RCodeNotImpl  = 4
	RCodeRefused  = 5
)

// Errors returned by the codec.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrBadName          = errors.New("dnswire: malformed name")
	ErrBadPointer       = errors.New("dnswire: bad compression pointer")
	ErrNameTooLong      = errors.New("dnswire: name too long")
)

// Question is a DNS question.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Record is a resource record with raw RDATA. Use the typed constructors
// and accessors for A/AAAA records.
type Record struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// ARecord builds an A record.
func ARecord(name string, ttl uint32, addr netip.Addr) Record {
	a4 := addr.As4()
	return Record{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, Data: a4[:]}
}

// AAAARecord builds an AAAA record.
func AAAARecord(name string, ttl uint32, addr netip.Addr) Record {
	a16 := addr.As16()
	return Record{Name: name, Type: TypeAAAA, Class: ClassIN, TTL: ttl, Data: a16[:]}
}

// Addr extracts the address of an A or AAAA record.
func (r Record) Addr() (netip.Addr, bool) {
	switch r.Type {
	case TypeA:
		if len(r.Data) == 4 {
			return netip.AddrFrom4([4]byte(r.Data)), true
		}
	case TypeAAAA:
		if len(r.Data) == 16 {
			return netip.AddrFrom16([16]byte(r.Data)), true
		}
	}
	return netip.Addr{}, false
}

// ECS is the EDNS Client Subnet option (RFC 7871).
type ECS struct {
	// SourcePrefixLen is how many address bits the client revealed.
	SourcePrefixLen uint8
	// ScopePrefixLen is set by the server in responses.
	ScopePrefixLen uint8
	// Addr is the client subnet address (host bits zero).
	Addr netip.Addr
}

// Message is a DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              uint8

	Questions   []Question
	Answers     []Record
	Authorities []Record
	Additionals []Record

	// EDNS reports whether an OPT record was present; UDPSize is its
	// advertised payload size.
	EDNS    bool
	UDPSize uint16
	// ClientSubnet carries the ECS option when present.
	ClientSubnet *ECS
}

// NewQuery builds a recursion-desired query for one question.
func NewQuery(id uint16, name string, qtype uint16) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// SetECS attaches a client-subnet option covering the /bits prefix of
// addr.
func (m *Message) SetECS(addr netip.Addr, bits uint8) {
	m.EDNS = true
	if m.UDPSize == 0 {
		m.UDPSize = 1232
	}
	p, err := addr.Prefix(int(bits))
	if err != nil {
		p = netip.PrefixFrom(addr, int(bits))
	}
	m.ClientSubnet = &ECS{SourcePrefixLen: bits, Addr: p.Addr()}
}

// Reply builds a response skeleton echoing the query's ID, question and
// EDNS state.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:                 m.ID,
		Response:           true,
		Opcode:             m.Opcode,
		Authoritative:      true,
		RecursionDesired:   m.RecursionDesired,
		RecursionAvailable: false,
		Questions:          append([]Question(nil), m.Questions...),
		EDNS:               m.EDNS,
		UDPSize:            m.UDPSize,
	}
	if m.ClientSubnet != nil {
		cs := *m.ClientSubnet
		cs.ScopePrefixLen = cs.SourcePrefixLen
		r.ClientSubnet = &cs
	}
	return r
}

// normalizeName lowercases and strips a single trailing dot.
func normalizeName(name string) string {
	name = strings.ToLower(name)
	if len(name) > 1 && strings.HasSuffix(name, ".") {
		name = name[:len(name)-1]
	}
	return name
}

// packName appends the uncompressed wire form of name.
func packName(b []byte, name string) ([]byte, error) {
	name = normalizeName(name)
	if name == "" || name == "." {
		return append(b, 0), nil
	}
	if len(name) > 253 {
		return nil, ErrNameTooLong
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, ErrBadName
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

// unpackName decodes a possibly compressed name starting at off,
// returning the name and the offset just past it in the original stream.
func unpackName(msg []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	next := -1 // offset after the first pointer
	hops := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		c := int(msg[off])
		switch {
		case c == 0:
			off++
			if !jumped {
				next = off
			}
			name := strings.Join(labels, ".")
			if name == "" {
				name = "."
			}
			return name, next, nil
		case c&0xc0 == 0xc0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := (c&0x3f)<<8 | int(msg[off+1])
			if !jumped {
				next = off + 2
				jumped = true
			}
			if ptr >= off {
				return "", 0, ErrBadPointer
			}
			off = ptr
			hops++
			if hops > 32 {
				return "", 0, ErrBadPointer
			}
		case c&0xc0 != 0:
			return "", 0, ErrBadName
		default:
			if off+1+c > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			labels = append(labels, string(msg[off+1:off+1+c]))
			off += 1 + c
			if len(labels) > 128 {
				return "", 0, ErrBadName
			}
		}
	}
}

func put16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func put32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Pack serializes the message.
func (m *Message) Pack() ([]byte, error) {
	b := make([]byte, 0, 512)
	b = put16(b, m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xf) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode & 0xf)
	b = put16(b, flags)
	additionals := m.Additionals
	if m.EDNS {
		opt, err := m.packOPT()
		if err != nil {
			return nil, err
		}
		additionals = append(append([]Record(nil), additionals...), opt)
	}
	b = put16(b, uint16(len(m.Questions)))
	b = put16(b, uint16(len(m.Answers)))
	b = put16(b, uint16(len(m.Authorities)))
	b = put16(b, uint16(len(additionals)))
	var err error
	for _, q := range m.Questions {
		if b, err = packName(b, q.Name); err != nil {
			return nil, err
		}
		b = put16(b, q.Type)
		b = put16(b, q.Class)
	}
	for _, sec := range [][]Record{m.Answers, m.Authorities, additionals} {
		for _, r := range sec {
			if b, err = packRecord(b, r); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func packRecord(b []byte, r Record) ([]byte, error) {
	b, err := packName(b, r.Name)
	if err != nil {
		return nil, err
	}
	b = put16(b, r.Type)
	b = put16(b, r.Class)
	b = put32(b, r.TTL)
	if len(r.Data) > 0xffff {
		return nil, fmt.Errorf("dnswire: rdata too long (%d bytes)", len(r.Data))
	}
	b = put16(b, uint16(len(r.Data)))
	return append(b, r.Data...), nil
}

// packOPT builds the OPT pseudo-record carrying EDNS state.
func (m *Message) packOPT() (Record, error) {
	size := m.UDPSize
	if size == 0 {
		size = 1232
	}
	r := Record{Name: ".", Type: TypeOPT, Class: size}
	if cs := m.ClientSubnet; cs != nil {
		family := uint16(1)
		addrBytes := 4
		if cs.Addr.Is6() && !cs.Addr.Is4In6() {
			family = 2
			addrBytes = 16
		}
		n := (int(cs.SourcePrefixLen) + 7) / 8
		if n > addrBytes {
			return Record{}, fmt.Errorf("dnswire: ECS prefix length %d too long", cs.SourcePrefixLen)
		}
		var raw []byte
		if family == 1 {
			a := cs.Addr.Unmap().As4()
			raw = a[:n]
		} else {
			a := cs.Addr.As16()
			raw = a[:n]
		}
		var opt []byte
		opt = put16(opt, 8) // OPTION-CODE: edns-client-subnet
		opt = put16(opt, uint16(4+n))
		opt = put16(opt, family)
		opt = append(opt, cs.SourcePrefixLen, cs.ScopePrefixLen)
		opt = append(opt, raw...)
		r.Data = opt
	}
	return r, nil
}

// Unpack parses a wire message.
func Unpack(msg []byte) (*Message, error) {
	if len(msg) < 12 {
		return nil, ErrTruncatedMessage
	}
	m := &Message{}
	m.ID = uint16(msg[0])<<8 | uint16(msg[1])
	flags := uint16(msg[2])<<8 | uint16(msg[3])
	m.Response = flags&(1<<15) != 0
	m.Opcode = uint8(flags >> 11 & 0xf)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = uint8(flags & 0xf)
	qd := int(uint16(msg[4])<<8 | uint16(msg[5]))
	an := int(uint16(msg[6])<<8 | uint16(msg[7]))
	ns := int(uint16(msg[8])<<8 | uint16(msg[9]))
	ar := int(uint16(msg[10])<<8 | uint16(msg[11]))
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(msg) {
			return nil, ErrTruncatedMessage
		}
		q.Type = uint16(msg[off])<<8 | uint16(msg[off+1])
		q.Class = uint16(msg[off+2])<<8 | uint16(msg[off+3])
		off += 4
		m.Questions = append(m.Questions, q)
	}
	sections := []struct {
		count int
		dst   *[]Record
	}{{an, &m.Answers}, {ns, &m.Authorities}, {ar, &m.Additionals}}
	for _, sec := range sections {
		for i := 0; i < sec.count; i++ {
			var r Record
			r, off, err = unpackRecord(msg, off)
			if err != nil {
				return nil, err
			}
			if r.Type == TypeOPT {
				m.EDNS = true
				m.UDPSize = r.Class
				if cs, ok := parseECS(r.Data); ok {
					m.ClientSubnet = &cs
				}
				continue
			}
			*sec.dst = append(*sec.dst, r)
		}
	}
	return m, nil
}

func unpackRecord(msg []byte, off int) (Record, int, error) {
	var r Record
	var err error
	r.Name, off, err = unpackName(msg, off)
	if err != nil {
		return r, 0, err
	}
	if off+10 > len(msg) {
		return r, 0, ErrTruncatedMessage
	}
	r.Type = uint16(msg[off])<<8 | uint16(msg[off+1])
	r.Class = uint16(msg[off+2])<<8 | uint16(msg[off+3])
	r.TTL = uint32(msg[off+4])<<24 | uint32(msg[off+5])<<16 | uint32(msg[off+6])<<8 | uint32(msg[off+7])
	rdlen := int(uint16(msg[off+8])<<8 | uint16(msg[off+9]))
	off += 10
	if off+rdlen > len(msg) {
		return r, 0, ErrTruncatedMessage
	}
	r.Data = append([]byte(nil), msg[off:off+rdlen]...)
	return r, off + rdlen, nil
}

// parseECS decodes an EDNS option block looking for client-subnet.
func parseECS(data []byte) (ECS, bool) {
	off := 0
	for off+4 <= len(data) {
		code := uint16(data[off])<<8 | uint16(data[off+1])
		length := int(uint16(data[off+2])<<8 | uint16(data[off+3]))
		off += 4
		if off+length > len(data) {
			return ECS{}, false
		}
		if code != 8 {
			off += length
			continue
		}
		opt := data[off : off+length]
		if len(opt) < 4 {
			return ECS{}, false
		}
		family := uint16(opt[0])<<8 | uint16(opt[1])
		cs := ECS{SourcePrefixLen: opt[2], ScopePrefixLen: opt[3]}
		raw := opt[4:]
		switch family {
		case 1:
			var a4 [4]byte
			if len(raw) > 4 {
				return ECS{}, false
			}
			copy(a4[:], raw)
			cs.Addr = netip.AddrFrom4(a4)
		case 2:
			var a16 [16]byte
			if len(raw) > 16 {
				return ECS{}, false
			}
			copy(a16[:], raw)
			cs.Addr = netip.AddrFrom16(a16)
		default:
			return ECS{}, false
		}
		return cs, true
	}
	return ECS{}, false
}
