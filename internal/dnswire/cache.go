package dnswire

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"
)

// CachingResolver is a stub resolver with a positive TTL cache, mirroring
// the LDNS behaviour the paper's beacon depends on: the warm-up request
// populates the cache so the measured fetch pays no DNS latency (§3.2.2),
// and short TTLs are how DNS-based redirection stays responsive (§2).
//
// Locking contract: all mutable state (cache, counters, in-flight table,
// rng) is guarded by mu; counters are exposed only through Stats(), which
// snapshots under the same mutex. Concurrent cache misses for one key are
// collapsed into a single upstream exchange (singleflight); waiters share
// the leader's result or error, and a waiter whose own ctx is canceled
// abandons the wait with ctx.Err().
type CachingResolver struct {
	// Server is the upstream authoritative address.
	Server string
	// Now allows tests to control time; defaults to time.Now.
	Now func() time.Time
	// MaxTTL caps cached lifetimes.
	MaxTTL time.Duration
	// Config tunes upstream exchanges (retry, per-attempt timeout).
	Config ExchangeConfig

	mu       sync.Mutex
	cache    map[cacheKey]cacheEntry
	inflight map[cacheKey]*inflightLookup
	rng      *rand.Rand

	lookups   int
	cacheHits int
}

// CacheStats is a snapshot of resolver activity counters.
type CacheStats struct {
	// Lookups counts Lookup calls.
	Lookups int
	// CacheHits counts lookups served from a fresh cache entry.
	CacheHits int
}

type cacheKey struct {
	name  string
	qtype uint16
}

type cacheEntry struct {
	addrs   []netip.Addr
	expires time.Time
}

// inflightLookup is one in-progress upstream fetch; done is closed once
// addrs/err are final.
type inflightLookup struct {
	done  chan struct{}
	addrs []netip.Addr
	err   error
}

// NewCachingResolver builds a resolver against an authoritative server
// address.
func NewCachingResolver(server string) *CachingResolver {
	return &CachingResolver{
		Server:   server,
		Now:      time.Now,
		MaxTTL:   time.Hour,
		cache:    map[cacheKey]cacheEntry{},
		inflight: map[cacheKey]*inflightLookup{},
		rng:      rand.New(rand.NewSource(1)),
	}
}

// Stats snapshots the activity counters under the resolver's mutex.
func (r *CachingResolver) Stats() CacheStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return CacheStats{Lookups: r.lookups, CacheHits: r.cacheHits}
}

// Lookup resolves name/qtype, serving from cache while entries are fresh.
// ecs optionally attaches a client-subnet option (nil to omit). Concurrent
// misses for the same key share one upstream query.
func (r *CachingResolver) Lookup(ctx context.Context, name string, qtype uint16, ecs *netip.Addr) ([]netip.Addr, error) {
	name = normalizeName(name)
	key := cacheKey{name, qtype}
	now := r.Now()
	r.mu.Lock()
	r.lookups++
	if e, ok := r.cache[key]; ok && now.Before(e.expires) {
		r.cacheHits++
		addrs := append([]netip.Addr(nil), e.addrs...)
		r.mu.Unlock()
		return addrs, nil
	}
	if call, ok := r.inflight[key]; ok {
		// Another goroutine is already fetching this key; wait for its
		// result instead of stampeding the upstream.
		r.mu.Unlock()
		select {
		case <-call.done:
			if call.err != nil {
				return nil, call.err
			}
			return append([]netip.Addr(nil), call.addrs...), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &inflightLookup{done: make(chan struct{})}
	if r.inflight == nil {
		r.inflight = map[cacheKey]*inflightLookup{}
	}
	r.inflight[key] = call
	id := uint16(r.rng.Intn(1 << 16))
	r.mu.Unlock()

	addrs, err := r.fetch(ctx, id, key, ecs, now)
	call.addrs, call.err = addrs, err
	r.mu.Lock()
	delete(r.inflight, key)
	r.mu.Unlock()
	close(call.done)
	return addrs, err
}

// fetch performs the upstream exchange for key and caches a successful
// answer.
func (r *CachingResolver) fetch(ctx context.Context, id uint16, key cacheKey, ecs *netip.Addr, now time.Time) ([]netip.Addr, error) {
	q := NewQuery(id, key.name, key.qtype)
	if ecs != nil {
		bits := uint8(24)
		if ecs.Is6() && !ecs.Is4In6() {
			bits = 56
		}
		q.SetECS(*ecs, bits)
	}
	resp, err := ExchangeWithConfig(ctx, r.Server, q, r.Config)
	if err != nil {
		return nil, err
	}
	if resp.RCode != RCodeSuccess {
		return nil, fmt.Errorf("dnswire: %s: rcode %d", key.name, resp.RCode)
	}
	var addrs []netip.Addr
	minTTL := uint32(0)
	for _, rec := range resp.Answers {
		if rec.Type != key.qtype || normalizeName(rec.Name) != key.name {
			continue
		}
		if a, ok := rec.Addr(); ok {
			addrs = append(addrs, a)
			if minTTL == 0 || rec.TTL < minTTL {
				minTTL = rec.TTL
			}
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dnswire: %s: no %d answers", key.name, key.qtype)
	}
	ttl := time.Duration(minTTL) * time.Second
	if ttl > r.MaxTTL {
		ttl = r.MaxTTL
	}
	if ttl > 0 {
		r.mu.Lock()
		r.cache[key] = cacheEntry{addrs: append([]netip.Addr(nil), addrs...), expires: now.Add(ttl)}
		r.mu.Unlock()
	}
	return addrs, nil
}

// Flush drops all cached entries.
func (r *CachingResolver) Flush() {
	r.mu.Lock()
	r.cache = map[cacheKey]cacheEntry{}
	r.mu.Unlock()
}
