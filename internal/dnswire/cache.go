package dnswire

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"
)

// CachingResolver is a stub resolver with a positive TTL cache, mirroring
// the LDNS behaviour the paper's beacon depends on: the warm-up request
// populates the cache so the measured fetch pays no DNS latency (§3.2.2),
// and short TTLs are how DNS-based redirection stays responsive (§2).
type CachingResolver struct {
	// Server is the upstream authoritative address.
	Server string
	// Now allows tests to control time; defaults to time.Now.
	Now func() time.Time
	// MaxTTL caps cached lifetimes.
	MaxTTL time.Duration

	mu    sync.Mutex
	cache map[cacheKey]cacheEntry
	rng   *rand.Rand

	// Lookups and CacheHits count resolver activity.
	Lookups   int
	CacheHits int
}

type cacheKey struct {
	name  string
	qtype uint16
}

type cacheEntry struct {
	addrs   []netip.Addr
	expires time.Time
}

// NewCachingResolver builds a resolver against an authoritative server
// address.
func NewCachingResolver(server string) *CachingResolver {
	return &CachingResolver{
		Server: server,
		Now:    time.Now,
		MaxTTL: time.Hour,
		cache:  map[cacheKey]cacheEntry{},
		rng:    rand.New(rand.NewSource(1)),
	}
}

// Lookup resolves name/qtype, serving from cache while entries are fresh.
// ecs optionally attaches a client-subnet option (nil to omit).
func (r *CachingResolver) Lookup(ctx context.Context, name string, qtype uint16, ecs *netip.Addr) ([]netip.Addr, error) {
	name = normalizeName(name)
	key := cacheKey{name, qtype}
	now := r.Now()
	r.mu.Lock()
	r.Lookups++
	if e, ok := r.cache[key]; ok && now.Before(e.expires) {
		r.CacheHits++
		addrs := append([]netip.Addr(nil), e.addrs...)
		r.mu.Unlock()
		return addrs, nil
	}
	id := uint16(r.rng.Intn(1 << 16))
	r.mu.Unlock()

	q := NewQuery(id, name, qtype)
	if ecs != nil {
		bits := uint8(24)
		if ecs.Is6() && !ecs.Is4In6() {
			bits = 56
		}
		q.SetECS(*ecs, bits)
	}
	resp, err := Exchange(ctx, r.Server, q)
	if err != nil {
		return nil, err
	}
	if resp.RCode != RCodeSuccess {
		return nil, fmt.Errorf("dnswire: %s: rcode %d", name, resp.RCode)
	}
	var addrs []netip.Addr
	minTTL := uint32(0)
	for _, rec := range resp.Answers {
		if rec.Type != qtype || normalizeName(rec.Name) != name {
			continue
		}
		if a, ok := rec.Addr(); ok {
			addrs = append(addrs, a)
			if minTTL == 0 || rec.TTL < minTTL {
				minTTL = rec.TTL
			}
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dnswire: %s: no %d answers", name, qtype)
	}
	ttl := time.Duration(minTTL) * time.Second
	if ttl > r.MaxTTL {
		ttl = r.MaxTTL
	}
	if ttl > 0 {
		r.mu.Lock()
		r.cache[key] = cacheEntry{addrs: append([]netip.Addr(nil), addrs...), expires: now.Add(ttl)}
		r.mu.Unlock()
	}
	return addrs, nil
}

// Flush drops all cached entries.
func (r *CachingResolver) Flush() {
	r.mu.Lock()
	r.cache = map[cacheKey]cacheEntry{}
	r.mu.Unlock()
}
