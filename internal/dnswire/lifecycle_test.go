package dnswire

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// TestServerCloseDrainsInFlightHandlers is the drain-on-Close regression
// test: it parks a flood of handlers mid-query, releases them while Close
// runs, and then reads handler-side state WITHOUT synchronization. The
// seed server returned from Close while handlers were still running, so
// this read raced (caught by -race) and undercounted; with the WaitGroup
// drain, every handler happens-before Close's return.
func TestServerCloseDrainsInFlightHandlers(t *testing.T) {
	const n = 20
	entered := make(chan struct{}, n)
	release := make(chan struct{})
	var mu sync.Mutex
	served := 0
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message {
		entered <- struct{}{}
		<-release
		time.Sleep(5 * time.Millisecond) // keep the handler in flight while Close runs
		mu.Lock()
		served++
		mu.Unlock()
		return q.Reply()
	})
	s, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < n; i++ {
		pkt, err := NewQuery(uint16(i), "drain.test", TypeA).Pack()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		<-entered
	}
	close(release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Deliberately unsynchronized: Close's drain is the only thing
	// ordering the handler writes before this read.
	if served != n {
		t.Fatalf("Close returned with %d/%d handlers drained", served, n)
	}
}

// TestTCPServerCloseDrainsInFlightQueries is the TCP twin: each
// connection's in-flight query must finish (and its response be written)
// before Close returns.
func TestTCPServerCloseDrainsInFlightQueries(t *testing.T) {
	const n = 10
	entered := make(chan struct{}, n)
	release := make(chan struct{})
	var mu sync.Mutex
	served := 0
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message {
		entered <- struct{}{}
		<-release
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		served++
		mu.Unlock()
		return q.Reply()
	})
	s, err := NewTCPServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]net.Conn, 0, n)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for i := 0; i < n; i++ {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		if err := writeTCPMessage(c, NewQuery(uint16(i), "draintcp.test", TypeA)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		<-entered
	}
	close(release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if served != n {
		t.Fatalf("Close returned with %d/%d in-flight queries drained", served, n)
	}
	// The drained responses must actually have been written before the
	// connections were torn down.
	for i, c := range conns {
		resp, err := readTCPMessage(c)
		if err != nil {
			t.Fatalf("conn %d: response not written before close: %v", i, err)
		}
		if resp.ID != uint16(i) {
			t.Fatalf("conn %d: response ID %d", i, resp.ID)
		}
	}
}

// TestTCPServerCloseBoundedByDrainTimeout pins the other side of the
// contract: a handler wedged in user code cannot hold Close hostage
// beyond the configured drain timeout.
func TestTCPServerCloseBoundedByDrainTimeout(t *testing.T) {
	stuck := make(chan struct{})
	entered := make(chan struct{})
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message {
		close(entered)
		<-stuck // wedged until the test ends
		return nil
	})
	s, err := NewTCPServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	s.SetDrainTimeout(50 * time.Millisecond)
	defer close(stuck)
	c, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := writeTCPMessage(c, NewQuery(1, "stuck.test", TypeA)); err != nil {
		t.Fatal(err)
	}
	<-entered
	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v with a wedged handler; drain timeout must bound it", elapsed)
	}
}

// TestExchangeReturnsCtxErrOnCancel asserts the cancellation contract:
// canceling the ctx interrupts the blocked read immediately (well under
// the 5 s fallback deadline the seed rode out) and surfaces ctx.Err().
func TestExchangeReturnsCtxErrOnCancel(t *testing.T) {
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message { return nil }) // never answers
	s := startServer(t, h)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := Exchange(ctx, s.Addr(), NewQuery(7, "cancel.test", TypeA))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// ~10ms cancel + wakeup; allow generous CI slack but stay far below
	// the 5s fallback deadline.
	if elapsed > time.Second {
		t.Fatalf("Exchange returned %v after cancellation; the read must be interrupted", elapsed)
	}
}

// TestExchangeGarbledDatagramsHonorCancel reproduces the seed bug where a
// garbled datagram put Exchange back into a blocking read that ignored
// cancellation until the fallback deadline.
func TestExchangeGarbledDatagramsHonorCancel(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 512)
		for {
			_, from, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			// Reply with something that is not DNS; Exchange must loop
			// back into its read rather than erroring out.
			_, _ = pc.WriteTo([]byte("not dns at all"), from)
		}
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err = Exchange(ctx, pc.LocalAddr().String(), NewQuery(9, "garbled.test", TypeA))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("Exchange swallowed garbled datagrams for %v after cancellation", elapsed)
	}
}

// dropFirstHandler stays silent for the first query of each ID and
// answers retries, exercising the retry-with-backoff path.
type dropFirstHandler struct {
	addr netip.Addr

	mu      sync.Mutex
	seen    map[uint16]int
	queries int
}

func (h *dropFirstHandler) HandleQuery(q *Message, _ netip.AddrPort) *Message {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seen == nil {
		h.seen = map[uint16]int{}
	}
	h.seen[q.ID]++
	h.queries++
	if h.seen[q.ID] == 1 {
		return nil // drop the first attempt
	}
	r := q.Reply()
	r.Answers = append(r.Answers, ARecord(q.Questions[0].Name, 30, h.addr))
	return r
}

func (h *dropFirstHandler) total() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.queries
}

func TestExchangeRetriesOnTimeout(t *testing.T) {
	h := &dropFirstHandler{addr: netip.MustParseAddr("192.0.2.8")}
	s := startServer(t, h)
	cfg := ExchangeConfig{Attempts: 3, Timeout: 200 * time.Millisecond, Backoff: 10 * time.Millisecond}
	resp, err := ExchangeWithConfig(context.Background(), s.Addr(), NewQuery(11, "retry.test", TypeA), cfg)
	if err != nil {
		t.Fatalf("retry should recover from one dropped datagram: %v", err)
	}
	if a, ok := resp.Answers[0].Addr(); !ok || a != h.addr {
		t.Fatalf("answer = %v", resp.Answers)
	}
	if got := h.total(); got != 2 {
		t.Fatalf("server saw %d queries, want 2 (drop + retry)", got)
	}
}

func TestExchangeRetryExhaustionReportsTimeout(t *testing.T) {
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message { return nil })
	s := startServer(t, h)
	cfg := ExchangeConfig{Attempts: 2, Timeout: 50 * time.Millisecond, Backoff: 5 * time.Millisecond}
	_, err := ExchangeWithConfig(context.Background(), s.Addr(), NewQuery(12, "dead.test", TypeA), cfg)
	if err == nil {
		t.Fatal("exchange against a silent server must fail")
	}
	if !isTimeoutErr(err) {
		t.Fatalf("exhaustion error should preserve the timeout cause: %v", err)
	}
}

// slowHandler delays every answer, holding the singleflight window open.
type slowHandler struct {
	addr    netip.Addr
	delay   time.Duration
	queries int
	mu      sync.Mutex
}

func (h *slowHandler) HandleQuery(q *Message, _ netip.AddrPort) *Message {
	h.mu.Lock()
	h.queries++
	h.mu.Unlock()
	time.Sleep(h.delay)
	r := q.Reply()
	r.Answers = append(r.Answers, ARecord(q.Questions[0].Name, 60, h.addr))
	return r
}

func (h *slowHandler) total() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.queries
}

// TestCachingResolverSingleflight asserts that concurrent misses for one
// key collapse into a single upstream query instead of a stampede.
func TestCachingResolverSingleflight(t *testing.T) {
	h := &slowHandler{addr: netip.MustParseAddr("192.0.2.20"), delay: 100 * time.Millisecond}
	s := startServer(t, h)
	r := NewCachingResolver(s.Addr())
	const n = 8
	var wg sync.WaitGroup
	addrs := make([][]netip.Addr, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addrs[i], errs[i] = r.Lookup(context.Background(), "flight.test", TypeA, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("lookup %d: %v", i, errs[i])
		}
		if len(addrs[i]) != 1 || addrs[i][0] != h.addr {
			t.Fatalf("lookup %d: addrs = %v", i, addrs[i])
		}
	}
	if got := h.total(); got != 1 {
		t.Fatalf("upstream saw %d queries for one key, want 1 (singleflight)", got)
	}
	if st := r.Stats(); st.Lookups != n {
		t.Fatalf("stats lookups = %d, want %d", st.Lookups, n)
	}
}

// TestCachingResolverSingleflightWaiterCancel: a waiter whose own ctx is
// canceled abandons the shared flight instead of blocking on the leader.
func TestCachingResolverSingleflightWaiterCancel(t *testing.T) {
	h := &slowHandler{addr: netip.MustParseAddr("192.0.2.21"), delay: 300 * time.Millisecond}
	s := startServer(t, h)
	r := NewCachingResolver(s.Addr())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := r.Lookup(context.Background(), "waiters.test", TypeA, nil)
		leaderErr <- err
	}()
	// Give the leader time to register the in-flight entry.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	start := time.Now()
	_, err := r.Lookup(ctx, "waiters.test", TypeA, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("canceled waiter blocked %v on the leader's flight", elapsed)
	}
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader lookup: %v", err)
	}
}

// TestCachingResolverStatsUnderConcurrency hammers Lookup and Stats
// concurrently; the race detector gate (-race) verifies the counters are
// only ever touched under the mutex.
func TestCachingResolverStatsUnderConcurrency(t *testing.T) {
	h := &staticHandler{addr: netip.MustParseAddr("192.0.2.22"), ttl: 60}
	s := startServer(t, h)
	r := NewCachingResolver(s.Addr())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := r.Lookup(context.Background(), "stats.test", TypeA, nil); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_ = r.Stats()
			}
		}()
	}
	wg.Wait()
	if st := r.Stats(); st.Lookups != 100 {
		t.Fatalf("lookups = %d, want 100", st.Lookups)
	}
}

// TestServerServfailWithEDNSLimit covers TruncateFor's interaction with
// the SERVFAIL fallback in Server.handle: when the handler's response
// cannot be packed, TruncateFor fails first, handle falls through to
// Pack, and the SERVFAIL degradation must still reach the client.
func TestServerServfailWithEDNSLimit(t *testing.T) {
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message {
		r := q.Reply()
		long := make([]byte, 70) // labels are capped at 63 bytes; this cannot pack
		for i := range long {
			long[i] = 'a'
		}
		r.Answers = append(r.Answers, Record{
			Name: string(long) + ".test", Type: TypeA, Class: ClassIN, TTL: 1,
			Data: []byte{1, 2, 3, 4},
		})
		return r
	})
	s := startServer(t, h)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	q := NewQuery(13, "badpack.test", TypeA)
	q.EDNS = true
	q.UDPSize = 512
	resp, err := Exchange(ctx, s.Addr(), q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != RCodeServFail {
		t.Fatalf("rcode = %d, want SERVFAIL", resp.RCode)
	}
	if resp.Truncated || len(resp.Answers) != 0 {
		t.Fatalf("SERVFAIL fallback should be a bare reply: %+v", resp)
	}
}

// TestExchangeWithFallbackTCPStillTruncated: when the authoritative
// answer carries TC=1 even over TCP, the fallback returns it as-is — no
// larger transport exists and retrying would loop forever.
func TestExchangeWithFallbackTCPStillTruncated(t *testing.T) {
	h := HandlerFunc(func(q *Message, _ netip.AddrPort) *Message {
		r := q.Reply()
		r.Truncated = true
		return r
	})
	udp, err := NewServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	tcp, err := NewTCPServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := ExchangeWithFallback(ctx, udp.Addr(), tcp.Addr(), NewQuery(14, "tc.test", TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatal("a TC=1 TCP response must be surfaced to the caller, not retried")
	}
}
