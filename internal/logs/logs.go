// Package logs models the CDN's passive server logs (§3.2.1): per-request
// records of which front-end served each client, aggregated per client /24
// and day. The front-end affinity analysis of §5 (Figures 7 and 8) runs
// over these logs.
//
// The log is stored column-wise (struct-of-arrays): parallel slices per
// field instead of a slice of row structs. Passive logs are the one
// dataset that scales with prefixes × days — the paper's covers millions
// of client /24s over a month — and the columnar layout cuts a record
// from 48 padded AoS bytes to 28 (the switched flag rides in the
// prev-front-end column's sign bit instead of its own padded byte), keeps
// each analysis touching only the columns it reads, and lets the parallel
// simulation reduce write disjoint indices of shared columns with no
// per-client row buffers. Rows materialize only at the API edge: Append
// and Set take a DayRecord, At and Cursor return one.
package logs

import (
	"sort"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// DayRecord summarizes one client /24's production traffic on one day.
// It is the row view of the columnar log: cheap to materialize (a handful
// of scalar loads), never stored.
type DayRecord struct {
	ClientID uint64
	Day      int
	// FrontEnd is the front-end serving the client at the end of the day.
	FrontEnd topology.SiteID
	// Switched reports whether a route change occurred during the day;
	// PrevFrontEnd is the front-end before the change (it can equal
	// FrontEnd when only the ingress changed).
	Switched     bool
	PrevFrontEnd topology.SiteID
	// Queries is the number of requests the prefix issued that day.
	Queries int
}

// FrontEndChanged reports whether the record represents a visible
// front-end change (the client "landed on multiple front-ends" that day).
func (r DayRecord) FrontEndChanged() bool {
	return r.Switched && r.PrevFrontEnd != r.FrontEnd
}

// switchedBit marks a route change in the packed prev-front-end column.
// Site IDs are small non-negative integers, so the top bit is free.
const switchedBit = uint32(1) << 31

// Log is an append-only columnar collection of day records.
type Log struct {
	clientIDs []uint64
	days      []int32
	frontEnds []topology.SiteID
	// prevPacked holds PrevFrontEnd in the low 31 bits and Switched in
	// the top bit.
	prevPacked []uint32
	queries    []int32
}

// Append adds a record.
func (l *Log) Append(r DayRecord) {
	l.clientIDs = append(l.clientIDs, r.ClientID)
	l.days = append(l.days, int32(r.Day))
	l.frontEnds = append(l.frontEnds, r.FrontEnd)
	l.prevPacked = append(l.prevPacked, packPrev(r))
	l.queries = append(l.queries, int32(r.Queries))
}

func packPrev(r DayRecord) uint32 {
	p := uint32(r.PrevFrontEnd)
	if r.Switched {
		p |= switchedBit
	}
	return p
}

// Grow reserves capacity for n additional records, so bulk loaders (the
// simulation reduce knows its exact row count up front) avoid incremental
// reallocation.
func (l *Log) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(l.clientIDs) - len(l.clientIDs); free < n {
		l.clientIDs = append(make([]uint64, 0, len(l.clientIDs)+n), l.clientIDs...)
		l.days = append(make([]int32, 0, len(l.days)+n), l.days...)
		l.frontEnds = append(make([]topology.SiteID, 0, len(l.frontEnds)+n), l.frontEnds...)
		l.prevPacked = append(make([]uint32, 0, len(l.prevPacked)+n), l.prevPacked...)
		l.queries = append(make([]int32, 0, len(l.queries)+n), l.queries...)
	}
}

// Extend appends n zero records and returns the index of the first, so a
// bulk producer that knows its exact row count can size the log once and
// then fill disjoint index ranges with Set — including concurrently: Set
// calls on distinct indices of an extended log are race-free, which is
// what lets the parallel simulation reduce write worker outputs straight
// into the shared log.
func (l *Log) Extend(n int) int {
	base := len(l.clientIDs)
	if n <= 0 {
		return base
	}
	l.Grow(n)
	l.clientIDs = l.clientIDs[: base+n : base+n]
	l.days = l.days[: base+n : base+n]
	l.frontEnds = l.frontEnds[: base+n : base+n]
	l.prevPacked = l.prevPacked[: base+n : base+n]
	l.queries = l.queries[: base+n : base+n]
	return base
}

// Set overwrites record i.
func (l *Log) Set(i int, r DayRecord) {
	l.clientIDs[i] = r.ClientID
	l.days[i] = int32(r.Day)
	l.frontEnds[i] = r.FrontEnd
	l.prevPacked[i] = packPrev(r)
	l.queries[i] = int32(r.Queries)
}

// Len returns the number of records.
func (l *Log) Len() int { return len(l.clientIDs) }

// At materializes record i as a row.
func (l *Log) At(i int) DayRecord {
	p := l.prevPacked[i]
	return DayRecord{
		ClientID:     l.clientIDs[i],
		Day:          int(l.days[i]),
		FrontEnd:     l.frontEnds[i],
		Switched:     p&switchedBit != 0,
		PrevFrontEnd: topology.SiteID(p &^ switchedBit),
		Queries:      int(l.queries[i]),
	}
}

// frontEndChanged is At(i).FrontEndChanged() without materializing the
// row: the record saw a route change that landed on a different front-end.
func (l *Log) frontEndChanged(i int) bool {
	p := l.prevPacked[i]
	return p&switchedBit != 0 && topology.SiteID(p&^switchedBit) != l.frontEnds[i]
}

// Cursor iterates the log in record order without materializing more than
// one row at a time. Usage:
//
//	for c := l.Cursor(); c.Next(); {
//		r := c.Record()
//		...
//	}
type Cursor struct {
	l *Log
	i int
}

// Cursor returns an iterator positioned before the first record.
func (l *Log) Cursor() Cursor { return Cursor{l: l, i: -1} }

// Next advances to the next record, reporting whether one exists.
func (c *Cursor) Next() bool {
	c.i++
	return c.i < c.l.Len()
}

// Record materializes the current row. Valid only after Next returned
// true.
func (c *Cursor) Record() DayRecord { return c.l.At(c.i) }

// CumulativeSwitched computes Figure 7: for each day in [0, days), the
// fraction of active clients that have seen at least one front-end change
// on any day up to and including it. Clients with no traffic in the window
// are excluded (the paper can only observe clients that appear in logs).
func (l *Log) CumulativeSwitched(days int) []float64 {
	firstChange := map[uint64]int{}
	active := map[uint64]bool{}
	for i := range l.clientIDs {
		day := int(l.days[i])
		if day < 0 || day >= days || l.queries[i] == 0 {
			continue
		}
		active[l.clientIDs[i]] = true
		if l.frontEndChanged(i) {
			if d, ok := firstChange[l.clientIDs[i]]; !ok || day < d {
				firstChange[l.clientIDs[i]] = day
			}
		}
	}
	out := make([]float64, days)
	if len(active) == 0 {
		return out
	}
	perDay := make([]int, days)
	//replay:commutative integer histogram increments; per-day counts are order-independent
	for _, d := range firstChange {
		perDay[d]++
	}
	cum := 0
	for d := 0; d < days; d++ {
		cum += perDay[d]
		out[d] = float64(cum) / float64(len(active))
	}
	return out
}

// SwitchDistancesKm computes Figure 8's sample: for every observable
// front-end change in the log, the distance between the old and new
// front-end sites. Records with zero queries are excluded — a real
// passive log has no row at all for a silent client-day, so a switch
// there is invisible. This is the same observability rule
// CumulativeSwitched applies, keeping Figures 7 and 8 consistent.
func (l *Log) SwitchDistancesKm(b *topology.Backbone) []units.Kilometers {
	var out []units.Kilometers
	for i := range l.clientIDs {
		if l.queries[i] == 0 || !l.frontEndChanged(i) {
			continue
		}
		p := l.prevPacked[i]
		a := b.Site(topology.SiteID(p &^ switchedBit)).Metro.Point
		c := b.Site(l.frontEnds[i]).Metro.Point
		out = append(out, geo.DistanceKm(a, c))
	}
	return out
}

// FrontEndShare returns, per front-end, the fraction of total queries it
// served. Useful for load sanity checks and ablations.
func (l *Log) FrontEndShare() map[topology.SiteID]float64 {
	counts := map[topology.SiteID]int{}
	total := 0
	for i := range l.frontEnds {
		counts[l.frontEnds[i]] += int(l.queries[i])
		total += int(l.queries[i])
	}
	out := make(map[topology.SiteID]float64, len(counts))
	if total == 0 {
		return out
	}
	//replay:commutative each key is written once from an integer count; no cross-key accumulation
	for fe, c := range counts {
		out[fe] = float64(c) / float64(total)
	}
	return out
}

// FrontEndQueriesOnDay totals the queries each front-end served on one
// day — the passive log's view of per-site load, which is what the
// load-management experiments compare against derived capacities. Counts
// accumulate in int64 so a month of surged int32 records cannot
// overflow.
func (l *Log) FrontEndQueriesOnDay(day int) map[topology.SiteID]int64 {
	out := map[topology.SiteID]int64{}
	for i := range l.frontEnds {
		if int(l.days[i]) == day && l.queries[i] > 0 {
			out[l.frontEnds[i]] += int64(l.queries[i])
		}
	}
	return out
}

// PeakFrontEndQueries returns, across the given number of days, the
// busiest (front-end, day) load in the log.
func (l *Log) PeakFrontEndQueries(days int) int64 {
	totals := make(map[int64]int64)
	for i := range l.frontEnds {
		if l.queries[i] > 0 {
			totals[int64(l.frontEnds[i])*int64(days)+int64(l.days[i])] += int64(l.queries[i])
		}
	}
	var peak int64
	//replay:commutative max over values; the maximum is order-independent
	for _, q := range totals {
		if q > peak {
			peak = q
		}
	}
	return peak
}

// ClientDays returns the sorted list of days on which the client appears
// with traffic.
func (l *Log) ClientDays(clientID uint64) []int {
	var out []int
	for i := range l.clientIDs {
		if l.clientIDs[i] == clientID && l.queries[i] > 0 {
			out = append(out, int(l.days[i]))
		}
	}
	sort.Ints(out)
	return out
}
