// Package logs models the CDN's passive server logs (§3.2.1): per-request
// records of which front-end served each client, aggregated per client /24
// and day. The front-end affinity analysis of §5 (Figures 7 and 8) runs
// over these logs.
package logs

import (
	"sort"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// DayRecord summarizes one client /24's production traffic on one day.
type DayRecord struct {
	ClientID uint64
	Day      int
	// FrontEnd is the front-end serving the client at the end of the day.
	FrontEnd topology.SiteID
	// Switched reports whether a route change occurred during the day;
	// PrevFrontEnd is the front-end before the change (it can equal
	// FrontEnd when only the ingress changed).
	Switched     bool
	PrevFrontEnd topology.SiteID
	// Queries is the number of requests the prefix issued that day.
	Queries int
}

// FrontEndChanged reports whether the record represents a visible
// front-end change (the client "landed on multiple front-ends" that day).
func (r DayRecord) FrontEndChanged() bool {
	return r.Switched && r.PrevFrontEnd != r.FrontEnd
}

// Log is an append-only collection of day records.
type Log struct {
	records []DayRecord
}

// Append adds a record.
func (l *Log) Append(r DayRecord) { l.records = append(l.records, r) }

// Grow reserves capacity for n additional records, so bulk loaders (the
// simulation reduce knows its exact row count up front) avoid incremental
// reallocation.
func (l *Log) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(l.records) - len(l.records); free < n {
		grown := make([]DayRecord, len(l.records), len(l.records)+n)
		copy(grown, l.records)
		l.records = grown
	}
}

// Len returns the number of records.
func (l *Log) Len() int { return len(l.records) }

// Records returns the records (shared slice; callers must not modify).
func (l *Log) Records() []DayRecord { return l.records }

// CumulativeSwitched computes Figure 7: for each day in [0, days), the
// fraction of active clients that have seen at least one front-end change
// on any day up to and including it. Clients with no traffic in the window
// are excluded (the paper can only observe clients that appear in logs).
func (l *Log) CumulativeSwitched(days int) []float64 {
	firstChange := map[uint64]int{}
	active := map[uint64]bool{}
	for _, r := range l.records {
		if r.Day < 0 || r.Day >= days || r.Queries == 0 {
			continue
		}
		active[r.ClientID] = true
		if r.FrontEndChanged() {
			if d, ok := firstChange[r.ClientID]; !ok || r.Day < d {
				firstChange[r.ClientID] = r.Day
			}
		}
	}
	out := make([]float64, days)
	if len(active) == 0 {
		return out
	}
	perDay := make([]int, days)
	for _, d := range firstChange {
		perDay[d]++
	}
	cum := 0
	for d := 0; d < days; d++ {
		cum += perDay[d]
		out[d] = float64(cum) / float64(len(active))
	}
	return out
}

// SwitchDistancesKm computes Figure 8's sample: for every front-end change
// in the log, the distance between the old and new front-end sites.
func (l *Log) SwitchDistancesKm(b *topology.Backbone) []units.Kilometers {
	var out []units.Kilometers
	for _, r := range l.records {
		if !r.FrontEndChanged() {
			continue
		}
		a := b.Site(r.PrevFrontEnd).Metro.Point
		c := b.Site(r.FrontEnd).Metro.Point
		out = append(out, geo.DistanceKm(a, c))
	}
	return out
}

// FrontEndShare returns, per front-end, the fraction of total queries it
// served. Useful for load sanity checks and ablations.
func (l *Log) FrontEndShare() map[topology.SiteID]float64 {
	counts := map[topology.SiteID]int{}
	total := 0
	for _, r := range l.records {
		counts[r.FrontEnd] += r.Queries
		total += r.Queries
	}
	out := make(map[topology.SiteID]float64, len(counts))
	if total == 0 {
		return out
	}
	for fe, c := range counts {
		out[fe] = float64(c) / float64(total)
	}
	return out
}

// ClientDays returns the sorted list of days on which the client appears
// with traffic.
func (l *Log) ClientDays(clientID uint64) []int {
	var out []int
	for _, r := range l.records {
		if r.ClientID == clientID && r.Queries > 0 {
			out = append(out, r.Day)
		}
	}
	sort.Ints(out)
	return out
}
