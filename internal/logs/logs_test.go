package logs

import (
	"math"
	"testing"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
)

func backbone(t *testing.T) *topology.Backbone {
	t.Helper()
	b, err := topology.Build([]topology.SiteSpec{
		{Metro: "new-york", FrontEnd: true, Peering: true},
		{Metro: "chicago", FrontEnd: true, Peering: true},
		{Metro: "los-angeles", FrontEnd: true, Peering: true},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFrontEndChanged(t *testing.T) {
	r := DayRecord{Switched: true, PrevFrontEnd: 1, FrontEnd: 2}
	if !r.FrontEndChanged() {
		t.Fatal("switch with different FE should count")
	}
	r = DayRecord{Switched: true, PrevFrontEnd: 2, FrontEnd: 2}
	if r.FrontEndChanged() {
		t.Fatal("ingress-only switch should not count as a front-end change")
	}
	r = DayRecord{Switched: false, PrevFrontEnd: 1, FrontEnd: 2}
	if r.FrontEndChanged() {
		t.Fatal("no switch event means no change")
	}
}

func TestCumulativeSwitched(t *testing.T) {
	var l Log
	// Client 1: changes FE on day 0. Client 2: changes on day 2.
	// Client 3: never changes. Client 4: switch without FE change.
	l.Append(DayRecord{ClientID: 1, Day: 0, FrontEnd: 1, Switched: true, PrevFrontEnd: 0, Queries: 5})
	l.Append(DayRecord{ClientID: 1, Day: 1, FrontEnd: 1, Queries: 5})
	l.Append(DayRecord{ClientID: 2, Day: 0, FrontEnd: 0, Queries: 5})
	l.Append(DayRecord{ClientID: 2, Day: 2, FrontEnd: 2, Switched: true, PrevFrontEnd: 0, Queries: 5})
	l.Append(DayRecord{ClientID: 3, Day: 0, FrontEnd: 0, Queries: 5})
	l.Append(DayRecord{ClientID: 4, Day: 1, FrontEnd: 0, Switched: true, PrevFrontEnd: 0, Queries: 5})
	got := l.CumulativeSwitched(3)
	want := []float64{0.25, 0.25, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("CumulativeSwitched = %v, want %v", got, want)
		}
	}
}

func TestCumulativeSwitchedIgnoresZeroQueryRecords(t *testing.T) {
	var l Log
	l.Append(DayRecord{ClientID: 1, Day: 0, FrontEnd: 1, Switched: true, PrevFrontEnd: 0, Queries: 0})
	got := l.CumulativeSwitched(1)
	if got[0] != 0 {
		t.Fatalf("zero-query client should be invisible, got %v", got)
	}
}

func TestCumulativeSwitchedEmpty(t *testing.T) {
	var l Log
	got := l.CumulativeSwitched(5)
	for _, v := range got {
		if v != 0 {
			t.Fatal("empty log should yield zeros")
		}
	}
}

func TestSwitchDistances(t *testing.T) {
	b := backbone(t)
	var l Log
	l.Append(DayRecord{ClientID: 1, Day: 0, FrontEnd: 1, Switched: true, PrevFrontEnd: 0, Queries: 1})
	l.Append(DayRecord{ClientID: 2, Day: 0, FrontEnd: 2, Switched: true, PrevFrontEnd: 2, Queries: 1}) // no FE change
	l.Append(DayRecord{ClientID: 3, Day: 1, FrontEnd: 0, Queries: 1})
	ds := l.SwitchDistancesKm(b)
	if len(ds) != 1 {
		t.Fatalf("got %d switch distances, want 1", len(ds))
	}
	wantD := geo.DistanceKm(b.Site(0).Metro.Point, b.Site(1).Metro.Point)
	if math.Abs(ds[0].Float()-wantD.Float()) > 1e-9 {
		t.Fatalf("distance %v, want %v", ds[0], wantD)
	}
}

// TestZeroQuerySwitchInvisibleToBothFigures is the regression test for the
// observability rule shared by Figures 7 and 8: a front-end change on a day
// with zero queries produces no passive-log row in a real CDN, so it must be
// excluded from both the cumulative-switch fraction (Figure 7) and the
// switch-distance sample (Figure 8). SwitchDistancesKm used to include it.
func TestZeroQuerySwitchInvisibleToBothFigures(t *testing.T) {
	b := backbone(t)
	var l Log
	// A silent switch (zero queries) and, for contrast, an observed one.
	l.Append(DayRecord{ClientID: 1, Day: 0, FrontEnd: 1, Switched: true, PrevFrontEnd: 0, Queries: 0})
	l.Append(DayRecord{ClientID: 2, Day: 0, FrontEnd: 2, Switched: true, PrevFrontEnd: 0, Queries: 3})
	if got := l.CumulativeSwitched(1); math.Abs(got[0]-1.0) > 1e-9 {
		t.Fatalf("Figure 7: only client 2 is observable and it switched, want fraction 1.0, got %v", got)
	}
	ds := l.SwitchDistancesKm(b)
	if len(ds) != 1 {
		t.Fatalf("Figure 8: zero-query switch must be excluded, got %d distances, want 1", len(ds))
	}
	want := geo.DistanceKm(b.Site(0).Metro.Point, b.Site(2).Metro.Point)
	if math.Abs(ds[0].Float()-want.Float()) > 1e-9 {
		t.Fatalf("Figure 8 kept the wrong switch: distance %v, want %v", ds[0], want)
	}
}

func TestAppendAtRoundTrip(t *testing.T) {
	recs := []DayRecord{
		{ClientID: 7, Day: 3, FrontEnd: 2, Switched: true, PrevFrontEnd: 1, Queries: 11},
		{ClientID: 9, Day: 0, FrontEnd: 0, Switched: false, PrevFrontEnd: 0, Queries: 0},
		{ClientID: 1, Day: 29, FrontEnd: 5, Switched: true, PrevFrontEnd: 5, Queries: 1},
	}
	var l Log
	for _, r := range recs {
		l.Append(r)
	}
	if l.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(recs))
	}
	for i, want := range recs {
		if got := l.At(i); got != want {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want)
		}
	}
}

func TestExtendSetAndCursor(t *testing.T) {
	var l Log
	l.Append(DayRecord{ClientID: 1, Day: 0, Queries: 1})
	base := l.Extend(2)
	if base != 1 {
		t.Fatalf("Extend base = %d, want 1", base)
	}
	if l.Len() != 3 {
		t.Fatalf("Len after Extend = %d, want 3", l.Len())
	}
	want1 := DayRecord{ClientID: 2, Day: 1, FrontEnd: 1, Switched: true, PrevFrontEnd: 0, Queries: 4}
	want2 := DayRecord{ClientID: 3, Day: 2, FrontEnd: 2, Queries: 9}
	l.Set(base+1, want2)
	l.Set(base, want1)
	var got []DayRecord
	for c := l.Cursor(); c.Next(); {
		got = append(got, c.Record())
	}
	want := []DayRecord{{ClientID: 1, Day: 0, Queries: 1}, want1, want2}
	if len(got) != len(want) {
		t.Fatalf("cursor yielded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cursor record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGrowPreservesRecords(t *testing.T) {
	var l Log
	r0 := DayRecord{ClientID: 5, Day: 1, FrontEnd: 1, Switched: true, PrevFrontEnd: 0, Queries: 2}
	l.Append(r0)
	l.Grow(1000)
	if l.Len() != 1 {
		t.Fatalf("Grow changed Len to %d", l.Len())
	}
	if got := l.At(0); got != r0 {
		t.Fatalf("Grow corrupted record: %+v", got)
	}
	l.Grow(-5) // no-op
	l.Append(DayRecord{ClientID: 6, Day: 2, Queries: 3})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestFrontEndShare(t *testing.T) {
	var l Log
	l.Append(DayRecord{ClientID: 1, Day: 0, FrontEnd: 0, Queries: 30})
	l.Append(DayRecord{ClientID: 2, Day: 0, FrontEnd: 1, Queries: 70})
	share := l.FrontEndShare()
	if math.Abs(share[0]-0.3) > 1e-9 || math.Abs(share[1]-0.7) > 1e-9 {
		t.Fatalf("shares = %v", share)
	}
	var empty Log
	if got := empty.FrontEndShare(); len(got) != 0 {
		t.Fatal("empty log should have empty shares")
	}
}

func TestClientDays(t *testing.T) {
	var l Log
	l.Append(DayRecord{ClientID: 1, Day: 3, Queries: 1})
	l.Append(DayRecord{ClientID: 1, Day: 1, Queries: 1})
	l.Append(DayRecord{ClientID: 1, Day: 2, Queries: 0}) // inactive day
	l.Append(DayRecord{ClientID: 2, Day: 0, Queries: 1})
	got := l.ClientDays(1)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ClientDays = %v", got)
	}
}
