package logs

import (
	"math"
	"testing"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
)

func backbone(t *testing.T) *topology.Backbone {
	t.Helper()
	b, err := topology.Build([]topology.SiteSpec{
		{Metro: "new-york", FrontEnd: true, Peering: true},
		{Metro: "chicago", FrontEnd: true, Peering: true},
		{Metro: "los-angeles", FrontEnd: true, Peering: true},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFrontEndChanged(t *testing.T) {
	r := DayRecord{Switched: true, PrevFrontEnd: 1, FrontEnd: 2}
	if !r.FrontEndChanged() {
		t.Fatal("switch with different FE should count")
	}
	r = DayRecord{Switched: true, PrevFrontEnd: 2, FrontEnd: 2}
	if r.FrontEndChanged() {
		t.Fatal("ingress-only switch should not count as a front-end change")
	}
	r = DayRecord{Switched: false, PrevFrontEnd: 1, FrontEnd: 2}
	if r.FrontEndChanged() {
		t.Fatal("no switch event means no change")
	}
}

func TestCumulativeSwitched(t *testing.T) {
	var l Log
	// Client 1: changes FE on day 0. Client 2: changes on day 2.
	// Client 3: never changes. Client 4: switch without FE change.
	l.Append(DayRecord{ClientID: 1, Day: 0, FrontEnd: 1, Switched: true, PrevFrontEnd: 0, Queries: 5})
	l.Append(DayRecord{ClientID: 1, Day: 1, FrontEnd: 1, Queries: 5})
	l.Append(DayRecord{ClientID: 2, Day: 0, FrontEnd: 0, Queries: 5})
	l.Append(DayRecord{ClientID: 2, Day: 2, FrontEnd: 2, Switched: true, PrevFrontEnd: 0, Queries: 5})
	l.Append(DayRecord{ClientID: 3, Day: 0, FrontEnd: 0, Queries: 5})
	l.Append(DayRecord{ClientID: 4, Day: 1, FrontEnd: 0, Switched: true, PrevFrontEnd: 0, Queries: 5})
	got := l.CumulativeSwitched(3)
	want := []float64{0.25, 0.25, 0.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("CumulativeSwitched = %v, want %v", got, want)
		}
	}
}

func TestCumulativeSwitchedIgnoresZeroQueryRecords(t *testing.T) {
	var l Log
	l.Append(DayRecord{ClientID: 1, Day: 0, FrontEnd: 1, Switched: true, PrevFrontEnd: 0, Queries: 0})
	got := l.CumulativeSwitched(1)
	if got[0] != 0 {
		t.Fatalf("zero-query client should be invisible, got %v", got)
	}
}

func TestCumulativeSwitchedEmpty(t *testing.T) {
	var l Log
	got := l.CumulativeSwitched(5)
	for _, v := range got {
		if v != 0 {
			t.Fatal("empty log should yield zeros")
		}
	}
}

func TestSwitchDistances(t *testing.T) {
	b := backbone(t)
	var l Log
	l.Append(DayRecord{ClientID: 1, Day: 0, FrontEnd: 1, Switched: true, PrevFrontEnd: 0, Queries: 1})
	l.Append(DayRecord{ClientID: 2, Day: 0, FrontEnd: 2, Switched: true, PrevFrontEnd: 2, Queries: 1}) // no FE change
	l.Append(DayRecord{ClientID: 3, Day: 1, FrontEnd: 0, Queries: 1})
	ds := l.SwitchDistancesKm(b)
	if len(ds) != 1 {
		t.Fatalf("got %d switch distances, want 1", len(ds))
	}
	wantD := geo.DistanceKm(b.Site(0).Metro.Point, b.Site(1).Metro.Point)
	if math.Abs(ds[0].Float()-wantD.Float()) > 1e-9 {
		t.Fatalf("distance %v, want %v", ds[0], wantD)
	}
}

func TestFrontEndShare(t *testing.T) {
	var l Log
	l.Append(DayRecord{ClientID: 1, Day: 0, FrontEnd: 0, Queries: 30})
	l.Append(DayRecord{ClientID: 2, Day: 0, FrontEnd: 1, Queries: 70})
	share := l.FrontEndShare()
	if math.Abs(share[0]-0.3) > 1e-9 || math.Abs(share[1]-0.7) > 1e-9 {
		t.Fatalf("shares = %v", share)
	}
	var empty Log
	if got := empty.FrontEndShare(); len(got) != 0 {
		t.Fatal("empty log should have empty shares")
	}
}

func TestClientDays(t *testing.T) {
	var l Log
	l.Append(DayRecord{ClientID: 1, Day: 3, Queries: 1})
	l.Append(DayRecord{ClientID: 1, Day: 1, Queries: 1})
	l.Append(DayRecord{ClientID: 1, Day: 2, Queries: 0}) // inactive day
	l.Append(DayRecord{ClientID: 2, Day: 0, Queries: 1})
	got := l.ClientDays(1)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ClientDays = %v", got)
	}
}
