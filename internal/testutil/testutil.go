// Package testutil provides the shared simulation fixtures the test
// suites build on: canonical small configurations plus process-wide
// cached worlds and runs, so packages stop re-simulating (and
// copy-pasting) the same setup.
//
// The cached fixtures are built at most once per test process and shared
// across callers; treat them as read-only. A test that needs to mutate a
// world or wants a different shape should build its own from one of the
// config constructors.
package testutil

import (
	"sync"
	"testing"

	"anycastcdn/internal/sim"
)

// SmallConfig is the canonical fast unit-test configuration: 600 client
// prefixes over 9 days with a raised beacon rate so per-client analyses
// still have samples.
func SmallConfig(seed uint64) sim.Config {
	cfg := sim.DefaultConfig(seed)
	cfg.Prefixes = 600
	cfg.Days = 9
	cfg.QueriesPerVolume = 10
	cfg.BeaconSampleRate = 0.2
	cfg.MaxBeaconsPerClientDay = 12
	return cfg
}

// TinyConfig is the smallest useful run (500 prefixes, 5 days), for
// API round-trip tests where only shape matters.
func TinyConfig(seed uint64) sim.Config {
	cfg := sim.DefaultConfig(seed)
	cfg.Prefixes = 500
	cfg.Days = 5
	return cfg
}

// SuiteConfig is the experiments-suite fixture: big enough (1500
// prefixes, 9 days) that figure shapes are stable, small enough to run
// once per process.
func SuiteConfig() sim.Config {
	cfg := sim.DefaultConfig(7)
	cfg.Prefixes = 1500
	cfg.Days = 9
	return cfg
}

var (
	worldOnce sync.Once
	worldVal  *sim.World
	worldErr  error

	smallOnce sync.Once
	smallVal  *sim.Result
	smallErr  error

	suiteOnce sync.Once
	suiteVal  *sim.Result
	suiteErr  error
)

// SmallWorld returns a built (not simulated) world for SmallConfig(1),
// cached for the test process. Read-only: installing faults or mutating
// the population would leak into other tests.
func SmallWorld(t testing.TB) *sim.World {
	t.Helper()
	worldOnce.Do(func() {
		worldVal, worldErr = sim.BuildWorld(SmallConfig(1))
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return worldVal
}

// SmallResult returns a completed SmallConfig(1) run, cached for the
// test process. Read-only.
func SmallResult(t testing.TB) *sim.Result {
	t.Helper()
	smallOnce.Do(func() {
		smallVal, smallErr = sim.Run(SmallConfig(1))
	})
	if smallErr != nil {
		t.Fatal(smallErr)
	}
	return smallVal
}

// SuiteResult returns a completed SuiteConfig() run, cached for the test
// process. Read-only; the experiments tests derive their Suite from it.
func SuiteResult(t testing.TB) *sim.Result {
	t.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = sim.Run(SuiteConfig())
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}
