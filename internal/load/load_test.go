package load

import (
	"testing"

	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
	"anycastcdn/internal/xrand"
)

// buildBackbone creates a 5-front-end US backbone for load tests.
func buildBackbone(t *testing.T) *topology.Backbone {
	t.Helper()
	b, err := topology.Build([]topology.SiteSpec{
		{Metro: "new-york", FrontEnd: true, Peering: true},
		{Metro: "washington", FrontEnd: true, Peering: true},
		{Metro: "chicago", FrontEnd: true, Peering: true},
		{Metro: "dallas", FrontEnd: true, Peering: true},
		{Metro: "los-angeles", FrontEnd: true, Peering: true},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func defaultLayers(b *topology.Backbone) []Layer {
	all := b.FrontEnds()
	// Layer 1: the three biggest sites (NY, Chicago, LA by index here).
	return []Layer{
		{Sites: all},
		{Sites: []topology.SiteID{all[0], all[2], all[4]}},
	}
}

func defaultCapacity(b *topology.Backbone) map[topology.SiteID]float64 {
	caps := map[topology.SiteID]float64{}
	for _, s := range b.FrontEnds() {
		caps[s] = 120
	}
	return caps
}

func TestNewBalancerValidation(t *testing.T) {
	b := buildBackbone(t)
	if _, err := NewBalancer(b, nil, nil); err == nil {
		t.Fatal("no layers should fail")
	}
	if _, err := NewBalancer(b, []Layer{{}}, defaultCapacity(b)); err == nil {
		t.Fatal("empty layer should fail")
	}
	caps := defaultCapacity(b)
	caps[b.FrontEnds()[0]] = 0
	if _, err := NewBalancer(b, defaultLayers(b), caps); err == nil {
		t.Fatal("zero capacity should fail")
	}
}

func TestRouteNoOverloadServesNearest(t *testing.T) {
	b := buildBackbone(t)
	bal, err := NewBalancer(b, defaultLayers(b), defaultCapacity(b))
	if err != nil {
		t.Fatal(err)
	}
	for _, ingress := range b.FrontEnds() {
		fe := bal.Route(ingress, 0.5)
		if fe != ingress {
			t.Fatalf("with no shedding, ingress %d should be served locally, got %d", ingress, fe)
		}
	}
}

func TestOfferedConservesLoad(t *testing.T) {
	b := buildBackbone(t)
	bal, err := NewBalancer(b, defaultLayers(b), defaultCapacity(b))
	if err != nil {
		t.Fatal(err)
	}
	demand := map[topology.SiteID]float64{}
	var total float64
	for i, s := range b.FrontEnds() {
		demand[s] = float64(20 + i*10)
		total += demand[s]
	}
	// Force some shedding and verify conservation.
	bal.shed[0][b.FrontEnds()[1]] = 0.5
	loads := bal.Offered(demand)
	var got float64
	for _, l := range loads {
		for _, v := range l {
			got += v
		}
	}
	if diff := got - total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("offered load %v != demand %v", got, total)
	}
}

func TestConvergeShedsOverload(t *testing.T) {
	b := buildBackbone(t)
	bal, err := NewBalancer(b, defaultLayers(b), defaultCapacity(b))
	if err != nil {
		t.Fatal(err)
	}
	fes := b.FrontEnds()
	// Flash crowd: washington (a layer-0-only site) exceeds its capacity
	// while the system as a whole has headroom.
	demand := map[topology.SiteID]float64{}
	for _, s := range fes {
		demand[s] = 40
	}
	demand[fes[1]] = 160
	maxUtil, steps := bal.Converge(demand, 200)
	if maxUtil > 1.0 {
		t.Fatalf("converged max utilization %.2f still above capacity after %d steps", maxUtil, steps)
	}
	if f := bal.ShedFraction(0, fes[1]); f <= 0 {
		t.Fatal("overloaded site should shed")
	}
	// Unaffected far sites should shed little or nothing.
	if f := bal.ShedFraction(0, fes[4]); f > 0.2 {
		t.Fatalf("unaffected site shedding %.2f", f)
	}
}

func TestShedFractionRecovers(t *testing.T) {
	b := buildBackbone(t)
	bal, err := NewBalancer(b, defaultLayers(b), defaultCapacity(b))
	if err != nil {
		t.Fatal(err)
	}
	fes := b.FrontEnds()
	hot := map[topology.SiteID]float64{fes[1]: 160}
	bal.Converge(hot, 100)
	before := bal.ShedFraction(0, fes[1])
	if before <= 0 {
		t.Fatal("expected shedding during the flash crowd")
	}
	// Crowd subsides: shedding should decay.
	calm := map[topology.SiteID]float64{fes[1]: 30}
	bal.Converge(calm, 200)
	after := bal.ShedFraction(0, fes[1])
	if after >= before {
		t.Fatalf("shed fraction did not recover: %.3f -> %.3f", before, after)
	}
}

func TestRouteDistributionMatchesShedFraction(t *testing.T) {
	b := buildBackbone(t)
	bal, err := NewBalancer(b, defaultLayers(b), defaultCapacity(b))
	if err != nil {
		t.Fatal(err)
	}
	fes := b.FrontEnds()
	bal.shed[0][fes[1]] = 0.3
	rs := xrand.New(7)
	local, shedded := 0, 0
	const n = 50000
	for i := 0; i < n; i++ {
		fe := bal.Route(fes[1], rs.Float64())
		if fe == fes[1] {
			local++
		} else {
			shedded++
		}
	}
	frac := float64(shedded) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("shed fraction realized %.3f, want ~0.3", frac)
	}
}

func TestRouteLastLayerAlwaysServes(t *testing.T) {
	b := buildBackbone(t)
	bal, err := NewBalancer(b, defaultLayers(b), defaultCapacity(b))
	if err != nil {
		t.Fatal(err)
	}
	fes := b.FrontEnds()
	// Shed everything everywhere: queries must still land on a layer-1
	// member.
	for _, s := range fes {
		bal.shed[0][s] = 1.0
	}
	layer1 := map[topology.SiteID]bool{fes[0]: true, fes[2]: true, fes[4]: true}
	for _, ingress := range fes {
		fe := bal.Route(ingress, 0.99)
		if !layer1[fe] {
			t.Fatalf("fully shed ingress %d served by non-layer-1 site %d", ingress, fe)
		}
	}
}

// TestWithdrawalCascades reproduces §2's warning: withdrawing an
// overloaded front-end's route dumps its entire load on the next nearest
// front-end, which then overloads too — while fractional shedding keeps
// everyone under capacity.
func TestWithdrawalCascades(t *testing.T) {
	b := buildBackbone(t)
	fes := b.FrontEnds()
	caps := defaultCapacity(b)
	demand := map[topology.SiteID]float64{}
	for _, s := range fes {
		demand[s] = 80 // everyone around 2/3 utilization already
	}
	demand[fes[1]] = 150 // washington overloaded

	// Naive strategy: withdraw washington. All its demand lands on the
	// next nearest front-end, pushing it over capacity too; withdrawing
	// that one cascades further — §2's failure mode.
	withdrawn := map[topology.SiteID]bool{}
	overloadedChain := 0
	current := fes[1]
	for i := 0; i < len(fes); i++ {
		load := demandOn(b, demand, withdrawn, current)
		if load <= caps[current] {
			break
		}
		overloadedChain++
		withdrawn[current] = true
		current = nearestStanding(b, current, fes, withdrawn)
		if current == topology.InvalidSite {
			break
		}
	}
	if overloadedChain < 2 {
		t.Fatalf("expected a withdrawal cascade, got chain length %d", overloadedChain)
	}

	// FastRoute-style shedding on the same demand keeps max utilization
	// at or below 1.
	bal, err := NewBalancer(b, defaultLayers(b), caps)
	if err != nil {
		t.Fatal(err)
	}
	maxUtil, _ := bal.Converge(demand, 200)
	if maxUtil > 1.0+1e-9 {
		t.Fatalf("layered shedding left max utilization %.2f", maxUtil)
	}
}

// demandOn computes the load a site would carry if every withdrawn site's
// demand re-homes to its nearest standing front-end.
func demandOn(b *topology.Backbone, demand map[topology.SiteID]float64, withdrawn map[topology.SiteID]bool, site topology.SiteID) float64 {
	total := 0.0
	for ing, q := range demand {
		cur := ing
		if withdrawn[cur] {
			cur = nearestStanding(b, cur, b.FrontEnds(), withdrawn)
		}
		if cur == site {
			total += q
		}
	}
	return total
}

func nearestStanding(b *topology.Backbone, from topology.SiteID, fes []topology.SiteID, withdrawn map[topology.SiteID]bool) topology.SiteID {
	best := topology.InvalidSite
	bestD := units.Kilometers(1e18)
	for _, s := range fes {
		if withdrawn[s] || s == from {
			continue
		}
		if d := b.IGPDistanceKm(from, s); d < bestD {
			best, bestD = s, d
		}
	}
	return best
}

func BenchmarkConverge(b *testing.B) {
	bb, err := topology.Build([]topology.SiteSpec{
		{Metro: "new-york", FrontEnd: true, Peering: true},
		{Metro: "washington", FrontEnd: true, Peering: true},
		{Metro: "chicago", FrontEnd: true, Peering: true},
		{Metro: "dallas", FrontEnd: true, Peering: true},
		{Metro: "los-angeles", FrontEnd: true, Peering: true},
	}, 2)
	if err != nil {
		b.Fatal(err)
	}
	fes := bb.FrontEnds()
	caps := map[topology.SiteID]float64{}
	demand := map[topology.SiteID]float64{}
	for _, s := range fes {
		caps[s] = 100
		demand[s] = 70
	}
	demand[fes[1]] = 250
	layers := []Layer{{Sites: fes}, {Sites: []topology.SiteID{fes[0], fes[2], fes[4]}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bal, err := NewBalancer(bb, layers, caps)
		if err != nil {
			b.Fatal(err)
		}
		bal.Converge(demand, 100)
	}
}
