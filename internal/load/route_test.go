package load

import (
	"testing"

	"anycastcdn/internal/topology"
)

// threeLayers builds a 3-ring stack over the 5-site test backbone:
// ring 0 all sites, ring 1 {new-york, chicago, los-angeles}, ring 2
// {los-angeles}.
func threeLayers(b *topology.Backbone) []Layer {
	all := b.FrontEnds()
	return []Layer{
		{Sites: all},
		{Sites: []topology.SiteID{all[0], all[2], all[4]}},
		{Sites: []topology.SiteID{all[4]}},
	}
}

// TestRouteFromExactTable pins the conditional-probability semantics of
// the layer walk with exact cases. This is the regression test for the
// u-rescaling bug class: u must be compared against f BEFORE rescaling,
// and rescaled only on the u < f branch (where f is provably positive),
// never divided by a zero or stale fraction.
func TestRouteFromExactTable(t *testing.T) {
	b := buildBackbone(t)
	bal, err := NewBalancer(b, threeLayers(b), defaultCapacity(b))
	if err != nil {
		t.Fatal(err)
	}
	fes := b.FrontEnds()
	ny, wdc, chi, la := fes[0], fes[1], fes[2], fes[4]
	// washington sheds half its ring-0 queries; its ring-1 target
	// (new-york, the nearest ring-1 member) sheds half of those onward to
	// the terminal ring.
	bal.shed[0][wdc] = 0.5
	bal.shed[1][ny] = 0.5

	cases := []struct {
		name string
		u    float64
		want topology.SiteID
	}{
		// u >= f at layer 0: served locally, no rescale happens.
		{"at-threshold stays", 0.5, wdc},
		{"above threshold stays", 0.999, wdc},
		// u < 0.5 rescales to u/0.5 at new-york; 0.49/0.5 = 0.98 >= 0.5
		// stays there. A broken walk that rescaled before comparing would
		// bounce this query to the terminal ring.
		{"just under threshold sheds one layer", 0.49, ny},
		{"u=0.3 rescales to 0.6, serves ring 1", 0.3, ny},
		// 0.2/0.5 = 0.4 < 0.5 again: sheds through both layers.
		{"u=0.2 walks to terminal ring", 0.2, la},
		{"u=0 walks to terminal ring", 0.0, la},
	}
	for _, tc := range cases {
		if got := bal.RouteFrom(wdc, wdc, tc.u, 0); got != tc.want {
			t.Errorf("%s: RouteFrom(wdc, wdc, %v) = %d, want %d", tc.name, tc.u, got, tc.want)
		}
	}

	// f = 0 must serve locally even at u = 0 — the branch that would
	// divide by zero if the rescale ran unconditionally.
	if got := bal.RouteFrom(chi, chi, 0.0, 0); got != chi {
		t.Errorf("u=0 at non-shedding site routed to %d, want local %d", got, chi)
	}
}

// TestRouteFromHeavyHitter pins the deterministic heavy-hitter branch: an
// atom larger than HeavyShare × capacity is redirected whenever the site
// sheds at all, regardless of u, and the branch consumes no probability
// mass.
func TestRouteFromHeavyHitter(t *testing.T) {
	b := buildBackbone(t)
	caps := defaultCapacity(b)
	fes := b.FrontEnds()
	ny, wdc := fes[0], fes[1]
	// New-york gets enough capacity that an atom heavy at washington
	// (threshold 12) is light there (threshold 100): the walk's second hop
	// is decided by u, not by the heavy rule.
	caps[ny] = 1000
	bal, err := NewBalancer(b, threeLayers(b), caps)
	if err != nil {
		t.Fatal(err)
	}
	heavy := bal.HeavyShare*caps[wdc] + 1

	// No shedding: even a heavy atom stays put.
	if got := bal.RouteFrom(wdc, wdc, 0.99, heavy); got != wdc {
		t.Fatalf("heavy atom moved off a non-shedding site: %d", got)
	}
	// Any shedding at all: the heavy atom goes deeper deterministically,
	// even with u = 0.999 (which would stay under the probabilistic rule).
	bal.shed[0][wdc] = 0.01
	if got := bal.RouteFrom(wdc, wdc, 0.999, heavy); got != ny {
		t.Fatalf("heavy atom at shedding site went to %d, want ring-1 member %d", got, ny)
	}
	// u is NOT consumed by the heavy branch: with ring 1 also shedding,
	// the ORIGINAL u decides at new-york, where the atom is light.
	// u = 0.4 < shed[1][ny] = 0.5 continues to the terminal ring; a walk
	// that had rescaled u at the heavy layer (0.4/0.01 = 40) would stay.
	bal.shed[1][ny] = 0.5
	la := fes[4]
	if got := bal.RouteFrom(wdc, wdc, 0.4, heavy); got != la {
		t.Fatalf("heavy atom's u was consumed at the heavy layer: got %d, want %d", got, la)
	}
	// ... while u = 0.6 >= 0.5 is served at new-york.
	if got := bal.RouteFrom(wdc, wdc, 0.6, heavy); got != ny {
		t.Fatalf("heavy atom with u above ring-1 threshold went to %d, want %d", got, ny)
	}
	// A light atom with the same u stays at washington: 0.4 >= 0.01, so
	// the probabilistic rule serves it locally.
	if got := bal.RouteFrom(wdc, wdc, 0.4, 1); got != wdc {
		t.Fatalf("light atom misrouted to %d", got)
	}
}

// TestWithdrawStepRolls pins the reactive naive strategy: each control
// interval withdraws the sites that the PREVIOUS interval's decision
// overloaded, so the failure rolls across the fleet instead of settling.
func TestWithdrawStepRolls(t *testing.T) {
	b := buildBackbone(t)
	fes := b.FrontEnds()
	caps := defaultCapacity(b) // 120 each
	demand := map[topology.SiteID]float64{}
	for _, s := range fes {
		demand[s] = 80
	}
	demand[fes[1]] = 150 // washington over capacity

	w0 := map[topology.SiteID]bool{}
	w1 := WithdrawStep(b, demand, caps, w0)
	if len(w1) != 1 || !w1[fes[1]] {
		t.Fatalf("first interval should withdraw exactly washington, got %v", w1)
	}
	// Washington's 150 re-homes to its nearest standing neighbour, which
	// now carries 230 > 120: the next interval withdraws it too.
	w2 := WithdrawStep(b, demand, caps, w1)
	if len(w2) <= len(w1) {
		t.Fatalf("cascade did not roll: %v -> %v", w1, w2)
	}
	for fe := range w1 {
		if !w2[fe] {
			t.Fatalf("withdrawn set dropped %d while still cascading", fe)
		}
	}
	// Iterate to the bitter end: the set must never withdraw the last
	// standing front-end.
	w := w2
	for i := 0; i < len(fes)+2; i++ {
		w = WithdrawStep(b, demand, caps, w)
		if len(w) >= len(fes) {
			t.Fatalf("every front-end withdrawn: %v", w)
		}
	}
	// A healthy fleet restores everything at once — the naive strategy
	// has no hysteresis.
	calm := map[topology.SiteID]float64{}
	for _, s := range fes {
		calm[s] = 10
	}
	if got := WithdrawStep(b, calm, caps, w); len(got) != 0 {
		t.Fatalf("healthy fleet should restore all routes, got %v", got)
	}
}

func TestDeriveRings(t *testing.T) {
	b := buildBackbone(t)
	fes := b.FrontEnds()
	caps := map[topology.SiteID]float64{}
	var total float64
	for i, s := range fes {
		caps[s] = float64(100 + 10*i)
		total += caps[s]
	}
	mega := fes[4] // highest capacity
	layers := DeriveRings(b, caps, 1, 2)
	if len(layers) != 3 {
		t.Fatalf("want 3 rings, got %d", len(layers))
	}
	if len(layers[0].Sites) != len(fes) {
		t.Fatal("ring 0 must contain every front-end")
	}
	// All five sites are north-america, so ring 1 is the single best site
	// and ring 2 the same mega site.
	if len(layers[1].Sites) != 1 || layers[1].Sites[0] != mega {
		t.Fatalf("ring 1 = %v, want [%d]", layers[1].Sites, mega)
	}
	if len(layers[2].Sites) != 1 || layers[2].Sites[0] != mega {
		t.Fatalf("ring 2 = %v, want [%d]", layers[2].Sites, mega)
	}
	// The mega site's capacity is raised in place to megaShare × fleet.
	if caps[mega] != 2*total {
		t.Fatalf("mega capacity %v, want %v", caps[mega], 2*total)
	}
	// Non-ring sites keep their capacity.
	if caps[fes[0]] != 100 {
		t.Fatalf("ring-0 site capacity changed to %v", caps[fes[0]])
	}
}

func TestManagerConfigValidate(t *testing.T) {
	if err := (ManagerConfig{}).Validate(); err != nil {
		t.Fatalf("zero config (all defaults) should validate: %v", err)
	}
	bad := []ManagerConfig{
		{Policy: Policy(99)},
		{Headroom: -1},
		{HighWatermark: 0.5, LowWatermark: 0.6},
		{MaxStep: 1.5},
		{StepsPerDay: -1},
		{Capacity: map[topology.SiteID]float64{0: -5}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v should fail validation", i, c)
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{Static, FastRoute, Withdraw} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("unknown policy should fail to parse")
	}
}
