package load

import (
	"fmt"
	"math"

	"anycastcdn/internal/topology"
)

// Policy selects the overload response the simulator applies when a
// ManagerConfig activates load management.
type Policy int

const (
	// Static serves every query where anycast lands it and only observes
	// utilization — the paper's measured baseline, blind to load.
	Static Policy = iota
	// FastRoute sheds excess through the layered balancer: each
	// front-end redirects a locally-chosen fraction of its DNS queries
	// to the next anycast ring.
	FastRoute
	// Withdraw applies the naive strategy of §2: an overloaded
	// front-end's route is withdrawn outright, moving all of its traffic
	// at once and inviting the cascading-overload cliff.
	Withdraw
)

// String returns the flag/report spelling of the policy.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case FastRoute:
		return "fastroute"
	case Withdraw:
		return "withdraw"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy inverts String for flag parsing.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "static":
		return Static, nil
	case "fastroute":
		return FastRoute, nil
	case "withdraw":
		return Withdraw, nil
	}
	return 0, fmt.Errorf("load: unknown policy %q (want static, fastroute or withdraw)", s)
}

// ManagerConfig activates load management inside the simulation day
// loop. The zero value of every knob means "use the default"; a nil
// *ManagerConfig on sim.Config deactivates the subsystem entirely and
// leaves the simulator byte-identical to a build without it.
type ManagerConfig struct {
	// Policy is the overload response to simulate.
	Policy Policy
	// Headroom scales each front-end's derived capacity over its
	// fault-free PEAK daily load (default 1.4; a floor at the fleet mean
	// keeps idle sites able to absorb spillover). Peak, not mean: daily
	// per-prefix volume is lognormally bursty, so a mean-sized site would
	// overload on ordinary fault-free days.
	Headroom float64
	// DeepRingShare sizes the regional ring-1 data centers: together
	// they hold this fraction of fleet capacity (default 1).
	DeepRingShare float64
	// MegaShare sizes the terminal mega-DC ring as a multiple of fleet
	// capacity (default 2).
	MegaShare float64
	// HighWatermark / LowWatermark / Gain / MaxStep / HeavyShare override
	// the balancer's controller knobs when non-zero (see Balancer).
	HighWatermark float64
	LowWatermark  float64
	Gain          float64
	MaxStep       float64
	HeavyShare    float64
	// StepsPerDay bounds the intra-day controller rounds the balancer
	// runs before each day's shed fractions are frozen (default 60).
	StepsPerDay int
	// Capacity pins per-site capacity explicitly; nil derives it from
	// the fault-free base catchment at world-build time.
	Capacity map[topology.SiteID]float64
}

// WithDefaults returns a copy with every zero knob replaced by its
// default.
func (c ManagerConfig) WithDefaults() ManagerConfig {
	if c.Headroom == 0 {
		c.Headroom = 1.4
	}
	if c.DeepRingShare == 0 {
		c.DeepRingShare = 1
	}
	if c.MegaShare == 0 {
		c.MegaShare = 2
	}
	if c.HighWatermark == 0 {
		c.HighWatermark = 0.85
	}
	if c.LowWatermark == 0 {
		c.LowWatermark = 0.765
	}
	if c.Gain == 0 {
		c.Gain = 0.25
	}
	if c.MaxStep == 0 {
		c.MaxStep = 0.2
	}
	if c.HeavyShare == 0 {
		c.HeavyShare = 0.1
	}
	if c.StepsPerDay == 0 {
		c.StepsPerDay = 60
	}
	return c
}

// Validate checks the knobs after defaulting.
func (c ManagerConfig) Validate() error {
	d := c.WithDefaults()
	if d.Policy != Static && d.Policy != FastRoute && d.Policy != Withdraw {
		return fmt.Errorf("load: unknown policy %d", int(d.Policy))
	}
	knobs := []struct {
		name string
		v    float64
	}{
		{"Headroom", d.Headroom}, {"DeepRingShare", d.DeepRingShare}, {"MegaShare", d.MegaShare},
		{"HighWatermark", d.HighWatermark}, {"LowWatermark", d.LowWatermark},
		{"Gain", d.Gain}, {"MaxStep", d.MaxStep}, {"HeavyShare", d.HeavyShare},
	}
	for _, k := range knobs {
		if math.IsNaN(k.v) || math.IsInf(k.v, 0) || k.v <= 0 {
			return fmt.Errorf("load: %s must be positive and finite, got %v", k.name, k.v)
		}
	}
	if d.LowWatermark >= d.HighWatermark {
		return fmt.Errorf("load: LowWatermark %v must be below HighWatermark %v", d.LowWatermark, d.HighWatermark)
	}
	if d.MaxStep > 1 {
		return fmt.Errorf("load: MaxStep %v must be at most 1", d.MaxStep)
	}
	if d.StepsPerDay < 1 {
		return fmt.Errorf("load: StepsPerDay must be >= 1, got %d", d.StepsPerDay)
	}
	//replay:commutative validation only; every entry is checked and the pass/fail outcome is order-independent
	for site, capQ := range d.Capacity {
		if math.IsNaN(capQ) || math.IsInf(capQ, 0) || capQ <= 0 {
			return fmt.Errorf("load: capacity of site %d must be positive and finite, got %v", site, capQ)
		}
	}
	return nil
}
