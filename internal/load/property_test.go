package load

import (
	"math"
	"testing"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/topology"
	"anycastcdn/internal/xrand"
)

// randomFleet builds a random front-end fleet over a random subset of the
// real metro catalog, with xrand-seeded capacities and an offered demand
// that is feasible by construction (total demand strictly below total
// ring-0 capacity). Everything is a pure function of seed.
func randomFleet(t *testing.T, seed uint64) (*topology.Backbone, []Layer, map[topology.SiteID]float64, map[topology.SiteID]float64) {
	t.Helper()
	var rs xrand.Stream
	rs.Reseed(seed)
	metros := geo.World()
	n := 4 + rs.Intn(len(metros)-4)
	specs := make([]topology.SiteSpec, 0, n)
	for _, idx := range rs.Perm(len(metros))[:n] {
		specs = append(specs, topology.SiteSpec{Metro: metros[idx].Name, FrontEnd: true, Peering: true})
	}
	bb, err := topology.Build(specs, 2+rs.Intn(3))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	fes := bb.FrontEnds()
	caps := make(map[topology.SiteID]float64, len(fes))
	var total float64
	for _, fe := range fes {
		caps[fe] = 50 + 1000*rs.Float64()
		total += caps[fe]
	}
	// DeriveRings raises the deep rings in place (mega to 2 × fleet), so
	// the terminal ring can absorb any demand the fleet could nominally
	// carry — feasibility is by construction, matching how the simulation
	// provisions FastRoute.
	layers := DeriveRings(bb, caps, 1, 2)
	demand := make(map[topology.SiteID]float64, len(fes))
	// Spread a total strictly under the ring-0 fleet capacity across
	// random ingresses, deliberately lumpy so some sites start overloaded.
	budget := total * (0.3 + 0.6*rs.Float64())
	for budget > 0 {
		fe := fes[rs.Intn(len(fes))]
		amt := budget * rs.Float64()
		if amt > budget {
			amt = budget
		}
		demand[fe] += amt
		budget -= amt
		if budget < 1e-3 {
			break
		}
	}
	return bb, layers, caps, demand
}

func shedSnapshot(bal *Balancer) []uint64 {
	var snap []uint64
	for l := 0; l < bal.NumLayers(); l++ {
		for _, fe := range bal.layers[l].Sites {
			snap = append(snap, math.Float64bits(bal.shed[l][fe]))
		}
	}
	return snap
}

// TestConvergeNeverExceedsCapacity is the core property: on random
// topologies with feasible demand, the distributed controller converges
// to a state where no site in any ring runs past capacity.
func TestConvergeNeverExceedsCapacity(t *testing.T) {
	const eps = 1e-9
	for seed := uint64(1); seed <= 20; seed++ {
		bb, layers, caps, demand := randomFleet(t, seed)
		bal, err := NewBalancer(bb, layers, caps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		maxUtil, steps := bal.Converge(demand, 2000)
		if steps >= 2000 {
			t.Errorf("seed %d: controller did not converge in 2000 steps (maxUtil %.4f)", seed, maxUtil)
			continue
		}
		if maxUtil > 1+eps {
			t.Errorf("seed %d: converged max utilization %.6f exceeds capacity", seed, maxUtil)
		}
		if got := bal.MaxUtilization(demand); math.Abs(got-maxUtil) > eps {
			t.Errorf("seed %d: Converge reported %.9f but MaxUtilization says %.9f", seed, maxUtil, got)
		}
	}
}

// TestShedFractionsStayBounded checks the invariant that every watermark
// step leaves every shed fraction a valid probability, even mid-flight on
// badly overloaded fleets.
func TestShedFractionsStayBounded(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		bb, layers, caps, demand := randomFleet(t, seed)
		bal, err := NewBalancer(bb, layers, caps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Triple the demand so the controller spends many steps shedding
		// hard; fractions must stay in [0, 1] after every single step.
		for fe := range demand {
			demand[fe] *= 3 //replay:commutative independent per-key scaling
		}
		for step := 0; step < 60; step++ {
			bal.Adjust(demand)
			for l := 0; l < bal.NumLayers(); l++ {
				for _, fe := range bal.layers[l].Sites {
					f := bal.ShedFraction(l, fe)
					if f < 0 || f > 1 || math.IsNaN(f) {
						t.Fatalf("seed %d step %d: shed[%d][%d] = %v out of [0,1]", seed, step, l, fe, f)
					}
				}
			}
		}
		// The terminal ring never sheds — there is nowhere deeper to go.
		last := bal.NumLayers() - 1
		for _, fe := range bal.layers[last].Sites {
			if f := bal.ShedFraction(last, fe); f != 0 {
				t.Errorf("seed %d: terminal ring site %d sheds %v", seed, fe, f)
			}
		}
	}
}

// TestConvergeReplaysByteIdentically builds the same random fleet twice
// from the same seed and checks that the full controller state — every
// shed fraction, bit for bit — and the reported utilization match.
func TestConvergeReplaysByteIdentically(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		run := func() ([]uint64, uint64) {
			bb, layers, caps, demand := randomFleet(t, seed)
			bal, err := NewBalancer(bb, layers, caps)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			u, _ := bal.Converge(demand, 2000)
			return shedSnapshot(bal), math.Float64bits(u)
		}
		shedA, uA := run()
		shedB, uB := run()
		if uA != uB {
			t.Fatalf("seed %d: max utilization differs across reruns: %x vs %x", seed, uA, uB)
		}
		if len(shedA) != len(shedB) {
			t.Fatalf("seed %d: shed state shape differs across reruns", seed)
		}
		for i := range shedA {
			if shedA[i] != shedB[i] {
				t.Fatalf("seed %d: shed fraction %d differs bitwise across reruns", seed, i)
			}
		}
	}
}

// TestConvergedStateIsStable: once Converge reports a fixpoint (largest
// per-step movement below 1e-9), further Adjust calls must not move any
// fraction appreciably — the equilibrium is an attractor, not a point the
// controller shoots past.
func TestConvergedStateIsStable(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		bb, layers, caps, demand := randomFleet(t, seed)
		bal, err := NewBalancer(bb, layers, caps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, steps := bal.Converge(demand, 2000)
		if steps >= 2000 {
			t.Fatalf("seed %d: no fixpoint in 2000 steps", seed)
		}
		before := shedSnapshot(bal)
		for i := 0; i < 10; i++ {
			bal.Adjust(demand)
		}
		after := shedSnapshot(bal)
		for i := range before {
			a, b := math.Float64frombits(before[i]), math.Float64frombits(after[i])
			if math.Abs(a-b) > 1e-6 {
				t.Fatalf("seed %d: fixpoint not stable, shed fraction %d moved %v -> %v", seed, i, a, b)
			}
		}
	}
}
