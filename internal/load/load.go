// Package load implements a FastRoute-style load-aware anycast layer
// (Flavel et al., NSDI 2015 — reference [23] of the paper, the system the
// measured CDN actually runs; extended by Sinha/Mani/Flavel's distributed
// load-management papers).
//
// §2 of the paper describes the problem: anycast is unaware of server
// load; withdrawing an overloaded front-end's route moves ALL of its
// traffic to the next-best front-end at once, which "can lead to cascading
// overloading of nearby front-ends". FastRoute's answer is layered
// anycast: front-ends participate in a stack of anycast rings, and an
// overloaded front-end sheds a *fraction* of its DNS queries to the next
// layer's anycast address (whose ring contains fewer, larger sites), so
// load drains gradually instead of in cliffs.
//
// The controller here is distributed in the papers' sense: each front-end
// adjusts its own shed fraction from only its own observed load and
// capacity — a high watermark above which it sheds more, a low watermark
// below which it reclaims, and a dead band between them that gives the
// loop hysteresis. No site ever reads another site's load, and there is
// no central coordinator; global balance is an emergent fixpoint of the
// local rules.
//
// This package provides the layered balancer, the local watermark
// controller, and the explicit naive route-withdrawal strategy that
// reproduces the cascading failure the paper warns about.
package load

import (
	"fmt"
	"math"
	"sort"

	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// Layer is one anycast ring: the set of sites announcing that ring's VIP.
type Layer struct {
	Sites []topology.SiteID
}

// Balancer is a layered-anycast load balancer.
type Balancer struct {
	backbone *topology.Backbone
	layers   []Layer
	capacity map[topology.SiteID]float64
	// shed[l][site] is the fraction of layer-l queries at site currently
	// redirected to layer l+1.
	shed []map[topology.SiteID]float64
	// HighWatermark is the utilization above which a site sheds more.
	HighWatermark float64
	// LowWatermark is the utilization below which a site reclaims shed
	// traffic. The dead band between the watermarks is the hysteresis
	// that keeps shed fractions from oscillating: a site whose
	// utilization sits between them leaves its fraction exactly alone.
	LowWatermark float64
	// Gain is the controller step size per adjustment.
	Gain float64
	// MaxStep caps how far a shed fraction may move in one adjustment,
	// damping the overshoot that would otherwise bounce a site between
	// the watermarks.
	MaxStep float64
	// HeavyShare is the heavy-hitter threshold: a demand atom (one
	// client-day's queries) larger than HeavyShare × a ring member's
	// capacity is redirected deterministically whenever that member is
	// shedding at all. FastRoute manages very large resolvers explicitly
	// for the same reason: probabilistic shedding cannot control an atom
	// comparable to a site's whole capacity — whichever way its coin
	// lands moves the site by more than the watermark band.
	HeavyShare float64
}

// NewBalancer builds a balancer over the given layers. Layer 0 must
// contain every front-end that serves by default; deeper layers typically
// keep only high-capacity sites. capacity maps site→queries per interval.
func NewBalancer(b *topology.Backbone, layers []Layer, capacity map[topology.SiteID]float64) (*Balancer, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("load: no layers")
	}
	for li, l := range layers {
		if len(l.Sites) == 0 {
			return nil, fmt.Errorf("load: layer %d empty", li)
		}
		for _, s := range l.Sites {
			if !b.Site(s).FrontEnd {
				return nil, fmt.Errorf("load: site %d in layer %d is not a front-end", s, li)
			}
			if capacity[s] <= 0 {
				return nil, fmt.Errorf("load: site %d has no capacity", s)
			}
		}
	}
	bal := &Balancer{
		backbone:      b,
		layers:        layers,
		capacity:      capacity,
		HighWatermark: 0.85,
		LowWatermark:  0.765,
		Gain:          0.25,
		MaxStep:       0.2,
		HeavyShare:    0.1,
	}
	bal.shed = make([]map[topology.SiteID]float64, len(layers))
	for i := range bal.shed {
		bal.shed[i] = map[topology.SiteID]float64{}
	}
	return bal, nil
}

// NumLayers returns the number of anycast rings.
func (bal *Balancer) NumLayers() int { return len(bal.layers) }

// Capacity returns a site's configured capacity (queries per interval).
func (bal *Balancer) Capacity(site topology.SiteID) float64 { return bal.capacity[site] }

// ShedFraction returns the current shed fraction of a site at a layer.
func (bal *Balancer) ShedFraction(layer int, site topology.SiteID) float64 {
	if layer < 0 || layer >= len(bal.shed) {
		return 0
	}
	return bal.shed[layer][site]
}

// frontEndAtLayer returns the layer-l anycast front-end for traffic
// entering the CDN at ingress: the ring member nearest by IGP metric
// (hot-potato within the ring). exclude skips one site — a site shedding
// its own load withdraws itself from the next ring's announcement for
// that traffic, as FastRoute does, so shed load actually moves.
func (bal *Balancer) frontEndAtLayer(ingress topology.SiteID, layer int, exclude topology.SiteID) topology.SiteID {
	best := topology.InvalidSite
	bestD := units.Kilometers(math.Inf(1))
	for _, s := range bal.layers[layer].Sites {
		if s == exclude && len(bal.layers[layer].Sites) > 1 {
			continue
		}
		if d := bal.backbone.IGPDistanceKm(ingress, s); d < bestD {
			best, bestD = s, d
		}
	}
	return best
}

// Route resolves where a query entering at ingress is served, walking the
// layer stack: at each layer the nearest ring member either serves the
// query or (with its shed probability) forwards the client to the next
// layer's VIP. u in [0,1) supplies the randomness deterministically.
func (bal *Balancer) Route(ingress topology.SiteID, u float64) topology.SiteID {
	return bal.RouteFrom(ingress, bal.frontEndAtLayer(ingress, 0, topology.InvalidSite), u, 0)
}

// RouteFrom walks the layer stack starting from an already-resolved
// layer-0 front-end (the client's effective anycast assignment, which
// fault rewrites may have moved off the nearest ring member). ingress
// still decides which deeper-ring member anycast would deliver the
// re-queried client to. load is the size of the demand atom being
// routed (one client-day's queries); pass 0 to disable the heavy-hitter
// rule.
//
// The walk keeps the conditional-probability semantics exact: u continues
// past a layer only when u < f, so the rescale u/f that turns the
// remaining mass back into a uniform divides by a provably positive f —
// never by a stale fraction from a previous layer. The deterministic
// heavy-hitter branch consumes no probability mass, so it leaves u
// untouched for the next layer's decision.
func (bal *Balancer) RouteFrom(ingress, fe topology.SiteID, u float64, load float64) topology.SiteID {
	for layer := 0; layer < len(bal.layers)-1; layer++ {
		f := bal.shed[layer][fe]
		if f > 0 && load > bal.HeavyShare*bal.capacity[fe] {
			fe = bal.frontEndAtLayer(ingress, layer+1, fe)
			continue
		}
		if u >= f {
			return fe
		}
		// u < f here, so f > 0: rescale the remaining mass for the next
		// layer so a single uniform drives the whole walk.
		u /= f
		fe = bal.frontEndAtLayer(ingress, layer+1, fe)
	}
	return fe // last layer always serves
}

// Offered computes per-site offered load at each layer given per-ingress
// demand (queries entering the CDN at each ingress site) under the
// current shed fractions. It is the analytic expectation of Route over
// the demand: probability mass flows down the layer stack exactly where
// RouteFrom's walk would send it.
func (bal *Balancer) Offered(demand map[topology.SiteID]float64) []map[topology.SiteID]float64 {
	loads := make([]map[topology.SiteID]float64, len(bal.layers))
	for i := range loads {
		loads[i] = map[topology.SiteID]float64{}
	}
	// Demand flows down the layer stack analytically.
	type flow struct {
		ingress topology.SiteID
		qty     float64
		exclude topology.SiteID
	}
	flows := make([]flow, 0, len(demand))
	//replay:commutative keys only; sorted immediately below, so collection order is discarded
	for ing, q := range demand {
		flows = append(flows, flow{ing, q, topology.InvalidSite})
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].ingress < flows[j].ingress })
	for layer := 0; layer < len(bal.layers); layer++ {
		var next []flow
		for _, f := range flows {
			fe := bal.frontEndAtLayer(f.ingress, layer, f.exclude)
			shed := 0.0
			if layer < len(bal.layers)-1 {
				shed = bal.shed[layer][fe]
			}
			loads[layer][fe] += f.qty * (1 - shed)
			if shed > 0 {
				next = append(next, flow{f.ingress, f.qty * shed, fe})
			}
		}
		flows = next
	}
	return loads
}

// SiteLoad sums a site's load across layers.
func SiteLoad(loads []map[topology.SiteID]float64, site topology.SiteID) float64 {
	var total float64
	for _, l := range loads {
		total += l[site]
	}
	return total
}

// StepLocal runs one distributed control round over observed per-layer
// loads: every non-terminal ring member looks at only its own total load
// and capacity and moves its own shed fraction — up when above the high
// watermark, down when below the low watermark, not at all inside the
// dead band. Each move is capped at MaxStep. It returns the largest
// fraction change of the round, so callers can detect the fixpoint.
func (bal *Balancer) StepLocal(loads []map[topology.SiteID]float64) float64 {
	maxDelta := 0.0
	for layer := 0; layer < len(bal.layers)-1; layer++ {
		for _, site := range bal.layers[layer].Sites {
			// Shedding to a next ring that contains only this site moves
			// nothing; leave the fraction at zero rather than chase load
			// that cannot go anywhere.
			if next := bal.layers[layer+1].Sites; len(next) == 1 && next[0] == site {
				continue
			}
			util := SiteLoad(loads, site) / bal.capacity[site]
			f := bal.shed[layer][site]
			step := 0.0
			switch {
			case util > bal.HighWatermark:
				// Move the serve fraction (1-f) toward the value that would
				// put this site at the top of the dead band. The target is
				// multiplicative in the serve fraction, which keeps the
				// effective loop gain bounded no matter how badly the site
				// is overloaded — an additive step in utilization space has
				// gain proportional to demand/capacity and turns into a
				// divergent limit cycle once that ratio passes 2/Gain.
				target := 1 - (1-f)*bal.HighWatermark/util
				step = bal.Gain * (target - f)
			case util < bal.LowWatermark && f > 0:
				// Reclaim at half gain: asymmetric speeds damp the
				// overshoot cycle shed-too-much → starve → reclaim →
				// overload again.
				if util > 0 && f < 1 {
					target := 1 - (1-f)*bal.LowWatermark/util
					step = bal.Gain * (target - f) * 0.5
				} else {
					// A fully shed or idle site serves nothing, so the
					// multiplicative rule has no load signal; probe routes
					// back additively instead.
					step = -bal.Gain * (bal.LowWatermark - util) * 0.5
				}
			}
			if step > bal.MaxStep {
				step = bal.MaxStep
			}
			if step < -bal.MaxStep {
				step = -bal.MaxStep
			}
			f += step
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			if d := math.Abs(f - bal.shed[layer][site]); d > maxDelta {
				maxDelta = d
			}
			bal.shed[layer][site] = f
		}
	}
	return maxDelta
}

// MaxUtilization evaluates the current shed state against a demand map
// and returns the worst site utilization across all layers.
func (bal *Balancer) MaxUtilization(demand map[topology.SiteID]float64) float64 {
	loads := bal.Offered(demand)
	maxUtil := 0.0
	for _, l := range bal.layers {
		for _, site := range l.Sites {
			if u := SiteLoad(loads, site) / bal.capacity[site]; u > maxUtil {
				maxUtil = u
			}
		}
	}
	return maxUtil
}

// Adjust runs one control step — every site's local watermark rule over
// the offered load — and returns the maximum utilization after the
// step's load re-evaluation.
func (bal *Balancer) Adjust(demand map[topology.SiteID]float64) float64 {
	delta, u := bal.adjust(demand)
	_ = delta
	return u
}

func (bal *Balancer) adjust(demand map[topology.SiteID]float64) (delta, maxUtil float64) {
	loads := bal.Offered(demand)
	delta = bal.StepLocal(loads)
	return delta, bal.MaxUtilization(demand)
}

// Converge runs Adjust until the shed fractions reach a fixpoint (no
// fraction moved) or the iteration budget is exhausted, returning the
// final max utilization and the number of steps taken. The watermark
// dead band guarantees the fixpoint is stable: once every site sits
// between its watermarks (or is pinned at 0 or 1), further steps change
// nothing.
func (bal *Balancer) Converge(demand map[topology.SiteID]float64, maxSteps int) (float64, int) {
	u := bal.MaxUtilization(demand)
	for step := 1; step <= maxSteps; step++ {
		var delta float64
		delta, u = bal.adjust(demand)
		if delta < 1e-9 {
			return u, step
		}
	}
	return u, maxSteps
}

// DeriveRings builds the default FastRoute layer stack over a capacity
// map and raises the deeper rings to data-center scale in place:
//
//	ring 0 — every front-end (plain anycast);
//	ring 1 — the highest-capacity front-end of each region, each raised
//	         to deepShare × (fleet capacity) / |ring 1|;
//	ring 2 — the single highest-capacity site, raised to
//	         megaShare × (fleet capacity).
//
// Fleet capacity is summed before the boosts. FastRoute's deeper rings
// are backed by large data centers; the boosts model that a ring-1 VIP
// lands in a regional DC and the terminal ring in a mega-DC that can
// absorb any plausible flash crowd. Candidates are scanned in deployment
// order, so capacity ties resolve identically on every run.
func DeriveRings(bb *topology.Backbone, caps map[topology.SiteID]float64, deepShare, megaShare float64) []Layer {
	fes := bb.FrontEnds()
	var total float64
	for _, fe := range fes {
		total += caps[fe]
	}
	bestByRegion := map[string]topology.SiteID{}
	mega := topology.InvalidSite
	for _, fe := range fes {
		region := string(bb.Site(fe).Metro.Region)
		if cur, ok := bestByRegion[region]; !ok || caps[fe] > caps[cur] {
			bestByRegion[region] = fe
		}
		if mega == topology.InvalidSite || caps[fe] > caps[mega] {
			mega = fe
		}
	}
	ring1 := make([]topology.SiteID, 0, len(bestByRegion))
	//replay:commutative values are sorted immediately below, so collection order is discarded
	for _, fe := range bestByRegion {
		ring1 = append(ring1, fe)
	}
	sort.Slice(ring1, func(i, j int) bool { return ring1[i] < ring1[j] })
	for _, fe := range ring1 {
		if dc := deepShare * total / float64(len(ring1)); caps[fe] < dc {
			caps[fe] = dc
		}
	}
	if dc := megaShare * total; caps[mega] < dc {
		caps[mega] = dc
	}
	return []Layer{{Sites: fes}, {Sites: ring1}, {Sites: []topology.SiteID{mega}}}
}

// WithdrawnSet simulates the naive overload response the paper's §2
// warns about: withdraw the most-overloaded front-end's route outright,
// re-home every ingress to its nearest standing front-end, and repeat
// until nothing is overloaded — usually tipping the neighbours over one
// by one instead. demand is per-ingress query volume. The scan order is
// deterministic (deployment order, ingresses sorted), excess ties always
// withdraw the same site, and the last standing front-end is never
// withdrawn, so the cascade cannot black-hole the whole CDN.
func WithdrawnSet(bb *topology.Backbone, demand, caps map[topology.SiteID]float64) map[topology.SiteID]bool {
	fes := bb.FrontEnds()
	ings := make([]topology.SiteID, 0, len(demand))
	//replay:commutative keys only; sorted immediately below, so collection order is discarded
	for ing := range demand {
		ings = append(ings, ing)
	}
	sort.Slice(ings, func(i, j int) bool { return ings[i] < ings[j] })
	withdrawn := map[topology.SiteID]bool{}
	for len(withdrawn) < len(fes)-1 {
		// Compute loads with withdrawn sites' traffic re-homed. Sorted
		// ingress order keeps the float sums bit-stable across runs.
		loads := map[topology.SiteID]float64{}
		for _, ing := range ings {
			if fe := NearestStandingFE(bb, ing, withdrawn); fe != topology.InvalidSite {
				loads[fe] += demand[ing]
			}
		}
		// Withdraw the most-overloaded standing site, if any.
		worst := topology.InvalidSite
		worstExcess := 0.0
		for _, fe := range fes {
			if withdrawn[fe] {
				continue
			}
			if excess := loads[fe] - caps[fe]; excess > worstExcess {
				worst, worstExcess = fe, excess
			}
		}
		if worst == topology.InvalidSite {
			break
		}
		withdrawn[worst] = true
	}
	return withdrawn
}

// WithdrawStep runs ONE control interval of the reactive naive strategy:
// observe the loads that the current withdrawn set produces (every
// ingress re-homed to its nearest standing front-end), withdraw every
// standing front-end now over capacity, and return the next withdrawn
// set. When nothing is overloaded it returns the empty set — the naive
// operator re-announces all routes as soon as the fleet looks healthy,
// with no hysteresis, so a still-surging demand immediately re-overloads
// and the whole cycle restarts. Driven once per day by the simulation,
// this reproduces the paper's cascade as a rolling failure: the first
// interval's withdrawals dump their whole catchments onto neighbours,
// the next interval withdraws those, and so on. At least one front-end
// always stays standing (overflow withdrawals are dropped worst-excess
// first).
func WithdrawStep(bb *topology.Backbone, demand, caps map[topology.SiteID]float64, withdrawn map[topology.SiteID]bool) map[topology.SiteID]bool {
	fes := bb.FrontEnds()
	ings := make([]topology.SiteID, 0, len(demand))
	//replay:commutative keys only; sorted immediately below, so collection order is discarded
	for ing := range demand {
		ings = append(ings, ing)
	}
	sort.Slice(ings, func(i, j int) bool { return ings[i] < ings[j] })
	// Loads under the current withdrawn set; sorted ingress order keeps
	// the float sums bit-stable across runs.
	loads := map[topology.SiteID]float64{}
	for _, ing := range ings {
		if fe := NearestStandingFE(bb, ing, withdrawn); fe != topology.InvalidSite {
			loads[fe] += demand[ing]
		}
	}
	// Overloaded standing sites, worst excess first (deployment order
	// breaks ties deterministically).
	type over struct {
		fe     topology.SiteID
		excess float64
	}
	var overs []over
	for _, fe := range fes {
		if withdrawn[fe] {
			continue
		}
		if excess := loads[fe] - caps[fe]; excess > 0 {
			overs = append(overs, over{fe, excess})
		}
	}
	if len(overs) == 0 {
		return map[topology.SiteID]bool{}
	}
	sort.SliceStable(overs, func(i, j int) bool { return overs[i].excess > overs[j].excess })
	next := make(map[topology.SiteID]bool, len(withdrawn)+len(overs))
	//replay:commutative set copy; each key written once
	for fe := range withdrawn {
		next[fe] = true
	}
	for _, o := range overs {
		if len(next) >= len(fes)-1 {
			break
		}
		next[o.fe] = true
	}
	return next
}

// NearestStandingFE returns the nearest front-end by IGP metric that is
// not withdrawn — where anycast re-homes an ingress's traffic after a
// withdrawal — or InvalidSite if every front-end is withdrawn.
func NearestStandingFE(bb *topology.Backbone, ingress topology.SiteID, withdrawn map[topology.SiteID]bool) topology.SiteID {
	best := topology.InvalidSite
	bestD := units.Kilometers(math.Inf(1))
	for _, fe := range bb.FrontEnds() {
		if withdrawn[fe] {
			continue
		}
		if d := bb.IGPDistanceKm(ingress, fe); d < bestD {
			best, bestD = fe, d
		}
	}
	return best
}
