// Package load implements a FastRoute-style load-aware anycast layer
// (Flavel et al., NSDI 2015 — reference [23] of the paper, the system the
// measured CDN actually runs).
//
// §2 of the paper describes the problem: anycast is unaware of server
// load; withdrawing an overloaded front-end's route moves ALL of its
// traffic to the next-best front-end at once, which "can lead to cascading
// overloading of nearby front-ends". FastRoute's answer is layered
// anycast: front-ends participate in a stack of anycast rings, and an
// overloaded front-end sheds a *fraction* of its DNS queries to the next
// layer's anycast address (whose ring contains fewer, larger sites), so
// load drains gradually instead of in cliffs.
//
// This package provides the layered balancer and a step simulator, plus a
// naive route-withdrawal strategy to reproduce the cascading failure the
// paper warns about.
package load

import (
	"fmt"
	"math"
	"sort"

	"anycastcdn/internal/topology"
	"anycastcdn/internal/units"
)

// Layer is one anycast ring: the set of sites announcing that ring's VIP.
type Layer struct {
	Sites []topology.SiteID
}

// Balancer is a layered-anycast load balancer.
type Balancer struct {
	backbone *topology.Backbone
	layers   []Layer
	capacity map[topology.SiteID]float64
	// shed[l][site] is the fraction of layer-l queries at site currently
	// redirected to layer l+1.
	shed []map[topology.SiteID]float64
	// TargetUtilization is the utilization above which a site sheds.
	TargetUtilization float64
	// Gain is the controller step size per adjustment.
	Gain float64
}

// NewBalancer builds a balancer over the given layers. Layer 0 must
// contain every front-end that serves by default; deeper layers typically
// keep only high-capacity sites. capacity maps site→queries per interval.
func NewBalancer(b *topology.Backbone, layers []Layer, capacity map[topology.SiteID]float64) (*Balancer, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("load: no layers")
	}
	for li, l := range layers {
		if len(l.Sites) == 0 {
			return nil, fmt.Errorf("load: layer %d empty", li)
		}
		for _, s := range l.Sites {
			if !b.Site(s).FrontEnd {
				return nil, fmt.Errorf("load: site %d in layer %d is not a front-end", s, li)
			}
			if capacity[s] <= 0 {
				return nil, fmt.Errorf("load: site %d has no capacity", s)
			}
		}
	}
	bal := &Balancer{
		backbone:          b,
		layers:            layers,
		capacity:          capacity,
		TargetUtilization: 0.85,
		Gain:              0.25,
	}
	bal.shed = make([]map[topology.SiteID]float64, len(layers))
	for i := range bal.shed {
		bal.shed[i] = map[topology.SiteID]float64{}
	}
	return bal, nil
}

// NumLayers returns the number of anycast rings.
func (bal *Balancer) NumLayers() int { return len(bal.layers) }

// ShedFraction returns the current shed fraction of a site at a layer.
func (bal *Balancer) ShedFraction(layer int, site topology.SiteID) float64 {
	if layer < 0 || layer >= len(bal.shed) {
		return 0
	}
	return bal.shed[layer][site]
}

// frontEndAtLayer returns the layer-l anycast front-end for traffic
// entering the CDN at ingress: the ring member nearest by IGP metric
// (hot-potato within the ring). exclude skips one site — a site shedding
// its own load withdraws itself from the next ring's announcement for
// that traffic, as FastRoute does, so shed load actually moves.
func (bal *Balancer) frontEndAtLayer(ingress topology.SiteID, layer int, exclude topology.SiteID) topology.SiteID {
	best := topology.InvalidSite
	bestD := units.Kilometers(math.Inf(1))
	for _, s := range bal.layers[layer].Sites {
		if s == exclude && len(bal.layers[layer].Sites) > 1 {
			continue
		}
		if d := bal.backbone.IGPDistanceKm(ingress, s); d < bestD {
			best, bestD = s, d
		}
	}
	return best
}

// Route resolves where a query entering at ingress is served, walking the
// layer stack: at each layer the nearest ring member either serves the
// query or (with its shed probability) forwards the client to the next
// layer's VIP. u in [0,1) supplies the randomness deterministically.
func (bal *Balancer) Route(ingress topology.SiteID, u float64) topology.SiteID {
	exclude := topology.InvalidSite
	for layer := 0; layer < len(bal.layers); layer++ {
		fe := bal.frontEndAtLayer(ingress, layer, exclude)
		if layer == len(bal.layers)-1 {
			return fe // last layer always serves
		}
		f := bal.shed[layer][fe]
		if u >= f {
			return fe
		}
		// Rescale u for the next layer so a single uniform drives the
		// whole walk.
		if f > 0 {
			u /= f
		}
		exclude = fe
	}
	return topology.InvalidSite
}

// Offered computes per-site offered load at each layer given per-ingress
// demand (queries entering the CDN at each ingress site) under the
// current shed fractions.
func (bal *Balancer) Offered(demand map[topology.SiteID]float64) []map[topology.SiteID]float64 {
	loads := make([]map[topology.SiteID]float64, len(bal.layers))
	for i := range loads {
		loads[i] = map[topology.SiteID]float64{}
	}
	// Demand flows down the layer stack analytically.
	type flow struct {
		ingress topology.SiteID
		qty     float64
		exclude topology.SiteID
	}
	flows := make([]flow, 0, len(demand))
	for ing, q := range demand {
		flows = append(flows, flow{ing, q, topology.InvalidSite})
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].ingress < flows[j].ingress })
	for layer := 0; layer < len(bal.layers); layer++ {
		var next []flow
		for _, f := range flows {
			fe := bal.frontEndAtLayer(f.ingress, layer, f.exclude)
			shed := 0.0
			if layer < len(bal.layers)-1 {
				shed = bal.shed[layer][fe]
			}
			loads[layer][fe] += f.qty * (1 - shed)
			if shed > 0 {
				next = append(next, flow{f.ingress, f.qty * shed, fe})
			}
		}
		flows = next
	}
	return loads
}

// SiteLoad sums a site's load across layers.
func SiteLoad(loads []map[topology.SiteID]float64, site topology.SiteID) float64 {
	var total float64
	for _, l := range loads {
		total += l[site]
	}
	return total
}

// Adjust runs one control step: sites above target utilization raise
// their shed fraction proportionally to the excess; sites below lower it.
// It returns the maximum utilization after the step's load re-evaluation.
func (bal *Balancer) Adjust(demand map[topology.SiteID]float64) float64 {
	loads := bal.Offered(demand)
	for layer := 0; layer < len(bal.layers)-1; layer++ {
		for _, site := range bal.layers[layer].Sites {
			total := SiteLoad(loads, site)
			cap := bal.capacity[site]
			util := total / cap
			f := bal.shed[layer][site]
			switch {
			case util > bal.TargetUtilization:
				f += bal.Gain * (util - bal.TargetUtilization)
			case util < bal.TargetUtilization*0.9 && f > 0:
				f -= bal.Gain * (bal.TargetUtilization - util) * 0.5
			}
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			bal.shed[layer][site] = f
		}
	}
	// Report the post-adjustment maximum utilization.
	loads = bal.Offered(demand)
	maxUtil := 0.0
	for _, l := range bal.layers {
		for _, site := range l.Sites {
			if u := SiteLoad(loads, site) / bal.capacity[site]; u > maxUtil {
				maxUtil = u
			}
		}
	}
	return maxUtil
}

// Converge runs Adjust until the max utilization stops improving or the
// iteration budget is exhausted, returning the final max utilization and
// the number of steps taken.
func (bal *Balancer) Converge(demand map[topology.SiteID]float64, maxSteps int) (float64, int) {
	best := math.Inf(1)
	for step := 1; step <= maxSteps; step++ {
		u := bal.Adjust(demand)
		if u >= best-1e-9 && u <= 1 {
			return u, step
		}
		if u < best {
			best = u
		}
	}
	return best, maxSteps
}
