// Package topology models the network the paper's CDN lives in: the CDN's
// own autonomous system (sites, backbone links, IGP shortest paths) and the
// client-side ISPs with their egress policies toward the CDN.
//
// Two properties of this topology drive the anycast pathologies the paper's
// traceroute case studies found (§5):
//
//  1. The CDN AS practices hot-potato routing internally: a request that
//     enters at ingress router R is served by the front-end closest to R by
//     IGP metric — not the front-end closest to the client. Some sites are
//     peering-only (no front-end), so entering there costs extra backbone
//     distance ("router A has a longer intradomain route to the nearest
//     front-end").
//  2. ISPs differ in egress policy. Most exit hot-potato at the peering
//     point nearest the client, but some carry traffic to a centralized
//     peering hub first (the paper's Denver→Phoenix and Moscow→Stockholm
//     examples), and some pick among nearby peering points using tie-break
//     rules blind to geography (BGP's "lack of insight into the underlying
//     topology").
package topology

import (
	"fmt"
	"math"

	"anycastcdn/internal/geo"
	"anycastcdn/internal/units"
)

// SiteID identifies a CDN site (index into Backbone.Sites).
type SiteID int

// InvalidSite is returned when no site qualifies.
const InvalidSite SiteID = -1

// SiteSpec describes one CDN site to build.
type SiteSpec struct {
	Metro    string // catalog metro name
	FrontEnd bool   // hosts a front-end cluster
	Peering  bool   // has external peering (announces anycast)
}

// Site is a realized CDN point of presence.
type Site struct {
	ID       SiteID
	Metro    geo.Metro
	FrontEnd bool
	Peering  bool
}

// Backbone is the CDN AS: its sites and intradomain routing.
type Backbone struct {
	Sites []Site

	// igpDist[i][j] is the IGP shortest-path distance in km between sites
	// i and j over backbone links.
	igpDist [][]float64
	// nearestFE[i] is the front-end site served from ingress i under
	// hot-potato routing, and feDist[i] the backbone km to it.
	nearestFE []SiteID
	feDist    []float64
	// nextHop[i][j] is the neighbor of i on the shortest path toward j,
	// used for traceroute reconstruction.
	nextHop [][]SiteID

	frontEnds []SiteID
	peerings  []SiteID
}

type edge struct {
	to   SiteID
	cost float64
}

// Build realizes a backbone from site specs. Each site is linked to its
// degree nearest neighbors (minimum 2), which yields a connected,
// redundant mesh similar in spirit to a continental backbone. Build returns
// an error for unknown metros, duplicate sites, or a deployment with no
// front-ends or no peering sites.
func Build(specs []SiteSpec, degree int) (*Backbone, error) {
	if degree < 2 {
		degree = 2
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("topology: no sites")
	}
	b := &Backbone{}
	seen := map[string]bool{}
	for i, sp := range specs {
		if seen[sp.Metro] {
			return nil, fmt.Errorf("topology: duplicate site metro %q", sp.Metro)
		}
		seen[sp.Metro] = true
		m, ok := geo.FindMetro(sp.Metro)
		if !ok {
			return nil, fmt.Errorf("topology: unknown metro %q", sp.Metro)
		}
		s := Site{ID: SiteID(i), Metro: m, FrontEnd: sp.FrontEnd, Peering: sp.Peering}
		b.Sites = append(b.Sites, s)
		if s.FrontEnd {
			b.frontEnds = append(b.frontEnds, s.ID)
		}
		if s.Peering {
			b.peerings = append(b.peerings, s.ID)
		}
	}
	if len(b.frontEnds) == 0 {
		return nil, fmt.Errorf("topology: deployment has no front-end sites")
	}
	if len(b.peerings) == 0 {
		return nil, fmt.Errorf("topology: deployment has no peering sites")
	}
	adj := b.buildLinks(degree)
	b.computeRouting(adj)
	return b, nil
}

// buildLinks links each site to its `degree` nearest neighbors and returns
// the adjacency list. Links are symmetric.
func (b *Backbone) buildLinks(degree int) [][]edge {
	n := len(b.Sites)
	adj := make([][]edge, n)
	linked := make(map[[2]SiteID]bool)
	addLink := func(i, j SiteID) {
		if i == j {
			return
		}
		key := [2]SiteID{min(i, j), max(i, j)}
		if linked[key] {
			return
		}
		linked[key] = true
		d := geo.DistanceKm(b.Sites[i].Metro.Point, b.Sites[j].Metro.Point).Float()
		adj[i] = append(adj[i], edge{to: j, cost: d})
		adj[j] = append(adj[j], edge{to: i, cost: d})
	}
	pts := make([]geo.Point, n)
	for i, s := range b.Sites {
		pts[i] = s.Metro.Point
	}
	for i := range b.Sites {
		order := geo.RankByDistance(pts[i], pts)
		added := 0
		for _, j := range order {
			if SiteID(j) == SiteID(i) {
				continue
			}
			addLink(SiteID(i), SiteID(j))
			added++
			if added >= degree {
				break
			}
		}
	}
	// kNN graphs can leave continental clusters disconnected (no site's k
	// nearest neighbors cross an ocean). Merge components via their
	// shortest cross edge until one remains — these become the long-haul
	// submarine links of the backbone.
	for {
		comp := components(adj)
		if comp.count <= 1 {
			break
		}
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if comp.id[i] == comp.id[j] {
					continue
				}
				if d := geo.DistanceKm(pts[i], pts[j]).Float(); d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		addLink(SiteID(bi), SiteID(bj))
	}
	return adj
}

type componentSet struct {
	id    []int
	count int
}

func components(adj [][]edge) componentSet {
	n := len(adj)
	id := make([]int, n)
	for i := range id {
		id[i] = -1
	}
	count := 0
	for start := 0; start < n; start++ {
		if id[start] != -1 {
			continue
		}
		stack := []int{start}
		id[start] = count
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range adj[u] {
				if id[e.to] == -1 {
					id[e.to] = count
					stack = append(stack, int(e.to))
				}
			}
		}
		count++
	}
	return componentSet{id: id, count: count}
}

// computeRouting runs Dijkstra from every site, filling igpDist, nextHop,
// and the hot-potato front-end choice per ingress.
func (b *Backbone) computeRouting(adj [][]edge) {
	n := len(b.Sites)
	b.igpDist = make([][]float64, n)
	b.nextHop = make([][]SiteID, n)
	for src := 0; src < n; src++ {
		dist, prev := dijkstra(adj, SiteID(src))
		b.igpDist[src] = dist
		// nextHop[src][dst]: first hop from src toward dst, derived by
		// walking prev[] back from dst.
		hops := make([]SiteID, n)
		for dst := 0; dst < n; dst++ {
			hops[dst] = firstHop(prev, SiteID(src), SiteID(dst))
		}
		b.nextHop[src] = hops
	}
	b.nearestFE = make([]SiteID, n)
	b.feDist = make([]float64, n)
	for i := 0; i < n; i++ {
		best, bestD := InvalidSite, math.Inf(1)
		for _, fe := range b.frontEnds {
			if d := b.igpDist[i][fe]; d < bestD {
				best, bestD = fe, d
			}
		}
		b.nearestFE[i] = best
		b.feDist[i] = bestD
	}
}

func dijkstra(adj [][]edge, src SiteID) (dist []float64, prev []SiteID) {
	n := len(adj)
	dist = make([]float64, n)
	prev = make([]SiteID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = InvalidSite
	}
	dist[src] = 0
	// Simple O(n^2) Dijkstra; n is dozens of sites, run once at build.
	for iter := 0; iter < n; iter++ {
		u := -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, e := range adj[u] {
			if nd := dist[u] + e.cost; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = SiteID(u)
			}
		}
	}
	return dist, prev
}

func firstHop(prev []SiteID, src, dst SiteID) SiteID {
	if src == dst {
		return src
	}
	cur := dst
	for prev[cur] != InvalidSite && prev[cur] != src {
		cur = prev[cur]
	}
	if prev[cur] == src {
		return cur
	}
	return InvalidSite // unreachable
}

// FrontEnds returns the front-end site IDs in deployment order.
func (b *Backbone) FrontEnds() []SiteID {
	return append([]SiteID(nil), b.frontEnds...)
}

// PeeringSites returns the peering site IDs in deployment order.
func (b *Backbone) PeeringSites() []SiteID {
	return append([]SiteID(nil), b.peerings...)
}

// Site returns the site with the given ID.
func (b *Backbone) Site(id SiteID) Site { return b.Sites[id] }

// NumSites returns the number of sites.
func (b *Backbone) NumSites() int { return len(b.Sites) }

// IGPDistanceKm returns the intradomain shortest-path distance between two
// sites in backbone kilometers.
func (b *Backbone) IGPDistanceKm(a, c SiteID) units.Kilometers {
	return units.Kilometers(b.igpDist[a][c])
}

// HotPotatoFrontEnd returns the front-end chosen for traffic entering at
// ingress, and the backbone distance to it. This is the CDN-side half of
// anycast selection.
func (b *Backbone) HotPotatoFrontEnd(ingress SiteID) (SiteID, units.Kilometers) {
	return b.nearestFE[ingress], units.Kilometers(b.feDist[ingress])
}

// HotPotatoFrontEndExcluding returns the nearest-by-IGP front-end from
// ingress among front-ends for which excluded reports false, with the
// backbone distance to it. It is the drain-aware variant of
// HotPotatoFrontEnd, used by the fault-injection layer: when a front-end
// is drained, the CDN AS's interior routing falls through to the next
// site. Returns (InvalidSite, +Inf) when every front-end is excluded.
func (b *Backbone) HotPotatoFrontEndExcluding(ingress SiteID, excluded func(SiteID) bool) (SiteID, units.Kilometers) {
	best, bestD := InvalidSite, math.Inf(1)
	for _, fe := range b.frontEnds {
		if excluded != nil && excluded(fe) {
			continue
		}
		if d := b.igpDist[ingress][fe]; d < bestD {
			best, bestD = fe, d
		}
	}
	return best, units.Kilometers(bestD)
}

// Path returns the site-by-site backbone path from src to dst, inclusive.
// Used by the traceroute reconstruction in internal/trace.
func (b *Backbone) Path(src, dst SiteID) []SiteID {
	if src == dst {
		return []SiteID{src}
	}
	path := []SiteID{src}
	cur := src
	for cur != dst {
		nxt := b.nextHop[cur][dst]
		if nxt == InvalidSite || nxt == cur {
			return nil // unreachable
		}
		path = append(path, nxt)
		cur = nxt
		if len(path) > len(b.Sites) {
			return nil // cycle guard; should not happen
		}
	}
	return path
}

// NearestSiteByAir returns the peering site geographically nearest to p and
// the distance. Air distance, not IGP: this is what an outside network
// "sees".
func (b *Backbone) NearestSiteByAir(p geo.Point, onlyPeering bool) (SiteID, units.Kilometers) {
	best, bestD := InvalidSite, units.Kilometers(math.Inf(1))
	for _, s := range b.Sites {
		if onlyPeering && !s.Peering {
			continue
		}
		if d := geo.DistanceKm(p, s.Metro.Point); d < bestD {
			best, bestD = s.ID, d
		}
	}
	return best, bestD
}

// RankPeeringByAir returns peering site IDs ordered by increasing air
// distance from p.
func (b *Backbone) RankPeeringByAir(p geo.Point) []SiteID {
	return b.RankPeeringByAirInto(p, nil)
}

// rankStackSites bounds the distance scratch RankPeeringByAirInto keeps on
// the stack; deployments are at most a couple hundred sites.
const rankStackSites = 256

// RankPeeringByAirInto is RankPeeringByAir into a caller-provided buffer:
// when cap(buf) covers the peering count the ranking is written there and
// no allocation occurs, otherwise a fresh slice is returned. The order is
// identical either way — distance is tie-broken by site ID, a total order,
// so the sort has exactly one answer. Callers on the simulation's schedule
// path rank once per client and reuse the result across every switch day.
func (b *Backbone) RankPeeringByAirInto(p geo.Point, buf []SiteID) []SiteID {
	n := len(b.peerings)
	var out []SiteID
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]SiteID, n)
	}
	var dbuf [rankStackSites]units.Kilometers
	var ds []units.Kilometers
	if n <= len(dbuf) {
		ds = dbuf[:n]
	} else {
		ds = make([]units.Kilometers, n)
	}
	for i, id := range b.peerings {
		out[i] = id
		ds[i] = geo.DistanceKm(p, b.Sites[id].Metro.Point)
	}
	// Insertion sort in tandem over (distance, id): allocation-free, and
	// fast at deployment scale (tens of sites).
	for i := 1; i < n; i++ {
		id, d := out[i], ds[i]
		j := i - 1
		for j >= 0 && (ds[j] > d || (ds[j] == d && out[j] > id)) {
			out[j+1], ds[j+1] = out[j], ds[j]
			j--
		}
		out[j+1], ds[j+1] = id, d
	}
	return out
}

func min(a, b SiteID) SiteID {
	if a < b {
		return a
	}
	return b
}

func max(a, b SiteID) SiteID {
	if a > b {
		return a
	}
	return b
}
